// Machine topology invariants: the Figure 3 block diagram encoded.
#include <gtest/gtest.h>

#include "pcie/topology.hpp"

namespace ps::pcie {
namespace {

TEST(Topology, PaperServerShape) {
  const auto topo = Topology::paper_server();
  EXPECT_EQ(topo.num_nodes, 2);
  EXPECT_EQ(topo.num_cores(), 8);
  EXPECT_EQ(topo.num_nics(), 4);
  EXPECT_EQ(topo.num_ports(), 8);
  EXPECT_EQ(topo.num_gpus(), 2);
  EXPECT_TRUE(topo.dual_ioh);
}

TEST(Topology, NodeLocality) {
  const auto topo = Topology::paper_server();
  // Cores 0-3 on node 0, 4-7 on node 1.
  EXPECT_EQ(topo.node_of_core(0), 0);
  EXPECT_EQ(topo.node_of_core(3), 0);
  EXPECT_EQ(topo.node_of_core(4), 1);
  EXPECT_EQ(topo.node_of_core(7), 1);
  // Ports 0-3 (NICs 0-1) on node 0, 4-7 on node 1.
  EXPECT_EQ(topo.node_of_port(0), 0);
  EXPECT_EQ(topo.node_of_port(3), 0);
  EXPECT_EQ(topo.node_of_port(4), 1);
  EXPECT_EQ(topo.node_of_port(7), 1);
  // One GPU per node.
  EXPECT_EQ(topo.node_of_gpu(0), 0);
  EXPECT_EQ(topo.node_of_gpu(1), 1);
}

TEST(Topology, IohFollowsNode) {
  const auto topo = Topology::paper_server();
  for (int port = 0; port < topo.num_ports(); ++port) {
    EXPECT_EQ(topo.ioh_of_port(port), topo.node_of_port(port));
  }
  for (int gpu = 0; gpu < topo.num_gpus(); ++gpu) {
    EXPECT_EQ(topo.ioh_of_gpu(gpu), topo.node_of_gpu(gpu));
  }
}

TEST(Topology, PortToNicMapping) {
  const auto topo = Topology::paper_server();
  EXPECT_EQ(topo.nic_of_port(0), 0);
  EXPECT_EQ(topo.nic_of_port(1), 0);  // dual-port NICs
  EXPECT_EQ(topo.nic_of_port(2), 1);
  EXPECT_EQ(topo.nic_of_port(7), 3);
}

TEST(Topology, SingleNodeVariant) {
  const auto topo = Topology::single_node();
  EXPECT_EQ(topo.num_nodes, 1);
  EXPECT_EQ(topo.num_cores(), 4);
  EXPECT_EQ(topo.num_ports(), 4);
  EXPECT_FALSE(topo.dual_ioh);  // no dual-IOH asymmetry (section 3.2)
  for (int port = 0; port < topo.num_ports(); ++port) {
    EXPECT_EQ(topo.node_of_port(port), 0);
  }
}

}  // namespace
}  // namespace ps::pcie
