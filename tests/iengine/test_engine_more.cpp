// Additional io-engine coverage: multi-handle isolation, split TX across
// all ports, standalone frame TX, NUMA-blind penalties, and overflow
// backpressure behaviour.
#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "iengine/engine.hpp"

namespace ps::iengine {
namespace {

TEST(IoEngineMore, TwoHandlesDrainDisjointQueues) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false,
                         .ring_size = 1024},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 90});
  testbed.connect_sink(&traffic);
  for (auto* port : testbed.ports()) port->configure_rss(0, 2);

  auto* h0 = testbed.engine().attach(0, {{0, 0}});
  auto* h1 = testbed.engine().attach(1, {{0, 1}});

  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  }

  PacketChunk c0(512), c1(512);
  const u32 n0 = h0->recv_chunk(c0);
  const u32 n1 = h1->recv_chunk(c1);
  EXPECT_EQ(n0 + n1, 400u);
  EXPECT_GT(n0, 0u);
  EXPECT_GT(n1, 0u);
  // A second fetch sees nothing: no double delivery across handles.
  EXPECT_EQ(h0->recv_chunk(c0), 0u);
  EXPECT_EQ(h1->recv_chunk(c1), 0u);
}

TEST(IoEngineMore, SplitTransmissionAcrossAllPorts) {
  // "flexible usage of the user buffer, such as ... split transmission of
  // batched packets to multiple NIC ports" (section 4.3).
  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = false,
                         .ring_size = 1024},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 91});
  testbed.connect_sink(&traffic);
  auto* handle = testbed.engine().attach(0, {{0, 0}});

  PacketChunk chunk(64);
  for (int i = 0; i < 64; ++i) chunk.append(traffic.next_frame());
  for (u32 i = 0; i < 64; ++i) chunk.set_out_port(i, static_cast<i16>(i % 8));

  EXPECT_EQ(handle->send_chunk(chunk), 64u);
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(testbed.port(p).tx_totals().packets, 8u) << p;
    EXPECT_EQ(traffic.sunk_on_port(p), 8u) << p;
  }
}

TEST(IoEngineMore, SendFrameStandalone) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 92});
  testbed.connect_sink(&traffic);
  auto* handle = testbed.engine().attach(2, {{0, 0}});

  const auto frame = traffic.next_frame();
  EXPECT_TRUE(handle->send_frame(1, frame));
  EXPECT_FALSE(handle->send_frame(-1, frame));
  EXPECT_FALSE(handle->send_frame(99, frame));
  EXPECT_EQ(traffic.sunk_on_port(1), 1u);
}

TEST(IoEngineMore, NumaBlindRemoteDrainChargesPenalty) {
  // With numa_aware=false a handle may drain a remote node's queue; the
  // model charges the §4.5 remote-access penalty per packet.
  core::TestbedConfig cfg{.topo = pcie::Topology::paper_server(), .use_gpu = false,
                          .ring_size = 1024};
  cfg.engine.numa_aware = false;
  core::Testbed testbed(cfg, core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 93});
  for (auto* port : testbed.ports()) port->configure_rss(0, 1);

  // Core 0 lives on node 0; port 4 lives on node 1 -> remote binding.
  auto* local = testbed.engine().attach(0, {{0, 0}});
  auto* remote = testbed.engine().attach(1, {{4, 0}});

  const auto frame = traffic.next_frame();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(testbed.port(0).receive_frame(frame));
    ASSERT_TRUE(testbed.port(4).receive_frame(frame));
  }

  perf::CostLedger local_ledger, remote_ledger;
  PacketChunk chunk(64);
  {
    perf::CpuChargeScope scope(&local_ledger, 0);
    local->recv_chunk(chunk);
  }
  {
    perf::CpuChargeScope scope(&remote_ledger, 1);
    remote->recv_chunk(chunk);
  }
  const Picos expected_penalty =
      perf::cpu_cycles_to_picos(50 * perf::kNumaBlindExtraCyclesPerPacket);
  EXPECT_NEAR(static_cast<double>(remote_ledger.busy({perf::ResourceKind::kCpuCore, 1}) -
                                  local_ledger.busy({perf::ResourceKind::kCpuCore, 0})),
              static_cast<double>(expected_penalty), 1e6);
}

TEST(IoEngineMore, RecvAfterStopStillDrainsNonBlocking) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 94});
  for (auto* port : testbed.ports()) port->configure_rss(0, 1);
  auto* handle = testbed.engine().attach(0, {{0, 0}});

  ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  testbed.engine().stop();

  // Non-blocking recv still drains what is already in the rings (clean
  // shutdown wants no stranded packets)...
  PacketChunk chunk(8);
  EXPECT_EQ(handle->recv_chunk(chunk), 1u);
  // ...while the blocking variant returns 0 instead of sleeping forever.
  EXPECT_EQ(handle->recv_chunk_wait(chunk), 0u);
}

TEST(IoEngineMore, ChunkCapAppliesAcrossManyQueues) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false,
                         .ring_size = 1024},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 95});
  for (auto* port : testbed.ports()) port->configure_rss(0, 1);
  auto* handle = testbed.engine().attach(0, {{0, 0}, {1, 0}, {2, 0}, {3, 0}});

  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(testbed.port(p).receive_frame(traffic.next_frame()));
    }
  }
  PacketChunk chunk(128);
  EXPECT_EQ(handle->recv_chunk(chunk), 128u);  // capped, spanning queues
  EXPECT_EQ(handle->recv_chunk(chunk), 128u);
  EXPECT_EQ(handle->recv_chunk(chunk), 128u);
  EXPECT_EQ(handle->recv_chunk(chunk), 16u);  // remainder
}

}  // namespace
}  // namespace ps::iengine
