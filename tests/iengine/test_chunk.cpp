#include <gtest/gtest.h>

#include "iengine/chunk.hpp"
#include "net/packet.hpp"

namespace ps::iengine {
namespace {

TEST(PacketChunk, AppendAndAccess) {
  PacketChunk chunk(8);
  const std::vector<u8> a(64, 0xaa), b(128, 0xbb);
  EXPECT_TRUE(chunk.append(a, 111));
  EXPECT_TRUE(chunk.append(b, 222));

  ASSERT_EQ(chunk.count(), 2u);
  EXPECT_EQ(chunk.length(0), 64);
  EXPECT_EQ(chunk.length(1), 128);
  EXPECT_EQ(chunk.rss_hash(0), 111u);
  EXPECT_EQ(chunk.packet(1)[0], 0xbb);
  EXPECT_EQ(chunk.bytes(), 192u);
}

TEST(PacketChunk, PacketsAreContiguousInOneBuffer) {
  // The copy-into-contiguous-user-buffer design of section 4.3.
  PacketChunk chunk(4);
  chunk.append(std::vector<u8>(100, 1));
  chunk.append(std::vector<u8>(50, 2));
  EXPECT_EQ(chunk.packet(1).data(), chunk.packet(0).data() + 100);
}

TEST(PacketChunk, CapacityByCount) {
  PacketChunk chunk(2);
  const std::vector<u8> frame(64, 0);
  EXPECT_TRUE(chunk.append(frame));
  EXPECT_TRUE(chunk.append(frame));
  EXPECT_FALSE(chunk.append(frame));  // count cap
}

TEST(PacketChunk, RejectsOversizedPacket) {
  PacketChunk chunk(4);
  EXPECT_FALSE(chunk.append(std::vector<u8>(mem::kDataCellSize + 1, 0)));
  EXPECT_EQ(chunk.count(), 0u);
}

TEST(PacketChunk, DefaultVerdictIsForward) {
  PacketChunk chunk(4);
  chunk.append(std::vector<u8>(64, 0));
  EXPECT_EQ(chunk.verdict(0), PacketVerdict::kForward);
  EXPECT_EQ(chunk.out_port(0), -1);

  chunk.set_verdict(0, PacketVerdict::kDrop);
  chunk.set_out_port(0, 5);
  EXPECT_EQ(chunk.verdict(0), PacketVerdict::kDrop);
  EXPECT_EQ(chunk.out_port(0), 5);
}

TEST(PacketChunk, ClearKeepsCapacityDropsContent) {
  PacketChunk chunk(4);
  chunk.append(std::vector<u8>(64, 0));
  chunk.in_port = 3;
  chunk.clear();
  EXPECT_EQ(chunk.count(), 0u);
  EXPECT_EQ(chunk.bytes(), 0u);
  EXPECT_EQ(chunk.in_port, -1);
  EXPECT_EQ(chunk.max_packets(), 4u);
  EXPECT_TRUE(chunk.append(std::vector<u8>(64, 0)));
}

TEST(PacketChunk, MutationThroughSpan) {
  PacketChunk chunk(2);
  chunk.append(std::vector<u8>(64, 0));
  chunk.packet(0)[10] = 0x42;  // applications rewrite headers in place
  EXPECT_EQ(chunk.packet(0)[10], 0x42);
}

TEST(PacketChunk, MoveAssignmentTransfersContents) {
  PacketChunk a(4), b(4);
  a.append(std::vector<u8>(64, 7));
  a.in_port = 2;
  b = std::move(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.in_port, 2);
  EXPECT_EQ(b.packet(0)[0], 7);
}

}  // namespace
}  // namespace ps::iengine
