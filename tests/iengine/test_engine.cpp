// User-level packet I/O engine: batched RX into chunks, exclusive virtual
// interfaces, round-robin fairness, TX splitting, interrupt/poll blocking.
#include <gtest/gtest.h>

#include <thread>

#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "iengine/engine.hpp"

namespace ps::iengine {
namespace {

struct EngineFixture {
  // Single node, two ports, one RX queue each, plenty of TX queues.
  core::Testbed testbed{core::TestbedConfig{.topo = pcie::Topology::single_node(),
                                            .use_gpu = false,
                                            .ring_size = 512},
                        core::RouterConfig{.use_gpu = false}};
  gen::TrafficGen traffic{{.seed = 4}};

  EngineFixture() {
    testbed.connect_sink(&traffic);
    // These tests attach only queue 0 per port: steer everything there.
    for (auto* port : testbed.ports()) port->configure_rss(0, 1);
  }
};

TEST(IoEngine, RecvChunkBatchesAcrossQueues) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}, {1, 0}});

  // 20 packets to each of the two ports.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fx.testbed.port(0).receive_frame(fx.traffic.next_frame()));
    ASSERT_TRUE(fx.testbed.port(1).receive_frame(fx.traffic.next_frame()));
  }

  PacketChunk chunk(64);
  EXPECT_EQ(handle->recv_chunk(chunk), 40u);  // both queues drained
  EXPECT_EQ(chunk.count(), 40u);
  EXPECT_EQ(handle->recv_chunk(chunk), 0u);
}

TEST(IoEngine, ChunkSizeIsCappedNotWaitedFor) {
  // Section 5.3: the chunk size is capped, never padded by waiting.
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(fx.testbed.port(0).receive_frame(fx.traffic.next_frame()));
  }
  PacketChunk chunk(32);
  EXPECT_EQ(handle->recv_chunk(chunk), 32u);  // cap
  EXPECT_EQ(handle->recv_chunk(chunk), 32u);
  EXPECT_EQ(handle->recv_chunk(chunk), 32u);
  EXPECT_EQ(handle->recv_chunk(chunk), 4u);  // remainder, no waiting
}

TEST(IoEngine, RoundRobinFairnessAcrossInterfaces) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}, {1, 0}});

  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(fx.testbed.port(0).receive_frame(fx.traffic.next_frame()));
    ASSERT_TRUE(fx.testbed.port(1).receive_frame(fx.traffic.next_frame()));
  }
  // A capped chunk must take from the first interface, and the *next* call
  // must resume from the second, not re-favor the first.
  PacketChunk chunk(64);
  ASSERT_EQ(handle->recv_chunk(chunk), 64u);
  const int first_port = chunk.in_port;
  ASSERT_EQ(handle->recv_chunk(chunk), 64u);
  EXPECT_NE(chunk.in_port, first_port);
}

TEST(IoEngine, ExclusiveVirtualInterfaces) {
  EngineFixture fx;
  fx.testbed.engine().attach(0, {{0, 0}});
#ifndef NDEBUG
  EXPECT_DEATH(fx.testbed.engine().attach(1, {{0, 0}}), "exclusive");
#endif
}

TEST(IoEngine, SendChunkSplitsAcrossPorts) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});

  PacketChunk chunk(8);
  for (int i = 0; i < 8; ++i) chunk.append(fx.traffic.next_frame());
  for (u32 i = 0; i < 8; ++i) chunk.set_out_port(i, static_cast<i16>(i % 2));

  EXPECT_EQ(handle->send_chunk(chunk), 8u);
  EXPECT_EQ(fx.testbed.port(0).tx_totals().packets, 4u);
  EXPECT_EQ(fx.testbed.port(1).tx_totals().packets, 4u);
  EXPECT_EQ(fx.traffic.sunk_packets(), 8u);
}

TEST(IoEngine, SendRespectsVerdicts) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});

  PacketChunk chunk(4);
  for (int i = 0; i < 4; ++i) chunk.append(fx.traffic.next_frame());
  chunk.set_out_port(0, 0);
  chunk.set_verdict(1, PacketVerdict::kDrop);
  chunk.set_verdict(2, PacketVerdict::kSlowPath);
  chunk.set_out_port(3, 1);

  EXPECT_EQ(handle->send_chunk(chunk), 2u);  // only 0 and 3
}

TEST(IoEngine, InvalidOutPortCountsAsTxDrop) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});
  PacketChunk chunk(2);
  chunk.append(fx.traffic.next_frame());
  chunk.set_out_port(0, 99);  // no such port
  chunk.append(fx.traffic.next_frame());
  // out_port left at -1: never classified -> also a drop.
  EXPECT_EQ(handle->send_chunk(chunk), 0u);
  EXPECT_EQ(handle->tx_drops(), 2u);
}

TEST(IoEngine, BlockingRecvWakesOnArrival) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});

  std::thread receiver([&] {
    PacketChunk chunk(64);
    EXPECT_EQ(handle->recv_chunk_wait(chunk), 1u);  // blocks, then wakes
  });
  // Give the receiver time to go to sleep (arm the interrupt).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(fx.testbed.port(0).receive_frame(fx.traffic.next_frame()));
  receiver.join();
}

TEST(IoEngine, StopUnblocksWaiters) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});

  std::thread receiver([&] {
    PacketChunk chunk(64);
    EXPECT_EQ(handle->recv_chunk_wait(chunk), 0u);  // returns 0 on shutdown
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  fx.testbed.engine().stop();
  receiver.join();
}

TEST(IoEngine, RecvChargesRxCycles) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.testbed.port(0).receive_frame(fx.traffic.next_frame()));
  }

  perf::CostLedger ledger;
  {
    perf::CpuChargeScope scope(&ledger, 0);
    PacketChunk chunk(64);
    handle->recv_chunk(chunk);
  }
  const Picos busy = ledger.busy({perf::ResourceKind::kCpuCore, 0});
  const Picos expected = perf::cpu_cycles_to_picos(
      perf::kRxCyclesPerBatch + 10 * (perf::kRxCyclesPerPacket + 12.0) + 40.0);
  EXPECT_NEAR(static_cast<double>(busy), static_cast<double>(expected), 1e6);
}

TEST(IoEngine, EmptyPollIsCheap) {
  EngineFixture fx;
  auto* handle = fx.testbed.engine().attach(0, {{0, 0}});
  perf::CostLedger ledger;
  {
    perf::CpuChargeScope scope(&ledger, 0);
    PacketChunk chunk(64);
    handle->recv_chunk(chunk);
  }
  // Batch overhead + one empty poll, but no per-packet work.
  EXPECT_LT(ledger.busy({perf::ResourceKind::kCpuCore, 0}),
            perf::cpu_cycles_to_picos(perf::kRxCyclesPerBatch + 100));
}

}  // namespace
}  // namespace ps::iengine
