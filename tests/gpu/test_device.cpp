// GPU device model: memory accounting, copies, stream timelines, the
// concurrent copy-and-execution overlap, and ledger charges.
#include <gtest/gtest.h>

#include <numeric>

#include "gpu/device.hpp"

namespace ps::gpu {
namespace {

pcie::Topology topo() { return pcie::Topology::paper_server(); }

TEST(DeviceBuffer, AllocationAccounting) {
  GpuDevice dev(0, topo());
  {
    auto a = dev.alloc(1000);
    auto b = dev.alloc(500);
    EXPECT_EQ(dev.allocated_bytes(), 1500u);
    b = std::move(a);  // move frees b's old storage
    EXPECT_EQ(dev.allocated_bytes(), 1000u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(DeviceBuffer, CapacityEnforced) {
  GpuDevice dev(0, topo());
  EXPECT_THROW(dev.alloc(perf::kGpuMemBytes + 1), std::bad_alloc);
  auto ok = dev.alloc(perf::kGpuMemBytes / 2);
  EXPECT_THROW(dev.alloc(perf::kGpuMemBytes / 2 + 1), std::bad_alloc);
}

TEST(GpuDevice, CopyRoundTrip) {
  GpuDevice dev(0, topo());
  auto buf = dev.alloc(256);
  std::vector<u8> in(256);
  std::iota(in.begin(), in.end(), 0);
  dev.memcpy_h2d(buf, 0, in);

  std::vector<u8> out(256);
  dev.memcpy_d2h(out, buf, 0);
  EXPECT_EQ(in, out);
  EXPECT_EQ(dev.bytes_h2d(), 256u);
  EXPECT_EQ(dev.bytes_d2h(), 256u);
}

TEST(GpuDevice, OffsetCopies) {
  GpuDevice dev(0, topo());
  auto buf = dev.alloc(64);
  const std::vector<u8> a(16, 0xaa), b(16, 0xbb);
  dev.memcpy_h2d(buf, 0, a);
  dev.memcpy_h2d(buf, 16, b);
  std::vector<u8> out(16);
  dev.memcpy_d2h(out, buf, 16);
  EXPECT_EQ(out, b);
}

TEST(GpuDevice, KernelLaunchExecutesFunctionally) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  auto in = dev.alloc(1024 * 4);
  auto out = dev.alloc(1024 * 4);
  std::vector<u32> input(1024);
  std::iota(input.begin(), input.end(), 0u);
  dev.memcpy_h2d(in, 0, {reinterpret_cast<const u8*>(input.data()), input.size() * 4});

  const u32* in_p = in.as<const u32>();
  u32* out_p = out.as<u32>();
  KernelLaunch kernel{
      .name = "square",
      .threads = 1024,
      .body = [=](ThreadCtx& ctx) { out_p[ctx.thread_id()] = in_p[ctx.thread_id()] * 2; },
      .cost = {.instructions = 10},
  };
  dev.launch(kernel);

  std::vector<u32> result(1024);
  dev.memcpy_d2h({reinterpret_cast<u8*>(result.data()), result.size() * 4}, out, 0);
  for (u32 i = 0; i < 1024; ++i) EXPECT_EQ(result[i], i * 2);
  EXPECT_EQ(dev.kernels_launched(), 1u);
}

TEST(GpuDevice, SingleStreamSerializes) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  auto buf = dev.alloc(4096);
  const std::vector<u8> data(4096, 1);

  const auto c1 = dev.memcpy_h2d(buf, 0, data);
  KernelLaunch kernel{.name = "noop", .threads = 512, .body = [](ThreadCtx&) {}, .cost = {}};
  const auto k = dev.launch(kernel);
  std::vector<u8> out(4096);
  const auto c2 = dev.memcpy_d2h(out, buf, 0);

  // On one stream each op starts only after the previous completed.
  EXPECT_GE(k.start, c1.end);
  EXPECT_GE(c2.start, k.end);
  EXPECT_EQ(dev.synchronize(), c2.end);
}

TEST(GpuDevice, ConcurrentCopyAndExecutionOverlaps) {
  // Two streams: stream B's copy may start while stream A's kernel runs
  // (Figure 10(c)) — but kernels still serialize on the single exec engine.
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  const auto stream_b = dev.create_stream();
  auto buf_a = dev.alloc(1 << 20);
  auto buf_b = dev.alloc(1 << 20);
  const std::vector<u8> data(1 << 20, 7);

  dev.memcpy_h2d(buf_a, 0, data, kDefaultStream);
  KernelLaunch heavy{.name = "heavy",
                     .threads = 50'000,
                     .body = [](ThreadCtx&) {},
                     .cost = {.instructions = 10'000, .mem_accesses = 10}};
  const auto k = dev.launch(heavy, kDefaultStream);
  const auto copy_b = dev.memcpy_h2d(buf_b, 0, data, stream_b);

  EXPECT_LT(copy_b.start, k.end);  // overlap achieved
}

TEST(GpuDevice, StreamedModeAddsCallOverhead) {
  GpuDevice serial(0, topo(), std::make_shared<SimtExecutor>(0u));
  GpuDevice streamed(0, topo(), std::make_shared<SimtExecutor>(0u));
  streamed.create_stream();  // >1 stream => per-call overhead (§5.4)

  auto buf_a = serial.alloc(64);
  auto buf_b = streamed.alloc(64);
  const std::vector<u8> data(64, 0);
  const auto t_serial = serial.memcpy_h2d(buf_a, 0, data);
  const auto t_streamed = streamed.memcpy_h2d(buf_b, 0, data);
  EXPECT_EQ(t_streamed.duration() - t_serial.duration(), perf::kGpuStreamCallOverhead);
}

TEST(GpuDevice, LaunchLatencyScalesGently) {
  // Section 2.2: 3.8 us for one thread, ~4.1 us for 4096 (only ~10% more).
  const Picos one = perf::gpu_launch_latency(1);
  const Picos many = perf::gpu_launch_latency(4096);
  EXPECT_NEAR(to_micros(one), 3.8, 0.01);
  EXPECT_NEAR(to_micros(many), 4.1, 0.05);
}

TEST(GpuDevice, ChargesLedgerOnItsIoh) {
  perf::CostLedger ledger;
  GpuDevice dev1(1, topo(), std::make_shared<SimtExecutor>(0u));  // node 1 -> IOH 1
  dev1.set_ledger(&ledger);

  auto buf = dev1.alloc(1 << 16);
  const std::vector<u8> data(1 << 16, 0);
  dev1.memcpy_h2d(buf, 0, data);
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohH2d, 1}), 0);
  EXPECT_EQ(ledger.busy({perf::ResourceKind::kIohH2d, 0}), 0);
  EXPECT_GT(ledger.busy({perf::ResourceKind::kGpuCopy, 1}), 0);

  KernelLaunch kernel{.name = "k", .threads = 64, .body = [](ThreadCtx&) {}, .cost = {.instructions = 100}};
  dev1.launch(kernel);
  EXPECT_GT(ledger.busy({perf::ResourceKind::kGpuExec, 1}), 0);
}

TEST(GpuDevice, MeasuredDivergenceSlowsKernel) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  KernelLaunch uniform{.name = "u",
                       .threads = 4096,
                       .body = [](ThreadCtx& ctx) { ctx.record_path(0); },
                       .cost = {.instructions = 1000},
                       .track_divergence = true};
  KernelLaunch divergent = uniform;
  divergent.body = [](ThreadCtx& ctx) { ctx.record_path(static_cast<u8>(ctx.lane_id() % 4)); };

  const auto tu = dev.launch(uniform);
  dev.reset_timeline();
  const auto td = dev.launch(divergent);
  EXPECT_GT(td.duration(), tu.duration());  // 4-way divergence costs ~4x compute
}

TEST(GpuDevice, ResetTimelineClearsClocks) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  auto buf = dev.alloc(64);
  dev.memcpy_h2d(buf, 0, std::vector<u8>(64, 0));
  EXPECT_GT(dev.synchronize(), 0);
  dev.reset_timeline();
  EXPECT_EQ(dev.synchronize(), 0);
}

}  // namespace
}  // namespace ps::gpu
