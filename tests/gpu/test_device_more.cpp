// Additional GPU device coverage: stream-tail semantics, submit-time
// dependencies, concurrent use from two threads (master + control plane),
// and allocation churn.
#include <gtest/gtest.h>

#include <thread>

#include "gpu/device.hpp"

namespace ps::gpu {
namespace {

pcie::Topology topo() { return pcie::Topology::paper_server(); }

TEST(GpuDeviceMore, StreamTailsAdvanceIndependently) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  const auto s1 = dev.create_stream();
  auto buf = dev.alloc(1 << 16);
  const std::vector<u8> data(1 << 16, 0);

  dev.memcpy_h2d(buf, 0, data, kDefaultStream);
  const Picos tail0 = dev.stream_tail(kDefaultStream);
  EXPECT_GT(tail0, 0);
  EXPECT_EQ(dev.stream_tail(s1), 0);  // untouched stream stays at zero

  dev.memcpy_h2d(buf, 0, data, s1);
  EXPECT_GT(dev.stream_tail(s1), 0);
  EXPECT_EQ(dev.synchronize(), std::max(dev.stream_tail(kDefaultStream), dev.stream_tail(s1)));
}

TEST(GpuDeviceMore, SubmitTimeDefersStart) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  auto buf = dev.alloc(64);
  const std::vector<u8> data(64, 0);
  const Picos later = micros(500.0);
  const auto timing = dev.memcpy_h2d(buf, 0, data, kDefaultStream, later);
  EXPECT_GE(timing.start, later);
}

TEST(GpuDeviceMore, KernelsSerializeAcrossStreams) {
  // One exec engine: kernels on different streams still run one at a time
  // (the pre-Fermi constraint of section 7).
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  const auto s1 = dev.create_stream();
  KernelLaunch heavy{.name = "a",
                     .threads = 10'000,
                     .body = [](ThreadCtx&) {},
                     .cost = {.instructions = 50'000}};
  const auto first = dev.launch(heavy, kDefaultStream);
  const auto second = dev.launch(heavy, s1);
  EXPECT_GE(second.start, first.end);
}

TEST(GpuDeviceMore, AllocationChurn) {
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(0u));
  for (int round = 0; round < 100; ++round) {
    auto a = dev.alloc(1 << 20);
    auto b = dev.alloc(1 << 20);
    EXPECT_EQ(dev.allocated_bytes(), 2u << 20);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
}

TEST(GpuDeviceMore, ConcurrentOpsFromTwoThreadsAreSafe) {
  // A master thread launching kernels while a control-plane thread uploads
  // tables — the DynamicIpv4ForwardApp::sync scenario.
  GpuDevice dev(0, topo(), std::make_shared<SimtExecutor>(2u));
  auto table_a = dev.alloc(1 << 16);
  auto table_b = dev.alloc(1 << 16);
  auto io = dev.alloc(1 << 12);

  std::atomic<bool> stop{false};
  std::thread uploader([&] {
    const std::vector<u8> table(1 << 16, 0x55);
    while (!stop.load(std::memory_order_relaxed)) {
      dev.memcpy_h2d(table_b, 0, table);
    }
  });

  const u8* in = io.as<const u8>();
  for (int round = 0; round < 200; ++round) {
    KernelLaunch kernel{.name = "reader",
                        .threads = 256,
                        .body = [=](ThreadCtx& ctx) { (void)in[ctx.thread_id() % 4096]; },
                        .cost = {.instructions = 10}};
    dev.launch(kernel);
  }
  stop.store(true, std::memory_order_relaxed);
  uploader.join();
  EXPECT_GE(dev.kernels_launched(), 200u);
}

TEST(GpuDeviceMore, DefaultConstructedBufferIsInvalid) {
  DeviceBuffer buffer;
  EXPECT_FALSE(buffer.valid());
  EXPECT_EQ(buffer.size(), 0u);
}

}  // namespace
}  // namespace ps::gpu
