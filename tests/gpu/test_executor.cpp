// SIMT executor: full grid coverage, warp geometry, divergence tracking.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "gpu/executor.hpp"

namespace ps::gpu {
namespace {

TEST(SimtExecutor, RunsEveryThreadExactlyOnce) {
  SimtExecutor exec(4);
  std::vector<std::atomic<int>> hits(10'000);
  const KernelBody body = [&](ThreadCtx& ctx) {
    hits[ctx.thread_id()].fetch_add(1, std::memory_order_relaxed);
  };
  const auto stats = exec.run(10'000, body);
  EXPECT_EQ(stats.threads, 10'000u);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SimtExecutor, InlineModeWorks) {
  SimtExecutor exec(0);  // no worker threads: runs on the caller
  std::vector<int> out(100, 0);
  exec.run(100, [&](ThreadCtx& ctx) { out[ctx.thread_id()] = static_cast<int>(ctx.thread_id()); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(SimtExecutor, ZeroThreadsIsANoop) {
  SimtExecutor exec(2);
  const auto stats = exec.run(0, [](ThreadCtx&) { FAIL(); });
  EXPECT_EQ(stats.threads, 0u);
  EXPECT_EQ(stats.warps, 0u);
}

TEST(SimtExecutor, WarpGeometry) {
  SimtExecutor exec(0);
  std::vector<u32> warp_of(100), lane_of(100);
  exec.run(100, [&](ThreadCtx& ctx) {
    warp_of[ctx.thread_id()] = ctx.warp_id();
    lane_of[ctx.thread_id()] = ctx.lane_id();
  });
  EXPECT_EQ(warp_of[0], 0u);
  EXPECT_EQ(warp_of[31], 0u);
  EXPECT_EQ(warp_of[32], 1u);
  EXPECT_EQ(lane_of[33], 1u);
  EXPECT_EQ(warp_of[99], 3u);

  const auto stats = exec.run(100, [](ThreadCtx&) {});
  EXPECT_EQ(stats.warps, 4u);  // ceil(100/32)
}

TEST(SimtExecutor, NoDivergenceYieldsFullEfficiency) {
  SimtExecutor exec(2);
  const auto stats = exec.run(
      1024, [](ThreadCtx& ctx) { ctx.record_path(0); }, /*track_divergence=*/true);
  EXPECT_DOUBLE_EQ(stats.warp_efficiency, 1.0);
}

TEST(SimtExecutor, FullDivergenceHalvesEfficiency) {
  // Every warp splits into two paths: lockstep execution must run both,
  // so useful-lane efficiency is 1/2 (section 2.1's if/else masking).
  SimtExecutor exec(2);
  const auto stats = exec.run(
      1024, [](ThreadCtx& ctx) { ctx.record_path(ctx.lane_id() % 2 == 0 ? 0 : 1); },
      /*track_divergence=*/true);
  EXPECT_DOUBLE_EQ(stats.warp_efficiency, 0.5);
}

TEST(SimtExecutor, PartialDivergenceAveragesAcrossWarps) {
  // Even warps diverge 2-way, odd warps stay uniform -> mean 0.75.
  SimtExecutor exec(2);
  const auto stats = exec.run(
      64 * 32,
      [](ThreadCtx& ctx) {
        ctx.record_path(ctx.warp_id() % 2 == 0 ? static_cast<u8>(ctx.lane_id() % 2) : u8{0});
      },
      /*track_divergence=*/true);
  EXPECT_DOUBLE_EQ(stats.warp_efficiency, 0.75);
}

TEST(SimtExecutor, UntrackedRunsReportFullEfficiency) {
  SimtExecutor exec(2);
  const auto stats = exec.run(256, [](ThreadCtx&) {});
  EXPECT_DOUBLE_EQ(stats.warp_efficiency, 1.0);
}

TEST(SimtExecutor, BackToBackLaunchesAreIsolated) {
  SimtExecutor exec(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<u64> sum{0};
    exec.run(1000, [&](ThreadCtx& ctx) {
      sum.fetch_add(ctx.thread_id(), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  }
}

TEST(SimtExecutor, LargeGridSpansManyBlocks) {
  SimtExecutor exec(4);
  std::atomic<u64> count{0};
  exec.run(100'000, [&](ThreadCtx&) { count.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(count.load(), 100'000u);
}

}  // namespace
}  // namespace ps::gpu
