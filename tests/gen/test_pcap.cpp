// Pcap writer: well-formed captures, round-trip through our reader, and
// byte-level header checks against the libpcap format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gen/pcap.hpp"
#include "gen/traffic.hpp"

namespace ps::gen {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(Pcap, GlobalHeaderIsLibpcap) {
  const auto path = temp_path("header.pcap");
  {
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
  }
  std::ifstream in(path, std::ios::binary);
  u8 header[24];
  ASSERT_TRUE(in.read(reinterpret_cast<char*>(header), sizeof(header)));
  u32 magic, linktype;
  std::memcpy(&magic, header, 4);
  std::memcpy(&linktype, header + 20, 4);
  EXPECT_EQ(magic, 0xa1b2c3d4u);
  EXPECT_EQ(linktype, 1u);  // LINKTYPE_ETHERNET
  std::remove(path.c_str());
}

TEST(Pcap, FramesRoundTrip) {
  const auto path = temp_path("roundtrip.pcap");
  TrafficGen traffic({.frame_size = 96, .seed = 1});
  std::vector<net::FrameBuffer> originals;
  {
    PcapWriter writer(path);
    for (int i = 0; i < 10; ++i) {
      originals.push_back(traffic.next_frame());
      writer.on_frame(0, originals.back());
    }
    EXPECT_EQ(writer.frames_written(), 10u);
  }

  const auto frames = read_pcap(path);
  ASSERT_EQ(frames.size(), 10u);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i], originals[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(Pcap, ExplicitTimestampsRoundTrip) {
  const auto path = temp_path("stamped.pcap");
  {
    PcapWriter writer(path);
    const std::vector<u8> frame(64, 0xee);
    writer.write(frame, seconds(1.5));
    writer.write(frame, seconds(2.25));
  }
  std::ifstream in(path, std::ios::binary);
  in.seekg(24);  // skip global header
  u32 sec, usec;
  in.read(reinterpret_cast<char*>(&sec), 4);
  in.read(reinterpret_cast<char*>(&usec), 4);
  EXPECT_EQ(sec, 1u);
  EXPECT_EQ(usec, 500'000u);
  std::remove(path.c_str());
}

TEST(Pcap, AsWireSinkBehindPorts) {
  // Captures everything a port transmits — the tcpdump-on-the-wire role.
  const auto path = temp_path("wire.pcap");
  {
    nic::NicPort port(0, pcie::Topology::single_node(), {});
    PcapWriter writer(path);
    port.set_wire_sink(&writer);

    TrafficGen traffic({.seed = 2});
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(port.transmit(0, traffic.next_frame()));
  }
  const auto frames = read_pcap(path);
  ASSERT_EQ(frames.size(), 5u);
  net::PacketView view;
  for (auto frame : frames) {
    EXPECT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
              net::ParseStatus::kOk);
  }
  std::remove(path.c_str());
}

TEST(Pcap, SyntheticClockStampsOneMicrosecondPerFrame) {
  // The deterministic capture mode (DESIGN.md §18): frame i is stamped i
  // microseconds after the first frame. Epoch is the first frame written,
  // so captures are byte-identical run to run.
  const auto path = temp_path("synthetic.pcap");
  {
    PcapWriter writer(path, PcapClock::kSynthetic);
    const std::vector<u8> frame(64, 0x11);
    for (int i = 0; i < 4; ++i) writer.on_frame(0, frame);
  }
  const auto records = read_pcap_records(path);
  ASSERT_EQ(records.size(), 4u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].timestamp, static_cast<Picos>(i) * kPicosPerMicro) << i;
  }
  std::remove(path.c_str());
}

TEST(Pcap, MonotonicClockIsNonDecreasingFromConstruction) {
  // Wall-capture mode: microseconds of steady_clock elapsed since the
  // writer was constructed, clamped non-decreasing — always replayable.
  const auto path = temp_path("monotonic.pcap");
  {
    PcapWriter writer(path, PcapClock::kMonotonic);
    const std::vector<u8> frame(64, 0x22);
    for (int i = 0; i < 16; ++i) writer.on_frame(0, frame);
  }
  const auto records = read_pcap_records(path);
  ASSERT_EQ(records.size(), 16u);
  EXPECT_GE(records.front().timestamp, 0);
  // Epoch is writer construction, not boot or the Unix epoch: the whole
  // capture spans well under a second of elapsed time.
  EXPECT_LT(records.back().timestamp, kPicosPerSec);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].timestamp, records[i - 1].timestamp) << i;
  }
  std::remove(path.c_str());
}

TEST(Pcap, RecordsReaderRoundTripsExplicitStamps) {
  const auto path = temp_path("records.pcap");
  const std::vector<u8> small(60, 0x33), big(512, 0x44);
  {
    PcapWriter writer(path);
    writer.write(small, seconds(0.25));
    writer.write(big, seconds(3.5));
  }
  const auto records = read_pcap_records(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].timestamp, seconds(0.25));
  EXPECT_EQ(records[0].bytes, small);
  EXPECT_EQ(records[1].timestamp, seconds(3.5));
  EXPECT_EQ(records[1].bytes, big);
  std::remove(path.c_str());
}

TEST(Pcap, ReaderRejectsGarbage) {
  const auto path = temp_path("garbage.pcap");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a capture file at all";
  }
  EXPECT_TRUE(read_pcap(path).empty());
  EXPECT_TRUE(read_pcap(temp_path("does-not-exist.pcap")).empty());
  EXPECT_TRUE(read_pcap_records(path).empty());
  EXPECT_TRUE(read_pcap_records(temp_path("does-not-exist.pcap")).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ps::gen
