// Load-shape properties (DESIGN.md §18): the IMIX window carries its
// 7:4:1 ratio exactly, the Zipf sampler's empirical rank frequencies
// track the analytic distribution, and the million-flow configuration
// stays allocation-free once warm — the properties the realistic bench
// series (imix_mpps, zipf1m_mpps) stand on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

#include "common/rng.hpp"
#include "gen/shape.hpp"
#include "gen/traffic.hpp"
#include "telemetry/alloc_stats.hpp"

namespace ps::gen {
namespace {

TEST(Imix, WindowFractionsAreExact) {
  // Over any aligned 12-frame window the mix is exactly 7 x 64, 4 x 594,
  // 1 x 1518 — not just in the limit.
  TrafficGen traffic({.seed = 3, .size_dist = SizeDist::kImix});
  for (int window = 0; window < 8; ++window) {
    std::map<std::size_t, int> counts;
    for (int i = 0; i < 12; ++i) ++counts[traffic.next_frame().size()];
    EXPECT_EQ(counts[64], 7) << "window " << window;
    EXPECT_EQ(counts[594], 4) << "window " << window;
    EXPECT_EQ(counts[1518], 1) << "window " << window;
  }
}

TEST(Imix, MeanWireBytesMatchesPattern) {
  double sum = 0.0;
  for (u32 size : kImixPattern) sum += static_cast<double>(wire_bytes(size));
  const double expected = sum / static_cast<double>(kImixPattern.size());
  EXPECT_DOUBLE_EQ(imix_mean_wire_bytes(), expected);

  TrafficGen traffic({.size_dist = SizeDist::kImix});
  EXPECT_DOUBLE_EQ(traffic.mean_wire_bytes(), expected);
}

TEST(Zipf, CdfIsProperDistribution) {
  ZipfSampler zipf(10'000, 1.0);
  EXPECT_EQ(zipf.size(), 10'000u);
  double total = 0.0;
  for (u32 r = 0; r < zipf.size(); ++r) {
    EXPECT_GT(zipf.probability(r), 0.0);
    if (r > 0) {
      EXPECT_LE(zipf.probability(r), zipf.probability(r - 1)) << r;
    }
    total += zipf.probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, EmpiricalRankFrequencyTracksAnalytic) {
  // Draw enough samples that the head ranks have tight empirical
  // frequencies, then compare against probability(r) within 10 %.
  constexpr u32 kRanks = 1000;
  constexpr u64 kSamples = 400'000;
  ZipfSampler zipf(kRanks, 1.0);
  Rng rng(99);
  std::vector<u64> hits(kRanks, 0);
  for (u64 i = 0; i < kSamples; ++i) {
    const u32 r = zipf.sample(rng);
    ASSERT_LT(r, kRanks);
    ++hits[r];
  }
  for (u32 r = 0; r < 20; ++r) {
    const double expected = zipf.probability(r);
    const double observed = static_cast<double>(hits[r]) / static_cast<double>(kSamples);
    EXPECT_NEAR(observed, expected, expected * 0.10) << "rank " << r;
  }
  // Heavy tail: rank 0 under s=1.0 over 1000 ranks has ~13 % of all
  // traffic — orders of magnitude above the uniform 0.1 %.
  EXPECT_GT(static_cast<double>(hits[0]) / static_cast<double>(kSamples), 0.10);
}

TEST(Zipf, DeterministicGivenSeed) {
  ZipfSampler zipf(4096, 1.2);
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(zipf.sample(a), zipf.sample(b)) << i;
}

TEST(Zipf, MillionFlowGenerationIsAllocationFree) {
  if (!telemetry::alloc_stats_enabled()) {
    GTEST_SKIP() << "built without PS_ALLOC_STATS (sanitizer build?)";
  }
  // The §13 steady-state contract extended to the generator: with the
  // Zipf table and scratch frame pre-sized at construction, producing
  // frames across a million distinct flows must not allocate.
  TrafficGen traffic({.seed = 11,
                      .flow_count = 1'000'000,
                      .size_dist = SizeDist::kImix,
                      .flow_dist = FlowDist::kZipf});
  net::FrameBuffer scratch;
  // Warmup: grow the caller-side buffer to the largest frame of the mix.
  for (int i = 0; i < 64; ++i) traffic.next_frame_into(scratch);

  const u64 before = telemetry::allocations();
  for (int i = 0; i < 20'000; ++i) traffic.next_frame_into(scratch);
  const u64 after = telemetry::allocations();
  EXPECT_EQ(after - before, 0u)
      << "million-flow Zipf generation allocated " << (after - before)
      << " times in steady state";
}

TEST(Zipf, MillionFlowModeDrawsManyDistinctFlows) {
  // zipf1m_mpps must exercise genuinely distinct flows, not a head so
  // heavy the tail never appears: 50k draws over 1M ranks at s=1.0
  // should see thousands of distinct ranks.
  ZipfSampler zipf(1'000'000, 1.0);
  Rng rng(5);
  std::unordered_set<u32> seen;
  for (int i = 0; i < 50'000; ++i) seen.insert(zipf.sample(rng));
  EXPECT_GT(seen.size(), 10'000u);
  EXPECT_LE(*std::max_element(seen.begin(), seen.end()), 1'000'000u - 1);
}

TEST(Bursty, OnOffPacingHitsDutyCycleMeanRate) {
  // offer_bursty alternates on/off windows on the model clock; the mean
  // offered rate over the run is gbps * on/(on+off).
  nic::NicPort port(0, pcie::Topology::single_node(), {.ring_size = 64});
  nic::NicPort* ports[] = {&port};
  TrafficGen traffic({.seed = 17});

  const double gbps = 1.0;
  const Picos duration = seconds(0.002);
  const Picos on = seconds(0.0001), off = seconds(0.0001);  // 50 % duty
  const auto result = traffic.offer_bursty(ports, gbps, duration, on, off);

  const double frames_per_sec = gbps * 1e9 / (traffic.mean_wire_bytes() * 8.0);
  const double expected = frames_per_sec * to_seconds(duration) * 0.5;
  EXPECT_NEAR(static_cast<double>(result.offered), expected, expected * 0.15);

  // Degenerate shapes: zero off-period reduces to plain pacing (double
  // the duty cycle's frames), zero on-period emits nothing.
  TrafficGen steady({.seed = 17});
  const auto all_on = steady.offer_bursty(ports, gbps, duration, on, 0);
  EXPECT_NEAR(static_cast<double>(all_on.offered), expected * 2.0, expected * 0.2);
  EXPECT_EQ(traffic.offer_bursty(ports, gbps, duration, 0, off).offered, 0u);
}

}  // namespace
}  // namespace ps::gen
