// RIB-covered destination pools: every sampled address must actually have
// a route — the property the Figure 11 workloads depend on.
#include <gtest/gtest.h>

#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::route {
namespace {

TEST(CoveredPools, EveryIpv4SampleHasARoute) {
  const auto rib = generate_ipv4_rib({.prefix_count = 20'000, .num_next_hops = 8, .seed = 1});
  Ipv4Table table;
  table.build(rib);

  const auto pool = sample_covered_ipv4(rib, 5000, 2);
  ASSERT_EQ(pool.size(), 5000u);
  for (const u32 addr : pool) {
    EXPECT_NE(table.lookup(net::Ipv4Addr(addr)), kNoRoute) << net::Ipv4Addr(addr).to_string();
  }
}

TEST(CoveredPools, EveryIpv6SampleHasARoute) {
  const auto rib = generate_ipv6_rib(20'000, 8, 3);
  Ipv6Table table;
  table.build(rib);

  const auto pool = sample_covered_ipv6(rib, 5000, 4);
  ASSERT_EQ(pool.size(), 5000u);
  for (const auto& addr : pool) {
    EXPECT_NE(table.lookup(addr), kNoRoute) << addr.to_string();
  }
}

TEST(CoveredPools, SamplesAreDeterministic) {
  const auto rib = generate_ipv4_rib({.prefix_count = 1000, .num_next_hops = 8, .seed = 5});
  EXPECT_EQ(sample_covered_ipv4(rib, 100, 6), sample_covered_ipv4(rib, 100, 6));
  EXPECT_NE(sample_covered_ipv4(rib, 100, 6), sample_covered_ipv4(rib, 100, 7));
}

TEST(CoveredPools, GeneratorDrawsOnlyFromPool) {
  const auto rib = generate_ipv4_rib({.prefix_count = 1000, .num_next_hops = 8, .seed = 8});
  Ipv4Table table;
  table.build(rib);

  gen::TrafficConfig config{.frame_size = 64, .seed = 9};
  config.ipv4_dst_pool = sample_covered_ipv4(rib, 256, 10);
  gen::TrafficGen traffic(config);

  for (int i = 0; i < 500; ++i) {
    auto frame = traffic.next_frame();
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
              net::ParseStatus::kOk);
    EXPECT_NE(table.lookup(view.ipv4().dst()), kNoRoute);
  }
}

}  // namespace
}  // namespace ps::route
