#include <gtest/gtest.h>

#include <unordered_set>

#include "core/testbed.hpp"
#include "gen/traffic.hpp"

namespace ps::gen {
namespace {

TEST(TrafficGen, FramesAreValidAndSized) {
  for (const u32 size : {64u, 128u, 512u, 1514u}) {
    TrafficGen traffic({.kind = TrafficKind::kIpv4Udp, .frame_size = size, .seed = 1});
    for (int i = 0; i < 20; ++i) {
      auto frame = traffic.next_frame();
      EXPECT_EQ(frame.size(), size);
      net::PacketView view;
      EXPECT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
                net::ParseStatus::kOk);
      EXPECT_EQ(view.ether_type, net::EtherType::kIpv4);
    }
  }
}

TEST(TrafficGen, Ipv6FramesParse) {
  TrafficGen traffic({.kind = TrafficKind::kIpv6Udp, .frame_size = 128, .seed = 2});
  auto frame = traffic.next_frame();
  net::PacketView view;
  EXPECT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.ether_type, net::EtherType::kIpv6);
}

TEST(TrafficGen, Deterministic) {
  TrafficGen a({.seed = 42}), b({.seed = 42});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_frame(), b.next_frame());
}

TEST(TrafficGen, RandomDestinationsVary) {
  // Section 6.1: random dst addresses/ports so every packet hits a
  // different table entry.
  TrafficGen traffic({.seed = 3});
  std::unordered_set<u32> dsts;
  for (int i = 0; i < 1000; ++i) {
    auto frame = traffic.next_frame();
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
              net::ParseStatus::kOk);
    dsts.insert(view.ipv4().dst().value);
  }
  EXPECT_GT(dsts.size(), 990u);
}

TEST(TrafficGen, FlowModeLimitsTupleSpace) {
  TrafficGen traffic({.seed = 4, .flow_count = 4});
  std::unordered_set<u64> tuples;
  for (int i = 0; i < 400; ++i) {
    auto frame = traffic.next_frame();
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
              net::ParseStatus::kOk);
    tuples.insert((static_cast<u64>(view.ipv4().src().value) << 32) |
                  view.ipv4().dst().value);
  }
  EXPECT_EQ(tuples.size(), 4u);
}

TEST(TrafficGen, FlowFramesCarrySequenceNumbers) {
  TrafficGen traffic({.seed = 5});
  auto f1 = traffic.frame_for_flow(9, 100);
  auto f2 = traffic.frame_for_flow(9, 101);
  const std::size_t payload = net::kMinUdpIpv4Frame;
  EXPECT_EQ(load_be32(f1.data() + payload), 9u);
  EXPECT_EQ(load_be32(f1.data() + payload + 4), 100u);
  EXPECT_EQ(load_be32(f2.data() + payload + 4), 101u);
  // Same flow id -> identical 5-tuple.
  net::PacketView v1, v2;
  ASSERT_EQ(net::parse_packet(f1.data(), static_cast<u32>(f1.size()), v1), net::ParseStatus::kOk);
  ASSERT_EQ(net::parse_packet(f2.data(), static_cast<u32>(f2.size()), v2), net::ParseStatus::kOk);
  EXPECT_EQ(v1.ipv4().src(), v2.ipv4().src());
  EXPECT_EQ(v1.udp().src_port(), v2.udp().src_port());
}

TEST(TrafficGen, OfferSpreadsAcrossPortsAndCountsDrops) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false,
                         .ring_size = 16},
                        core::RouterConfig{.use_gpu = false});
  TrafficGen traffic({.seed = 6});

  // 4 queues x 16 descriptors per port; offering far more must drop.
  const u64 accepted = traffic.offer(testbed.ports(), 2000);
  EXPECT_LT(accepted, 2000u);
  u64 drops = 0;
  for (auto* port : testbed.ports()) drops += port->rx_totals().drops;
  EXPECT_EQ(accepted + drops, 2000u);
}

TEST(TrafficGen, SinkCountsPerPort) {
  TrafficGen traffic({.seed = 7});
  const std::vector<u8> frame(64, 0);
  traffic.on_frame(2, frame);
  traffic.on_frame(2, frame);
  traffic.on_frame(5, frame);
  EXPECT_EQ(traffic.sunk_packets(), 3u);
  EXPECT_EQ(traffic.sunk_bytes(), 192u);
  EXPECT_EQ(traffic.sunk_on_port(2), 2u);
  EXPECT_EQ(traffic.sunk_on_port(5), 1u);
  traffic.reset_sink();
  EXPECT_EQ(traffic.sunk_packets(), 0u);
}


TEST(TrafficGen, PacedOfferingHitsTheTargetRate) {
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false,
                         .ring_size = 32768},
                        core::RouterConfig{.use_gpu = false});
  TrafficGen traffic({.frame_size = 64, .seed = 8});

  // 5 Gbps of 64 B frames for 2 ms of model time: 5e9/(88*8)*2e-3 ~ 14,204.
  const auto result = traffic.offer_paced(testbed.ports(), 5.0, 2 * kPicosPerMilli);
  EXPECT_NEAR(static_cast<double>(result.offered), 14'204.0, 50.0);
  EXPECT_EQ(result.accepted, result.offered);  // rings sized to absorb it
}

}  // namespace
}  // namespace ps::gen
