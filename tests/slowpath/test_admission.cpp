// Slow-path admission control: token-bucket rate limiting plus the
// host-stack memory bound, with every refusal accounted.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "slowpath/admission.hpp"

namespace ps::slowpath {
namespace {

TEST(Admission, BurstAdmittedThenRateShed) {
  // A glacial refill rate makes the outcome deterministic: exactly the
  // burst is admitted, everything after is shed by the rate limiter.
  Admission admission({.rate_pps = 0.001, .burst = 8, .queue_capacity = 100});
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(admission.admit(/*retained_frames=*/0)) << "burst packet " << i;
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(admission.admit(/*retained_frames=*/0));
  }
  EXPECT_EQ(admission.stats().admitted, 8u);
  EXPECT_EQ(admission.stats().shed_rate, 5u);
  EXPECT_EQ(admission.stats().shed_queue, 0u);
}

TEST(Admission, QueueBoundShedsBeforeTouchingTheBucket) {
  Admission admission({.rate_pps = 1e9, .burst = 1e6, .queue_capacity = 4});
  EXPECT_TRUE(admission.admit(3));   // below the bound
  EXPECT_FALSE(admission.admit(4));  // at the bound: refused
  EXPECT_FALSE(admission.admit(10000));
  EXPECT_EQ(admission.stats().admitted, 1u);
  EXPECT_EQ(admission.stats().shed_queue, 2u);
  EXPECT_EQ(admission.stats().shed_rate, 0u);
}

TEST(Admission, BucketRefillsOverWallClock) {
  // 10k tokens/s -> one token every 100us; after draining the burst, a
  // short real sleep makes admission possible again.
  Admission admission({.rate_pps = 10'000, .burst = 2, .queue_capacity = 100});
  EXPECT_TRUE(admission.admit(0));
  EXPECT_TRUE(admission.admit(0));
  // The bucket may or may not be empty this same instant, but after 50ms
  // (500 tokens of refill, capped at burst=2) it must admit again.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(admission.admit(0));
  EXPECT_GE(admission.stats().admitted, 3u);
}

TEST(Admission, DefaultsAreGenerousForLightSlowpathTraffic) {
  // The router's default config must not perturb functional tests that
  // push a handful of TTL-expired packets.
  Admission admission;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.admit(static_cast<std::size_t>(i)));
  }
  EXPECT_EQ(admission.stats().admitted, 100u);
}

}  // namespace
}  // namespace ps::slowpath
