// Slow-path host stack: ICMP Time Exceeded generation, local delivery,
// and the unhandled bucket.
#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "slowpath/host_stack.hpp"

namespace ps::slowpath {
namespace {

net::FrameBuffer expired_frame(net::Ipv4Addr src, net::Ipv4Addr dst) {
  net::FrameSpec spec;
  spec.ttl = 1;
  spec.frame_size = 96;
  return net::build_udp_ipv4(spec, src, dst);
}

TEST(HostStack, TtlExpiredProducesIcmpTimeExceeded) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  const auto offender = expired_frame(net::Ipv4Addr(10, 0, 0, 5), net::Ipv4Addr(99, 9, 9, 9));

  const auto reply = stack.handle(offender, /*in_port=*/3);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(stack.stats().icmp_time_exceeded, 1u);

  net::PacketView view;
  ASSERT_EQ(net::parse_packet(const_cast<u8*>(reply->data()),
                              static_cast<u32>(reply->size()), view),
            net::ParseStatus::kOk);  // valid IP checksum
  EXPECT_EQ(view.ip_proto, net::IpProto::kIcmp);
  EXPECT_EQ(view.ipv4().src(), net::Ipv4Addr(192, 0, 2, 1));  // router speaks
  EXPECT_EQ(view.ipv4().dst(), net::Ipv4Addr(10, 0, 0, 5));   // back to sender

  const auto& icmp = *reinterpret_cast<const net::IcmpHeader*>(reply->data() + view.l4_offset);
  EXPECT_EQ(icmp.type, 11);  // Time Exceeded
  EXPECT_EQ(icmp.code, 0);

  // ICMP checksum over the ICMP portion folds to zero when valid.
  const std::span<const u8> icmp_bytes{reply->data() + view.l4_offset,
                                       reply->size() - view.l4_offset};
  EXPECT_EQ(net::checksum(icmp_bytes), 0x0000);
}

TEST(HostStack, IcmpQuotesOffendingHeader) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  const auto offender = expired_frame(net::Ipv4Addr(10, 0, 0, 5), net::Ipv4Addr(99, 9, 9, 9));
  const auto reply = stack.handle(offender, 0);
  ASSERT_TRUE(reply.has_value());

  // RFC 792: the quoted data is the offender's IP header + 8 bytes.
  const std::size_t quote_offset = 14 + 20 + 8;  // eth + outer ip + icmp hdr
  EXPECT_TRUE(std::equal(offender.begin() + 14, offender.begin() + 14 + 28,
                         reply->begin() + quote_offset));
}

TEST(HostStack, LocalDelivery) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  stack.add_local_address(net::Ipv4Addr(192, 0, 2, 99));

  net::FrameSpec spec;  // healthy TTL: addressed TO the router
  const auto to_router = net::build_udp_ipv4(spec, net::Ipv4Addr(8, 8, 8, 8),
                                             net::Ipv4Addr(192, 0, 2, 99));
  EXPECT_FALSE(stack.handle(to_router, 0).has_value());
  EXPECT_EQ(stack.stats().delivered_locally, 1u);
  ASSERT_EQ(stack.local_deliveries().size(), 1u);
  EXPECT_EQ(stack.local_deliveries()[0].size(), to_router.size());
}

TEST(HostStack, UnhandledBucket) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));

  // Non-IP frame.
  auto arp = net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  reinterpret_cast<net::EthernetHeader*>(arp.data())->set_ethertype(net::EtherType::kArp);
  EXPECT_FALSE(stack.handle(arp, 0).has_value());

  // Healthy transit packet that somehow reached the slow path.
  const auto transit =
      net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  EXPECT_FALSE(stack.handle(transit, 0).has_value());
  EXPECT_EQ(stack.stats().unhandled, 2u);
}

TEST(HostStack, RepliesAreAtLeastMinimumFrameSize) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  net::FrameSpec tiny;
  tiny.ttl = 1;
  tiny.frame_size = 42;  // smallest UDP/IPv4 frame
  const auto offender =
      net::build_udp_ipv4(tiny, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  const auto reply = stack.handle(offender, 0);
  ASSERT_TRUE(reply.has_value());
  EXPECT_GE(reply->size(), net::kMinUdpIpv4Frame);
}


net::FrameBuffer echo_request(net::Ipv4Addr src, net::Ipv4Addr dst, u16 ident, u16 seq) {
  // Hand-built ICMP echo request with 16 payload bytes.
  const u32 total = 14 + 20 + 8 + 16;
  net::FrameBuffer out(total, 0);
  auto& eth = *reinterpret_cast<net::EthernetHeader*>(out.data());
  eth.set_src(net::MacAddr::for_port(9));
  eth.set_dst(net::MacAddr::for_port(0));
  eth.set_ethertype(net::EtherType::kIpv4);

  auto& ip = *reinterpret_cast<net::Ipv4Header*>(out.data() + 14);
  ip.set_version_ihl(4, 5);
  ip.set_total_length(static_cast<u16>(total - 14));
  ip.ttl = 64;
  ip.set_proto(net::IpProto::kIcmp);
  ip.set_src(src);
  ip.set_dst(dst);

  auto& icmp = *reinterpret_cast<net::IcmpHeader*>(out.data() + 34);
  icmp.type = 8;  // echo request
  icmp.code = 0;
  store_be16(icmp.rest_be, ident);
  store_be16(icmp.rest_be + 2, seq);
  for (u32 i = 0; i < 16; ++i) out[42 + i] = static_cast<u8>(i);
  icmp.set_checksum(net::checksum({out.data() + 34, total - 34}));
  net::ipv4_fill_checksum(ip);
  return out;
}

TEST(HostStack, EchoRequestToRouterGetsReply) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  const auto request = echo_request(net::Ipv4Addr(10, 0, 0, 9),
                                    net::Ipv4Addr(192, 0, 2, 1), 0x1234, 7);

  const auto reply = stack.handle(request, /*in_port=*/5);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(stack.stats().icmp_echo_replies, 1u);
  EXPECT_EQ(stack.stats().delivered_locally, 0u);

  net::PacketView view;
  ASSERT_EQ(net::parse_packet(const_cast<u8*>(reply->data()),
                              static_cast<u32>(reply->size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.ipv4().src(), net::Ipv4Addr(192, 0, 2, 1));
  EXPECT_EQ(view.ipv4().dst(), net::Ipv4Addr(10, 0, 0, 9));

  const auto& icmp = *reinterpret_cast<const net::IcmpHeader*>(reply->data() + view.l4_offset);
  EXPECT_EQ(icmp.type, 0);  // echo reply
  EXPECT_EQ(load_be16(icmp.rest_be), 0x1234);      // identifier preserved
  EXPECT_EQ(load_be16(icmp.rest_be + 2), 7);       // sequence preserved
  // Payload preserved byte for byte.
  EXPECT_TRUE(std::equal(reply->begin() + 42, reply->end(), request.begin() + 42));
  // ICMP checksum verifies.
  EXPECT_EQ(net::checksum({reply->data() + view.l4_offset, reply->size() - view.l4_offset}),
            0x0000);
}

TEST(HostStack, EchoRequestToTransitAddressIsNotAnswered) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  const auto request = echo_request(net::Ipv4Addr(10, 0, 0, 9),
                                    net::Ipv4Addr(99, 99, 99, 99), 1, 1);
  EXPECT_FALSE(stack.handle(request, 0).has_value());
  EXPECT_EQ(stack.stats().icmp_echo_replies, 0u);
}

TEST(HostStack, NonEchoIcmpToRouterDeliversLocally) {
  HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  auto request = echo_request(net::Ipv4Addr(10, 0, 0, 9), net::Ipv4Addr(192, 0, 2, 1), 1, 1);
  // Rewrite to an echo *reply* (someone pinging from us): no auto-answer.
  auto& icmp = *reinterpret_cast<net::IcmpHeader*>(request.data() + 34);
  icmp.type = 0;
  icmp.set_checksum(0);
  icmp.set_checksum(net::checksum({request.data() + 34, request.size() - 34}));
  EXPECT_FALSE(stack.handle(request, 0).has_value());
  EXPECT_EQ(stack.stats().delivered_locally, 1u);
}

}  // namespace
}  // namespace ps::slowpath
