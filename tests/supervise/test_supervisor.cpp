// Heartbeat supervisor unit tests: bounded stall detection, recovery
// transitions, callback ordering, and the threaded mode.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/heartbeat.hpp"
#include "supervise/supervisor.hpp"

namespace ps::supervise {
namespace {

using namespace std::chrono_literals;

TEST(Supervisor, BeatingThreadStaysLive) {
  Supervisor sup({.check_interval = 1ms, .stall_window = 5ms});
  Heartbeat hb;
  const int id = sup.add_thread("worker.0", ThreadKind::kWorker, &hb);

  for (int i = 0; i < 5; ++i) {
    hb.beat();
    std::this_thread::sleep_for(2ms);
    sup.check_now();
  }
  EXPECT_EQ(sup.health(id).state, ThreadState::kLive);
  EXPECT_EQ(sup.stalls_detected(), 0u);
  EXPECT_TRUE(sup.stall_events().empty());
}

TEST(Supervisor, SilentThreadDetectedWithinWindow) {
  Supervisor sup({.check_interval = 1ms, .stall_window = 5ms});
  Heartbeat hb;
  hb.beat();

  std::atomic<int> stalls{0};
  const int id = sup.add_thread(
      "master.0", ThreadKind::kMaster, &hb,
      [&](const StallEvent& e) {
        ++stalls;
        EXPECT_EQ(e.name, "master.0");
        EXPECT_EQ(e.kind, ThreadKind::kMaster);
        EXPECT_GT(e.silent_for, 5ms);
      });

  sup.check_now();  // baseline: beat observed, thread live
  EXPECT_EQ(sup.health(id).state, ThreadState::kLive);

  std::this_thread::sleep_for(8ms);  // silence > stall_window
  sup.check_now();
  EXPECT_EQ(sup.health(id).state, ThreadState::kStalled);
  EXPECT_EQ(stalls.load(), 1);
  ASSERT_EQ(sup.stall_events().size(), 1u);
  EXPECT_EQ(sup.stall_events()[0].thread_id, id);

  // Still silent: the stall is declared once, not per check.
  std::this_thread::sleep_for(8ms);
  sup.check_now();
  EXPECT_EQ(stalls.load(), 1);
  EXPECT_EQ(sup.stalls_detected(), 1u);
}

TEST(Supervisor, ResumedBeatsTriggerRecovery) {
  Supervisor sup({.check_interval = 1ms, .stall_window = 5ms});
  Heartbeat hb;
  std::atomic<int> recovered{0};
  const int id = sup.add_thread(
      "worker.1", ThreadKind::kWorker, &hb, {},
      [&](int thread_id) {
        ++recovered;
        EXPECT_EQ(thread_id, 0);
      });

  sup.check_now();
  std::this_thread::sleep_for(8ms);
  sup.check_now();
  ASSERT_EQ(sup.health(id).state, ThreadState::kStalled);

  hb.beat();  // the thread came back
  sup.check_now();
  EXPECT_EQ(sup.health(id).state, ThreadState::kLive);
  EXPECT_EQ(recovered.load(), 1);
  EXPECT_EQ(sup.health(id).stalls, 1u);
  EXPECT_EQ(sup.health(id).recoveries, 1u);
  EXPECT_EQ(sup.recoveries(), 1u);
}

TEST(Supervisor, ThreadedModeDetectsAndRecoversAutomatically) {
  Supervisor sup({.check_interval = 1ms, .stall_window = 5ms});
  Heartbeat live_hb;
  Heartbeat hung_hb;
  const int live_id = sup.add_thread("worker.live", ThreadKind::kWorker, &live_hb);
  const int hung_id = sup.add_thread("worker.hung", ThreadKind::kWorker, &hung_hb);

  std::atomic<bool> run{true};
  std::thread beater([&] {
    while (run.load()) {
      live_hb.beat();
      std::this_thread::sleep_for(1ms);
    }
  });

  sup.start();
  // Detection is bounded by stall_window + check_interval + scheduling
  // noise; 500ms is orders of magnitude of slack.
  const auto deadline = std::chrono::steady_clock::now() + 500ms;
  while (sup.stalls_detected() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(sup.health(hung_id).state, ThreadState::kStalled);
  EXPECT_EQ(sup.health(live_id).state, ThreadState::kLive);

  hung_hb.beat();
  const auto deadline2 = std::chrono::steady_clock::now() + 500ms;
  while (sup.recoveries() < 1 && std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(sup.health(hung_id).state, ThreadState::kLive);
  EXPECT_EQ(sup.health(hung_id).recoveries, 1u);

  sup.stop();
  run.store(false);
  beater.join();
  EXPECT_EQ(sup.health(live_id).stalls, 0u);
}

TEST(Supervisor, StartRebaselinesRegistrationGap) {
  Supervisor sup({.check_interval = 1ms, .stall_window = 5ms});
  Heartbeat hb;
  std::atomic<int> stalls{0};
  sup.add_thread("worker.0", ThreadKind::kWorker, &hb,
                 [&](const StallEvent&) { ++stalls; });

  // A long gap between registration and start() must not be read as
  // silence: the supervised thread may not even have been spawned yet.
  std::this_thread::sleep_for(10ms);
  sup.start();
  std::this_thread::sleep_for(3ms);  // less than the window after start
  sup.stop();
  EXPECT_EQ(stalls.load(), 0);
}

}  // namespace
}  // namespace ps::supervise
