// NIC port model: RX steering + DMA into huge buffers, ring-full drops,
// TX to the wire, interrupt edge semantics, per-queue statistics.
#include <gtest/gtest.h>

#include "gen/traffic.hpp"
#include "nic/nic.hpp"
#include "perf/model.hpp"

namespace ps::nic {
namespace {

net::FrameBuffer frame_for(u32 size = 64, u16 dst_port = 2000) {
  net::FrameSpec spec;
  spec.frame_size = size;
  spec.dst_port = dst_port;
  return net::build_udp_ipv4(spec, net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2));
}

TEST(NicPort, ReceiveLandsInHugeBufferCell) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 1, .ring_size = 8});
  const auto frame = frame_for(100);
  ASSERT_TRUE(port.receive_frame(frame));

  ASSERT_EQ(port.rx_available(0), 1u);
  RxSlot slot;
  ASSERT_EQ(port.rx_peek(0, &slot, 1), 1u);
  EXPECT_EQ(slot.length, 100);
  EXPECT_TRUE(slot.checksum_ok);
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), slot.data));

  port.rx_release(0, 1);
  EXPECT_EQ(port.rx_available(0), 0u);
}

TEST(NicPort, RingFullDrops) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 1, .ring_size = 4});
  const auto frame = frame_for();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(port.receive_frame(frame));
  EXPECT_FALSE(port.receive_frame(frame));  // full
  EXPECT_EQ(port.rx_totals().drops, 1u);
  EXPECT_EQ(port.rx_totals().packets, 4u);

  // Draining makes room again.
  port.rx_release(0, 2);
  EXPECT_TRUE(port.receive_frame(frame));
}

TEST(NicPort, CellsRecycleAcrossWraps) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 1, .ring_size = 4});
  for (int round = 0; round < 10; ++round) {
    for (u32 i = 0; i < 4; ++i) {
      ASSERT_TRUE(port.receive_frame(frame_for(64 + round)));
    }
    RxSlot slots[4];
    ASSERT_EQ(port.rx_peek(0, slots, 4), 4u);
    for (const auto& slot : slots) EXPECT_EQ(slot.length, 64 + round);
    port.rx_release(0, 4);
  }
  EXPECT_EQ(port.rx_totals().packets, 40u);
}

TEST(NicPort, RssSteersByFlow) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 4, .ring_size = 256});
  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv4Udp, .seed = 5});

  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(port.receive_frame(traffic.next_frame()));
  }
  // Random flows must spread over all four queues.
  u32 used = 0;
  for (u16 q = 0; q < 4; ++q) {
    if (port.rx_available(q) > 0) ++used;
  }
  EXPECT_EQ(used, 4u);

  // Same flow -> same queue, always.
  const auto flow_frame = traffic.frame_for_flow(7);
  u16 first_queue = 0xffff;
  for (int i = 0; i < 8; ++i) {
    for (u16 q = 0; q < 4; ++q) port.rx_release(q, port.rx_available(q));
    ASSERT_TRUE(port.receive_frame(flow_frame));
    for (u16 q = 0; q < 4; ++q) {
      if (port.rx_available(q) > 0) {
        if (first_queue == 0xffff) first_queue = q;
        EXPECT_EQ(q, first_queue);
      }
    }
  }
}

TEST(NicPort, RssConfinementRestrictsQueues) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 4, .ring_size = 256});
  port.configure_rss(0, 2);  // NUMA confinement: only queues 0 and 1
  gen::TrafficGen traffic({.seed = 6});
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(port.receive_frame(traffic.next_frame()));
  EXPECT_GT(port.rx_available(0), 0u);
  EXPECT_GT(port.rx_available(1), 0u);
  EXPECT_EQ(port.rx_available(2), 0u);
  EXPECT_EQ(port.rx_available(3), 0u);
}

TEST(NicPort, TransmitReachesWireSink) {
  NicPort port(3, pcie::Topology::paper_server(), {.num_tx_queues = 2});
  NullWire sink;
  port.set_wire_sink(&sink);

  const auto frame = frame_for(256);
  ASSERT_TRUE(port.transmit(1, frame));
  EXPECT_EQ(sink.frames(), 1u);
  EXPECT_EQ(sink.bytes(), 256u);
  EXPECT_EQ(port.tx_totals().packets, 1u);
  EXPECT_EQ(port.tx_totals().bytes, 256u);
}

TEST(NicPort, TransmitRejectsOversizedFrames) {
  NicPort port(0, pcie::Topology::single_node(), {});
  std::vector<u8> oversized(mem::kDataCellSize + 1, 0);
  EXPECT_FALSE(port.transmit(0, oversized));
  EXPECT_FALSE(port.receive_frame(oversized));
  EXPECT_FALSE(port.transmit(0, {}));
}

TEST(NicPort, BadChecksumFlaggedInDescriptor) {
  NicPort port(0, pcie::Topology::single_node(), {});
  auto frame = frame_for();
  frame[sizeof(net::EthernetHeader) + 10] ^= 0xff;
  ASSERT_TRUE(port.receive_frame(frame));
  RxSlot slot;
  ASSERT_EQ(port.rx_peek(0, &slot, 1), 1u);
  EXPECT_FALSE(slot.checksum_ok);  // hardware checksum offload marks it
}

TEST(NicPort, InterruptFiresOnEmptyToNonEmptyEdge) {
  NicPort port(0, pcie::Topology::single_node(), {});
  int interrupts = 0;
  port.set_interrupt_handler([&](int, u16) { ++interrupts; });

  // Without arming: no interrupt.
  ASSERT_TRUE(port.receive_frame(frame_for()));
  EXPECT_EQ(interrupts, 0);
  port.rx_release(0, 1);

  // Armed: exactly one interrupt on the edge, then auto-disabled.
  port.enable_rx_interrupt(0);
  ASSERT_TRUE(port.receive_frame(frame_for()));
  EXPECT_EQ(interrupts, 1);
  ASSERT_TRUE(port.receive_frame(frame_for()));
  EXPECT_EQ(interrupts, 1);  // not re-armed
  EXPECT_FALSE(port.rx_interrupt_enabled(0));
}

TEST(NicPort, EnableWithPendingPacketsFiresImmediately) {
  // The race section 5.2 worries about: packets arrive between the last
  // poll and arming the interrupt.
  NicPort port(0, pcie::Topology::single_node(), {});
  int interrupts = 0;
  port.set_interrupt_handler([&](int, u16) { ++interrupts; });

  ASSERT_TRUE(port.receive_frame(frame_for()));
  port.enable_rx_interrupt(0);
  EXPECT_EQ(interrupts, 1);  // delivered synchronously, not lost
  EXPECT_FALSE(port.rx_interrupt_enabled(0));
}

TEST(NicPort, PerQueueStatsAggregateOnDemand) {
  NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 4, .ring_size = 128});
  gen::TrafficGen traffic({.seed = 9});
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(port.receive_frame(traffic.next_frame()));

  u64 per_queue_sum = 0;
  for (u16 q = 0; q < 4; ++q) per_queue_sum += port.rx_queue_stats(q).packets;
  EXPECT_EQ(per_queue_sum, 100u);
  EXPECT_EQ(port.rx_totals().packets, 100u);
}

TEST(NicPort, DmaChargesLandOnTheRightIoh) {
  const auto topo = pcie::Topology::paper_server();
  perf::CostLedger ledger;

  NicPort port0(0, topo, {});  // node 0 -> IOH 0
  NicPort port4(4, topo, {});  // node 1 -> IOH 1
  port0.set_ledger(&ledger);
  port4.set_ledger(&ledger);

  ASSERT_TRUE(port0.receive_frame(frame_for()));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohD2h, 0}), 0);
  EXPECT_EQ(ledger.busy({perf::ResourceKind::kIohD2h, 1}), 0);

  ASSERT_TRUE(port4.transmit(0, frame_for()));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohH2d, 1}), 0);
  EXPECT_EQ(ledger.busy({perf::ResourceKind::kIohH2d, 0}), 0);
}

}  // namespace
}  // namespace ps::nic
