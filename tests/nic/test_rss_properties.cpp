// Property tests on the Toeplitz hash: GF(2) linearity, key sensitivity,
// and queue-balance under random flows.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nic/rss.hpp"

namespace ps::nic {
namespace {

std::vector<u8> random_input(Rng& rng, std::size_t n) {
  std::vector<u8> v(n);
  for (auto& b : v) b = static_cast<u8>(rng.next_u64());
  return v;
}

// Toeplitz is linear over GF(2): H(a ^ b) == H(a) ^ H(b) for equal-length
// inputs. This pins the implementation far more tightly than fixed
// vectors alone.
class ToeplitzLinearityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ToeplitzLinearityTest, XorHomomorphism) {
  Rng rng(GetParam() * 31 + 5);
  const std::size_t len = GetParam();
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_input(rng, len);
    const auto b = random_input(rng, len);
    std::vector<u8> both(len);
    for (std::size_t i = 0; i < len; ++i) both[i] = a[i] ^ b[i];

    EXPECT_EQ(toeplitz_hash(kDefaultRssKey, both),
              toeplitz_hash(kDefaultRssKey, a) ^ toeplitz_hash(kDefaultRssKey, b));
  }
}

INSTANTIATE_TEST_SUITE_P(InputLengths, ToeplitzLinearityTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 32, 36));

TEST(ToeplitzProperties, ZeroInputHashesToZero) {
  const std::vector<u8> zeros(12, 0);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, zeros), 0u);  // linearity's identity
}

TEST(ToeplitzProperties, SingleBitSelectsKeyWindow) {
  // Input with only bit k set hashes to the 32-bit key window at offset k.
  u8 input[4] = {0x80, 0, 0, 0};  // bit 0
  const u32 expected0 = load_be32(kDefaultRssKey.data());
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), expected0);

  u8 input8[4] = {0, 0x80, 0, 0};  // bit 8
  const u32 expected8 = load_be32(kDefaultRssKey.data() + 1);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input8), expected8);
}

TEST(ToeplitzProperties, KeySensitivity) {
  auto other_key = kDefaultRssKey;
  other_key[5] ^= 0x10;
  Rng rng(9);
  int same = 0;
  for (int i = 0; i < 200; ++i) {
    const auto input = random_input(rng, 12);
    if (toeplitz_hash(kDefaultRssKey, input) == toeplitz_hash(other_key, input)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(ToeplitzProperties, QueueBalanceOverRandomFlows) {
  // The property RSS load balancing rests on: random 5-tuples spread
  // roughly evenly over the queues (section 4.4).
  RssIndirectionTable table;
  table.distribute(0, 3);  // 3 workers per node, the paper's GPU config
  Rng rng(11);
  int counts[3] = {};
  const int n = 30'000;
  for (int i = 0; i < n; ++i) {
    u8 tuple[12];
    for (auto& b : tuple) b = static_cast<u8>(rng.next_u64());
    ++counts[table.queue_for_hash(toeplitz_hash(kDefaultRssKey, tuple))];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 3, n / 3 / 10) << "queue imbalance >10%";
  }
}

}  // namespace
}  // namespace ps::nic
