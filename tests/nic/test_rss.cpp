// Toeplitz RSS against Microsoft's published verification vectors, plus
// indirection-table behaviour.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nic/rss.hpp"

namespace ps::nic {
namespace {

// Build the 12-byte IPv4+ports hash input: src addr, dst addr, src port,
// dst port, all big-endian (the order the verification suite specifies).
std::vector<u8> ipv4_tuple(net::Ipv4Addr src, u16 src_port, net::Ipv4Addr dst, u16 dst_port) {
  std::vector<u8> input(12);
  store_be32(input.data(), src.value);
  store_be32(input.data() + 4, dst.value);
  store_be16(input.data() + 8, src_port);
  store_be16(input.data() + 10, dst_port);
  return input;
}

TEST(Toeplitz, MicrosoftVector1) {
  const auto input = ipv4_tuple(net::Ipv4Addr(66, 9, 149, 187), 2794,
                                net::Ipv4Addr(161, 142, 100, 80), 1766);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), 0x51ccc178u);
}

TEST(Toeplitz, MicrosoftVector2) {
  const auto input = ipv4_tuple(net::Ipv4Addr(199, 92, 111, 2), 14230,
                                net::Ipv4Addr(65, 69, 140, 83), 4739);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), 0xc626b0eau);
}

TEST(Toeplitz, MicrosoftVector3) {
  const auto input = ipv4_tuple(net::Ipv4Addr(24, 19, 198, 95), 12898,
                                net::Ipv4Addr(12, 22, 207, 184), 38024);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), 0x5c2b394au);
}

TEST(Toeplitz, MicrosoftVectorIpOnly1) {
  // Address-only variant (no ports): 8-byte input.
  std::vector<u8> input(8);
  store_be32(input.data(), net::Ipv4Addr(66, 9, 149, 187).value);
  store_be32(input.data() + 4, net::Ipv4Addr(161, 142, 100, 80).value);
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, input), 0x323e8fc2u);
}

TEST(Toeplitz, EmptyInputIsZero) {
  EXPECT_EQ(toeplitz_hash(kDefaultRssKey, {}), 0u);
}

TEST(Rss, HashFromParsedFrameMatchesManualTuple) {
  net::FrameSpec spec;
  spec.src_port = 2794;
  spec.dst_port = 1766;
  auto frame = net::build_udp_ipv4(spec, net::Ipv4Addr(66, 9, 149, 187),
                                   net::Ipv4Addr(161, 142, 100, 80));
  net::PacketView view;
  ASSERT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(rss_hash(view), 0x51ccc178u);
}

TEST(Rss, SameFlowSameHash) {
  // Flow affinity is what preserves packet order (section 5.3).
  net::FrameSpec spec;
  spec.src_port = 1000;
  spec.dst_port = 2000;
  auto a = net::build_udp_ipv4(spec, net::Ipv4Addr(1, 2, 3, 4), net::Ipv4Addr(5, 6, 7, 8));
  spec.frame_size = 512;  // size must not matter
  auto b = net::build_udp_ipv4(spec, net::Ipv4Addr(1, 2, 3, 4), net::Ipv4Addr(5, 6, 7, 8));

  net::PacketView va, vb;
  ASSERT_EQ(net::parse_packet(a.data(), static_cast<u32>(a.size()), va), net::ParseStatus::kOk);
  ASSERT_EQ(net::parse_packet(b.data(), static_cast<u32>(b.size()), vb), net::ParseStatus::kOk);
  EXPECT_EQ(rss_hash(va), rss_hash(vb));
}

TEST(Rss, Ipv6FlowHashes) {
  net::FrameSpec spec;
  auto frame = net::build_udp_ipv6(spec, net::Ipv6Addr::from_words(1, 2),
                                   net::Ipv6Addr::from_words(3, 4));
  net::PacketView view;
  ASSERT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            net::ParseStatus::kOk);
  EXPECT_NE(rss_hash(view), 0u);
}

TEST(RssIndirection, RoundRobinDistribution) {
  RssIndirectionTable table;
  table.distribute(0, 4);
  for (u32 i = 0; i < RssIndirectionTable::kEntries; ++i) {
    EXPECT_EQ(table.entry(i), i % 4);
  }
}

TEST(RssIndirection, NodeConfinedDistribution) {
  // Section 4.5: confine a NIC's packets to queues 2..3 only.
  RssIndirectionTable table;
  table.distribute(2, 2);
  for (u32 i = 0; i < RssIndirectionTable::kEntries; ++i) {
    EXPECT_GE(table.queue_for_hash(i * 2654435761u), 2);
    EXPECT_LE(table.queue_for_hash(i * 2654435761u), 3);
  }
}

TEST(RssIndirection, HashSpreadAcrossQueues) {
  RssIndirectionTable table;
  table.distribute(0, 8);
  int counts[8] = {};
  Rng rng(3);
  for (int i = 0; i < 8000; ++i) ++counts[table.queue_for_hash(rng.next_u32())];
  for (const int c : counts) EXPECT_GT(c, 500);  // roughly even
}

}  // namespace
}  // namespace ps::nic
