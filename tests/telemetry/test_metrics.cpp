// MetricsRegistry semantics: owned slots vs probes, name identity,
// snapshot coherence, and race-freedom of snapshot() against concurrent
// single-writer traffic (the TSan target at the unit level).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace ps::telemetry {
namespace {

TEST(MetricsRegistry, OwnedCountersAndGauges) {
  MetricsRegistry reg;
  Counter* c = reg.counter("test.count");
  Gauge* g = reg.gauge("test.gauge");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(g, nullptr);

  c->add(5);
  c->inc();
  g->set(10);
  g->sub(3);

  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.value("test.count"), 6u);
  EXPECT_EQ(snap.value("test.gauge"), 7u);
  EXPECT_EQ(snap.find("test.count")->kind, MetricKind::kCounter);
  EXPECT_EQ(snap.find("test.gauge")->kind, MetricKind::kGauge);
  EXPECT_FALSE(snap.has("test.absent"));
  EXPECT_EQ(snap.value("test.absent"), 0u);
}

TEST(MetricsRegistry, ReRegisteringANameReturnsTheSameSlot) {
  MetricsRegistry reg;
  Counter* a = reg.counter("dup");
  Counter* b = reg.counter("dup");
  EXPECT_EQ(a, b);
  a->add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(MetricsRegistry, SlotAddressesSurviveLaterRegistrations) {
  MetricsRegistry reg;
  Counter* first = reg.counter("stable.0");
  for (int i = 1; i < 200; ++i) {
    reg.counter("stable." + std::to_string(i));
  }
  first->add(7);
  EXPECT_EQ(reg.snapshot().value("stable.0"), 7u);
}

TEST(MetricsRegistry, ProbesPullAtSnapshotTime) {
  MetricsRegistry reg;
  u64 source = 1;
  reg.register_probe("probed", MetricKind::kCounter, [&source] { return source; });

  EXPECT_EQ(reg.snapshot().value("probed"), 1u);
  source = 42;
  EXPECT_EQ(reg.snapshot().value("probed"), 42u);
}

TEST(MetricsRegistry, ProbeReRegistrationSwapsInPlace) {
  MetricsRegistry reg;
  reg.register_probe("swap", MetricKind::kCounter, [] { return u64{1}; });
  reg.register_probe("swap", MetricKind::kCounter, [] { return u64{2}; });
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.snapshot().value("swap"), 2u);
}

TEST(MetricsRegistry, SnapshotSequenceIsMonotonic) {
  MetricsRegistry reg;
  reg.counter("x");
  const auto s1 = reg.snapshot();
  const auto s2 = reg.snapshot();
  EXPECT_GT(s2.sequence, s1.sequence);
}

TEST(MetricsRegistry, HistogramRecordsAndQuantiles) {
  MetricsRegistry reg;
  HistogramMetric* h = reg.histogram("lat");
  ASSERT_NE(h, nullptr);
  for (u64 v : {1u, 2u, 4u, 8u, 1024u}) h->record(v);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].first, "lat");
  const auto& hist = snap.histograms[0].second;
  EXPECT_EQ(hist.count, 5u);
  EXPECT_EQ(hist.sum, 1039u);
  EXPECT_DOUBLE_EQ(hist.mean(), 1039.0 / 5.0);
  // Bucket-upper-bound quantiles: p50 falls in the value-4 bucket, the
  // max lands in the 1024 bucket.
  EXPECT_LE(hist.quantile(0.5), 8u);
  EXPECT_GE(hist.quantile(1.0), 1024u);
}

// Single-writer threads hammer owned slots while a reader snapshots
// continuously: race-free by construction (relaxed atomics + probe
// discipline); under TSan this is the unit-level data-race test for
// MetricsRegistry::snapshot().
TEST(MetricsRegistry, SnapshotIsRaceFreeUnderConcurrentWriters) {
  MetricsRegistry reg;
  Counter* c0 = reg.counter("w0.count");
  Counter* c1 = reg.counter("w1.count");
  Gauge* g0 = reg.gauge("w0.gauge");
  std::atomic<u64> external{0};
  reg.register_probe("external", MetricKind::kCounter,
                     [&external] { return external.load(std::memory_order_relaxed); });

  constexpr u64 kIters = 50'000;
  std::atomic<bool> stop{false};
  std::thread w0([&] {
    for (u64 i = 0; i < kIters; ++i) {
      c0->inc();
      g0->set(i);
    }
  });
  std::thread w1([&] {
    for (u64 i = 0; i < kIters; ++i) {
      c1->inc();
      external.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread reader([&] {
    u64 prev0 = 0, prev1 = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = reg.snapshot();
      const u64 v0 = snap.value("w0.count");
      const u64 v1 = snap.value("w1.count");
      EXPECT_GE(v0, prev0);  // counters never run backwards
      EXPECT_GE(v1, prev1);
      prev0 = v0;
      prev1 = v1;
    }
  });

  w0.join();
  w1.join();
  stop.store(true);
  reader.join();

  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.value("w0.count"), kIters);
  EXPECT_EQ(final_snap.value("w1.count"), kIters);
  EXPECT_EQ(final_snap.value("external"), kIters);
}

}  // namespace
}  // namespace ps::telemetry
