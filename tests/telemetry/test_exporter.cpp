// Golden tests for the canonical BENCH emission layer. The overload bench
// (and every future bench) builds its line through BenchLine, so this file
// pins the byte-exact format the lab's scrapers parse: key order, printf
// number formatting (%.Nf / %llu), and the BENCH prefix.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "telemetry/exporter.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace ps::telemetry {
namespace {

TEST(BenchLine, GoldenScalarFields) {
  BenchLine line("demo");
  line.field("count", u64{42})
      .fixed("rate", 1234.5678, 0)
      .fixed("ratio", 0.8567, 3)
      .field("label", std::string("fast"));
  EXPECT_EQ(line.str(),
            "BENCH {\"bench\":\"demo\",\"count\":42,\"rate\":1235,"
            "\"ratio\":0.857,\"label\":\"fast\"}");
}

// Byte-for-byte the line bench_overload used to hand-roll with printf —
// the dedupe onto BenchLine must not change a single character.
TEST(BenchLine, GoldenOverloadBenchFormat) {
  struct Point {
    double mult, offered_pps, goodput_pps, p50_ms, p99_ms;
    u64 offered, accepted, hw_drops, bp_reduced_batches, bp_diverted_chunks;
  };
  const std::vector<Point> points = {
      {0.5, 12345.6, 12000.4, 1.2345, 4.5678, 5000, 4990, 10, 3, 1},
      {4.0, 98765.4, 43210.9, 2.5, 80.25, 40000, 30000, 10000, 77, 42},
  };

  BenchLine line("overload");
  line.fixed("capacity_pps", 24691.35, 0)
      .fixed("peak_goodput_pps", 43210.9, 0)
      .fixed("goodput_retention_at_4x", 0.9996, 3)
      .array("points");
  for (const auto& p : points) {
    line.object()
        .fixed("mult", p.mult, 1)
        .fixed("offered_pps", p.offered_pps, 0)
        .fixed("goodput_pps", p.goodput_pps, 0)
        .fixed("p50_ms", p.p50_ms, 3)
        .fixed("p99_ms", p.p99_ms, 3)
        .field("offered", p.offered)
        .field("accepted", p.accepted)
        .field("hw_drops", p.hw_drops)
        .field("bp_reduced_batches", p.bp_reduced_batches)
        .field("bp_diverted_chunks", p.bp_diverted_chunks)
        .end();
  }
  line.end();

  // Reference produced by the original printf chain.
  char expect[1024];
  int n = std::snprintf(
      expect, sizeof(expect),
      "BENCH {\"bench\":\"overload\",\"capacity_pps\":%.0f,\"peak_goodput_pps\":%.0f,"
      "\"goodput_retention_at_4x\":%.3f,\"points\":[",
      24691.35, 43210.9, 0.9996);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    n += std::snprintf(
        expect + n, sizeof(expect) - static_cast<std::size_t>(n),
        "%s{\"mult\":%.1f,\"offered_pps\":%.0f,\"goodput_pps\":%.0f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"offered\":%llu,\"accepted\":%llu,"
        "\"hw_drops\":%llu,\"bp_reduced_batches\":%llu,\"bp_diverted_chunks\":%llu}",
        i ? "," : "", p.mult, p.offered_pps, p.goodput_pps, p.p50_ms, p.p99_ms,
        static_cast<unsigned long long>(p.offered), static_cast<unsigned long long>(p.accepted),
        static_cast<unsigned long long>(p.hw_drops),
        static_cast<unsigned long long>(p.bp_reduced_batches),
        static_cast<unsigned long long>(p.bp_diverted_chunks));
  }
  std::snprintf(expect + n, sizeof(expect) - static_cast<std::size_t>(n), "]}");

  EXPECT_EQ(line.str(), expect);
}

TEST(BenchLine, StrClosesOpenScopesWithoutMutating) {
  BenchLine line("partial");
  line.array("xs").object().field("a", u64{1});
  EXPECT_EQ(line.str(), "BENCH {\"bench\":\"partial\",\"xs\":[{\"a\":1}]}");
  // str() is idempotent: the scopes are closed in the output, not in the
  // builder, so continuing afterwards still works.
  line.field("b", u64{2}).end().end();
  EXPECT_EQ(line.str(), "BENCH {\"bench\":\"partial\",\"xs\":[{\"a\":1,\"b\":2}]}");
}

TEST(Exporter, EmitAppendsNewline) {
  std::ostringstream out;
  Exporter exporter(out);
  BenchLine line("x");
  line.field("v", u64{1});
  exporter.emit(line);
  EXPECT_EQ(out.str(), "BENCH {\"bench\":\"x\",\"v\":1}\n");
}

TEST(Exporter, PrintSnapshotListsEveryMetric) {
  MetricsRegistry reg;
  reg.counter("rx")->add(5);
  reg.gauge("depth")->set(2);
  reg.histogram("lat")->record(100);

  std::ostringstream out;
  Exporter exporter(out);
  exporter.print_snapshot(reg.snapshot(), "test");

  const std::string text = out.str();
  EXPECT_NE(text.find("=== test"), std::string::npos);
  EXPECT_NE(text.find("rx"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("depth"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);  // the histogram line
}

TEST(StageBreakdown, AttributesDeltasToStampedStages) {
  // Hand-built span: rx=1000, dequeue=1500, gather=1600, h2d=2000,
  // kernel=2600, d2h=3000, scatter=3500, tx=4000 (ns).
  TraceSpan gpu_span;
  gpu_span.packets = 64;
  gpu_span.ts = {1000, 1500, 1600, 2000, 2600, 3000, 3500, 4000};
  // CPU-path span: device stages unstamped; the scatter delta bridges the
  // gap from the dequeue stamp.
  TraceSpan cpu_span;
  cpu_span.cpu_path = true;
  cpu_span.ts = {2000, 2400, 0, 0, 0, 0, 3400, 3600};

  const auto b = compute_stage_breakdown({gpu_span, cpu_span});
  EXPECT_EQ(b.spans, 2u);
  const auto idx = [](Stage s) { return static_cast<std::size_t>(s); };
  EXPECT_EQ(b.samples[idx(Stage::kMasterDequeue)], 2u);
  EXPECT_DOUBLE_EQ(b.mean_us[idx(Stage::kMasterDequeue)], (500.0 + 400.0) / 2 / 1e3);
  EXPECT_EQ(b.samples[idx(Stage::kKernel)], 1u);  // only the GPU span
  EXPECT_DOUBLE_EQ(b.mean_us[idx(Stage::kKernel)], 600.0 / 1e3);
  EXPECT_EQ(b.samples[idx(Stage::kScatter)], 2u);
  EXPECT_DOUBLE_EQ(b.mean_us[idx(Stage::kScatter)], (500.0 + 1000.0) / 2 / 1e3);
  EXPECT_DOUBLE_EQ(b.total_mean_us, ((4000.0 - 1000.0) + (3600.0 - 2000.0)) / 2 / 1e3);

  // Incomplete spans (no begin or no end) are excluded whole.
  TraceSpan incomplete;
  incomplete.ts[0] = 500;
  const auto b2 = compute_stage_breakdown({incomplete});
  EXPECT_EQ(b2.spans, 0u);
}

}  // namespace
}  // namespace ps::telemetry
