// Corruption chaos: the full threaded router under injected *silent*
// corruption — huge-buffer bit flips, PCIe transfer errors in both
// directions, and GPU miscomputation — each of which no hardware status
// bit ever reports. The integrity layer must catch every injected fault
// at the boundary that first saw it, repair or quarantine, and let zero
// corrupted bytes reach TX, with packet conservation staying exact.
//
// Determinism: fault windows are indexed by per-point hit counters. In
// gathered mode each shading batch is one "gpu.launch" hit, one
// "pcie.h2d_corrupt" hit per job's input copy and one "pcie.d2h_corrupt"
// hit per job's output copy — and every copy belongs to exactly one job,
// so disjoint hit windows corrupt disjoint jobs and the per-stage counts
// below are exact, not bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "apps/dynamic_ipv4.hpp"
#include "apps/ipsec_gateway.hpp"
#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"
#include "integrity/integrity.hpp"
#include "route/fib_manager.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;
using integrity::Stage;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

// One /32 the traffic actually hits (-> port 1) over a default (-> port 2):
// any single-bit flip of a staged lookup key resolves to the default, and
// any single-bit flip of a result value changes the port — so every
// injected corruption is guaranteed to change an output, never masked.
route::Ipv4Table corruption_sensitive_table() {
  route::Ipv4Table table;
  const route::Ipv4Prefix routes[] = {
      {net::Ipv4Addr(10, 0, 0, 1), 32, 1},
      {net::Ipv4Addr(0), 0, 2},
  };
  table.build(routes);
  return table;
}

TEST(IntegrityChaos, EveryInjectedCorruptionLocalizedAtItsStage) {
  const auto table = corruption_sensitive_table();
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic(
      {.frame_size = 64, .seed = 81, .ipv4_dst_pool = {net::Ipv4Addr(10, 0, 0, 1).value}});
  testbed.connect_sink(&traffic);

  // Disjoint windows, one per corruption class. h2d hits 50..53 are jobs
  // ~48..51 (bind_gpu uploads burn two hits), d2h hits 100..103 are jobs
  // 100..103, and a bad result at launch N lands on a job >= N (the d2h
  // counter can never trail the launch counter) — no window can overlap
  // another in job space. The bitflip window is frames 500..539.
  fault::FaultInjector inj(/*seed=*/17);
  inj.add_rule({.point = std::string(fault::Point::kMemBitflip), .after = 500, .count = 40});
  inj.add_rule({.point = std::string(fault::Point::kPcieH2dCorrupt), .after = 50, .count = 4});
  inj.add_rule({.point = std::string(fault::Point::kPcieD2hCorrupt), .after = 100, .count = 4});
  inj.add_rule({.point = std::string(fault::Point::kGpuBadResult), .after = 150, .count = 4});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  // Verify every batch (exact counts) and never trip: escalation/trip
  // behavior gets its own test below.
  integrity::IntegrityChecker checker(
      {.shadow_sample_every = 1, .shadow_trip_threshold = 1000});

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.set_integrity(&checker);
  router.start();

  // Offer until every fault window is consumed (the bad-result window needs
  // ~154 shading batches), bounded by a deadline.
  u64 accepted = 0;
  u64 offered = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline && offered < 400'000) {
    accepted += traffic.offer(testbed.ports(), 2'000);
    offered += 2'000;
    if (inj.stats(fault::Point::kMemBitflip).fired == 40 &&
        inj.stats(fault::Point::kPcieH2dCorrupt).fired == 4 &&
        inj.stats(fault::Point::kPcieD2hCorrupt).fired == 4 &&
        inj.stats(fault::Point::kGpuBadResult).fired == 4) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  // Drain: everything accepted reaches the sink except the 40 bit-flipped
  // frames quarantined at RX admission. Corrupted GPU results are repaired
  // (CPU re-shade), not dropped, so they still arrive.
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() + 40 == accepted; }, 30s));
  router.stop();

  ASSERT_EQ(inj.stats(fault::Point::kMemBitflip).fired, 40u);
  ASSERT_EQ(inj.stats(fault::Point::kPcieH2dCorrupt).fired, 4u);
  ASSERT_EQ(inj.stats(fault::Point::kPcieD2hCorrupt).fired, 4u);
  ASSERT_EQ(inj.stats(fault::Point::kGpuBadResult).fired, 4u);

  // --- every corruption localized at the boundary that first saw it --------
  EXPECT_EQ(checker.corrupt_at(Stage::kRx), 40u);       // huge-buffer flips
  EXPECT_EQ(checker.corrupt_at(Stage::kShadow), 12u);   // 4 h2d + 4 d2h + 4 bad
  EXPECT_EQ(checker.corrupt_at(Stage::kGather), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kScatter), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kTx), 0u);
  EXPECT_EQ(checker.shadow_mismatch_batches(), 12u);  // each corrupt job caught
  EXPECT_EQ(checker.reshaded_batches(), 12u);         // ...and repaired once
  EXPECT_EQ(checker.quarantined_packets(), 40u);
  EXPECT_EQ(checker.devices_tripped(), 0u);
  EXPECT_GT(checker.shadow_batches(), 150u);  // sampling actually ran
  EXPECT_GT(checker.verified_packets(), 0u);
  EXPECT_GT(checker.stamped_packets(), 0u);

  // --- conservation: quarantined packets are accounted drops, nothing else -
  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());
  EXPECT_EQ(stats.drops(iengine::DropReason::kIntegrityFail), 40u);
  EXPECT_EQ(stats.dropped(), 40u);

  // The device was never tripped: silent corruption was repaired in-line.
  const auto health = router.gpu_health(0);
  EXPECT_TRUE(health.healthy);
  EXPECT_EQ(health.trips, 0u);
}

TEST(IntegrityChaos, ShadowSamplingEscalatesAndTripsSickDevice) {
  const auto table = corruption_sensitive_table();
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic(
      {.frame_size = 64, .seed = 82, .ipv4_dst_pool = {net::Ipv4Addr(10, 0, 0, 1).value}});
  testbed.connect_sink(&traffic);

  // A persistently-lying D2H path: 32 consecutive output copies corrupted.
  // At 1-in-4 sampling the first few corrupted batches can slip through,
  // but within four batches one is sampled, sampling escalates to every
  // batch, strikes accumulate, and the device trips into CPU-only mode.
  fault::FaultInjector inj(/*seed=*/19);
  inj.add_rule({.point = std::string(fault::Point::kPcieD2hCorrupt), .after = 100, .count = 32});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  config.gpu_probe_interval_batches = 2;  // recover quickly once clean
  integrity::IntegrityChecker checker({.shadow_sample_every = 4,
                                       .shadow_escalate_batches = 64,
                                       .shadow_trip_threshold = 3});

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.set_integrity(&checker);
  router.start();

  u64 accepted = 0;
  u64 offered = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline && offered < 400'000) {
    accepted += traffic.offer(testbed.ports(), 2'000);
    offered += 2'000;
    const auto health = router.gpu_health(0);
    if (inj.stats(fault::Point::kPcieD2hCorrupt).fired == 32 && health.trips >= 1 &&
        health.recoveries >= 1) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  // No byte-level corruption: nothing is quarantined, so everything
  // accepted drains to the sink (repaired or — before escalation kicked
  // in — misdelivered, but never lost).
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }, 30s));
  router.stop();

  ASSERT_EQ(inj.stats(fault::Point::kPcieD2hCorrupt).fired, 32u);

  // Escalation caught the sick device and tripped it into the PR 1
  // gpu_health fallback; the fault window then expired and a clean probe
  // re-admitted it.
  EXPECT_GE(checker.shadow_mismatch_batches(), 3u);
  EXPECT_LE(checker.corrupt_at(Stage::kShadow), 32u);
  EXPECT_GE(checker.devices_tripped(), 1u);
  const auto health = router.gpu_health(0);
  EXPECT_GE(health.trips, 1u);
  EXPECT_GE(health.recoveries, 1u);
  EXPECT_GT(health.cpu_fallback_chunks, 0u);
  EXPECT_TRUE(health.healthy);

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.dropped(), 0u);  // repairs and misdeliveries, never drops
}

TEST(IntegrityChaos, CorruptionUnderFibChurnStaysExact) {
  // Live control plane + silent corruption at once. The churned prefixes
  // (192.168.x.0/24) never cover the traffic pool and resolve to the same
  // port as the default route, so a CPU shadow re-shade against a *newer*
  // FIB generation than the one pinned on the device still computes
  // identical results — every shadow mismatch is injected, none is
  // generation skew. (No h2d window here: sync() uploads table
  // generations over the same PCIe path, and corrupting a table upload
  // would corrupt every subsequent lookup.)
  route::Ipv4Fib fib;
  fib.announce({net::Ipv4Addr(10, 0, 0, 1), 32, 1});
  fib.announce({net::Ipv4Addr(10, 0, 0, 2), 32, 1});
  fib.announce({net::Ipv4Addr(0), 0, 2});
  fib.commit();
  apps::DynamicIpv4ForwardApp app(fib);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64,
                           .seed = 83,
                           .ipv4_dst_pool = {net::Ipv4Addr(10, 0, 0, 1).value,
                                             net::Ipv4Addr(10, 0, 0, 2).value}});
  testbed.connect_sink(&traffic);

  fault::FaultInjector inj(/*seed=*/23);
  inj.add_rule({.point = std::string(fault::Point::kMemBitflip), .after = 200, .count = 30});
  inj.add_rule({.point = std::string(fault::Point::kPcieD2hCorrupt), .after = 100, .count = 6});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  integrity::IntegrityChecker checker(
      {.shadow_sample_every = 1, .shadow_trip_threshold = 1000});

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.set_integrity(&checker);
  router.start();

  // Control-plane churn racing the corrupted data plane: announce/withdraw
  // disjoint /24s, committing + syncing the device tables each round.
  std::atomic<bool> churn_done{false};
  std::thread churner([&] {
    for (int round = 0; round < 200; ++round) {
      const route::Ipv4Prefix p{net::Ipv4Addr(192, 168, static_cast<u8>(round % 250), 0), 24, 2};
      if (round % 2 == 0) {
        fib.announce(p);
      } else {
        fib.withdraw(p);
      }
      fib.commit();
      app.sync();
      std::this_thread::sleep_for(200us);
    }
    churn_done.store(true, std::memory_order_release);
  });

  u64 accepted = 0;
  u64 offered = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline && offered < 400'000) {
    accepted += traffic.offer(testbed.ports(), 2'000);
    offered += 2'000;
    if (churn_done.load(std::memory_order_acquire) &&
        inj.stats(fault::Point::kMemBitflip).fired == 30 &&
        inj.stats(fault::Point::kPcieD2hCorrupt).fired == 6) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  churner.join();

  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() + 30 == accepted; }, 30s));
  router.stop();

  ASSERT_EQ(inj.stats(fault::Point::kMemBitflip).fired, 30u);
  ASSERT_EQ(inj.stats(fault::Point::kPcieD2hCorrupt).fired, 6u);

  // Exact localization even with the FIB moving underneath: 30 flips at RX
  // admission, 6 lying result copies at the shadow check — and *only* the
  // injected ones (any generation-skew false positive would inflate these).
  EXPECT_EQ(checker.corrupt_at(Stage::kRx), 30u);
  EXPECT_EQ(checker.corrupt_at(Stage::kShadow), 6u);
  EXPECT_EQ(checker.corrupt_at(Stage::kGather), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kScatter), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kTx), 0u);
  EXPECT_EQ(checker.shadow_mismatch_batches(), 6u);
  EXPECT_EQ(checker.quarantined_packets(), 30u);
  EXPECT_EQ(checker.devices_tripped(), 0u);

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());
  EXPECT_EQ(stats.drops(iengine::DropReason::kIntegrityFail), 30u);
  EXPECT_EQ(stats.dropped(), 30u);
  EXPECT_TRUE(router.gpu_health(0).healthy);
}

TEST(IntegrityChaos, InPlaceScatterCorruptionLocalizedAtItsStage) {
  // PR 8's in-place zero-copy scatter moves the result-apply mutation from
  // the worker's post_shade memcpy to the device's scatter DMA — so a
  // lying D2H now corrupts packet frames directly, with no bounce buffer
  // in between to absorb it. The contract must not weaken: a huge-buffer
  // bit flip is still caught at RX admission, a corrupted scatter copy is
  // still caught (and repaired span-by-span) at the shadow check, and
  // zero corrupted bytes reach TX. IPsec is the app that uses the
  // in-place path (ciphertext + ICV spans per packet).
  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x6161, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  apps::IpsecGatewayApp app(sa);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 84});
  testbed.connect_sink(&traffic);

  // Each in-place job issues exactly two scatter D2H transactions (the
  // ciphertext blob, then the ICV array), so d2h hits come in per-job
  // pairs and a 4-hit window lands on whole jobs. Both hits of one job
  // corrupt spans of that job's first packet (bit 0 of the first seg), so
  // per-packet shadow counts stay exact.
  fault::FaultInjector inj(/*seed=*/29);
  inj.add_rule({.point = std::string(fault::Point::kMemBitflip), .after = 200, .count = 20});
  inj.add_rule({.point = std::string(fault::Point::kPcieD2hCorrupt), .after = 40, .count = 4});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  integrity::IntegrityChecker checker(
      {.shadow_sample_every = 1, .shadow_trip_threshold = 1000});

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.set_integrity(&checker);
  router.start();

  u64 accepted = 0;
  u64 offered = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline && offered < 200'000) {
    accepted += traffic.offer(testbed.ports(), 2'000);
    offered += 2'000;
    if (inj.stats(fault::Point::kMemBitflip).fired == 20 &&
        inj.stats(fault::Point::kPcieD2hCorrupt).fired == 4) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  // Everything accepted drains to the sink except the 20 bit-flipped
  // frames quarantined at RX; scatter-corrupted packets are repaired in
  // place from the CPU ground truth and still ship.
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() + 20 == accepted; }, 30s));
  router.stop();

  ASSERT_EQ(inj.stats(fault::Point::kMemBitflip).fired, 20u);
  ASSERT_EQ(inj.stats(fault::Point::kPcieD2hCorrupt).fired, 4u);

  // Localization: flips at RX, lying scatter copies at the shadow check,
  // nothing anywhere else — in particular kScatter and kTx stay zero,
  // which is the "zero corrupted bytes at TX" claim for the in-place
  // path (the shadow repair happened before the worker's sweep).
  EXPECT_EQ(checker.corrupt_at(Stage::kRx), 20u);
  EXPECT_EQ(checker.corrupt_at(Stage::kGather), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kScatter), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kTx), 0u);
  // 4 hits in per-job pairs: exactly 2 jobs, each with both segs of its
  // first packet corrupted -> one bad packet per job at the shadow check.
  EXPECT_EQ(checker.corrupt_at(Stage::kShadow), 2u);
  EXPECT_EQ(checker.shadow_mismatch_batches(), 2u);
  EXPECT_EQ(checker.reshaded_batches(), 2u);
  EXPECT_EQ(checker.quarantined_packets(), 20u);
  EXPECT_EQ(checker.devices_tripped(), 0u);

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());
  EXPECT_EQ(stats.drops(iengine::DropReason::kIntegrityFail), 20u);
  EXPECT_EQ(stats.dropped(), 20u);
  EXPECT_TRUE(router.gpu_health(0).healthy);
}

TEST(IntegrityChaos, ConservationExactUnderWorkerQuarantineMidBatch) {
  // A worker parks mid-run with in-place jobs in flight: the master keeps
  // returning results to the hung worker's output ring, a peer adopts its
  // NIC queues, and the owner drains everything when kicked back to life.
  // With integrity armed and shadow verification on every batch, the
  // whole episode must produce zero false integrity positives and an
  // exact conservation identity — no packet lost, duplicated, or
  // silently mutated across the quarantine/handback.
  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x6262, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  apps::IpsecGatewayApp app(sa);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 85});
  testbed.connect_sink(&traffic);

  fault::FaultInjector inj(/*seed=*/31);
  inj.add_rule({.point = std::string(fault::Point::kWorkerHang), .after = 300, .count = 1});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  config.supervisor_interval = 1ms;
  config.supervisor_stall_window = 5ms;
  integrity::IntegrityChecker checker(
      {.shadow_sample_every = 1, .shadow_trip_threshold = 1000});

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.set_integrity(&checker);
  router.start();

  u64 offered = 0;
  u64 accepted = 0;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (std::chrono::steady_clock::now() < deadline) {
    accepted += traffic.offer(testbed.ports(), 1'000);
    offered += 1'000;
    if (router.supervisor().stalls_detected() >= 1 &&
        router.supervisor().recoveries() >= 1 && offered >= 10'000) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  EXPECT_EQ(inj.stats(fault::Point::kWorkerHang).fired, 1u);
  ASSERT_GE(router.supervisor().stalls_detected(), 1u);
  ASSERT_GE(router.supervisor().recoveries(), 1u);

  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));
  router.stop();

  // No injected corruption: every boundary check must have stayed silent
  // even though chunks crossed the hand-off while their owner was out.
  EXPECT_EQ(checker.corrupt_at(Stage::kRx), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kGather), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kShadow), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kScatter), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kTx), 0u);
  EXPECT_EQ(checker.quarantined_packets(), 0u);
  EXPECT_GT(checker.shadow_batches(), 0u);
  EXPECT_GT(checker.verified_packets(), 0u);

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());
  EXPECT_EQ(stats.dropped(), 0u);
  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
}

}  // namespace
}  // namespace ps
