// Link-flap faults: the per-port "nic.link_flap.<p>" point drops carrier
// for a deterministic window. Frames offered meanwhile are lost on the
// wire (hardware drops), workers stop polling the down port (the engine
// skips !link_up() ports), and the first event past the window restores
// carrier — forwarding resumes with no manual intervention.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

route::Ipv4Table default_route_table(route::NextHop out_port) {
  route::Ipv4Table table;
  const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, out_port};
  table.build({&all, 1});
  return table;
}

TEST(LinkFlap, CarrierLossDropsAtTheWireAndRecoversCleanly) {
  // Traffic routes out of port 1, so the only events on port 0 are RX
  // attempts from the offering thread: the 400-fire window falls on
  // frames 1001..1400 into port 0, and the 1401st restores carrier.
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = false,
                         .ring_size = 4096},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 95});
  testbed.connect_sink(&traffic);

  fault::FaultInjector inj(/*seed=*/31);
  inj.add_rule({.point = std::string(fault::Point::kLinkFlap) + ".0",
                .after = 1'000,
                .count = 400});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = false;
  config.chunk_capacity = 64;
  core::Router router(testbed.engine(), {}, app, config);
  router.set_fault_injector(&inj);
  router.start();

  const u64 offered = 20'000;  // 5'000 RX attempts on port 0
  const u64 accepted = traffic.offer(testbed.ports(), offered);
  EXPECT_EQ(accepted, offered - 400);

  // Link state: exactly one loss-of-carrier edge, 400 frames lost to it,
  // and carrier restored by the first delivery past the window.
  EXPECT_EQ(testbed.port(0).link_flaps(), 1u);
  EXPECT_EQ(testbed.port(0).carrier_lost_frames(), 400u);
  EXPECT_TRUE(testbed.port(0).link_up());
  EXPECT_EQ(inj.stats(std::string(fault::Point::kLinkFlap) + ".0").fired, 400u);

  // Everything that made it past the wire is forwarded — the down window
  // never wedged the workers.
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));

  // The recovered port keeps accepting traffic.
  const u64 more = traffic.offer(testbed.ports().subspan(0, 1), 1'000);
  EXPECT_EQ(more, 1'000u);
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted + more; }));
  router.stop();

  const auto stats = router.stats();
  u64 hw_rx_drops = 0;
  for (auto* port : testbed.ports()) hw_rx_drops += port->rx_totals().drops;
  EXPECT_EQ(hw_rx_drops, 400u);
  EXPECT_EQ(stats.packets_in, accepted + more);
  EXPECT_EQ(stats.packets_out, accepted + more);
  EXPECT_EQ(stats.dropped(), 0u);
  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
}

TEST(LinkFlap, WorkersSkipPollingADownPort) {
  // Direct engine-level check of the poll gate: park frames in port 0's
  // rings, force carrier down via a flap window that only this test's TX
  // attempt consumes... simpler: flap on the next RX attempt, then verify
  // recv_chunk returns nothing from the down port while a healthy port
  // still delivers.
  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = false,
                         .ring_size = 4096},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 96});

  auto ports = testbed.ports();
  traffic.offer(ports.subspan(0, 1), 1'000);  // backlog in port 0's rings
  traffic.offer(ports.subspan(1, 1), 1'000);  // and port 1's

  fault::FaultInjector inj(/*seed=*/32);
  // Window opens on the next port-0 event and stays open for 8 fires.
  inj.add_rule({.point = std::string(fault::Point::kLinkFlap) + ".0", .count = 8});
  testbed.set_fault_injector(&inj);

  // One rejected frame trips the carrier latch.
  EXPECT_FALSE(testbed.port(0).receive_frame(traffic.next_frame()));
  ASSERT_FALSE(testbed.port(0).link_up());

  // A handle owning queues on both ports now only sees port 1: the
  // backlog parked in port 0's rings is untouched while carrier is out.
  auto* handle = testbed.engine().attach(/*core=*/0, {{0, 0}, {1, 0}});
  const u32 port0_backlog = testbed.port(0).rx_available(0);
  ASSERT_GT(port0_backlog, 0u);

  iengine::PacketChunk chunk(64);
  const u32 n = handle->recv_chunk(chunk, 64, 64);
  EXPECT_GT(n, 0u);  // port 1 still delivers
  EXPECT_EQ(chunk.in_port, 1);
  EXPECT_EQ(testbed.port(0).rx_available(0), port0_backlog);  // untouched

  // Burn through the rest of the window with rejected frames, then one
  // more delivery restores carrier and the parked backlog drains.
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_TRUE(testbed.port(0).link_up());
  const u32 n2 = handle->recv_chunk(chunk, 64, 64);
  EXPECT_GT(n2, 0u);
  EXPECT_EQ(chunk.in_port, 0);
}

}  // namespace
}  // namespace ps
