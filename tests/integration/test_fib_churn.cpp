// FIB churn under traffic: a control-plane thread announces/withdraws
// prefixes and commits while the real-threaded router forwards and fault
// injection fires on the master queue. Double buffering means no torn
// lookups (a packet sees the old table or the new one, never a mix), and
// commit latency stays bounded because the rebuild happens off the data
// path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

#include "apps/dynamic_ipv4.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

// Commit latency is a wall-clock bound; give TSan's ~10-20x slowdown and
// single-core scheduling room without weakening the native bound.
#if defined(__SANITIZE_THREAD__)
constexpr auto kCommitBound = 20s;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr auto kCommitBound = 20s;
#else
constexpr auto kCommitBound = 2s;
#endif
#else
constexpr auto kCommitBound = 2s;
#endif

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(FibChurn, CommitsUnderTrafficAndFaultsCauseNoTornLookupsOrLoss) {
  route::Ipv4Fib fib;
  fib.announce({net::Ipv4Addr(0), 0, 1});  // default route, never withdrawn
  fib.commit();
  apps::DynamicIpv4ForwardApp app(fib);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 71});
  testbed.connect_sink(&traffic);

  // Faults fire while the churn runs: a window of master-queue push
  // failures forces workers onto the CPU fallback mid-churn.
  fault::FaultInjector inj(/*seed=*/11);
  inj.add_rule({.point = std::string(fault::Point::kMasterQueue), .after = 50, .count = 100});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.start();

  std::atomic<bool> churn_done{false};
  std::atomic<u64> accepted{0};
  std::thread offerer([&] {
    while (!churn_done.load(std::memory_order_relaxed)) {
      accepted.fetch_add(traffic.offer(testbed.ports(), 500), std::memory_order_relaxed);
      std::this_thread::sleep_for(500us);
    }
  });

  // Control plane: churn /8 routes through announce -> commit -> sync ->
  // withdraw -> commit -> sync while the data path runs at full tilt.
  constexpr int kRounds = 12;
  std::chrono::steady_clock::duration worst_commit{0};
  const u64 base_generation = fib.generation();
  for (int r = 0; r < kRounds; ++r) {
    const route::Ipv4Prefix p{net::Ipv4Addr(static_cast<u8>(10 + r), 0, 0, 0), 8, 2};

    fib.announce(p);
    auto t0 = std::chrono::steady_clock::now();
    fib.commit();
    worst_commit = std::max(worst_commit, std::chrono::steady_clock::now() - t0);
    EXPECT_EQ(app.sync(), 1);

    std::this_thread::sleep_for(2ms);  // forward against the new table

    ASSERT_TRUE(fib.withdraw(p));
    t0 = std::chrono::steady_clock::now();
    fib.commit();
    worst_commit = std::max(worst_commit, std::chrono::steady_clock::now() - t0);
    EXPECT_EQ(app.sync(), 1);

    std::this_thread::sleep_for(2ms);
  }
  churn_done.store(true);
  offerer.join();

  // Every effective commit bumped the generation, and rebuilding the
  // DIR-24-8 table off the data path kept commit latency bounded.
  EXPECT_EQ(fib.generation(), base_generation + 2 * kRounds);
  EXPECT_LT(worst_commit, kCommitBound);

  // The fault window fired mid-run and workers absorbed it on the CPU.
  EXPECT_GT(inj.stats(fault::Point::kMasterQueue).fired, 0u);

  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted.load(); }));
  router.stop();

  const auto stats = router.stats();
  EXPECT_GT(stats.cpu_processed, 0u);  // the fault window was absorbed
  // No torn lookups: the default route was present in every snapshot, so
  // not one packet missed the table.
  EXPECT_EQ(stats.drops(iengine::DropReason::kNoRoute), 0u);
  EXPECT_EQ(stats.packets_in, accepted.load());
  EXPECT_EQ(stats.packets_out, accepted.load());
  EXPECT_EQ(stats.dropped(), 0u);

  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
}

}  // namespace
}  // namespace ps
