// Chaos integration: the full threaded router under injected faults.
//
// The schedule is deterministic: fault windows are indexed by per-point
// hit counters, and a single-node testbed has exactly one master thread,
// so the "gpu.launch" hit sequence (batch attempts + recovery probes) is
// serial. The test drives traffic through a GPU failure window (failure
// at t1, window expiry = recovery at t2), RX ring-full and corruption
// bursts, and injected master-queue overflow, then checks that every
// packet is accounted for and the watchdog tripped and recovered.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

/// A default route so the only drops are the injected ones.
route::Ipv4Table default_route_table(route::NextHop out_port) {
  route::Ipv4Table table;
  const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, out_port};
  table.build({&all, 1});
  return table;
}

TEST(Chaos, GpuFailureRecoveryWithZeroUnaccountedLoss) {
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 71});
  testbed.connect_sink(&traffic);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gather_max = 4;
  config.gpu_max_retries = 3;     // a failed batch burns 3 launch hits
  config.gpu_backoff_us = 1;      // keep retry backoff test-fast
  config.gpu_backoff_cap_us = 100;
  config.gpu_fail_threshold = 2;  // two failed batches trip the device
  config.gpu_probe_interval_batches = 2;

  // The GPU fails launches 20..31 (two failed batches trip the watchdog;
  // probes consume the rest of the window, then the first clean probe
  // re-admits the device). NIC faults: a ring-full burst, a corruption
  // burst, and a master-queue overflow burst.
  fault::FaultInjector inj(/*seed=*/7);
  inj.add_rule({.point = "gpu.launch", .after = 20, .count = 12});
  inj.add_rule({.point = "nic.rx_ring_full", .after = 2000, .count = 500});
  inj.add_rule({.point = "nic.rx_corrupt", .after = 100, .count = 50});
  inj.add_rule({.point = "core.master_queue", .after = 200, .count = 20});
  testbed.set_fault_injector(&inj);

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.start();

  // Offer traffic in pulses until the watchdog has tripped AND recovered
  // (and the NIC windows are exhausted), bounded by a deadline.
  u64 offered = 0;
  u64 accepted = 0;
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (std::chrono::steady_clock::now() < deadline && offered < 200'000) {
    accepted += traffic.offer(testbed.ports(), 2'000);
    offered += 2'000;
    const auto health = router.gpu_health(0);
    if (health.trips >= 1 && health.recoveries >= 1 && offered >= 20'000) break;
    std::this_thread::sleep_for(1ms);
  }

  // No-deadlock / no-loss: every accepted packet either reaches the sink
  // or is one of the injected corruption drops. Both counters in the
  // predicate are synchronized (atomic sink, mutex-guarded injector).
  EXPECT_TRUE(wait_for(
      [&] { return traffic.sunk_packets() + inj.stats("nic.rx_corrupt").fired == accepted; },
      30s));
  router.stop();

  const auto stats = router.stats();
  const auto health = router.gpu_health(0);

  // --- full accounting: nothing silently lost ------------------------------
  u64 hw_rx_drops = 0;
  for (auto* port : testbed.ports()) hw_rx_drops += port->rx_totals().drops;
  EXPECT_EQ(accepted + hw_rx_drops, offered);
  EXPECT_GE(hw_rx_drops, inj.stats("nic.rx_ring_full").fired);
  EXPECT_EQ(inj.stats("nic.rx_ring_full").fired, 500u);

  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());

  // Per-reason drops: exactly the injected corruptions, nothing else.
  EXPECT_EQ(stats.drops(iengine::DropReason::kCorrupted), 50u);
  EXPECT_EQ(stats.dropped(), 50u);
  EXPECT_EQ(inj.stats("nic.rx_corrupt").fired, 50u);

  // --- the watchdog tripped, degraded gracefully, and recovered ------------
  EXPECT_GE(health.trips, 1u);
  EXPECT_GE(health.recoveries, 1u);
  EXPECT_GE(health.probes, 1u);
  EXPECT_GE(health.retries, 1u);
  EXPECT_GE(health.failed_batches, config.gpu_fail_threshold);
  EXPECT_GT(health.cpu_fallback_chunks, 0u);
  EXPECT_TRUE(health.healthy);  // re-admitted after the window expired
  EXPECT_EQ(inj.stats("gpu.launch").fired, 12u);  // window fully consumed

  // CPU shading carried the load while the GPU was sick, and the GPU
  // re-engaged after recovery.
  EXPECT_GT(stats.cpu_processed, 0u);
  EXPECT_GT(stats.gpu_processed, 0u);
  EXPECT_EQ(stats.cpu_processed + stats.gpu_processed, stats.packets_in);

  // The injected master-queue overflow forced worker-side CPU fallback.
  EXPECT_EQ(inj.stats("core.master_queue").fired, 20u);
}

TEST(Chaos, TxLinkFlapExhaustsRetryAndCountsRingFullDrops) {
  // Flap port 0's link while traffic enters only on ports 1..3 and routes
  // out of port 0: every hit on the per-port point is then a TX attempt,
  // so the fault window falls entirely on the transmit path. The engine's
  // bounded retry (5 attempts) means a 400-fire window costs at most 80
  // packets — and at least (400 - straddlers) / 5.
  const auto table = default_route_table(0);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = false,
                         .ring_size = 4096},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 72});
  testbed.connect_sink(&traffic);

  fault::FaultInjector inj(/*seed=*/9);
  inj.add_rule({.point = "nic.link_down.0", .after = 1'000, .count = 400});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = false;
  config.chunk_capacity = 64;
  core::Router router(testbed.engine(), {}, app, config);
  router.set_fault_injector(&inj);
  router.start();

  const u64 offered = 12'000;
  const u64 accepted = traffic.offer(testbed.ports().subspan(1), offered);
  EXPECT_EQ(accepted, offered);  // no RX-side faults in this test

  // Drain completely (bounded: this doubles as the no-deadlock check):
  // everything accepted reaches the sink except the TX-flap casualties.
  EXPECT_TRUE(wait_for(
      [&] {
        const auto s = router.stats();
        return traffic.sunk_packets() + s.drops(iengine::DropReason::kRingFull) == accepted;
      },
      30s));
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());

  EXPECT_EQ(inj.stats("nic.link_down.0").fired, 400u);
  // Each dropped packet burns exactly 5 in-window fires; only the (at most
  // one per worker) packets straddling the window end can survive with
  // fewer, so the drop count is tightly bounded on both sides.
  const u64 ring_full = stats.drops(iengine::DropReason::kRingFull);
  EXPECT_GE(ring_full, (400u - 5u * 4u) / 5u);
  EXPECT_LE(ring_full, 400u / 5u);
  EXPECT_EQ(stats.dropped(), ring_full);  // no other drop reason fired
}

TEST(Chaos, RxLinkFlapRejectsFramesAtTheWire) {
  // Mirror case: traffic routes out of port 1, so the only hits on port
  // 0's link point are RX attempts from the offering thread — the window
  // is exactly 400 rejected frames, visible as hardware drops.
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = false,
                         .ring_size = 4096},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 73});
  testbed.connect_sink(&traffic);

  fault::FaultInjector inj(/*seed=*/11);
  inj.add_rule({.point = "nic.link_down.0", .after = 1'000, .count = 400});
  testbed.set_fault_injector(&inj);

  core::RouterConfig config;
  config.use_gpu = false;
  config.chunk_capacity = 64;
  core::Router router(testbed.engine(), {}, app, config);
  router.set_fault_injector(&inj);
  router.start();

  const u64 offered = 20'000;  // 5'000 RX attempts on port 0
  const u64 accepted = traffic.offer(testbed.ports(), offered);
  EXPECT_EQ(accepted, offered - 400);

  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }, 30s));
  router.stop();

  const auto stats = router.stats();
  u64 hw_rx_drops = 0;
  for (auto* port : testbed.ports()) hw_rx_drops += port->rx_totals().drops;
  EXPECT_EQ(hw_rx_drops, 400u);
  EXPECT_EQ(accepted + hw_rx_drops, offered);
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out, accepted);  // nothing dropped past the wire
  EXPECT_EQ(stats.dropped(), 0u);
  EXPECT_EQ(inj.stats("nic.link_down.0").fired, 400u);
}

}  // namespace
}  // namespace ps
