// Chaos variant of FIB churn under traffic: the supervised FibUpdater
// pumps a generated announce/withdraw stream through the epoch-published
// FIB while every fault class fires at once — updater faults (allocation
// failure, crash mid-batch, silent stall), master-queue overflow, and a
// link flap — and the data plane keeps forwarding with full packet
// conservation. A differential oracle checks after every committed batch
// that the incrementally-updated table answers exactly like a
// from-scratch longest-prefix-match over the same route set, and a full
// DIR-24-8 rebuild is compared periodically and at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/dynamic_ipv4.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"
#include "route/fib_updater.hpp"
#include "route/rib_gen.hpp"
#include "supervise/supervisor.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

u64 key_of(const route::Ipv4Prefix& p) {
  return (static_cast<u64>(p.network()) << 8) | p.length;
}

// From-scratch longest-prefix-match over the model route set: the oracle
// the incremental table must agree with. O(32) map probes per address, so
// it is cheap enough to run after every committed batch.
route::NextHop model_lookup(const std::unordered_map<u64, route::Ipv4Prefix>& model, u32 addr) {
  for (int len = 32; len >= 0; --len) {
    const u32 mask = len == 0 ? 0 : static_cast<u32>(~((u64{1} << (32 - len)) - 1));
    const auto it = model.find((static_cast<u64>(addr & mask) << 8) | static_cast<u64>(len));
    if (it != model.end()) return it->second.next_hop;
  }
  return route::kNoRoute;
}

TEST(FibChaosChurn, FaultedChurnUnderTrafficStaysCorrectAndConservesPackets) {
  constexpr u16 kNextHops = 4;  // single_node exposes 4 ports
  const auto base = route::generate_ipv4_rib(
      {.prefix_count = 20'000, .num_next_hops = kNextHops, .seed = 51});
  const auto churn = route::generate_ipv4_churn(base, 600, kNextHops, 52);

  route::Ipv4Fib fib;
  const route::Ipv4Prefix default_route{net::Ipv4Addr(0), 0, 1};
  fib.announce(default_route);  // never withdrawn: no packet can miss
  for (const auto& p : base) fib.announce(p);
  fib.commit();

  // Model of the committed route set, updated in lockstep with the ops we
  // queue; the differential oracle reads it after every drained batch.
  std::unordered_map<u64, route::Ipv4Prefix> model;
  model.reserve(base.size() * 2);
  model.emplace(key_of(default_route), default_route);
  for (const auto& p : base) model.emplace(key_of(p), p);

  apps::DynamicIpv4ForwardApp app(fib);
  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 53});
  testbed.connect_sink(&traffic);

  // Every fault class at once. The updater faults are windows of the
  // per-point hit counters, so the schedule is reproducible: two straight
  // allocation failures, then three crashes mid-batch, and one silent
  // stall around the middle of the run.
  fault::FaultInjector inj(/*seed=*/54);
  inj.add_rule({.point = std::string(fault::Point::kMasterQueue), .after = 50, .count = 100});
  inj.add_rule({.point = std::string(fault::Point::kLinkFlap) + ".0", .after = 1'000, .count = 200});
  inj.add_rule({.point = std::string(fault::Point::kFibUpdateAllocFail), .after = 2, .count = 2});
  inj.add_rule({.point = std::string(fault::Point::kFibUpdateCrashMidBatch), .after = 5, .count = 3});
  inj.add_rule({.point = std::string(fault::Point::kFibUpdateStall), .after = 40, .count = 1});
  testbed.set_fault_injector(&inj);

  route::FibUpdater updater(fib, {}, &inj);
  supervise::Supervisor supervisor({.check_interval = 1ms, .stall_window = 5ms});
  const int updater_tid = updater.attach_supervisor(supervisor);
  updater.start();
  supervisor.start();

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.start();

  std::atomic<bool> churn_done{false};
  std::atomic<u64> accepted{0};
  std::thread offerer([&] {
    while (!churn_done.load(std::memory_order_relaxed)) {
      accepted.fetch_add(traffic.offer(testbed.ports(), 500), std::memory_order_relaxed);
      std::this_thread::sleep_for(500us);
    }
  });

  // Deterministic probe pool for the oracle: covered addresses of the
  // base RIB plus raw addresses (these exercise withdrawn regions, where
  // cover falls back to a shorter prefix or the default route).
  std::vector<u32> probes = route::sample_covered_ipv4(base, 384, 55);
  {
    Rng rng(56);
    for (int i = 0; i < 128; ++i) probes.push_back(rng.next_u32());
  }

  constexpr std::size_t kBatch = 25;
  const u64 base_generation = fib.generation();
  u64 batches = 0;
  for (std::size_t start = 0; start < churn.size(); start += kBatch) {
    const std::size_t end = std::min(start + kBatch, churn.size());
    for (std::size_t i = start; i < end; ++i) {
      const auto& op = churn[i];
      if (op.announce) {
        fib.announce(op.prefix);
        model[key_of(op.prefix)] = op.prefix;
      } else {
        ASSERT_TRUE(fib.withdraw(op.prefix));
        model.erase(key_of(op.prefix));
      }
    }
    updater.drain();  // survives rollbacks, retries, and the stall window
    ++batches;

    // Differential oracle, every committed batch: the incrementally
    // updated generation must answer exactly like from-scratch LPM.
    {
      const auto table = fib.read();
      for (const u32 addr : probes) {
        ASSERT_EQ(table->lookup(net::Ipv4Addr(addr)), model_lookup(model, addr))
            << "divergence after batch " << batches;
      }
    }

    // Periodically (and on the last batch) compare against a full
    // DIR-24-8 rebuild of the model — same construction the updater would
    // use if it started from scratch.
    if (batches % 8 == 0 || end == churn.size()) {
      std::vector<route::Ipv4Prefix> routes;
      routes.reserve(model.size());
      for (const auto& [k, p] : model) routes.push_back(p);
      route::Ipv4Table rebuilt;
      rebuilt.build(routes);
      const auto table = fib.read();
      EXPECT_EQ(table->prefix_count(), rebuilt.prefix_count());
      for (const u32 addr : probes) {
        ASSERT_EQ(table->lookup(net::Ipv4Addr(addr)), rebuilt.lookup(net::Ipv4Addr(addr)))
            << "rebuild divergence after batch " << batches;
      }
    }

    app.sync();  // refresh GPU copies off the data path
  }
  churn_done.store(true);
  offerer.join();

  // Every batch committed despite the fault windows. The pump may split a
  // batch it catches mid-queueing into two commits, so the generation
  // advanced at least once per drained batch (and exactly once per
  // commit — all-or-nothing, no partials).
  EXPECT_GE(fib.generation(), base_generation + batches);
  EXPECT_EQ(fib.generation(), base_generation + updater.commits());
  EXPECT_EQ(fib.pending_updates(), 0u);

  // The chaos actually happened: rollbacks from both fault points, a
  // detected stall with a kick-based recovery, the master-queue window,
  // and a carrier-loss window on port 0.
  EXPECT_EQ(inj.stats(fault::Point::kFibUpdateAllocFail).fired, 2u);
  EXPECT_EQ(inj.stats(fault::Point::kFibUpdateCrashMidBatch).fired, 3u);
  EXPECT_EQ(inj.stats(fault::Point::kFibUpdateStall).fired, 1u);
  EXPECT_GE(updater.rollbacks(), 5u);
  EXPECT_GE(updater.stall_recoveries(), 1u);
  EXPECT_GE(supervisor.stalls_detected(), 1u);
  EXPECT_GT(inj.stats(fault::Point::kMasterQueue).fired, 0u);
  EXPECT_EQ(testbed.port(0).link_flaps(), 1u);
  EXPECT_TRUE(testbed.port(0).link_up());

  supervisor.stop();
  // Observe the post-kick recovery: under sanitizer slowdown a single
  // synchronous pass can catch the idle pump with a beat older than the
  // stall window (a false stall the kick handler absorbs), so poll until
  // a pass lands near a fresh beat.
  bool live = false;
  for (int i = 0; i < 5000 && !live; ++i) {
    supervisor.check_now();
    live = supervisor.health(updater_tid).state == supervise::ThreadState::kLive;
    if (!live) std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(live);
  updater.stop();

  // Packet conservation: everything accepted past the wire leaves the
  // router with exactly one disposition, and the default route means not
  // one packet missed the table mid-churn. A TX attempt that lands inside
  // the carrier-loss window is dropped by the NIC after the retry limit —
  // a legal disposition, bounded by the flap window — so sunk + dropped
  // accounts for every accepted packet.
  EXPECT_TRUE(wait_for([&] {
    return traffic.sunk_packets() + router.stats().dropped() == accepted.load();
  }));
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.drops(iengine::DropReason::kNoRoute), 0u);
  EXPECT_EQ(stats.packets_in, accepted.load());
  EXPECT_EQ(stats.packets_out + stats.dropped(), accepted.load());
  EXPECT_LE(stats.dropped(), 200u);  // only carrier-loss TX drops possible

  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
}

}  // namespace
}  // namespace ps
