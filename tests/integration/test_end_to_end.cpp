// End-to-end integration: generator -> NIC -> io-engine -> application
// (CPU and GPU paths) -> NIC -> sink, on the full paper-server testbed.
#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "apps/ipsec_gateway.hpp"
#include "apps/ipv4_forward.hpp"
#include "apps/ipv6_forward.hpp"
#include "apps/openflow_app.hpp"
#include "core/model_driver.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(EndToEnd, Ipv4RouterDistributesByRealRib) {
  // Real (synthetic-RouteViews-scale/8) RIB; every forwarded packet must
  // leave on the port the table says, and the sink's per-port split must
  // reflect the next-hop distribution.
  const auto rib = route::generate_ipv4_rib({.prefix_count = 30'000, .num_next_hops = 8, .seed = 40});
  route::Ipv4Table table;
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true, .ring_size = 4096},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 41});
  testbed.connect_sink(&traffic);

  core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
  const auto result = driver.run(traffic, 50'000);

  EXPECT_EQ(result.accepted + 0u, result.offered);
  EXPECT_EQ(result.forwarded + result.dropped + result.slow_path, result.accepted);
  EXPECT_GT(result.forwarded, result.accepted / 10);  // plenty of hits
  EXPECT_GT(result.dropped, 0u);                      // and misses (random dst)

  u64 sunk = 0;
  for (int p = 0; p < 8; ++p) sunk += traffic.sunk_on_port(p);
  EXPECT_EQ(sunk, result.forwarded);
}

TEST(EndToEnd, Ipv6RouterGpuFunctional) {
  const auto rib = route::generate_ipv6_rib(50'000, 8, 42);
  route::Ipv6Table table;
  table.build(rib);
  apps::Ipv6ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true, .ring_size = 4096},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 43});
  testbed.connect_sink(&traffic);

  core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
  const auto result = driver.run(traffic, 30'000);
  EXPECT_EQ(result.forwarded + result.dropped + result.slow_path, result.accepted);
  EXPECT_EQ(traffic.sunk_packets(), result.forwarded);
}

TEST(EndToEnd, IpsecTunnelThreadedRouterRoundTrips) {
  // Real threads, GPU offload, then decapsulate everything the sink saw.
  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x5151, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  apps::IpsecGatewayApp app(sa);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 2},
                        core::RouterConfig{.use_gpu = true});

  class Collect final : public nic::WireSink {
   public:
    void on_frame(int, std::span<const u8> frame) override {
      std::lock_guard lock(mu);
      frames.emplace_back(frame.begin(), frame.end());
    }
    std::mutex mu;
    std::vector<std::vector<u8>> frames;
  } sink;
  testbed.connect_sink(&sink);

  core::Router router(testbed.engine(), testbed.gpus(), app, core::RouterConfig{.use_gpu = true});
  router.start();

  gen::TrafficGen traffic({.frame_size = 128, .seed = 44});
  const u64 offered = 1000;
  traffic.offer(testbed.ports(), offered);

  ASSERT_TRUE(wait_for([&] {
    std::lock_guard lock(sink.mu);
    return sink.frames.size() >= offered;
  }));
  router.stop();

  // Every emitted frame is a valid ESP tunnel frame (per-SA replay check
  // is skipped: parallel workers interleave sequence numbers).
  std::lock_guard lock(sink.mu);
  ASSERT_EQ(sink.frames.size(), offered);
  for (auto& frame : sink.frames) {
    auto rx_sa = crypto::SecurityAssociation::make_test_sa(
        0x5151, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
    std::vector<u8> inner;
    ASSERT_EQ(crypto::esp_decapsulate(rx_sa, frame, inner), crypto::EspError::kOk);
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(inner.data(), static_cast<u32>(inner.size()), view),
              net::ParseStatus::kOk);
    EXPECT_EQ(view.ether_type, net::EtherType::kIpv4);
  }
}

TEST(EndToEnd, OpenFlowSwitchModelRun) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.frame_size = 64, .seed = 45, .flow_count = 256});

  // Exact entries for some flows; wildcard fallback that drops UDP from
  // half the source space; default punts to the controller.
  for (u32 flow = 0; flow < 64; ++flow) {
    const auto frame = traffic.frame_for_flow(flow);
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()),
                                view),
              net::ParseStatus::kOk);
    // Flows enter on any port; wildcard the in_port by installing for all.
    for (u16 port = 0; port < 8; ++port) {
      sw.exact().insert(openflow::extract_flow_key(view, port),
                        openflow::Action::output(static_cast<u16>(flow % 8)));
    }
  }
  openflow::WildcardMatch udp;
  udp.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  udp.key.nw_proto = 17;
  udp.priority = 5;
  sw.wildcard().insert(udp, openflow::Action::output(0));

  apps::OpenFlowApp app(sw);
  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true, .ring_size = 4096},
                        core::RouterConfig{.use_gpu = true});
  testbed.connect_sink(&traffic);

  core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
  const auto result = driver.run(traffic, 20'000);

  EXPECT_EQ(result.forwarded, result.accepted);  // everything matched something
  EXPECT_EQ(result.slow_path, 0u);
  EXPECT_GT(traffic.sunk_packets(), 0u);
  // Note: per-entry hit counters advance only on the CPU path; the GPU
  // path classifies against the device copy of the tables (section 6.2.3).
}

TEST(EndToEnd, RingOverflowDropsAreAccounted) {
  // Failure injection: tiny rings + a burst far beyond capacity.
  core::Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false, .ring_size = 8},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 46});
  testbed.connect_sink(&traffic);

  const u64 accepted = traffic.offer(testbed.ports(), 10'000);
  EXPECT_LT(accepted, 10'000u);
  u64 hw_drops = 0;
  for (auto* port : testbed.ports()) hw_drops += port->rx_totals().drops;
  EXPECT_EQ(accepted + hw_drops, 10'000u);
}

TEST(EndToEnd, MalformedTrafficIsContained) {
  // Corrupted frames must be dropped by classification without affecting
  // the healthy ones around them.
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true, .ring_size = 4096},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 47});
  testbed.connect_sink(&traffic);

  // Hand-inject alternating good/corrupt frames.
  u64 good = 0, bad = 0;
  for (int i = 0; i < 2000; ++i) {
    auto frame = traffic.next_frame();
    if (i % 3 == 0) {
      frame[sizeof(net::EthernetHeader) + 10] ^= 0xff;  // break IP checksum
      ++bad;
    } else {
      ++good;
    }
    ASSERT_TRUE(testbed.port(i % 8).receive_frame(frame));
  }

  core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
  gen::TrafficGen no_more({.seed = 48});
  const auto result = driver.run(no_more, 1);  // drains what is queued

  EXPECT_GE(result.forwarded, good);  // all healthy frames forwarded
  EXPECT_GE(result.dropped, bad);     // all corrupt frames dropped
}

}  // namespace
}  // namespace ps
