// Supervisor chaos: deterministic hung-thread fault points park a worker
// or a master mid-run. The heartbeat supervisor must detect the stall
// within its bounded window, recover the thread (quarantine + kick for a
// worker, re-kick for a master), and the run must end with zero
// unaccounted packets.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

route::Ipv4Table default_route_table(route::NextHop out_port) {
  route::Ipv4Table table;
  const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, out_port};
  table.build({&all, 1});
  return table;
}

TEST(SupervisorChaos, WorkerHangIsDetectedQuarantinedAndRecovered) {
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 91});
  testbed.connect_sink(&traffic);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.supervisor_interval = 1ms;
  config.supervisor_stall_window = 5ms;

  // One worker parks after 400 loop iterations (whichever worker reaches
  // the shared hit counter first) and stays parked until kicked.
  fault::FaultInjector inj(/*seed=*/21);
  inj.add_rule({.point = std::string(fault::Point::kWorkerHang), .after = 400, .count = 1});
  testbed.set_fault_injector(&inj);

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.start();

  // Keep traffic flowing so the hang happens mid-load and the quarantined
  // worker's queues have something for the adopter to drain.
  u64 offered = 0;
  u64 accepted = 0;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (std::chrono::steady_clock::now() < deadline) {
    accepted += traffic.offer(testbed.ports(), 1'000);
    offered += 1'000;
    if (router.supervisor().stalls_detected() >= 1 && router.supervisor().recoveries() >= 1 &&
        offered >= 10'000) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  // Detection and recovery both happened (the detection itself is bounded
  // by stall_window + check_interval; the loop deadline is pure slack).
  EXPECT_EQ(inj.stats(fault::Point::kWorkerHang).fired, 1u);
  ASSERT_GE(router.supervisor().stalls_detected(), 1u);
  ASSERT_GE(router.supervisor().recoveries(), 1u);
  const auto events = router.supervisor().stall_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, supervise::ThreadKind::kWorker);
  EXPECT_GT(events[0].silent_for, config.supervisor_stall_window);
  const auto health = router.supervisor().health(events[0].thread_id);
  EXPECT_EQ(health.state, supervise::ThreadState::kLive);  // it came back
  EXPECT_GE(health.recoveries, 1u);

  // Zero unaccounted loss across the hang + quarantine + handback.
  u64 hw_rx_drops = 0;
  for (auto* port : testbed.ports()) hw_rx_drops += port->rx_totals().drops;
  EXPECT_EQ(accepted + hw_rx_drops, offered);
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
}

TEST(SupervisorChaos, MasterHangIsDetectedWorkersAbsorbAndMasterResumes) {
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 92});
  testbed.connect_sink(&traffic);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  // Fills fast while the master is out. Since the SPSC fan-in split this
  // capacity across per-worker lanes (4 over 3 workers -> 2 slots each,
  // aggregate 6), there is no shared queue and no global FIFO to rely
  // on: each worker's own lane saturates independently, which is exactly
  // what diverts its dispatches down the CPU path below.
  config.master_queue_capacity = 4;
  config.supervisor_interval = 1ms;
  config.supervisor_stall_window = 5ms;

  fault::FaultInjector inj(/*seed=*/22);
  inj.add_rule({.point = std::string(fault::Point::kMasterHang), .after = 30, .count = 1});
  testbed.set_fault_injector(&inj);

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_fault_injector(&inj);
  router.start();

  u64 offered = 0;
  u64 accepted = 0;
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (std::chrono::steady_clock::now() < deadline) {
    accepted += traffic.offer(testbed.ports(), 1'000);
    offered += 1'000;
    if (router.supervisor().stalls_detected() >= 1 && router.supervisor().recoveries() >= 1 &&
        offered >= 10'000) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }

  EXPECT_EQ(inj.stats(fault::Point::kMasterHang).fired, 1u);
  ASSERT_GE(router.supervisor().stalls_detected(), 1u);
  ASSERT_GE(router.supervisor().recoveries(), 1u);
  const auto events = router.supervisor().stall_events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].kind, supervise::ThreadKind::kMaster);

  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));
  router.stop();

  const auto stats = router.stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out, traffic.sunk_packets());
  EXPECT_EQ(stats.packets_out + stats.dropped() + stats.slow_path, stats.packets_in);
  // While the master was parked its queue filled, so every dispatch was
  // diverted down the CPU path — the workers absorbed the load and
  // forwarding never stopped.
  EXPECT_GT(stats.bp_diverted_chunks, 0u);
  EXPECT_GT(stats.cpu_processed, 0u);
  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
}

}  // namespace
}  // namespace ps
