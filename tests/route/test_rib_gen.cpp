// Synthetic RIB generators: determinism, scale, and the prefix-length
// histogram properties the DIR-24-8 evaluation depends on.
#include <gtest/gtest.h>

#include <unordered_set>

#include "route/rib_gen.hpp"

namespace ps::route {
namespace {

TEST(RibGen, Deterministic) {
  const auto a = generate_ipv4_rib({.prefix_count = 1000, .num_next_hops = 8, .seed = 42});
  const auto b = generate_ipv4_rib({.prefix_count = 1000, .num_next_hops = 8, .seed = 42});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].next_hop, b[i].next_hop);
  }
}

TEST(RibGen, DifferentSeedsDiffer) {
  const auto a = generate_ipv4_rib({.prefix_count = 100, .num_next_hops = 8, .seed = 1});
  const auto b = generate_ipv4_rib({.prefix_count = 100, .num_next_hops = 8, .seed = 2});
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].addr == b[i].addr && a[i].length == b[i].length) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RibGen, PrefixesAreUnique) {
  const auto rib = generate_ipv4_rib({.prefix_count = 20'000, .num_next_hops = 8, .seed = 7});
  std::unordered_set<u64> seen;
  for (const auto& p : rib) {
    const u64 key = (static_cast<u64>(p.network()) << 8) | p.length;
    EXPECT_TRUE(seen.insert(key).second);
  }
}

TEST(RibGen, PrefixesAreCanonical) {
  const auto rib = generate_ipv4_rib({.prefix_count = 5000, .num_next_hops = 8, .seed = 8});
  for (const auto& p : rib) {
    EXPECT_EQ(p.addr.value, p.network());  // no host bits set
    EXPECT_GE(p.length, 8);
    EXPECT_LE(p.length, 32);
    EXPECT_LT(p.next_hop, 8);
  }
}

TEST(RibGen, LengthHistogramMatchesPaper) {
  // 3% of RouteViews prefixes are longer than /24 (section 6.2.1) and /24
  // dominates the table.
  const auto rib = generate_ipv4_rib({.prefix_count = 100'000, .num_next_hops = 8, .seed = 3});
  u64 longer_than_24 = 0;
  u64 exactly_24 = 0;
  for (const auto& p : rib) {
    if (p.length > 24) ++longer_than_24;
    if (p.length == 24) ++exactly_24;
  }
  const double frac_long = static_cast<double>(longer_than_24) / static_cast<double>(rib.size());
  EXPECT_GT(frac_long, 0.015);
  EXPECT_LT(frac_long, 0.05);
  EXPECT_GT(static_cast<double>(exactly_24) / static_cast<double>(rib.size()), 0.35);
}

TEST(RibGen, PaperScaleCountBuilds) {
  const auto rib = generate_ipv4_rib({.prefix_count = kPaperIpv4PrefixCount,
                                      .num_next_hops = 8,
                                      .seed = 2010});
  EXPECT_EQ(rib.size(), kPaperIpv4PrefixCount);
}

TEST(RibGen, MillionPrefixScaleBuildsAndRoutes) {
  // Million-prefix tables (several times the 2009 snapshot) must generate
  // without stalling on saturated short lengths — there are only 223
  // usable /8s, so the surplus mass lands on longer prefixes — and must
  // build into a servable DIR-24-8 table.
  const auto rib = generate_ipv4_rib({.prefix_count = 1'000'000, .num_next_hops = 8, .seed = 6});
  ASSERT_EQ(rib.size(), 1'000'000u);

  std::unordered_set<u64> seen;
  seen.reserve(rib.size() * 2);
  for (const auto& p : rib) {
    const u64 key = (static_cast<u64>(p.network()) << 8) | p.length;
    ASSERT_TRUE(seen.insert(key).second);
  }

  Ipv4Table table;
  table.build(rib);
  EXPECT_EQ(table.prefix_count(), 1'000'000u);
  const auto pool = sample_covered_ipv4(rib, 4096, 9);
  u64 hits = 0;
  for (const u32 dst : pool) {
    if (table.lookup(net::Ipv4Addr(dst)) != kNoRoute) ++hits;
  }
  // Covered addresses always match some prefix (longest match may still
  // be the sampled one or a more specific neighbour; either way, a hit).
  EXPECT_EQ(hits, pool.size());
}

TEST(RibGen, ChurnStreamIsConsistentAndDeterministic) {
  const auto base = generate_ipv4_rib({.prefix_count = 2'000, .num_next_hops = 4, .seed = 12});
  const auto ops = generate_ipv4_churn(base, 5'000, 4, 13);
  ASSERT_EQ(ops.size(), 5'000u);

  // Replaying in order must keep withdrawals valid: every withdraw hits a
  // prefix live at that point in the stream.
  std::unordered_set<u64> live;
  for (const auto& p : base) {
    live.insert((static_cast<u64>(p.network()) << 8) | p.length);
  }
  u64 withdraws = 0, fresh = 0, replaced = 0;
  for (const auto& op : ops) {
    const u64 key = (static_cast<u64>(op.prefix.network()) << 8) | op.prefix.length;
    if (!op.announce) {
      ++withdraws;
      ASSERT_TRUE(live.erase(key) == 1) << "withdraw of a prefix not live";
    } else if (live.insert(key).second) {
      ++fresh;
    } else {
      ++replaced;
      EXPECT_LT(op.prefix.next_hop, 4);
    }
  }
  // All three op kinds occur in a healthy mix.
  EXPECT_GT(withdraws, ops.size() / 8);
  EXPECT_GT(fresh, ops.size() / 8);
  EXPECT_GT(replaced, ops.size() / 8);

  const auto again = generate_ipv4_churn(base, 5'000, 4, 13);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(ops[i].prefix.addr, again[i].prefix.addr);
    EXPECT_EQ(ops[i].prefix.length, again[i].prefix.length);
    EXPECT_EQ(ops[i].prefix.next_hop, again[i].prefix.next_hop);
    EXPECT_EQ(ops[i].announce, again[i].announce);
  }
}

TEST(RibGen, Ipv6Unique64BitPrefixes) {
  const auto rib = generate_ipv6_rib(10'000, 8, 5);
  for (const auto& p : rib) {
    EXPECT_GE(p.length, 16);
    EXPECT_LE(p.length, 64);
    EXPECT_EQ(p.addr.lo64(), 0u);
    // Canonical: masked to its own length.
    EXPECT_EQ(mask128(p.addr.hi64(), 0, p.length).hi, p.addr.hi64());
  }
}

TEST(RibGen, Ipv6Deterministic) {
  const auto a = generate_ipv6_rib(500, 8, 77);
  const auto b = generate_ipv6_rib(500, 8, 77);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].addr, b[i].addr);
    EXPECT_EQ(a[i].length, b[i].length);
  }
}

TEST(RibGen, LengthFractionSumsToOne) {
  double total = 0;
  for (int len = 0; len <= 32; ++len) total += ipv4_length_fraction(len);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace ps::route
