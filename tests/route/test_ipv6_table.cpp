// IPv6 binary search on prefix lengths: correctness against the trie
// reference, probe bounds (<= 7), and the flattened GPU layout.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "route/ipv6_table.hpp"
#include "route/rib_gen.hpp"

namespace ps::route {
namespace {

Ipv6Prefix p6(u64 hi, u8 len, NextHop nh) {
  return {net::Ipv6Addr::from_words(hi, 0), len, nh};
}

TEST(Mask128, Boundaries) {
  const u64 all = ~u64{0};
  EXPECT_EQ(mask128(all, all, 0), (Key128{0, 0}));
  EXPECT_EQ(mask128(all, all, 64), (Key128{all, 0}));
  EXPECT_EQ(mask128(all, all, 128), (Key128{all, all}));
  EXPECT_EQ(mask128(all, all, 1), (Key128{u64{1} << 63, 0}));
  EXPECT_EQ(mask128(all, all, 65), (Key128{all, u64{1} << 63}));
  EXPECT_EQ(mask128(all, all, 127), (Key128{all, all & ~u64{1}}));
}

TEST(Ipv6Table, EmptyTable) {
  Ipv6Table table;
  table.build({});
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(1, 2)), kNoRoute);
}

TEST(Ipv6Table, BasicLongestPrefixMatch) {
  Ipv6Table table;
  const Ipv6Prefix prefixes[] = {
      p6(0x2001'0000'0000'0000ULL, 16, 1),
      p6(0x2001'0db8'0000'0000ULL, 32, 2),
      p6(0x2001'0db8'aaaa'0000ULL, 48, 3),
  };
  table.build(prefixes);

  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'ffff'0000'0000ULL, 0)), 1);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0db8'ffff'0000ULL, 0)), 2);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0db8'aaaa'bbbbULL, 0)), 3);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x3001'0000'0000'0000ULL, 0)), kNoRoute);
}

TEST(Ipv6Table, AtMostSevenProbes) {
  const auto rib = generate_ipv6_rib(5000, 8, 11);
  Ipv6Table table;
  table.build(rib);

  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    int probes = 0;
    table.lookup(net::Ipv6Addr::from_words(rng.next_u64(), rng.next_u64()), &probes);
    EXPECT_LE(probes, 7);
    EXPECT_GE(probes, 1);
  }
}

TEST(Ipv6Table, DefaultRoute) {
  Ipv6Table table;
  const Ipv6Prefix prefixes[] = {{net::Ipv6Addr{}, 0, 9}, p6(0x2001'0000'0000'0000ULL, 16, 1)};
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0000'0000'0001ULL, 0)), 1);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x9999'0000'0000'0000ULL, 0)), 9);
}

TEST(Ipv6Table, PrefixLongerThan64Bits) {
  Ipv6Table table;
  const Ipv6Prefix prefixes[] = {
      {net::Ipv6Addr::from_words(0xaaaa'0000'0000'0000ULL, 0), 16, 1},
      {net::Ipv6Addr::from_words(0xaaaa'0000'0000'0000ULL, 0xbbbb'0000'0000'0000ULL), 80, 2},
  };
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0xaaaa'0000'0000'0000ULL,
                                                   0xbbbb'1234'0000'0000ULL)),
            2);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0xaaaa'0000'0000'0000ULL,
                                                   0xcccc'0000'0000'0000ULL)),
            1);
}

TEST(Ipv6Table, MarkersDoNotCreateFalsePositives) {
  // A marker alone (no real prefix covering the address) must not return a
  // route. /48 inserts markers at shorter search levels; an address
  // sharing only those marker bits but diverging later must miss.
  Ipv6Table table;
  const Ipv6Prefix prefixes[] = {p6(0x2001'0db8'aaaa'0000ULL, 48, 3)};
  table.build(prefixes);
  // Shares the first 32 bits (a marker level) but not all 48.
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0db8'bbbb'0000ULL, 0)), kNoRoute);
}

TEST(Ipv6Table, FlattenedLayoutMatches) {
  const auto rib = generate_ipv6_rib(3000, 8, 21);
  Ipv6Table table;
  table.build(rib);
  const auto flat = table.flatten();

  Rng rng(22);
  for (int i = 0; i < 3000; ++i) {
    net::Ipv6Addr addr = net::Ipv6Addr::from_words(rng.next_u64(), rng.next_u64());
    if (i % 2 == 0) {
      const auto& prefix = rib[rng.next_below(rib.size())];
      const u64 host = prefix.length >= 64 ? 0 : rng.next_u64() >> prefix.length;
      addr = net::Ipv6Addr::from_words(prefix.addr.hi64() | host, rng.next_u64());
    }
    int probes_a = 0, probes_b = 0;
    const NextHop a = table.lookup(addr, &probes_a);
    const NextHop b = flat.lookup(addr, &probes_b);
    EXPECT_EQ(a, b) << addr.to_string();
    EXPECT_EQ(probes_a, probes_b);
  }
}

// Property sweep: the binary-search table must agree with the trie oracle.
class Ipv6TablePropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(Ipv6TablePropertyTest, MatchesReferenceTrie) {
  const auto rib = generate_ipv6_rib(1500, 32, GetParam());
  Ipv6Table table;
  table.build(rib);
  Ipv6ReferenceLpm reference;
  reference.build(rib);

  Rng rng(GetParam() + 500);
  for (int i = 0; i < 1500; ++i) {
    net::Ipv6Addr addr = net::Ipv6Addr::from_words(rng.next_u64(), rng.next_u64());
    if (i % 2 == 0) {
      // Land inside a random prefix to exercise hits and near-misses.
      const auto& prefix = rib[rng.next_below(rib.size())];
      const u64 host = prefix.length >= 64 ? 0 : rng.next_u64() >> prefix.length;
      addr = net::Ipv6Addr::from_words(prefix.addr.hi64() | host, rng.next_u64());
    }
    EXPECT_EQ(table.lookup(addr), reference.lookup(addr)) << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv6TablePropertyTest, ::testing::Values(101, 102, 103, 104));

TEST(Ipv6Table, PaperScaleTableBuilds) {
  // The paper's 200,000-prefix configuration (section 6.2.2).
  const auto rib = generate_ipv6_rib(kPaperIpv6PrefixCount, 8, 2010);
  Ipv6Table table;
  table.build(rib);
  EXPECT_EQ(table.prefix_count(), kPaperIpv6PrefixCount);
  EXPECT_GT(table.marker_count(), 0u);

  int probes = 0;
  table.lookup(rib[0].addr, &probes);
  EXPECT_LE(probes, 7);
}

}  // namespace
}  // namespace ps::route
