// Incremental DIR-24-8 updates (Ipv4Table::apply_resolved) against the
// from-scratch oracle: after any sequence of resolved announces and
// withdraws, lookups through the incrementally maintained table must be
// identical to a table rebuilt from the same RIB. This is the same
// oracle the chaos churn test runs online; here it gets adversarial
// small cases plus a randomized soak.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "route/ipv4_table.hpp"

namespace ps::route {
namespace {

net::Ipv4Addr ip(u32 v) { return net::Ipv4Addr{v}; }

/// Test-side RIB: key -> prefix, with the parent resolution the control
/// plane performs before handing ops to the table.
class RibModel {
 public:
  ResolvedIpv4Op announce(u32 addr, u8 length, NextHop nh) {
    Ipv4Prefix p{ip(addr), length, nh};
    ResolvedIpv4Op op;
    op.prefix = p;
    op.announce = true;
    op.is_new = rib_.find(key(p)) == rib_.end();
    rib_[key(p)] = p;
    return op;
  }

  std::optional<ResolvedIpv4Op> withdraw(u32 addr, u8 length) {
    Ipv4Prefix probe{ip(addr), length, 0};
    auto it = rib_.find(key(probe));
    if (it == rib_.end()) return std::nullopt;
    ResolvedIpv4Op op;
    op.prefix = it->second;
    op.announce = false;
    rib_.erase(it);
    // Longest strictly-shorter covering prefix in the post-withdraw RIB.
    for (int l = static_cast<int>(length) - 1; l >= 0; --l) {
      Ipv4Prefix cover{ip(addr), static_cast<u8>(l), 0};
      auto p = rib_.find(key(cover));
      if (p != rib_.end()) {
        op.parent_nh = p->second.next_hop;
        op.parent_depth = p->second.length;
        return op;
      }
    }
    op.parent_nh = kNoRoute;
    op.parent_depth = 0;
    return op;
  }

  std::vector<Ipv4Prefix> prefixes() const {
    std::vector<Ipv4Prefix> out;
    out.reserve(rib_.size());
    for (const auto& [k, p] : rib_) out.push_back(p);
    return out;
  }

  std::size_t size() const { return rib_.size(); }

 private:
  static u64 key(const Ipv4Prefix& p) {
    return (static_cast<u64>(p.network()) << 8) | p.length;
  }
  std::map<u64, Ipv4Prefix> rib_;
};

/// Compare incremental vs rebuilt table on addresses around every RIB
/// prefix boundary plus a random sample.
void expect_equivalent(const Ipv4Table& incremental, const RibModel& rib, Rng& rng) {
  Ipv4Table oracle;
  auto prefixes = rib.prefixes();
  oracle.build(prefixes);
  EXPECT_EQ(incremental.prefix_count(), rib.size());

  std::vector<u32> probes;
  for (const auto& p : prefixes) {
    const u32 net = p.network();
    const u32 span = p.length == 0 ? ~u32{0} : (u32{1} << (32 - p.length)) - 1;
    probes.push_back(net);
    probes.push_back(net + span);               // last covered address
    probes.push_back(net + (span >> 1));        // interior
    probes.push_back(net + span + 1);           // first address past (wraps ok)
    if (net != 0) probes.push_back(net - 1);    // last address before
  }
  for (int i = 0; i < 2048; ++i) probes.push_back(static_cast<u32>(rng.next_u64()));

  for (u32 a : probes) {
    ASSERT_EQ(incremental.lookup(ip(a)), oracle.lookup(ip(a))) << "addr=" << a;
  }
}

TEST(Ipv4Apply, AnnounceWithdrawAcrossTheChunkBoundary) {
  Ipv4Table t;
  RibModel rib;
  Rng rng(7);

  // Shallow cover, then a /26 forcing a chunk, then churn on all three.
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x0A000000, 8, 1)});
  expect_equivalent(t, rib, rng);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x0A0101C0, 26, 2)});
  expect_equivalent(t, rib, rng);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x0A010100, 24, 3)});
  expect_equivalent(t, rib, rng);

  // Withdrawing the /24 must re-expose the /8 inside the chunk without
  // touching the /26 slots.
  auto wd = rib.withdraw(0x0A010100, 24);
  ASSERT_TRUE(wd.has_value());
  t.apply_resolved(std::vector<ResolvedIpv4Op>{*wd});
  expect_equivalent(t, rib, rng);

  wd = rib.withdraw(0x0A0101C0, 26);
  ASSERT_TRUE(wd.has_value());
  t.apply_resolved(std::vector<ResolvedIpv4Op>{*wd});
  expect_equivalent(t, rib, rng);

  wd = rib.withdraw(0x0A000000, 8);
  ASSERT_TRUE(wd.has_value());
  t.apply_resolved(std::vector<ResolvedIpv4Op>{*wd});
  expect_equivalent(t, rib, rng);
  EXPECT_EQ(t.lookup(ip(0x0A0101C5)), kNoRoute);
}

TEST(Ipv4Apply, ReplaceNextHopInPlace) {
  Ipv4Table t;
  RibModel rib;
  Rng rng(11);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0xC0A80000, 16, 4)});
  // Same prefix, new next hop: is_new=false, prefix_count unchanged.
  const auto op = rib.announce(0xC0A80000, 16, 9);
  EXPECT_FALSE(op.is_new);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{op});
  EXPECT_EQ(t.prefix_count(), 1u);
  expect_equivalent(t, rib, rng);
}

TEST(Ipv4Apply, DefaultRouteAnnounceAndWithdraw) {
  Ipv4Table t;
  RibModel rib;
  Rng rng(13);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0, 0, 5)});
  expect_equivalent(t, rib, rng);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x08000000, 6, 6)});
  expect_equivalent(t, rib, rng);
  auto wd = rib.withdraw(0, 0);
  ASSERT_TRUE(wd.has_value());
  t.apply_resolved(std::vector<ResolvedIpv4Op>{*wd});
  expect_equivalent(t, rib, rng);
  EXPECT_EQ(t.lookup(ip(0xFFFFFFFF)), kNoRoute);
  EXPECT_EQ(t.lookup(ip(0x09000000)), NextHop{6});
}

TEST(Ipv4Apply, Host32RouteChurn) {
  Ipv4Table t;
  RibModel rib;
  Rng rng(17);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x0B0C0D0E, 32, 7)});
  expect_equivalent(t, rib, rng);
  t.apply_resolved(std::vector<ResolvedIpv4Op>{rib.announce(0x0B0C0D00, 25, 8)});
  expect_equivalent(t, rib, rng);
  auto wd = rib.withdraw(0x0B0C0D0E, 32);
  ASSERT_TRUE(wd.has_value());
  t.apply_resolved(std::vector<ResolvedIpv4Op>{*wd});
  expect_equivalent(t, rib, rng);
  EXPECT_EQ(t.lookup(ip(0x0B0C0D0E)), NextHop{8});
}

TEST(Ipv4Apply, RandomizedChurnSoakMatchesRebuild) {
  Ipv4Table t;
  RibModel rib;
  Rng rng(2010);

  // Cluster the random prefixes into a few /16s so announces, withdraws,
  // covers, and chunk splits actually collide with each other.
  const u32 bases[] = {0x0A000000u, 0x0A010000u, 0xC6336400u, 0xB0000000u};
  std::vector<ResolvedIpv4Op> batch;
  for (int round = 0; round < 60; ++round) {
    batch.clear();
    const int ops = 1 + static_cast<int>(rng.next_u64() % 8);
    for (int i = 0; i < ops; ++i) {
      const u32 base = bases[rng.next_u64() % 4];
      const u8 length = static_cast<u8>(8 + rng.next_u64() % 25);  // 8..32
      const u32 addr = base | static_cast<u32>(rng.next_u64() & 0x0000FFFFu);
      if (rng.next_u64() % 3 != 0) {
        batch.push_back(rib.announce(addr, length, static_cast<NextHop>(1 + rng.next_u64() % 64)));
      } else if (auto wd = rib.withdraw(addr, length)) {
        batch.push_back(*wd);
      }
    }
    t.apply_resolved(batch);
    if (round % 10 == 9) expect_equivalent(t, rib, rng);
  }
  expect_equivalent(t, rib, rng);
}

}  // namespace
}  // namespace ps::route
