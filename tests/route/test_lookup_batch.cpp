// Differential tests for the batched lookup paths: lookup_batch must be
// byte-for-byte identical to the scalar lookup for every key, every batch
// size (including sizes that exercise the pipelined prologue, the
// already-prefetched trailing groups, and the scalar tail), and tables
// with TBLlong overflow / maximum-length prefixes. The batch walk is a
// reordering of the same memory accesses, so any divergence is a bug.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "route/ipv4_table.hpp"
#include "route/ipv6_table.hpp"
#include "route/rib_gen.hpp"

namespace ps::route {
namespace {

constexpr std::size_t kBatchSizes[] = {1, 3, 7, 8, 64, 257, 1000};

void expect_ipv4_batch_matches_scalar(const Ipv4Table& table, const std::vector<u32>& keys) {
  std::vector<NextHop> scalar(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    scalar[i] = table.lookup(net::Ipv4Addr(keys[i]));
  }
  for (const std::size_t batch : kBatchSizes) {
    std::vector<NextHop> got(keys.size(), static_cast<NextHop>(0xdead));
    for (std::size_t i = 0; i < keys.size(); i += batch) {
      const std::size_t n = std::min(batch, keys.size() - i);
      table.lookup_batch(keys.data() + i, got.data() + i, n);
    }
    ASSERT_EQ(got, scalar) << "batch size " << batch;
  }
}

TEST(Ipv4LookupBatch, MatchesScalarOnRandomRib) {
  RibGenConfig cfg;
  cfg.prefix_count = 20000;
  cfg.seed = 77;
  const auto rib = generate_ipv4_rib(cfg);
  Ipv4Table table;
  table.build(rib);
  ASSERT_GT(table.overflow_chunks(), 0u);  // >24-bit prefixes are present

  Rng rng(101);
  std::vector<u32> keys(5000);
  for (auto& k : keys) k = rng.next_u32();
  // Half the pool covered so both match and no-route verdicts appear.
  const auto covered = sample_covered_ipv4(rib, keys.size() / 2);
  for (std::size_t i = 0; i < covered.size(); ++i) keys[2 * i] = covered[i];
  expect_ipv4_batch_matches_scalar(table, keys);
}

TEST(Ipv4LookupBatch, MatchesScalarOnOverflowHeavyTable) {
  // Every prefix longer than /24: each lookup takes the TBLlong branch.
  std::vector<Ipv4Prefix> rib;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Ipv4Prefix p;
    p.addr = net::Ipv4Addr(rng.next_u32());
    p.length = static_cast<u8>(25 + rng.next_below(8));  // 25..32
    p.next_hop = static_cast<NextHop>(rng.next_below(64));
    rib.push_back(p);
  }
  Ipv4Table table;
  table.build(rib);
  ASSERT_GT(table.overflow_chunks(), 0u);

  std::vector<u32> keys(3000);
  Rng krng(6);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Bias keys into the overflow chunks' /24 neighbourhoods.
    const auto& p = rib[krng.next_below(rib.size())];
    keys[i] = (p.addr.value & 0xffffff00u) | static_cast<u32>(krng.next_below(256));
  }
  expect_ipv4_batch_matches_scalar(table, keys);
}

TEST(Ipv4LookupBatch, EmptyAndTinyInputs) {
  Ipv4Table table;
  table.build({});
  table.lookup_batch(nullptr, nullptr, 0);  // must be a no-op
  const u32 key = 0x0a000001;
  NextHop out = 0;
  table.lookup_batch(&key, &out, 1);
  EXPECT_EQ(out, kNoRoute);
}

void expect_ipv6_batch_matches_scalar(const Ipv6FlatTable& flat,
                                      const std::vector<u64>& keys) {
  const std::size_t n = keys.size() / 2;
  std::vector<NextHop> scalar(n);
  u64 scalar_probes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int probes = 0;
    scalar[i] = flat.lookup(net::Ipv6Addr::from_words(keys[2 * i], keys[2 * i + 1]), &probes);
    scalar_probes += static_cast<u64>(probes);
  }
  for (const std::size_t batch : kBatchSizes) {
    std::vector<NextHop> got(n, static_cast<NextHop>(0xdead));
    u64 batch_probes = 0;
    for (std::size_t i = 0; i < n; i += batch) {
      const std::size_t m = std::min(batch, n - i);
      u64 probes = 0;
      flat.lookup_batch(keys.data() + 2 * i, got.data() + i, m, &probes);
      batch_probes += probes;
    }
    ASSERT_EQ(got, scalar) << "batch size " << batch;
    // The lockstep walk visits exactly the levels the scalar search does,
    // so the cost accounting must agree too.
    EXPECT_EQ(batch_probes, scalar_probes) << "batch size " << batch;
  }
}

TEST(Ipv6LookupBatch, MatchesScalarOnRandomRib) {
  const auto rib = generate_ipv6_rib(20000, 8, 42);
  Ipv6Table table;
  table.build(rib);
  const auto flat = table.flatten();

  Rng rng(7);
  std::vector<u64> keys(2 * 3000);
  for (auto& w : keys) w = rng.next_u64();
  const auto covered = sample_covered_ipv6(rib, 1000);
  for (std::size_t i = 0; i < covered.size(); ++i) {
    keys[4 * i] = covered[i].hi64();
    keys[4 * i + 1] = covered[i].lo64();
  }
  expect_ipv6_batch_matches_scalar(flat, keys);
}

TEST(Ipv6LookupBatch, MatchesScalarWithMaxLengthPrefixes) {
  // Host routes (/128) sit at the deepest binary-search level; mixing them
  // with short prefixes forces the full range of level visits.
  std::vector<Ipv6Prefix> rib;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Ipv6Prefix p;
    p.addr = net::Ipv6Addr::from_words(rng.next_u64(), rng.next_u64());
    p.length = (i % 2 == 0) ? 128 : static_cast<u8>(1 + rng.next_below(64));
    p.next_hop = static_cast<NextHop>(rng.next_below(64));
    rib.push_back(p);
  }
  Ipv6Table table;
  table.build(rib);
  const auto flat = table.flatten();

  std::vector<u64> keys;
  // Exact /128 addresses (must match), near misses, and random keys.
  for (const auto& p : rib) {
    keys.push_back(p.addr.hi64());
    keys.push_back(p.addr.lo64());
    keys.push_back(p.addr.hi64());
    keys.push_back(p.addr.lo64() ^ 1);
  }
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.next_u64());
    keys.push_back(rng.next_u64());
  }
  expect_ipv6_batch_matches_scalar(flat, keys);
}

TEST(Ipv6LookupBatch, EmptyTableAndEmptyInput) {
  Ipv6Table table;
  table.build({});
  const auto flat = table.flatten();
  flat.lookup_batch(nullptr, nullptr, 0);
  const u64 key[2] = {0x2001'0db8'0000'0000ull, 0};
  NextHop out = 0;
  u64 probes = 0;
  flat.lookup_batch(key, &out, 1, &probes);
  EXPECT_EQ(out, kNoRoute);
  int scalar_probes = 0;
  EXPECT_EQ(flat.lookup(net::Ipv6Addr::from_words(key[0], key[1]), &scalar_probes), kNoRoute);
  EXPECT_EQ(probes, static_cast<u64>(scalar_probes));
}

}  // namespace
}  // namespace ps::route
