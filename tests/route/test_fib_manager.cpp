// FIB manager: announce/withdraw semantics, double-buffered snapshots,
// generation tracking, and concurrent reader safety.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "route/fib_manager.hpp"

namespace ps::route {
namespace {

Ipv4Prefix p(u8 a, u8 b, u8 len, NextHop nh) {
  return {net::Ipv4Addr(a, b, 0, 0), len, nh};
}

TEST(FibManager, StartsEmpty) {
  Ipv4Fib fib;
  EXPECT_EQ(fib.route_count(), 0u);
  EXPECT_EQ(fib.generation(), 0u);
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(1, 2, 3, 4)), kNoRoute);
}

TEST(FibManager, AnnouncementsApplyOnlyAtCommit) {
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  // Before commit: the active table is untouched.
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(10, 1, 1, 1)), kNoRoute);

  EXPECT_EQ(fib.commit(), 1u);
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(10, 1, 1, 1)), 1);
}

TEST(FibManager, WithdrawRemovesRoute) {
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  fib.announce(p(20, 0, 8, 2));
  fib.commit();

  EXPECT_TRUE(fib.withdraw(p(10, 0, 8, 1)));
  EXPECT_FALSE(fib.withdraw(p(30, 0, 8, 9)));  // never present
  fib.commit();

  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(10, 1, 1, 1)), kNoRoute);
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(20, 1, 1, 1)), 2);
}

TEST(FibManager, ReAnnounceReplacesNextHop) {
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  fib.commit();
  fib.announce(p(10, 0, 8, 7));  // same prefix, new next hop
  fib.commit();
  EXPECT_EQ(fib.route_count(), 1u);
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(10, 1, 1, 1)), 7);
}

TEST(FibManager, CommitWithoutChangesIsANoop) {
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  EXPECT_EQ(fib.commit(), 1u);
  EXPECT_EQ(fib.commit(), 1u);  // not dirty: generation unchanged
  EXPECT_EQ(fib.generation(), 1u);
}

TEST(FibManager, OldSnapshotSurvivesCommit) {
  // Double buffering: a data-path thread holding the old snapshot keeps a
  // consistent view while the control plane publishes a new one.
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  fib.commit();

  const auto old_snapshot = fib.snapshot();
  fib.withdraw(p(10, 0, 8, 1));
  fib.announce(p(20, 0, 8, 2));
  fib.commit();

  EXPECT_EQ(old_snapshot->lookup(net::Ipv4Addr(10, 1, 1, 1)), 1);  // old view intact
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv4Addr(10, 1, 1, 1)), kNoRoute);
}

TEST(FibManager, Ipv6VariantWorks) {
  Ipv6Fib fib;
  fib.announce({net::Ipv6Addr::from_words(0x2001'0000'0000'0000ULL, 0), 16, 3});
  fib.commit();
  EXPECT_EQ(fib.snapshot()->lookup(net::Ipv6Addr::from_words(0x2001'0000'0000'0001ULL, 0)), 3);
}

TEST(FibManager, ConcurrentReadersDuringCommits) {
  // Readers continuously look up while the control plane flips tables;
  // every observed result must be one of the two legal next hops.
  Ipv4Fib fib;
  fib.announce(p(10, 0, 8, 1));
  fib.commit();

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snapshot = fib.snapshot();
      const auto nh = snapshot->lookup(net::Ipv4Addr(10, 1, 1, 1));
      if (nh != 1 && nh != 7) bad.fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (int round = 0; round < 50; ++round) {
    fib.announce(p(10, 0, 8, round % 2 == 0 ? 7 : 1));
    fib.commit();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(fib.generation(), 51u);
}

}  // namespace
}  // namespace ps::route
