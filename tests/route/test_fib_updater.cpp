// FibUpdater: the supervised commit pump. Retry/backoff after rolled-back
// commits, stall-wedge detection through the Supervisor with kick-based
// recovery, and drain semantics under fault windows.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fault/fault_injector.hpp"
#include "route/fib_updater.hpp"
#include "supervise/supervisor.hpp"

namespace ps::route {
namespace {

using namespace std::chrono_literals;

net::Ipv4Addr ip(u32 v) { return net::Ipv4Addr{v}; }
Ipv4Prefix pfx(u32 addr, u8 len, NextHop nh) { return Ipv4Prefix{ip(addr), len, nh}; }

TEST(FibUpdater, PumpsQueuedUpdatesToPublication) {
  Ipv4Fib fib;
  FibUpdater updater(fib);
  updater.start();

  for (u32 i = 0; i < 32; ++i) {
    fib.announce(pfx(0x0A000000 + (i << 16), 16, static_cast<NextHop>(1 + i % 7)));
  }
  updater.drain();
  EXPECT_EQ(fib.pending_updates(), 0u);
  EXPECT_GE(updater.commits(), 1u);
  EXPECT_EQ(fib.route_count(), 32u);
  EXPECT_EQ(fib.read()->lookup(ip(0x0A050001)), NextHop{6});
  updater.stop();
}

TEST(FibUpdater, RetriesRolledBackBatchesWithBackoff) {
  Ipv4Fib fib;
  fault::FaultInjector chaos(7);
  // Every commit attempt rolls back for the first 3 tries, then succeeds.
  chaos.add_rule({std::string(fault::Point::kFibUpdateAllocFail), 0, 3, 1.0});

  FibUpdater updater(fib, {}, &chaos);
  updater.start();
  fib.announce(pfx(0x0A000000, 8, 1));
  updater.drain();
  updater.stop();

  EXPECT_GE(updater.rollbacks(), 3u);
  EXPECT_GE(updater.commits(), 1u);
  EXPECT_EQ(fib.generation(), 1u);
  EXPECT_EQ(fib.read()->lookup(ip(0x0A000001)), NextHop{1});
}

TEST(FibUpdater, SupervisorDetectsStallAndKickRestartsChurn) {
  Ipv4Fib fib;
  fault::FaultInjector chaos(9);
  // Wedge once, on the second loop iteration.
  chaos.add_rule({std::string(fault::Point::kFibUpdateStall), 1, 1, 1.0});

  FibUpdater updater(fib, {}, &chaos);
  supervise::Supervisor supervisor({.check_interval = 1ms, .stall_window = 5ms});
  const int tid = updater.attach_supervisor(supervisor);
  updater.start();
  supervisor.start();

  fib.announce(pfx(0x0A000000, 8, 1));
  // The updater wedges; only the supervisor's stall->kick recovery can
  // resume it. Drain completing proves the whole loop closed.
  updater.drain();
  EXPECT_EQ(fib.read()->lookup(ip(0x0A000001)), NextHop{1});

  // Churn keeps flowing after recovery.
  fib.announce(pfx(0x0B000000, 8, 2));
  updater.drain();
  EXPECT_EQ(fib.read()->lookup(ip(0x0B000001)), NextHop{2});

  supervisor.stop();
  // Observe the recovery (beats resumed after the kick) before asserting
  // on health. Under sanitizer slowdown a synchronous pass can catch the
  // idle pump with a beat older than the stall window — a false stall the
  // kick handler absorbs — so poll until a pass lands near a fresh beat.
  bool live = false;
  for (int i = 0; i < 5000 && !live; ++i) {
    supervisor.check_now();
    live = supervisor.health(tid).state == supervise::ThreadState::kLive;
    if (!live) std::this_thread::sleep_for(1ms);
  }
  updater.stop();

  EXPECT_GE(updater.stall_recoveries(), 1u);
  EXPECT_GE(supervisor.stalls_detected(), 1u);
  EXPECT_TRUE(live);
}

TEST(FibUpdater, StopWhileWedgedDoesNotHang) {
  Ipv4Fib fib;
  fault::FaultInjector chaos(11);
  chaos.add_rule({std::string(fault::Point::kFibUpdateStall), 0, 1, 1.0});
  FibUpdater updater(fib, {}, &chaos);
  updater.start();
  std::this_thread::sleep_for(2ms);  // let it hit the wedge
  updater.stop();                    // must interrupt the wedge wait
  EXPECT_EQ(updater.stall_recoveries(), 0u);
}

}  // namespace
}  // namespace ps::route
