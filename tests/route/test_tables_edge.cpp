// Edge cases of the lookup structures: prefix boundaries around the
// DIR-24-8 split, extreme IPv6 prefix lengths, and adversarial overlap.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "route/ipv4_table.hpp"
#include "route/ipv6_table.hpp"

namespace ps::route {
namespace {

TEST(Ipv4Edge, Slash24BoundaryIsExact) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {
      {net::Ipv4Addr(10, 0, 0, 0), 24, 1},
      {net::Ipv4Addr(10, 0, 1, 0), 24, 2},
  };
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 255)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 1, 0)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 2, 0)), kNoRoute);
}

TEST(Ipv4Edge, Slash25SplitsItsParent24) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {
      {net::Ipv4Addr(10, 0, 0, 0), 24, 1},
      {net::Ipv4Addr(10, 0, 0, 0), 25, 2},  // lower half more specific
  };
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 0)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 127)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 128)), 1);  // falls back to /24
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 255)), 1);
}

TEST(Ipv4Edge, LongPrefixWithoutCovering24) {
  // A /30 with no shorter route: the rest of its /24 must stay NoRoute.
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {{net::Ipv4Addr(77, 1, 2, 8), 30, 4}};
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(77, 1, 2, 8)), 4);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(77, 1, 2, 11)), 4);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(77, 1, 2, 12)), kNoRoute);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(77, 1, 2, 7)), kNoRoute);
}

TEST(Ipv4Edge, ManyLongPrefixesInOneSlash24ShareAChunk) {
  Ipv4Table table;
  std::vector<Ipv4Prefix> prefixes;
  for (u32 host = 0; host < 256; host += 4) {
    prefixes.push_back({net::Ipv4Addr(9, 9, 9, static_cast<u8>(host)), 30,
                        static_cast<NextHop>(host / 4)});
  }
  table.build(prefixes);
  EXPECT_EQ(table.overflow_chunks(), 1u);  // all share one chunk
  for (u32 host = 0; host < 256; ++host) {
    EXPECT_EQ(table.lookup(net::Ipv4Addr(9, 9, 9, static_cast<u8>(host))),
              static_cast<NextHop>(host / 4));
  }
}

TEST(Ipv4Edge, AddressSpaceExtremes) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {
      {net::Ipv4Addr(0, 0, 0, 0), 8, 1},
      {net::Ipv4Addr(255, 255, 255, 255), 32, 2},
  };
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(0, 0, 0, 0)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(0, 255, 255, 255)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(255, 255, 255, 255)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(255, 255, 255, 254)), kNoRoute);
}

TEST(Ipv6Edge, LengthOneAndLength128) {
  Ipv6Table table;
  const Ipv6Prefix prefixes[] = {
      {net::Ipv6Addr::from_words(u64{1} << 63, 0), 1, 1},  // 8000::/1
      {net::Ipv6Addr::from_words(0xffff'ffff'ffff'ffffULL, 0xffff'ffff'ffff'ffffULL), 128, 2},
  };
  table.build(prefixes);

  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(u64{1} << 63, 12345)), 1);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x7fff'0000'0000'0000ULL, 0)), kNoRoute);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(~u64{0}, ~u64{0})), 2);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(~u64{0}, ~u64{0} - 1)), 1);  // /1 still covers
}

TEST(Ipv6Edge, NestedPrefixChain) {
  // A full nesting chain /16 ⊃ /32 ⊃ /48 ⊃ /64: the longest match must win
  // at every depth, which exercises markers at many binary-search levels.
  std::vector<Ipv6Prefix> prefixes;
  const u64 base = 0x2001'0db8'aaaa'bbbbULL;
  for (int len = 16; len <= 64; len += 16) {
    prefixes.push_back({net::Ipv6Addr::from_words(mask128(base, 0, len).hi, 0),
                        static_cast<u8>(len), static_cast<NextHop>(len / 16)});
  }
  Ipv6Table table;
  table.build(prefixes);

  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(base, 7)), 4);           // /64
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0db8'aaaa'ffffULL, 0)), 3);  // /48
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'0db8'ffff'0000ULL, 0)), 2);  // /32
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x2001'ffff'0000'0000ULL, 0)), 1);  // /16
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0x3000'0000'0000'0000ULL, 0)), kNoRoute);
}

TEST(Ipv6Edge, SiblingPrefixesDoNotBleed) {
  // Two /33s differing only in bit 32: markers at /32 are shared; the
  // search must still separate them.
  Ipv6Table table;
  const u64 left = 0xaaaa'bbbb'0000'0000ULL;
  const u64 right = 0xaaaa'bbbb'8000'0000ULL;
  const Ipv6Prefix prefixes[] = {
      {net::Ipv6Addr::from_words(left, 0), 33, 1},
      {net::Ipv6Addr::from_words(right, 0), 33, 2},
  };
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(left | 0x1234, 0)), 1);
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(right | 0x1234, 0)), 2);
  // Same /32 bits but neither /33 matches... impossible: bit 32 is 0 or 1,
  // so anything sharing the /32 matches one of them. Outside the /32:
  EXPECT_EQ(table.lookup(net::Ipv6Addr::from_words(0xaaaa'cccc'0000'0000ULL, 0)), kNoRoute);
}

TEST(Ipv6Edge, FlattenedEmptyAndTinyTables) {
  Ipv6Table empty;
  empty.build({});
  const auto flat = empty.flatten();
  EXPECT_EQ(flat.lookup(net::Ipv6Addr::from_words(123, 456)), kNoRoute);

  Ipv6Table one;
  const Ipv6Prefix single[] = {{net::Ipv6Addr::from_words(0x5555'0000'0000'0000ULL, 0), 16, 7}};
  one.build(single);
  const auto flat_one = one.flatten();
  EXPECT_EQ(flat_one.lookup(net::Ipv6Addr::from_words(0x5555'1234'0000'0000ULL, 0)), 7);
  EXPECT_EQ(flat_one.lookup(net::Ipv6Addr::from_words(0x5556'0000'0000'0000ULL, 0)), kNoRoute);
}

TEST(Ipv4Edge, FullTableRebuildStressRandomized) {
  // Repeated rebuilds with random tables must stay consistent with a
  // reference — guards the chunk-allocation reuse logic.
  Rng rng(404);
  Ipv4Table table;
  for (int round = 0; round < 5; ++round) {
    std::vector<Ipv4Prefix> prefixes;
    for (int i = 0; i < 500; ++i) {
      const u8 len = static_cast<u8>(20 + rng.next_below(13));  // 20..32
      const u32 addr = rng.next_u32();
      const u32 mask = len >= 32 ? ~u32{0} : ~((u32{1} << (32 - len)) - 1);
      prefixes.push_back({net::Ipv4Addr(addr & mask), len,
                          static_cast<NextHop>(rng.next_below(16))});
    }
    table.build(prefixes);
    Ipv4ReferenceLpm reference;
    reference.build(prefixes);
    for (int i = 0; i < 500; ++i) {
      const net::Ipv4Addr probe(rng.next_u32());
      EXPECT_EQ(table.lookup(probe), reference.lookup(probe)) << probe.to_string();
    }
  }
}

}  // namespace
}  // namespace ps::route
