// FibManager generation semantics: lock-free reads across publishes,
// transactional commits under the control.fib_update.* fault points
// (published generation untouched, batch re-queued, retry converges),
// journal replay onto recycled buffers, and churn telemetry.
#include <gtest/gtest.h>

#include <vector>

#include "fault/fault_injector.hpp"
#include "route/fib_manager.hpp"
#include "telemetry/metrics.hpp"

namespace ps::route {
namespace {

net::Ipv4Addr ip(u32 v) { return net::Ipv4Addr{v}; }

Ipv4Prefix pfx(u32 addr, u8 len, NextHop nh) { return Ipv4Prefix{ip(addr), len, nh}; }

TEST(FibGenerations, ReaderPinnedAcrossPublishKeepsItsGeneration) {
  Ipv4Fib fib;
  fib.announce(pfx(0x0A000000, 8, 1));
  fib.commit();

  auto old_reader = fib.read();
  EXPECT_EQ(old_reader->lookup(ip(0x0A010203)), NextHop{1});

  // Two more generations while the reader stays pinned.
  fib.announce(pfx(0x0A010000, 16, 2));
  fib.commit();
  fib.announce(pfx(0x0A010200, 24, 3));
  fib.commit();
  EXPECT_GE(fib.retired_pending(), 1u);

  // The pinned reader still sees its generation, bit for bit.
  EXPECT_EQ(old_reader->lookup(ip(0x0A010203)), NextHop{1});
  // A fresh reader sees the newest.
  EXPECT_EQ(fib.read()->lookup(ip(0x0A010203)), NextHop{3});
}

TEST(FibGenerations, RetiredGenerationsDrainAfterReadersUnpin) {
  Ipv4Fib fib;
  fib.announce(pfx(0x0A000000, 8, 1));
  fib.commit();
  {
    auto reader = fib.read();
    fib.announce(pfx(0x0B000000, 8, 2));
    fib.commit();
    EXPECT_GE(fib.retired_pending(), 1u);
  }
  // Reader gone: the next commit's reclaim pass frees everything retired.
  fib.announce(pfx(0x0C000000, 8, 3));
  fib.commit();
  EXPECT_EQ(fib.retired_pending(), 0u);
}

TEST(FibGenerations, AllocFailRollsBackBeforeAnyMutation) {
  Ipv4Fib fib;
  fault::FaultInjector chaos(42);
  chaos.add_rule({std::string(fault::Point::kFibUpdateAllocFail), 0, 1, 1.0});

  fib.announce(pfx(0x0A000000, 8, 1));
  const auto failed = fib.try_commit(&chaos);
  EXPECT_EQ(failed.status, CommitStatus::kRolledBack);
  EXPECT_EQ(fib.generation(), 0u);
  EXPECT_EQ(fib.read()->lookup(ip(0x0A000001)), kNoRoute);
  EXPECT_EQ(fib.pending_updates(), 1u);

  // Fault window over: the re-queued batch commits cleanly.
  const auto retried = fib.try_commit(&chaos);
  EXPECT_EQ(retried.status, CommitStatus::kCommitted);
  EXPECT_EQ(retried.ops, 1u);
  EXPECT_EQ(fib.generation(), 1u);
  EXPECT_EQ(fib.read()->lookup(ip(0x0A000001)), NextHop{1});
}

TEST(FibGenerations, CrashMidBatchLeavesPublishedGenerationUntouched) {
  Ipv4Fib fib;
  fib.announce(pfx(0x0A000000, 8, 1));
  fib.announce(pfx(0x0B000000, 8, 2));
  fib.commit();
  const u64 committed_gen = fib.generation();

  // Crash on the 2nd op of the 3-op batch: partial apply, then rollback.
  fault::FaultInjector chaos(43);
  chaos.add_rule({std::string(fault::Point::kFibUpdateCrashMidBatch), 1, 1, 1.0});
  fib.announce(pfx(0x0A0A0000, 16, 7));
  fib.announce(pfx(0x0B0B0000, 16, 8));
  ASSERT_TRUE(fib.withdraw(pfx(0x0B000000, 8, 0)));

  const auto failed = fib.try_commit(&chaos);
  EXPECT_EQ(failed.status, CommitStatus::kRolledBack);
  EXPECT_EQ(fib.generation(), committed_gen);
  EXPECT_EQ(fib.pending_updates(), 3u);
  // Published lookups: exactly the pre-batch world.
  EXPECT_EQ(fib.read()->lookup(ip(0x0A0A0001)), NextHop{1});
  EXPECT_EQ(fib.read()->lookup(ip(0x0B000001)), NextHop{2});

  // Retry with the window passed: all three ops land atomically.
  const auto retried = fib.try_commit(&chaos);
  EXPECT_EQ(retried.status, CommitStatus::kCommitted);
  EXPECT_EQ(retried.ops, 3u);
  EXPECT_EQ(fib.read()->lookup(ip(0x0A0A0001)), NextHop{7});
  EXPECT_EQ(fib.read()->lookup(ip(0x0B0B0001)), NextHop{8});
  EXPECT_EQ(fib.read()->lookup(ip(0x0B000001)), kNoRoute);
  EXPECT_EQ(fib.route_count(), 3u);
}

TEST(FibGenerations, JournalReplayOntoRecycledBuffersMatchesRebuild) {
  // Many commits so buffers cycle publish -> retire -> pool -> replay.
  // After each commit, the published table must agree with a from-scratch
  // build of the same RIB (the differential oracle).
  Ipv4Fib fib;
  std::vector<Ipv4Prefix> rib;

  auto check = [&] {
    Ipv4Table oracle;
    oracle.build(rib);
    auto reader = fib.read();
    for (u32 a = 0x0A000000; a < 0x0A000000 + 0x40000; a += 0x1777) {
      ASSERT_EQ(reader->lookup(ip(a)), oracle.lookup(ip(a))) << "addr=" << a;
    }
  };

  for (u32 i = 0; i < 40; ++i) {
    const u8 len = static_cast<u8>(10 + (i * 7) % 23);  // 10..32
    const u32 addr = 0x0A000000 + i * 0x1663;
    const Ipv4Prefix p = pfx(addr, len, static_cast<NextHop>(1 + i % 9));
    fib.announce(p);
    rib.push_back(Ipv4Prefix{ip(p.network()), len, p.next_hop});
    if (i % 3 == 2) {
      // Withdraw the prefix announced two rounds ago.
      const Ipv4Prefix victim = rib[rib.size() - 3];
      ASSERT_TRUE(fib.withdraw(victim));
      rib.erase(rib.end() - 3);
    }
    const auto result = fib.try_commit(nullptr);
    ASSERT_EQ(result.status, CommitStatus::kCommitted);
    check();
  }
  EXPECT_EQ(fib.generation(), 40u);
}

TEST(FibGenerations, ChurnTelemetryCounts) {
  telemetry::MetricsRegistry registry;
  Ipv4Fib fib;
  fib.register_metrics(registry);

  fault::FaultInjector chaos(44);
  chaos.add_rule({std::string(fault::Point::kFibUpdateAllocFail), 0, 1, 1.0});

  fib.announce(pfx(0x0A000000, 8, 1));
  fib.announce(pfx(0x0B000000, 8, 2));
  EXPECT_EQ(fib.try_commit(&chaos).status, CommitStatus::kRolledBack);
  EXPECT_EQ(fib.try_commit(&chaos).status, CommitStatus::kCommitted);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value("fib.updates_applied"), 2u);
  EXPECT_EQ(snap.value("fib.updates_rolled_back"), 2u);
  EXPECT_EQ(snap.value("fib.generation"), 1u);
  EXPECT_EQ(snap.value("fib.retired_pending"), 0u);
  bool found_hist = false;
  for (const auto& [name, h] : snap.histograms) {
    if (name == "fib.update_apply_ns") {
      found_hist = true;
      EXPECT_EQ(h.count, 1u);
    }
  }
  EXPECT_TRUE(found_hist);
}

TEST(FibGenerations, Ipv6FullRebuildPathHonorsFaultPoints) {
  Ipv6Fib fib;
  static_assert(!Ipv6Fib::kIncremental);
  fault::FaultInjector chaos(45);
  chaos.add_rule({std::string(fault::Point::kFibUpdateCrashMidBatch), 0, 1, 1.0});

  Ipv6Prefix p;
  p.addr = net::Ipv6Addr::from_words(0x2001'0db8'0000'0000ULL, 0);
  p.length = 32;
  p.next_hop = 4;
  fib.announce(p);
  EXPECT_EQ(fib.try_commit(&chaos).status, CommitStatus::kRolledBack);
  EXPECT_EQ(fib.generation(), 0u);
  EXPECT_EQ(fib.try_commit(&chaos).status, CommitStatus::kCommitted);
  EXPECT_EQ(fib.generation(), 1u);
  EXPECT_EQ(fib.read()->lookup(p.addr), NextHop{4});
}

}  // namespace
}  // namespace ps::route
