// DIR-24-8 IPv4 table: exact semantics against a reference LPM, plus the
// structural properties the paper relies on (1-2 memory accesses).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "route/ipv4_table.hpp"
#include "route/rib_gen.hpp"

namespace ps::route {
namespace {

Ipv4Prefix p(const char* addr, u8 len, NextHop nh) {
  return {net::Ipv4Addr::parse(addr).value(), len, nh};
}

TEST(Ipv4Table, EmptyTableHasNoRoutes) {
  Ipv4Table table;
  table.build({});
  EXPECT_EQ(table.lookup(net::Ipv4Addr(1, 2, 3, 4)), kNoRoute);
}

TEST(Ipv4Table, ExactPrefixMatch) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {p("10.0.0.0", 8, 1), p("10.1.0.0", 16, 2)};
  table.build(prefixes);

  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 1)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 1, 2, 3)), 2);  // longer wins
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 200, 0, 1)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(11, 0, 0, 1)), kNoRoute);
}

TEST(Ipv4Table, LongestPrefixWinsRegardlessOfInsertOrder) {
  const Ipv4Prefix forward[] = {p("10.0.0.0", 8, 1), p("10.1.0.0", 16, 2), p("10.1.1.0", 24, 3)};
  const Ipv4Prefix reversed[] = {p("10.1.1.0", 24, 3), p("10.1.0.0", 16, 2), p("10.0.0.0", 8, 1)};

  Ipv4Table a, b;
  a.build(forward);
  b.build(reversed);
  for (const auto addr : {net::Ipv4Addr(10, 1, 1, 7), net::Ipv4Addr(10, 1, 9, 9),
                          net::Ipv4Addr(10, 9, 9, 9)}) {
    EXPECT_EQ(a.lookup(addr), b.lookup(addr));
  }
  EXPECT_EQ(a.lookup(net::Ipv4Addr(10, 1, 1, 7)), 3);
}

TEST(Ipv4Table, PrefixesLongerThan24UseOverflowChunks) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {p("10.0.0.0", 24, 1), p("10.0.0.128", 25, 2),
                                 p("10.0.0.192", 26, 3), p("10.0.0.255", 32, 4)};
  table.build(prefixes);

  EXPECT_GE(table.overflow_chunks(), 1u);
  int probes = 0;
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 1), &probes), 1);
  EXPECT_EQ(probes, 2);  // the /24 entry was pushed into the chunk
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 129)), 2);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 200)), 3);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 0, 0, 255)), 4);
}

TEST(Ipv4Table, ShortPrefixLookupIsOneAccess) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {p("10.0.0.0", 8, 1)};
  table.build(prefixes);
  int probes = 0;
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 3, 4, 5), &probes), 1);
  EXPECT_EQ(probes, 1);
}

TEST(Ipv4Table, HostRoute) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {p("192.168.0.1", 32, 7)};
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(192, 168, 0, 1)), 7);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(192, 168, 0, 2)), kNoRoute);
}

TEST(Ipv4Table, DefaultRouteLengthZero) {
  Ipv4Table table;
  const Ipv4Prefix prefixes[] = {{net::Ipv4Addr(0), 0, 5}, p("10.0.0.0", 8, 1)};
  table.build(prefixes);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 1, 1, 1)), 1);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(99, 1, 1, 1)), 5);
}

TEST(Ipv4Table, RebuildReplacesOldContents) {
  Ipv4Table table;
  const Ipv4Prefix first[] = {p("10.0.0.0", 8, 1)};
  table.build(first);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 1, 1, 1)), 1);

  const Ipv4Prefix second[] = {p("20.0.0.0", 8, 2)};
  table.build(second);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(10, 1, 1, 1)), kNoRoute);
  EXPECT_EQ(table.lookup(net::Ipv4Addr(20, 1, 1, 1)), 2);
}

TEST(Ipv4Table, SharedLookupRoutineMatchesMember) {
  const auto rib = generate_ipv4_rib({.prefix_count = 5000, .num_next_hops = 8, .seed = 3});
  Ipv4Table table;
  table.build(rib);

  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const net::Ipv4Addr addr(rng.next_u32());
    EXPECT_EQ(table.lookup(addr),
              Ipv4Table::lookup_in_arrays(table.tbl24().data(), table.tbl_long().data(),
                                          addr.value));
  }
}

// Property test: DIR-24-8 must agree with the linear reference on random
// tables and random probes, across several seeds.
class Ipv4TablePropertyTest : public ::testing::TestWithParam<u64> {};

TEST_P(Ipv4TablePropertyTest, MatchesReferenceLpm) {
  const auto rib =
      generate_ipv4_rib({.prefix_count = 2000, .num_next_hops = 64, .seed = GetParam()});
  Ipv4Table table;
  table.build(rib);
  Ipv4ReferenceLpm reference;
  reference.build(rib);

  Rng rng(GetParam() * 13 + 1);
  for (int i = 0; i < 2000; ++i) {
    // Half the probes land inside a known prefix so matches are exercised.
    net::Ipv4Addr addr(rng.next_u32());
    if (i % 2 == 0) {
      const auto& prefix = rib[rng.next_below(rib.size())];
      const u32 host_bits = prefix.length >= 32 ? 0 : rng.next_u32() >> prefix.length;
      addr = net::Ipv4Addr(prefix.network() | host_bits);
    }
    EXPECT_EQ(table.lookup(addr), reference.lookup(addr)) << addr.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Ipv4TablePropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Ipv4Table, ProbeCountDistributionOnRealisticRib) {
  // With a 2009-like RIB (~3% of prefixes longer than /24), the average
  // lookup should stay very close to one memory access (section 6.2.1).
  const auto rib = generate_ipv4_rib({.prefix_count = 50'000, .num_next_hops = 8, .seed = 9});
  Ipv4Table table;
  table.build(rib);

  Rng rng(10);
  u64 total_probes = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    int probes = 0;
    table.lookup(net::Ipv4Addr(rng.next_u32()), &probes);
    total_probes += static_cast<u64>(probes);
  }
  const double avg = static_cast<double>(total_probes) / n;
  EXPECT_GE(avg, 1.0);
  EXPECT_LT(avg, 1.2);
}

}  // namespace
}  // namespace ps::route
