// Huge packet buffer and the skb-path baseline model.
#include <gtest/gtest.h>

#include <cstring>

#include "mem/huge_buffer.hpp"
#include "mem/skb_model.hpp"

namespace ps::mem {
namespace {

TEST(HugePacketBuffer, CellGeometry) {
  HugePacketBuffer buf(512, 0);
  EXPECT_EQ(buf.cell_count(), 512u);
  EXPECT_EQ(buf.cell_data(0).size(), kDataCellSize);
  EXPECT_EQ(buf.numa_node(), 0);
  // One mapping covers everything — the per-packet DMA-mapping fix (§4.2).
  EXPECT_EQ(buf.mapped_bytes(), 512u * (kDataCellSize + sizeof(PacketMetadata)));
}

TEST(HugePacketBuffer, CellsAreIndependent) {
  HugePacketBuffer buf(4, 1);
  std::memset(buf.cell_data(1).data(), 0xaa, kDataCellSize);
  std::memset(buf.cell_data(2).data(), 0xbb, kDataCellSize);
  EXPECT_EQ(buf.cell_data(1)[kDataCellSize - 1], 0xaa);
  EXPECT_EQ(buf.cell_data(2)[0], 0xbb);
  EXPECT_EQ(buf.cell_data(0)[0], 0x00);
}

TEST(HugePacketBuffer, MetadataIsCompact) {
  // The whole point of section 4.2: 8 bytes instead of 208.
  EXPECT_EQ(sizeof(PacketMetadata), 8u);
  EXPECT_EQ(kSkbMetadataSize, 208u);

  HugePacketBuffer buf(2, 0);
  buf.metadata(0).length = 64;
  buf.metadata(0).rss_hash = 0x12345678;
  EXPECT_EQ(buf.metadata(0).length, 64);
  EXPECT_EQ(buf.metadata(1).length, 0);
}

TEST(HugePacketBuffer, CellFitsMaxFrame) {
  // 2048 B cell fits the 1518 B maximum frame and keeps 1 KiB alignment.
  EXPECT_GE(kDataCellSize, 1518u);
  EXPECT_EQ(kDataCellSize % 1024, 0u);
}

TEST(SkbModel, BreakdownMatchesTable3Shares) {
  const auto b = skb_rx_breakdown();
  const double total = b.total();
  EXPECT_NEAR(total, perf::kSkbRxTotalCycles, 1e-6);
  EXPECT_NEAR(b.skb_init / total, 0.049, 1e-9);
  EXPECT_NEAR(b.alloc_free / total, 0.080, 1e-9);
  EXPECT_NEAR(b.memory_subsystem / total, 0.502, 1e-9);
  EXPECT_NEAR(b.nic_driver / total, 0.133, 1e-9);
  EXPECT_NEAR(b.others / total, 0.098, 1e-9);
  EXPECT_NEAR(b.compulsory_misses / total, 0.138, 1e-9);
  // Shares must cover 100% of the measured cycles (Table 3's last row).
  EXPECT_NEAR((b.skb_init + b.alloc_free + b.memory_subsystem + b.nic_driver + b.others +
               b.compulsory_misses) / total, 1.0, 1e-9);
}

TEST(SkbModel, HugeBufferEliminatesAllocatorWork) {
  const auto skb = skb_rx_breakdown();
  const auto huge = huge_buffer_rx_breakdown();
  EXPECT_EQ(huge.alloc_free, 0.0);
  EXPECT_EQ(huge.memory_subsystem, 0.0);
  EXPECT_LT(huge.skb_init, skb.skb_init / 10);
  EXPECT_LT(huge.compulsory_misses, skb.compulsory_misses / 10);
  // Section 4 claims an order-of-magnitude cheaper RX path overall.
  EXPECT_LT(huge.total() * 10, skb.total());
}

TEST(SkbAllocator, RecyclesThroughFreelist) {
  SkbAllocator alloc;
  auto skb = alloc.allocate();
  EXPECT_EQ(skb.metadata.size(), kSkbMetadataSize);
  skb.metadata[0] = 0xff;
  alloc.release(std::move(skb));
  EXPECT_EQ(alloc.freelist_size(), 1u);

  auto recycled = alloc.allocate();
  EXPECT_EQ(alloc.freelist_size(), 0u);
  // Per-packet re-initialization: the recycled metadata must be zeroed.
  EXPECT_EQ(recycled.metadata[0], 0x00);
  EXPECT_EQ(alloc.total_allocations(), 2u);
}

}  // namespace
}  // namespace ps::mem
