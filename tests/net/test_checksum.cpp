#include <gtest/gtest.h>

#include "net/checksum.hpp"
#include "net/packet.hpp"

namespace ps::net {
namespace {

TEST(Checksum, Rfc1071Example) {
  // Classic worked example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
  const u8 data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const u8 even[] = {0x12, 0x34, 0x56, 0x00};
  const u8 odd[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(checksum(even), checksum(odd));
}

TEST(Checksum, KnownIpv4Header) {
  // Wikipedia's canonical IPv4 header example; checksum field = 0xb861.
  u8 header[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  EXPECT_EQ(checksum(header), 0xb861);
}

TEST(Checksum, FillAndVerifyIpv4) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  EXPECT_TRUE(ipv4_checksum_ok(ip));
  ip.set_checksum(ip.checksum() ^ 1);
  EXPECT_FALSE(ipv4_checksum_ok(ip));
}

TEST(Checksum, IncrementalTtlUpdateMatchesRecompute) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));

  for (int hop = 0; hop < 60; ++hop) {
    ipv4_decrement_ttl(ip);
    EXPECT_TRUE(ipv4_checksum_ok(ip)) << "after hop " << hop;
  }
  EXPECT_EQ(ip.ttl, 4);
}

TEST(Checksum, IncrementalUpdateFormula) {
  // RFC 1624: updating a field must match recomputation from scratch.
  u8 data[] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
               0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  const u16 before = checksum(data);

  const u16 old_word = load_be16(data + 2);
  const u16 new_word = 0x0abc;
  store_be16(data + 2, new_word);
  const u16 recomputed = checksum(data);
  EXPECT_EQ(checksum_update16(before, old_word, new_word), recomputed);
}

TEST(Checksum, L4ChecksumVerifies) {
  FrameSpec spec;
  spec.frame_size = 100;
  auto frame = build_udp_ipv4(spec, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  auto& udp = *reinterpret_cast<UdpHeader*>(frame.data() + sizeof(EthernetHeader) +
                                            sizeof(Ipv4Header));
  std::span<u8> l4{frame.data() + sizeof(EthernetHeader) + sizeof(Ipv4Header),
                   frame.size() - sizeof(EthernetHeader) - sizeof(Ipv4Header)};

  udp.set_checksum(l4_checksum_ipv4(ip, l4));
  // With the checksum installed, recomputation folds to zero.
  EXPECT_EQ(l4_checksum_ipv4(ip, l4), 0x0000);
}

namespace {
std::span<u8> udp6_l4_span(FrameBuffer& frame) {
  auto& ip = *reinterpret_cast<Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  return {frame.data() + sizeof(EthernetHeader) + sizeof(Ipv6Header), ip.payload_length()};
}
}  // namespace

TEST(Checksum, Udp6BuilderInstallsVerifiableChecksum) {
  auto frame = build_udp_ipv6({}, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2001, 2));
  const auto& ip = *reinterpret_cast<const Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  const auto& udp = *reinterpret_cast<const UdpHeader*>(frame.data() + sizeof(EthernetHeader) +
                                                        sizeof(Ipv6Header));
  EXPECT_NE(udp.checksum(), 0u);  // mandatory for IPv6
  EXPECT_TRUE(udp6_checksum_ok(ip, udp6_l4_span(frame)));
}

TEST(Checksum, Udp6PayloadCorruptionDetected) {
  FrameSpec spec;
  spec.frame_size = 120;
  auto frame = build_udp_ipv6(spec, Ipv6Addr::from_words(0xfd00, 1),
                              Ipv6Addr::from_words(0xfd00, 2));
  const auto& ip = *reinterpret_cast<const Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  frame[frame.size() - 1] ^= 0x01;  // flip one payload bit
  EXPECT_FALSE(udp6_checksum_ok(ip, udp6_l4_span(frame)));
}

TEST(Checksum, Udp6PseudoHeaderCoversAddresses) {
  auto frame = build_udp_ipv6({}, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2001, 2));
  auto& ip = *reinterpret_cast<Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  ip.dst_bytes[15] ^= 0x01;  // address rewrite without checksum fixup
  EXPECT_FALSE(udp6_checksum_ok(ip, udp6_l4_span(frame)));
}

TEST(Checksum, Udp6ZeroChecksumIsRejected) {
  auto frame = build_udp_ipv6({}, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2001, 2));
  const auto& ip = *reinterpret_cast<const Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  auto& udp = *reinterpret_cast<UdpHeader*>(frame.data() + sizeof(EthernetHeader) +
                                            sizeof(Ipv6Header));
  udp.set_checksum(0);  // "no checksum" is illegal over IPv6 (RFC 8200 §8.1)
  EXPECT_FALSE(udp6_checksum_ok(ip, udp6_l4_span(frame)));
}

TEST(Checksum, Udp6ComputedZeroStoredAsAllOnes) {
  // Craft a datagram whose checksum computes to 0: fill, read the installed
  // value, then tweak one payload word by exactly that amount so the fresh
  // sum folds to zero. RFC 768 says transmit 0xffff in that case.
  FrameSpec spec;
  spec.frame_size = 80;
  auto frame = build_udp_ipv6(spec, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2001, 2));
  const auto& ip = *reinterpret_cast<const Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  auto l4 = udp6_l4_span(frame);
  auto& udp = *reinterpret_cast<UdpHeader*>(l4.data());

  // Moving the installed checksum value into a zero payload word keeps the
  // one's-complement sum at 0xffff, i.e. the fresh checksum computes 0.
  store_be16(l4.data() + sizeof(UdpHeader), udp.checksum());
  udp.set_checksum(0);
  ASSERT_EQ(l4_checksum_ipv6(ip, l4), 0u);

  udp6_fill_checksum(ip, l4);
  EXPECT_EQ(udp.checksum(), 0xffffu);
  EXPECT_TRUE(udp6_checksum_ok(ip, l4));
}

TEST(Checksum, PartialCombination) {
  const u8 data[] = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02};
  const u32 all = checksum_partial(data);
  const u32 split = checksum_partial(std::span<const u8>{data, 4});
  EXPECT_EQ(checksum_finish(all),
            checksum_finish(checksum_partial(std::span<const u8>{data + 4, 2}, split)));
}

}  // namespace
}  // namespace ps::net
