#include <gtest/gtest.h>

#include "net/addr.hpp"

namespace ps::net {
namespace {

TEST(MacAddr, Format) {
  const MacAddr mac{{0x02, 0x50, 0x53, 0x00, 0x01, 0x02}};
  EXPECT_EQ(mac.to_string(), "02:50:53:00:01:02");
}

TEST(MacAddr, PortDerivedAddressesAreDistinctAndUnicast) {
  for (u32 p = 0; p < 8; ++p) {
    const auto mac = MacAddr::for_port(p);
    EXPECT_FALSE(mac.is_multicast());
    for (u32 q = p + 1; q < 8; ++q) EXPECT_NE(mac, MacAddr::for_port(q));
  }
}

TEST(MacAddr, Broadcast) {
  EXPECT_TRUE(MacAddr::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddr::broadcast().is_multicast());
  EXPECT_FALSE(MacAddr::for_port(0).is_broadcast());
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 0xc0a801c8u);
  EXPECT_EQ(a->to_string(), "192.168.1.200");
}

TEST(Ipv4Addr, ParseInvalid) {
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("hello").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4x").has_value());
}

TEST(Ipv4Addr, OctetConstructorMatchesParse) {
  EXPECT_EQ(Ipv4Addr(10, 20, 30, 40), Ipv4Addr::parse("10.20.30.40").value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv6Addr, WordRoundTrip) {
  const auto a = Ipv6Addr::from_words(0x2001'0db8'0000'0000ULL, 0x0000'0000'0000'0001ULL);
  EXPECT_EQ(a.hi64(), 0x2001'0db8'0000'0000ULL);
  EXPECT_EQ(a.lo64(), 1u);
  EXPECT_EQ(a.to_string(), "2001:0db8:0000:0000:0000:0000:0000:0001");
}

TEST(Ipv6Addr, BytesAreBigEndian) {
  const auto a = Ipv6Addr::from_words(0x0102'0304'0506'0708ULL, 0);
  EXPECT_EQ(a.bytes[0], 0x01);
  EXPECT_EQ(a.bytes[7], 0x08);
}

TEST(Ipv6Addr, HashDistinguishesHiAndLo) {
  const std::hash<Ipv6Addr> h;
  EXPECT_NE(h(Ipv6Addr::from_words(1, 2)), h(Ipv6Addr::from_words(2, 1)));
}

}  // namespace
}  // namespace ps::net
