#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace ps::net {
namespace {

TEST(PacketBuilder, Ipv4FrameIsWellFormed) {
  FrameSpec spec;
  spec.frame_size = 64;
  spec.src_port = 1111;
  spec.dst_port = 2222;
  auto frame = build_udp_ipv4(spec, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(20, 0, 0, 2));
  ASSERT_EQ(frame.size(), 64u);

  PacketView view;
  ASSERT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view), ParseStatus::kOk);
  EXPECT_EQ(view.ether_type, EtherType::kIpv4);
  EXPECT_EQ(view.ip_proto, IpProto::kUdp);
  EXPECT_TRUE(view.has_l4);
  EXPECT_EQ(view.ipv4().src(), Ipv4Addr(10, 0, 0, 1));
  EXPECT_EQ(view.ipv4().dst(), Ipv4Addr(20, 0, 0, 2));
  EXPECT_EQ(view.udp().src_port(), 1111);
  EXPECT_EQ(view.udp().dst_port(), 2222);
  EXPECT_EQ(view.ipv4().total_length(), 50);  // 64 - 14 L2 bytes
}

TEST(PacketBuilder, Ipv6FrameIsWellFormed) {
  FrameSpec spec;
  spec.frame_size = 80;
  auto frame = build_udp_ipv6(spec, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2002, 2));
  ASSERT_EQ(frame.size(), 80u);

  PacketView view;
  ASSERT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view), ParseStatus::kOk);
  EXPECT_EQ(view.ether_type, EtherType::kIpv6);
  EXPECT_EQ(view.ipv6().src().hi64(), 0x2001u);
  EXPECT_EQ(view.ipv6().dst().lo64(), 2u);
  EXPECT_EQ(view.ipv6().payload_length(), 80 - 14 - 40);
}

TEST(PacketBuilder, EnforcesMinimumSizes) {
  FrameSpec spec;
  spec.frame_size = 10;  // below any sane minimum
  EXPECT_EQ(build_udp_ipv4(spec, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2)).size(),
            kMinUdpIpv4Frame);
  EXPECT_EQ(build_udp_ipv6(spec, Ipv6Addr{}, Ipv6Addr{}).size(), kMinUdpIpv6Frame);
}

TEST(PacketParse, TruncatedFrames) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), 10, view), ParseStatus::kTruncated);
  EXPECT_EQ(parse_packet(frame.data(), 20, view), ParseStatus::kTruncated);
  // One byte short of the IP total length.
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()) - 15, view),
            ParseStatus::kTruncated);
}

TEST(PacketParse, BadChecksumDetected) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  frame[sizeof(EthernetHeader) + 10] ^= 0xff;  // corrupt checksum byte
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kBadChecksum);
}

TEST(PacketParse, Udp6BadChecksumDetected) {
  auto frame = build_udp_ipv6({}, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2002, 2));
  PacketView view;
  ASSERT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kOk);
  frame[frame.size() - 1] ^= 0x01;  // corrupt one payload bit
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kBadChecksum);
}

TEST(PacketParse, Udp6ZeroChecksumRejected) {
  auto frame = build_udp_ipv6({}, Ipv6Addr::from_words(0x2001, 1),
                              Ipv6Addr::from_words(0x2002, 2));
  auto& udp = *reinterpret_cast<UdpHeader*>(frame.data() + sizeof(EthernetHeader) +
                                            sizeof(Ipv6Header));
  udp.set_checksum(0);  // mandatory for IPv6, unlike IPv4
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kBadChecksum);
}

TEST(PacketParse, BadVersionDetected) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_version_ihl(6, 5);
  ipv4_fill_checksum(ip);
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kBadVersion);
}

TEST(PacketParse, BadHeaderLengthDetected) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_version_ihl(4, 2);  // IHL below the minimum of 5
  ipv4_fill_checksum(ip);
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kBadHeaderLen);
}

TEST(PacketParse, UnsupportedEthertype) {
  auto frame = build_udp_ipv4({}, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2));
  auto& eth = *reinterpret_cast<EthernetHeader*>(frame.data());
  eth.set_ethertype(EtherType::kArp);
  PacketView view;
  EXPECT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            ParseStatus::kUnsupported);
}

TEST(PacketParse, OffsetsPointAtHeaders) {
  FrameSpec spec;
  spec.frame_size = 128;
  auto frame = build_udp_ipv4(spec, Ipv4Addr(1, 2, 3, 4), Ipv4Addr(5, 6, 7, 8));
  PacketView view;
  ASSERT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view), ParseStatus::kOk);
  EXPECT_EQ(view.l3_offset, 14);
  EXPECT_EQ(view.l4_offset, 34);
  EXPECT_EQ(view.l4_bytes().size(), 128u - 34u);
}

TEST(HeaderLayout, WireSizes) {
  EXPECT_EQ(sizeof(EthernetHeader), 14u);
  EXPECT_EQ(sizeof(Ipv4Header), 20u);
  EXPECT_EQ(sizeof(Ipv6Header), 40u);
  EXPECT_EQ(sizeof(UdpHeader), 8u);
  EXPECT_EQ(sizeof(TcpHeader), 20u);
  EXPECT_EQ(sizeof(EspHeader), 8u);
}

TEST(HeaderLayout, FieldAccessorsAreBigEndianOnWire) {
  Ipv4Header ip{};
  ip.set_total_length(0x1234);
  EXPECT_EQ(ip.total_length_be[0], 0x12);
  EXPECT_EQ(ip.total_length_be[1], 0x34);
  ip.set_src(Ipv4Addr(192, 168, 0, 1));
  EXPECT_EQ(ip.src_be[0], 192);
  EXPECT_EQ(ip.src_be[3], 1);
}

}  // namespace
}  // namespace ps::net
