// Parser robustness: random and mutated bytes must never crash, never
// read out of bounds, and always classify into a defined ParseStatus.
// Malformed frames through the NIC + engine + app pipeline must be
// contained (dropped or slow-pathed), never forwarded as IPv4.
#include <gtest/gtest.h>

#include "apps/ipv4_forward.hpp"
#include "common/rng.hpp"
#include "core/shader.hpp"
#include "net/packet.hpp"
#include "nic/nic.hpp"

namespace ps::net {
namespace {

class ParseFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(ParseFuzzTest, RandomBytesNeverMisbehave) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const u32 len = static_cast<u32>(rng.next_range(0, 256));
    std::vector<u8> bytes(len);
    for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());

    PacketView view;
    const auto status = parse_packet(bytes.data(), len, view);
    // Whatever the status, the view must never point past the buffer.
    if (status == ParseStatus::kOk) {
      EXPECT_LE(view.l3_offset, len);
      EXPECT_LE(view.l4_offset, len);
      if (view.has_l4) {
        EXPECT_LE(view.l4_offset + 8u, len + 0u);
      }
    }
  }
}

TEST_P(ParseFuzzTest, MutatedValidFramesNeverMisbehave) {
  Rng rng(GetParam() + 1000);
  const auto base = build_udp_ipv4({.frame_size = 128}, Ipv4Addr(10, 0, 0, 1),
                                   Ipv4Addr(10, 0, 0, 2));
  for (int trial = 0; trial < 2000; ++trial) {
    auto frame = base;
    // Flip 1-4 random bytes anywhere in the frame.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      frame[rng.next_below(frame.size())] ^= static_cast<u8>(1 + rng.next_below(255));
    }
    PacketView view;
    const auto status = parse_packet(frame.data(), static_cast<u32>(frame.size()), view);
    (void)status;  // any defined status is acceptable; no crash, no UB
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzzTest, ::testing::Values(1, 2, 3));

TEST(ParseFuzz, GarbageThroughFullPipelineIsContained) {
  // Random garbage delivered to the NIC, fetched by the app: every packet
  // must end as drop or slow-path, never forwarded.
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{Ipv4Addr(0), 0, 1}};
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  nic::NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 1, .ring_size = 2048});
  Rng rng(99);
  u32 delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<u8> junk(rng.next_range(14, 200));
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    if (port.receive_frame(junk)) ++delivered;
  }
  ASSERT_GT(delivered, 0u);

  std::vector<nic::RxSlot> slots(2048);
  const u32 n = port.rx_peek(0, slots.data(), 2048);
  core::ShaderJob job(2048);
  for (u32 i = 0; i < n; ++i) job.chunk.append({slots[i].data, slots[i].length});
  app.process_cpu(job.chunk);

  for (u32 i = 0; i < job.chunk.count(); ++i) {
    // Garbage can accidentally look like valid IPv4 only with a correct
    // checksum — vanishingly unlikely; anything else must not forward.
    if (job.chunk.verdict(i) == iengine::PacketVerdict::kForward) {
      EXPECT_NE(job.chunk.out_port(i), -1);
      PacketView view;
      auto pkt = job.chunk.packet(i);
      EXPECT_EQ(parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
                ParseStatus::kOk);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace ps::net
