// Parser robustness: random and mutated bytes must never crash, never
// read out of bounds, and always classify into a defined ParseStatus.
// Malformed frames through the NIC + engine + app pipeline must be
// contained (dropped or slow-pathed), never forwarded as IPv4.
#include <gtest/gtest.h>

#include "apps/ipv4_forward.hpp"
#include "common/rng.hpp"
#include "core/shader.hpp"
#include "net/packet.hpp"
#include "nic/nic.hpp"

namespace ps::net {
namespace {

class ParseFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(ParseFuzzTest, RandomBytesNeverMisbehave) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2000; ++trial) {
    const u32 len = static_cast<u32>(rng.next_range(0, 256));
    std::vector<u8> bytes(len);
    for (auto& b : bytes) b = static_cast<u8>(rng.next_u64());

    PacketView view;
    const auto status = parse_packet(bytes.data(), len, view);
    // Whatever the status, the view must never point past the buffer.
    if (status == ParseStatus::kOk) {
      EXPECT_LE(view.l3_offset, len);
      EXPECT_LE(view.l4_offset, len);
      if (view.has_l4) {
        EXPECT_LE(view.l4_offset + 8u, len + 0u);
      }
    }
  }
}

TEST_P(ParseFuzzTest, MutatedValidFramesNeverMisbehave) {
  Rng rng(GetParam() + 1000);
  const auto base = build_udp_ipv4({.frame_size = 128}, Ipv4Addr(10, 0, 0, 1),
                                   Ipv4Addr(10, 0, 0, 2));
  for (int trial = 0; trial < 2000; ++trial) {
    auto frame = base;
    // Flip 1-4 random bytes anywhere in the frame.
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      frame[rng.next_below(frame.size())] ^= static_cast<u8>(1 + rng.next_below(255));
    }
    PacketView view;
    const auto status = parse_packet(frame.data(), static_cast<u32>(frame.size()), view);
    (void)status;  // any defined status is acceptable; no crash, no UB
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseFuzzTest, ::testing::Values(1, 2, 3));

TEST(ParseFuzz, GarbageThroughFullPipelineIsContained) {
  // Random garbage delivered to the NIC, fetched by the app: every packet
  // must end as drop or slow-path, never forwarded.
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{Ipv4Addr(0), 0, 1}};
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  nic::NicPort port(0, pcie::Topology::single_node(), {.num_rx_queues = 1, .ring_size = 2048});
  Rng rng(99);
  u32 delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    std::vector<u8> junk(rng.next_range(14, 200));
    for (auto& b : junk) b = static_cast<u8>(rng.next_u64());
    if (port.receive_frame(junk)) ++delivered;
  }
  ASSERT_GT(delivered, 0u);

  std::vector<nic::RxSlot> slots(2048);
  const u32 n = port.rx_peek(0, slots.data(), 2048);
  core::ShaderJob job(2048);
  for (u32 i = 0; i < n; ++i) job.chunk.append({slots[i].data, slots[i].length});
  app.process_cpu(job.chunk);

  for (u32 i = 0; i < job.chunk.count(); ++i) {
    // Garbage can accidentally look like valid IPv4 only with a correct
    // checksum — vanishingly unlikely; anything else must not forward.
    if (job.chunk.verdict(i) == iengine::PacketVerdict::kForward) {
      EXPECT_NE(job.chunk.out_port(i), -1);
      PacketView view;
      auto pkt = job.chunk.packet(i);
      EXPECT_EQ(parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
                ParseStatus::kOk);
    }
  }
  SUCCEED();
}

// --- targeted adversarial frames: exact statuses, never OOB ---------------

ParseStatus parse(std::span<u8> frame) {
  PacketView view;
  return parse_packet(frame.data(), static_cast<u32>(frame.size()), view);
}

TEST(ParseAdversarial, TruncatedEthernetHeader) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  for (u32 len = 0; len < sizeof(EthernetHeader); ++len) {
    EXPECT_EQ(parse({frame.data(), len}), ParseStatus::kTruncated) << "len=" << len;
  }
}

TEST(ParseAdversarial, TruncatedIpv4Header) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  // Any cut inside the IPv4 header is truncation, not a header-length error.
  for (u32 len = sizeof(EthernetHeader); len < sizeof(EthernetHeader) + sizeof(Ipv4Header);
       ++len) {
    EXPECT_EQ(parse({frame.data(), len}), ParseStatus::kTruncated) << "len=" << len;
  }
}

TEST(ParseAdversarial, TruncatedIpv6Header) {
  auto frame = build_udp_ipv6({.frame_size = 78}, Ipv6Addr::from_words(1, 1),
                              Ipv6Addr::from_words(2, 2));
  for (u32 len = sizeof(EthernetHeader); len < sizeof(EthernetHeader) + sizeof(Ipv6Header);
       ++len) {
    EXPECT_EQ(parse({frame.data(), len}), ParseStatus::kTruncated) << "len=" << len;
  }
}

TEST(ParseAdversarial, Ipv4TotalLengthBeyondFrame) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_total_length(static_cast<u16>(frame.size()));  // claims 14 B more than exists
  ipv4_fill_checksum(ip);
  EXPECT_EQ(parse(frame), ParseStatus::kTruncated);
}

TEST(ParseAdversarial, Ipv4TotalLengthSmallerThanHeader) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_total_length(sizeof(Ipv4Header) - 1);
  ipv4_fill_checksum(ip);
  EXPECT_EQ(parse(frame), ParseStatus::kTruncated);
}

TEST(ParseAdversarial, Ipv4BogusIhl) {
  // IHL < 5 is an impossible header; IHL claiming options beyond the frame
  // end must be rejected before anyone indexes `l4_offset`.
  for (u8 ihl : {u8{0}, u8{1}, u8{4}}) {
    auto frame =
        build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
    auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
    ip.set_version_ihl(4, ihl);
    ipv4_fill_checksum(ip);
    EXPECT_EQ(parse(frame), ParseStatus::kBadHeaderLen) << "ihl=" << int{ihl};
  }
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  // Corrupt IHL after checksumming: the helper sums ihl*4 bytes and a
  // 60-byte claim would send it past the frame end. The parser must bail
  // on the header length before it ever reads that far.
  ip.set_version_ihl(4, 15);  // 60-byte header inside a 50-byte L3 payload
  EXPECT_EQ(parse(frame), ParseStatus::kBadHeaderLen);
}

TEST(ParseAdversarial, VersionEthertypeMismatch) {
  // IPv6 version nibble under an IPv4 ethertype and vice versa.
  auto v4 = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip4 = *reinterpret_cast<Ipv4Header*>(v4.data() + sizeof(EthernetHeader));
  ip4.set_version_ihl(6, 5);
  ipv4_fill_checksum(ip4);
  EXPECT_EQ(parse(v4), ParseStatus::kBadVersion);

  auto v6 = build_udp_ipv6({.frame_size = 78}, Ipv6Addr::from_words(1, 1),
                           Ipv6Addr::from_words(2, 2));
  v6[sizeof(EthernetHeader)] = (4u << 4);  // version=4 in an IPv6 frame
  EXPECT_EQ(parse(v6), ParseStatus::kBadVersion);
}

TEST(ParseAdversarial, Ipv4CorruptedChecksum) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.ttl ^= 0xff;  // header changed, checksum not refreshed
  EXPECT_EQ(parse(frame), ParseStatus::kBadChecksum);
}

TEST(ParseAdversarial, Ipv6PayloadLengthBeyondFrame) {
  auto frame = build_udp_ipv6({.frame_size = 78}, Ipv6Addr::from_words(1, 1),
                              Ipv6Addr::from_words(2, 2));
  auto& ip = *reinterpret_cast<Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_payload_length(static_cast<u16>(frame.size()));
  EXPECT_EQ(parse(frame), ParseStatus::kTruncated);
}

TEST(ParseAdversarial, TruncatedUdpLosesL4ViewOnly) {
  // A valid IP header whose datagram is too short for UDP still parses at
  // L3 (routers forward it), but must not expose an L4 view.
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_total_length(sizeof(Ipv4Header) + 4);  // 4 bytes of UDP, header needs 8
  ipv4_fill_checksum(ip);
  PacketView view;
  ASSERT_EQ(parse_packet(frame.data(), static_cast<u32>(frame.size()), view), ParseStatus::kOk);
  EXPECT_FALSE(view.has_l4);
}

TEST(ParseAdversarial, NonIpEthertypeIsUnsupported) {
  auto frame = build_udp_ipv4({.frame_size = 64}, Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  frame[12] = 0x08;
  frame[13] = 0x06;  // ARP
  EXPECT_EQ(parse(frame), ParseStatus::kUnsupported);
}

}  // namespace
}  // namespace ps::net
