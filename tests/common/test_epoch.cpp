// Epoch-based reclamation: the control-plane primitive under FIB
// generations. Covers the reclamation edge cases the chaos tests rely
// on: a reader pinned across multiple generation swaps, publish without
// retire (the "updater died mid-handoff" shape), the zero-reader
// fast-path reclaim, and a TSan-targeted concurrent pin/publish/reclaim
// stress.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/epoch.hpp"

namespace ps::epoch {
namespace {

/// A payload whose destruction is observable.
struct Tracked {
  explicit Tracked(std::atomic<int>& counter, u64 v = 0) : alive(counter), value(v) {
    alive.fetch_add(1, std::memory_order_relaxed);
  }
  ~Tracked() { alive.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int>& alive;
  u64 value;
};

TEST(Epoch, ZeroReaderFastPathReclaimsImmediately) {
  Domain domain;
  std::atomic<int> alive{0};
  domain.retire(std::make_shared<Tracked>(alive));
  domain.retire(std::make_shared<Tracked>(alive));
  EXPECT_EQ(domain.retired_pending(), 2u);
  EXPECT_EQ(alive.load(), 2);

  // No reader is pinned: everything retired so far frees in one pass.
  EXPECT_EQ(domain.reclaim(), 2u);
  EXPECT_EQ(domain.retired_pending(), 0u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Epoch, PinnedReaderBlocksReclaimAcrossMultipleSwaps) {
  Domain domain;
  std::atomic<int> alive{0};

  Guard guard = domain.pin();
  // Three generation swaps while the reader stays pinned: none of the
  // retired generations may be freed.
  for (int g = 0; g < 3; ++g) {
    domain.retire(std::make_shared<Tracked>(alive));
  }
  EXPECT_EQ(domain.reclaim(), 0u);
  EXPECT_EQ(domain.retired_pending(), 3u);
  EXPECT_EQ(alive.load(), 3);

  // Unpin: every retired generation is now reclaimable.
  guard = Guard{};
  EXPECT_EQ(domain.reclaim(), 3u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Epoch, LateReaderDoesNotProtectEarlierRetirement) {
  Domain domain;
  std::atomic<int> alive{0};
  domain.retire(std::make_shared<Tracked>(alive));

  // Pinned *after* the retirement: the new reader cannot reach the old
  // object (the publish preceded the retire), so reclaim proceeds.
  Guard guard = domain.pin();
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Epoch, PublishWithoutRetireThenRetireLater) {
  // The "updater crashed between publish and retire" shape: the new
  // generation is live, the old one unreferenced but not yet retired.
  // A successor updater retires it later and reclamation still works.
  Domain domain;
  std::atomic<int> alive{0};
  auto orphan = std::make_shared<Tracked>(alive);

  {
    Guard guard = domain.pin();  // reader active while the orphan dangles
    EXPECT_EQ(domain.retired_pending(), 0u);
  }

  // Successor picks up the orphan and retires it.
  domain.retire(std::move(orphan));
  EXPECT_EQ(domain.reclaim(), 1u);
  EXPECT_EQ(alive.load(), 0);
}

TEST(Epoch, NestedPinsShareTheSlot) {
  Domain domain;
  Guard outer = domain.pin();
  {
    Guard inner = domain.pin();
    EXPECT_EQ(domain.active_readers(), 1);  // same thread, same slot
  }
  EXPECT_EQ(domain.active_readers(), 1);  // outer still pinned
  outer = Guard{};
  EXPECT_EQ(domain.active_readers(), 0);
}

TEST(Epoch, GuardMoveTransfersThePin) {
  Domain domain;
  Guard a = domain.pin();
  Guard b = std::move(a);
  EXPECT_FALSE(a.pinned());
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(domain.active_readers(), 1);
  b = Guard{};
  EXPECT_EQ(domain.active_readers(), 0);
}

TEST(Epoch, SlotsReleasedAtThreadExitAreReusable) {
  Domain domain;
  // More threads than kMaxReaders, sequentially: each claims a slot on
  // first pin and releases it at exit, so the domain never runs out.
  for (int i = 0; i < Domain::kMaxReaders + 16; ++i) {
    std::thread t([&domain] {
      Guard g = domain.pin();
      EXPECT_GE(domain.active_readers(), 1);
    });
    t.join();
  }
  EXPECT_EQ(domain.active_readers(), 0);
}

// TSan-targeted: concurrent pin/read, publish/retire, and reclaim. The
// invariant a reader checks — the pointer it loaded while pinned stays
// alive and internally consistent — is exactly what the fence pairing
// must deliver; under TSan this test also proves the ordering is data-
// race-free, not merely correct on x86.
TEST(Epoch, ConcurrentPinPublishReclaimStress) {
  Domain domain;
  std::atomic<int> alive{0};

  // Published pointer, swapped by the writer. Readers dereference only
  // while pinned.
  auto initial = std::make_shared<Tracked>(alive, 1);
  std::atomic<const Tracked*> current{initial.get()};

  std::atomic<bool> stop{false};
  std::atomic<u64> torn{0};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Guard g = domain.pin();
        const Tracked* t = current.load(std::memory_order_acquire);
        // `value` is odd by construction; a freed or torn object would
        // break the invariant (and TSan would flag the access).
        if (t->value % 2 != 1) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::shared_ptr<Tracked> live = initial;
  initial.reset();
  for (u64 gen = 3; gen < 603; gen += 2) {
    auto fresh = std::make_shared<Tracked>(alive, gen);
    const Tracked* old_raw = live.get();
    current.store(fresh.get(), std::memory_order_release);
    (void)old_raw;
    domain.retire(std::move(live));  // old generation
    live = std::move(fresh);
    domain.reclaim();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  domain.reclaim();
  // Everything but the live generation was reclaimed.
  EXPECT_EQ(domain.retired_pending(), 0u);
  EXPECT_EQ(alive.load(), 1);
}

}  // namespace
}  // namespace ps::epoch
