#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"

namespace ps {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SeedsProduceDistinctStreams) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (u64 bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(6);
  std::unordered_set<u64> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const u64 v = rng.next_range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);  // law of large numbers sanity
}

TEST(Rng, ReseedResetsStream) {
  Rng rng(9);
  const u64 first = rng.next_u64();
  rng.next_u64();
  rng.reseed(9);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, RoughUniformityOverBuckets) {
  Rng rng(10);
  int buckets[16] = {};
  const int n = 160'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.next_below(16)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, n / 16, n / 16 / 5);  // within 20%
  }
}

}  // namespace
}  // namespace ps
