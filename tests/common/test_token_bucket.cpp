#include <gtest/gtest.h>

#include "common/token_bucket.hpp"

namespace ps {
namespace {

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_TRUE(bucket.try_consume(0));
  EXPECT_FALSE(bucket.try_consume(0));  // burst exhausted
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(10.0, 3.0);  // 10 tokens/s
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(bucket.try_consume(0));
  EXPECT_FALSE(bucket.try_consume(micros(50'000)));   // 0.05 s -> 0.5 tokens
  EXPECT_TRUE(bucket.try_consume(micros(100'000)));   // 0.1 s -> 1 token
  EXPECT_FALSE(bucket.try_consume(micros(100'000)));  // spent it
}

TEST(TokenBucket, BurstCapsAccrual) {
  TokenBucket bucket(1000.0, 2.0);
  // A long idle period must not bank more than the burst.
  EXPECT_NEAR(bucket.tokens_at(seconds(100)), 2.0, 1e-9);
  EXPECT_TRUE(bucket.try_consume(seconds(100)));
  EXPECT_TRUE(bucket.try_consume(seconds(100)));
  EXPECT_FALSE(bucket.try_consume(seconds(100)));
}

TEST(TokenBucket, NextAvailablePredictsExactly) {
  TokenBucket bucket(4.0, 1.0);  // one token every 0.25 s
  ASSERT_TRUE(bucket.try_consume(0));
  const Picos when = bucket.next_available(0);
  EXPECT_EQ(when, seconds(0.25));
  EXPECT_FALSE(bucket.try_consume(when - 1000));
  EXPECT_TRUE(bucket.try_consume(when));
}

TEST(TokenBucket, SustainedRateIsExact) {
  TokenBucket bucket(1'000'000.0, 8.0);
  u64 sent = 0;
  Picos now = 0;
  const Picos end = seconds(0.01);
  while (now < end) {
    if (bucket.try_consume(now)) {
      ++sent;
    } else {
      now = bucket.next_available(now);
    }
  }
  // 1 Mtoken/s over 10 ms = ~10,000 (+burst).
  EXPECT_NEAR(static_cast<double>(sent), 10'000.0, 20.0);
}

TEST(TokenBucket, PacedOfferedLoadMatchesTarget) {
  // The generator-facing behaviour: offer at 10 Gbps of 64 B frames for
  // 1 ms of model time => 10e9 / (88*8) * 1e-3 ~ 14,200 frames.
  TokenBucket bucket(10e9 / (88.0 * 8.0), 8.0);
  u64 frames = 0;
  Picos now = 0;
  while (now < kPicosPerMilli) {
    if (bucket.try_consume(now)) {
      ++frames;
    } else {
      now = bucket.next_available(now);
    }
  }
  EXPECT_NEAR(static_cast<double>(frames), 14'204.0, 30.0);
}

}  // namespace
}  // namespace ps
