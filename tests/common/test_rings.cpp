// SPSC ring and MPSC queue: capacity/FIFO invariants plus cross-thread
// stress.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"

namespace ps {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ring.pop(), i);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full
  EXPECT_EQ(ring.pop(), 0);
  EXPECT_TRUE(ring.push(99));  // space reclaimed
}

TEST(SpscRing, PopBatch) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i);
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_batch(out, 16), 6u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<u64> ring(4);
  u64 next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.push(next_push)) ++next_push;
    while (auto v = ring.pop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, CrossThreadStress) {
  SpscRing<u64> ring(64);
  constexpr u64 kCount = 200'000;

  std::thread producer([&] {
    for (u64 i = 0; i < kCount;) {
      if (ring.push(i)) ++i;
    }
  });
  u64 expected = 0;
  while (expected < kCount) {
    if (auto v = ring.pop()) {
      ASSERT_EQ(*v, expected);  // FIFO and no loss under concurrency
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(MpscQueue, FifoAndBlockingPop) {
  MpscQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, TryPushRespectsCapacity) {
  MpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpscQueue, CloseUnblocksConsumer) {
  MpscQueue<int> q(4);
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());  // wakes on close with empty queue
  });
  q.close();
  consumer.join();
}

TEST(MpscQueue, CloseDrainsRemainingItems) {
  MpscQueue<int> q(4);
  q.try_push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);  // drained even after close
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, PopBatchWaitGathersPending) {
  MpscQueue<int> q(16);
  for (int i = 0; i < 6; ++i) q.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch_wait(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  out.clear();
  EXPECT_EQ(q.pop_batch_wait(out, 10), 2u);
}

TEST(MpscQueue, MultipleProducersAllDelivered) {
  MpscQueue<u64> q(128);
  constexpr int kProducers = 4;
  constexpr u64 kPerProducer = 20'000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<u64>(p) * kPerProducer + i));
      }
    });
  }

  u64 received = 0;
  u64 sum = 0;
  while (received < kProducers * kPerProducer) {
    if (auto v = q.try_pop()) {
      sum += *v;
      ++received;
    }
  }
  for (auto& t : producers) t.join();

  const u64 n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);  // every value exactly once
}

TEST(MpscQueue, CloseUnblocksProducerStuckOnFullQueue) {
  // A worker blocked in push() against a full master queue must not
  // deadlock shutdown: close() wakes it and the push reports failure so
  // the caller can fall back (the router re-shades the chunk on the CPU).
  MpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));

  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(q.push(3) ? 1 : 0); });
  // Whether the producer is already parked on not_full_ or not, the queue
  // stays full, so the push can only be refused — close() resolves it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // woken by close, push refused

  // Items already queued still drain after close; nothing is lost.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, PushAndTryPushRefusedAfterClose) {
  MpscQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpscQueue, ConcurrentProducersDuringClose) {
  // Producers hammering the queue while the consumer closes it: every
  // value is either refused (push returned false) or delivered exactly
  // once — never both, never lost.
  constexpr int kProducers = 4;
  constexpr u64 kPerProducer = 5'000;
  MpscQueue<u64> q(32);

  std::atomic<u64> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        // Blocking push: waits for space until close() refuses it.
        if (q.push(static_cast<u64>(p) * kPerProducer + i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  u64 drained = 0;
  while (drained < 1'000) {
    if (q.try_pop()) ++drained;
  }
  q.close();  // producers keep pushing against the closed queue
  for (auto& t : producers) t.join();
  while (q.try_pop()) ++drained;  // post-close drain

  EXPECT_EQ(drained, accepted.load());  // accepted == delivered, exactly
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, PopBatchWaitWakesOnCloseWithZero) {
  MpscQueue<int> q(4);
  std::vector<int> out;
  std::thread consumer([&] { EXPECT_EQ(q.pop_batch_wait(out, 8), 0u); });
  q.close();
  consumer.join();
  EXPECT_TRUE(out.empty());
}

TEST(SpscRing, FullRingRejectsWithoutClobbering) {
  // A rejected push must leave the ring contents intact — this is the
  // guarantee the master relies on when a worker's output ring is full.
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  EXPECT_FALSE(ring.push(100));
  EXPECT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop(), i);  // untouched
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MinimumCapacityIsTwo) {
  SpscRing<int> ring(1);
  EXPECT_GE(ring.capacity(), 2u);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
}

TEST(MpscQueue, PerProducerOrderPreserved) {
  // The master input queue must preserve each worker's chunk order.
  MpscQueue<std::pair<int, u64>> q(64);
  constexpr u64 kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (u64 i = 0; i < kPerProducer; ++i) ASSERT_TRUE(q.push({p, i}));
    });
  }
  u64 next_seq[3] = {};
  u64 received = 0;
  while (received < 3 * kPerProducer) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(v->second, next_seq[v->first]++);
      ++received;
    }
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace ps
