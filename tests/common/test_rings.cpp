// SPSC ring and MPSC queue: capacity/FIFO invariants plus cross-thread
// stress.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/mpsc_queue.hpp"
#include "common/spsc_ring.hpp"

namespace ps {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ring.pop(), i);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SpscRing, CapacityRoundsToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));  // full
  EXPECT_EQ(ring.pop(), 0);
  EXPECT_TRUE(ring.push(99));  // space reclaimed
}

TEST(SpscRing, PopBatch) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.push(i);
  int out[16];
  EXPECT_EQ(ring.pop_batch(out, 4), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_batch(out, 16), 6u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(ring.pop_batch(out, 16), 0u);
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<u64> ring(4);
  u64 next_push = 0, next_pop = 0;
  for (int round = 0; round < 1000; ++round) {
    while (ring.push(next_push)) ++next_push;
    while (auto v = ring.pop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, CrossThreadStress) {
  SpscRing<u64> ring(64);
  constexpr u64 kCount = 200'000;

  std::thread producer([&] {
    for (u64 i = 0; i < kCount;) {
      if (ring.push(i)) ++i;
    }
  });
  u64 expected = 0;
  while (expected < kCount) {
    if (auto v = ring.pop()) {
      ASSERT_EQ(*v, expected);  // FIFO and no loss under concurrency
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(MpscQueue, FifoAndBlockingPop) {
  MpscQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, TryPushRespectsCapacity) {
  MpscQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
}

TEST(MpscQueue, CloseUnblocksConsumer) {
  MpscQueue<int> q(4);
  std::thread consumer([&] {
    EXPECT_FALSE(q.pop().has_value());  // wakes on close with empty queue
  });
  q.close();
  consumer.join();
}

TEST(MpscQueue, CloseDrainsRemainingItems) {
  MpscQueue<int> q(4);
  q.try_push(7);
  q.close();
  EXPECT_EQ(q.pop(), 7);  // drained even after close
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, PopBatchWaitGathersPending) {
  MpscQueue<int> q(16);
  for (int i = 0; i < 6; ++i) q.try_push(i);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch_wait(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  out.clear();
  EXPECT_EQ(q.pop_batch_wait(out, 10), 2u);
}

TEST(MpscQueue, MultipleProducersAllDelivered) {
  MpscQueue<u64> q(128);
  constexpr int kProducers = 4;
  constexpr u64 kPerProducer = 20'000;

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(static_cast<u64>(p) * kPerProducer + i));
      }
    });
  }

  u64 received = 0;
  u64 sum = 0;
  while (received < kProducers * kPerProducer) {
    if (auto v = q.try_pop()) {
      sum += *v;
      ++received;
    }
  }
  for (auto& t : producers) t.join();

  const u64 n = kProducers * kPerProducer;
  EXPECT_EQ(sum, n * (n - 1) / 2);  // every value exactly once
}

TEST(MpscQueue, CloseUnblocksProducerStuckOnFullQueue) {
  // A worker blocked in push() against a full master queue must not
  // deadlock shutdown: close() wakes it and the push reports failure so
  // the caller can fall back (the router re-shades the chunk on the CPU).
  MpscQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));

  std::atomic<int> result{-1};
  std::thread producer([&] { result.store(q.push(3) ? 1 : 0); });
  // Whether the producer is already parked on not_full_ or not, the queue
  // stays full, so the push can only be refused — close() resolves it.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);  // woken by close, push refused

  // Items already queued still drain after close; nothing is lost.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpscQueue, PushAndTryPushRefusedAfterClose) {
  MpscQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.try_push(2));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpscQueue, ConcurrentProducersDuringClose) {
  // Producers hammering the queue while the consumer closes it: every
  // value is either refused (push returned false) or delivered exactly
  // once — never both, never lost.
  constexpr int kProducers = 4;
  constexpr u64 kPerProducer = 5'000;
  MpscQueue<u64> q(32);

  std::atomic<u64> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (u64 i = 0; i < kPerProducer; ++i) {
        // Blocking push: waits for space until close() refuses it.
        if (q.push(static_cast<u64>(p) * kPerProducer + i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  u64 drained = 0;
  while (drained < 1'000) {
    if (q.try_pop()) ++drained;
  }
  q.close();  // producers keep pushing against the closed queue
  for (auto& t : producers) t.join();
  while (q.try_pop()) ++drained;  // post-close drain

  EXPECT_EQ(drained, accepted.load());  // accepted == delivered, exactly
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpscQueue, PopBatchWaitWakesOnCloseWithZero) {
  MpscQueue<int> q(4);
  std::vector<int> out;
  std::thread consumer([&] { EXPECT_EQ(q.pop_batch_wait(out, 8), 0u); });
  q.close();
  consumer.join();
  EXPECT_TRUE(out.empty());
}

TEST(SpscRing, FullRingRejectsWithoutClobbering) {
  // A rejected push must leave the ring contents intact — this is the
  // guarantee the master relies on when a worker's output ring is full.
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.push(i));
  EXPECT_FALSE(ring.push(99));
  EXPECT_FALSE(ring.push(100));
  EXPECT_EQ(ring.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop(), i);  // untouched
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, MinimumCapacityIsTwo) {
  SpscRing<int> ring(1);
  EXPECT_GE(ring.capacity(), 2u);
  EXPECT_TRUE(ring.push(1));
  EXPECT_TRUE(ring.push(2));
}

// ---------------------------------------------------------------------------
// SpscFanIn: the lock-free worker->master hand-off (PR 8). These tests pin
// the documented contract — per-producer FIFO, cross-producer round-robin,
// capacity isolation — and torture the idle-path wait/notify protocol.
// ---------------------------------------------------------------------------

TEST(SpscFanIn, CapacitySplitsEvenlyAndRoundsUp) {
  // 3 producers sharing 64 slots: 64/3 = 21 -> bit_ceil -> 32 each.
  SpscFanIn<int> q(3, 64);
  EXPECT_EQ(q.producers(), 3u);
  EXPECT_EQ(q.per_ring_capacity(), 32u);
  EXPECT_EQ(q.capacity(), 96u);

  // Degenerate request: every lane still gets the minimum of 2.
  SpscFanIn<int> tiny(3, 1);
  EXPECT_EQ(tiny.per_ring_capacity(), 2u);
  EXPECT_EQ(tiny.capacity(), 6u);
}

TEST(SpscFanIn, FullLaneRejectsAndCountsWithoutStarvingPeers) {
  SpscFanIn<int> q(2, 4);  // 2 slots per lane
  ASSERT_EQ(q.per_ring_capacity(), 2u);
  EXPECT_TRUE(q.try_push(0, 10));
  EXPECT_TRUE(q.try_push(0, 11));
  EXPECT_FALSE(q.try_push(0, 12));  // lane 0 full
  EXPECT_EQ(q.full_spins(0), 1u);
  // Lane 1 is isolated: producer 0 saturating its ring cannot take lane
  // 1's hand-off slots.
  EXPECT_TRUE(q.try_push(1, 20));
  EXPECT_EQ(q.full_spins(1), 0u);
  EXPECT_EQ(q.size(), 3u);
}

TEST(SpscFanIn, ClosedRefusesWithoutCountingFullSpin) {
  SpscFanIn<int> q(1, 4);
  q.close();
  EXPECT_FALSE(q.try_push(0, 1));
  // A refusal because of shutdown is not ring pressure; the telemetry
  // counter must not conflate the two.
  EXPECT_EQ(q.full_spins(0), 0u);
  EXPECT_TRUE(q.drained());
}

TEST(SpscFanIn, PerProducerFifoAcrossBatchedPops) {
  SpscFanIn<std::pair<int, u64>> q(3, 48);
  u64 pushed[3] = {};
  u64 popped[3] = {};
  std::vector<std::pair<int, u64>> out;
  out.reserve(48);
  // Interleave pushes and differently sized pops; each producer's stream
  // must come out in push order no matter how the sweeps slice it.
  for (int round = 0; round < 200; ++round) {
    for (int p = 0; p < 3; ++p) {
      const int burst = (round + p) % 4;
      for (int i = 0; i < burst; ++i) {
        if (q.try_push(static_cast<std::size_t>(p), {p, pushed[p]})) ++pushed[p];
      }
    }
    const std::size_t batch = 1 + static_cast<std::size_t>(round % 7);
    q.pop_batch(out, batch);
    for (const auto& [p, seq] : out) EXPECT_EQ(seq, popped[p]++);
  }
  while (q.pop_batch(out, 16) > 0) {
    for (const auto& [p, seq] : out) EXPECT_EQ(seq, popped[p]++);
  }
  for (int p = 0; p < 3; ++p) EXPECT_EQ(popped[p], pushed[p]);
}

TEST(SpscFanIn, RoundRobinSweepDrainsEveryLane) {
  // One item in each of 4 lanes; a pop_batch with max=2 must take from two
  // *different* lanes (cursor advances), and the next sweep must pick up
  // the remaining two — no lane is structurally favoured or skipped.
  SpscFanIn<int> q(4, 16);
  for (int p = 0; p < 4; ++p) ASSERT_TRUE(q.try_push(static_cast<std::size_t>(p), p));
  std::vector<int> out;
  out.reserve(16);
  EXPECT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 2);  // cursor resumed where the last sweep stopped
  EXPECT_EQ(out[1], 3);
}

TEST(SpscFanIn, NoGlobalFifoAcrossProducers) {
  // The documented weakening vs MpscQueue: an item pushed by producer 1
  // before an item from producer 0 may still be delivered after it when
  // the cursor reaches lane 0 first. Callers own cross-producer ordering.
  SpscFanIn<int> q(2, 8);
  ASSERT_TRUE(q.try_push(1, 100));  // pushed first...
  ASSERT_TRUE(q.try_push(0, 200));
  std::vector<int> out;
  out.reserve(8);
  EXPECT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 200);  // ...but lane 0 is swept first from a fresh cursor
  EXPECT_EQ(out[1], 100);
}

TEST(SpscFanIn, BatchOccupancyTelemetry) {
  SpscFanIn<int> q(1, 16);
  std::vector<int> out;
  out.reserve(16);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(0, i));
  q.pop_batch(out, 16);  // one drain of 6
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(q.try_push(0, i));
  q.pop_batch(out, 16);  // one drain of 2
  q.pop_batch(out, 16);  // empty sweep: not a drain
  EXPECT_EQ(q.batch_occupancy(0), 4u);  // (6 + 2) / 2
}

TEST(SpscFanIn, PopBatchWaitTimesOutEmptyAndWakesOnClose) {
  SpscFanIn<int> q(2, 8);
  std::vector<int> out;
  out.reserve(8);
  EXPECT_EQ(q.pop_batch_wait_for(out, 8, std::chrono::milliseconds(5)), 0u);
  EXPECT_FALSE(q.drained());

  std::thread consumer([&] {
    std::vector<int> local;
    local.reserve(8);
    // Long deadline: only close() can end this promptly.
    EXPECT_EQ(q.pop_batch_wait_for(local, 8, std::chrono::seconds(30)), 0u);
    EXPECT_TRUE(q.drained());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(SpscFanIn, TortureAllItemsDeliveredInOrder) {
  // Hand-off torture: 3 producers x ~333k items through small rings while
  // one consumer drains with varying batch sizes. Checked per producer:
  // strict sequence order (FIFO) and a running checksum of the delivered
  // stream. Run under TSan this doubles as the data-race proof for the
  // acquire/release protocol.
  constexpr std::size_t kProducers = 3;
  constexpr u64 kPerProducer = 1'000'000 / kProducers;
  SpscFanIn<std::pair<u32, u64>> q(kProducers, 64);

  std::vector<std::thread> producers;
  std::array<u64, kProducers> pushed_sum{};
  for (u32 p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &pushed_sum, p] {
      u64 sum = 0;
      for (u64 i = 0; i < kPerProducer;) {
        if (q.try_push(p, {p, i})) {
          sum += i;
          ++i;
        }
      }
      pushed_sum[p] = sum;
    });
  }

  std::array<u64, kProducers> next_seq{};
  std::array<u64, kProducers> popped_sum{};
  std::vector<std::pair<u32, u64>> out;
  out.reserve(64);
  u64 received = 0;
  std::size_t batch = 1;
  while (received < kProducers * kPerProducer) {
    const std::size_t n =
        q.pop_batch_wait_for(out, batch, std::chrono::milliseconds(100));
    for (std::size_t i = 0; i < n; ++i) {
      const auto [p, seq] = out[i];
      ASSERT_EQ(seq, next_seq[p]++);  // per-producer FIFO, nothing lost
      popped_sum[p] += seq;
    }
    received += n;
    batch = batch % 64 + 1;  // sweep all batch sizes 1..64
  }
  for (auto& t : producers) t.join();
  for (u32 p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_seq[p], kPerProducer);
    EXPECT_EQ(popped_sum[p], pushed_sum[p]);  // checksum of delivered stream
  }
  EXPECT_TRUE(q.size() == 0);
}

TEST(SpscFanIn, NoLostWakeupUnderSingleItemHandoffs) {
  // Interleaving probe for the store-buffering race in WakeSignal: one
  // item at a time, with the consumer parking on a *long* deadline before
  // or while the producer publishes. If a wakeup were ever lost, one
  // iteration would eat the full 2 s deadline and the loop would blow the
  // elapsed budget; instead every hand-off must complete promptly.
  SpscFanIn<int> q(1, 4);
  constexpr int kIters = 2'000;
  const auto t0 = std::chrono::steady_clock::now();

  std::thread consumer([&] {
    std::vector<int> out;
    out.reserve(4);
    for (int i = 0; i < kIters;) {
      const std::size_t n = q.pop_batch_wait_for(out, 4, std::chrono::seconds(2));
      for (std::size_t k = 0; k < n; ++k) EXPECT_EQ(out[k], i++);
    }
  });
  for (int i = 0; i < kIters; ++i) {
    while (!q.try_push(0, i)) std::this_thread::yield();
    if (i % 64 == 0) std::this_thread::yield();  // vary the interleaving
  }
  consumer.join();

  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // Generous bound for slow CI: 2000 hand-offs of ~us each. A single lost
  // wakeup costs 2 s and fails this alone.
  EXPECT_LT(elapsed, std::chrono::milliseconds(1900));
}

TEST(WakeSignal, NotifyAfterPrepareWaitIsNeverLost) {
  // The exact window the generation counter exists for: the producer's
  // notify() lands after prepare_wait() snapshots the token but before
  // wait_until() parks. The bumped wake_seq_ must end the wait instantly.
  WakeSignal w;
  const u64 token = w.prepare_wait();
  w.notify();  // waiting_ is true: bumps the generation
  EXPECT_TRUE(
      w.wait_until(token, std::chrono::steady_clock::now() + std::chrono::seconds(10)));
}

TEST(WakeSignal, NotifyWithoutWaiterIsCheapNoOp) {
  // No consumer advertised: notify() must not leave a stale generation
  // that spuriously satisfies a *later* wait (edge-triggered contract —
  // the waiter re-checks its queues between prepare and park, so an
  // earlier notify is covered by that re-check, not by the token).
  WakeSignal w;
  w.notify();  // waiting_ == false: returns before touching the lock
  const u64 token = w.prepare_wait();
  w.cancel_wait();
  EXPECT_FALSE(
      w.wait_until(token, std::chrono::steady_clock::now() + std::chrono::milliseconds(5)));
}

TEST(WakeSignal, CrossThreadParkAndWake) {
  WakeSignal w;
  std::atomic<bool> published{false};
  std::thread consumer([&] {
    for (;;) {
      const u64 token = w.prepare_wait();
      if (published.load(std::memory_order_relaxed)) {  // the mandated re-check
        w.cancel_wait();
        return;
      }
      if (w.wait_until(token, std::chrono::steady_clock::now() + std::chrono::seconds(2))) {
        EXPECT_TRUE(published.load(std::memory_order_relaxed));
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  published.store(true, std::memory_order_relaxed);
  w.notify();
  consumer.join();
}

TEST(MpscQueue, PerProducerOrderPreserved) {
  // The master input queue must preserve each worker's chunk order.
  MpscQueue<std::pair<int, u64>> q(64);
  constexpr u64 kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (u64 i = 0; i < kPerProducer; ++i) ASSERT_TRUE(q.push({p, i}));
    });
  }
  u64 next_seq[3] = {};
  u64 received = 0;
  while (received < 3 * kPerProducer) {
    if (auto v = q.try_pop()) {
      EXPECT_EQ(v->second, next_seq[v->first]++);
      ++received;
    }
  }
  for (auto& t : producers) t.join();
}

}  // namespace
}  // namespace ps
