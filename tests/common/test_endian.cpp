#include <gtest/gtest.h>

#include "common/endian.hpp"
#include "common/types.hpp"

namespace ps {
namespace {

TEST(Endian, Bswap) {
  EXPECT_EQ(bswap16(0x1234), 0x3412);
  EXPECT_EQ(bswap32(0x12345678u), 0x78563412u);
  EXPECT_EQ(bswap64(0x0102030405060708ULL), 0x0807060504030201ULL);
}

TEST(Endian, RoundTrips) {
  EXPECT_EQ(ntoh16(hton16(0xabcd)), 0xabcd);
  EXPECT_EQ(ntoh32(hton32(0xdeadbeefu)), 0xdeadbeefu);
  EXPECT_EQ(ntoh64(hton64(0x0123456789abcdefULL)), 0x0123456789abcdefULL);
}

TEST(Endian, BigEndianLoadsAreWireOrder) {
  const u8 wire[8] = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_EQ(load_be16(wire), 0x0102);
  EXPECT_EQ(load_be32(wire), 0x01020304u);
  EXPECT_EQ(load_be64(wire), 0x0102030405060708ULL);
}

TEST(Endian, StoresRoundTripThroughLoads) {
  u8 buf[8];
  store_be16(buf, 0xbeef);
  EXPECT_EQ(load_be16(buf), 0xbeef);
  EXPECT_EQ(buf[0], 0xbe);  // network order on the wire
  store_be32(buf, 0x12345678u);
  EXPECT_EQ(load_be32(buf), 0x12345678u);
  store_be64(buf, 0xfedcba9876543210ULL);
  EXPECT_EQ(load_be64(buf), 0xfedcba9876543210ULL);
}

TEST(Endian, UnalignedAccessIsSafe) {
  u8 buf[12] = {};
  store_be32(buf + 1, 0xcafebabeu);  // deliberately misaligned
  EXPECT_EQ(load_be32(buf + 1), 0xcafebabeu);
  store_be64(buf + 3, 0x1122334455667788ULL);
  EXPECT_EQ(load_be64(buf + 3), 0x1122334455667788ULL);
}

TEST(Types, UnitConversions) {
  EXPECT_EQ(micros(1.0), kPicosPerMicro);
  EXPECT_DOUBLE_EQ(to_micros(kPicosPerMilli), 1000.0);
  EXPECT_DOUBLE_EQ(to_seconds(kPicosPerSec), 1.0);
  // 64 B frame + 24 B overhead at 10 Gbps: 70.4 ns per packet, so a
  // thousand 64 B packets arrive in ~70 us (the section 2.3 argument).
  EXPECT_EQ(wire_bytes(64), 88u);
}

TEST(Types, ThroughputHelpers) {
  // 88 wire bytes in 70.4 ns = 10 Gbps.
  EXPECT_NEAR(to_gbps(88, nanos(70.4)), 10.0, 0.01);
  EXPECT_NEAR(to_mpps(1000, micros(70.4)), 14.2, 0.05);
}

}  // namespace
}  // namespace ps
