// SpscFanIn edge geometry: non-power-of-two producer counts, the
// degenerate single-producer shape, and sweep-cursor fairness when full
// and empty lanes interleave. These pin the corners the main fan-in
// suite's symmetric scenarios never reach.
#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

#include "common/spsc_ring.hpp"

namespace ps {
namespace {

TEST(FanInEdge, NonPowerOfTwoProducerCounts) {
  // The per-lane split must round UP to a power of two for every awkward
  // producer count, never down to zero or below the minimum of 2.
  struct Case {
    std::size_t producers;
    std::size_t total;
    std::size_t want_per_lane;
  };
  const Case cases[] = {
      {3, 64, 32},   // 64/3 = 21 -> 32
      {5, 64, 16},   // 64/5 = 12 -> 16
      {6, 64, 16},   // 64/6 = 10 -> 16
      {7, 64, 16},   // 64/7 = 9  -> 16
      {7, 7, 2},     // 7/7 = 1   -> floor of 2
      {9, 1024, 128},  // 1024/9 = 113 -> 128
  };
  for (const Case& c : cases) {
    SpscFanIn<int> q(c.producers, c.total);
    EXPECT_EQ(q.producers(), c.producers);
    EXPECT_EQ(q.per_ring_capacity(), c.want_per_lane)
        << c.producers << " producers over " << c.total << " slots";
    EXPECT_EQ(q.capacity(), c.producers * c.want_per_lane);
    // Every lane accepts up to exactly the split — no lane got shorted.
    for (std::size_t p = 0; p < c.producers; ++p) {
      for (std::size_t i = 0; i < c.want_per_lane; ++i) {
        EXPECT_TRUE(q.try_push(p, static_cast<int>(i)));
      }
      EXPECT_FALSE(q.try_push(p, -1));
    }
    EXPECT_EQ(q.size(), q.capacity());
  }
}

TEST(FanInEdge, SingleProducerDegeneratesToPlainSpsc) {
  // producers == 1: the sweep has one lane; the structure must behave
  // exactly like an SpscRing — global FIFO, full capacity in one lane.
  SpscFanIn<int> q(1, 8);
  EXPECT_EQ(q.producers(), 1u);
  EXPECT_EQ(q.per_ring_capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(0, i));
  EXPECT_FALSE(q.try_push(0, 99));
  EXPECT_EQ(q.full_spins(0), 1u);

  std::vector<int> out;
  out.reserve(8);
  // Slice the drain into uneven batches; order must still be global FIFO
  // because there is no cross-lane interleaving to excuse reordering.
  int expect = 0;
  for (const std::size_t batch : {3u, 1u, 4u}) {
    ASSERT_EQ(q.pop_batch(out, batch), batch);
    for (int v : out) EXPECT_EQ(v, expect++);
  }
  EXPECT_EQ(expect, 8);
  EXPECT_EQ(q.size(), 0u);
  // Space reclaimed: the lane accepts again after the drain.
  EXPECT_TRUE(q.try_push(0, 100));
}

TEST(FanInEdge, SweepSkipsEmptyLanesWithoutLosingCursor) {
  // Lanes 0 and 2 empty, lanes 1 and 3 loaded: the sweep must skip the
  // empty lanes (not stall or return short), drain greedily per visited
  // lane, and resume round-robin from where the previous sweep stopped
  // instead of restarting at lane 0.
  SpscFanIn<int> q(4, 16);
  ASSERT_TRUE(q.try_push(1, 10));
  ASSERT_TRUE(q.try_push(1, 11));
  ASSERT_TRUE(q.try_push(3, 30));
  ASSERT_TRUE(q.try_push(3, 31));

  std::vector<int> out;
  out.reserve(16);
  // Fresh cursor: lane 0 is skipped and lane 1 is drained to the cap.
  ASSERT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[1], 11);
  // Re-arm lane 1 *behind* the cursor. A cursor bug that restarts the
  // sweep at lane 0 would serve this new item before lane 3's backlog.
  ASSERT_TRUE(q.try_push(1, 12));
  ASSERT_EQ(q.pop_batch(out, 2), 2u);
  EXPECT_EQ(out[0], 30);
  EXPECT_EQ(out[1], 31);
  // The wrapped sweep finally reaches lane 1 again.
  ASSERT_EQ(q.pop_batch(out, 2), 1u);
  EXPECT_EQ(out[0], 12);
  EXPECT_EQ(q.size(), 0u);
}

TEST(FanInEdge, FullAndEmptyLaneMixStaysFair) {
  // Lane 0 saturated, lane 1 trickling: repeated capped sweeps must keep
  // servicing BOTH lanes — a cursor bug that restarts at lane 0 every
  // sweep would starve lane 1 behind the always-full lane.
  SpscFanIn<std::pair<int, int>> q(2, 4);  // 2 slots per lane
  ASSERT_EQ(q.per_ring_capacity(), 2u);

  int pushed0 = 0;
  int pushed1 = 0;
  int popped0 = 0;
  int popped1 = 0;
  auto refill = [&] {
    while (q.try_push(0, {0, pushed0})) ++pushed0;  // keep lane 0 at capacity
    if (q.try_push(1, {1, pushed1})) ++pushed1;     // trickle into lane 1
  };

  std::vector<std::pair<int, int>> out;
  out.reserve(4);
  refill();
  for (int sweep = 0; sweep < 32; ++sweep) {
    q.pop_batch(out, 1);  // worst case: one slot per sweep
    ASSERT_EQ(out.size(), 1u);
    const auto [lane, seq] = out[0];
    if (lane == 0) {
      EXPECT_EQ(seq, popped0++);
    } else {
      EXPECT_EQ(seq, popped1++);
    }
    refill();
  }
  // 32 single-item sweeps over two nonempty lanes: round-robin hands each
  // lane exactly half the service.
  EXPECT_EQ(popped0, 16);
  EXPECT_EQ(popped1, 16);
  EXPECT_GT(q.full_spins(0), 0u);
}

TEST(FanInEdge, DrainedReflectsEveryLaneAcrossClose) {
  // drained() must require EVERY lane empty, including lanes that were
  // full at close time and lanes that were never used.
  SpscFanIn<int> q(3, 6);
  ASSERT_TRUE(q.try_push(0, 1));
  ASSERT_TRUE(q.try_push(2, 3));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.drained());
  std::vector<int> out;
  out.reserve(6);
  EXPECT_EQ(q.pop_batch(out, 6), 2u);
  EXPECT_TRUE(q.drained());
}

}  // namespace
}  // namespace ps
