#include <gtest/gtest.h>

#include "common/histogram.hpp"

namespace ps {
namespace {

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.stddev(), 1.29, 0.01);
}

TEST(Histogram, QuantileApproximation) {
  Histogram h;
  for (int i = 1; i <= 10'000; ++i) h.record(static_cast<double>(i));
  EXPECT_NEAR(h.p50(), 5000, 5000 * 0.05);
  EXPECT_NEAR(h.p99(), 9900, 9900 * 0.05);
  EXPECT_NEAR(h.quantile(0.0), 1.0, 0.2);
  EXPECT_NEAR(h.quantile(1.0), 10'000, 1.0);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  for (int i = 0; i < 100; ++i) {
    const double v = 1.0 + i * 0.37;
    if (i % 2 == 0) {
      a.record(v);
    } else {
      b.record(v);
    }
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_NEAR(a.p50(), combined.p50(), 1e-9);
}

TEST(Histogram, RecordNWeightsValues) {
  Histogram h;
  h.record_n(10.0, 99);
  h.record_n(1000.0, 1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50(), 10.0, 0.5);
  EXPECT_NEAR(h.quantile(0.999), 1000.0, 50.0);
}

TEST(Histogram, ResetClearsState) {
  Histogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, WideDynamicRange) {
  Histogram h;
  h.record(1e-9);
  h.record(1e9);
  EXPECT_NEAR(h.quantile(0.0), 1e-9, 1e-10);
  EXPECT_NEAR(h.quantile(1.0), 1e9, 1e8 * 0.5);
}

TEST(Histogram, SummaryIsHumanReadable) {
  Histogram h;
  h.record(1.5);
  const auto s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("mean="), std::string::npos);
}

}  // namespace
}  // namespace ps
