// The shim's zero-overhead contract: in a production build (this TU has
// no PS_MODEL_CHECK), ps::atomic<T> IS std::atomic<T> — the same type,
// not a lookalike — and ps::fence_seq_cst() is the plain seq_cst fence
// path. Alias identity is the strongest codegen guarantee available
// without disassembly: identical types cannot generate different code.
#include <gtest/gtest.h>

#include <atomic>
#include <type_traits>

#include "common/atomic_shim.hpp"
#include "common/types.hpp"

#ifdef PS_MODEL_CHECK
#error "test_atomic_shim.cpp must compile in the production configuration"
#endif

namespace {

using ps::u32;
using ps::u64;

// Type-alias identity, per instantiation actually used in src/.
static_assert(std::is_same_v<ps::atomic<u64>, std::atomic<u64>>);
static_assert(std::is_same_v<ps::atomic<u32>, std::atomic<u32>>);
static_assert(std::is_same_v<ps::atomic<ps::u8>, std::atomic<ps::u8>>);
static_assert(std::is_same_v<ps::atomic<int>, std::atomic<int>>);
static_assert(std::is_same_v<ps::atomic<bool>, std::atomic<bool>>);
static_assert(std::is_same_v<ps::atomic<std::size_t>, std::atomic<std::size_t>>);
static_assert(std::is_same_v<ps::atomic<const int*>, std::atomic<const int*>>);

// Size/alignment identity follows from type identity, but assert it
// anyway so a future non-alias shim variant cannot slip a layout change
// into structs that embed atomics (rings, counters) unnoticed.
static_assert(sizeof(ps::atomic<u64>) == sizeof(std::atomic<u64>));
static_assert(alignof(ps::atomic<u64>) == alignof(std::atomic<u64>));

TEST(AtomicShim, ProductionAliasBehaves) {
  ps::atomic<u64> a{0};
  a.store(41, std::memory_order_relaxed);
  EXPECT_EQ(a.fetch_add(1, std::memory_order_relaxed), 41u);
  EXPECT_EQ(a.load(std::memory_order_relaxed), 42u);

  // std::atomic APIs not wrapped by the model variant still work on the
  // alias — proof callers get the full std interface in production.
  EXPECT_TRUE(a.is_lock_free());
}

TEST(AtomicShim, FenceSeqCstIsCallable) {
  // Behaviorally a fence is unobservable single-threaded; this pins the
  // symbol so the shim's fence path always compiles in production form.
  ps::fence_seq_cst();
  SUCCEED();
}

}  // namespace
