// Fixture for the read-path-lock rule in route/: lookup leaves must not
// take locks or fall back to the mutex-taking snapshot(). An allow
// comment quiets a site that is genuinely off the fast path, and helper
// names that merely contain "lookup" never match.
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex*); };
struct Fib {
  Mutex mu;
  const int* snapshot();
  int lookup(unsigned addr);
  int lookup_batch(const unsigned* addrs, int n);
  int lookup_debug_dump(unsigned addr);
};

int Fib::lookup(unsigned addr) {
  MutexLock lock(&mu);  // FIRES: lock acquisition on the per-packet path
  return static_cast<int>(addr);
}

int Fib::lookup_batch(const unsigned* addrs, int n) {
  const int* table = this->snapshot();  // FIRES: takes the manager mutex
  return table[addrs[0] % n];
}

int Fib::lookup_debug_dump(unsigned addr) {
  // pslint: allow(read-path-lock) debug dump, never on the data path
  MutexLock lock(&mu);  // ok: allow comment
  return static_cast<int>(addr);
}
