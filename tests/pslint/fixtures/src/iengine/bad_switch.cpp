// Fixture: drop-reason-default fires on a defaulted DropReason switch.
namespace iengine {
enum class DropReason { kRingFull, kParseError, kCount };

int weight(DropReason reason) {
  switch (reason) {            // not matched: no DropReason token in cond
    case DropReason::kRingFull:
      return 2;
    default:                   // matched via drop_reason below? no - see next
      return 1;
  }
}

int weight2(DropReason drop_reason_value) {
  switch (static_cast<DropReason>(static_cast<int>(drop_reason_value))) {
    case DropReason::kRingFull:
      return 2;
    default:                   // finding: DropReason in condition + default
      return 1;
  }
}
}  // namespace iengine
