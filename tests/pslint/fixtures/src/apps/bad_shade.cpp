// Fixture for the read-path-lock rule in apps/: the per-packet stages
// (shade_cpu/process_cpu/pre_shade/post_shade) must reach the FIB through
// the epoch-pinned read(); control-plane functions like sync() may keep
// the ref-counted snapshot().
struct Fib { const int* snapshot(); };
struct Job { Fib* fib; };

void shade_cpu(Job& job) {
  const int* table = job.fib->snapshot();  // FIRES
  (void)table;
}

void process_cpu(Job& job) {
  std::lock_guard guard(job);  // FIRES: lock acquisition per packet chunk
  (void)guard;
}

int sync(Job& job) {
  const int* table = job.fib->snapshot();  // ok: control-plane refresh
  return table != nullptr;
}
