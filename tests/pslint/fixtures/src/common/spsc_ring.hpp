// Fixture: in common/spsc_ring.hpp the handoff-mutex rule scans the
// whole file — any lock outside WakeSignal's allow-commented idle path
// fires, in any function.
#pragma once
#include <mutex>

struct BadRing {
  std::mutex mu;
  void push() {
    std::lock_guard<std::mutex> lock(mu);  // FIRES: hand-off header
  }
  void park() {
    // pslint: allow(handoff-mutex) -- fixture: WakeSignal-style idle park.
    std::unique_lock<std::mutex> lock(mu);  // ok: allow comment
  }
};
