// Fixture: single-writer fires when a NIC ledger counter is mutated
// outside nic/nic.cpp.
#include <atomic>

struct Stats { std::atomic<unsigned long> packets{0}; };
Stats rx_stats_;

void poke() {
  rx_stats_.packets.fetch_add(1, std::memory_order_relaxed);  // finding
}
