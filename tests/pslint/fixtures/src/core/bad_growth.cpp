// Fixture for the steady-state-growth rule: growth inside a
// steady-state function fires unless the file reserves the container or
// the site carries an allow comment; setup functions never fire.
#include <vector>

struct Worker {
  std::vector<int> staging;
  std::vector<int> pool;
  std::vector<int> scratch;
};

void start(Worker& w) {
  w.pool.reserve(64);       // warms `pool`: growth below is amortised away
  w.staging.push_back(0);   // setup code may grow anything
}

void worker_loop(Worker& w) {
  w.staging.push_back(1);   // FIRES: never reserved in this file
  w.pool.push_back(2);      // ok: reserved in start()
  // pslint: allow(steady-state-growth) grow-only high-water mark
  w.scratch.resize(128);    // ok: allow comment
}

void finish_job(Worker& w) {
  w.scratch.emplace_back(3);  // FIRES: the allow above is site-specific
}
