// Fixture: registry-sync fires both ways — a registered-but-undocumented
// name and a documented-but-unregistered one (router.phantom in docs.md).
struct Reg { template <typename F> void register_probe(const char*, int, F); };

void wire(Reg& reg) {
  reg.register_probe("router.ghost_metric", 0, [] { return 0; });  // finding
  reg.register_probe("router.rx_packets", 0, [] { return 0; });    // ok
}
