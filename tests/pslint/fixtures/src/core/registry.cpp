// Fixture: registry-sync fires both ways — registered-but-undocumented
// names and documented-but-unregistered ones (router.phantom,
// integrity.phantom, pcie.phantom_fault in docs.md) — across every
// checked prefix family: metrics (router.*, integrity.*, and the
// capture/generator families cap.*, gen.*) and fault points (pcie.*).
#include <string_view>
struct Reg { template <typename F> void register_probe(const char*, int, F); };

void wire(Reg& reg) {
  reg.register_probe("router.ghost_metric", 0, [] { return 0; });     // finding
  reg.register_probe("router.rx_packets", 0, [] { return 0; });       // ok
  reg.register_probe("integrity.ghost_metric", 0, [] { return 0; });  // finding
  reg.register_probe("integrity.quarantined", 0, [] { return 0; });   // ok
  reg.register_probe("cap.ghost_metric", 0, [] { return 0; });        // finding
  reg.register_probe("cap.tap.frames", 0, [] { return 0; });          // ok
  reg.register_probe("gen.ghost_metric", 0, [] { return 0; });        // finding
  reg.register_probe("gen.sunk_packets", 0, [] { return 0; });        // ok
}

// Fault-point declarations: the doc tables must carry these too.
constexpr std::string_view kGhostFault = "pcie.ghost_fault";  // finding
constexpr std::string_view kRealFault = "pcie.h2d_corrupt";   // ok
