// Fixture for the read-path-lock rule in core/: batch drivers may take
// their own (GPU-health) locks, so those are not flagged — but reaching
// the FIB through the mutex-taking snapshot() is.
struct Mutex {};
struct MutexLock { explicit MutexLock(Mutex*); };
struct Fib { const int* snapshot(); };
struct Node { Mutex health_mu; Fib* fib; };

int shade_batch(Node& node) {
  MutexLock lock(&node.health_mu);          // ok: core may take non-FIB locks
  const int* table = node.fib->snapshot();  // FIRES
  return table != nullptr;
}
