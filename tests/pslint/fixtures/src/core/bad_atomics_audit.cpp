// Fixture: atomics-audit must ban bare std::atomic, demand // mc: tags
// on ps::atomic sites, exempt pointer/reference spellings, and honor
// allow comments. Key sync against docs.md: 'fixture.tagged' is
// documented (quiet), 'fixture.ghost_key' is tagged here but absent
// from the doc table (finding), and docs.md's 'fixture.phantom_key' is
// documented but never tagged (finding attributed to docs.md).
#include <atomic>

namespace ps {
template <typename T> using atomic = std::atomic<T>;  // pslint: allow(atomics-audit)
inline void fence_seq_cst() {}                        // pslint: allow(atomics-audit)
}  // namespace ps

std::atomic<int> bare_counter{0};  // finding: bare std::atomic

void bare_fence() {
  std::atomic_thread_fence(std::memory_order_seq_cst);  // finding: bare fence
}

// pslint: allow(atomics-audit) -- fixture: sanctioned low-level site.
std::atomic<int> allowed_bare{0};  // ok: allow comment

ps::atomic<int> untagged{0};  // finding: lacks a contract tag

// mc: fixture.tagged -- documented in docs.md, two lines above is in range
ps::atomic<int> tagged_documented{0};  // ok

// mc: fixture.ghost_key
ps::atomic<int> tagged_undocumented{0};  // key missing from doc table

int observe(ps::atomic<int>* cell, ps::atomic<int>& ref) {  // ok: ptr/ref exempt
  return cell->load(std::memory_order_relaxed) + ref.load(std::memory_order_relaxed);
}

void publish() {
  // mc: fixture.tagged
  ps::fence_seq_cst();  // ok: tagged fence call
}

void publish_untagged() {
  int spacer = 0;
  (void)spacer;
  ps::fence_seq_cst();  // finding: untagged fence call
}
