// Fixture: bare-atomic must fire on defaulted memory orders and stay
// quiet on explicit ones and on allow-comments.
#include <atomic>

std::atomic<unsigned long> counter{0};

unsigned long tick() {
  counter.fetch_add(1);                                  // finding: no order
  counter.store(7);                                      // finding: no order
  counter.fetch_add(1, std::memory_order_relaxed);       // ok: explicit
  // pslint: allow(bare-atomic)
  counter.fetch_sub(1);                                  // ok: allowed
  return counter.load(std::memory_order_acquire);        // ok: explicit
}
