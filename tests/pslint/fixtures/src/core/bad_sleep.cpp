// Fixture: hot-sleep fires in hot-path dirs unless allowed.
#include <chrono>
#include <thread>

void spin_wait() {
  std::this_thread::sleep_for(std::chrono::microseconds(10));  // finding
  // pslint: allow(hot-sleep) -- fixture: justified idle backoff.
  std::this_thread::sleep_for(std::chrono::microseconds(10));  // ok
}
