// Fixture for the handoff-mutex rule: lock acquisition inside the
// router's hand-off loops fires; the same lock in a non-hand-off
// function does not, and an allow comment suppresses a sanctioned site.
#include <mutex>

struct Ctx {
  std::mutex mu;
};

void worker_loop(Ctx& ctx) {
  std::lock_guard<std::mutex> lock(ctx.mu);  // FIRES: hand-off loop
}

void drain_scatter(Ctx& ctx) {
  ctx.mu.lock();  // FIRES: raw acquisition on the hand-off path
  ctx.mu.unlock();
}

void master_loop(Ctx& ctx) {
  // pslint: allow(handoff-mutex) -- fixture: sanctioned idle-path park.
  std::unique_lock<std::mutex> lock(ctx.mu);  // ok: allow comment
}

void stage_finish(Ctx& ctx) {
  std::lock_guard<std::mutex> lock(ctx.mu);  // ok: not a hand-off loop
}
