#include <gtest/gtest.h>

#include "openflow/flow.hpp"

namespace ps::openflow {
namespace {

net::FrameBuffer udp_frame() {
  net::FrameSpec spec;
  spec.src_port = 1234;
  spec.dst_port = 80;
  return net::build_udp_ipv4(spec, net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2));
}

FlowKey key_of(net::FrameBuffer& frame, u16 in_port = 3) {
  net::PacketView view;
  EXPECT_EQ(net::parse_packet(frame.data(), static_cast<u32>(frame.size()), view),
            net::ParseStatus::kOk);
  return extract_flow_key(view, in_port);
}

TEST(FlowKey, ExtractionFillsTenFields) {
  auto frame = udp_frame();
  const auto key = key_of(frame);
  EXPECT_EQ(key.in_port, 3);
  EXPECT_EQ(key.dl_type, 0x0800);
  // Copies: nw_src/nw_dst are misaligned inside the packed key, and
  // EXPECT_EQ would bind a reference to them.
  EXPECT_EQ(u32{key.nw_src}, net::Ipv4Addr(10, 0, 0, 1).value);
  EXPECT_EQ(u32{key.nw_dst}, net::Ipv4Addr(10, 0, 0, 2).value);
  EXPECT_EQ(key.nw_proto, 17);
  EXPECT_EQ(key.tp_src, 1234);
  EXPECT_EQ(key.tp_dst, 80);
  EXPECT_EQ(key.dl_src, net::MacAddr::for_port(0).bytes);
  EXPECT_EQ(key.dl_dst, net::MacAddr::for_port(1).bytes);
}

TEST(FlowKey, FixedThirtyTwoByteLayout) {
  EXPECT_EQ(sizeof(FlowKey), 32u);  // flat layout shared with the GPU
}

TEST(FlowKey, HashIsDeterministicAndSpreads) {
  auto frame = udp_frame();
  const auto key = key_of(frame);
  EXPECT_EQ(flow_key_hash(key), flow_key_hash(key));

  FlowKey other = key;
  other.tp_dst = 81;
  EXPECT_NE(flow_key_hash(key), flow_key_hash(other));
}

TEST(FlowKey, SamePacketDifferentPortDifferentKey) {
  auto frame = udp_frame();
  EXPECT_NE(key_of(frame, 1), key_of(frame, 2));
}

TEST(WildcardMatch, AllWildMatchesEverything) {
  WildcardMatch match;
  match.wildcards = kWildAll;
  auto frame = udp_frame();
  EXPECT_TRUE(match.matches(key_of(frame)));
  EXPECT_TRUE(match.matches(FlowKey{}));
}

TEST(WildcardMatch, SingleFieldConstraints) {
  auto frame = udp_frame();
  const auto key = key_of(frame);

  WildcardMatch match;
  match.wildcards = kWildAll & ~kWildTpDst;
  match.key.tp_dst = 80;
  EXPECT_TRUE(match.matches(key));
  match.key.tp_dst = 81;
  EXPECT_FALSE(match.matches(key));

  match = WildcardMatch{};
  match.wildcards = kWildAll & ~kWildInPort;
  match.key.in_port = 3;
  EXPECT_TRUE(match.matches(key));
  match.key.in_port = 4;
  EXPECT_FALSE(match.matches(key));
}

TEST(WildcardMatch, IpPrefixMasks) {
  auto frame = udp_frame();
  const auto key = key_of(frame);  // nw_src 10.0.0.1

  WildcardMatch match;
  match.wildcards = kWildAll;
  match.nw_src_bits = 8;
  match.key.nw_src = net::Ipv4Addr(10, 99, 99, 99).value;  // 10/8
  EXPECT_TRUE(match.matches(key));

  match.nw_src_bits = 24;  // 10.99.99/24 no longer covers 10.0.0.1
  EXPECT_FALSE(match.matches(key));

  match.key.nw_src = net::Ipv4Addr(10, 0, 0, 0).value;
  EXPECT_TRUE(match.matches(key));

  match.nw_src_bits = 32;
  EXPECT_FALSE(match.matches(key));  // exact 10.0.0.0 != 10.0.0.1
}

TEST(WildcardMatch, ZeroBitsIgnoresAddress) {
  WildcardMatch match;
  match.wildcards = kWildAll;
  match.nw_src_bits = 0;
  match.key.nw_src = 0xdeadbeef;
  EXPECT_TRUE(match.matches(FlowKey{}));
}

TEST(Action, Builders) {
  EXPECT_EQ(Action::output(5).type, ActionType::kOutput);
  EXPECT_EQ(Action::output(5).port, 5);
  EXPECT_EQ(Action::drop().type, ActionType::kDrop);
  EXPECT_EQ(Action::controller().type, ActionType::kController);
}

}  // namespace
}  // namespace ps::openflow
