#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "openflow/switch_table.hpp"

namespace ps::openflow {
namespace {

FlowKey make_key(u32 id) {
  FlowKey key;
  key.in_port = static_cast<u16>(id % 8);
  key.nw_src = id * 2654435761u;
  key.nw_dst = ~id;
  key.nw_proto = 17;
  key.tp_src = static_cast<u16>(id);
  key.tp_dst = static_cast<u16>(id >> 16);
  key.dl_type = 0x0800;
  return key;
}

TEST(ExactMatchTable, InsertLookupErase) {
  ExactMatchTable table;
  table.insert(make_key(1), Action::output(3));
  table.insert(make_key(2), Action::drop());

  EXPECT_EQ(table.lookup(make_key(1)), Action::output(3));
  EXPECT_EQ(table.lookup(make_key(2)), Action::drop());
  EXPECT_FALSE(table.lookup(make_key(3)).has_value());

  EXPECT_TRUE(table.erase(make_key(1)));
  EXPECT_FALSE(table.lookup(make_key(1)).has_value());
  EXPECT_FALSE(table.erase(make_key(1)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(ExactMatchTable, InsertOverwritesAction) {
  ExactMatchTable table;
  table.insert(make_key(1), Action::output(1));
  table.insert(make_key(1), Action::output(2));
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(make_key(1)), Action::output(2));
}

TEST(ExactMatchTable, GrowsPastLoadFactor) {
  ExactMatchTable table(4);
  const auto initial_capacity = table.capacity();
  for (u32 i = 0; i < 1000; ++i) table.insert(make_key(i), Action::output(static_cast<u16>(i % 8)));
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_EQ(table.size(), 1000u);
  for (u32 i = 0; i < 1000; ++i) {
    ASSERT_EQ(table.lookup(make_key(i)), Action::output(static_cast<u16>(i % 8))) << i;
  }
}

TEST(ExactMatchTable, EraseRepairsProbeClusters) {
  // Force collisions, erase the middle of a cluster, everything must stay
  // findable (the no-tombstone reinsertion path).
  ExactMatchTable table(8);
  std::vector<FlowKey> keys;
  for (u32 i = 0; i < 12; ++i) keys.push_back(make_key(i * 1000));
  for (const auto& k : keys) table.insert(k, Action::output(1));
  for (std::size_t victim = 0; victim < keys.size(); victim += 2) {
    ASSERT_TRUE(table.erase(keys[victim]));
  }
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    EXPECT_TRUE(table.lookup(keys[i]).has_value()) << i;
  }
}

TEST(ExactMatchTable, CountersTrackHits) {
  ExactMatchTable table;
  table.insert(make_key(5), Action::output(0));
  table.lookup(make_key(5), 100);
  table.lookup(make_key(5), 50);
  const auto slots = table.slots();
  for (const auto& slot : slots) {
    if (slot.occupied) {
      EXPECT_EQ(slot.stats.packets, 2u);
      EXPECT_EQ(slot.stats.bytes, 150u);
    }
  }
}

TEST(WildcardTable, PriorityOrderWins) {
  WildcardTable table;
  WildcardMatch low;
  low.wildcards = kWildAll;
  low.priority = 1;
  WildcardMatch high;
  high.wildcards = kWildAll & ~kWildNwProto;
  high.key.nw_proto = 17;
  high.priority = 100;

  // Insert low first: the high-priority entry must still match first.
  table.insert(low, Action::drop());
  table.insert(high, Action::output(7));

  EXPECT_EQ(table.lookup(make_key(1)), Action::output(7));  // udp hits high

  FlowKey tcp = make_key(1);
  tcp.nw_proto = 6;
  EXPECT_EQ(table.lookup(tcp), Action::drop());  // falls to catch-all
}

TEST(WildcardTable, ScannedCountsEntriesExamined) {
  WildcardTable table;
  for (u16 p = 0; p < 10; ++p) {
    WildcardMatch m;
    m.wildcards = kWildAll & ~kWildInPort;
    m.key.in_port = p;
    m.priority = static_cast<u16>(100 - p);
    table.insert(m, Action::output(p));
  }
  FlowKey key;
  key.in_port = 9;  // matches the last (lowest-priority) entry
  int scanned = 0;
  EXPECT_EQ(table.lookup(key, 0, &scanned), Action::output(9));
  EXPECT_EQ(scanned, 10);

  key.in_port = 0;
  EXPECT_EQ(table.lookup(key, 0, &scanned), Action::output(0));
  EXPECT_EQ(scanned, 1);

  key.in_port = 99;  // no match: full scan
  EXPECT_FALSE(table.lookup(key, 0, &scanned).has_value());
  EXPECT_EQ(scanned, 10);
}

TEST(OpenFlowSwitch, ExactBeatsWildcard) {
  OpenFlowSwitch sw;
  const auto key = make_key(42);
  WildcardMatch wild;
  wild.wildcards = kWildAll;
  wild.priority = 65535;
  sw.wildcard().insert(wild, Action::drop());
  sw.exact().insert(key, Action::output(2));

  EXPECT_EQ(sw.classify(key), Action::output(2));
  EXPECT_EQ(sw.exact_hits(), 1u);
  EXPECT_EQ(sw.classify(make_key(43)), Action::drop());
  EXPECT_EQ(sw.wildcard_hits(), 1u);
}

TEST(OpenFlowSwitch, MissUsesDefaultAction) {
  OpenFlowSwitch sw;
  EXPECT_EQ(sw.classify(make_key(1)), Action::controller());
  EXPECT_EQ(sw.misses(), 1u);

  sw.set_default_action(Action::drop());
  EXPECT_EQ(sw.classify(make_key(2)), Action::drop());
}

TEST(OpenFlowSwitch, RandomizedAgainstLinearReference) {
  // Property test: table behaviour must equal a brute-force reference.
  OpenFlowSwitch sw;
  std::vector<std::pair<FlowKey, Action>> exact_ref;
  Rng rng(31);

  for (u32 i = 0; i < 500; ++i) {
    const auto key = make_key(static_cast<u32>(rng.next_u32()));
    const auto action = Action::output(static_cast<u16>(rng.next_below(8)));
    sw.exact().insert(key, action);
    exact_ref.emplace_back(key, action);
  }
  for (const auto& [key, action] : exact_ref) {
    EXPECT_EQ(sw.classify(key), action);
  }
}


TEST(FlowExpiry, HardTimeoutsEvictExactEntries) {
  ExactMatchTable table;
  table.insert(make_key(1), Action::output(1), /*expires_at=*/ps::seconds(1.0));
  table.insert(make_key(2), Action::output(2));  // permanent
  table.insert(make_key(3), Action::output(3), ps::seconds(3.0));

  EXPECT_EQ(table.expire(ps::seconds(0.5)), 0u);
  EXPECT_EQ(table.expire(ps::seconds(2.0)), 1u);
  EXPECT_FALSE(table.lookup(make_key(1)).has_value());
  EXPECT_TRUE(table.lookup(make_key(2)).has_value());
  EXPECT_TRUE(table.lookup(make_key(3)).has_value());
  EXPECT_EQ(table.expire(ps::seconds(10.0)), 1u);
  EXPECT_TRUE(table.lookup(make_key(2)).has_value());  // permanent survives
}

TEST(FlowExpiry, WildcardTimeouts) {
  WildcardTable table;
  WildcardMatch a;
  a.wildcards = kWildAll;
  a.priority = 10;
  table.insert(a, Action::output(1), ps::seconds(1.0));
  WildcardMatch b;
  b.wildcards = kWildAll;
  b.priority = 5;
  table.insert(b, Action::output(2));

  EXPECT_EQ(table.lookup(make_key(1)), Action::output(1));
  EXPECT_EQ(table.expire(ps::seconds(2.0)), 1u);
  // With the high-priority entry gone, the permanent one takes over.
  EXPECT_EQ(table.lookup(make_key(1)), Action::output(2));
}

TEST(FlowExpiry, SwitchSweepCoversBothTables) {
  OpenFlowSwitch sw;
  sw.exact().insert(make_key(1), Action::output(1), ps::seconds(1.0));
  WildcardMatch m;
  m.wildcards = kWildAll;
  sw.wildcard().insert(m, Action::output(2), ps::seconds(1.0));
  EXPECT_EQ(sw.expire(ps::seconds(5.0)), 2u);
  EXPECT_EQ(sw.exact().size(), 0u);
  EXPECT_EQ(sw.wildcard().size(), 0u);
}

TEST(FlowExpiry, ReinsertRefreshesTimeout) {
  ExactMatchTable table;
  table.insert(make_key(1), Action::output(1), ps::seconds(1.0));
  table.insert(make_key(1), Action::output(1), ps::seconds(10.0));  // refresh
  EXPECT_EQ(table.expire(ps::seconds(2.0)), 0u);
  EXPECT_TRUE(table.lookup(make_key(1)).has_value());
}

TEST(FlowExpiry, GrowPreservesExpiry) {
  ExactMatchTable table(4);
  for (u32 i = 0; i < 100; ++i) {
    table.insert(make_key(i), Action::output(1), ps::seconds(1.0));
  }
  EXPECT_EQ(table.expire(ps::seconds(2.0)), 100u);  // all still timed
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace ps::openflow
