// Steady-state allocation-freedom: once the router's staging buffers,
// queues, and scratch blocks are warm, forwarding traffic through the
// CPU-only pipeline must not touch the global allocator. The counting
// operator new in telemetry/alloc_stats.cpp (PS_ALLOC_STATS builds) makes
// that an assertable property rather than a code-review convention.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/ipv4_table.hpp"
#include "telemetry/alloc_stats.hpp"

namespace ps::core {
namespace {

using namespace std::chrono_literals;

route::Ipv4Table default_route_table(route::NextHop out) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, out}};
  table.build(rib);
  return table;
}

TEST(SteadyStateAlloc, CpuOnlyForwardingIsAllocationFree) {
  if (!telemetry::alloc_stats_enabled()) {
    GTEST_SKIP() << "built without PS_ALLOC_STATS (sanitizer build?)";
  }

  Testbed testbed(TestbedConfig{.topo = pcie::Topology::paper_server(),
                                .use_gpu = false,
                                .ring_size = 4096},
                  RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic{{.seed = 23}};
  testbed.connect_sink(&traffic);
  route::Ipv4Table table = default_route_table(1);
  apps::Ipv4ForwardApp app{table};

  RouterConfig config;
  config.use_gpu = false;
  Router router(testbed.engine(), {}, app, config);
  router.start();

  // Warmup: the first bursts grow every staging vector, thread-local
  // chunk, and pooled sub-job to its steady-state capacity.
  u64 total = 0;
  for (int burst = 0; burst < 4; ++burst) {
    total += traffic.offer(testbed.ports(), 2000);
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (traffic.sunk_packets() < total &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    ASSERT_EQ(traffic.sunk_packets(), total) << "warmup burst " << burst << " not drained";
  }

  // Measured phase: same traffic shape, allocation counter must be flat.
  // The counter is sampled after offer() returns (frame generation itself
  // allocates) and the polling loop below only reads an atomic, so the
  // measured window contains nothing but the router's steady-state work.
  total += traffic.offer(testbed.ports(), 4000);
  const u64 before = telemetry::allocations();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (traffic.sunk_packets() < total && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(traffic.sunk_packets(), total) << "measured burst not drained";
  const u64 after = telemetry::allocations();

  EXPECT_EQ(after - before, 0u)
      << "steady-state forwarding allocated " << (after - before)
      << " times; a staging buffer or queue is growing per-packet";

  router.stop();
}

}  // namespace
}  // namespace ps::core
