// Overload control end to end: per-queue fair RX admission at the engine,
// watermark-driven batch shrinking and NIC-ring shedding at the router,
// slow-path admission in front of the host stack, and the packet
// conservation audit that proves nothing is ever lost unaccounted.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "slowpath/host_stack.hpp"

namespace ps::core {
namespace {

using namespace std::chrono_literals;

// TSan slows every thread ~10-20x, including the offering loop, so
// assertions about *relative* speed (the offerer outrunning the rings)
// do not transfer; liveness and accounting assertions still must hold.
#if defined(__SANITIZE_THREAD__)
constexpr bool kTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsan = true;
#else
constexpr bool kTsan = false;
#endif
#else
constexpr bool kTsan = false;
#endif

route::Ipv4Table default_route_table(route::NextHop out_port) {
  route::Ipv4Table table;
  const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, out_port};
  table.build({&all, 1});
  return table;
}

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 20000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

/// A shader whose GPU stage is artificially slow, so the master input
/// queue backs up and the watermark machinery engages.
class SlowShader final : public Shader {
 public:
  const char* name() const override { return "slow-shader"; }

  void pre_shade(ShaderJob& job) override {
    for (u32 i = 0; i < job.chunk.count(); ++i) job.gpu_index.push_back(i);
    job.gpu_items = job.chunk.count();
  }

  ShadeOutcome shade(GpuContext&, std::span<ShaderJob* const> jobs, Picos submit) override {
    std::this_thread::sleep_for(2ms);  // pathological kernel
    for (auto* job : jobs) job->gpu_output.resize(job->gpu_items);
    return {gpu::GpuStatus::kOk, submit};
  }

  void shade_cpu(ShaderJob& job) override {
    std::this_thread::sleep_for(100us);  // the CPU path is no bargain either
    job.gpu_output.resize(job.gpu_items);
  }

  void post_shade(ShaderJob& job) override { route_all(job.chunk); }

  void process_cpu(iengine::PacketChunk& chunk) override { route_all(chunk); }

 private:
  static void route_all(iengine::PacketChunk& chunk) {
    for (u32 i = 0; i < chunk.count(); ++i) {
      chunk.set_verdict(i, iengine::PacketVerdict::kForward);
      chunk.set_out_port(i, 1);
    }
  }
};

TEST(OverloadControl, PerQueueCapSplitsTheBatchFairlyAcrossPorts) {
  // Two ports, both with deep backlogs on queue 0. A capped recv must not
  // let either port monopolize the shrunk batch.
  Testbed testbed({.topo = pcie::Topology::single_node(),
                   .use_gpu = false,
                   .ring_size = 4096},
                  RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 81});

  auto ports = testbed.ports();
  traffic.offer(ports.subspan(0, 1), 2'000);  // port 0: hot
  traffic.offer(ports.subspan(1, 1), 2'000);  // port 1: hot too
  ASSERT_GE(testbed.port(0).rx_available(0), 4u);  // RSS spread reaches q0
  ASSERT_GE(testbed.port(1).rx_available(0), 4u);

  auto* handle = testbed.engine().attach(/*core=*/0, {{0, 0}, {1, 0}});
  const u32 before0 = testbed.port(0).rx_available(0);
  const u32 before1 = testbed.port(1).rx_available(0);

  iengine::PacketChunk chunk(64);
  const u32 n = handle->recv_chunk(chunk, /*batch_cap=*/8, /*per_queue_cap=*/4);
  EXPECT_EQ(n, 8u);  // the batch filled...
  // ...with exactly the fair share from each backlogged queue.
  EXPECT_EQ(testbed.port(0).rx_available(0), before0 - 4);
  EXPECT_EQ(testbed.port(1).rx_available(0), before1 - 4);

  // Uncapped, round-robin resumes where it left off but one queue may
  // take the whole batch.
  const u32 full = handle->recv_chunk(chunk, 8, 8);
  EXPECT_EQ(full, 8u);
}

TEST(OverloadControl, WatermarksShrinkBatchesAndShedAtTheNicRing) {
  Testbed testbed({.topo = pcie::Topology::single_node(),
                   .use_gpu = true,
                   .ring_size = 256,  // small rings: overload sheds here
                   .gpu_pool_workers = 0},
                  RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 82});
  testbed.connect_sink(&traffic);

  SlowShader shader;
  RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 32;
  config.master_queue_capacity = 2;  // tiny: watermarks engage immediately
  config.bp_reduced_batch = 8;
  Router router(testbed.engine(), testbed.gpus(), shader, config);
  router.start();

  const u64 offered = 20'000;
  const u64 accepted = traffic.offer(testbed.ports(), offered);

  // Overload: the offering loop outruns 256-deep rings while the shader
  // crawls, so some of the excess must have been shed at the wire. (Under
  // TSan the offerer is slowed as much as the router, so the rings may
  // keep up — only the accounting identity is asserted there.)
  u64 hw_rx_drops = 0;
  for (auto* port : testbed.ports()) hw_rx_drops += port->rx_totals().drops;
  EXPECT_EQ(accepted + hw_rx_drops, offered);
  if (!kTsan) {
    EXPECT_GT(hw_rx_drops, 0u);
  }

  // Everything that did enter the rings drains (graceful, not collapsed).
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));
  router.stop();

  const auto stats = router.total_stats();
  EXPECT_EQ(stats.packets_in, accepted);
  EXPECT_EQ(stats.packets_out, accepted);
  EXPECT_GT(stats.bp_reduced_batches, 0u);  // the high watermark engaged
  EXPECT_GT(stats.bp_diverted_chunks, 0u);  // and saturation diverted to CPU

  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.in_flight, 0u);
  EXPECT_EQ(audit.rx, audit.tx);  // no drops past the wire in this run
}

TEST(OverloadControl, SlowpathFloodIsRateLimitedAndAccounted) {
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  Testbed testbed({.topo = pcie::Topology::single_node(),
                   .use_gpu = false,
                   .ring_size = 4096},
                  RouterConfig{.use_gpu = false});
  gen::TrafficGen sink({.seed = 83});
  testbed.connect_sink(&sink);

  slowpath::HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  stack.set_local_capacity(64);

  RouterConfig config;
  config.use_gpu = false;
  config.chunk_capacity = 32;
  // A tight admission budget: the flood below must overrun it.
  config.slowpath_admission = {.rate_pps = 0.001, .burst = 100, .queue_capacity = 64};
  Router router(testbed.engine(), {}, app, config);
  router.set_host_stack(&stack);
  router.start();

  // Flood: 2'000 TTL-expired packets — every one classifies kSlowPath.
  net::FrameSpec dying;
  dying.ttl = 1;
  u64 accepted = 0;
  for (int i = 0; i < 2'000; ++i) {
    const auto frame = net::build_udp_ipv4(dying, net::Ipv4Addr(10, 0, 0, 9),
                                           net::Ipv4Addr(20, 0, (i >> 8) & 0xff, i & 0xff));
    if (testbed.port(0).receive_frame(frame)) ++accepted;
  }
  ASSERT_EQ(accepted, 2'000u);

  // Drain: every flooded packet ends as admitted slow-path work or an
  // accounted kSlowpathShed drop.
  EXPECT_TRUE(wait_for([&] {
    const auto s = router.total_stats();
    return s.slow_path + s.drops(iengine::DropReason::kSlowpathShed) == accepted;
  }));
  router.stop();

  const auto stats = router.total_stats();
  const auto admission = router.slowpath_admission_stats();
  // The bucket's burst is all the flood gets; the rest is shed by rate.
  EXPECT_EQ(stats.slow_path, 100u);
  EXPECT_EQ(stats.drops(iengine::DropReason::kSlowpathShed), accepted - 100u);
  EXPECT_EQ(admission.admitted, 100u);
  EXPECT_EQ(admission.shed_rate, accepted - 100u);

  // Slow-path memory stayed bounded throughout.
  EXPECT_LE(stack.local_deliveries().size(), stack.local_capacity());

  // Conservation: rx == tx + drops + slow_path, in_flight zero.
  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.rx, accepted);
  EXPECT_EQ(audit.in_flight, 0u);
}

TEST(OverloadControl, AuditBalancesOnANormalForwardingRun) {
  const auto table = default_route_table(2);
  apps::Ipv4ForwardApp app(table);

  Testbed testbed({.topo = pcie::Topology::single_node(),
                   .use_gpu = true,
                   .ring_size = 4096,
                   .gpu_pool_workers = 0},
                  RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 84});
  testbed.connect_sink(&traffic);

  Router router(testbed.engine(), testbed.gpus(), app, RouterConfig{.use_gpu = true});
  router.start();
  const u64 accepted = traffic.offer(testbed.ports(), 10'000);
  EXPECT_TRUE(wait_for([&] { return traffic.sunk_packets() == accepted; }));
  router.stop();

  const auto audit = router.audit();
  EXPECT_TRUE(audit.balanced());
  EXPECT_EQ(audit.rx, accepted);
  EXPECT_EQ(audit.tx, accepted);
  EXPECT_EQ(audit.dropped, 0u);
  EXPECT_EQ(audit.in_flight, 0u);
}

}  // namespace
}  // namespace ps::core
