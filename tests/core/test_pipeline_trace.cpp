// PipelineTracer properties, from the unit ring up through the threaded
// router:
//  - spans are well-nested and stage timestamps are monotonic per chunk
//    (in stage order, over the stages that were actually stamped);
//  - ring overflow drops whole spans, never truncates one — every drained
//    span is complete (begin and end stamped);
//  - disabled tracing performs ZERO atomic writes on the hot path,
//    asserted via the tracer's write-instrumentation counter.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "apps/ipsec_gateway.hpp"
#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "telemetry/tracer.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;
using telemetry::PipelineTracer;
using telemetry::Stage;
using telemetry::TraceSpan;

/// Stage timestamps must be non-decreasing in stage order over the stages
/// that were stamped (0 = never stamped; CPU-path spans skip the device).
void expect_stage_monotonic(const TraceSpan& span) {
  u64 prev = 0;
  for (std::size_t k = 0; k < telemetry::kNumStages; ++k) {
    if (span.ts[k] == 0) continue;
    EXPECT_GE(span.ts[k], prev) << "stage " << telemetry::to_string(static_cast<Stage>(k))
                                << " went backwards (chunk " << span.chunk_id << ")";
    prev = span.ts[k];
  }
}

/// A drained span is complete by construction: begin and end stamped, end
/// not before begin. Overflow may lose spans whole, never partially.
void expect_complete(const TraceSpan& span) {
  EXPECT_NE(span.begin_ns(), 0u);
  EXPECT_NE(span.end_ns(), 0u);
  EXPECT_GE(span.end_ns(), span.begin_ns());
}

TEST(PipelineTrace, SpanLifecycleStampsAllStagesInOrder) {
  PipelineTracer tracer(8);
  tracer.set_enabled(true);

  const i32 slot = tracer.begin_span(64);
  ASSERT_NE(slot, PipelineTracer::kNoSlot);
  for (const Stage s : {Stage::kMasterDequeue, Stage::kGather, Stage::kH2d, Stage::kKernel,
                        Stage::kD2h, Stage::kScatter}) {
    tracer.stamp(slot, s);
  }
  tracer.end_span(slot);

  std::vector<TraceSpan> spans;
  EXPECT_EQ(tracer.drain(spans), 1u);
  ASSERT_EQ(spans.size(), 1u);
  const auto& span = spans[0];
  EXPECT_EQ(span.packets, 64u);
  EXPECT_FALSE(span.cpu_path);
  for (std::size_t k = 0; k < telemetry::kNumStages; ++k) EXPECT_NE(span.ts[k], 0u);
  expect_stage_monotonic(span);
  expect_complete(span);
  EXPECT_EQ(tracer.spans_started(), 1u);
  EXPECT_EQ(tracer.spans_completed(), 1u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);

  // Drain is destructive: the same span is never handed out twice.
  EXPECT_EQ(tracer.drain(spans), 0u);
}

TEST(PipelineTrace, CpuPathSpansLeaveDeviceStagesUnstamped) {
  PipelineTracer tracer(8);
  tracer.set_enabled(true);

  const i32 slot = tracer.begin_span(7);
  ASSERT_NE(slot, PipelineTracer::kNoSlot);
  tracer.mark_cpu_path(slot);
  tracer.stamp(slot, Stage::kScatter);
  tracer.end_span(slot);

  std::vector<TraceSpan> spans;
  ASSERT_EQ(tracer.drain(spans), 1u);
  EXPECT_TRUE(spans[0].cpu_path);
  EXPECT_EQ(spans[0].stage(Stage::kH2d), 0u);
  EXPECT_EQ(spans[0].stage(Stage::kKernel), 0u);
  EXPECT_EQ(spans[0].stage(Stage::kD2h), 0u);
  expect_stage_monotonic(spans[0]);
  expect_complete(spans[0]);
}

TEST(PipelineTrace, WrapOntoOpenSpanDropsTheNewSpanWhole) {
  PipelineTracer tracer(4);
  ASSERT_EQ(tracer.capacity(), 4u);
  tracer.set_enabled(true);

  i32 slots[4];
  for (auto& s : slots) {
    s = tracer.begin_span(1);
    ASSERT_NE(s, PipelineTracer::kNoSlot);
  }
  // Ring full of open spans: the next claim must be rejected, and the
  // open spans must be untouched by the rejected claim.
  EXPECT_EQ(tracer.begin_span(1), PipelineTracer::kNoSlot);
  EXPECT_EQ(tracer.spans_dropped(), 1u);

  for (const auto s : slots) tracer.end_span(s);
  std::vector<TraceSpan> spans;
  EXPECT_EQ(tracer.drain(spans), 4u);
  for (const auto& span : spans) expect_complete(span);
  EXPECT_EQ(tracer.spans_started(), 4u);
  EXPECT_EQ(tracer.spans_completed(), 4u);
}

TEST(PipelineTrace, OverwriteLosesWholeSpansNeverTruncates) {
  PipelineTracer tracer(4);
  tracer.set_enabled(true);

  // Two laps of completed spans with no drain in between: the second lap
  // overwrites the first wholesale.
  for (u32 i = 0; i < 8; ++i) {
    const i32 slot = tracer.begin_span(i + 1);
    ASSERT_NE(slot, PipelineTracer::kNoSlot);
    tracer.end_span(slot);
  }
  EXPECT_EQ(tracer.spans_overwritten(), 4u);

  std::vector<TraceSpan> spans;
  EXPECT_EQ(tracer.drain(spans), 4u);
  std::set<u64> ids;
  for (const auto& span : spans) {
    expect_complete(span);
    // Only second-lap spans survive — no first-lap fields bleed through.
    EXPECT_GE(span.packets, 5u);
    ids.insert(span.chunk_id);
  }
  EXPECT_EQ(ids.size(), 4u);
}

TEST(PipelineTrace, DisabledTracingPerformsZeroAtomicWrites) {
  PipelineTracer tracer(64);
  ASSERT_FALSE(tracer.enabled());
  const u64 before = tracer.hot_path_atomic_writes();

  for (int i = 0; i < 1000; ++i) {
    const i32 slot = tracer.begin_span(64);
    EXPECT_EQ(slot, PipelineTracer::kNoSlot);
    tracer.stamp(slot, Stage::kGather);
    tracer.mark_cpu_path(slot);
    tracer.end_span(slot);
  }

  EXPECT_EQ(tracer.hot_path_atomic_writes(), before);
  EXPECT_EQ(tracer.spans_started(), 0u);
  EXPECT_EQ(tracer.spans_completed(), 0u);
  std::vector<TraceSpan> spans;
  EXPECT_EQ(tracer.drain(spans), 0u);
}

// --- through the threaded router ---------------------------------------------

struct RouterTraceFixture {
  route::Ipv4Table table;
  apps::Ipv4ForwardApp app;
  core::Testbed testbed;
  gen::TrafficGen traffic;

  RouterTraceFixture()
      : table(make_table()),
        app(table),
        testbed({.topo = pcie::Topology::single_node(),
                 .use_gpu = true,
                 .ring_size = 4096,
                 .gpu_pool_workers = 0},
                core::RouterConfig{.use_gpu = true}),
        traffic({.frame_size = 64, .seed = 31}) {
    testbed.connect_sink(&traffic);
  }

  static route::Ipv4Table make_table() {
    route::Ipv4Table t;
    const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, 1};
    t.build({&all, 1});
    return t;
  }

  core::RouterConfig router_config() const {
    core::RouterConfig config;
    config.use_gpu = true;
    config.chunk_capacity = 64;
    return config;
  }

  u64 run(core::Router& router, u64 packets) {
    router.start();
    u64 accepted = 0;
    while (accepted < packets) {
      const u64 got = traffic.offer(testbed.ports(), 1'000);
      accepted += got;
      if (got == 0) std::this_thread::sleep_for(1ms);
    }
    // Drain-wait on total_stats() (single-writer atomics); audit()'s
    // job-pool scan is only race-free once the router is stopped.
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto s = router.total_stats();
      if (s.packets_in == accepted &&
          s.packets_out + s.dropped() + s.slow_path == s.packets_in) {
        break;
      }
      std::this_thread::sleep_for(1ms);
    }
    router.stop();
    return accepted;
  }
};

TEST(PipelineTrace, RouterSpansAreWellFormedAndMonotonic) {
  RouterTraceFixture fx;
  // Capacity comfortably above the chunk count so no span is lost and
  // conservation over spans is exact.
  telemetry::PipelineTracer tracer(4096);
  tracer.set_enabled(true);

  core::Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, fx.router_config());
  router.set_tracer(&tracer);
  const u64 accepted = fx.run(router, 20'000);
  ASSERT_GT(accepted, 0u);

  std::vector<TraceSpan> spans;
  tracer.drain(spans);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(tracer.spans_started(), tracer.spans_completed());
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  EXPECT_EQ(spans.size(), tracer.spans_completed());

  // Every chunk the router counted has exactly one completed span, and
  // the spans' packets sum back to the accepted total (well-nestedness:
  // begin/end pairs match 1:1 with chunks, nothing dangling).
  const auto stats = router.total_stats();
  EXPECT_EQ(spans.size(), stats.chunks);
  u64 traced_packets = 0;
  std::set<u64> ids;
  for (const auto& span : spans) {
    expect_complete(span);
    expect_stage_monotonic(span);
    EXPECT_GT(span.packets, 0u);
    traced_packets += span.packets;
    ids.insert(span.chunk_id);
    if (!span.cpu_path) {
      // A GPU-path span visits every Figure-12 stage.
      for (const Stage s : {Stage::kMasterDequeue, Stage::kGather, Stage::kH2d, Stage::kKernel,
                            Stage::kD2h, Stage::kScatter}) {
        EXPECT_NE(span.stage(s), 0u)
            << "GPU span missing stage " << telemetry::to_string(s);
      }
    }
  }
  EXPECT_EQ(traced_packets, accepted);
  EXPECT_EQ(ids.size(), spans.size());  // span identities are unique
}

TEST(PipelineTrace, InPlaceScatterSpansCrossAllEightBoundariesInOrder) {
  // Fig12 property over the PR 8 data path: IPsec shades with the
  // in-place scatter (device results DMA'd straight into the frames) and
  // TX doorbells are batched per settle sweep. Every GPU span must still
  // cross all eight stage boundaries in order — in particular
  // kMasterDequeue must bracket the SPSC hand-off (stamped by the master
  // after its fan-in sweep) and kScatter/kTxDoorbell must bracket the
  // drain_scatter sweep and the batched doorbell flush behind it.
  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x7272, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  apps::IpsecGatewayApp app(sa);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 77});
  testbed.connect_sink(&traffic);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;

  telemetry::PipelineTracer tracer(1u << 14);
  tracer.set_enabled(true);

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  router.set_tracer(&tracer);
  router.start();
  u64 accepted = 0;
  while (accepted < 8'000) {
    const u64 got = traffic.offer(testbed.ports(), 1'000);
    accepted += got;
    if (got == 0) std::this_thread::sleep_for(1ms);
  }
  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto s = router.total_stats();
    if (s.packets_in == accepted &&
        s.packets_out + s.dropped() + s.slow_path == s.packets_in) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  router.stop();

  std::vector<TraceSpan> spans;
  tracer.drain(spans);
  ASSERT_FALSE(spans.empty());

  constexpr Stage kOrder[] = {Stage::kRxRing, Stage::kMasterDequeue, Stage::kGather,
                              Stage::kH2d,    Stage::kKernel,        Stage::kD2h,
                              Stage::kScatter, Stage::kTxDoorbell};
  static_assert(std::size(kOrder) == telemetry::kNumStages);
  u64 gpu_spans = 0;
  for (const auto& span : spans) {
    expect_complete(span);
    expect_stage_monotonic(span);
    if (span.cpu_path) continue;
    ++gpu_spans;
    for (std::size_t k = 0; k < std::size(kOrder); ++k) {
      ASSERT_NE(span.stage(kOrder[k]), 0u)
          << "GPU span missing stage " << telemetry::to_string(kOrder[k]);
      if (k > 0) {
        EXPECT_GE(span.stage(kOrder[k]), span.stage(kOrder[k - 1]))
            << telemetry::to_string(kOrder[k]) << " precedes "
            << telemetry::to_string(kOrder[k - 1]) << " (chunk " << span.chunk_id << ")";
      }
    }
  }
  // The in-place path must actually have been exercised (this config
  // shades every chunk on the GPU unless backpressure diverts it).
  EXPECT_GT(gpu_spans, 0u);
}

TEST(PipelineTrace, RouterWithDisabledTracerWritesNothing) {
  RouterTraceFixture fx;
  telemetry::PipelineTracer tracer(4096);  // attached but disabled

  core::Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, fx.router_config());
  router.set_tracer(&tracer);
  const u64 accepted = fx.run(router, 10'000);
  ASSERT_GT(accepted, 0u);

  // The tracer stayed wired into the hot path the whole run, yet wrote
  // nothing: zero atomic writes, zero spans.
  EXPECT_EQ(tracer.hot_path_atomic_writes(), 0u);
  EXPECT_EQ(tracer.spans_started(), 0u);
  std::vector<TraceSpan> spans;
  EXPECT_EQ(tracer.drain(spans), 0u);
}

}  // namespace
}  // namespace ps
