// Telemetry conservation properties: the registry's view of the router
// must obey the same packet-conservation identity Router::audit() proves,
//
//   rx == tx + drops_total + slow_path + in_flight,
//
// exactly (not approximately) once the router has stopped, and every
// kCounter metric must be monotonically non-decreasing across snapshots
// while traffic flows. The snapshot thread runs concurrently with the
// data path on purpose: under TSan this is the "no data race in
// MetricsRegistry::snapshot() under concurrent traffic" test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"
#include "telemetry/metrics.hpp"

namespace ps {
namespace {

using namespace std::chrono_literals;

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 10'000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

route::Ipv4Table default_route_table(route::NextHop out_port) {
  route::Ipv4Table table;
  const route::Ipv4Prefix all{net::Ipv4Addr(0), 0, out_port};
  table.build({&all, 1});
  return table;
}

/// Every kCounter value in `cur` must be >= its value in `prev`.
/// (Gauges — in-flight, health, cpu/gpu attribution — may move both ways.)
void expect_counters_monotonic(const telemetry::MetricsSnapshot& prev,
                               const telemetry::MetricsSnapshot& cur,
                               std::atomic<u64>& violations) {
  for (const auto& v : cur.values) {
    if (v.kind != telemetry::MetricKind::kCounter) continue;
    const auto* before = prev.find(v.name);
    if (before != nullptr && v.value < before->value) violations.fetch_add(1);
  }
}

/// One randomized run: traffic + fault seeds in, conservation out.
void run_conservation_case(u32 traffic_seed, u32 fault_seed, bool with_faults) {
  const auto table = default_route_table(1);
  apps::Ipv4ForwardApp app(table);

  core::Testbed testbed({.topo = pcie::Topology::single_node(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 0},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = traffic_seed});
  testbed.connect_sink(&traffic);

  core::RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 64;
  config.gpu_max_retries = 2;
  config.gpu_backoff_us = 1;
  config.gpu_backoff_cap_us = 50;
  config.gpu_fail_threshold = 2;
  config.gpu_probe_interval_batches = 2;

  fault::FaultInjector inj(fault_seed);
  if (with_faults) {
    // A GPU failure window (trip + recovery), a corruption burst, and a
    // ring-full burst: conservation must survive every path.
    inj.add_rule({.point = "gpu.launch", .after = 10, .count = 8});
    inj.add_rule({.point = "nic.rx_corrupt", .after = 50, .count = 40});
    inj.add_rule({.point = "nic.rx_ring_full", .after = 800, .count = 200});
    testbed.set_fault_injector(&inj);
  }

  core::Router router(testbed.engine(), testbed.gpus(), app, config);
  if (with_faults) router.set_fault_injector(&inj);

  telemetry::MetricsRegistry registry;
  router.set_telemetry(&registry);
  router.start();

  // Concurrent snapshot thread: monotonicity is checked on every pair of
  // consecutive snapshots, and the loop itself is the TSan race probe.
  std::atomic<bool> snapshotting{true};
  std::atomic<u64> monotonic_violations{0};
  std::atomic<u64> snapshots_taken{0};
  std::thread snapper([&] {
    telemetry::MetricsSnapshot prev = registry.snapshot();
    while (snapshotting.load(std::memory_order_relaxed)) {
      telemetry::MetricsSnapshot cur = registry.snapshot();
      EXPECT_GT(cur.sequence, prev.sequence);
      expect_counters_monotonic(prev, cur, monotonic_violations);
      prev = std::move(cur);
      snapshots_taken.fetch_add(1);
    }
  });

  u64 accepted = 0;
  for (int pulse = 0; pulse < 20; ++pulse) {
    accepted += traffic.offer(testbed.ports(), 1'000);
    std::this_thread::sleep_for(1ms);
  }

  // Let the pipeline drain. offer() returns the NIC-accepted count (ring
  // overflow already excluded), so everything accepted must reach the
  // workers. Poll total_stats() (single-writer atomics) rather than
  // audit(), whose job-pool scan is only race-free once stopped.
  EXPECT_TRUE(wait_for([&] {
    const auto s = router.total_stats();
    return s.packets_in == accepted &&
           s.packets_out + s.dropped() + s.slow_path == s.packets_in;
  })) << "pipeline failed to drain";

  router.stop();
  snapshotting.store(false);
  snapper.join();

  EXPECT_EQ(monotonic_violations.load(), 0u);
  EXPECT_GT(snapshots_taken.load(), 0u);

  // --- exact conservation, registry vs audit --------------------------------
  const auto snap = registry.snapshot();
  const auto audit = router.audit();
  ASSERT_TRUE(audit.balanced());

  EXPECT_EQ(snap.value("router.rx_packets"), audit.rx);
  EXPECT_EQ(snap.value("router.tx_packets"), audit.tx);
  EXPECT_EQ(snap.value("router.drops_total"), audit.dropped);
  EXPECT_EQ(snap.value("router.slow_path"), audit.slow_path);
  EXPECT_EQ(snap.value("router.in_flight_packets"), audit.in_flight);
  EXPECT_EQ(snap.value("router.in_flight_packets"), 0u);

  EXPECT_EQ(snap.value("router.rx_packets"),
            snap.value("router.tx_packets") + snap.value("router.drops_total") +
                snap.value("router.slow_path") + snap.value("router.in_flight_packets"));

  // Per-reason drop metrics must sum to the total.
  u64 by_reason = 0;
  for (const auto& v : snap.values) {
    if (v.name.rfind("router.drops.", 0) == 0) by_reason += v.value;
  }
  EXPECT_EQ(by_reason, snap.value("router.drops_total"));

  // The registry's counters are the router's counters, not a parallel set.
  const auto stats = router.total_stats();
  EXPECT_EQ(snap.value("router.rx_packets"), stats.packets_in);
  EXPECT_EQ(snap.value("router.tx_packets"), stats.packets_out);
  EXPECT_EQ(snap.value("router.chunks"), stats.chunks);

  if (with_faults) {
    EXPECT_EQ(snap.value("router.drops.corrupted"),
              stats.drops(iengine::DropReason::kCorrupted));
    EXPECT_EQ(snap.value("router.drops.corrupted"), inj.stats("nic.rx_corrupt").fired);
    // The GPU window tripped the watchdog; the registry saw it.
    EXPECT_EQ(snap.value("gpu.node0.trips"), router.gpu_health(0).trips);
    EXPECT_EQ(snap.value("gpu.node0.failed_batches"), router.gpu_health(0).failed_batches);
  }

  // NIC wire-side accounting is exported too (hw drops live before rx).
  u64 nic_rx = 0;
  for (std::size_t p = 0; p < testbed.ports().size(); ++p) {
    nic_rx += snap.value("nic.port" + std::to_string(p) + ".rx_packets");
  }
  EXPECT_EQ(nic_rx, audit.rx);
}

TEST(TelemetryConservation, CleanTrafficSnapshotMatchesAuditExactly) {
  run_conservation_case(/*traffic_seed=*/11, /*fault_seed=*/1, /*with_faults=*/false);
}

TEST(TelemetryConservation, FaultSeededTrafficStillConserves) {
  run_conservation_case(/*traffic_seed=*/23, /*fault_seed=*/9, /*with_faults=*/true);
}

TEST(TelemetryConservation, RandomizedSeedsSweep) {
  for (const u32 seed : {41u, 43u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_conservation_case(seed, seed + 1, /*with_faults=*/(seed % 2) != 0);
  }
}

}  // namespace
}  // namespace ps
