// Steady-state model driver: functional correctness of the modeled
// pipeline plus the headline shape checks (Figure 6 anchors).
#include <gtest/gtest.h>

#include "apps/ipv4_forward.hpp"
#include "core/model_driver.hpp"
#include "route/rib_gen.hpp"

namespace ps::core {
namespace {

TestbedConfig paper_testbed(bool use_gpu) {
  return TestbedConfig{.topo = pcie::Topology::paper_server(),
                       .use_gpu = use_gpu,
                       .ring_size = 4096};
}

TEST(ModelDriver, MinimalForwardingHitsTheDualIohCeiling) {
  // Figure 6: minimal forwarding of 64 B packets lands around 41 Gbps,
  // bounded by the dual-IOH anomaly, not by CPU.
  Testbed testbed(paper_testbed(false), RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 1});
  testbed.connect_sink(&traffic);

  ModelDriver driver(testbed, nullptr, RouterConfig{.use_gpu = false});
  const auto result = driver.run(traffic, 100'000);

  EXPECT_EQ(result.accepted, result.offered);
  EXPECT_EQ(result.forwarded, result.offered);
  EXPECT_NEAR(result.output_gbps, 41.1, 3.0);
  EXPECT_EQ(result.bottleneck.substr(0, 3), "ioh");
}

TEST(ModelDriver, RxOnlyFasterThanForwarding) {
  Testbed rx_bed(paper_testbed(false), RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 2});
  rx_bed.connect_sink(&traffic);
  ModelDriver rx_driver(rx_bed, nullptr, RouterConfig{.use_gpu = false});
  rx_driver.set_io_mode(ModelDriver::IoMode::kRxOnly);
  const auto rx = rx_driver.run(traffic, 100'000);

  Testbed fwd_bed(paper_testbed(false), RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic2({.frame_size = 64, .seed = 2});
  fwd_bed.connect_sink(&traffic2);
  ModelDriver fwd_driver(fwd_bed, nullptr, RouterConfig{.use_gpu = false});
  const auto fwd = fwd_driver.run(traffic2, 100'000);

  // Figure 6: RX-only ~53 Gbps > forwarding ~41 Gbps at 64 B.
  EXPECT_GT(rx.input_gbps, fwd.output_gbps + 5.0);
  EXPECT_NEAR(rx.input_gbps, 53.1, 5.0);
}

TEST(ModelDriver, TxOnlyApproachesLineRate) {
  Testbed testbed(paper_testbed(false), RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 3});
  testbed.connect_sink(&traffic);
  ModelDriver driver(testbed, nullptr, RouterConfig{.use_gpu = false});
  driver.set_io_mode(ModelDriver::IoMode::kTxOnly);
  const auto result = driver.run(traffic, 100'000);

  // Figure 6: TX reaches 79.3 Gbps with 64 B packets.
  EXPECT_NEAR(result.output_gbps, 79.3, 6.0);
}

TEST(ModelDriver, NodeCrossingStaysAbove40G) {
  Testbed testbed(paper_testbed(false), RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 4});
  testbed.connect_sink(&traffic);
  ModelDriver driver(testbed, nullptr, RouterConfig{.use_gpu = false});
  driver.set_node_crossing(true);
  const auto result = driver.run(traffic, 100'000);
  EXPECT_GT(result.output_gbps, 38.0);

  // Node crossing: everything received on node 0's ports must leave on
  // node 1's ports and vice versa.
  u64 crossed = 0;
  for (int p = 4; p < 8; ++p) crossed += testbed.port(p).tx_totals().packets;
  EXPECT_GT(crossed, 0u);
}

TEST(ModelDriver, SingleCoreBatchEffect) {
  // The Figure 5 shape: batch size 1 is an order of magnitude slower than
  // batch size 64 on one core.
  auto run_with_batch = [](u32 batch) {
    TestbedConfig cfg{.topo = pcie::Topology::single_node(),
                      .use_gpu = false,
                      .ring_size = 4096};
    RouterConfig rcfg{.use_gpu = false, .chunk_capacity = batch};
    Testbed testbed(cfg, rcfg);
    gen::TrafficGen traffic({.frame_size = 64, .seed = 5});
    testbed.connect_sink(&traffic);
    ModelDriver driver(testbed, nullptr, rcfg);
    driver.set_active_workers(1);
    return driver.run(traffic, 50'000).output_gbps;
  };

  const double batch1 = run_with_batch(1);
  const double batch64 = run_with_batch(64);
  EXPECT_NEAR(batch1, 0.78, 0.2);
  EXPECT_NEAR(batch64, 10.5, 2.0);
  EXPECT_GT(batch64 / batch1, 10.0);  // the paper reports 13.5x
}

TEST(ModelDriver, GpuAppProcessesEverythingFunctionally) {
  // With a GPU shader attached, every accepted packet must still come out
  // (the model driver runs real lookups on the simulated device).
  Testbed testbed(paper_testbed(true), RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 6});
  testbed.connect_sink(&traffic);

  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 2}};  // default -> port 2
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  ModelDriver driver(testbed, &app, RouterConfig{.use_gpu = true});
  const auto result = driver.run(traffic, 20'000);
  EXPECT_EQ(result.forwarded, result.accepted);
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(traffic.sunk_on_port(2), result.forwarded);
}

}  // namespace
}  // namespace ps::core
