// Master back-pressure: when the shading queue is full, workers fall back
// to the CPU path instead of stalling (the degenerate form of
// opportunistic offloading) — no packets are lost.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

namespace ps::core {
namespace {

using namespace std::chrono_literals;

/// A shader whose GPU stage is artificially slow, so the master input
/// queue backs up under load.
class SlowShader final : public Shader {
 public:
  const char* name() const override { return "slow-shader"; }

  void pre_shade(ShaderJob& job) override {
    for (u32 i = 0; i < job.chunk.count(); ++i) job.gpu_index.push_back(i);
    job.gpu_items = job.chunk.count();
  }

  ShadeOutcome shade(GpuContext&, std::span<ShaderJob* const> jobs, Picos submit) override {
    std::this_thread::sleep_for(2ms);  // pathological kernel
    for (auto* job : jobs) job->gpu_output.resize(job->gpu_items);
    return {gpu::GpuStatus::kOk, submit};
  }

  void shade_cpu(ShaderJob& job) override { job.gpu_output.resize(job.gpu_items); }

  void post_shade(ShaderJob& job) override { route_all(job.chunk); }

  void process_cpu(iengine::PacketChunk& chunk) override { route_all(chunk); }

 private:
  static void route_all(iengine::PacketChunk& chunk) {
    for (u32 i = 0; i < chunk.count(); ++i) {
      chunk.set_verdict(i, iengine::PacketVerdict::kForward);
      chunk.set_out_port(i, 1);
    }
  }
};

TEST(RouterBackpressure, FullMasterQueueFallsBackToCpu) {
  Testbed testbed({.topo = pcie::Topology::paper_server(),
                   .use_gpu = true,
                   .ring_size = 8192,
                   .gpu_pool_workers = 0},
                  RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 100});
  testbed.connect_sink(&traffic);

  SlowShader shader;
  RouterConfig config;
  config.use_gpu = true;
  config.chunk_capacity = 32;          // many small chunks
  config.master_queue_capacity = 2;    // tiny: backs up immediately
  config.pipeline_depth = 4;
  Router router(testbed.engine(), testbed.gpus(), shader, config);
  router.start();

  const u64 offered = 20'000;
  traffic.offer(testbed.ports(), offered);

  const auto deadline = std::chrono::steady_clock::now() + 20s;
  while (traffic.sunk_packets() < offered && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  router.stop();

  const auto stats = router.total_stats();
  EXPECT_EQ(stats.packets_out, offered);        // nothing lost
  EXPECT_GT(stats.cpu_processed, 0u);           // the fallback fired
  EXPECT_GT(stats.gpu_processed, 0u);           // and the GPU still did work
  EXPECT_EQ(stats.cpu_processed + stats.gpu_processed, offered);
}

}  // namespace
}  // namespace ps::core
