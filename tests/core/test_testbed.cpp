// Testbed wiring: queue counts that match the router layout, ledger and
// sink propagation, and the NUMA-blind flag reaching the ports.
#include <gtest/gtest.h>

#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

namespace ps::core {
namespace {

TEST(Testbed, GpuModeReservesAMasterCorePerNode) {
  Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true},
                  RouterConfig{.use_gpu = true});
  EXPECT_EQ(testbed.workers_per_node(), 3);  // 4 cores - 1 master
  // Each port carries one RX queue per worker and one TX queue per core.
  EXPECT_EQ(testbed.port(0).config().num_rx_queues, 3);
  EXPECT_EQ(testbed.port(0).config().num_tx_queues, 8);
  EXPECT_EQ(testbed.gpus().size(), 2u);
}

TEST(Testbed, CpuOnlyModeUsesEveryCoreAsWorker) {
  Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = false},
                  RouterConfig{.use_gpu = false});
  EXPECT_EQ(testbed.workers_per_node(), 4);
  EXPECT_EQ(testbed.port(0).config().num_rx_queues, 4);
  EXPECT_TRUE(testbed.gpus().empty());
}

TEST(Testbed, LedgerPropagatesToPortsAndGpus) {
  Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true},
                  RouterConfig{.use_gpu = true});
  perf::CostLedger ledger;
  testbed.set_ledger(&ledger);

  gen::TrafficGen traffic({.seed = 1});
  ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohD2h, 0}), 0);

  auto buffer = testbed.gpus()[0]->alloc(64);
  testbed.gpus()[0]->memcpy_h2d(buffer, 0, std::vector<u8>(64, 0));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kGpuCopy, 0}), 0);

  // Detaching stops further charges.
  testbed.set_ledger(nullptr);
  const Picos before = ledger.busy({perf::ResourceKind::kIohD2h, 0});
  ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_EQ(ledger.busy({perf::ResourceKind::kIohD2h, 0}), before);
}

TEST(Testbed, SinkReceivesAllTransmissions) {
  Testbed testbed({.topo = pcie::Topology::single_node(), .use_gpu = false},
                  RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 2});
  testbed.connect_sink(&traffic);
  const auto frame = traffic.next_frame();
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(testbed.port(p).transmit(0, frame));
  }
  EXPECT_EQ(traffic.sunk_packets(), 4u);
}

TEST(Testbed, NumaBlindEngineFlagsReachThePorts) {
  TestbedConfig cfg{.topo = pcie::Topology::paper_server(), .use_gpu = false};
  cfg.engine.numa_aware = false;
  Testbed testbed(cfg, RouterConfig{.use_gpu = false});

  // NUMA-blind DMA charges both IOHs (the §4.5 remote traversal).
  perf::CostLedger ledger;
  testbed.set_ledger(&ledger);
  gen::TrafficGen traffic({.seed = 3});
  ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohD2h, 0}), 0);
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohD2h, 1}), 0);
}

TEST(Testbed, NumaAwareChargesOnlyTheLocalIoh) {
  Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = false},
                  RouterConfig{.use_gpu = false});
  perf::CostLedger ledger;
  testbed.set_ledger(&ledger);
  gen::TrafficGen traffic({.seed = 4});
  ASSERT_TRUE(testbed.port(0).receive_frame(traffic.next_frame()));
  EXPECT_GT(ledger.busy({perf::ResourceKind::kIohD2h, 0}), 0);
  EXPECT_EQ(ledger.busy({perf::ResourceKind::kIohD2h, 1}), 0);
}

}  // namespace
}  // namespace ps::core
