// The real-threaded PacketShader runtime: worker/master pipelines, CPU-only
// mode, opportunistic offloading, and per-flow ordering (section 5.3).
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <mutex>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/model_driver.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::core {
namespace {

using namespace std::chrono_literals;

/// Thread-safe sink that records every delivered frame.
class CollectingSink final : public nic::WireSink {
 public:
  void on_frame(int port, std::span<const u8> frame) override {
    std::lock_guard lock(mu_);
    frames_.emplace_back(port, std::vector<u8>(frame.begin(), frame.end()));
  }

  std::vector<std::pair<int, std::vector<u8>>> take() {
    std::lock_guard lock(mu_);
    return std::move(frames_);
  }

  std::size_t count() const {
    std::lock_guard lock(mu_);
    return frames_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<int, std::vector<u8>>> frames_;
};

/// Route everything to port `out` via a default route.
route::Ipv4Table default_route_table(route::NextHop out) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, out}};
  table.build(rib);
  return table;
}

bool wait_for(const std::function<bool()>& cond, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

struct RouterFixture {
  Testbed testbed;
  gen::TrafficGen traffic{{.seed = 11}};
  route::Ipv4Table table = default_route_table(1);
  apps::Ipv4ForwardApp app{table};

  explicit RouterFixture(bool use_gpu)
      : testbed(TestbedConfig{.topo = pcie::Topology::paper_server(),
                              .use_gpu = use_gpu,
                              .ring_size = 4096,
                              .gpu_pool_workers = 2},
                RouterConfig{.use_gpu = use_gpu}) {
    testbed.connect_sink(&traffic);
  }
};

TEST(Router, GpuModeForwardsAllTraffic) {
  RouterFixture fx(/*use_gpu=*/true);
  RouterConfig config;
  config.use_gpu = true;
  Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, config);

  // 2 nodes x 3 workers in GPU mode.
  EXPECT_EQ(router.num_workers(), 6);
  router.start();

  const u64 offered = 3000;
  const u64 accepted = fx.traffic.offer(fx.testbed.ports(), offered);
  ASSERT_EQ(accepted, offered);

  ASSERT_TRUE(wait_for([&] { return fx.traffic.sunk_packets() >= offered; }));
  router.stop();

  const auto stats = router.total_stats();
  EXPECT_EQ(stats.packets_in, offered);
  EXPECT_EQ(stats.packets_out, offered);
  EXPECT_EQ(stats.gpu_processed, offered);
  EXPECT_EQ(stats.dropped(), 0u);
  // Default route: everything must leave via port 1.
  EXPECT_EQ(fx.traffic.sunk_on_port(1), offered);
}

TEST(Router, CpuOnlyModeUsesAllCoresAsWorkers) {
  RouterFixture fx(/*use_gpu=*/false);
  RouterConfig config;
  config.use_gpu = false;
  Router router(fx.testbed.engine(), {}, fx.app, config);

  EXPECT_EQ(router.num_workers(), 8);  // 2 nodes x 4 cores
  router.start();

  const u64 offered = 2000;
  fx.traffic.offer(fx.testbed.ports(), offered);
  ASSERT_TRUE(wait_for([&] { return fx.traffic.sunk_packets() >= offered; }));
  router.stop();

  const auto stats = router.total_stats();
  EXPECT_EQ(stats.packets_out, offered);
  EXPECT_EQ(stats.cpu_processed, offered);
  EXPECT_EQ(stats.gpu_processed, 0u);
}

TEST(Router, ForwardedPacketsHaveTtlDecremented) {
  RouterFixture fx(/*use_gpu=*/true);
  CollectingSink sink;
  fx.testbed.connect_sink(&sink);

  RouterConfig config;
  Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, config);
  router.start();

  net::FrameSpec spec;
  spec.ttl = 64;
  auto frame = net::build_udp_ipv4(spec, net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2));
  ASSERT_TRUE(fx.testbed.port(0).receive_frame(frame));

  ASSERT_TRUE(wait_for([&] { return sink.count() >= 1; }));
  router.stop();

  const auto frames = const_cast<CollectingSink&>(sink).take();
  ASSERT_EQ(frames.size(), 1u);
  net::PacketView view;
  std::vector<u8> out = frames[0].second;
  ASSERT_EQ(net::parse_packet(out.data(), static_cast<u32>(out.size()), view),
            net::ParseStatus::kOk);  // checksum still valid after rewrite
  EXPECT_EQ(view.ipv4().ttl, 63);
}

TEST(Router, OpportunisticOffloadTakesCpuPathUnderLightLoad) {
  RouterFixture fx(/*use_gpu=*/true);
  RouterConfig config;
  config.opportunistic_threshold = 1'000'000;  // everything is "light load"
  Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, config);
  router.start();

  const u64 offered = 500;
  fx.traffic.offer(fx.testbed.ports(), offered);
  ASSERT_TRUE(wait_for([&] { return fx.traffic.sunk_packets() >= offered; }));
  router.stop();

  const auto stats = router.total_stats();
  EXPECT_EQ(stats.cpu_processed, offered);
  EXPECT_EQ(stats.gpu_processed, 0u);
}

TEST(Router, PerFlowOrderIsPreserved) {
  // Section 5.3: RSS flow affinity + FIFO queues keep a flow in order end
  // to end, even with chunk pipelining and gather/scatter in play.
  RouterFixture fx(/*use_gpu=*/true);
  CollectingSink sink;
  fx.testbed.connect_sink(&sink);

  RouterConfig config;
  config.pipeline_depth = 4;
  config.gather_max = 4;
  Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, config);
  router.start();

  constexpr u32 kFlows = 5;
  constexpr u32 kPerFlow = 200;
  u32 sent = 0;
  for (u32 seq = 0; seq < kPerFlow; ++seq) {
    for (u32 flow = 0; flow < kFlows; ++flow) {
      const auto frame = fx.traffic.frame_for_flow(flow, seq);
      if (fx.testbed.port(static_cast<int>(flow % 4)).receive_frame(frame)) ++sent;
    }
  }

  ASSERT_TRUE(wait_for([&] { return sink.count() >= sent; }));
  router.stop();

  std::map<u32, u32> last_seq;
  for (const auto& [port, frame] : sink.take()) {
    const std::size_t payload = net::kMinUdpIpv4Frame;
    ASSERT_GE(frame.size(), payload + 8);
    const u32 flow = load_be32(frame.data() + payload);
    const u32 seq = load_be32(frame.data() + payload + 4);
    const auto it = last_seq.find(flow);
    if (it != last_seq.end()) {
      EXPECT_GT(seq, it->second) << "flow " << flow << " reordered";
    }
    last_seq[flow] = seq;
  }
  EXPECT_EQ(last_seq.size(), kFlows);
}

TEST(Router, StopIsIdempotentAndRestartable) {
  RouterFixture fx(/*use_gpu=*/true);
  RouterConfig config;
  Router router(fx.testbed.engine(), fx.testbed.gpus(), fx.app, config);
  router.start();
  router.stop();
  router.stop();  // no-op
  SUCCEED();
}

}  // namespace
}  // namespace ps::core
