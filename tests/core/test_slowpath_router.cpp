// Slow-path integration: TTL-expired packets through the threaded router
// produce ICMP Time Exceeded replies out of the ingress port, and
// router-addressed packets reach the host stack's local delivery queue.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "slowpath/host_stack.hpp"

namespace ps::core {
namespace {

using namespace std::chrono_literals;

TEST(SlowPathRouter, TtlExpiryTriggersIcmpReply) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  Testbed testbed({.topo = pcie::Topology::paper_server(),
                   .use_gpu = true,
                   .ring_size = 4096,
                   .gpu_pool_workers = 2},
                  RouterConfig{.use_gpu = true});
  gen::TrafficGen sink({.seed = 70});
  testbed.connect_sink(&sink);

  slowpath::HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  Router router(testbed.engine(), testbed.gpus(), app, RouterConfig{.use_gpu = true});
  router.set_host_stack(&stack);
  router.start();

  // One healthy packet and one with TTL=1, both into port 3.
  net::FrameSpec healthy;
  net::FrameSpec dying;
  dying.ttl = 1;
  ASSERT_TRUE(testbed.port(3).receive_frame(
      net::build_udp_ipv4(healthy, net::Ipv4Addr(10, 0, 0, 9), net::Ipv4Addr(20, 0, 0, 1))));
  ASSERT_TRUE(testbed.port(3).receive_frame(
      net::build_udp_ipv4(dying, net::Ipv4Addr(10, 0, 0, 9), net::Ipv4Addr(20, 0, 0, 1))));

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (sink.sunk_packets() < 2 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  router.stop();

  // Healthy packet forwarded to port 1; ICMP reply emitted on ingress 3.
  EXPECT_EQ(sink.sunk_on_port(1), 1u);
  EXPECT_EQ(sink.sunk_on_port(3), 1u);
  EXPECT_EQ(stack.stats().icmp_time_exceeded, 1u);
  EXPECT_EQ(router.total_stats().slow_path, 1u);
}

TEST(SlowPathRouter, LocalTrafficDeliveredToHostStack) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  apps::Ipv4ForwardApp app(table);

  Testbed testbed({.topo = pcie::Topology::paper_server(),
                   .use_gpu = false,
                   .ring_size = 4096},
                  RouterConfig{.use_gpu = false});
  gen::TrafficGen sink({.seed = 71});
  testbed.connect_sink(&sink);

  slowpath::HostStack stack(net::Ipv4Addr(192, 0, 2, 1));
  Router router(testbed.engine(), {}, app, RouterConfig{.use_gpu = false});
  router.set_host_stack(&stack);
  router.start();

  // A BGP-ish packet addressed to the router itself. The fast path only
  // slow-paths on TTL/ethertype, so give it TTL 1 AND the router address:
  // the stack must prefer local delivery over ICMP.
  net::FrameSpec spec;
  spec.ttl = 1;
  ASSERT_TRUE(testbed.port(0).receive_frame(
      net::build_udp_ipv4(spec, net::Ipv4Addr(8, 8, 8, 8), net::Ipv4Addr(192, 0, 2, 1))));

  // Poll through the router's locked snapshot: reading stack.stats()
  // directly here would race the worker feeding the stack.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (router.host_stack_stats().delivered_locally < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  router.stop();

  EXPECT_EQ(stack.stats().delivered_locally, 1u);
  EXPECT_EQ(stack.stats().icmp_time_exceeded, 0u);
  ASSERT_EQ(stack.local_deliveries().size(), 1u);
}

}  // namespace
}  // namespace ps::core
