// Property tests on the crypto primitives: avalanche, keystream
// uniqueness, tag sensitivity — the structural guarantees the protocol
// pieces rest on.
#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/esp.hpp"
#include "crypto/hmac.hpp"

namespace ps::crypto {
namespace {

int hamming(std::span<const u8> a, std::span<const u8> b) {
  int bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) bits += std::popcount(static_cast<u8>(a[i] ^ b[i]));
  return bits;
}

TEST(CryptoProperties, AesPlaintextAvalanche) {
  // Flipping one plaintext bit flips ~half the ciphertext bits.
  const u8 key[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  Aes128 aes{std::span<const u8, 16>{key, 16}};
  Rng rng(1);

  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    u8 a[16], b[16], ca[16], cb[16];
    for (int i = 0; i < 16; ++i) a[i] = b[i] = static_cast<u8>(rng.next_u64());
    b[rng.next_below(16)] ^= static_cast<u8>(1u << rng.next_below(8));
    aes.encrypt_block(a, ca);
    aes.encrypt_block(b, cb);
    total += hamming({ca, 16}, {cb, 16});
  }
  EXPECT_NEAR(total / trials, 64.0, 6.0);  // 128 bits / 2
}

TEST(CryptoProperties, AesKeyAvalanche) {
  Rng rng(2);
  double total = 0;
  const int trials = 200;
  const u8 plain[16] = {};
  for (int t = 0; t < trials; ++t) {
    u8 k1[16], k2[16], c1[16], c2[16];
    for (int i = 0; i < 16; ++i) k1[i] = k2[i] = static_cast<u8>(rng.next_u64());
    k2[rng.next_below(16)] ^= static_cast<u8>(1u << rng.next_below(8));
    Aes128 a1{std::span<const u8, 16>{k1, 16}}, a2{std::span<const u8, 16>{k2, 16}};
    a1.encrypt_block(plain, c1);
    a2.encrypt_block(plain, c2);
    total += hamming({c1, 16}, {c2, 16});
  }
  EXPECT_NEAR(total / trials, 64.0, 6.0);
}

TEST(CryptoProperties, RoundKeysAreAllDistinct) {
  const u8 key[16] = {};
  Aes128 aes{std::span<const u8, 16>{key, 16}};
  const auto schedule = aes.round_keys();
  for (int i = 0; i < 11; ++i) {
    for (int j = i + 1; j < 11; ++j) {
      EXPECT_NE(0, std::memcmp(schedule.data() + i * 16, schedule.data() + j * 16, 16))
          << i << "," << j;
    }
  }
}

TEST(CryptoProperties, CtrKeystreamUniquePerIv) {
  // Same key, different IVs must give unrelated keystreams — the property
  // the per-packet IV derivation in ESP relies on.
  const u8 key[16] = {9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9};
  Aes128 aes{std::span<const u8, 16>{key, 16}};
  const u8 nonce[4] = {1, 2, 3, 4};

  std::vector<u8> zeros(256, 0);
  auto stream_for = [&](u64 iv_value) {
    u8 iv[8];
    store_be64(iv, iv_value);
    auto data = zeros;
    aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
    return data;
  };
  const auto s1 = stream_for(1);
  const auto s2 = stream_for(2);
  EXPECT_NEAR(hamming(s1, s2), 256 * 4, 256);  // ~half the bits differ
}

TEST(CryptoProperties, CtrBlockCountersDoNotCollide) {
  // Keystream block i under IV x must differ from block i+1 and from the
  // same block index under IV x+1 (counter-block uniqueness).
  const u8 key[16] = {5};
  Aes128 aes{std::span<const u8, 16>{key, 16}};
  const u8 nonce[4] = {};
  u8 iv1[8] = {}, iv2[8] = {};
  iv2[7] = 1;

  u8 b1[16] = {}, b2[16] = {}, b3[16] = {};
  aes_ctr_crypt_block(aes.round_keys().data(), nonce, iv1, 0, b1, 16);
  aes_ctr_crypt_block(aes.round_keys().data(), nonce, iv1, 1, b2, 16);
  aes_ctr_crypt_block(aes.round_keys().data(), nonce, iv2, 0, b3, 16);
  EXPECT_NE(0, std::memcmp(b1, b2, 16));
  EXPECT_NE(0, std::memcmp(b1, b3, 16));
  EXPECT_NE(0, std::memcmp(b2, b3, 16));
}

class HmacLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HmacLengthTest, OneBitFlipsChangeTheTag) {
  Rng rng(GetParam() + 3);
  std::vector<u8> key(20);
  for (auto& b : key) b = static_cast<u8>(rng.next_u64());
  std::vector<u8> msg(GetParam());
  for (auto& b : msg) b = static_cast<u8>(rng.next_u64());

  const auto tag = hmac_sha1_96(key, msg);
  if (!msg.empty()) {
    auto tampered = msg;
    tampered[rng.next_below(tampered.size())] ^= 0x01;
    EXPECT_NE(tag, hmac_sha1_96(key, tampered));
  }
  auto wrong_key = key;
  wrong_key[0] ^= 0x80;
  EXPECT_NE(tag, hmac_sha1_96(wrong_key, msg));
}

INSTANTIATE_TEST_SUITE_P(Lengths, HmacLengthTest,
                         ::testing::Values(0, 1, 55, 56, 63, 64, 65, 127, 128, 1514));

TEST(CryptoProperties, EspFramesForSamePayloadDiffer) {
  // Sequence-derived IVs: encrypting the same inner packet twice must give
  // different ciphertext (no deterministic leakage across packets).
  auto sa = SecurityAssociation::make_test_sa(1, net::Ipv4Addr(1, 1, 1, 1),
                                              net::Ipv4Addr(2, 2, 2, 2));
  const auto frame =
      net::build_udp_ipv4({.frame_size = 128}, net::Ipv4Addr(9, 9, 9, 9), net::Ipv4Addr(8, 8, 8, 8));
  const auto t1 = esp_encapsulate(sa, frame);
  const auto t2 = esp_encapsulate(sa, frame);
  ASSERT_EQ(t1.size(), t2.size());
  // Payload region (after the 50-byte outer headers) must differ widely.
  EXPECT_GT(hamming({t1.data() + 50, t1.size() - 50}, {t2.data() + 50, t2.size() - 50}),
            static_cast<int>((t1.size() - 50) * 2));
}

TEST(CryptoProperties, CiphertextLooksUniform) {
  // Byte histogram of a long ESP ciphertext should be roughly flat — a
  // cheap smoke test against accidentally disabled encryption.
  auto sa = SecurityAssociation::make_test_sa(2, net::Ipv4Addr(1, 1, 1, 1),
                                              net::Ipv4Addr(2, 2, 2, 2));
  std::vector<int> histogram(256, 0);
  u64 bytes = 0;
  for (int i = 0; i < 200; ++i) {
    const auto frame = net::build_udp_ipv4({.frame_size = 1514}, net::Ipv4Addr(9, 9, 9, 9),
                                           net::Ipv4Addr(8, 8, 8, 8));
    const auto tunnel = esp_encapsulate(sa, frame);
    for (std::size_t k = 50; k + 12 < tunnel.size(); ++k) {
      ++histogram[tunnel[k]];
      ++bytes;
    }
  }
  const double expected = static_cast<double>(bytes) / 256.0;
  for (int v = 0; v < 256; ++v) {
    EXPECT_NEAR(histogram[v], expected, expected * 0.2) << "byte value " << v;
  }
}

}  // namespace
}  // namespace ps::crypto
