// SHA-1 against FIPS 180-1 vectors and HMAC-SHA1 against RFC 2202.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha1.hpp"

namespace ps::crypto {
namespace {

std::string to_hex(std::span<const u8> bytes) {
  std::string s;
  for (const u8 b : bytes) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    s += buf;
  }
  return s;
}

std::span<const u8> bytes_of(const char* s) {
  return {reinterpret_cast<const u8*>(s), std::strlen(s)};
}

TEST(Sha1, Fips180Abc) {
  EXPECT_EQ(to_hex(sha1(bytes_of("abc"))), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Fips180TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha1(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyMessage) {
  EXPECT_EQ(to_hex(sha1({})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const std::vector<u8> chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  std::array<u8, kSha1DigestSize> digest;
  ctx.final(digest);
  EXPECT_EQ(to_hex(digest), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalUpdatesMatchOneShot) {
  const char* msg = "The quick brown fox jumps over the lazy dog";
  const auto expected = sha1(bytes_of(msg));

  // Split at every position: same digest regardless of update boundaries.
  const auto all = bytes_of(msg);
  for (std::size_t split = 0; split <= all.size(); ++split) {
    Sha1 ctx;
    ctx.update(all.subspan(0, split));
    ctx.update(all.subspan(split));
    std::array<u8, kSha1DigestSize> digest;
    ctx.final(digest);
    EXPECT_EQ(digest, expected) << "split at " << split;
  }
}

TEST(Sha1, ContextReusableAfterFinal) {
  Sha1 ctx;
  ctx.update(bytes_of("abc"));
  std::array<u8, kSha1DigestSize> first;
  ctx.final(first);

  ctx.update(bytes_of("abc"));
  std::array<u8, kSha1DigestSize> second;
  ctx.final(second);
  EXPECT_EQ(first, second);
}

TEST(HmacSha1, Rfc2202Case1) {
  std::vector<u8> key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha1(key, bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(to_hex(hmac_sha1(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  std::vector<u8> key(20, 0xaa);
  std::vector<u8> data(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha1(key, data)), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202Case6LongKey) {
  // Key longer than the 64 B block: must be hashed first.
  std::vector<u8> key(80, 0xaa);
  EXPECT_EQ(to_hex(hmac_sha1(key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, TruncationTakesFirst12Bytes) {
  std::vector<u8> key(20, 0x0b);
  const auto full = hmac_sha1(key, bytes_of("Hi There"));
  const auto trunc = hmac_sha1_96(key, bytes_of("Hi There"));
  EXPECT_EQ(0, std::memcmp(full.data(), trunc.data(), kHmacSha1_96Size));
}

TEST(HmacSha1, DifferentKeysDiffer) {
  std::vector<u8> k1(20, 0x01), k2(20, 0x02);
  EXPECT_NE(hmac_sha1(k1, bytes_of("data")), hmac_sha1(k2, bytes_of("data")));
}

}  // namespace
}  // namespace ps::crypto
