// AES-128 and AES-128-CTR against published test vectors.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"

namespace ps::crypto {
namespace {

std::array<u8, 16> from_hex16(const std::string& hex) {
  std::array<u8, 16> out{};
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<u8>(std::stoul(hex.substr(static_cast<std::size_t>(i) * 2, 2), nullptr, 16));
  }
  return out;
}

std::string to_hex(std::span<const u8> bytes) {
  std::string s;
  for (const u8 b : bytes) {
    char buf[3];
    std::snprintf(buf, sizeof(buf), "%02x", b);
    s += buf;
  }
  return s;
}

TEST(Aes128, Fips197AppendixC) {
  // FIPS-197 appendix C.1.
  const auto key = from_hex16("000102030405060708090a0b0c0d0e0f");
  const auto plaintext = from_hex16("00112233445566778899aabbccddeeff");
  Aes128 aes{std::span<const u8, 16>{key}};
  u8 out[16];
  aes.encrypt_block(plaintext.data(), out);
  EXPECT_EQ(to_hex(out), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Fips197AppendixB) {
  const auto key = from_hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto plaintext = from_hex16("3243f6a8885a308d313198a2e0370734");
  Aes128 aes{std::span<const u8, 16>{key}};
  u8 out[16];
  aes.encrypt_block(plaintext.data(), out);
  EXPECT_EQ(to_hex(out), "3925841d02dc09fbdc118597196a0b32");
}

TEST(Aes128, InPlaceEncryptionAliases) {
  const auto key = from_hex16("000102030405060708090a0b0c0d0e0f");
  Aes128 aes{std::span<const u8, 16>{key}};
  auto buf = from_hex16("00112233445566778899aabbccddeeff");
  aes.encrypt_block(buf.data(), buf.data());
  EXPECT_EQ(to_hex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, ScheduleSharedWithStaticPath) {
  const auto key = from_hex16("2b7e151628aed2a6abf7158809cf4f3c");
  const auto plaintext = from_hex16("3243f6a8885a308d313198a2e0370734");
  Aes128 aes{std::span<const u8, 16>{key}};
  u8 a[16], b[16];
  aes.encrypt_block(plaintext.data(), a);
  Aes128::encrypt_block_with_schedule(aes.round_keys().data(), plaintext.data(), b);
  EXPECT_EQ(0, std::memcmp(a, b, 16));
}

TEST(AesCtr, Rfc3686Vector1) {
  // RFC 3686 test vector #1: single block message.
  const auto key = from_hex16("ae6852f8121067cc4bf7a5765577f39e");
  Aes128 aes{std::span<const u8, 16>{key}};
  const u8 nonce[4] = {0x00, 0x00, 0x00, 0x30};
  const u8 iv[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  u8 data[16];
  std::memcpy(data, "Single block msg", 16);
  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  EXPECT_EQ(to_hex(data), "e4095d4fb7a7b3792d6175a3261311b8");
}

TEST(AesCtr, Rfc3686Vector2TwoBlocks) {
  // RFC 3686 test vector #2: 32-byte message.
  const auto key = from_hex16("7e24067817fae0d743d6ce1f32539163");
  Aes128 aes{std::span<const u8, 16>{key}};
  const u8 nonce[4] = {0x00, 0x6c, 0xb6, 0xdb};
  const u8 iv[8] = {0xc0, 0x54, 0x3b, 0x59, 0xda, 0x48, 0xd9, 0x0b};
  u8 data[32];
  for (int i = 0; i < 32; ++i) data[i] = static_cast<u8>(i);
  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  EXPECT_EQ(to_hex(data),
            "5104a106168a72d9790d41ee8edad388eb2e1efc46da57c8fce630df9141be28");
}

TEST(AesCtr, RoundTrip) {
  const auto key = from_hex16("000102030405060708090a0b0c0d0e0f");
  Aes128 aes{std::span<const u8, 16>{key}};
  const u8 nonce[4] = {1, 2, 3, 4};
  const u8 iv[8] = {9, 9, 9, 9, 9, 9, 9, 9};

  std::vector<u8> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7);
  const auto original = data;

  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  EXPECT_NE(data, original);
  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  EXPECT_EQ(data, original);
}

TEST(AesCtr, BlockwiseMatchesStreamwise) {
  // Encrypting block-by-block (the GPU decomposition) must equal the
  // streaming CPU path.
  const auto key = from_hex16("8809cf4f3c2b7e151628aed2a6abf715");
  Aes128 aes{std::span<const u8, 16>{key}};
  const u8 nonce[4] = {5, 6, 7, 8};
  const u8 iv[8] = {1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<u8> a(123), b(123);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = b[i] = static_cast<u8>(i);

  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, a);
  for (u32 blk = 0; blk * 16 < b.size(); ++blk) {
    const std::size_t len = std::min<std::size_t>(16, b.size() - blk * 16);
    aes_ctr_crypt_block(aes.round_keys().data(), nonce, iv, blk, b.data() + blk * 16, len);
  }
  EXPECT_EQ(a, b);
}

// Property sweep: round trip across many lengths including non-multiples
// of the block size.
class AesCtrLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesCtrLengthTest, RoundTripAtLength) {
  const auto key = from_hex16("00112233445566778899aabbccddeeff");
  Aes128 aes{std::span<const u8, 16>{key}};
  const u8 nonce[4] = {0xde, 0xad, 0xbe, 0xef};
  const u8 iv[8] = {8, 7, 6, 5, 4, 3, 2, 1};

  std::vector<u8> data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 31 + 7);
  const auto original = data;
  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  aes_ctr_crypt(aes, std::span<const u8, 4>{nonce, 4}, std::span<const u8, 8>{iv, 8}, data);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesCtrLengthTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 64, 255, 1514));

}  // namespace
}  // namespace ps::crypto
