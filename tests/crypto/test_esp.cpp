// ESP tunnel-mode encapsulation/decapsulation, ICV enforcement, and the
// anti-replay window.
#include <gtest/gtest.h>

#include "crypto/esp.hpp"
#include "net/packet.hpp"

namespace ps::crypto {
namespace {

net::FrameBuffer test_frame(u32 size = 64) {
  net::FrameSpec spec;
  spec.frame_size = size;
  return net::build_udp_ipv4(spec, net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(10, 0, 0, 2));
}

SecurityAssociation test_sa() {
  return SecurityAssociation::make_test_sa(0x1001, net::Ipv4Addr(192, 168, 1, 1),
                                           net::Ipv4Addr(192, 168, 2, 1));
}

TEST(Esp, EncapsulatedFrameParsesAsEsp) {
  auto sa = test_sa();
  const auto frame = test_frame();
  const auto out = esp_encapsulate(sa, frame);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.size(), esp_output_frame_size(static_cast<u32>(frame.size())));

  net::PacketView view;
  ASSERT_EQ(net::parse_packet(const_cast<u8*>(out.data()), static_cast<u32>(out.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.ip_proto, net::IpProto::kEsp);
  EXPECT_EQ(view.ipv4().src(), sa.tunnel_src);
  EXPECT_EQ(view.ipv4().dst(), sa.tunnel_dst);
}

TEST(Esp, RoundTripRecoversInnerPacket) {
  auto sa = test_sa();
  const auto frame = test_frame(128);
  const auto tunnel = esp_encapsulate(sa, frame);

  auto rx_sa = test_sa();  // fresh replay state, same keys
  std::vector<u8> inner;
  ASSERT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kOk);

  // Inner IP packet must be byte-identical past the L2 header.
  ASSERT_EQ(inner.size(), frame.size());
  EXPECT_TRUE(std::equal(inner.begin() + sizeof(net::EthernetHeader), inner.end(),
                         frame.begin() + sizeof(net::EthernetHeader)));
}

TEST(Esp, PayloadIsActuallyEncrypted) {
  auto sa = test_sa();
  const auto frame = test_frame(256);
  const auto tunnel = esp_encapsulate(sa, frame);

  // The inner IP header bytes must not appear in clear inside the tunnel
  // payload region.
  const auto needle_begin = frame.begin() + sizeof(net::EthernetHeader);
  const auto it = std::search(tunnel.begin() + 34, tunnel.end(), needle_begin,
                              needle_begin + 20);
  EXPECT_EQ(it, tunnel.end());
}

TEST(Esp, CorruptedCiphertextFailsAuth) {
  auto sa = test_sa();
  auto tunnel = esp_encapsulate(sa, test_frame());
  tunnel[tunnel.size() - 20] ^= 0x01;  // flip a ciphertext bit

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kAuthFailed);
}

TEST(Esp, CorruptedIcvFailsAuth) {
  auto sa = test_sa();
  auto tunnel = esp_encapsulate(sa, test_frame());
  tunnel.back() ^= 0xff;

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kAuthFailed);
}

TEST(Esp, WrongSpiRejected) {
  auto sa = test_sa();
  const auto tunnel = esp_encapsulate(sa, test_frame());

  auto other = SecurityAssociation::make_test_sa(0x2002, sa.tunnel_src, sa.tunnel_dst);
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(other, tunnel, inner), EspError::kUnknownSpi);
}

TEST(Esp, ReplayedPacketRejected) {
  auto sa = test_sa();
  const auto tunnel = esp_encapsulate(sa, test_frame());

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kOk);
  EXPECT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kReplayed);
}

TEST(Esp, OutOfOrderWithinWindowAccepted) {
  auto sa = test_sa();
  const auto frame = test_frame();
  const auto t1 = esp_encapsulate(sa, frame);  // seq 1
  const auto t2 = esp_encapsulate(sa, frame);  // seq 2
  const auto t3 = esp_encapsulate(sa, frame);  // seq 3

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(rx_sa, t3, inner), EspError::kOk);
  EXPECT_EQ(esp_decapsulate(rx_sa, t1, inner), EspError::kOk);  // late but in window
  EXPECT_EQ(esp_decapsulate(rx_sa, t2, inner), EspError::kOk);
  EXPECT_EQ(esp_decapsulate(rx_sa, t2, inner), EspError::kReplayed);
}

TEST(Esp, AncientSequenceOutsideWindowRejected) {
  auto sa = test_sa();
  const auto frame = test_frame();
  const auto first = esp_encapsulate(sa, frame);  // seq 1
  std::vector<u8> last;
  for (int i = 0; i < 100; ++i) last = esp_encapsulate(sa, frame);  // up to seq 101

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  EXPECT_EQ(esp_decapsulate(rx_sa, last, inner), EspError::kOk);
  EXPECT_EQ(esp_decapsulate(rx_sa, first, inner), EspError::kReplayed);
}

TEST(Esp, NonIpv4InputRejected) {
  auto sa = test_sa();
  net::FrameSpec spec;
  const auto v6 = net::build_udp_ipv6(spec, net::Ipv6Addr::from_words(1, 2),
                                      net::Ipv6Addr::from_words(3, 4));
  EXPECT_TRUE(esp_encapsulate(sa, v6).empty());
}

TEST(Esp, SequenceNumbersAdvance) {
  auto sa = test_sa();
  const auto t1 = esp_encapsulate(sa, test_frame());
  const auto t2 = esp_encapsulate(sa, test_frame());
  const auto& esp1 = *reinterpret_cast<const net::EspHeader*>(t1.data() + 34);
  const auto& esp2 = *reinterpret_cast<const net::EspHeader*>(t2.data() + 34);
  EXPECT_EQ(esp1.sequence() + 1, esp2.sequence());
}

TEST(Esp, CipherBytesPadTo4ByteAlignment) {
  for (u32 inner = 40; inner < 80; ++inner) {
    EXPECT_EQ(esp_cipher_bytes(inner) % 4, 0u) << inner;
    EXPECT_GE(esp_cipher_bytes(inner), inner + 2);
    EXPECT_LT(esp_cipher_bytes(inner), inner + 2 + 4);
  }
}

TEST(SaDatabase, AddAndLookup) {
  SaDatabase db;
  db.add(SecurityAssociation::make_test_sa(1, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2)));
  db.add(SecurityAssociation::make_test_sa(2, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(3, 3, 3, 3)));
  ASSERT_NE(db.by_spi(1), nullptr);
  ASSERT_NE(db.by_spi(2), nullptr);
  EXPECT_EQ(db.by_spi(3), nullptr);
  EXPECT_EQ(db.by_spi(2)->tunnel_dst, net::Ipv4Addr(3, 3, 3, 3));
}

// Round trip across frame sizes (property sweep).
class EspSizeTest : public ::testing::TestWithParam<u32> {};

TEST_P(EspSizeTest, RoundTrip) {
  auto sa = test_sa();
  const auto frame = test_frame(GetParam());
  const auto tunnel = esp_encapsulate(sa, frame);
  ASSERT_FALSE(tunnel.empty());

  auto rx_sa = test_sa();
  std::vector<u8> inner;
  ASSERT_EQ(esp_decapsulate(rx_sa, tunnel, inner), EspError::kOk);
  EXPECT_TRUE(std::equal(inner.begin() + sizeof(net::EthernetHeader), inner.end(),
                         frame.begin() + sizeof(net::EthernetHeader)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EspSizeTest,
                         ::testing::Values(64, 65, 66, 67, 128, 256, 512, 1024, 1514));

}  // namespace
}  // namespace ps::crypto
