// Dynamic IPv6 forwarding: commits, standby-buffer flips (including table
// growth), and GPU/CPU equivalence against a changing FIB.
#include <gtest/gtest.h>

#include "apps/dynamic_ipv6.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::apps {
namespace {

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(2u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

void run_gpu(DynamicIpv6ForwardApp& app, GpuHarness& gpu, core::ShaderJob& job) {
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);
}

route::Ipv6Prefix default6(route::NextHop nh) { return {net::Ipv6Addr{}, 0, nh}; }

TEST(DynamicIpv6, CpuPathFollowsCommits) {
  route::Ipv6Fib fib;
  fib.announce(default6(2));
  fib.commit();
  DynamicIpv6ForwardApp app(fib);

  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 1});
  core::ShaderJob job(4);
  job.chunk.append(traffic.next_frame());
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.out_port(0), 2);

  fib.announce(default6(7));
  fib.commit();
  core::ShaderJob job2(4);
  job2.chunk.append(traffic.next_frame());
  app.process_cpu(job2.chunk);
  EXPECT_EQ(job2.chunk.out_port(0), 7);
}

TEST(DynamicIpv6, GpuFlipsOnSync) {
  route::Ipv6Fib fib;
  fib.announce(default6(1));
  fib.commit();
  DynamicIpv6ForwardApp app(fib);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 2});

  core::ShaderJob before(4);
  before.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, before);
  EXPECT_EQ(before.chunk.out_port(0), 1);

  fib.announce(default6(5));
  fib.commit();
  core::ShaderJob stale(4);
  stale.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, stale);
  EXPECT_EQ(stale.chunk.out_port(0), 1);  // not synced yet

  EXPECT_EQ(app.sync(), 1);
  core::ShaderJob fresh(4);
  fresh.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, fresh);
  EXPECT_EQ(fresh.chunk.out_port(0), 5);
  EXPECT_EQ(app.sync(), 0);  // idempotent
}

TEST(DynamicIpv6, StandbyGrowsWhenTableGrows) {
  // Start with a handful of routes, then commit a table 1000x larger: the
  // standby copy must be reallocated and lookups must stay correct.
  route::Ipv6Fib fib;
  fib.announce({net::Ipv6Addr::from_words(0x2001'0000'0000'0000ULL, 0), 16, 3});
  fib.commit();
  DynamicIpv6ForwardApp app(fib);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  const auto rib = route::generate_ipv6_rib(20'000, 8, 3);
  for (const auto& p : rib) fib.announce(p);
  fib.commit();
  EXPECT_EQ(app.sync(), 1);

  // Every sampled covered address must resolve identically on GPU and CPU.
  gen::TrafficConfig cfg{.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 4};
  cfg.ipv6_dst_pool = route::sample_covered_ipv6(rib, 512);
  gen::TrafficGen traffic(cfg);

  core::ShaderJob gpu_job(64), cpu_job(64);
  for (int i = 0; i < 64; ++i) {
    const auto frame = traffic.next_frame();
    gpu_job.chunk.append(frame);
    cpu_job.chunk.append(frame);
  }
  run_gpu(app, gpu, gpu_job);
  app.process_cpu(cpu_job.chunk);

  for (u32 i = 0; i < 64; ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << i;
    EXPECT_NE(gpu_job.chunk.out_port(i), -1) << i;  // covered pool: all hit
  }
}

TEST(DynamicIpv6, WithdrawTurnsIntoDrop) {
  route::Ipv6Fib fib;
  const route::Ipv6Prefix p{net::Ipv6Addr::from_words(0xaaaa'0000'0000'0000ULL, 0), 16, 4};
  fib.announce(p);
  fib.commit();
  DynamicIpv6ForwardApp app(fib);

  net::FrameSpec spec;
  spec.frame_size = 78;
  auto frame = net::build_udp_ipv6(spec, net::Ipv6Addr::from_words(1, 1),
                                   net::Ipv6Addr::from_words(0xaaaa'1234'0000'0000ULL, 0));
  core::ShaderJob job(2);
  job.chunk.append(frame);
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.out_port(0), 4);

  fib.withdraw(p);
  fib.commit();
  core::ShaderJob job2(2);
  job2.chunk.append(frame);
  app.process_cpu(job2.chunk);
  EXPECT_EQ(job2.chunk.verdict(0), iengine::PacketVerdict::kDrop);
}

}  // namespace
}  // namespace ps::apps
