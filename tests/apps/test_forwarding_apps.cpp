// IPv4/IPv6 forwarding shaders: CPU path vs GPU path equivalence,
// classification (drop/slow-path), and header rewriting.
#include <gtest/gtest.h>

#include "apps/ipv4_forward.hpp"
#include "apps/ipv6_forward.hpp"
#include "core/shader.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::apps {
namespace {

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  std::shared_ptr<gpu::SimtExecutor> exec = std::make_shared<gpu::SimtExecutor>(2u);
  gpu::GpuDevice device{0, topo, exec};
  core::GpuContext ctx;

  GpuHarness() { ctx = core::GpuContext{&device, {gpu::kDefaultStream}}; }
};

/// Run one chunk through pre-shade -> shade -> post-shade.
void run_gpu_path(core::Shader& app, GpuHarness& gpu, core::ShaderJob& job) {
  app.bind_gpu(gpu.device);
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);
}

TEST(Ipv4ForwardApp, GpuPathMatchesCpuPathOnRandomTraffic) {
  const auto rib = route::generate_ipv4_rib({.prefix_count = 20'000, .num_next_hops = 8, .seed = 1});
  route::Ipv4Table table;
  table.build(rib);
  Ipv4ForwardApp app(table);
  GpuHarness gpu;

  gen::TrafficGen traffic({.seed = 2});
  core::ShaderJob gpu_job(128), cpu_job(128);
  for (int i = 0; i < 128; ++i) {
    const auto frame = traffic.next_frame();
    gpu_job.chunk.append(frame);
    cpu_job.chunk.append(frame);
  }
  gpu_job.chunk.in_port = cpu_job.chunk.in_port = 0;

  run_gpu_path(app, gpu, gpu_job);
  app.process_cpu(cpu_job.chunk);

  for (u32 i = 0; i < 128; ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << i;
    // Both paths must produce identical rewritten packets (TTL, checksum).
    EXPECT_TRUE(std::equal(gpu_job.chunk.packet(i).begin(), gpu_job.chunk.packet(i).end(),
                           cpu_job.chunk.packet(i).begin()))
        << i;
  }
}

TEST(Ipv4ForwardApp, RouteMissIsDropped) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(10, 0, 0, 0), 8, 3}};
  table.build(rib);
  Ipv4ForwardApp app(table);

  core::ShaderJob job(4);
  net::FrameSpec spec;
  job.chunk.append(net::build_udp_ipv4(spec, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(10, 1, 1, 1)));
  job.chunk.append(net::build_udp_ipv4(spec, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(99, 1, 1, 1)));
  app.process_cpu(job.chunk);

  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kForward);
  EXPECT_EQ(job.chunk.out_port(0), 3);
  EXPECT_EQ(job.chunk.verdict(1), iengine::PacketVerdict::kDrop);
}

TEST(Ipv4ForwardApp, TtlExpiredGoesToSlowPath) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  Ipv4ForwardApp app(table);

  core::ShaderJob job(4);
  net::FrameSpec spec;
  spec.ttl = 1;
  job.chunk.append(net::build_udp_ipv4(spec, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2)));
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kSlowPath);
}

TEST(Ipv4ForwardApp, MalformedPacketIsDropped) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  Ipv4ForwardApp app(table);

  core::ShaderJob job(4);
  auto frame = net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  frame[24] ^= 0xff;  // corrupt the IP checksum
  job.chunk.append(frame);
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kDrop);
}

TEST(Ipv4ForwardApp, NonIpGoesToSlowPath) {
  route::Ipv4Table table;
  table.build({});
  Ipv4ForwardApp app(table);

  core::ShaderJob job(4);
  auto frame = net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  reinterpret_cast<net::EthernetHeader*>(frame.data())->set_ethertype(net::EtherType::kArp);
  job.chunk.append(frame);
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kSlowPath);
}

TEST(Ipv4ForwardApp, GpuPathSkipsIneligiblePackets) {
  route::Ipv4Table table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 1}};
  table.build(rib);
  Ipv4ForwardApp app(table);
  GpuHarness gpu;

  core::ShaderJob job(4);
  net::FrameSpec good;
  net::FrameSpec expired;
  expired.ttl = 1;
  job.chunk.append(net::build_udp_ipv4(good, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2)));
  job.chunk.append(net::build_udp_ipv4(expired, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2)));

  run_gpu_path(app, gpu, job);
  EXPECT_EQ(job.gpu_items, 1u);  // only the healthy packet went to the GPU
  EXPECT_EQ(job.chunk.out_port(0), 1);
  EXPECT_EQ(job.chunk.verdict(1), iengine::PacketVerdict::kSlowPath);
}

TEST(Ipv6ForwardApp, GpuPathMatchesCpuPath) {
  const auto rib = route::generate_ipv6_rib(10'000, 8, 7);
  route::Ipv6Table table;
  table.build(rib);
  Ipv6ForwardApp app(table);
  GpuHarness gpu;

  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 8});
  core::ShaderJob gpu_job(128), cpu_job(128);
  for (int i = 0; i < 128; ++i) {
    const auto frame = traffic.next_frame();
    gpu_job.chunk.append(frame);
    cpu_job.chunk.append(frame);
  }

  run_gpu_path(app, gpu, gpu_job);
  app.process_cpu(cpu_job.chunk);

  for (u32 i = 0; i < 128; ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << i;
  }
}

TEST(Ipv6ForwardApp, HopLimitDecremented) {
  route::Ipv6Table table;
  const route::Ipv6Prefix rib[] = {{net::Ipv6Addr{}, 0, 2}};
  table.build(rib);
  Ipv6ForwardApp app(table);

  core::ShaderJob job(2);
  net::FrameSpec spec;
  spec.ttl = 30;
  job.chunk.append(net::build_udp_ipv6(spec, net::Ipv6Addr::from_words(1, 1),
                                       net::Ipv6Addr::from_words(2, 2)));
  app.process_cpu(job.chunk);

  net::PacketView view;
  auto pkt = job.chunk.packet(0);
  ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.ipv6().hop_limit, 29);
  EXPECT_EQ(job.chunk.out_port(0), 2);
}

TEST(Ipv6ForwardApp, GatherScatterAcrossMultipleJobs) {
  // Several chunks shaded in one batch must each get their own results.
  const auto rib = route::generate_ipv6_rib(5000, 8, 9);
  route::Ipv6Table table;
  table.build(rib);
  Ipv6ForwardApp app(table);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 10});
  std::vector<std::unique_ptr<core::ShaderJob>> jobs;
  std::vector<core::ShaderJob*> ptrs;
  for (int j = 0; j < 4; ++j) {
    jobs.push_back(std::make_unique<core::ShaderJob>(32));
    for (int i = 0; i < 32; ++i) jobs.back()->chunk.append(traffic.next_frame());
    app.pre_shade(*jobs.back());
    ptrs.push_back(jobs.back().get());
  }
  app.shade(gpu.ctx, {ptrs.data(), ptrs.size()});

  for (auto& job : jobs) {
    app.post_shade(*job);
    // Verify each packet against a direct CPU lookup.
    for (u32 k = 0; k < job->gpu_items; ++k) {
      const u32 i = job->gpu_index[k];
      auto pkt = job->chunk.packet(i);
      net::PacketView view;
      ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
                net::ParseStatus::kOk);
      const auto expected = table.lookup(view.ipv6().dst());
      if (expected == route::kNoRoute) {
        EXPECT_EQ(job->chunk.verdict(i), iengine::PacketVerdict::kDrop);
      } else {
        EXPECT_EQ(job->chunk.out_port(i), static_cast<i16>(expected));
      }
    }
  }
}

TEST(Ipv4ForwardApp, StreamedShadingProducesSameResults) {
  const auto rib = route::generate_ipv4_rib({.prefix_count = 5000, .num_next_hops = 8, .seed = 11});
  route::Ipv4Table table;
  table.build(rib);
  Ipv4ForwardApp app(table);

  GpuHarness gpu;
  gpu.ctx.streams.push_back(gpu.device.create_stream());
  gpu.ctx.streams.push_back(gpu.device.create_stream());
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.seed = 12});
  std::vector<std::unique_ptr<core::ShaderJob>> jobs;
  std::vector<core::ShaderJob*> ptrs;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back(std::make_unique<core::ShaderJob>(64));
    for (int i = 0; i < 64; ++i) jobs.back()->chunk.append(traffic.next_frame());
    app.pre_shade(*jobs.back());
    ptrs.push_back(jobs.back().get());
  }
  app.shade(gpu.ctx, {ptrs.data(), ptrs.size()});

  for (auto& job : jobs) {
    app.post_shade(*job);
    for (u32 k = 0; k < job->gpu_items; ++k) {
      const u32 i = job->gpu_index[k];
      auto pkt = job->chunk.packet(i);
      net::PacketView view;
      ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
                net::ParseStatus::kOk);
      const auto expected = table.lookup(view.ipv4().dst());
      if (expected == route::kNoRoute) {
        EXPECT_EQ(job->chunk.verdict(i), iengine::PacketVerdict::kDrop);
      } else {
        EXPECT_EQ(job->chunk.out_port(i), static_cast<i16>(expected));
      }
    }
  }
}

}  // namespace
}  // namespace ps::apps
