// GPU/CPU differential: for every app, identical randomized chunks go
// through the GPU shading path (pre_shade -> shade -> post_shade) and the
// CPU fallback path the router uses when the device is sick or
// backpressured (pre_shade -> shade_cpu -> post_shade), and the results
// must be byte-identical — frames, verdicts, and output ports. The
// fallback is load-bearing (PR 1 routes every failed batch through it), so
// it is held to exact equivalence, not plausibility.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/ipsec_gateway.hpp"
#include "apps/ipv4_forward.hpp"
#include "apps/ipv6_forward.hpp"
#include "apps/openflow_app.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::apps {
namespace {

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  // Inline execution (no pool threads): determinism is the point here,
  // and it keeps the test clean under TSan like the testbed default.
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(0u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

constexpr u32 kChunkSizes[] = {1, 3, 64, 128};

void fill_identical(core::ShaderJob& a, core::ShaderJob& b, gen::TrafficGen& traffic, u32 n) {
  for (u32 i = 0; i < n; ++i) {
    const auto frame = traffic.next_frame();
    a.chunk.append(frame);
    b.chunk.append(frame);
  }
}

void expect_identical(const core::ShaderJob& gpu_job, const core::ShaderJob& cpu_job) {
  ASSERT_EQ(gpu_job.chunk.count(), cpu_job.chunk.count());
  for (u32 i = 0; i < gpu_job.chunk.count(); ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << "packet " << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << "packet " << i;
    const auto g = gpu_job.chunk.packet(i);
    const auto c = cpu_job.chunk.packet(i);
    ASSERT_EQ(g.size(), c.size()) << "packet " << i;
    EXPECT_TRUE(std::equal(g.begin(), g.end(), c.begin())) << "packet " << i << " bytes differ";
  }
}

/// Shade `gpu_job` on the device and `cpu_job` through the router's CPU
/// fallback (shade_cpu), then post-shade both. Chunks must be pre-filled
/// with identical packets and already pre-shaded.
void shade_both(core::Shader& gpu_app, core::Shader& cpu_app, GpuHarness& gpu,
                core::ShaderJob& gpu_job, core::ShaderJob& cpu_job) {
  core::ShaderJob* jobs[] = {&gpu_job};
  const core::ShadeOutcome outcome = gpu_app.shade(gpu.ctx, {jobs, 1});
  ASSERT_TRUE(outcome.ok());
  cpu_app.shade_cpu(cpu_job);
  gpu_app.post_shade(gpu_job);
  cpu_app.post_shade(cpu_job);
}

TEST(GpuCpuDifferential, Ipv4Forward) {
  const auto rib =
      route::generate_ipv4_rib({.prefix_count = 30'000, .num_next_hops = 8, .seed = 101});
  route::Ipv4Table table;
  table.build(rib);
  Ipv4ForwardApp app(table);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  u32 seed = 200;
  for (const u32 n : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(n));
    gen::TrafficGen traffic({.seed = seed++});
    core::ShaderJob gpu_job(n), cpu_job(n);
    fill_identical(gpu_job, cpu_job, traffic, n);
    app.pre_shade(gpu_job);
    app.pre_shade(cpu_job);
    shade_both(app, app, gpu, gpu_job, cpu_job);
    expect_identical(gpu_job, cpu_job);
  }
}

TEST(GpuCpuDifferential, Ipv6Forward) {
  const auto rib = route::generate_ipv6_rib(20'000, 8, 102);
  route::Ipv6Table table;
  table.build(rib);
  Ipv6ForwardApp app(table);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  u32 seed = 300;
  for (const u32 n : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(n));
    gen::TrafficGen traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = seed++});
    core::ShaderJob gpu_job(n), cpu_job(n);
    fill_identical(gpu_job, cpu_job, traffic, n);
    app.pre_shade(gpu_job);
    app.pre_shade(cpu_job);
    shade_both(app, app, gpu, gpu_job, cpu_job);
    expect_identical(gpu_job, cpu_job);
  }
}

TEST(GpuCpuDifferential, OpenFlow) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen setup({.seed = 103, .flow_count = 64});
  // Exact entries for half the flows, a UDP wildcard, and a drop default,
  // so the randomized traffic exercises all three match sources.
  for (u32 flow = 0; flow < 32; ++flow) {
    const auto frame = setup.frame_for_flow(flow);
    net::PacketView view;
    ASSERT_EQ(net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()),
                                view),
              net::ParseStatus::kOk);
    sw.exact().insert(openflow::extract_flow_key(view, 0),
                      openflow::Action::output(static_cast<u16>(flow % 8)));
  }
  openflow::WildcardMatch udp_any;
  udp_any.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  udp_any.key.nw_proto = 17;
  udp_any.priority = 10;
  sw.wildcard().insert(udp_any, openflow::Action::output(7));
  sw.set_default_action(openflow::Action::drop());

  OpenFlowApp app(sw);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  u32 seed = 400;
  for (const u32 n : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(n));
    gen::TrafficGen traffic({.seed = seed++, .flow_count = 64});
    core::ShaderJob gpu_job(n), cpu_job(n);
    fill_identical(gpu_job, cpu_job, traffic, n);
    gpu_job.chunk.in_port = cpu_job.chunk.in_port = 0;
    app.pre_shade(gpu_job);
    app.pre_shade(cpu_job);
    shade_both(app, app, gpu, gpu_job, cpu_job);
    expect_identical(gpu_job, cpu_job);
  }
}

TEST(GpuCpuDifferential, IpsecGateway) {
  // pre_shade allocates ESP sequence numbers from the app's atomic, so two
  // pre_shades on ONE instance would diverge. Two instances over the same
  // SA allocate the same sequences for the same chunk order, and the IV is
  // derived deterministically from the sequence — so the two paths must
  // still produce byte-identical ESP frames.
  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x7777, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  IpsecGatewayApp gpu_app(sa);
  IpsecGatewayApp cpu_app(sa);
  GpuHarness gpu;
  gpu_app.bind_gpu(gpu.device);

  u32 seed = 500;
  for (const u32 n : kChunkSizes) {
    SCOPED_TRACE("chunk size " + std::to_string(n));
    gen::TrafficGen traffic({.frame_size = 128, .seed = seed++});
    core::ShaderJob gpu_job(n), cpu_job(n);
    fill_identical(gpu_job, cpu_job, traffic, n);
    gpu_job.chunk.in_port = cpu_job.chunk.in_port = 0;
    gpu_app.pre_shade(gpu_job);
    cpu_app.pre_shade(cpu_job);
    ASSERT_EQ(gpu_job.gpu_items, cpu_job.gpu_items);
    ASSERT_EQ(gpu_job.gpu_input.size(), cpu_job.gpu_input.size());
    ASSERT_TRUE(std::equal(gpu_job.gpu_input.begin(), gpu_job.gpu_input.end(),
                           cpu_job.gpu_input.begin()))
        << "pre-shade outputs diverged: sequence allocation is not in lockstep";
    shade_both(gpu_app, cpu_app, gpu, gpu_job, cpu_job);
    expect_identical(gpu_job, cpu_job);
  }
}

}  // namespace
}  // namespace ps::apps
