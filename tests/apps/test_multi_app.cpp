// Multi-protocol composition (section 7): IPv4 + IPv6 (+ IPsec) active on
// one router, packets dispatched by ethertype, per-flow order preserved
// through split/reassembly, and concurrent child kernels via streams.
#include <gtest/gtest.h>

#include "apps/ipsec_gateway.hpp"
#include "apps/ipv4_forward.hpp"
#include "apps/ipv6_forward.hpp"
#include "apps/multi_app.hpp"
#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

namespace ps::apps {
namespace {

struct DualStackFixture {
  route::Ipv4Table v4_table;
  route::Ipv6Table v6_table;
  std::unique_ptr<Ipv4ForwardApp> v4;
  std::unique_ptr<Ipv6ForwardApp> v6;
  MultiProtocolApp multi;

  DualStackFixture() {
    const route::Ipv4Prefix v4_rib[] = {{net::Ipv4Addr(0), 0, 2}};
    v4_table.build(v4_rib);
    const route::Ipv6Prefix v6_rib[] = {{net::Ipv6Addr{}, 0, 5}};
    v6_table.build(v6_rib);
    v4 = std::make_unique<Ipv4ForwardApp>(v4_table);
    v6 = std::make_unique<Ipv6ForwardApp>(v6_table);
    multi.add_protocol(net::EtherType::kIpv4, v4.get());
    multi.add_protocol(net::EtherType::kIpv6, v6.get());
  }
};

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(2u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

TEST(MultiProtocolApp, CpuPathDispatchesByEthertype) {
  DualStackFixture fx;
  gen::TrafficGen v4_traffic({.kind = gen::TrafficKind::kIpv4Udp, .seed = 60});
  gen::TrafficGen v6_traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 61});

  core::ShaderJob job(8);
  job.chunk.append(v4_traffic.next_frame());
  job.chunk.append(v6_traffic.next_frame());
  job.chunk.append(v4_traffic.next_frame());
  fx.multi.process_cpu(job.chunk);

  ASSERT_EQ(job.chunk.count(), 3u);
  EXPECT_EQ(job.chunk.out_port(0), 2);  // IPv4 route
  EXPECT_EQ(job.chunk.out_port(1), 5);  // IPv6 route
  EXPECT_EQ(job.chunk.out_port(2), 2);
}

TEST(MultiProtocolApp, UnknownProtocolGoesToSlowPath) {
  DualStackFixture fx;
  auto arp = net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(2, 2, 2, 2));
  reinterpret_cast<net::EthernetHeader*>(arp.data())->set_ethertype(net::EtherType::kArp);

  core::ShaderJob job(4);
  job.chunk.append(arp);
  fx.multi.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kSlowPath);
}

TEST(MultiProtocolApp, GpuPathMatchesCpuPathInterleaved) {
  DualStackFixture fx;
  GpuHarness gpu;
  fx.multi.bind_gpu(gpu.device);

  gen::TrafficGen v4_traffic({.kind = gen::TrafficKind::kIpv4Udp, .seed = 62});
  gen::TrafficGen v6_traffic({.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 63});

  core::ShaderJob gpu_job(64), cpu_job(64);
  for (int i = 0; i < 32; ++i) {
    const auto f4 = v4_traffic.next_frame();
    const auto f6 = v6_traffic.next_frame();
    gpu_job.chunk.append(f4);
    gpu_job.chunk.append(f6);
    cpu_job.chunk.append(f4);
    cpu_job.chunk.append(f6);
  }

  fx.multi.pre_shade(gpu_job);
  EXPECT_EQ(gpu_job.sub_jobs.size(), 2u);  // one sub-job per protocol
  core::ShaderJob* jobs[] = {&gpu_job};
  fx.multi.shade(gpu.ctx, {jobs, 1});
  fx.multi.post_shade(gpu_job);

  fx.multi.process_cpu(cpu_job.chunk);

  ASSERT_EQ(gpu_job.chunk.count(), cpu_job.chunk.count());
  for (u32 i = 0; i < cpu_job.chunk.count(); ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << i;
    // Reassembly preserved order: packet contents line up too.
    EXPECT_TRUE(std::equal(gpu_job.chunk.packet(i).begin(), gpu_job.chunk.packet(i).end(),
                           cpu_job.chunk.packet(i).begin()))
        << i;
  }
}

TEST(MultiProtocolApp, SizeChangingChildReassemblesInOrder) {
  // Forwarding + IPsec on one router: the ESP child resizes its packets,
  // reassembly must still restore original order.
  route::Ipv4Table v4_table;
  const route::Ipv4Prefix rib[] = {{net::Ipv4Addr(0), 0, 2}};
  v4_table.build(rib);
  Ipv4ForwardApp v4(v4_table);

  const auto sa = crypto::SecurityAssociation::make_test_sa(
      0x7777, net::Ipv4Addr(172, 16, 0, 1), net::Ipv4Addr(172, 16, 0, 2));
  IpsecGatewayApp ipsec(sa);

  MultiProtocolApp multi;
  // Dispatch all IPv6 to... none; IPv4 to the IPsec gateway, and use the
  // plain forwarder for IPv6-typed frames to prove heterogeneity.
  multi.add_protocol(net::EtherType::kIpv4, &ipsec);

  gen::TrafficGen traffic({.frame_size = 128, .seed = 64});
  core::ShaderJob job(8);
  std::vector<std::size_t> original_sizes;
  for (int i = 0; i < 4; ++i) {
    auto f = traffic.next_frame();
    original_sizes.push_back(f.size());
    job.chunk.append(f);
  }
  job.chunk.in_port = 0;
  multi.process_cpu(job.chunk);

  ASSERT_EQ(job.chunk.count(), 4u);
  for (u32 i = 0; i < 4; ++i) {
    EXPECT_EQ(job.chunk.packet(i).size(),
              crypto::esp_output_frame_size(static_cast<u32>(original_sizes[i])));
    EXPECT_EQ(job.chunk.out_port(i), 1);  // in 0 -> out 1
  }
  (void)v4;
}

TEST(MultiProtocolApp, EndToEndDualStackModelRun) {
  const auto rib4 = route::generate_ipv4_rib({.prefix_count = 10'000, .num_next_hops = 8, .seed = 65});
  route::Ipv4Table t4;
  t4.build(rib4);
  const auto rib6 = route::generate_ipv6_rib(10'000, 8, 66);
  route::Ipv6Table t6;
  t6.build(rib6);
  Ipv4ForwardApp v4(t4);
  Ipv6ForwardApp v6(t6);
  MultiProtocolApp multi;
  multi.add_protocol(net::EtherType::kIpv4, &v4);
  multi.add_protocol(net::EtherType::kIpv6, &v6);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true, .ring_size = 4096},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficConfig tcfg{.kind = gen::TrafficKind::kIpv4Udp, .frame_size = 64, .seed = 67};
  tcfg.ipv4_dst_pool = route::sample_covered_ipv4(rib4, 8192);
  gen::TrafficGen traffic(tcfg);
  testbed.connect_sink(&traffic);

  core::ModelDriver driver(testbed, &multi, core::RouterConfig{.use_gpu = true});
  const auto result = driver.run(traffic, 20'000);
  EXPECT_EQ(result.forwarded, result.accepted);
  EXPECT_EQ(traffic.sunk_packets(), result.forwarded);
}

}  // namespace
}  // namespace ps::apps
