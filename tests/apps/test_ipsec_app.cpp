// IPsec gateway shader: the GPU-offloaded AES/SHA1 output must be
// bit-identical to the CPU path and decryptable by a standard receiver.
#include <gtest/gtest.h>

#include <set>

#include "apps/ipsec_gateway.hpp"
#include "gen/traffic.hpp"

namespace ps::apps {
namespace {

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(2u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

crypto::SecurityAssociation gateway_sa() {
  return crypto::SecurityAssociation::make_test_sa(0xabcd, net::Ipv4Addr(172, 16, 0, 1),
                                                   net::Ipv4Addr(172, 16, 0, 2));
}

TEST(IpsecGatewayApp, GpuOutputDecapsulatesCleanly) {
  const auto sa = gateway_sa();
  IpsecGatewayApp app(sa);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.frame_size = 200, .seed = 30});
  std::vector<net::FrameBuffer> originals;
  core::ShaderJob job(32);
  for (int i = 0; i < 32; ++i) {
    originals.push_back(traffic.next_frame());
    job.chunk.append(originals.back());
  }
  job.chunk.in_port = 0;

  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);

  ASSERT_EQ(job.chunk.count(), 32u);
  auto rx_sa = gateway_sa();  // fresh replay window, same keys
  for (u32 i = 0; i < 32; ++i) {
    EXPECT_EQ(job.chunk.verdict(i), iengine::PacketVerdict::kForward);
    EXPECT_EQ(job.chunk.out_port(i), 1);  // ingress 0 -> egress 1

    std::vector<u8> inner;
    auto pkt = job.chunk.packet(i);
    ASSERT_EQ(crypto::esp_decapsulate(rx_sa, pkt, inner), crypto::EspError::kOk) << i;
    // Recovered inner packet == original past L2.
    EXPECT_TRUE(std::equal(inner.begin() + sizeof(net::EthernetHeader), inner.end(),
                           originals[i].begin() + sizeof(net::EthernetHeader)))
        << i;
  }
}

TEST(IpsecGatewayApp, GpuBytesMatchCpuBytes) {
  // The two paths share sequence-number allocation order, so with separate
  // app instances and identical input they must emit identical frames.
  const auto sa = gateway_sa();
  gen::TrafficGen traffic({.frame_size = 128, .seed = 31});
  std::vector<net::FrameBuffer> frames;
  for (int i = 0; i < 16; ++i) frames.push_back(traffic.next_frame());

  IpsecGatewayApp gpu_app(sa);
  GpuHarness gpu;
  gpu_app.bind_gpu(gpu.device);
  core::ShaderJob gpu_job(16);
  for (const auto& f : frames) gpu_job.chunk.append(f);
  gpu_job.chunk.in_port = 0;
  gpu_app.pre_shade(gpu_job);
  core::ShaderJob* jobs[] = {&gpu_job};
  gpu_app.shade(gpu.ctx, {jobs, 1});
  gpu_app.post_shade(gpu_job);

  IpsecGatewayApp cpu_app(sa);
  core::ShaderJob cpu_job(16);
  for (const auto& f : frames) cpu_job.chunk.append(f);
  cpu_job.chunk.in_port = 0;
  cpu_app.process_cpu(cpu_job.chunk);

  ASSERT_EQ(gpu_job.chunk.count(), cpu_job.chunk.count());
  for (u32 i = 0; i < cpu_job.chunk.count(); ++i) {
    const auto a = gpu_job.chunk.packet(i);
    const auto b = cpu_job.chunk.packet(i);
    ASSERT_EQ(a.size(), b.size()) << i;
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin())) << "packet " << i;
  }
}

TEST(IpsecGatewayApp, OutputSizeMatchesEspMath) {
  const auto sa = gateway_sa();
  IpsecGatewayApp app(sa);
  for (const u32 size : {64u, 65u, 128u, 1514u}) {
    gen::TrafficGen traffic({.frame_size = size, .seed = 32});
    core::ShaderJob job(2);
    job.chunk.append(traffic.next_frame());
    job.chunk.in_port = 0;
    app.process_cpu(job.chunk);
    EXPECT_EQ(job.chunk.packet(0).size(), crypto::esp_output_frame_size(size)) << size;
  }
}

TEST(IpsecGatewayApp, SequenceNumbersUniqueAcrossChunks) {
  const auto sa = gateway_sa();
  IpsecGatewayApp app(sa);
  gen::TrafficGen traffic({.frame_size = 64, .seed = 33});

  std::set<u32> seqs;
  for (int round = 0; round < 4; ++round) {
    core::ShaderJob job(8);
    for (int i = 0; i < 8; ++i) job.chunk.append(traffic.next_frame());
    job.chunk.in_port = 0;
    app.process_cpu(job.chunk);
    for (u32 i = 0; i < job.chunk.count(); ++i) {
      const auto& esp = *reinterpret_cast<const net::EspHeader*>(job.chunk.packet(i).data() + 34);
      EXPECT_TRUE(seqs.insert(esp.sequence()).second);
    }
  }
  EXPECT_EQ(seqs.size(), 32u);
}

TEST(IpsecGatewayApp, NonIpv4GoesToSlowPathUntouched) {
  const auto sa = gateway_sa();
  IpsecGatewayApp app(sa);

  net::FrameSpec spec;
  auto v6 = net::build_udp_ipv6(spec, net::Ipv6Addr::from_words(1, 2),
                                net::Ipv6Addr::from_words(3, 4));
  core::ShaderJob job(2);
  job.chunk.append(v6);
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kSlowPath);
  EXPECT_EQ(job.chunk.packet(0).size(), v6.size());
}

TEST(IpsecGatewayApp, MultiJobShadeKeepsJobsSeparate) {
  const auto sa = gateway_sa();
  IpsecGatewayApp app(sa);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.frame_size = 300, .seed = 34});
  std::vector<std::unique_ptr<core::ShaderJob>> jobs;
  std::vector<core::ShaderJob*> ptrs;
  std::vector<net::FrameBuffer> originals;
  for (int j = 0; j < 3; ++j) {
    jobs.push_back(std::make_unique<core::ShaderJob>(8));
    jobs.back()->chunk.in_port = 0;
    for (int i = 0; i < 8; ++i) {
      originals.push_back(traffic.next_frame());
      jobs.back()->chunk.append(originals.back());
    }
    app.pre_shade(*jobs.back());
    ptrs.push_back(jobs.back().get());
  }
  app.shade(gpu.ctx, {ptrs.data(), ptrs.size()});

  auto rx_sa = gateway_sa();
  std::size_t orig = 0;
  for (auto& job : jobs) {
    app.post_shade(*job);
    for (u32 i = 0; i < job->chunk.count(); ++i, ++orig) {
      std::vector<u8> inner;
      ASSERT_EQ(crypto::esp_decapsulate(rx_sa, job->chunk.packet(i), inner),
                crypto::EspError::kOk);
      EXPECT_TRUE(std::equal(inner.begin() + 14, inner.end(), originals[orig].begin() + 14));
    }
  }
}

}  // namespace
}  // namespace ps::apps
