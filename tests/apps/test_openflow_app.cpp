// OpenFlow shader: CPU/GPU path equivalence, action semantics (output,
// drop, flood, controller), and precedence.
#include <gtest/gtest.h>

#include <set>

#include "apps/openflow_app.hpp"
#include "gen/traffic.hpp"

namespace ps::apps {
namespace {

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(2u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

openflow::FlowKey key_of_frame(std::span<const u8> frame, u16 in_port) {
  net::PacketView view;
  EXPECT_EQ(net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()),
                              view),
            net::ParseStatus::kOk);
  return openflow::extract_flow_key(view, in_port);
}

TEST(OpenFlowApp, GpuPathMatchesCpuPath) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 20, .flow_count = 64});

  // Install exact entries for half the flows and a wildcard catch-all for
  // UDP; the rest hit the default action.
  for (u32 flow = 0; flow < 32; ++flow) {
    const auto frame = traffic.frame_for_flow(flow);
    sw.exact().insert(key_of_frame(frame, 0), openflow::Action::output(static_cast<u16>(flow % 8)));
  }
  openflow::WildcardMatch udp_any;
  udp_any.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  udp_any.key.nw_proto = 17;
  udp_any.priority = 10;
  sw.wildcard().insert(udp_any, openflow::Action::output(7));
  sw.set_default_action(openflow::Action::drop());

  OpenFlowApp app(sw);
  GpuHarness gpu;

  core::ShaderJob gpu_job(128), cpu_job(128);
  for (int i = 0; i < 128; ++i) {
    const auto frame = traffic.next_frame();
    gpu_job.chunk.append(frame);
    cpu_job.chunk.append(frame);
  }
  gpu_job.chunk.in_port = cpu_job.chunk.in_port = 0;

  app.bind_gpu(gpu.device);
  app.pre_shade(gpu_job);
  core::ShaderJob* jobs[] = {&gpu_job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(gpu_job);

  app.process_cpu(cpu_job.chunk);

  ASSERT_EQ(gpu_job.chunk.count(), cpu_job.chunk.count());
  for (u32 i = 0; i < cpu_job.chunk.count(); ++i) {
    EXPECT_EQ(gpu_job.chunk.verdict(i), cpu_job.chunk.verdict(i)) << i;
    EXPECT_EQ(gpu_job.chunk.out_port(i), cpu_job.chunk.out_port(i)) << i;
  }
}

TEST(OpenFlowApp, ExactEntryTakesPrecedenceOverWildcard) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 21, .flow_count = 4});
  const auto frame = traffic.frame_for_flow(0);
  sw.exact().insert(key_of_frame(frame, 0), openflow::Action::output(2));

  openflow::WildcardMatch any;
  any.wildcards = openflow::kWildAll;
  any.priority = 65535;
  sw.wildcard().insert(any, openflow::Action::output(5));

  OpenFlowApp app(sw);
  core::ShaderJob job(4);
  job.chunk.append(frame);
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.out_port(0), 2);
}

TEST(OpenFlowApp, ControllerActionGoesToSlowPath) {
  openflow::OpenFlowSwitch sw;  // default action is kController
  OpenFlowApp app(sw);
  gen::TrafficGen traffic({.seed = 22});

  core::ShaderJob job(4);
  job.chunk.append(traffic.next_frame());
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.verdict(0), iengine::PacketVerdict::kSlowPath);
}

TEST(OpenFlowApp, FloodDuplicatesToAllOtherPorts) {
  openflow::OpenFlowSwitch sw;
  openflow::WildcardMatch any;
  any.wildcards = openflow::kWildAll;
  sw.wildcard().insert(any, openflow::Action::flood());

  OpenFlowApp app(sw);
  gen::TrafficGen traffic({.seed = 23});
  core::ShaderJob job(16);
  job.chunk.append(traffic.next_frame());
  job.chunk.in_port = 2;
  app.process_cpu(job.chunk);

  // Original + 6 clones = 7 copies, to every port except ingress 2.
  ASSERT_EQ(job.chunk.count(), 7u);
  std::set<i16> out_ports;
  for (u32 i = 0; i < job.chunk.count(); ++i) {
    EXPECT_EQ(job.chunk.verdict(i), iengine::PacketVerdict::kForward);
    out_ports.insert(job.chunk.out_port(i));
  }
  EXPECT_EQ(out_ports.size(), 7u);
  EXPECT_EQ(out_ports.count(2), 0u);
}

TEST(OpenFlowApp, GpuWildcardScanRespectsPriority) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 24, .flow_count = 1});
  const auto frame = traffic.frame_for_flow(0);

  // Two overlapping wildcard entries; higher priority must win on GPU too.
  openflow::WildcardMatch low;
  low.wildcards = openflow::kWildAll;
  low.priority = 1;
  sw.wildcard().insert(low, openflow::Action::output(1));
  openflow::WildcardMatch high;
  high.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  high.key.nw_proto = 17;
  high.priority = 100;
  sw.wildcard().insert(high, openflow::Action::output(6));

  OpenFlowApp app(sw);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  core::ShaderJob job(4);
  job.chunk.append(frame);
  job.chunk.in_port = 0;
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);
  EXPECT_EQ(job.chunk.out_port(0), 6);
}

TEST(OpenFlowApp, PerEntryCountersAdvanceOnCpuPath) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 25, .flow_count = 1});
  const auto frame = traffic.frame_for_flow(0);
  sw.exact().insert(key_of_frame(frame, 0), openflow::Action::output(0));

  OpenFlowApp app(sw);
  core::ShaderJob job(8);
  for (int i = 0; i < 8; ++i) job.chunk.append(frame);
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);

  u64 hits = 0;
  for (const auto& slot : sw.exact().slots()) {
    if (slot.occupied) hits += slot.stats.packets;
  }
  EXPECT_EQ(hits, 8u);
  EXPECT_EQ(sw.exact_hits(), 8u);
}


TEST(OpenFlowApp, L2RewriteActionsApplyOnCpuPath) {
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 26, .flow_count = 1});
  const auto frame = traffic.frame_for_flow(0);
  const auto new_src = net::MacAddr::for_port(42);
  const auto new_dst = net::MacAddr::for_port(43);
  sw.exact().insert(key_of_frame(frame, 0),
                    openflow::Action::output(3).with_dl_src(new_src).with_dl_dst(new_dst));

  OpenFlowApp app(sw);
  core::ShaderJob job(2);
  job.chunk.append(frame);
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);

  EXPECT_EQ(job.chunk.out_port(0), 3);
  net::PacketView view;
  auto pkt = job.chunk.packet(0);
  ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.eth().src_mac(), new_src);
  EXPECT_EQ(view.eth().dst_mac(), new_dst);
}

TEST(OpenFlowApp, L2RewriteActionsApplyOnGpuPath) {
  // The GPU returns (table, index); the post-shader must resolve the full
  // action — including rewrites — from the host table.
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 27, .flow_count = 1});
  const auto frame = traffic.frame_for_flow(0);
  const auto new_dst = net::MacAddr::for_port(55);
  sw.exact().insert(key_of_frame(frame, 0),
                    openflow::Action::output(4).with_dl_dst(new_dst));

  OpenFlowApp app(sw);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  core::ShaderJob job(2);
  job.chunk.append(frame);
  job.chunk.in_port = 0;
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);

  EXPECT_EQ(job.chunk.out_port(0), 4);
  net::PacketView view;
  auto pkt = job.chunk.packet(0);
  ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view),
            net::ParseStatus::kOk);
  EXPECT_EQ(view.eth().dst_mac(), new_dst);
}

TEST(OpenFlowApp, GpuIndexResolvesWildcardEntryExactly) {
  // Two wildcard entries with identical actions except the rewrite: the
  // index-based result must pick the right entry, not just any match.
  openflow::OpenFlowSwitch sw;
  gen::TrafficGen traffic({.seed = 28, .flow_count = 2});
  const auto f0 = traffic.frame_for_flow(0);

  net::PacketView v0;
  ASSERT_EQ(net::parse_packet(const_cast<u8*>(f0.data()), static_cast<u32>(f0.size()), v0),
            net::ParseStatus::kOk);

  openflow::WildcardMatch specific;  // matches only flow 0's src address
  specific.wildcards = openflow::kWildAll;
  specific.nw_src_bits = 32;
  specific.key.nw_src = v0.ipv4().src().value;
  specific.priority = 100;
  sw.wildcard().insert(specific,
                       openflow::Action::output(1).with_dl_dst(net::MacAddr::for_port(77)));

  openflow::WildcardMatch catchall;
  catchall.wildcards = openflow::kWildAll;
  catchall.priority = 1;
  sw.wildcard().insert(catchall, openflow::Action::output(2));

  OpenFlowApp app(sw);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  core::ShaderJob job(4);
  job.chunk.append(f0);                        // hits the specific entry
  job.chunk.append(traffic.frame_for_flow(1)); // falls to the catch-all
  job.chunk.in_port = 0;
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);

  EXPECT_EQ(job.chunk.out_port(0), 1);
  EXPECT_EQ(job.chunk.out_port(1), 2);
  net::PacketView after;
  auto pkt = job.chunk.packet(0);
  ASSERT_EQ(net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), after),
            net::ParseStatus::kOk);
  EXPECT_EQ(after.eth().dst_mac(), net::MacAddr::for_port(77));
}

}  // namespace
}  // namespace ps::apps
