// Dynamic IPv4 forwarding: live FIB updates with double-buffered GPU
// tables, including an update while the real-threaded router forwards.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/dynamic_ipv4.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

namespace ps::apps {
namespace {

using namespace std::chrono_literals;

route::Ipv4Prefix default_route(route::NextHop nh) { return {net::Ipv4Addr(0), 0, nh}; }

struct GpuHarness {
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device{0, topo, std::make_shared<gpu::SimtExecutor>(2u)};
  core::GpuContext ctx{&device, {gpu::kDefaultStream}};
};

void run_gpu(DynamicIpv4ForwardApp& app, GpuHarness& gpu, core::ShaderJob& job) {
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu.ctx, {jobs, 1});
  app.post_shade(job);
}

TEST(DynamicIpv4, CpuPathFollowsCommits) {
  route::Ipv4Fib fib;
  fib.announce(default_route(1));
  fib.commit();
  DynamicIpv4ForwardApp app(fib);

  gen::TrafficGen traffic({.seed = 50});
  core::ShaderJob job(8);
  job.chunk.append(traffic.next_frame());
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.out_port(0), 1);

  fib.announce(default_route(5));
  fib.commit();
  core::ShaderJob job2(8);
  job2.chunk.append(traffic.next_frame());
  app.process_cpu(job2.chunk);
  EXPECT_EQ(job2.chunk.out_port(0), 5);
}

TEST(DynamicIpv4, GpuPathUsesActiveCopyUntilSync) {
  route::Ipv4Fib fib;
  fib.announce(default_route(1));
  fib.commit();
  DynamicIpv4ForwardApp app(fib);
  GpuHarness gpu;
  app.bind_gpu(gpu.device);

  gen::TrafficGen traffic({.seed = 51});

  core::ShaderJob before(8);
  before.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, before);
  EXPECT_EQ(before.chunk.out_port(0), 1);

  // Commit a change but do NOT sync: the device still serves the old copy
  // (that is the double-buffering contract — no torn tables).
  fib.announce(default_route(6));
  fib.commit();
  core::ShaderJob stale(8);
  stale.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, stale);
  EXPECT_EQ(stale.chunk.out_port(0), 1);

  // sync() flips to the standby copy.
  EXPECT_EQ(app.sync(), 1);
  core::ShaderJob fresh(8);
  fresh.chunk.append(traffic.next_frame());
  run_gpu(app, gpu, fresh);
  EXPECT_EQ(fresh.chunk.out_port(0), 6);

  // Second sync with no new generation is a no-op.
  EXPECT_EQ(app.sync(), 0);
}

TEST(DynamicIpv4, WithdrawTurnsIntoDrop) {
  route::Ipv4Fib fib;
  fib.announce({net::Ipv4Addr(10, 0, 0, 0), 8, 2});
  fib.commit();
  DynamicIpv4ForwardApp app(fib);

  auto frame = net::build_udp_ipv4({}, net::Ipv4Addr(1, 1, 1, 1), net::Ipv4Addr(10, 2, 3, 4));
  core::ShaderJob job(4);
  job.chunk.append(frame);
  app.process_cpu(job.chunk);
  EXPECT_EQ(job.chunk.out_port(0), 2);

  fib.withdraw({net::Ipv4Addr(10, 0, 0, 0), 8, 2});
  fib.commit();
  core::ShaderJob job2(4);
  job2.chunk.append(frame);
  app.process_cpu(job2.chunk);
  EXPECT_EQ(job2.chunk.verdict(0), iengine::PacketVerdict::kDrop);
}

TEST(DynamicIpv4, LiveUpdateUnderThreadedRouter) {
  // The §7 scenario: a control plane re-routes traffic while the router
  // forwards at full tilt. No packets are lost; eventually all traffic
  // shifts to the new next hop.
  route::Ipv4Fib fib;
  fib.announce(default_route(1));
  fib.commit();
  DynamicIpv4ForwardApp app(fib);

  core::Testbed testbed({.topo = pcie::Topology::paper_server(),
                         .use_gpu = true,
                         .ring_size = 4096,
                         .gpu_pool_workers = 2},
                        core::RouterConfig{.use_gpu = true});
  gen::TrafficGen traffic({.frame_size = 64, .seed = 52});
  testbed.connect_sink(&traffic);

  core::Router router(testbed.engine(), testbed.gpus(), app, core::RouterConfig{.use_gpu = true});
  router.start();

  const u64 phase = 1500;
  traffic.offer(testbed.ports(), phase);

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (traffic.sunk_packets() < phase && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(traffic.sunk_packets(), phase);
  EXPECT_EQ(traffic.sunk_on_port(1), phase);  // all via old next hop

  // Control plane: re-route everything to port 6 while the router runs.
  fib.announce(default_route(6));
  fib.commit();
  app.sync();

  traffic.offer(testbed.ports(), phase);
  const auto deadline2 = std::chrono::steady_clock::now() + 5s;
  while (traffic.sunk_packets() < 2 * phase && std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(1ms);
  }
  router.stop();

  EXPECT_EQ(traffic.sunk_packets(), 2 * phase);          // nothing lost
  EXPECT_EQ(traffic.sunk_on_port(6), phase);             // all new traffic moved
  EXPECT_EQ(traffic.sunk_on_port(1), phase);             // old traffic untouched
}

}  // namespace
}  // namespace ps::apps
