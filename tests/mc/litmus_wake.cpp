// Litmus: WakeSignal's Dekker protocol — a wakeup is never lost.
//
// The hazard is store-buffering: the consumer publishes waiting_=true and
// re-checks the ring; the producer publishes an item and checks waiting_.
// Without the two seq_cst fences both can read stale values: the producer
// skips the notify, the consumer parks on a non-empty ring, and — because
// the model's CondVar has no timeout to hide behind — the execution
// deadlocks, which is exactly what the checker reports. The real header
// passes because both fences are there; mc_mutants.cpp proves dropping
// either one is caught.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "common/spsc_ring.hpp"
#include "mc/mc.hpp"
#include "mc/tracked.hpp"

namespace {

using ps::u64;
using ps::mc::Options;
using ps::mc::Outcome;

constexpr std::chrono::hours kForever{24};

// Direct protocol use, as SpscFanIn::pop_batch_wait_for uses it: arm,
// re-check, park. One item from the producer must always be received.
TEST(McWakeSignal, NeverLostWakeup) {
  Options opt;
  opt.name = "wake_no_lost";
  Outcome o = ps::mc::check(opt, [] {
    ps::SpscRing<ps::mc::Tracked<u64>> ring(2);
    ps::WakeSignal wake;
    ps::mc::Thread producer([&] {
      bool pushed = ring.push(ps::mc::Tracked<u64>(42));
      MC_ASSERT(pushed);  // capacity 2, single item: cannot be full
      wake.notify();
    });
    ps::mc::Thread consumer([&] {
      for (;;) {
        std::optional<ps::mc::Tracked<u64>> v = ring.pop();
        if (v.has_value()) {
          MC_ASSERT(v->get() == 42);
          return;
        }
        const u64 token = wake.prepare_wait();
        // The mandated re-check between arm and park: the seq_cst fence
        // in prepare_wait() orders it against the producer's publish.
        v = ring.pop();
        if (v.has_value()) {
          wake.cancel_wait();
          MC_ASSERT(v->get() == 42);
          return;
        }
        // A lost wakeup would park here forever -> deadlock -> reported.
        wake.wait_until(token, std::chrono::steady_clock::now() + kForever);
      }
    });
    producer.join();
    consumer.join();
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

// The same property through the production entry point: a consumer parked
// in SpscFanIn::pop_batch_wait_for must always receive the racing push.
TEST(McWakeSignal, FanInWaitForReceivesRacingPush) {
  Options opt;
  opt.name = "fanin_wait_for";
  Outcome o = ps::mc::check(opt, [] {
    ps::SpscFanIn<u64> fanin(1, 2);
    ps::mc::Thread producer([&] {
      while (!fanin.try_push(0, 7)) ps::mc::spin_wait();
    });
    ps::mc::Thread consumer([&] {
      std::vector<u64> out;
      out.reserve(2);
      const std::size_t n = fanin.pop_batch_wait_for(out, 2, kForever);
      MC_ASSERT(n == 1);
      MC_ASSERT(out[0] == 7);
    });
    producer.join();
    consumer.join();
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

// close() must also end a park: a consumer waiting on an empty fan-in
// while another thread closes it may not sleep forever.
TEST(McWakeSignal, CloseWakesParkedConsumer) {
  Options opt;
  opt.name = "fanin_close_wakes";
  Outcome o = ps::mc::check(opt, [] {
    ps::SpscFanIn<u64> fanin(1, 2);
    ps::mc::Thread closer([&] { fanin.close(); });
    ps::mc::Thread consumer([&] {
      std::vector<u64> out;
      out.reserve(2);
      const std::size_t n = fanin.pop_batch_wait_for(out, 2, kForever);
      MC_ASSERT(n == 0);
    });
    closer.join();
    consumer.join();
    MC_ASSERT(fanin.drained());
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

}  // namespace
