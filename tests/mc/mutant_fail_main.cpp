// WILL_FAIL driver: run one seeded-bug protocol exactly the way a real
// litmus target would (exit 0 on verified, nonzero on violation) so the
// ctest entry McMutantMustFail proves the end-to-end failure mode — a
// checker regression that stops reporting the bug turns this command's
// exit code green and the WILL_FAIL inversion red.
#include <cstdio>

#include "protocols.hpp"

int main() {
  const ps::mc::Outcome o =
      ps::mc_litmus::check_mini_wake<false, true>("mutant_must_fail");
  if (!o.ok) {
    std::printf("violation (expected): %s\n%s", o.error.c_str(), o.trace.c_str());
    return 1;
  }
  std::printf("verified clean after %llu executions -- the checker missed the seeded bug\n",
              static_cast<unsigned long long>(o.executions));
  return 0;
}
