// Litmus: the real epoch::Domain — never reclaim while a reader is
// pinned and can still reach the object.
//
// This TU compiles src/common/epoch.cpp itself under -DPS_MODEL_CHECK
// (see CMakeLists.txt) with PS_EPOCH_MAX_READERS shrunk to 2, so the
// reclaim scan the checker explores is the real code, not a replica. The
// interval argument under test is the asymmetric fence pairing: the
// reader's pin fence (relaxed slot store, then seq_cst fence, then the
// protected-pointer load) against the writer's pre-scan fence. The
// "free" is modeled as a relaxed store the retired object's deleter
// makes; a reader that observes it while dereferencing the old pointer
// is exactly a use-after-reclaim.
#include <gtest/gtest.h>

#include <memory>

#include "common/epoch.hpp"
#include "mc/mc.hpp"

namespace {

using ps::u64;
using ps::mc::Options;
using ps::mc::Outcome;

TEST(McEpoch, NeverReclaimWhilePinned) {
  Options opt;
  opt.name = "epoch_no_uaf";
  Outcome o = ps::mc::check(opt, [] {
    ps::epoch::Domain domain;
    static int old_obj = 0;
    static int new_obj = 0;
    // Plain on purpose, twice over: the deleter runs inside ~shared_ptr
    // (noexcept — a model op that could unwind there would terminate),
    // and the weak behavior under test lives entirely in the slot/epoch/
    // current atomics. This is just the oracle flag the "free" flips.
    int old_alive = 1;
    ps::mc::atomic<int*> current{&old_obj};

    ps::mc::Thread reader([&] {
      ps::epoch::Guard g = domain.pin();
      int* p = current.load(std::memory_order_acquire);
      if (p == &old_obj) {
        // Still holding the old object: it must not have been reclaimed.
        MC_ASSERT(old_alive == 1);
      }
    });

    ps::mc::Thread writer([&] {
      // Unpublish, retire (epoch bump), reclaim — the FibManager commit
      // sequence. The deleter is the "free": it poisons old_alive.
      current.store(&new_obj, std::memory_order_release);
      domain.retire(std::shared_ptr<const void>(
          static_cast<const void*>(&old_obj),
          [&](const void*) { old_alive = 0; }));
      domain.reclaim();
    });

    reader.join();
    writer.join();
    // With the reader gone, reclaim must free everything retired.
    domain.reclaim();
    MC_ASSERT(domain.retired_pending() == 0);
    MC_ASSERT(old_alive == 0);
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

// Thread-exit slot release under the model: sequential reader threads
// beyond the PS_EPOCH_MAX_READERS=2 slot budget only work if each exiting
// virtual thread's ThreadSlots destructor gives its claim back through
// the live-domain registry. A leak would make the third pin throw.
TEST(McEpoch, SlotReleasedAtThreadExit) {
  Options opt;
  opt.name = "epoch_slot_release";
  Outcome o = ps::mc::check(opt, [] {
    ps::epoch::Domain domain;
    for (int i = 0; i < 3; ++i) {
      ps::mc::Thread reader([&] {
        ps::epoch::Guard g = domain.pin();
        MC_ASSERT(domain.active_readers() >= 1);
      });
      reader.join();
    }
    MC_ASSERT(domain.active_readers() == 0);
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

}  // namespace
