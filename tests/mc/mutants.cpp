// Seeded-bug mutants: weaken one memory-order knob per protocol replica
// and assert the checker FIRES. A checker that stops catching any of
// these has silently lost its teeth — these tests are the litmus suite's
// own regression suite. The unmutated replicas must still verify clean,
// proving the catch is the bug, not replica noise.
#include <gtest/gtest.h>

#include <string>

#include "protocols.hpp"

namespace {

using ps::mc::Outcome;
using ps::mc_litmus::check_mini_epoch;
using ps::mc_litmus::check_mini_spsc;
using ps::mc_litmus::check_mini_wake;

constexpr auto kRelaxed = std::memory_order_relaxed;
constexpr auto kAcquire = std::memory_order_acquire;
constexpr auto kRelease = std::memory_order_release;

// --- baselines: the faithful replicas verify clean --------------------------

TEST(McMutants, SpscBaselineClean) {
  Outcome o = check_mini_spsc<kRelease, kAcquire, kRelease>("mini_spsc_ok");
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted);
}

TEST(McMutants, WakeBaselineClean) {
  Outcome o = check_mini_wake<true, true>("mini_wake_ok");
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted);
}

TEST(McMutants, EpochBaselineClean) {
  Outcome o = check_mini_epoch<true, true>("mini_epoch_ok");
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted);
}

// --- SpscRing mutants -------------------------------------------------------

// Producer publishes head with relaxed: the consumer can observe the new
// head before the slot write — a torn hand-off the Tracked payload
// reports as a race (or the FIFO assert as a stale value).
TEST(McMutants, SpscPublishRelaxedCaught) {
  Outcome o = check_mini_spsc<kRelaxed, kAcquire, kRelease>("mini_spsc_pub_rlx");
  EXPECT_FALSE(o.ok) << "checker failed to catch the relaxed head publish";
}

// Consumer reads head with relaxed: severs the same edge from the other
// side.
TEST(McMutants, SpscConsumeRelaxedCaught) {
  Outcome o = check_mini_spsc<kRelease, kRelaxed, kRelease>("mini_spsc_cons_rlx");
  EXPECT_FALSE(o.ok) << "checker failed to catch the relaxed head consume";
}

// Consumer returns the slot with a relaxed tail store: the producer's
// acquire refresh no longer carries the consumer's read, so the slot
// REUSE write races the consumer's earlier read of the same slot.
TEST(McMutants, SpscSlotReuseRelaxedCaught) {
  Outcome o = check_mini_spsc<kRelease, kAcquire, kRelaxed>("mini_spsc_ret_rlx");
  EXPECT_FALSE(o.ok) << "checker failed to catch the relaxed tail return";
}

// --- WakeSignal mutants -----------------------------------------------------

// Drop the producer-side (notify) fence: store-buffering lets the
// producer miss waiting_=true while the consumer missed the item — the
// consumer parks forever (deadlock).
TEST(McMutants, WakeDropNotifyFenceCaught) {
  Outcome o = check_mini_wake<false, true>("mini_wake_no_notify_fence");
  EXPECT_FALSE(o.ok) << "checker failed to catch the dropped notify fence";
  EXPECT_NE(o.error.find("deadlock"), std::string::npos) << o.error;
}

// Drop the consumer-side (prepare_wait) fence: same lost wakeup, other
// side of the Dekker pair.
TEST(McMutants, WakeDropPrepareFenceCaught) {
  Outcome o = check_mini_wake<true, false>("mini_wake_no_prepare_fence");
  EXPECT_FALSE(o.ok) << "checker failed to catch the dropped prepare fence";
  EXPECT_NE(o.error.find("deadlock"), std::string::npos) << o.error;
}

// --- Epoch mutants ----------------------------------------------------------

// Drop the reader's pin fence (`mc: epoch.fence.pin`): the writer's scan
// can miss the pin and reclaim under a reader still holding the old
// pointer.
TEST(McMutants, EpochDropPinFenceCaught) {
  Outcome o = check_mini_epoch<false, true>("mini_epoch_no_pin_fence");
  EXPECT_FALSE(o.ok) << "checker failed to catch the dropped pin fence";
}

// Drop the writer's pre-scan fence (`mc: epoch.fence.scan`): same hazard
// from the writer's side of the interval argument.
TEST(McMutants, EpochDropScanFenceCaught) {
  Outcome o = check_mini_epoch<true, false>("mini_epoch_no_scan_fence");
  EXPECT_FALSE(o.ok) << "checker failed to catch the dropped scan fence";
}

}  // namespace
