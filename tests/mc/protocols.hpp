// Template-parameterized replicas of the three lock-free protocols the
// litmus suite covers, with the memory orders (or fences) as template
// knobs. The production headers hard-code the correct orders; these
// replicas exist so the mutant tests can *weaken* one knob at a time and
// prove the checker catches each seeded bug. Keep each replica a faithful
// skeleton of its production counterpart — same stores, same loads, same
// fences — just small enough to enumerate.
#pragma once

#include <array>

#include "common/thread_annotations.hpp"
#include "mc/mc.hpp"
#include "mc/mc_atomic.hpp"
#include "mc/tracked.hpp"

namespace ps::mc_litmus {

// --- SpscRing skeleton ------------------------------------------------------
// Two-slot ring, three items (forces slot reuse). Knobs:
//   PubOrder:  producer's head publish   (production: release)
//   ConsOrder: consumer's head read      (production: acquire)
//   RetOrder:  consumer's tail return    (production: release)
// The producer's tail refresh stays acquire, as in production — the three
// knobs isolate the three edges a mutant can sever.
template <std::memory_order PubOrder, std::memory_order ConsOrder,
          std::memory_order RetOrder>
inline ps::mc::Outcome check_mini_spsc(const char* name) {
  ps::mc::Options opt;
  opt.name = name;
  return ps::mc::check(opt, [] {
    struct Ring {
      ps::mc::atomic<ps::u64> head{0};
      ps::mc::atomic<ps::u64> tail{0};
      std::array<ps::mc::Tracked<ps::u64>, 2> slots{};
    } ring;
    ps::mc::Thread producer([&] {
      for (ps::u64 i = 1; i <= 3; ++i) {
        const ps::u64 h = ring.head.load(std::memory_order_relaxed);
        while (h - ring.tail.load(std::memory_order_acquire) >= 2) {
          ps::mc::spin_wait();
        }
        ring.slots[h & 1] = ps::mc::Tracked<ps::u64>(i);
        ring.head.store(h + 1, PubOrder);
      }
    });
    ps::mc::Thread consumer([&] {
      for (ps::u64 expect = 1; expect <= 3; ++expect) {
        const ps::u64 t = ring.tail.load(std::memory_order_relaxed);
        while (ring.head.load(ConsOrder) == t) ps::mc::spin_wait();
        MC_ASSERT(ring.slots[t & 1].get() == expect);
        ring.tail.store(t + 1, RetOrder);
      }
    });
    producer.join();
    consumer.join();
  });
}

// --- WakeSignal skeleton ----------------------------------------------------
// The Dekker arm/notify protocol around a one-word "ring". Knobs: the two
// seq_cst fences (production has both). A severed fence loses the wakeup
// in some interleaving, and with the model's timeout-free CondVar that is
// a deadlock, which the checker reports.
template <bool NotifyFence, bool PrepareFence>
inline ps::mc::Outcome check_mini_wake(const char* name) {
  ps::mc::Options opt;
  opt.name = name;
  return ps::mc::check(opt, [] {
    struct Wake {
      ps::mc::atomic<int> item{0};
      ps::mc::atomic<bool> waiting{false};
      ps::Mutex mu;
      ps::u64 wake_seq GUARDED_BY(mu) = 0;
      ps::CondVar cv;
    } w;
    ps::mc::Thread producer([&] {
      w.item.store(1, std::memory_order_relaxed);  // publish the "item"
      if (NotifyFence) ps::mc::fence(std::memory_order_seq_cst);
      if (w.waiting.load(std::memory_order_relaxed)) {
        {
          ps::MutexLock lock(w.mu);
          ++w.wake_seq;
        }
        w.cv.notify_one();
      }
    });
    ps::mc::Thread consumer([&] {
      w.waiting.store(true, std::memory_order_relaxed);
      if (PrepareFence) ps::mc::fence(std::memory_order_seq_cst);
      ps::u64 token;
      {
        ps::MutexLock lock(w.mu);
        token = w.wake_seq;
      }
      // The mandated re-check between arm and park.
      if (w.item.load(std::memory_order_relaxed) == 0) {
        ps::MutexLock lock(w.mu);
        // Lost wakeup = nobody ever bumps wake_seq = deadlock here.
        while (w.wake_seq == token) w.cv.wait(w.mu);
      }
      w.waiting.store(false, std::memory_order_relaxed);
      MC_ASSERT(w.item.load(std::memory_order_relaxed) == 1);
    });
    producer.join();
    consumer.join();
  });
}

// --- Epoch reclamation skeleton ---------------------------------------------
// One reader slot, one retire/reclaim cycle. Knobs: the reader's pin
// fence and the writer's pre-scan fence (production epoch.cpp has both:
// `mc: epoch.fence.pin` / `mc: epoch.fence.scan`). The "free" is a
// relaxed poison store, the "use" is the reader's dereference-while-
// holding-the-old-pointer assert.
template <bool PinFence, bool ScanFence>
inline ps::mc::Outcome check_mini_epoch(const char* name) {
  ps::mc::Options opt;
  opt.name = name;
  return ps::mc::check(opt, [] {
    struct Dom {
      ps::mc::atomic<ps::u64> epoch{1};
      ps::mc::atomic<ps::u64> slot{~ps::u64{0}};
      ps::mc::atomic<int> current{1};  // 1 = old object, 2 = replacement
      ps::mc::atomic<int> old_alive{1};
    } d;
    ps::mc::Thread reader([&] {
      const ps::u64 e = d.epoch.load(std::memory_order_acquire);
      d.slot.store(e, std::memory_order_relaxed);
      if (PinFence) ps::mc::fence(std::memory_order_seq_cst);
      if (d.current.load(std::memory_order_acquire) == 1) {
        MC_ASSERT(d.old_alive.load(std::memory_order_relaxed) == 1);
      }
      d.slot.store(~ps::u64{0}, std::memory_order_release);
    });
    ps::mc::Thread writer([&] {
      d.current.store(2, std::memory_order_release);  // unpublish old
      const ps::u64 tag = d.epoch.fetch_add(1, std::memory_order_seq_cst);
      if (ScanFence) ps::mc::fence(std::memory_order_seq_cst);
      const ps::u64 pinned = d.slot.load(std::memory_order_acquire);
      if (pinned > tag) {  // kIdle or pinned after the bump: reclaimable
        d.old_alive.store(0, std::memory_order_relaxed);
      }
    });
    reader.join();
    writer.join();
  });
}

}  // namespace ps::mc_litmus
