// Litmus: the real SpscRing under the ps::mc weak-memory model.
//
// This TU compiles with -DPS_MODEL_CHECK, so the ps::atomic members
// inside spsc_ring.hpp are mc::atomic and every interleaving *and* every
// admissible stale read the C++11 model allows is explored. The payload
// is mc::Tracked, so a slot handed to the consumer without a
// happens-before edge is reported as a data race even when the value
// happens to look right.
#include <gtest/gtest.h>

#include <optional>

#include "common/spsc_ring.hpp"
#include "mc/mc.hpp"
#include "mc/tracked.hpp"

namespace {

using ps::u64;
using ps::mc::Options;
using ps::mc::Outcome;

// FIFO + no-loss + no-dup through a capacity-2 ring with wraparound (3
// items through 2 slots), which also exercises slot *reuse*: the producer
// overwrites a slot the consumer read earlier, an edge that is only safe
// because the consumer's tail release-store pairs with the producer's
// acquire refresh of tail_cache_.
TEST(McSpscRing, FifoNoLossNoDupWithWraparound) {
  Options opt;
  opt.name = "spsc_fifo";
  Outcome o = ps::mc::check(opt, [] {
    ps::SpscRing<ps::mc::Tracked<u64>> ring(2);
    ps::mc::Thread producer([&] {
      for (u64 i = 1; i <= 3; ++i) {
        while (!ring.push(ps::mc::Tracked<u64>(i))) ps::mc::spin_wait();
      }
    });
    ps::mc::Thread consumer([&] {
      for (u64 expect = 1; expect <= 3;) {
        std::optional<ps::mc::Tracked<u64>> v = ring.pop();
        if (!v.has_value()) {
          ps::mc::spin_wait();
          continue;
        }
        MC_ASSERT(v->get() == expect);  // FIFO and exactly-once
        ++expect;
      }
    });
    producer.join();
    consumer.join();
    MC_ASSERT(!ring.pop().has_value());  // no extra items
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

// Batch pop has its own tail-publication path; drain 3 items through
// pop_batch with wraparound and check order/count.
TEST(McSpscRing, PopBatchFifo) {
  Options opt;
  opt.name = "spsc_pop_batch";
  Outcome o = ps::mc::check(opt, [] {
    ps::SpscRing<ps::mc::Tracked<u64>> ring(2);
    ps::mc::Thread producer([&] {
      for (u64 i = 1; i <= 3; ++i) {
        while (!ring.push(ps::mc::Tracked<u64>(i))) ps::mc::spin_wait();
      }
    });
    ps::mc::Thread consumer([&] {
      ps::mc::Tracked<u64> buf[2];
      u64 expect = 1;
      while (expect <= 3) {
        const std::size_t n = ring.pop_batch(buf, 2);
        if (n == 0) {
          ps::mc::spin_wait();
          continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
          MC_ASSERT(buf[i].get() == expect);
          ++expect;
        }
      }
    });
    producer.join();
    consumer.join();
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

}  // namespace
