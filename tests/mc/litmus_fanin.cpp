// Litmus: SpscFanIn conservation under the capacity split.
//
// Two producers push disjoint value sets through their private lanes
// while the consumer sweeps; every pushed item must be delivered exactly
// once (no loss, no duplication across the lane boundary) and each
// producer's items must arrive in its push order. Slot-reuse/wraparound
// of the underlying SPSC ring is covered by litmus_spsc.cpp on the same
// code; this scenario stays wrap-free — three threads over a wrapping
// ring pushes the schedule space past what exhausts in CI seconds.
#include <gtest/gtest.h>

#include <vector>

#include "common/spsc_ring.hpp"
#include "mc/mc.hpp"

namespace {

using ps::u64;
using ps::mc::Options;
using ps::mc::Outcome;

TEST(McFanIn, ConservationAndPerProducerFifo) {
  Options opt;
  opt.name = "fanin_conservation";
  Outcome o = ps::mc::check(opt, [] {
    // total 4 over 2 producers -> per-lane capacity 2. The body (virtual
    // thread 0) pre-fills lane 0 sequentially — per-producer FIFO across
    // the consumer's sweep is still checked, without a third concurrent
    // thread. Producer b's racing push exercises the cross-lane boundary.
    ps::SpscFanIn<u64> fanin(2, 4);
    MC_ASSERT(fanin.per_ring_capacity() == 2);
    MC_ASSERT(fanin.try_push(0, 1));
    MC_ASSERT(fanin.try_push(0, 2));
    ps::mc::Thread b([&] { MC_ASSERT(fanin.try_push(1, 101)); });
    ps::mc::Thread consumer([&] {
      u64 next_a = 1, next_b = 1;
      std::size_t total = 0;
      while (total < 3) {
        std::vector<u64> batch;
        batch.reserve(4);
        const std::size_t n = fanin.pop_batch(batch, 4);
        if (n == 0) {
          ps::mc::spin_wait();
          continue;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const u64 v = batch[i];
          if (v >= 100) {
            MC_ASSERT(v == 100 + next_b);  // per-producer FIFO, lane 1
            ++next_b;
          } else {
            MC_ASSERT(v == next_a);  // per-producer FIFO, lane 0
            ++next_a;
          }
        }
        total += n;
      }
      MC_ASSERT(next_a == 3 && next_b == 2);  // no loss, no dup
    });
    b.join();
    consumer.join();
    MC_ASSERT(fanin.size() == 0);
  });
  EXPECT_TRUE(o.ok) << o.error << "\n" << o.trace;
  EXPECT_TRUE(o.exhausted) << "state space not fully explored: " << o.executions;
}

}  // namespace
