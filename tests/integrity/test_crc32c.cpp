// CRC32C (Castagnoli) known-answer and chaining properties. The vectors are
// the canonical ones from RFC 3720 appendix B.4, so a table regression can't
// silently redefine what "intact bytes" means for the whole integrity layer.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "integrity/crc32c.hpp"

namespace ps::integrity {
namespace {

std::span<const u8> bytes(const char* s) {
  return {reinterpret_cast<const u8*>(s), std::strlen(s)};
}

TEST(Crc32c, KnownAnswerCheckString) {
  // The classic CRC "check" value.
  EXPECT_EQ(crc32c(bytes("123456789")), 0xE3069283u);
}

TEST(Crc32c, KnownAnswerRfc3720Vectors) {
  // RFC 3720 B.4: 32 bytes of zeros / ones / ascending.
  std::array<u8, 32> buf{};
  EXPECT_EQ(crc32c(buf), 0x8A9136AAu);
  buf.fill(0xff);
  EXPECT_EQ(crc32c(buf), 0x62A8AB43u);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<u8>(i);
  EXPECT_EQ(crc32c(buf), 0x46DD794Eu);
}

TEST(Crc32c, EmptyInputIsSeed) {
  EXPECT_EQ(crc32c({}), 0u);
  EXPECT_EQ(crc32c({}, 0xdeadbeefu), 0xdeadbeefu);
}

TEST(Crc32c, SeedChainsFragments) {
  // crc(a ++ b) == crc(b, seed = crc(a)) for every split point — the
  // property the NIC relies on to stamp frames cell by cell.
  std::vector<u8> data(97);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7 + 3);
  const u32 whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const u32 first = crc32c({data.data(), split});
    const u32 chained = crc32c({data.data() + split, data.size() - split}, first);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32c, SingleBitFlipChangesCrc) {
  // Detection guarantee the fault points lean on: any one flipped bit in a
  // frame-sized buffer must change the stamp.
  std::vector<u8> data(64, 0xa5);
  const u32 clean = crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<u8>(1u << bit);
      EXPECT_NE(crc32c(data), clean) << "byte=" << byte << " bit=" << bit;
      data[byte] ^= static_cast<u8>(1u << bit);
    }
  }
  EXPECT_EQ(crc32c(data), clean);
}

}  // namespace
}  // namespace ps::integrity
