// IntegrityChecker unit semantics: stamp/verify localization, the
// first-boundary-counts-once rule, shadow sampling/escalation decisions,
// and the exported integrity.* metric probes.
#include <gtest/gtest.h>

#include <vector>

#include "iengine/chunk.hpp"
#include "integrity/integrity.hpp"
#include "telemetry/metrics.hpp"

namespace ps::integrity {
namespace {

using iengine::DropReason;
using iengine::PacketChunk;
using iengine::PacketVerdict;

PacketChunk make_chunk(u32 packets, u32 frame_size = 64) {
  PacketChunk chunk;
  std::vector<u8> frame(frame_size);
  for (u32 p = 0; p < packets; ++p) {
    for (u32 i = 0; i < frame_size; ++i) frame[i] = static_cast<u8>(p * 31 + i);
    EXPECT_TRUE(chunk.append(frame));
  }
  return chunk;
}

TEST(Integrity, StampThenVerifyCleanChunk) {
  IntegrityChecker checker;
  auto chunk = make_chunk(8);
  checker.stamp_chunk(chunk);
  EXPECT_TRUE(chunk.stamped());
  EXPECT_EQ(checker.stamped_packets(), 8u);
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kGather), 0u);
  EXPECT_EQ(checker.verified_packets(), 8u);
  EXPECT_EQ(checker.total_corrupt(), 0u);
}

TEST(Integrity, CorruptionLocalizedAtFirstBoundaryOnly) {
  IntegrityChecker checker;
  auto chunk = make_chunk(4);
  checker.stamp_chunk(chunk);

  chunk.packet(2)[10] ^= 0x01;  // silent single-bit flip

  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kGather), 1u);
  EXPECT_TRUE(chunk.integrity_bad(2));
  EXPECT_EQ(checker.corrupt_at(Stage::kGather), 1u);

  // Downstream boundaries see the flag and must not recount.
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kScatter), 0u);
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kTx), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kScatter), 0u);
  EXPECT_EQ(checker.corrupt_at(Stage::kTx), 0u);
  EXPECT_EQ(checker.total_corrupt(), 1u);
}

TEST(Integrity, DroppedPacketsAreSkipped) {
  IntegrityChecker checker;
  auto chunk = make_chunk(3);
  chunk.set_drop(1, DropReason::kParseError);
  checker.stamp_chunk(chunk);
  EXPECT_EQ(checker.stamped_packets(), 2u);  // the drop is not stamped

  chunk.packet(1)[0] ^= 0xff;  // corrupting a dead packet is invisible
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kTx), 0u);
  EXPECT_EQ(checker.verified_packets(), 2u);
  EXPECT_FALSE(chunk.integrity_bad(1));
}

TEST(Integrity, RestampClearsFlagsAndCoversNewBytes) {
  IntegrityChecker checker;
  auto chunk = make_chunk(2);
  checker.stamp_chunk(chunk);
  chunk.packet(0)[5] ^= 0x10;
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kRx), 1u);

  // A sanctioned mutation point restamps: the current bytes become the new
  // ground truth and the bad flag is wiped.
  checker.stamp_chunk(chunk);
  EXPECT_FALSE(chunk.integrity_bad(0));
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kTx), 0u);
}

TEST(Integrity, UnstampedChunkVerifiesAsClean) {
  IntegrityChecker checker;
  auto chunk = make_chunk(2);
  chunk.set_stamped(false);  // e.g. the CPU-only fast path ended coverage
  chunk.packet(0)[0] ^= 0xff;
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kTx), 0u);
  EXPECT_EQ(checker.verified_packets(), 0u);
}

TEST(Integrity, StampingDisabledIsInert) {
  IntegrityChecker checker(IntegrityConfig{.stamping = false});
  auto chunk = make_chunk(2);
  checker.stamp_chunk(chunk);
  EXPECT_EQ(checker.stamped_packets(), 0u);
  chunk.packet(0)[0] ^= 0xff;
  EXPECT_EQ(checker.verify_chunk(chunk, Stage::kTx), 0u);
  EXPECT_EQ(checker.total_corrupt(), 0u);
}

TEST(Integrity, ShadowSamplingOneInN) {
  IntegrityChecker checker(IntegrityConfig{.shadow_sample_every = 4});
  u32 sampled = 0;
  for (u64 seq = 0; seq < 64; ++seq) {
    if (checker.should_shadow_verify(seq, /*escalated=*/false)) ++sampled;
  }
  EXPECT_EQ(sampled, 16u);
  EXPECT_TRUE(checker.should_shadow_verify(0, false));
  EXPECT_FALSE(checker.should_shadow_verify(1, false));
}

TEST(Integrity, ShadowEscalationVerifiesEveryBatch) {
  IntegrityChecker checker(IntegrityConfig{.shadow_sample_every = 1000});
  EXPECT_FALSE(checker.should_shadow_verify(1, /*escalated=*/false));
  EXPECT_TRUE(checker.should_shadow_verify(1, /*escalated=*/true));
}

TEST(Integrity, ShadowSamplingZeroDisables) {
  IntegrityChecker checker(IntegrityConfig{.shadow_sample_every = 0});
  EXPECT_FALSE(checker.should_shadow_verify(0, false));
  EXPECT_FALSE(checker.should_shadow_verify(0, true));  // even escalated
}

TEST(Integrity, ShadowMismatchCountsBatchAndPackets) {
  IntegrityChecker checker;
  checker.count_shadow_batch();
  checker.count_shadow_batch();
  checker.count_shadow_mismatch(3);
  checker.count_reshaded_batch();
  checker.count_quarantined(2);
  checker.count_device_suspect();
  EXPECT_EQ(checker.shadow_batches(), 2u);
  EXPECT_EQ(checker.shadow_mismatch_batches(), 1u);
  EXPECT_EQ(checker.corrupt_at(Stage::kShadow), 3u);
  EXPECT_EQ(checker.reshaded_batches(), 1u);
  EXPECT_EQ(checker.quarantined_packets(), 2u);
  EXPECT_EQ(checker.devices_tripped(), 1u);
}

TEST(Integrity, RegisterMetricsExportsAllProbes) {
  IntegrityChecker checker;
  telemetry::MetricsRegistry registry;
  checker.register_metrics(registry);

  auto chunk = make_chunk(4);
  checker.stamp_chunk(chunk);
  chunk.packet(0)[0] ^= 0x01;
  checker.verify_chunk(chunk, Stage::kScatter);
  checker.count_shadow_batch();
  checker.count_shadow_mismatch(1);
  checker.count_quarantined(1);

  const auto snap = registry.snapshot();
  for (const char* name :
       {"integrity.corrupt_at.rx", "integrity.corrupt_at.gather",
        "integrity.corrupt_at.scatter", "integrity.corrupt_at.tx",
        "integrity.corrupt_at.shadow", "integrity.verified_packets",
        "integrity.stamped_packets", "integrity.shadow_batches",
        "integrity.shadow_mismatch_batches", "integrity.reshaded_batches",
        "integrity.quarantined_packets", "integrity.devices_tripped"}) {
    EXPECT_TRUE(snap.has(name)) << name;
  }
  EXPECT_EQ(snap.value("integrity.corrupt_at.scatter"), 1u);
  EXPECT_EQ(snap.value("integrity.stamped_packets"), 4u);
  EXPECT_EQ(snap.value("integrity.shadow_mismatch_batches"), 1u);
  EXPECT_EQ(snap.value("integrity.quarantined_packets"), 1u);
}

}  // namespace
}  // namespace ps::integrity
