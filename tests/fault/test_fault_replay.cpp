// Seed-replay determinism: the reproducibility contract the chaos tests
// build on. Same seed + same hit sequence => byte-identical firing record,
// including probabilistic rules, because probability draws are serialized
// with hits under the injector lock.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault_injector.hpp"

namespace ps::fault {
namespace {

// A deterministic interleaved "traffic pattern" over three points, with a
// mix of always-fire windows and coin-flip rules.
std::vector<Firing> run_schedule(u64 seed) {
  FaultInjector inj(seed);
  inj.set_record_firings(true);
  inj.add_rule({.point = "mem.bitflip", .after = 5, .count = 10});
  inj.add_rule({.point = "pcie.h2d_corrupt", .after = 2, .count = 50, .probability = 0.3});
  inj.add_rule({.point = "gpu.bad_result", .after = 0, .count = 7, .probability = 0.5});
  for (int round = 0; round < 40; ++round) {
    inj.should_fire("mem.bitflip");
    if (round % 2 == 0) inj.should_fire("pcie.h2d_corrupt");
    if (round % 3 == 0) inj.should_fire("gpu.bad_result");
  }
  return inj.firings();
}

TEST(FaultReplay, SameSeedSameTrafficIdenticalFirings) {
  const auto a = run_schedule(42);
  const auto b = run_schedule(42);
  EXPECT_FALSE(a.empty());  // the deterministic window alone fires 10 times
  EXPECT_EQ(a, b);
}

TEST(FaultReplay, FiringsRecordPointAndHitIndex) {
  const auto firings = run_schedule(42);
  u64 bitflips = 0;
  for (const auto& f : firings) {
    if (f.point != "mem.bitflip") continue;
    // The window [after=5, count=10) fires exactly on hits 5..14.
    EXPECT_GE(f.hit, 5u);
    EXPECT_LT(f.hit, 15u);
    ++bitflips;
  }
  EXPECT_EQ(bitflips, 10u);
}

TEST(FaultReplay, DifferentSeedsDivergeOnProbabilisticRules) {
  // Deterministic windows match across seeds; the coin-flip rules make the
  // full sequences differ for at least one of a handful of seeds (all equal
  // would mean the RNG ignores its seed).
  const auto base = run_schedule(1);
  bool diverged = false;
  for (u64 seed = 2; seed <= 6 && !diverged; ++seed) {
    diverged = (run_schedule(seed) != base);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultReplay, ResetClearsFiringsButKeepsRecording) {
  FaultInjector inj(7);
  inj.set_record_firings(true);
  inj.add_rule({.point = "mem.bitflip", .after = 0, .count = 3});
  for (int i = 0; i < 5; ++i) inj.should_fire("mem.bitflip");
  ASSERT_EQ(inj.firings().size(), 3u);

  inj.reset();
  EXPECT_TRUE(inj.firings().empty());
  EXPECT_EQ(inj.stats("mem.bitflip").hits, 0u);

  // Still recording: a re-added schedule is captured again.
  inj.add_rule({.point = "mem.bitflip", .after = 1, .count = 1});
  for (int i = 0; i < 3; ++i) inj.should_fire("mem.bitflip");
  const auto firings = inj.firings();
  ASSERT_EQ(firings.size(), 1u);
  EXPECT_EQ(firings[0], (Firing{.point = "mem.bitflip", .hit = 1}));
}

}  // namespace
}  // namespace ps::fault
