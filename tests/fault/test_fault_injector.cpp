// Fault injector: rule windows are indexed by per-point hit counters, so a
// chaos schedule is reproducible run-to-run regardless of timing.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fault/fault_injector.hpp"

namespace ps::fault {
namespace {

TEST(FaultInjector, NoRulesNeverFires) {
  FaultInjector inj;
  inj.register_point("gpu.launch");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.should_fire("gpu.launch"));
  EXPECT_EQ(inj.stats("gpu.launch").hits, 100u);
  EXPECT_EQ(inj.stats("gpu.launch").fired, 0u);
  EXPECT_EQ(inj.total_fired(), 0u);
}

TEST(FaultInjector, WindowFiresExactlyAfterCountHits) {
  FaultInjector inj;
  inj.add_rule({.point = "gpu.launch", .after = 3, .count = 2});
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(inj.should_fire("gpu.launch"));
  // Hits 0,1,2 clean; 3,4 fire; 5+ clean again.
  EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, true, false, false, false}));
  EXPECT_EQ(inj.stats("gpu.launch").fired, 2u);
}

TEST(FaultInjector, PointsHaveIndependentCounters) {
  FaultInjector inj;
  inj.add_rule({.point = "a", .after = 0, .count = 1});
  EXPECT_FALSE(inj.should_fire("b"));  // other point untouched by the rule
  EXPECT_TRUE(inj.should_fire("a"));
  EXPECT_FALSE(inj.should_fire("a"));
  EXPECT_EQ(inj.stats("b").hits, 1u);
}

TEST(FaultInjector, OverlappingRulesUnion) {
  FaultInjector inj;
  inj.add_rule({.point = "p", .after = 0, .count = 1});
  inj.add_rule({.point = "p", .after = 2, .count = 1});
  std::vector<bool> fired;
  for (int i = 0; i < 4; ++i) fired.push_back(inj.should_fire("p"));
  EXPECT_EQ(fired, (std::vector<bool>{true, false, true, false}));
}

TEST(FaultInjector, ProbabilityIsSeedDeterministic) {
  auto run = [](u64 seed) {
    FaultInjector inj(seed);
    inj.add_rule({.point = "p", .probability = 0.5});
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(inj.should_fire("p"));
    return fired;
  };
  EXPECT_EQ(run(7), run(7));  // same seed, same schedule
  EXPECT_NE(run(7), run(8));  // different seed, different schedule

  const auto fired = run(7);
  const auto n = std::count(fired.begin(), fired.end(), true);
  EXPECT_GT(n, 0);   // p=0.5 over 64 hits: some fire...
  EXPECT_LT(n, 64);  // ...but not all
}

TEST(FaultInjector, ResetClearsRulesAndCounters) {
  FaultInjector inj;
  inj.add_rule({.point = "p"});
  EXPECT_TRUE(inj.should_fire("p"));
  inj.reset();
  EXPECT_FALSE(inj.should_fire("p"));
  EXPECT_EQ(inj.stats("p").hits, 1u);  // counts restart after reset
  EXPECT_EQ(inj.total_fired(), 0u);
}

TEST(FaultInjector, ThreadSafeHitAccounting) {
  FaultInjector inj;
  inj.add_rule({.point = "p", .after = 1000, .count = 500});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2500;
  std::vector<std::thread> threads;
  std::atomic<u64> fired{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (inj.should_fire("p")) fired.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  // The window is a range of the shared hit counter, so exactly `count`
  // hits land inside it no matter how threads interleave.
  EXPECT_EQ(inj.stats("p").hits, static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(fired.load(), 500u);
  EXPECT_EQ(inj.stats("p").fired, 500u);
}

}  // namespace
}  // namespace ps::fault
