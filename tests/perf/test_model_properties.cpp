// Property tests on the cost model: monotonicity, bounds, and regime
// consistency — the invariants that keep calibration tweaks honest.
#include <gtest/gtest.h>

#include "perf/calibration.hpp"
#include "perf/ledger.hpp"
#include "perf/model.hpp"

namespace ps::perf {
namespace {

TEST(ModelProperties, KernelTimeMonotoneInThreads) {
  const KernelCost cost{.instructions = 100, .mem_accesses = 3};
  Picos prev = 0;
  for (u32 threads = 32; threads <= 1 << 20; threads *= 2) {
    const Picos t = gpu_exec_time(threads, cost);
    EXPECT_GE(t, prev) << threads;
    prev = t;
  }
}

TEST(ModelProperties, KernelTimeMonotoneInWork) {
  for (double instr = 10; instr < 1e6; instr *= 3) {
    const Picos lighter = gpu_exec_time(4096, {.instructions = instr, .mem_accesses = 1});
    const Picos heavier = gpu_exec_time(4096, {.instructions = instr * 3, .mem_accesses = 1});
    EXPECT_GE(heavier, lighter);
  }
}

TEST(ModelProperties, PerThreadCostNeverIncreasesWithBatch) {
  // The economic argument of Figure 2: amortized per-item time falls (or
  // stays flat) as the batch grows.
  const KernelCost cost{.instructions = 280, .mem_accesses = 7};
  double prev = 1e18;
  for (u32 threads = 32; threads <= 1 << 18; threads *= 2) {
    const double per_item =
        static_cast<double>(gpu_kernel_time(threads, cost)) / threads;
    EXPECT_LE(per_item, prev * 1.0001) << threads;
    prev = per_item;
  }
}

TEST(ModelProperties, WarpEfficiencyScalesComputeOnly) {
  // Divergence derates instruction throughput, not memory bandwidth.
  const u32 threads = 1 << 18;
  const KernelCost membound{.instructions = 1, .mem_accesses = 50, .warp_efficiency = 0.5};
  const KernelCost membound_full{.instructions = 1, .mem_accesses = 50, .warp_efficiency = 1.0};
  EXPECT_EQ(gpu_exec_time(threads, membound), gpu_exec_time(threads, membound_full));
}

TEST(ModelProperties, IohDuplexBusyBetweenMaxAndSum) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kIohD2h, 0}, 700);
  ledger.charge({ResourceKind::kIohH2d, 0}, 500);
  const Picos busy = ledger.bottleneck_time();
  EXPECT_GE(busy, 700);        // at least the max (full overlap)
  EXPECT_LE(busy, 700 + 500);  // at most the sum (no overlap)
}

TEST(ModelProperties, NicDmaOccupancyMonotoneInFrameSize) {
  for (const auto dir : {Direction::kDeviceToHost, Direction::kHostToDevice}) {
    Picos prev = 0;
    for (u32 size = 64; size <= 1514; size += 10) {
      const Picos t = nic_dma_occupancy(size, dir);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(ModelProperties, WirePacketRateMatchesLineRate) {
  // sum over a second of wire times == 1 second at exactly 10 Gbps load.
  for (const u32 size : {64u, 128u, 512u, 1514u}) {
    const double pps = 10e9 / (wire_bytes(size) * 8.0);
    EXPECT_NEAR(to_seconds(port_wire_time(size)) * pps, 1.0, 1e-9);
  }
}

TEST(ModelProperties, LaunchLatencyLinearInThreads) {
  const Picos a = gpu_launch_latency(1000);
  const Picos b = gpu_launch_latency(2000);
  const Picos c = gpu_launch_latency(3000);
  EXPECT_EQ(b - a, c - b);
}

TEST(ModelProperties, ThroughputInverselyProportionalToCharge) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kCpuCore, 0}, kPicosPerSec / 2);
  const double t1 = ledger.throughput_per_sec(1000);
  ledger.charge({ResourceKind::kCpuCore, 0}, kPicosPerSec / 2);
  const double t2 = ledger.throughput_per_sec(1000);
  EXPECT_NEAR(t1, 2 * t2, 1e-6);
}

TEST(ModelProperties, CalibrationSelfConsistency) {
  // The huge-buffer Table 3 bins must sum to the Figure 5 per-packet RX
  // constant — the two experiments share one path.
  EXPECT_DOUBLE_EQ(kHugeBufMetadataInitCycles + kHugeBufDriverCyclesPerPacket +
                       kHugeBufOtherCyclesPerPacket + kHugeBufResidualMissCycles,
                   kRxCyclesPerPacket);
  // Table 3's shares cover 100%.
  EXPECT_NEAR(kSkbShareInit + kSkbShareAllocFree + kSkbShareMemSubsystem + kSkbShareNicDriver +
                  kSkbShareOthers + kSkbShareCacheMiss,
              1.0, 1e-9);
}

TEST(ModelProperties, BatchAmortizationShape) {
  // cycles(batch) = per_packet + per_batch/batch must reproduce the 13.5x
  // Figure 5 span within the model itself.
  const double per_packet = kRxCyclesPerPacket + kTxCyclesPerPacket +
                            2 * kCopyCyclesPerCacheLine;
  const double per_batch = kRxCyclesPerBatch + kTxCyclesPerBatch;
  const double at1 = per_packet + per_batch;
  const double at64 = per_packet + per_batch / 64;
  EXPECT_NEAR(at1 / at64, 13.5, 2.0);
}

}  // namespace
}  // namespace ps::perf
