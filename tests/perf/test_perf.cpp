// Cost-model plumbing: ledger accounting, the IOH duplex-coupling rule,
// charge scopes, and the analytic timing functions' anchor points.
#include <gtest/gtest.h>

#include "perf/calibration.hpp"
#include "perf/ledger.hpp"
#include "perf/model.hpp"

namespace ps::perf {
namespace {

TEST(CostLedger, AccumulatesPerResource) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kCpuCore, 0}, 100);
  ledger.charge({ResourceKind::kCpuCore, 0}, 50);
  ledger.charge({ResourceKind::kCpuCore, 1}, 30);
  EXPECT_EQ(ledger.busy({ResourceKind::kCpuCore, 0}), 150);
  EXPECT_EQ(ledger.busy({ResourceKind::kCpuCore, 1}), 30);
  EXPECT_EQ(ledger.busy({ResourceKind::kCpuCore, 2}), 0);
}

TEST(CostLedger, BottleneckIsBusiestResource) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kCpuCore, 0}, 100);
  ledger.charge({ResourceKind::kGpuExec, 0}, 500);
  ledger.charge({ResourceKind::kPortTx, 3}, 200);
  EXPECT_EQ(ledger.bottleneck_time(), 500);
  EXPECT_EQ(ledger.bottleneck_name(), "gpu-exec0");
}

TEST(CostLedger, IohChannelsCoupleAsDuplex) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kIohD2h, 0}, 1000);
  ledger.charge({ResourceKind::kIohH2d, 0}, 600);
  // busy = max + k*min = 1000 + 0.435*600.
  const Picos expected = 1000 + static_cast<Picos>(kIohDuplexCoupling * 600);
  EXPECT_EQ(ledger.bottleneck_time(), expected);
  EXPECT_EQ(ledger.bottleneck_name(), "ioh0-duplex");
}

TEST(CostLedger, IohIndexesAreIndependent) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kIohD2h, 0}, 1000);
  ledger.charge({ResourceKind::kIohH2d, 1}, 900);
  // Different IOHs: no coupling between them.
  EXPECT_EQ(ledger.bottleneck_time(), 1000);
}

TEST(CostLedger, ThroughputFromBottleneck) {
  CostLedger ledger;
  ledger.charge({ResourceKind::kCpuCore, 0}, kPicosPerSec);  // 1 second busy
  EXPECT_DOUBLE_EQ(ledger.throughput_per_sec(1'000'000), 1e6);
}

TEST(CostLedger, MergeCombinesCharges) {
  CostLedger a, b;
  a.charge({ResourceKind::kCpuCore, 0}, 100);
  b.charge({ResourceKind::kCpuCore, 0}, 50);
  b.charge({ResourceKind::kPortRx, 1}, 70);
  a.merge(b);
  EXPECT_EQ(a.busy({ResourceKind::kCpuCore, 0}), 150);
  EXPECT_EQ(a.busy({ResourceKind::kPortRx, 1}), 70);
}

TEST(CpuChargeScope, RoutesChargesToActiveScope) {
  CostLedger ledger;
  charge_cpu_cycles(1000);  // no scope: dropped
  EXPECT_EQ(ledger.busy({ResourceKind::kCpuCore, 0}), 0);

  {
    CpuChargeScope scope(&ledger, 3);
    charge_cpu_cycles(kCpuHz);  // one second worth of cycles
  }
  charge_cpu_cycles(1000);  // scope gone: dropped again
  EXPECT_EQ(ledger.busy({ResourceKind::kCpuCore, 3}), kPicosPerSec);
}

TEST(CpuChargeScope, ScopesNest) {
  CostLedger outer, inner;
  CpuChargeScope a(&outer, 0);
  {
    CpuChargeScope b(&inner, 1);
    charge_cpu_cycles(100);
  }
  charge_cpu_cycles(100);
  EXPECT_GT(inner.busy({ResourceKind::kCpuCore, 1}), 0);
  EXPECT_GT(outer.busy({ResourceKind::kCpuCore, 0}), 0);
  EXPECT_EQ(outer.busy({ResourceKind::kCpuCore, 1}), 0);
}

// --- analytic model anchors -------------------------------------------------

TEST(Model, PcieTransferMatchesTable1Anchors) {
  // Table 1's corners, the calibration targets (within ~15%).
  EXPECT_NEAR(pcie_transfer_rate_mbps(256, Direction::kHostToDevice), 55, 10);
  EXPECT_NEAR(pcie_transfer_rate_mbps(1 << 20, Direction::kHostToDevice), 5577, 600);
  EXPECT_NEAR(pcie_transfer_rate_mbps(256, Direction::kDeviceToHost), 63, 10);
  EXPECT_NEAR(pcie_transfer_rate_mbps(1 << 20, Direction::kDeviceToHost), 3394, 400);
}

TEST(Model, PcieRateIsMonotoneInSize) {
  double prev = 0;
  for (u64 size = 64; size <= (1 << 22); size *= 2) {
    const double rate = pcie_transfer_rate_mbps(size, Direction::kHostToDevice);
    EXPECT_GT(rate, prev);
    prev = rate;
  }
}

TEST(Model, TransferTimeNeverDecreasesWithBytes) {
  // Cost-model sanity: more bytes never takes less time.
  for (Direction dir : {Direction::kHostToDevice, Direction::kDeviceToHost}) {
    Picos prev = 0;
    for (u64 size = 0; size <= 1 << 20; size += 4096) {
      const Picos t = pcie_transfer_time(size, dir);
      EXPECT_GE(t, prev);
      prev = t;
    }
  }
}

TEST(Model, D2hSlowerThanH2d) {
  // The dual-IOH asymmetry (section 3.2).
  EXPECT_LT(pcie_transfer_rate_mbps(1 << 20, Direction::kDeviceToHost),
            pcie_transfer_rate_mbps(1 << 20, Direction::kHostToDevice));
}

TEST(Model, WireTimeAt10G) {
  // A 64 B frame (88 wire bytes) takes 70.4 ns at 10 Gbps.
  EXPECT_NEAR(to_nanos(port_wire_time(64)), 70.4, 0.1);
}

TEST(Model, KernelLatencyBoundSmallBatches) {
  // With one warp, the 7-probe IPv6 chain is exposed (Figure 2's origin).
  const KernelCost cost{.instructions = 280, .mem_accesses = 7};
  const Picos small = gpu_exec_time(32, cost);
  EXPECT_GT(to_micros(small), 2.0);  // ~7 x 550 cycles at 1.4 GHz

  // With thousands of threads per SM the latency is hidden and the
  // per-thread time collapses.
  const Picos large = gpu_exec_time(32768, cost);
  EXPECT_LT(static_cast<double>(large) / 32768, static_cast<double>(small) / 32);
}

TEST(Model, KernelThroughputRegimes) {
  // Memory-bandwidth-bound when accesses dominate.
  const KernelCost membw{.instructions = 1, .mem_accesses = 100};
  // Compute-bound when instructions dominate.
  const KernelCost compute{.instructions = 100'000, .mem_accesses = 1};
  const u32 threads = 1 << 20;
  const double t_mem = to_seconds(gpu_exec_time(threads, membw));
  const double t_cmp = to_seconds(gpu_exec_time(threads, compute));
  EXPECT_NEAR(t_mem, threads * 100.0 * 32 / kGpuMemBytesPerSec, t_mem * 0.01);
  EXPECT_NEAR(t_cmp, threads * 100'000.0 / (kGpuCores * kGpuHz), t_cmp * 0.01);
}

TEST(Model, DivergenceDeratesCompute) {
  const KernelCost uniform{.instructions = 10'000, .mem_accesses = 0, .warp_efficiency = 1.0};
  KernelCost diverged = uniform;
  diverged.warp_efficiency = 0.5;
  const u32 threads = 1 << 18;
  EXPECT_NEAR(static_cast<double>(gpu_exec_time(threads, diverged)),
              2.0 * static_cast<double>(gpu_exec_time(threads, uniform)),
              static_cast<double>(gpu_exec_time(threads, uniform)) * 0.01);
}

TEST(Model, CpuLookupOnlyRateMatchesFigure2Calibration) {
  // One quad-core X5550 on 7-probe IPv6 lookups: ~15 Mpps (Figure 2's CPU
  // line), doubling with the second socket.
  EXPECT_NEAR(cpu_lookup_only_rate(1, 7) / 1e6, 15.2, 0.5);
  EXPECT_NEAR(cpu_lookup_only_rate(2, 7), 2 * cpu_lookup_only_rate(1, 7), 1.0);
}

TEST(Model, NicDmaSymmetricWithoutDualIoh) {
  // Single-IOH boards show no RX/TX asymmetry (section 3.2).
  EXPECT_EQ(nic_dma_occupancy(64, Direction::kDeviceToHost, false),
            nic_dma_occupancy(64, Direction::kHostToDevice, false));
  EXPECT_GT(nic_dma_occupancy(64, Direction::kDeviceToHost, true),
            nic_dma_occupancy(64, Direction::kHostToDevice, true));
}

}  // namespace
}  // namespace ps::perf
