// Capture layer (DESIGN.md §18): the PortTap tees frames into a pcap
// while forwarding to the original sink, the TX interposer preserves the
// existing edge, and the RX tap observes every arriving frame before
// ring-full drops — passive-optical-tap semantics under live traffic.
#include <gtest/gtest.h>

#include <cstdio>

#include "cap/capture.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "telemetry/metrics.hpp"

namespace ps::cap {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(PortTap, RecordsAndForwards) {
  const auto path = temp_path("tee.pcap");
  FrameCollector downstream;
  gen::TrafficGen traffic({.seed = 31});
  {
    gen::PcapWriter writer(path);
    PortTap tap(writer, &downstream);
    for (int i = 0; i < 8; ++i) {
      const auto frame = traffic.next_frame();
      tap.on_frame(i % 2, frame);
    }
    EXPECT_EQ(tap.frames_tapped(), 8u);
    EXPECT_GT(tap.bytes_tapped(), 0u);
  }
  EXPECT_EQ(downstream.size(), 8u);
  EXPECT_EQ(gen::read_pcap(path).size(), 8u);
  std::remove(path.c_str());
}

TEST(PortTap, PortFilterRecordsOnlyThatPortButForwardsAll) {
  const auto path = temp_path("filtered.pcap");
  FrameCollector downstream;
  gen::TrafficGen traffic({.seed = 32});
  {
    gen::PcapWriter writer(path);
    PortTap tap(writer, &downstream, /*port_filter=*/1);
    for (int i = 0; i < 10; ++i) tap.on_frame(i % 5, traffic.next_frame());
    EXPECT_EQ(tap.frames_tapped(), 2u);  // ports cycle 0..4: two hits on 1
  }
  EXPECT_EQ(downstream.size(), 10u);  // forwarding is unconditional
  EXPECT_EQ(gen::read_pcap(path).size(), 2u);
  std::remove(path.c_str());
}

TEST(PortTap, AttachTxTapInterposesOnLiveEdge) {
  const auto path = temp_path("tx_tap.pcap");
  nic::NicPort port(0, pcie::Topology::single_node(), {});
  FrameCollector original_sink;
  port.set_wire_sink(&original_sink);

  gen::TrafficGen traffic({.seed = 33});
  {
    gen::PcapWriter writer(path);
    PortTap tap(writer);
    attach_tx_tap(port, tap);
    EXPECT_EQ(port.wire_sink(), &tap);
    EXPECT_EQ(tap.downstream(), &original_sink);

    for (int i = 0; i < 6; ++i) ASSERT_TRUE(port.transmit(0, traffic.next_frame()));
    EXPECT_EQ(tap.frames_tapped(), 6u);
  }
  // The original sink still saw everything — the tap is passive.
  EXPECT_EQ(original_sink.size(), 6u);
  const auto recorded = gen::read_pcap(path);
  ASSERT_EQ(recorded.size(), 6u);
  EXPECT_EQ(recorded, original_sink.frames());
  std::remove(path.c_str());
}

TEST(PortTap, RxTapSeesFramesBeforeRingFullDrops) {
  // Offer more than the rings hold with nothing draining: accepted
  // saturates, but the RX tap — wire semantics — still records every
  // arriving frame.
  const auto path = temp_path("rx_tap.pcap");
  const auto topo = pcie::Topology::single_node();
  core::Testbed testbed(core::TestbedConfig{.topo = topo, .use_gpu = false, .ring_size = 64},
                        core::RouterConfig{.use_gpu = false});
  gen::TrafficGen traffic({.seed = 34});
  u64 offered = 0, accepted = 0;
  {
    gen::PcapWriter writer(path);
    PortTap tap(writer);
    testbed.connect_rx_tap(&tap);

    // One 64-deep RX ring per worker queue: 3x that floods every queue
    // past its ring no matter how RSS spreads the flows.
    const u64 per_port_capacity = 64 * static_cast<u64>(topo.cores_per_node);
    offered = per_port_capacity * static_cast<u64>(testbed.ports().size()) * 3;
    accepted = traffic.offer(testbed.ports(), offered);
    EXPECT_LT(accepted, offered) << "rings were expected to overflow";
    EXPECT_EQ(tap.frames_tapped(), offered);
    testbed.connect_rx_tap(nullptr);
  }
  EXPECT_EQ(gen::read_pcap(path).size(), offered);
  std::remove(path.c_str());
}

TEST(PortTap, RegistersCapMetrics) {
  const auto path = temp_path("metrics.pcap");
  gen::PcapWriter writer(path);
  PortTap tap(writer);
  telemetry::MetricsRegistry registry;
  tap.register_metrics(registry);

  gen::TrafficGen traffic({.seed = 35});
  const auto frame = traffic.next_frame();
  tap.on_frame(0, frame);
  tap.on_frame(0, frame);

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.value("cap.tap.frames"), 2u);
  EXPECT_EQ(snap.value("cap.tap.bytes"), 2 * frame.size());
  std::remove(path.c_str());
}

TEST(FrameCollector, StoresFrameBytes) {
  FrameCollector collector;
  const std::vector<u8> a(64, 0xaa), b(128, 0xbb);
  collector.on_frame(0, a);
  collector.on_frame(1, b);
  ASSERT_EQ(collector.size(), 2u);
  EXPECT_EQ(collector.frames()[0], a);
  EXPECT_EQ(collector.frames()[1], b);
}

}  // namespace
}  // namespace ps::cap
