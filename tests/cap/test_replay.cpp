// Replay layer (DESIGN.md §18): write → read → replay reproduces the
// identical frame sequence and inter-arrival gaps (the pcap round-trip
// determinism contract), pacing schedules are pure functions of the
// capture, and replay-at-max drives the model pipeline at least as hard
// as the synthetic generator it was recorded from.
#include <gtest/gtest.h>

#include <cstdio>

#include "apps/ipv4_forward.hpp"
#include "cap/capture.hpp"
#include "cap/replay.hpp"
#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/ipv4_table.hpp"
#include "route/rib_gen.hpp"
#include "telemetry/metrics.hpp"

namespace ps::cap {
namespace {

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Write `count` generator frames into `path` with the synthetic clock
// (frame i stamped i microseconds in) and return the frames.
std::vector<net::FrameBuffer> write_capture(const std::string& path, u64 seed, int count) {
  gen::TrafficGen traffic({.frame_size = 80, .seed = seed});
  std::vector<net::FrameBuffer> frames;
  gen::PcapWriter writer(path, gen::PcapClock::kSynthetic);
  for (int i = 0; i < count; ++i) {
    frames.push_back(traffic.next_frame());
    writer.on_frame(0, frames.back());
  }
  return frames;
}

TEST(Replay, RoundTripPreservesFrameSequenceAndGaps) {
  const auto path = temp_path("roundtrip_replay.pcap");
  const auto originals = write_capture(path, 41, 16);

  PcapReplayer replayer(path);
  ASSERT_TRUE(replayer.ok());
  ASSERT_EQ(replayer.frames_loaded(), 16u);
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(replayer.records()[i].bytes, originals[i]) << i;
    // Synthetic clock: 1 us between consecutive frames, preserved by the
    // recorded-rate schedule exactly.
    EXPECT_EQ(replayer.due_time(i), static_cast<Picos>(i) * kPicosPerMicro) << i;
  }

  // Inject into a port and fetch back: same frames, same order.
  nic::NicPort port(0, pcie::Topology::single_node(), {.ring_size = 64});
  nic::NicPort* ports[] = {&port};
  const auto result = replayer.offer_some(ports, 1000);
  EXPECT_EQ(result.offered, 16u);
  EXPECT_EQ(result.accepted, 16u);
  EXPECT_TRUE(replayer.exhausted());

  std::vector<nic::RxSlot> slots(16);
  ASSERT_EQ(port.rx_peek(0, slots.data(), 16), 16u);
  for (std::size_t i = 0; i < originals.size(); ++i) {
    std::span<const u8> got(slots[i].data, slots[i].length);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), originals[i].begin(), originals[i].end()))
        << i;
  }
  std::remove(path.c_str());
}

TEST(Replay, RecordedRateReproducesIrregularGaps) {
  // Explicit, irregular timestamps: replay's schedule is the capture's
  // gap structure rebased to zero, independent of absolute stamps.
  const auto path = temp_path("gaps.pcap");
  {
    gen::PcapWriter writer(path);
    const std::vector<u8> frame(64, 0xcd);
    writer.write(frame, seconds(5.0));
    writer.write(frame, seconds(5.000007));  // +7 us
    writer.write(frame, seconds(5.001));     // +993 us
  }
  PcapReplayer replayer(path);
  ASSERT_EQ(replayer.frames_loaded(), 3u);
  EXPECT_EQ(replayer.due_time(0), 0);
  EXPECT_EQ(replayer.due_time(1), 7 * kPicosPerMicro);
  EXPECT_EQ(replayer.due_time(2), 1000 * kPicosPerMicro);
  std::remove(path.c_str());
}

TEST(Replay, FixedRateScheduleIsCumulativeSerialization) {
  const auto path = temp_path("fixed.pcap");
  write_capture(path, 42, 4);

  PcapReplayer replayer(path, {.rate = ReplayRate::kFixed, .fixed_gbps = 10.0});
  // 80 B frames -> 104 wire bytes = 832 bits; at 10 Gbit/s each frame
  // serializes in 83.2 ns.
  const double bits = 832.0;
  for (u64 i = 0; i < 4; ++i) {
    const auto expected = static_cast<Picos>(bits * static_cast<double>(i) / 10.0 * 1e3);
    EXPECT_EQ(replayer.due_time(i), expected) << i;
  }
  std::remove(path.c_str());
}

TEST(Replay, MaxRateHasZeroDueTimes) {
  const auto path = temp_path("max.pcap");
  write_capture(path, 43, 5);
  PcapReplayer replayer(path, {.rate = ReplayRate::kMax});
  for (u64 i = 0; i < 5; ++i) EXPECT_EQ(replayer.due_time(i), 0) << i;
  std::remove(path.c_str());
}

TEST(Replay, LoopingAndRewind) {
  const auto path = temp_path("loops.pcap");
  write_capture(path, 44, 8);
  nic::NicPort port(0, pcie::Topology::single_node(), {.ring_size = 64});
  nic::NicPort* ports[] = {&port};

  PcapReplayer replayer(path, {.loop_count = 3});
  u64 emitted = 0;
  while (!replayer.exhausted()) emitted += replayer.offer_some(ports, 5).offered;
  EXPECT_EQ(emitted, 24u);
  EXPECT_EQ(replayer.frames_emitted(), 24u);
  // The virtual clock advanced monotonically across the three passes.
  EXPECT_GT(replayer.clock(), 2 * 7 * kPicosPerMicro);

  replayer.rewind();
  EXPECT_FALSE(replayer.exhausted());
  EXPECT_EQ(replayer.frames_emitted(), 0u);

  PcapReplayer forever(path, {.loop_count = 0});
  for (int i = 0; i < 10; ++i) forever.offer_some(ports, 50);
  EXPECT_FALSE(forever.exhausted());
  std::remove(path.c_str());
}

TEST(Replay, MissingFileIsNotOkAndExhausted) {
  PcapReplayer replayer(temp_path("no-such-capture.pcap"));
  EXPECT_FALSE(replayer.ok());
  EXPECT_TRUE(replayer.exhausted());
  EXPECT_EQ(replayer.mean_wire_bytes(), 0.0);
}

TEST(Replay, RegistersReplayMetric) {
  const auto path = temp_path("replay_metrics.pcap");
  write_capture(path, 45, 4);
  nic::NicPort port(0, pcie::Topology::single_node(), {.ring_size = 64});
  nic::NicPort* ports[] = {&port};

  PcapReplayer replayer(path);
  telemetry::MetricsRegistry registry;
  replayer.register_metrics(registry);
  replayer.offer_some(ports, 1000);
  EXPECT_EQ(registry.snapshot().value("cap.replay.frames"), 4u);
  std::remove(path.c_str());
}

TEST(Replay, MaxRateSaturatesAtLeastAsHighAsSyntheticGenerator) {
  // Record the synthetic generator's stream, then drive the identical
  // model pipeline from the capture at kMax: the replayed workload must
  // sustain at least the generator's rate (same frames, same pipeline).
  constexpr u64 kTarget = 20'000;
  const auto path = temp_path("saturate.pcap");
  const auto rib = route::generate_ipv4_rib({.prefix_count = 1000, .num_next_hops = 4,
                                             .seed = 77});
  route::Ipv4Table table;
  table.build(rib);

  const gen::TrafficConfig traffic_config{
      .frame_size = 64,
      .seed = 46,
      .ipv4_dst_pool = route::sample_covered_ipv4(rib, 256, 78)};
  {
    gen::TrafficGen recorder(traffic_config);
    gen::PcapWriter writer(path, gen::PcapClock::kSynthetic);
    net::FrameBuffer frame;
    for (int i = 0; i < 2048; ++i) {
      recorder.next_frame_into(frame);
      writer.on_frame(0, frame);
    }
  }

  apps::Ipv4ForwardApp app{table};
  double synthetic_mpps = 0.0, replay_mpps = 0.0;
  {
    core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true,
                           .ring_size = 4096},
                          core::RouterConfig{.use_gpu = true});
    gen::TrafficGen traffic(traffic_config);
    testbed.connect_sink(&traffic);
    core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
    synthetic_mpps = driver.run(traffic, kTarget).mpps;
  }
  {
    core::Testbed testbed({.topo = pcie::Topology::paper_server(), .use_gpu = true,
                           .ring_size = 4096},
                          core::RouterConfig{.use_gpu = true});
    gen::TrafficGen sink(traffic_config);
    testbed.connect_sink(&sink);
    PcapReplayer replayer(path, {.rate = ReplayRate::kMax, .loop_count = 0});
    ASSERT_TRUE(replayer.ok());
    core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = true});
    replay_mpps = driver.run(static_cast<gen::FrameSource&>(replayer), kTarget).mpps;
  }
  EXPECT_GT(synthetic_mpps, 0.0);
  EXPECT_GE(replay_mpps, synthetic_mpps * 0.99)
      << "replay-at-max fell below the synthetic generator: " << replay_mpps << " vs "
      << synthetic_mpps << " Mpps";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ps::cap
