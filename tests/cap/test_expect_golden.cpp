// Golden end-to-end gate (DESIGN.md §18): replay each committed corpus
// capture through the full router and byte-compare TX against the
// committed expected pcap. Any mismatch is a real behaviour change —
// either a regression, or an intentional change that must be re-blessed
// with scripts/regen_goldens.sh (which also refreshes the checksum
// manifest). These tests carry the ctest label "replay" (the CI
// replay-gate job) on top of tier-1.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "cap/expect.hpp"
#include "cap/golden.hpp"
#include "gen/pcap.hpp"

#ifndef PS_TEST_DATA_DIR
#define PS_TEST_DATA_DIR "tests/data"
#endif

namespace ps::cap {
namespace {

constexpr char kRegenHint[] =
    "if this change is intentional, regenerate the corpus with "
    "scripts/regen_goldens.sh and commit the new pcaps + manifest";

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<u8> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Diff pcaps land under the ctest working directory so the nightly job
// can upload them as artifacts on failure.
std::string diff_path_for(Corpus corpus) {
  std::filesystem::create_directories("expect_diffs");
  return std::string("expect_diffs/") + corpus_name(corpus) + ".actual.pcap";
}

void expect_corpus_matches_golden(Corpus corpus) {
  const std::string input = corpus_input_path(PS_TEST_DATA_DIR, corpus);
  const std::string golden = corpus_golden_path(PS_TEST_DATA_DIR, corpus);
  ASSERT_TRUE(std::filesystem::exists(input))
      << "missing corpus input " << input << "; " << kRegenHint;
  ASSERT_TRUE(std::filesystem::exists(golden))
      << "missing golden capture " << golden << "; " << kRegenHint;

  const FrameList actual = route_corpus(corpus, input);
  EXPECT_EQ(actual.size(), corpus_frame_count(corpus))
      << corpus_name(corpus) << ": router did not forward every corpus frame";

  const auto result = expect_frames(golden, actual, diff_path_for(corpus));
  EXPECT_TRUE(result.match) << corpus_name(corpus) << ": " << result.message << "; "
                            << kRegenHint;
}

TEST(ExpectGolden, Ipv4ImixReplaysByteIdentical) {
  expect_corpus_matches_golden(Corpus::kIpv4Imix);
}

TEST(ExpectGolden, Ipv6ReplaysByteIdentical) {
  expect_corpus_matches_golden(Corpus::kIpv6);
}

TEST(ExpectGolden, IpsecReplaysByteIdentical) {
  expect_corpus_matches_golden(Corpus::kIpsec);
}

TEST(ExpectGolden, CorpusInputsRegenerateByteIdentical) {
  // The committed inputs must be exactly what write_corpus_input produces
  // today — synthetic clock, frozen seeds. Drift here means a generator
  // change silently rewrote the corpus semantics.
  for (const Corpus corpus : kAllCorpora) {
    const std::string committed = corpus_input_path(PS_TEST_DATA_DIR, corpus);
    ASSERT_TRUE(std::filesystem::exists(committed))
        << "missing corpus input " << committed << "; " << kRegenHint;
    const auto regen = temp_path("regen_in.pcap");
    write_corpus_input(corpus, regen);
    EXPECT_EQ(slurp(regen), slurp(committed))
        << corpus_name(corpus) << " input capture is no longer reproducible; " << kRegenHint;
    std::remove(regen.c_str());
  }
}

TEST(ExpectFrames, CanonicalizeSortsLexicographically) {
  FrameList frames = {{0x02, 0x01}, {0x01, 0xff}, {0x01}};
  const auto canon = canonicalize(frames);
  EXPECT_EQ(canon[0], (std::vector<u8>{0x01}));
  EXPECT_EQ(canon[1], (std::vector<u8>{0x01, 0xff}));
  EXPECT_EQ(canon[2], (std::vector<u8>{0x02, 0x01}));
}

TEST(ExpectFrames, MatchIsOrderInsensitive) {
  // The router guarantees per-flow ordering, not the global interleave:
  // a permuted TX order still matches the golden multiset.
  const auto golden = temp_path("order_golden.pcap");
  FrameList frames = {{0xaa, 0xaa}, {0xbb, 0xbb}, {0xcc, 0xcc}};
  write_canonical_pcap(golden, canonicalize(frames));

  FrameList permuted = {frames[2], frames[0], frames[1]};
  const auto result = expect_frames(golden, permuted);
  EXPECT_TRUE(result.match) << result.message;
  EXPECT_EQ(result.expected_count, 3u);
  std::remove(golden.c_str());
}

TEST(ExpectFrames, MismatchReportsAndWritesDiffPcap) {
  const auto golden = temp_path("diff_golden.pcap");
  const auto diff = temp_path("diff_actual.pcap");
  write_canonical_pcap(golden, {{0x11, 0x11}, {0x22, 0x22}});

  const auto result = expect_frames(golden, {{0x11, 0x11}, {0x33, 0x33}}, diff);
  EXPECT_FALSE(result.match);
  EXPECT_EQ(result.first_mismatch, 1);
  EXPECT_NE(result.message.find("first mismatch"), std::string::npos);
  // The failing actual frames were preserved for artifact upload.
  const auto written = gen::read_pcap(diff);
  ASSERT_EQ(written.size(), 2u);
  EXPECT_EQ(written[1], (std::vector<u8>{0x33, 0x33}));
  std::remove(golden.c_str());
  std::remove(diff.c_str());
}

TEST(ExpectFrames, CountMismatchAndMissingGolden) {
  const auto golden = temp_path("count_golden.pcap");
  write_canonical_pcap(golden, {{0x44, 0x44}});
  const auto short_result = expect_frames(golden, {});
  EXPECT_FALSE(short_result.match);
  EXPECT_NE(short_result.message.find("count mismatch"), std::string::npos);
  std::remove(golden.c_str());

  const auto missing = expect_frames(temp_path("nonexistent_golden.pcap"), {{0x55}});
  EXPECT_FALSE(missing.match);
  EXPECT_NE(missing.message.find("empty or unreadable"), std::string::npos);
}

}  // namespace
}  // namespace ps::cap
