#!/usr/bin/env python3
"""pslint: PacketShader-specific lint rules.

The repo's concurrency and observability disciplines are conventions a
generic linter cannot know: single-writer counters, explicit memory
orders, exhaustive DropReason accounting, and doc tables that must track
the fault-point / metric registries. This tool turns each convention
into a checked rule.

Rules (suppress a finding with `// pslint: allow(<rule>)` on the same
or the preceding line):

  bare-atomic         atomic .load()/.store()/.fetch_*()/.exchange()/
                      compare_exchange without an explicit std::memory_order
                      argument. The default is seq_cst, which both hides
                      the intended ordering and overpays for it on the
                      hot path.
  single-writer       a counter documented as single-writer (written only
                      by its owning thread, sampled relaxed elsewhere)
                      mutated outside the file set that owns it.
  drop-reason-default a switch over DropReason with a `default:` label.
                      Every reason must be spelled out so adding an enum
                      value forces each switch to be revisited
                      (-Wswitch turns the omission into an error).
  registry-sync       fault-point and metric names in code must appear in
                      the doc tables (DESIGN.md / README.md) and vice
                      versa. Placeholders compare erased: `gpu.node<N>.x`
                      matches `"gpu.node" + std::to_string(n) + ".x"`.
  hot-sleep           sleep_for/sleep_until inside hot-path directories
                      (iengine, nic, gpu, core). Blocking belongs in the
                      interrupt/poll machinery, not in the data path; the
                      few legitimate idle/backoff sleeps carry an allow
                      comment explaining why they are off the fast path.
  steady-state-growth container growth (push_back/emplace_back/resize/
                      insert/emplace) inside a steady-state function
                      (worker_loop, recv_chunk, lookup_batch, ...) in
                      src/core, src/iengine, or src/route, when the file
                      never reserves that container. Growth in the
                      per-packet loops reintroduces the allocations the
                      warm-up phase exists to front-load; the counting
                      allocator test catches the aggregate, this rule
                      names the line. Containers warmed elsewhere or
                      deliberately amortised carry an allow comment.
  read-path-lock      lock acquisition (MutexLock, lock_guard, .lock())
                      or a mutex-taking FIB snapshot() inside the
                      per-packet read path: lookup/lookup_batch in
                      src/route, shade_cpu/process_cpu/pre_shade/
                      post_shade in src/apps, and (snapshot only)
                      shade_batch/cpu_fallback_batch in src/core. The
                      data path reads FIB generations through the
                      epoch-pinned FibManager::read(); any lock here
                      reintroduces the updater-stalls-lookups coupling
                      the generation design removed.
  handoff-mutex       lock acquisition on the worker<->master hand-off
                      path: anywhere in common/spsc_ring.hpp, or inside
                      worker_loop/drain_scatter/recv_and_dispatch/
                      master_loop in src/core. The hand-off is lock-free
                      by design (SpscFanIn + per-worker output rings);
                      the only sanctioned mutex is WakeSignal's idle-path
                      park, and each of its lock sites carries an allow
                      comment saying so. A new MutexLock here silently
                      reintroduces the convoy the SPSC migration removed.
  atomics-audit       the memory-model contract discipline, three checks
                      in one rule. (1) bare std::atomic declarations and
                      std::atomic_thread_fence calls are banned — all
                      atomics go through ps::atomic / ps::fence_seq_cst()
                      (common/atomic_shim.hpp) so the model-check build
                      can reroute them; the shim itself and src/mc/ are
                      the sanctioned exceptions. (2) every ps::atomic
                      declaration and fence_seq_cst() call site carries a
                      `// mc: <key>` contract tag (same line or up to two
                      comment lines above) naming its row in the DESIGN.md
                      §17 memory-model contract table; pointer/reference
                      spellings (ps::atomic<T>* / ps::atomic<T>&) are
                      exempt — the owning declaration carries the
                      contract. (3) the tag keys and the doc table rows
                      (backticked `mc:<key>` entries) must match two-way.

Output: `path:line: [rule] message`, one per finding, sorted; exit 1 if
anything fired. `--expect FILE` compares the findings against a golden
file instead (for the fixture self-test).
"""

import argparse
import os
import re
import sys

RULES = {
    "bare-atomic": "atomic op without an explicit std::memory_order",
    "single-writer": "single-writer counter mutated outside its owning file",
    "drop-reason-default": "switch over DropReason must not have a default label",
    "registry-sync": "fault/metric name tables out of sync with code",
    "hot-sleep": "sleep in a hot-path directory",
    "steady-state-growth": "container growth in a steady-state loop "
                           "without a reserve",
    "read-path-lock": "lock acquisition or locking FIB snapshot on the "
                      "per-packet read path",
    "handoff-mutex": "lock acquisition on the lock-free worker<->master "
                     "hand-off path",
    "atomics-audit": "bare std::atomic, untagged ps::atomic site, or "
                     "mc: contract keys out of sync with the doc table",
}

HOT_DIRS = ("iengine", "nic", "gpu", "core")

ATOMIC_OPS = (
    "load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    "compare_exchange_weak|compare_exchange_strong"
)
ATOMIC_CALL_RE = re.compile(r"\.(%s)\s*\(" % ATOMIC_OPS)
ATOMIC_MUTATORS = ("store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
                   "fetch_or", "fetch_xor")

# Single-writer counters and the file (relative to the scan root) allowed
# to mutate each. Keep in sync with DESIGN.md §11.
SINGLE_WRITER = [
    # Router per-worker counters: every slot is written by exactly one
    # worker thread inside the router's own loops.
    (r"(chunks|packets_in|packets_out|slow_path|cpu_processed|gpu_processed|"
     r"bp_reduced_batches|bp_diverted_chunks|adopted_chunks|in_flight_packets|"
     r"drops_by_reason)",
     {"core/router.cpp"}),
    # IoHandle TX drop tally: owning worker only.
    (r"tx_drops_", {"iengine/engine.cpp"}),
    # NIC wire-side ledger (AtomicQueueStats members, reached directly or
    # through the conventional `stats` alias) and carrier state: mutated
    # only on the port's own RX/TX paths.
    (r"(stats|rx_stats_|tx_stats_)\s*\.\s*(packets|bytes|drops)",
     {"nic/nic.cpp"}),
    (r"(link_up_|link_flaps_|carrier_lost_frames_)", {"nic/nic.cpp"}),
    # Heartbeats: beat()/advance() on the owning thread.
    (r"(beats|progress)", {"common/heartbeat.hpp"}),
    # Tracer slot/ring internals: producer side of the seqlock.
    (r"(spans_started_|spans_dropped_|next_slot_)", {"telemetry/tracer.cpp"}),
]

REGISTRY_PREFIX_RE = re.compile(
    r"^(router|gpu|slowpath|supervisor|engine|nic|core|mem|fib|control|"
    r"integrity|pcie|ring|cap|gen)\.")

FAULT_SITE_RE = re.compile(
    r"register_point\s*\(|should_fire\s*\(|check_fault\s*\(|"
    r"constexpr std::string_view k\w+\s*=|_point_\s*=")
METRIC_SITE_RE = re.compile(
    r"register_probe\s*\(|\.counter\s*\(|\.gauge\s*\(|\.histogram\s*\(")

ALLOW_RE = re.compile(r"//\s*pslint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

SRC_EXTS = (".hpp", ".cpp", ".h", ".cc", ".cu", ".cuh")


class SourceFile:
    """One parsed file: raw lines, comment-stripped code, allow-comments."""

    def __init__(self, path, rel):
        self.path = path
        self.rel = rel
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.lines = self.raw.split("\n")
        self.allows = {}  # line number -> set of rule ids
        for i, line in enumerate(self.lines, 1):
            m = ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self.allows[i] = self.allows.get(i, set()) | rules
        self.code = _strip(self.raw, keep_strings=True)
        self.code_nostr = _strip(self.raw, keep_strings=False)

    def allowed(self, lineno, rule):
        """allow(<rule>) on the finding's line or the line above it."""
        for ln in (lineno, lineno - 1, lineno - 2):
            if rule in self.allows.get(ln, set()):
                # Two lines up only counts when the line between is still
                # part of the same allow comment block.
                if ln == lineno - 2 and not self.lines[lineno - 2].lstrip().startswith("//"):
                    continue
                return True
        return False


def _strip(text, keep_strings):
    """Blank comments (and optionally string/char literals) with spaces,
    preserving line structure so offsets keep mapping to line numbers."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINE_COMMENT, BLOCK_COMMENT, STRING, CHAR = range(5)
    state = NORMAL
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == NORMAL:
            if c == "/" and nxt == "/":
                state = LINE_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_COMMENT
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = STRING
                out.append(c)
                i += 1
                continue
            if c == "'":
                # Not a char literal when preceded by an identifier or
                # digit character: C++14 digit separators (1'000).
                prev = text[i - 1] if i > 0 else ""
                if not (prev.isalnum() or prev == "_"):
                    state = CHAR
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == LINE_COMMENT:
            if c == "\n":
                state = NORMAL
                out.append(c)
            else:
                out.append(" ")
        elif state == BLOCK_COMMENT:
            if c == "*" and nxt == "/":
                state = NORMAL
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == STRING:
            if c == "\\":
                out.append(c if keep_strings else " ")
                if i + 1 < n:
                    out.append(nxt if keep_strings else " ")
                i += 2
                continue
            if c == '"':
                state = NORMAL
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        elif state == CHAR:
            if c == "\\":
                out.append(c if keep_strings else " ")
                if i + 1 < n:
                    out.append(nxt if keep_strings else " ")
                i += 2
                continue
            if c == "'":
                state = NORMAL
                out.append(c)
            else:
                out.append(c if keep_strings else " ")
        i += 1
    return "".join(out)


def _line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def _balanced(text, open_pos):
    """Return (inner_text, end_pos) of the paren/brace group opening at
    open_pos. Returns (None, None) when unbalanced (truncated file)."""
    opener = text[open_pos]
    closer = {"(": ")", "{": "}"}[opener]
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == opener:
            depth += 1
        elif text[i] == closer:
            depth -= 1
            if depth == 0:
                return text[open_pos + 1:i], i
    return None, None


class Finding:
    def __init__(self, rel, line, rule, message):
        self.rel = rel
        self.line = line
        self.rule = rule
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (self.rel, self.line, self.rule, self.message)


# --- rule: bare-atomic -----------------------------------------------------

def check_bare_atomic(sf, findings):
    code = sf.code_nostr
    for m in ATOMIC_CALL_RE.finditer(code):
        op = m.group(1)
        open_paren = m.end() - 1
        args, _ = _balanced(code, open_paren)
        if args is None:
            continue
        if "memory_order" in args:
            # compare_exchange needs both success and failure orders (or
            # the single-order overload, which is also explicit).
            continue
        lineno = _line_of(code, m.start())
        if sf.allowed(lineno, "bare-atomic"):
            continue
        findings.append(Finding(
            sf.rel, lineno, "bare-atomic",
            ".%s() without an explicit std::memory_order argument" % op))


# --- rule: single-writer ---------------------------------------------------

def check_single_writer(sf, findings):
    code = sf.code_nostr
    for member_re, owners in SINGLE_WRITER:
        if sf.rel in owners:
            continue
        pat = re.compile(
            r"\b%s(\[[^\]\n]*\])?\s*\.\s*(%s)\s*\(" % (member_re, "|".join(ATOMIC_MUTATORS)))
        for m in pat.finditer(code):
            lineno = _line_of(code, m.start())
            if sf.allowed(lineno, "single-writer"):
                continue
            findings.append(Finding(
                sf.rel, lineno, "single-writer",
                "single-writer counter mutated outside its owning file(s): %s"
                % ", ".join(sorted(owners))))


# --- rule: drop-reason-default ---------------------------------------------

def check_drop_reason_default(sf, findings):
    code = sf.code
    for m in re.finditer(r"\bswitch\s*\(", code):
        cond, cond_end = _balanced(code, m.end() - 1)
        if cond is None:
            continue
        # A DropReason switch either names the type in the condition or
        # switches on a drop_reason()/reason variable.
        if "DropReason" not in cond and "drop_reason" not in cond:
            continue
        brace = code.find("{", cond_end)
        if brace < 0:
            continue
        body, _ = _balanced(code, brace)
        if body is None:
            continue
        dm = re.search(r"\bdefault\s*:", body)
        if dm is None:
            continue
        lineno = _line_of(code, brace + 1 + dm.start())
        if sf.allowed(lineno, "drop-reason-default"):
            continue
        findings.append(Finding(
            sf.rel, lineno, "drop-reason-default",
            "switch over DropReason has a default label; enumerate every "
            "reason so -Wswitch catches additions"))


# --- rule: hot-sleep -------------------------------------------------------

def check_hot_sleep(sf, findings):
    top = sf.rel.split("/", 1)[0]
    if top not in HOT_DIRS:
        return
    code = sf.code_nostr
    for m in re.finditer(r"\bsleep_(for|until)\s*\(", code):
        lineno = _line_of(code, m.start())
        if sf.allowed(lineno, "hot-sleep"):
            continue
        findings.append(Finding(
            sf.rel, lineno, "hot-sleep",
            "sleep_%s in hot-path directory %s/ (add an allow comment "
            "explaining why this site is off the fast path)" % (m.group(1), top)))


# --- rule: steady-state-growth ---------------------------------------------

# Directories whose steady-state loops must not grow containers, and the
# function names that ARE the steady state: the per-chunk/per-packet
# loops that run for every batch once the pipeline is warm. Setup code
# (build(), constructors, start()) is free to grow whatever it likes.
STEADY_DIRS = ("core", "iengine", "route")
STEADY_FNS = (
    "worker_loop|master_loop|recv_and_dispatch|finish_job|process_cpu_only|"
    "shade_batch|cpu_fallback_batch|recv_chunk|recv_from_queue|send_chunk|"
    "lookup_batch|lookup"
)
STEADY_FN_RE = re.compile(r"\b(%s)\s*\(" % STEADY_FNS)
GROWTH_METHODS = "push_back|emplace_back|resize|insert|emplace"
GROWTH_RE = re.compile(
    r"\b(\w+(?:(?:\.|->)\w+|\[[^\]\n]*\])*)\s*(?:\.|->)\s*"
    r"(%s)\s*\(" % GROWTH_METHODS)
# Chars legal between a definition's `)` and its `{`: qualifiers
# (const, noexcept, override), trailing return types, attribute names.
DEF_GAP_RE = re.compile(r"^[\sA-Za-z_0-9:<>,&*\[\]\-]*$")


def _steady_bodies(code, fn_re=None):
    """(fn_name, body_start, body_end) for each steady-state function
    DEFINED in this file. A match is a definition (not a call) when it is
    not reached through . or ->, and only qualifier-ish tokens separate
    the parameter list from an opening brace."""
    if fn_re is None:
        fn_re = STEADY_FN_RE
    bodies = []
    for m in fn_re.finditer(code):
        j = m.start() - 1
        while j >= 0 and code[j] in " \t":
            j -= 1
        if j >= 1 and (code[j] == "." or code[j - 1:j + 1] == "->"):
            continue  # member call, not a definition
        params, pend = _balanced(code, m.end() - 1)
        if params is None:
            continue
        brace = code.find("{", pend)
        semi = code.find(";", pend)
        if brace < 0 or (0 <= semi < brace):
            continue  # declaration or expression statement
        if not DEF_GAP_RE.match(code[pend + 1:brace]):
            continue
        body, bend = _balanced(code, brace)
        if body is None:
            continue
        bodies.append((m.group(1), brace + 1, bend))
    return bodies


def check_steady_state_growth(sf, findings):
    top = sf.rel.split("/", 1)[0]
    if top not in STEADY_DIRS:
        return
    code = sf.code_nostr
    # A container counts as warmed when this file reserves it anywhere
    # (constructor, start(), job-pool setup — order in the file does not
    # matter, the point is that someone owns its capacity).
    reserved = set(re.findall(r"\b(\w+)\s*(?:\.|->)\s*reserve\s*\(", code))
    for fn, start, end in _steady_bodies(code):
        for gm in GROWTH_RE.finditer(code, start, end):
            receiver = re.sub(r"\[[^\]]*\]", "", gm.group(1))
            key = re.split(r"\.|->", receiver)[-1]
            if key in reserved:
                continue
            lineno = _line_of(code, gm.start())
            if sf.allowed(lineno, "steady-state-growth"):
                continue
            findings.append(Finding(
                sf.rel, lineno, "steady-state-growth",
                "%s.%s() grows a container inside steady-state %s() and "
                "'%s' is never reserved in this file" %
                (key, gm.group(2), fn, key)))


# --- rule: read-path-lock --------------------------------------------------

# Per-packet read-path functions by directory, and what is forbidden in
# each. The route/apps leaves do the actual FIB access, so any lock
# acquisition there is a data-path stall; core's batch drivers may take
# their own (GPU-health) locks but must reach the FIB only through the
# apps' lock-free leaves, so only the mutex-taking snapshot() is banned.
READ_PATH_FNS = {
    "route": (r"lookup|lookup_batch", True),
    "apps": (r"shade_cpu|process_cpu|pre_shade|post_shade", True),
    "core": (r"shade_batch|cpu_fallback_batch", False),
}
READ_PATH_ACQUIRE_RE = re.compile(
    r"\b(MutexLock|std::lock_guard|std::unique_lock|std::scoped_lock)\b"
    r"|(?:\.|->)\s*lock\s*\(")
READ_PATH_SNAPSHOT_RE = re.compile(r"(?:\.|->)\s*snapshot\s*\(")


def check_read_path_lock(sf, findings):
    top = sf.rel.split("/", 1)[0]
    if top not in READ_PATH_FNS:
        return
    fns, ban_locks = READ_PATH_FNS[top]
    code = sf.code_nostr
    fn_re = re.compile(r"\b(%s)\s*\(" % fns)
    for fn, start, end in _steady_bodies(code, fn_re):
        sites = list(READ_PATH_SNAPSHOT_RE.finditer(code, start, end))
        what = {m.start(): "FIB snapshot() (takes the manager mutex)"
                for m in sites}
        if ban_locks:
            for m in READ_PATH_ACQUIRE_RE.finditer(code, start, end):
                what[m.start()] = "lock acquisition"
        for pos in sorted(what):
            lineno = _line_of(code, pos)
            if sf.allowed(lineno, "read-path-lock"):
                continue
            findings.append(Finding(
                sf.rel, lineno, "read-path-lock",
                "%s inside per-packet %s(); use the epoch-pinned "
                "FibManager::read()" % (what[pos], fn)))


# --- rule: handoff-mutex ---------------------------------------------------

# The hand-off path: the SPSC fan-in header in full (its WakeSignal slow
# path carries per-site allow comments), plus the router loops that move
# jobs across the worker<->master boundary. stage_finish()/shade_batch()
# may take their own (host-stack, GPU-health) locks — those guard other
# subsystems, not the hand-off — so only the loop bodies are scanned.
HANDOFF_FILE = "common/spsc_ring.hpp"
HANDOFF_FNS = "worker_loop|drain_scatter|recv_and_dispatch|master_loop"
HANDOFF_FN_RE = re.compile(r"\b(%s)\s*\(" % HANDOFF_FNS)


def check_handoff_mutex(sf, findings):
    code = sf.code_nostr

    def report(pos, where):
        lineno = _line_of(code, pos)
        if sf.allowed(lineno, "handoff-mutex"):
            return
        findings.append(Finding(
            sf.rel, lineno, "handoff-mutex",
            "mutex acquisition %s; the hand-off is lock-free by design "
            "(idle-path parking goes through WakeSignal)" % where))

    if sf.rel == HANDOFF_FILE:
        for m in READ_PATH_ACQUIRE_RE.finditer(code):
            report(m.start(), "in the SPSC hand-off header")
        return
    if sf.rel.split("/", 1)[0] != "core":
        return
    for fn, start, end in _steady_bodies(code, HANDOFF_FN_RE):
        for m in READ_PATH_ACQUIRE_RE.finditer(code, start, end):
            report(m.start(), "inside hand-off loop %s()" % fn)


# --- rule: atomics-audit ---------------------------------------------------

# Files allowed to spell std::atomic / std::atomic_thread_fence: the shim
# that defines the production backend, and the model-checker runtime that
# defines the other one.
ATOMIC_EXEMPT_FILE = "common/atomic_shim.hpp"
ATOMIC_EXEMPT_DIR = "mc/"

BARE_STD_ATOMIC_RE = re.compile(r"\bstd::atomic(?:\s*<|_thread_fence\b)")
PS_ATOMIC_SITE_RE = re.compile(r"\bps::atomic\s*<|\b(?:ps::)?fence_seq_cst\s*\(")
MC_TAG_RE = re.compile(r"//\s*mc:\s*([A-Za-z0-9_][A-Za-z0-9_.\-]*)")
MC_KEY_RE = re.compile(r"[A-Za-z0-9_][A-Za-z0-9_.\-]*\Z")


def _close_angle(code, open_pos):
    """Index of the `>` closing the template argument list opening at
    open_pos, or -1. Depth counting is enough: atomic template arguments
    are types, so no stray comparison operators appear inside."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _mc_tag_near(sf, lineno):
    """The `// mc: <key>` tag covering a site: same line or up to two
    lines above (mirrors the allow-comment proximity rule)."""
    for ln in (lineno, lineno - 1, lineno - 2):
        if 1 <= ln <= len(sf.lines):
            m = MC_TAG_RE.search(sf.lines[ln - 1])
            if m:
                return m.group(1)
    return None


def check_atomics_audit(sf, findings, code_keys):
    """Per-file half of the rule; `code_keys` accumulates
    key -> (rel, line) of the first tagged site for the doc sync pass."""
    if sf.rel == ATOMIC_EXEMPT_FILE or sf.rel.startswith(ATOMIC_EXEMPT_DIR):
        return
    code = sf.code_nostr
    for m in BARE_STD_ATOMIC_RE.finditer(code):
        lineno = _line_of(code, m.start())
        if sf.allowed(lineno, "atomics-audit"):
            continue
        findings.append(Finding(
            sf.rel, lineno, "atomics-audit",
            "bare %s; declare atomics as ps::atomic and fences as "
            "ps::fence_seq_cst() (common/atomic_shim.hpp) so the "
            "model-check build can reroute them"
            % ("std::atomic_thread_fence" if "fence" in m.group(0)
               else "std::atomic")))
    for m in PS_ATOMIC_SITE_RE.finditer(code):
        if "atomic" in m.group(0):
            open_angle = code.find("<", m.start())
            close = _close_angle(code, open_angle)
            if close < 0:
                continue
            j = close + 1
            while j < len(code) and code[j] in " \t":
                j += 1
            if j < len(code) and code[j] in "*&":
                # Pointer/reference spelling: the owning declaration
                # carries the contract tag.
                continue
            what = "ps::atomic declaration"
        else:
            what = "fence_seq_cst() call"
        lineno = _line_of(code, m.start())
        key = _mc_tag_near(sf, lineno)
        if key is None:
            if sf.allowed(lineno, "atomics-audit"):
                continue
            findings.append(Finding(
                sf.rel, lineno, "atomics-audit",
                "%s without a `// mc: <key>` contract tag naming its "
                "DESIGN.md row" % what))
        else:
            code_keys.setdefault(key, (sf.rel, lineno))


def _doc_mc_keys(path):
    """`mc:<key>` entries from a doc's tables: key -> first line. Only
    table rows count, same contract as registry-sync."""
    keys = {}
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        lines = f.read().split("\n")
    for i, line in enumerate(lines, 1):
        if not line.lstrip().startswith("|"):
            continue
        for tok in re.findall(r"`mc:\s*([^`]+)`", line):
            tok = tok.strip()
            if MC_KEY_RE.match(tok):
                keys.setdefault(tok, i)
    return keys


def check_atomics_doc_sync(code_keys, docs, findings):
    doc_keys = {}
    for doc in docs:
        for key, line in _doc_mc_keys(doc).items():
            doc_keys.setdefault(key, (doc, line))
    for key, (rel, line) in sorted(code_keys.items()):
        if key not in doc_keys:
            findings.append(Finding(
                rel, line, "atomics-audit",
                "mc: key '%s' is tagged in code but missing from the "
                "memory-model contract table" % key))
    for key, (doc, line) in sorted(doc_keys.items()):
        if key not in code_keys:
            findings.append(Finding(
                os.path.basename(doc), line, "atomics-audit",
                "mc: key '%s' is documented but never tagged in code" % key))


# --- rule: registry-sync ---------------------------------------------------

def _normalize(name):
    name = re.sub(r"<[^<>]*>", "", name)
    name = re.sub(r"\.\.+", ".", name)
    return name.strip(".")


def _string_literals(expr):
    return re.findall(r'"([^"\n]*)"', expr)


def _code_names(sf, site_re):
    """Registry names registered/fired in this file: (name, lineno) pairs.

    Handles three forms: plain literals, `prefix + "suffix"` with the
    nearest preceding `prefix = "..." (+ ...)` assignment, and constexpr
    string_view declarations.
    """
    code = sf.code
    names = []
    # Prefix variables: nearest preceding assignment from string literals.
    assigns = []  # (pos, var, concatenated-literal)
    for am in re.finditer(r"\b(?:const\s+std::string\s+)?(\w+)\s*=\s*([^;]+);", code):
        lits = _string_literals(am.group(2))
        if lits:
            assigns.append((am.start(), am.group(1), "".join(lits)))

    def prefix_before(var, pos):
        best = None
        for apos, name, lit in assigns:
            if name == var and apos < pos:
                best = lit
        return best

    for m in site_re.finditer(code):
        call_pos = m.start()
        open_paren = code.find("(", m.start(), m.end() + 2)
        if open_paren >= 0 and code[m.end() - 1] == "(":
            args, _ = _balanced(code, m.end() - 1)
            if args is None:
                continue
            first = args.split(",", 1)[0]
        else:
            # Assignment forms: take the right-hand side up to `;`.
            semi = code.find(";", m.end())
            first = code[m.end():semi if semi >= 0 else len(code)]
        lits = _string_literals(first)
        name = "".join(lits)
        # `prefix + "suffix"`: resolve the identifier on the left.
        pm = re.match(r"\s*(\w+)\s*\+", first)
        if pm and not lits_start_with_literal(first):
            resolved = prefix_before(pm.group(1), call_pos)
            if resolved is not None:
                name = resolved + name
        name = _normalize(name)
        if REGISTRY_PREFIX_RE.match(name):
            names.append((name, _line_of(code, call_pos)))
    return names


def lits_start_with_literal(expr):
    return bool(re.match(r'\s*(?:std::string\s*\(\s*)?"', expr))


def _doc_names(path):
    """Registry names from a doc's tables: (name, lineno) pairs.

    Only table rows (lines starting with |) count — prose mentions are
    illustrative, the tables are the contract. `.suffix` tokens continue
    the previous name (shared-prefix rows)."""
    names = []
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        lines = f.read().split("\n")
    prev = None
    for i, line in enumerate(lines, 1):
        if not line.lstrip().startswith("|"):
            continue
        for tok in re.findall(r"`([^`]+)`", line):
            tok = tok.strip()
            if "(" in tok or " " in tok:
                continue
            if tok.startswith(".") and prev is not None:
                base = prev.rsplit(".", 1)[0]
                tok = base + tok
            if not REGISTRY_PREFIX_RE.match(_normalize(tok)):
                continue
            prev = tok
            names.append((_normalize(tok), i))
    return names


def check_registry_sync(files, docs, findings):
    code_faults = {}   # name -> (rel, line) of first sighting
    code_metrics = {}
    for sf in files:
        for name, line in _code_names(sf, FAULT_SITE_RE):
            code_faults.setdefault(name, (sf.rel, line))
        for name, line in _code_names(sf, METRIC_SITE_RE):
            code_metrics.setdefault(name, (sf.rel, line))
    code_all = dict(code_metrics)
    code_all.update(code_faults)

    doc_names = {}
    for doc in docs:
        for name, line in _doc_names(doc):
            doc_names.setdefault(name, (doc, line))

    for name, (rel, line) in sorted(code_all.items()):
        if name not in doc_names:
            findings.append(Finding(
                rel, line, "registry-sync",
                "'%s' is registered in code but missing from the doc tables"
                % name))
    for name, (doc, line) in sorted(doc_names.items()):
        if name not in code_all:
            findings.append(Finding(
                os.path.basename(doc), line, "registry-sync",
                "'%s' is documented but never registered in code" % name))


# --- driver ----------------------------------------------------------------

def collect_files(root):
    files = []
    for dirpath, _dirs, filenames in os.walk(root):
        for fn in sorted(filenames):
            if fn.endswith(SRC_EXTS):
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                files.append(SourceFile(path, rel))
    files.sort(key=lambda sf: sf.rel)
    return files


def main(argv):
    ap = argparse.ArgumentParser(prog="pslint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--src", default="src", help="source root to scan")
    ap.add_argument("--docs", action="append", default=[],
                    help="doc file for registry-sync (repeatable); "
                         "rule is skipped when none are given")
    ap.add_argument("--expect", metavar="FILE",
                    help="compare findings against this golden file "
                         "(self-test mode); exit 0 iff identical")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print("%-20s %s" % (rule, desc))
        return 0

    files = collect_files(args.src)
    findings = []
    mc_code_keys = {}
    for sf in files:
        check_bare_atomic(sf, findings)
        check_single_writer(sf, findings)
        check_drop_reason_default(sf, findings)
        check_hot_sleep(sf, findings)
        check_steady_state_growth(sf, findings)
        check_read_path_lock(sf, findings)
        check_handoff_mutex(sf, findings)
        check_atomics_audit(sf, findings, mc_code_keys)
    if args.docs:
        check_registry_sync(files, args.docs, findings)
        check_atomics_doc_sync(mc_code_keys, args.docs, findings)

    findings.sort(key=lambda f: (f.rel, f.line, f.rule, f.message))
    rendered = [f.render() for f in findings]

    if args.expect:
        with open(args.expect, "r", encoding="utf-8") as f:
            expected = [l for l in f.read().split("\n") if l.strip()]
        if rendered == expected:
            print("pslint self-test: %d expected finding(s), all matched"
                  % len(expected))
            return 0
        print("pslint self-test FAILED")
        for line in sorted(set(expected) - set(rendered)):
            print("  missing:    %s" % line)
        for line in sorted(set(rendered) - set(expected)):
            print("  unexpected: %s" % line)
        return 1

    for line in rendered:
        print(line)
    if findings:
        print("pslint: %d finding(s)" % len(findings))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
