// Golden corpus regenerator: synthesizes each corpus input capture from
// its frozen seeds, routes it through the full router, and writes the
// canonical expected pcap next to it. Run via scripts/regen_goldens.sh,
// which also refreshes the checksum manifest. The corpus definitions live
// in src/cap/golden.* so this tool and the expect tests can never drift.
#include <cstdio>
#include <string>

#include "cap/golden.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <data-dir>\n", argv[0]);
    return 2;
  }
  const std::string data_dir = argv[1];

  for (const auto corpus : ps::cap::kAllCorpora) {
    const std::string input = ps::cap::corpus_input_path(data_dir, corpus);
    const std::string golden = ps::cap::corpus_golden_path(data_dir, corpus);

    ps::cap::write_corpus_input(corpus, input);
    const auto tx = ps::cap::route_corpus(corpus, input);
    if (tx.size() != ps::cap::corpus_frame_count(corpus)) {
      std::fprintf(stderr, "%s: router forwarded %zu of %llu corpus frames; refusing to "
                           "bless a lossy golden\n",
                   ps::cap::corpus_name(corpus), tx.size(),
                   static_cast<unsigned long long>(ps::cap::corpus_frame_count(corpus)));
      return 1;
    }
    ps::cap::write_canonical_pcap(golden, tx);
    std::printf("%-10s %llu frames -> %s\n", ps::cap::corpus_name(corpus),
                static_cast<unsigned long long>(tx.size()), golden.c_str());
  }
  return 0;
}
