#!/usr/bin/env python3
"""Diff two BENCH JSON-lines files and fail on perf regressions.

Usage:
    bench_compare.py BASELINE CANDIDATE [--threshold 0.25]
                     [--metric-threshold NAME=FRAC ...] [--metric-min NAME=VALUE ...]
                     [--metric-max NAME=VALUE ...] [--ignore REGEX]

Both files hold one JSON object per line (the `BENCH {...}` lines that
scripts/run_bench.sh scrapes, prefix stripped), keyed by their "bench"
field. Every numeric metric present in the baseline must be present in
the candidate; each is compared with a relative threshold:

  * metrics whose name suggests "lower is better" (matching ns/us/
    latency/cycles/drops) regress when candidate > baseline * (1 + t)
  * everything else (throughput, speedups, counts) regresses when
    candidate < baseline * (1 - t)

--metric-threshold overrides the default for one metric name;
--metric-min pins an *absolute* floor on a metric — the candidate fails
whenever its value drops below the floor, regardless of how the
baseline drifted (this is how acceptance bounds like "integrity
retention >= 0.95" stay enforced even as the baseline is re-recorded);
--metric-max is the mirror image, an absolute ceiling for
lower-is-better metrics — the candidate fails whenever its value
exceeds it (e.g. "fig12 end-to-end mean <= 50us"). An explicitly
bounded metric is checked even when --ignore matches it, and a bound
naming a metric absent from the compared baseline is an error, so a
typo cannot silently disarm the gate. --ignore skips
metrics matching a regex (e.g. wall-clock timings on shared CI hosts);
--only restricts the comparison to benches matching a regex (the smoke
gate compares only the benches the smoke run produces). A
bench or metric missing from the candidate is an error: a silently
dropped series must not pass the gate. A zero baseline admits no
relative comparison: a lower-is-better metric going 0 -> nonzero fails
as a "new nonzero value"; anything else passing through zero is
reported but never fails. Exits 1 on any regression or
structural mismatch, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

LOWER_IS_BETTER = re.compile(r"(_|\b)(ns|us|ms|latency|cycles|drops)(_|\b)")


def load_bench_lines(path: str) -> dict[str, dict]:
    benches: dict[str, dict] = {}
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("BENCH "):
                line = line[len("BENCH "):]
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{lineno}: not JSON: {e}")
            name = obj.get("bench")
            if not isinstance(name, str):
                raise SystemExit(f"{path}:{lineno}: missing \"bench\" key")
            benches[name] = obj
    if not benches:
        raise SystemExit(f"{path}: no BENCH lines found")
    return benches


def numeric_metrics(obj: dict) -> dict[str, float]:
    out = {}
    for key, value in obj.items():
        if key == "bench":
            continue
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="default relative regression threshold (default 0.25)")
    ap.add_argument("--metric-threshold", action="append", default=[],
                    metavar="NAME=FRAC",
                    help="per-metric threshold override, repeatable")
    ap.add_argument("--metric-min", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="absolute floor: fail if the candidate metric is "
                         "below VALUE, repeatable")
    ap.add_argument("--metric-max", action="append", default=[],
                    metavar="NAME=VALUE",
                    help="absolute ceiling: fail if the candidate metric is "
                         "above VALUE, repeatable")
    ap.add_argument("--ignore", default=None, metavar="REGEX",
                    help="skip metrics whose name matches this regex")
    ap.add_argument("--only", default=None, metavar="REGEX",
                    help="compare only benches whose name matches this regex")
    args = ap.parse_args()

    overrides: dict[str, float] = {}
    for spec in args.metric_threshold:
        name, sep, frac = spec.partition("=")
        if not sep:
            ap.error(f"--metric-threshold needs NAME=FRAC, got {spec!r}")
        overrides[name] = float(frac)
    floors: dict[str, float] = {}
    for spec in args.metric_min:
        name, sep, value = spec.partition("=")
        if not sep:
            ap.error(f"--metric-min needs NAME=VALUE, got {spec!r}")
        floors[name] = float(value)
    floors_seen: set[str] = set()
    ceilings: dict[str, float] = {}
    for spec in args.metric_max:
        name, sep, value = spec.partition("=")
        if not sep:
            ap.error(f"--metric-max needs NAME=VALUE, got {spec!r}")
        ceilings[name] = float(value)
    ceilings_seen: set[str] = set()
    ignore = re.compile(args.ignore) if args.ignore else None
    only = re.compile(args.only) if args.only else None

    baseline = load_bench_lines(args.baseline)
    candidate = load_bench_lines(args.candidate)
    if only:
        baseline = {k: v for k, v in baseline.items() if only.search(k)}
        if not baseline:
            raise SystemExit(f"--only {args.only!r} matches no baseline bench")

    failures = []
    compared = 0
    for bench, base_obj in sorted(baseline.items()):
        if bench not in candidate:
            failures.append(f"{bench}: missing from candidate")
            continue
        cand_metrics = numeric_metrics(candidate[bench])
        for metric, base in sorted(numeric_metrics(base_obj).items()):
            floor = floors.get(metric)
            ceiling = ceilings.get(metric)
            if ignore and ignore.search(metric) and floor is None and ceiling is None:
                continue
            if metric not in cand_metrics:
                failures.append(f"{bench}.{metric}: missing from candidate")
                continue
            cand = cand_metrics[metric]
            if floor is not None:
                floors_seen.add(metric)
                if cand < floor:
                    print(f"FAIL  {bench}.{metric}: {cand:g} below floor {floor:g}")
                    failures.append(
                        f"{bench}.{metric}: {cand:g} is below the absolute "
                        f"floor {floor:g}")
                else:
                    print(f"  ok  {bench}.{metric}: {cand:g} >= floor {floor:g}")
            if ceiling is not None:
                ceilings_seen.add(metric)
                if cand > ceiling:
                    print(f"FAIL  {bench}.{metric}: {cand:g} above ceiling {ceiling:g}")
                    failures.append(
                        f"{bench}.{metric}: {cand:g} is above the absolute "
                        f"ceiling {ceiling:g}")
                else:
                    print(f"  ok  {bench}.{metric}: {cand:g} <= ceiling {ceiling:g}")
            if (floor is not None or ceiling is not None) and ignore and ignore.search(metric):
                continue  # absolutely bounded but exempt from the relative diff
            threshold = overrides.get(metric, args.threshold)
            compared += 1
            if base == 0:
                # No relative comparison possible. A lower-is-better metric
                # (drops, latency) appearing where the baseline had zero is
                # a real regression and must fail loudly, not skip.
                if cand == 0:
                    print(f"  ok  {bench}.{metric}: 0 -> 0")
                elif LOWER_IS_BETTER.search(metric):
                    print(f"FAIL  {bench}.{metric}: 0 -> {cand:g} (new nonzero value)")
                    failures.append(
                        f"{bench}.{metric}: new nonzero value {cand:g} "
                        f"(baseline 0, lower is better)")
                else:
                    print(f"  ok  {bench}.{metric}: 0 -> {cand:g} (up from zero)")
                continue
            delta = (cand - base) / abs(base)
            if LOWER_IS_BETTER.search(metric):
                regressed = delta > threshold
                direction = "above"
            else:
                regressed = -delta > threshold
                direction = "below"
            marker = "FAIL" if regressed else "ok"
            print(f"{marker:>4}  {bench}.{metric}: {base:g} -> {cand:g} "
                  f"({delta:+.1%}, threshold {threshold:.0%})")
            if regressed:
                failures.append(
                    f"{bench}.{metric}: {cand:g} is {abs(delta):.1%} {direction} "
                    f"baseline {base:g} (threshold {threshold:.0%})")

    for name in sorted(set(floors) - floors_seen):
        failures.append(
            f"--metric-min {name}: metric not present in the compared baseline "
            f"(typo, or excluded by --only?)")
    for name in sorted(set(ceilings) - ceilings_seen):
        failures.append(
            f"--metric-max {name}: metric not present in the compared baseline "
            f"(typo, or excluded by --only?)")

    print(f"\ncompared {compared} metrics across {len(baseline)} benches")
    if failures:
        print(f"{len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
