#!/bin/sh
# The repo-canonical perf harness: run every BENCH-emitting harness and
# collect the machine-readable lines into one JSON-lines file that
# scripts/bench_compare.py can diff against a committed baseline.
#
#   scripts/run_bench.sh [--smoke] [--out FILE] [--build-dir DIR]
#
# Full mode runs every BENCH emitter at full duration. --smoke runs the
# reduced-duration subset (bench_micro_lookup --smoke and
# bench_fig11a_ipv4 --smoke) that the bench-smoke CI job gates on.
# Output defaults to BENCH_PR5.json in the repo root; each line is the
# JSON object from one `BENCH {...}` line, prefix stripped.
set -e
cd "$(dirname "$0")/.."

mode=full
out=BENCH_PR5.json
build=build
while [ $# -gt 0 ]; do
  case "$1" in
    --smoke) mode=smoke ;;
    --out) out="$2"; shift ;;
    --build-dir) build="$2"; shift ;;
    *) echo "usage: $0 [--smoke] [--out FILE] [--build-dir DIR]" >&2; exit 2 ;;
  esac
  shift
done

if [ "$mode" = smoke ]; then
  benches="bench_micro_lookup:--smoke bench_fig11a_ipv4:--smoke"
else
  benches="bench_micro_lookup: bench_fig11a_ipv4: bench_fig12_latency: bench_overload: bench_fib_churn:"
fi

log="$(mktemp)"
trap 'rm -f "$log"' EXIT
: > "$out"

for spec in $benches; do
  bench="${spec%%:*}"
  flag="${spec#*:}"
  bin="$build/bench/$bench"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $build --target $bench)" >&2
    exit 1
  fi
  echo "=== $bench $flag ==="
  # shellcheck disable=SC2086  # $flag is intentionally word-split
  "$bin" $flag 2>&1 | tee "$log"
  sed -n 's/^BENCH //p' "$log" >> "$out"
done

lines=$(wc -l < "$out")
echo "wrote $lines BENCH lines to $out"
