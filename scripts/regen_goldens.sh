#!/usr/bin/env bash
# Regenerate the golden pcap corpus (tests/data) and its checksum
# manifest in one step. Run after any intentional change to packet
# construction, routing behaviour, or the corpus definitions in
# src/cap/golden.cpp, then commit the new pcaps and MANIFEST.sha256
# together. The GoldenManifest ctest and the ExpectGolden tests fail
# until both are re-blessed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
DATA_DIR=tests/data

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target make_goldens -j "$(nproc)"

mkdir -p "$DATA_DIR"
"$BUILD_DIR"/tools/make_goldens/make_goldens "$DATA_DIR"

(
  cd "$DATA_DIR"
  : > MANIFEST.sha256
  for f in $(ls *.pcap | sort); do
    sha256sum "$f" >> MANIFEST.sha256
  done
)

echo "regenerated corpus:"
cat "$DATA_DIR"/MANIFEST.sha256
python3 scripts/check_goldens.py --data-dir "$DATA_DIR"
