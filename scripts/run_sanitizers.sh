#!/bin/sh
# Build and run the test suite under the sanitizer presets: ASan+UBSan
# (-DPS_SANITIZE=address), TSan (-DPS_SANITIZE=thread), and standalone
# UBSan (-DPS_SANITIZE=undefined, with -fno-sanitize-recover so any UB
# aborts the test), each in its own build tree. Pass a preset name
# ("address", "thread", or "undefined") to run just that one.
#
# An optional second argument is a ctest -R regex to run a subset. The
# overload-control / liveness layer leans hard on cross-thread protocols
# (heartbeat publication, quarantine adoption, watermark reads), so its
# suites are worth a focused TSan pass while iterating — the trailing
# 'Chaos' also pulls in IntegrityChaos, the corruption-under-churn suite:
#   scripts/run_sanitizers.sh thread \
#     'Supervisor|SupervisorChaos|OverloadControl|Admission|LinkFlap|FibChurn|RouterBackpressure|Chaos'
#
# The telemetry layer has its own cross-thread surface — snapshot() racing
# single-writer counters, the tracer's per-slot seqlock, the GPU/CPU
# differential paths — collected under the "telemetry" shorthand:
#   scripts/run_sanitizers.sh thread telemetry
# In particular TelemetryConservation runs a snapshot thread against live
# traffic: a data race in MetricsRegistry::snapshot() fails that suite
# under TSan.
#
# The "lockfree" shorthand selects by ctest *label* instead of regex: it
# runs the LockfreeSuite entry (SPSC ring, WakeSignal, SpscFanIn, epoch
# — the protocols the ps::mc litmus suite model-checks, here exercised
# at full concurrency under the sanitizer). CI runs it under all three
# presets on every PR before the full suites:
#   scripts/run_sanitizers.sh "address thread undefined" lockfree
set -e
cd "$(dirname "$0")/.."

telemetry_filter='TelemetryConservation|MetricsRegistry|PipelineTrace|BenchLine|Exporter|StageBreakdown|GpuCpuDifferential'

presets="${1:-address thread undefined}"
filter="$2"
label=""
if [ "$filter" = "telemetry" ]; then
  filter="$telemetry_filter"
elif [ "$filter" = "lockfree" ]; then
  label="lockfree"
  filter=""
fi

for preset in $presets; do
  build_dir="build-san-$preset"
  echo "=== PS_SANITIZE=$preset ($build_dir) ==="
  cmake -B "$build_dir" -DPS_SANITIZE="$preset" -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build_dir" --target ps_tests -j "$(nproc)"
  # halt_on_error makes a sanitizer report fail the test run instead of
  # continuing past it.
  ASAN_OPTIONS=halt_on_error=1 \
  UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$build_dir" --output-on-failure \
      ${label:+-L "$label"} ${filter:+-R "$filter"}
done
