#!/usr/bin/env python3
"""Verify the golden pcap corpus against its checksum manifest.

tests/data/MANIFEST.sha256 pins every committed capture byte-for-byte.
Any drift — a regenerated pcap that was not re-blessed, a manifest edit
without the matching capture, a capture added without a manifest row —
fails with the regeneration hint. scripts/regen_goldens.sh rebuilds the
corpus AND the manifest together; nothing else should touch either.
"""

import argparse
import hashlib
import os
import sys

REGEN_HINT = ("run scripts/regen_goldens.sh to regenerate the corpus and "
              "manifest together, then commit both")


def sha256_of(path):
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--data-dir", default="tests/data",
                    help="corpus directory holding the pcaps and manifest")
    args = ap.parse_args(argv)

    manifest_path = os.path.join(args.data_dir, "MANIFEST.sha256")
    if not os.path.isfile(manifest_path):
        print("check_goldens: missing %s; %s" % (manifest_path, REGEN_HINT))
        return 1

    expected = {}
    with open(manifest_path, "r", encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                print("check_goldens: malformed manifest line %d: %r" % (lineno, line))
                return 1
            digest, name = parts
            expected[name] = digest

    failures = []
    for name, digest in sorted(expected.items()):
        path = os.path.join(args.data_dir, name)
        if not os.path.isfile(path):
            failures.append("%s: listed in manifest but missing from %s"
                            % (name, args.data_dir))
            continue
        actual = sha256_of(path)
        if actual != digest:
            failures.append("%s: checksum drift (manifest %s..., file %s...)"
                            % (name, digest[:12], actual[:12]))

    on_disk = {n for n in os.listdir(args.data_dir) if n.endswith(".pcap")}
    for name in sorted(on_disk - set(expected)):
        failures.append("%s: present in %s but not pinned by the manifest"
                        % (name, args.data_dir))

    if failures:
        for f in failures:
            print("check_goldens: %s" % f)
        print("check_goldens: %d problem(s); %s" % (len(failures), REGEN_HINT))
        return 1
    print("check_goldens: %d capture(s) match the manifest" % len(expected))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
