// OpenFlow switch example: programming exact and wildcard flow entries
// with priorities, a controller-style slow path for table misses, and the
// GPU-offloaded classification pipeline.
#include <cstdio>

#include "apps/openflow_app.hpp"
#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

int main() {
  using namespace ps;
  std::printf("PacketShader OpenFlow switch\n============================\n\n");

  openflow::OpenFlowSwitch sw;

  // 1. Program the tables like a controller would.
  //    - pin a known flow to port 5 (exact match, all ten fields);
  gen::TrafficGen traffic({.frame_size = 64, .seed = 77, .flow_count = 32});
  const auto pinned = traffic.frame_for_flow(0);
  net::PacketView view;
  (void)net::parse_packet(const_cast<u8*>(pinned.data()), static_cast<u32>(pinned.size()), view);
  sw.exact().insert(openflow::extract_flow_key(view, 0), openflow::Action::output(5));

  //    - drop TCP (wildcard on everything but nw_proto, high priority);
  openflow::WildcardMatch drop_tcp;
  drop_tcp.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  drop_tcp.key.nw_proto = 6;
  drop_tcp.priority = 900;
  sw.wildcard().insert(drop_tcp, openflow::Action::drop());

  //    - send 10.0.0.0/8 sources to port 2 (prefix wildcard, mid priority);
  openflow::WildcardMatch from_ten;
  from_ten.wildcards = openflow::kWildAll;
  from_ten.nw_src_bits = 8;
  from_ten.key.nw_src = net::Ipv4Addr(10, 0, 0, 0).value;
  from_ten.priority = 500;
  sw.wildcard().insert(from_ten, openflow::Action::output(2));

  //    - flood everything else that is UDP (low priority);
  openflow::WildcardMatch udp_flood;
  udp_flood.wildcards = openflow::kWildAll & ~openflow::kWildNwProto;
  udp_flood.key.nw_proto = 17;
  udp_flood.priority = 10;
  sw.wildcard().insert(udp_flood, openflow::Action::flood());

  //    - misses go to the controller (default).
  std::printf("tables: %zu exact, %zu wildcard entries; miss -> controller\n\n",
              sw.exact().size(), sw.wildcard().size());

  // 2. Classify a few hand-made packets on the CPU path.
  apps::OpenFlowApp app(sw);
  core::ShaderJob job(8);
  job.chunk.append(pinned);                                         // exact hit
  auto from_10 = net::build_udp_ipv4({}, net::Ipv4Addr(10, 7, 7, 7),
                                     net::Ipv4Addr(99, 0, 0, 1));   // 10/8 rule
  job.chunk.append(from_10);
  job.chunk.in_port = 0;
  app.process_cpu(job.chunk);
  std::printf("pinned flow  -> port %d (exact match wins)\n", job.chunk.out_port(0));
  std::printf("src 10.7.7.7 -> port %d (prefix wildcard)\n\n", job.chunk.out_port(1));

  // 3. Run random traffic through the full GPU pipeline (model).
  core::TestbedConfig cfg{.topo = pcie::Topology::paper_server(), .use_gpu = true};
  core::RouterConfig rcfg{.use_gpu = true};
  core::Testbed testbed(cfg, rcfg);
  gen::TrafficGen random_traffic({.frame_size = 64, .seed = 5});
  testbed.connect_sink(&random_traffic);
  core::ModelDriver driver(testbed, &app, rcfg);
  const auto result = driver.run(random_traffic, 20'000);

  std::printf("random traffic through the GPU pipeline:\n");
  std::printf("  accepted  %llu\n", static_cast<unsigned long long>(result.accepted));
  std::printf("  forwarded %llu (flood duplicates extra copies)\n",
              static_cast<unsigned long long>(result.forwarded));
  std::printf("  dropped   %llu (the drop-TCP rule)\n",
              static_cast<unsigned long long>(result.dropped));
  std::printf("  to controller %llu\n", static_cast<unsigned long long>(result.slow_path));
  std::printf("  modeled throughput %.1f Gbps (bottleneck: %s)\n", result.input_gbps,
              result.bottleneck.c_str());
  return 0;
}
