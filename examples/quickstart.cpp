// Quickstart: the smallest complete PacketShader setup.
//
// Builds a single-node testbed, installs three routes, pushes a handful of
// packets through the CPU forwarding path, and prints what happened.
// No GPU, no threads — just the public API end to end.
#include <cstdio>

#include "apps/ipv4_forward.hpp"
#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

int main() {
  using namespace ps;
  std::printf("PacketShader quickstart\n=======================\n\n");

  // 1. A small machine: one NUMA node, four 10 GbE ports.
  core::TestbedConfig config;
  config.topo = pcie::Topology::single_node();
  config.use_gpu = false;
  core::Testbed testbed(config, core::RouterConfig{.use_gpu = false});

  // 2. A traffic generator wired to every port as source and sink.
  gen::TrafficGen traffic({.frame_size = 64, .seed = 1});
  testbed.connect_sink(&traffic);

  // 3. Three routes: two specific prefixes and a default.
  route::Ipv4Table table;
  const route::Ipv4Prefix routes[] = {
      {net::Ipv4Addr::parse("10.0.0.0").value(), 8, /*next hop port*/ 1},
      {net::Ipv4Addr::parse("192.168.0.0").value(), 16, 2},
      {net::Ipv4Addr(0), 0, 3},  // default route
  };
  table.build(routes);
  std::printf("installed %zu routes (DIR-24-8: %zu overflow chunks)\n",
              table.prefix_count(), table.overflow_chunks());

  // 4. The IPv4 forwarding application on the CPU path.
  apps::Ipv4ForwardApp app(table);
  core::ModelDriver driver(testbed, &app, core::RouterConfig{.use_gpu = false});

  // 5. Push packets through and look at the results.
  const auto result = driver.run(traffic, 10'000);
  std::printf("\noffered   %llu packets\n", static_cast<unsigned long long>(result.offered));
  std::printf("forwarded %llu packets\n", static_cast<unsigned long long>(result.forwarded));
  std::printf("modeled throughput: %.1f Gbps (bottleneck: %s)\n", result.output_gbps,
              result.bottleneck.c_str());

  std::printf("\nper-port TX (everything matches the default route -> port 3,\n"
              "except 10/8 -> port 1 and 192.168/16 -> port 2):\n");
  for (int p = 0; p < testbed.topology().num_ports(); ++p) {
    std::printf("  port %d: %llu packets\n", p,
                static_cast<unsigned long long>(testbed.port(p).tx_totals().packets));
  }

  // 6. Route one hand-built packet and watch the TTL change.
  auto frame = net::build_udp_ipv4({}, net::Ipv4Addr(1, 2, 3, 4),
                                   net::Ipv4Addr::parse("10.9.9.9").value());
  core::ShaderJob job(4);
  job.chunk.append(frame);
  app.process_cpu(job.chunk);
  net::PacketView view;
  auto pkt = job.chunk.packet(0);
  (void)net::parse_packet(pkt.data(), static_cast<u32>(pkt.size()), view);
  std::printf("\nhand-built packet to 10.9.9.9: out port %d, TTL %u -> %u, checksum ok\n",
              job.chunk.out_port(0), 64, view.ipv4().ttl);
  return 0;
}
