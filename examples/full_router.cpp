// The everything-on example: a dual-stack router with live control plane,
// GPU offload, and a slow-path host stack — the section 7 extensions
// working together on the real threaded runtime.
//
//  - IPv4 via DynamicIpv4ForwardApp (routes come from an Ipv4Fib; we
//    re-route mid-run and the change takes effect without stopping);
//  - IPv6 via Ipv6ForwardApp, composed with MultiProtocolApp;
//  - TTL-expired packets answered with real ICMP Time Exceeded replies;
//  - the liveness layer at work: a worker thread is wedged mid-run by a
//    fault point, the heartbeat supervisor detects it, a peer adopts its
//    NIC queues, and the packet-conservation audit still balances.
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/dynamic_ipv4.hpp"
#include "apps/ipv6_forward.hpp"
#include "apps/multi_app.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"
#include "slowpath/host_stack.hpp"

int main() {
  using namespace ps;
  using namespace std::chrono_literals;
  std::printf("PacketShader full router: dual stack + live FIB + slow path\n");
  std::printf("===========================================================\n\n");

  // Control plane: an IPv4 FIB we will edit while traffic flows.
  route::Ipv4Fib fib;
  fib.announce({net::Ipv4Addr(0), 0, 1});  // default -> port 1
  fib.commit();
  apps::DynamicIpv4ForwardApp v4(fib);

  // Static IPv6 table.
  const auto rib6 = route::generate_ipv6_rib(20'000, 8, 123);
  route::Ipv6Table table6;
  table6.build(rib6);
  apps::Ipv6ForwardApp v6(table6);

  apps::MultiProtocolApp multi;
  multi.add_protocol(net::EtherType::kIpv4, &v4);
  multi.add_protocol(net::EtherType::kIpv6, &v6);

  // The machine, the host stack, the router.
  core::Testbed testbed({.topo = pcie::Topology::paper_server(), .gpu_pool_workers = 4},
                        core::RouterConfig{});
  gen::TrafficGen sink({.seed = 1});
  testbed.connect_sink(&sink);

  slowpath::HostStack host_stack(net::Ipv4Addr(192, 0, 2, 1));
  core::RouterConfig config;
  // Overload control (README "Tuning" section): keep the defaults for the
  // watermarks, budget the slow path explicitly.
  config.slowpath_admission = {.rate_pps = 50'000, .burst = 512, .queue_capacity = 2048};
  core::Router router(testbed.engine(), testbed.gpus(), multi, config);
  router.set_host_stack(&host_stack);

  // Liveness demo: the 200th worker-loop iteration parks its thread, as a
  // wedged thread would. Nobody restarts it by hand — watch the supervisor.
  fault::FaultInjector inj(/*seed=*/42);
  inj.add_rule({.point = std::string(fault::Point::kWorkerHang), .after = 200, .count = 1});
  router.set_fault_injector(&inj);

  router.start();
  std::printf("router up: %d workers + 2 masters, host stack at 192.0.2.1\n\n",
              router.num_workers());

  // Phase 1: IPv4 traffic rides the default route to port 1.
  gen::TrafficGen v4_traffic({.kind = gen::TrafficKind::kIpv4Udp, .seed = 2});
  v4_traffic.offer(testbed.ports(), 5000);
  std::this_thread::sleep_for(200ms);
  std::printf("phase 1: 5000 IPv4 packets -> port 1 saw %llu\n",
              static_cast<unsigned long long>(sink.sunk_on_port(1)));

  // Control-plane event: re-route the default to port 6, live.
  fib.announce({net::Ipv4Addr(0), 0, 6});
  fib.commit();
  v4.sync();
  std::printf("control plane: default route moved to port 6 (generation %llu)\n",
              static_cast<unsigned long long>(fib.generation()));

  v4_traffic.offer(testbed.ports(), 5000);
  std::this_thread::sleep_for(200ms);
  std::printf("phase 2: 5000 more  -> port 6 saw %llu\n\n",
              static_cast<unsigned long long>(sink.sunk_on_port(6)));

  // IPv6 alongside (dual stack through the same router), destinations
  // drawn from the table so they forward.
  gen::TrafficConfig v6cfg{.kind = gen::TrafficKind::kIpv6Udp, .frame_size = 78, .seed = 3};
  v6cfg.ipv6_dst_pool = route::sample_covered_ipv6(rib6, 4096);
  gen::TrafficGen v6_traffic(v6cfg);
  const u64 sunk_before_v6 = sink.sunk_packets();
  v6_traffic.offer(testbed.ports(), 2000);
  std::this_thread::sleep_for(200ms);
  std::printf("dual stack: 2000 IPv6 packets forwarded alongside (%llu sunk)\n",
              static_cast<unsigned long long>(sink.sunk_packets() - sunk_before_v6));

  // A dying packet: the host stack answers with ICMP.
  net::FrameSpec dying;
  dying.ttl = 1;
  testbed.port(2).receive_frame(
      net::build_udp_ipv4(dying, net::Ipv4Addr(10, 0, 0, 7), net::Ipv4Addr(20, 0, 0, 1)));
  std::this_thread::sleep_for(200ms);

  // The hang fired somewhere in the middle of all that. Report what the
  // supervisor saw before stopping.
  const auto& sup = router.supervisor();
  std::printf("\nsupervisor: %llu stall(s) detected, %llu recovered",
              static_cast<unsigned long long>(sup.stalls_detected()),
              static_cast<unsigned long long>(sup.recoveries()));
  for (const auto& ev : sup.stall_events()) {
    std::printf("  [%s silent %lld ms, queues adopted by a peer]", ev.name.c_str(),
                static_cast<long long>(
                    std::chrono::duration_cast<std::chrono::milliseconds>(ev.silent_for).count()));
  }
  std::printf("\n");

  router.stop();

  const auto stats = router.total_stats();
  std::printf("totals: %llu in, %llu out, %llu slow-path\n",
              static_cast<unsigned long long>(stats.packets_in),
              static_cast<unsigned long long>(stats.packets_out),
              static_cast<unsigned long long>(stats.slow_path));
  std::printf("host stack: %llu ICMP time-exceeded sent, %llu delivered locally\n",
              static_cast<unsigned long long>(host_stack.stats().icmp_time_exceeded),
              static_cast<unsigned long long>(host_stack.stats().delivered_locally));
  std::printf("drops by reason:");
  if (stats.dropped() == 0) std::printf(" none");
  std::printf("\n");
  for (std::size_t r = 0; r < iengine::kNumDropReasons; ++r) {
    if (stats.drops_by_reason[r] == 0) continue;
    std::printf("  %-12s %llu\n", iengine::to_string(static_cast<iengine::DropReason>(r)),
                static_cast<unsigned long long>(stats.drops_by_reason[r]));
  }

  const auto audit = router.audit();
  std::printf("conservation: rx %llu == tx %llu + drops %llu + slow-path %llu (%s)\n",
              static_cast<unsigned long long>(audit.rx),
              static_cast<unsigned long long>(audit.tx),
              static_cast<unsigned long long>(audit.dropped),
              static_cast<unsigned long long>(audit.slow_path),
              audit.balanced() ? "balanced" : "VIOLATED");
  return audit.balanced() ? 0 : 1;
}
