// IPsec VPN gateway example: ESP tunnel mode with AES-128-CTR + HMAC-SHA1,
// GPU-offloaded crypto. Shows SA configuration, encapsulation through the
// shader pipeline, verification by a standard receiver, and the CPU-vs-GPU
// throughput comparison of Figure 11(d).
#include <cstdio>

#include "apps/ipsec_gateway.hpp"
#include "core/model_driver.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"

namespace {

double run_mode(const ps::crypto::SecurityAssociation& sa, bool use_gpu, ps::u32 frame) {
  using namespace ps;
  core::TestbedConfig cfg{.topo = pcie::Topology::paper_server(), .use_gpu = use_gpu};
  core::RouterConfig rcfg{.use_gpu = use_gpu, .num_streams = use_gpu ? 2u : 1u};
  core::Testbed testbed(cfg, rcfg);
  gen::TrafficGen traffic({.frame_size = frame, .seed = 3});
  testbed.connect_sink(&traffic);
  apps::IpsecGatewayApp app(sa);
  core::ModelDriver driver(testbed, &app, rcfg);
  return driver.run(traffic, 20'000).input_gbps;
}

}  // namespace

int main() {
  using namespace ps;
  std::printf("PacketShader IPsec gateway\n==========================\n\n");

  // 1. Configure the security association (both tunnel endpoints share it).
  crypto::SaDatabase sa_db;
  auto& sa = sa_db.add(crypto::SecurityAssociation::make_test_sa(
      0xbeef, net::Ipv4Addr::parse("203.0.113.1").value(),
      net::Ipv4Addr::parse("198.51.100.1").value()));
  std::printf("SA: spi=0x%x tunnel %s -> %s, AES-128-CTR + HMAC-SHA1-96\n\n", sa.spi,
              sa.tunnel_src.to_string().c_str(), sa.tunnel_dst.to_string().c_str());

  // 2. Encapsulate one packet via the shader (GPU path) and decapsulate it
  //    as the remote gateway would.
  apps::IpsecGatewayApp app(sa);
  pcie::Topology topo = pcie::Topology::paper_server();
  gpu::GpuDevice device(0, topo, std::make_shared<gpu::SimtExecutor>(2u));
  core::GpuContext gpu{&device, {gpu::kDefaultStream}};
  app.bind_gpu(device);

  auto inner = net::build_udp_ipv4({.frame_size = 200}, net::Ipv4Addr(10, 1, 0, 5),
                                   net::Ipv4Addr(10, 2, 0, 9));
  core::ShaderJob job(4);
  job.chunk.append(inner);
  job.chunk.in_port = 0;
  app.pre_shade(job);
  core::ShaderJob* jobs[] = {&job};
  app.shade(gpu, {jobs, 1});
  app.post_shade(job);

  const auto tunnel = job.chunk.packet(0);
  std::printf("inner frame: %zu B -> tunnel frame: %zu B (ESP overhead %zu B)\n",
              inner.size(), tunnel.size(), tunnel.size() - inner.size());

  auto receiver = crypto::SecurityAssociation::make_test_sa(
      0xbeef, sa.tunnel_src, sa.tunnel_dst);
  std::vector<u8> recovered;
  const auto status = crypto::esp_decapsulate(receiver, tunnel, recovered);
  std::printf("remote gateway decapsulation: %s, inner recovered %s\n",
              crypto::to_string(status),
              std::equal(recovered.begin() + 14, recovered.end(), inner.begin() + 14)
                  ? "byte-identical"
                  : "MISMATCH");

  // Tampering must be detected.
  std::vector<u8> tampered(tunnel.begin(), tunnel.end());
  tampered[tampered.size() - 20] ^= 1;
  auto rx2 = crypto::SecurityAssociation::make_test_sa(0xbeef, sa.tunnel_src, sa.tunnel_dst);
  std::printf("tampered frame: %s\n\n",
              crypto::to_string(crypto::esp_decapsulate(rx2, tampered, recovered)));

  // 3. Throughput comparison (modeled, Figure 11(d) configuration).
  std::printf("modeled gateway input throughput:\n");
  std::printf("%8s %12s %12s\n", "size", "CPU-only", "CPU+GPU");
  for (const u32 size : {64u, 512u, 1514u}) {
    std::printf("%8u %10.1f G %10.1f G\n", size, run_mode(sa, false, size),
                run_mode(sa, true, size));
  }
  return 0;
}
