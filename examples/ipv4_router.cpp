// A full 8-port GPU-accelerated IPv4 router on the paper's server:
// RouteViews-scale table, real worker/master threads, GPU offload, live
// counters. This is the headline configuration of Figure 11(a), run
// functionally with the real multithreaded runtime.
#include <chrono>
#include <cstdio>
#include <thread>

#include "apps/ipv4_forward.hpp"
#include "core/router.hpp"
#include "core/testbed.hpp"
#include "gen/traffic.hpp"
#include "route/rib_gen.hpp"

int main() {
  using namespace ps;
  using namespace std::chrono_literals;
  std::printf("PacketShader IPv4 router (8 ports, 2 GPUs, worker/master threads)\n");
  std::printf("=================================================================\n\n");

  // RouteViews-scale synthetic RIB (282,797 prefixes).
  std::printf("building forwarding table...\n");
  const auto rib = route::generate_ipv4_rib({});
  route::Ipv4Table table;
  table.build(rib);
  std::printf("  %zu prefixes, %zu >24-bit overflow chunks\n\n", table.prefix_count(),
              table.overflow_chunks());

  core::TestbedConfig config;
  config.topo = pcie::Topology::paper_server();
  config.gpu_pool_workers = 4;  // real host parallelism for the SIMT executor
  core::Testbed testbed(config, core::RouterConfig{});

  gen::TrafficConfig tcfg{.frame_size = 64, .seed = 99};
  tcfg.ipv4_dst_pool = route::sample_covered_ipv4(rib, 65536);
  gen::TrafficGen traffic(tcfg);
  testbed.connect_sink(&traffic);

  apps::Ipv4ForwardApp app(table);
  core::RouterConfig router_config;
  router_config.pipeline_depth = 4;
  router_config.gather_max = 8;
  core::Router router(testbed.engine(), testbed.gpus(), app, router_config);

  std::printf("starting %d workers + 2 masters...\n", router.num_workers());
  router.start();

  // Offer traffic in bursts and print live counters.
  const u64 burst = 20'000;
  for (int round = 1; round <= 5; ++round) {
    traffic.offer(testbed.ports(), burst);
    std::this_thread::sleep_for(100ms);
    const auto stats = router.total_stats();
    std::printf("  round %d: in=%llu out=%llu gpu=%llu drop=%llu slow=%llu\n", round,
                static_cast<unsigned long long>(stats.packets_in),
                static_cast<unsigned long long>(stats.packets_out),
                static_cast<unsigned long long>(stats.gpu_processed),
                static_cast<unsigned long long>(stats.dropped()),
                static_cast<unsigned long long>(stats.slow_path));
  }

  // Drain and stop.
  std::this_thread::sleep_for(300ms);
  router.stop();

  const auto stats = router.total_stats();
  std::printf("\nfinal: %llu in, %llu out, %llu via GPU\n",
              static_cast<unsigned long long>(stats.packets_in),
              static_cast<unsigned long long>(stats.packets_out),
              static_cast<unsigned long long>(stats.gpu_processed));
  if (stats.dropped() > 0) {
    std::printf("drops by reason:\n");
    for (std::size_t r = 0; r < iengine::kNumDropReasons; ++r) {
      if (stats.drops_by_reason[r] == 0) continue;
      std::printf("  %-12s %llu\n", iengine::to_string(static_cast<iengine::DropReason>(r)),
                  static_cast<unsigned long long>(stats.drops_by_reason[r]));
    }
  }
  std::printf("per-port egress distribution (next hops spread over 8 ports):\n");
  for (int p = 0; p < 8; ++p) {
    std::printf("  port %d: %llu\n", p,
                static_cast<unsigned long long>(traffic.sunk_on_port(p)));
  }
  return 0;
}
