#include "fault/fault_injector.hpp"

namespace ps::fault {

FaultInjector::PointState& FaultInjector::state_for(std::string_view point) {
  auto it = points_.find(std::string(point));
  if (it == points_.end()) {
    it = points_.emplace(std::string(point), PointState{}).first;
    // Bind existing rules that name this point.
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      if (rules_[r].point == it->first) it->second.rules.push_back(r);
    }
  }
  return it->second;
}

void FaultInjector::add_rule(FaultRule rule) {
  MutexLock lock(mu_);
  const std::size_t index = rules_.size();
  rules_.push_back(std::move(rule));
  // Bind to the point if it is already registered; otherwise state_for()
  // will pick the rule up on first hit.
  const auto it = points_.find(rules_.back().point);
  if (it != points_.end()) it->second.rules.push_back(index);
}

void FaultInjector::register_point(std::string_view point) {
  MutexLock lock(mu_);
  state_for(point);
}

bool FaultInjector::should_fire(std::string_view point) {
  MutexLock lock(mu_);
  PointState& st = state_for(point);
  const u64 hit = st.stats.hits++;  // this hit's zero-based index

  for (const std::size_t r : st.rules) {
    const FaultRule& rule = rules_[r];
    if (hit < rule.after) continue;
    if (hit - rule.after >= rule.count) continue;
    if (rule.probability < 1.0 && !rng_.next_bool(rule.probability)) continue;
    ++st.stats.fired;
    if (record_firings_) firings_.push_back(Firing{std::string(point), hit});
    return true;
  }
  return false;
}

void FaultInjector::set_record_firings(bool record) {
  MutexLock lock(mu_);
  record_firings_ = record;
}

std::vector<Firing> FaultInjector::firings() const {
  MutexLock lock(mu_);
  return firings_;
}

PointStats FaultInjector::stats(std::string_view point) const {
  MutexLock lock(mu_);
  const auto it = points_.find(std::string(point));
  return it == points_.end() ? PointStats{} : it->second.stats;
}

u64 FaultInjector::total_fired() const {
  MutexLock lock(mu_);
  u64 total = 0;
  for (const auto& [name, st] : points_) total += st.stats.fired;
  return total;
}

void FaultInjector::reset() {
  MutexLock lock(mu_);
  rules_.clear();
  firings_.clear();
  for (auto& [name, st] : points_) st = PointState{};
}

}  // namespace ps::fault
