// Deterministic fault injection (chaos harness) for the whole pipeline.
//
// Each layer registers named injection points ("gpu.launch",
// "nic.rx_ring_full", ...) and asks `should_fire(point)` on the hot path.
// Faults are scheduled as rules over the point's own hit counter — "arm
// after N hits, fire for the next M, with probability p" — so a fault
// schedule is reproducible run-to-run regardless of wall-clock timing:
// the k-th kernel launch fails, not "the launch around t=2ms".
//
// A null injector (the default everywhere) costs one pointer test per
// point, so production paths pay nothing when chaos is off.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps::fault {

/// Well-known fault-point names. Layers may also mint ad-hoc names (e.g.
/// per-port variants suffix the port id: "nic.link_flap.3"); the ones
/// threaded through recovery machinery live here so call sites and chaos
/// tests cannot drift apart.
struct Point {
  /// A worker thread wedges (stops beating) until the supervisor's
  /// recovery kicks it. Evaluated once per worker-loop iteration, right
  /// after the heartbeat.
  static constexpr std::string_view kWorkerHang = "core.worker_hang";
  /// A master thread parks between shading batches until re-kicked.
  static constexpr std::string_view kMasterHang = "core.master_hang";
  /// Per-port carrier loss window, prefix only: the port appends its id
  /// ("nic.link_flap.<port>"). While the window is active the link is
  /// down — RX frames are lost on the wire, TX is rejected — and the
  /// first activity past the window restores the carrier.
  static constexpr std::string_view kLinkFlap = "nic.link_flap";
  /// Master input-queue overflow (worker falls back to CPU shading).
  static constexpr std::string_view kMasterQueue = "core.master_queue";
  /// FIB updater cannot allocate its standby buffer: the commit attempt
  /// fails before anything is mutated and the batch stays queued.
  static constexpr std::string_view kFibUpdateAllocFail = "control.fib_update.alloc_fail";
  /// FIB updater dies partway through applying a batch: the half-mutated
  /// standby buffer is discarded, the batch re-queued — the published
  /// generation must be untouched. Evaluated once per op in the batch.
  static constexpr std::string_view kFibUpdateCrashMidBatch = "control.fib_update.crash_mid_batch";
  /// FIB updater thread wedges (stops beating) until the supervisor's
  /// recovery kicks it. Evaluated once per updater-loop iteration.
  static constexpr std::string_view kFibUpdateStall = "control.fib_update.stall";
  /// Silent bit flip in a huge-buffer cell after the RX DMA completed:
  /// descriptor status stays ok, only the integrity layer's wire-CRC check
  /// at RX admission can see it. Evaluated once per received frame.
  static constexpr std::string_view kMemBitflip = "mem.bitflip";
  /// PCIe transfer error on the host-to-device copy of a shading batch:
  /// one bit flips in the device buffer, the copy still reports kOk. The
  /// GPU then computes correct-looking results over wrong inputs —
  /// invisible to any byte check, caught by shadow verification.
  static constexpr std::string_view kPcieH2dCorrupt = "pcie.h2d_corrupt";
  /// PCIe transfer error on the device-to-host copy of shading results:
  /// one bit flips in the host destination, status kOk. Caught by shadow
  /// verification (and by post-shade byte checks when results alter bytes).
  static constexpr std::string_view kPcieD2hCorrupt = "pcie.d2h_corrupt";
  /// GPU miscomputation: the kernel completes "successfully" but one
  /// output value is wrong. Surfaces on the next D2H of results; only
  /// shadow verification against the CPU path can detect it.
  static constexpr std::string_view kGpuBadResult = "gpu.bad_result";
};

/// One scheduled fault window on a named injection point.
struct FaultRule {
  std::string point;
  /// Arm after this many hits of the point (0 = from the first hit).
  u64 after = 0;
  /// Stay armed for this many hits once armed (window length).
  u64 count = ~0ull;
  /// Chance each hit inside the window actually fires.
  double probability = 1.0;
};

/// Per-point counters, for assertions in chaos tests.
struct PointStats {
  u64 hits = 0;   // times the point was evaluated
  u64 fired = 0;  // times a fault was injected
};

/// One recorded fault firing: which point fired, on which zero-based hit
/// of that point. The full sequence (in global firing order) is the
/// reproducibility contract chaos tests pin down: same seed + same offered
/// traffic => identical firing sequence.
struct Firing {
  std::string point;
  u64 hit = 0;

  bool operator==(const Firing&) const = default;
};

class FaultInjector {
 public:
  explicit FaultInjector(u64 seed = 1) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule a fault. Rules accumulate; several rules may cover one point.
  void add_rule(FaultRule rule);

  /// Pre-register a point so it shows up in stats() with zero hits.
  /// should_fire() auto-registers, so this is optional.
  void register_point(std::string_view point);

  /// Hot-path check: counts a hit on `point` and reports whether a fault
  /// fires on this hit. Thread-safe; per-point hit order decides firing.
  bool should_fire(std::string_view point);

  PointStats stats(std::string_view point) const;
  u64 total_fired() const;

  /// Record every firing (point name + hit index, in firing order) for
  /// replay-determinism assertions. Off by default: recording grows a
  /// vector per firing, so it is for tests, not production chaos runs.
  void set_record_firings(bool record);
  std::vector<Firing> firings() const;

  /// Drop all rules, counters, and recorded firings (keeps registered
  /// point names and the recording flag; the RNG is *not* reseeded).
  void reset();

 private:
  struct PointState {
    PointStats stats;
    std::vector<std::size_t> rules;  // indices into rules_
  };

  PointState& state_for(std::string_view point) REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  std::unordered_map<std::string, PointState> points_ GUARDED_BY(mu_);
  Rng rng_ GUARDED_BY(mu_);  // probability draws are serialized with hits
  bool record_firings_ GUARDED_BY(mu_) = false;
  std::vector<Firing> firings_ GUARDED_BY(mu_);
};

}  // namespace ps::fault
