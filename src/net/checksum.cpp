#include "net/checksum.hpp"

#include <cstring>

namespace ps::net {

u32 checksum_partial(std::span<const u8> data, u32 initial) {
  u64 sum = initial;
  const u8* p = data.data();
  std::size_t n = data.size();

  // Sum 16-bit big-endian words; a trailing odd byte is padded with zero.
  while (n >= 2) {
    sum += load_be16(p);
    p += 2;
    n -= 2;
  }
  if (n == 1) sum += static_cast<u32>(*p) << 8;

  while (sum >> 32) sum = (sum & 0xffffffff) + (sum >> 32);
  return static_cast<u32>(sum);
}

u16 checksum_finish(u32 partial) {
  u32 sum = partial;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(~sum & 0xffff);
}

u16 checksum(std::span<const u8> data) { return checksum_finish(checksum_partial(data)); }

void ipv4_fill_checksum(Ipv4Header& h) {
  h.set_checksum(0);
  const auto* bytes = reinterpret_cast<const u8*>(&h);
  h.set_checksum(checksum({bytes, h.header_bytes()}));
}

bool ipv4_checksum_ok(const Ipv4Header& h) {
  const auto* bytes = reinterpret_cast<const u8*>(&h);
  // Summing the header including the stored checksum must fold to 0xffff.
  return checksum_finish(checksum_partial({bytes, h.header_bytes()})) == 0;
}

u16 checksum_update16(u16 old_checksum, u16 old_value, u16 new_value) {
  // RFC 1624 eqn. 3: HC' = ~(~HC + ~m + m')
  u32 sum = static_cast<u16>(~old_checksum);
  sum += static_cast<u16>(~old_value);
  sum += new_value;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<u16>(~sum & 0xffff);
}

void ipv4_decrement_ttl(Ipv4Header& h) {
  // TTL and protocol share a 16-bit checksum word: old = (ttl<<8)|proto.
  const u16 old_word = static_cast<u16>((u16{h.ttl} << 8) | h.protocol);
  h.ttl -= 1;
  const u16 new_word = static_cast<u16>((u16{h.ttl} << 8) | h.protocol);
  h.set_checksum(checksum_update16(h.checksum(), old_word, new_word));
}

u16 l4_checksum_ipv6(const Ipv6Header& ip, std::span<const u8> l4) {
  u8 pseudo[40];
  std::memcpy(pseudo, ip.src_bytes, 16);
  std::memcpy(pseudo + 16, ip.dst_bytes, 16);
  store_be32(pseudo + 32, static_cast<u32>(l4.size()));
  pseudo[36] = pseudo[37] = pseudo[38] = 0;
  pseudo[39] = ip.next_header;
  const u32 partial = checksum_partial({pseudo, sizeof(pseudo)});
  return checksum_finish(checksum_partial(l4, partial));
}

void udp6_fill_checksum(const Ipv6Header& ip, std::span<u8> l4) {
  auto& udp = *reinterpret_cast<UdpHeader*>(l4.data());
  udp.set_checksum(0);
  u16 sum = l4_checksum_ipv6(ip, l4);
  if (sum == 0) sum = 0xffff;  // computed 0 transmits as all-ones (RFC 768)
  udp.set_checksum(sum);
}

bool udp6_checksum_ok(const Ipv6Header& ip, std::span<const u8> l4) {
  if (l4.size() < sizeof(UdpHeader)) return false;
  const auto& udp = *reinterpret_cast<const UdpHeader*>(l4.data());
  if (udp.checksum() == 0) return false;  // mandatory for IPv6 (RFC 8200 §8.1)
  // Summing the span including the stored checksum must fold to 0xffff.
  u8 pseudo[40];
  std::memcpy(pseudo, ip.src_bytes, 16);
  std::memcpy(pseudo + 16, ip.dst_bytes, 16);
  store_be32(pseudo + 32, static_cast<u32>(l4.size()));
  pseudo[36] = pseudo[37] = pseudo[38] = 0;
  pseudo[39] = ip.next_header;
  const u32 partial = checksum_partial({pseudo, sizeof(pseudo)});
  return checksum_finish(checksum_partial(l4, partial)) == 0;
}

u16 l4_checksum_ipv4(const Ipv4Header& ip, std::span<const u8> l4) {
  u8 pseudo[12];
  store_be32(pseudo, ip.src().value);
  store_be32(pseudo + 4, ip.dst().value);
  pseudo[8] = 0;
  pseudo[9] = ip.protocol;
  store_be16(pseudo + 10, static_cast<u16>(l4.size()));
  const u32 partial = checksum_partial({pseudo, sizeof(pseudo)});
  return checksum_finish(checksum_partial(l4, partial));
}

}  // namespace ps::net
