// RFC 1071 Internet checksum plus the RFC 1624 incremental update used for
// TTL decrement on the forwarding fast path.
#pragma once

#include <span>

#include "common/types.hpp"
#include "net/headers.hpp"

namespace ps::net {

/// One's-complement sum of a byte range (not yet folded/inverted).
u32 checksum_partial(std::span<const u8> data, u32 initial = 0);

/// Fold a partial sum and invert: the final checksum field value.
u16 checksum_finish(u32 partial);

/// Full checksum of a byte range.
u16 checksum(std::span<const u8> data);

/// Compute and install the IPv4 header checksum.
void ipv4_fill_checksum(Ipv4Header& h);

/// True when the stored IPv4 header checksum verifies.
bool ipv4_checksum_ok(const Ipv4Header& h);

/// RFC 1624 incremental checksum update for a 16-bit field change.
u16 checksum_update16(u16 old_checksum, u16 old_value, u16 new_value);

/// Decrement TTL and incrementally patch the checksum — the per-packet
/// rewrite the pre-shading step performs for IPv4 forwarding (section 6.2.1).
void ipv4_decrement_ttl(Ipv4Header& h);

/// UDP/TCP checksum over an IPv4 pseudo header. `l4` spans the transport
/// header plus payload.
u16 l4_checksum_ipv4(const Ipv4Header& ip, std::span<const u8> l4);

/// UDP/TCP checksum over an IPv6 pseudo header (RFC 8200 §8.1: 16-byte
/// src + dst, 32-bit upper-layer length, 3 zero bytes, next header).
/// `l4` spans the transport header plus payload; its size is used as the
/// pseudo-header length. The checksum field's stored bytes are summed
/// as-is — zero it before computing a fresh value.
u16 l4_checksum_ipv6(const Ipv6Header& ip, std::span<const u8> l4);

/// Compute and install the UDP checksum of an IPv6|UDP transport span
/// (`l4` starts at the UDP header). A computed 0 is stored as 0xffff —
/// on the wire 0 means "no checksum", which IPv6 forbids for UDP.
void udp6_fill_checksum(const Ipv6Header& ip, std::span<u8> l4);

/// True when the stored IPv6 UDP checksum verifies. An all-zero stored
/// checksum fails: IPv6 makes the UDP checksum mandatory.
bool udp6_checksum_ok(const Ipv6Header& ip, std::span<const u8> l4);

}  // namespace ps::net
