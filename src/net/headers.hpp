// Wire-format protocol headers.
//
// Each struct mirrors the on-the-wire layout byte for byte; multi-byte
// fields are stored as raw big-endian bytes and accessed through typed
// getters/setters, so the structs can be memcpy'd / reinterpreted over
// packet buffers safely on any host.
#pragma once

#include <cstring>
#include <type_traits>

#include "common/endian.hpp"
#include "common/types.hpp"
#include "net/addr.hpp"

namespace ps::net {

enum class EtherType : u16 {
  kIpv4 = 0x0800,
  kArp = 0x0806,
  kVlan = 0x8100,
  kIpv6 = 0x86dd,
};

enum class IpProto : u8 {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kIpv6Icmp = 58,
  kEsp = 50,
};

#pragma pack(push, 1)

struct EthernetHeader {
  u8 dst[6];
  u8 src[6];
  u8 ethertype_be[2];

  MacAddr dst_mac() const {
    MacAddr m;
    std::memcpy(m.bytes.data(), dst, 6);
    return m;
  }
  MacAddr src_mac() const {
    MacAddr m;
    std::memcpy(m.bytes.data(), src, 6);
    return m;
  }
  void set_dst(const MacAddr& m) { std::memcpy(dst, m.bytes.data(), 6); }
  void set_src(const MacAddr& m) { std::memcpy(src, m.bytes.data(), 6); }

  EtherType ethertype() const { return static_cast<EtherType>(load_be16(ethertype_be)); }
  void set_ethertype(EtherType t) { store_be16(ethertype_be, static_cast<u16>(t)); }
};
static_assert(sizeof(EthernetHeader) == 14);

struct Ipv4Header {
  u8 version_ihl;    // version (4 bits) + header length in 32-bit words
  u8 dscp_ecn;
  u8 total_length_be[2];
  u8 identification_be[2];
  u8 flags_fragment_be[2];
  u8 ttl;
  u8 protocol;
  u8 checksum_be[2];
  u8 src_be[4];
  u8 dst_be[4];

  u8 version() const { return version_ihl >> 4; }
  u8 ihl() const { return version_ihl & 0x0f; }
  u32 header_bytes() const { return u32{ihl()} * 4; }
  void set_version_ihl(u8 version, u8 words) {
    version_ihl = static_cast<u8>((version << 4) | (words & 0x0f));
  }

  u16 total_length() const { return load_be16(total_length_be); }
  void set_total_length(u16 v) { store_be16(total_length_be, v); }

  u16 identification() const { return load_be16(identification_be); }
  void set_identification(u16 v) { store_be16(identification_be, v); }

  u16 checksum() const { return load_be16(checksum_be); }
  void set_checksum(u16 v) { store_be16(checksum_be, v); }

  IpProto proto() const { return static_cast<IpProto>(protocol); }
  void set_proto(IpProto p) { protocol = static_cast<u8>(p); }

  Ipv4Addr src() const { return Ipv4Addr(load_be32(src_be)); }
  Ipv4Addr dst() const { return Ipv4Addr(load_be32(dst_be)); }
  void set_src(Ipv4Addr a) { store_be32(src_be, a.value); }
  void set_dst(Ipv4Addr a) { store_be32(dst_be, a.value); }
};
static_assert(sizeof(Ipv4Header) == 20);

struct Ipv6Header {
  u8 version_class_flow_be[4];  // version (4) + traffic class (8) + flow (20)
  u8 payload_length_be[2];
  u8 next_header;
  u8 hop_limit;
  u8 src_bytes[16];
  u8 dst_bytes[16];

  u8 version() const { return version_class_flow_be[0] >> 4; }
  void set_version_class_flow(u8 traffic_class, u32 flow_label) {
    const u32 word = (u32{6} << 28) | (u32{traffic_class} << 20) | (flow_label & 0xfffff);
    store_be32(version_class_flow_be, word);
  }

  u16 payload_length() const { return load_be16(payload_length_be); }
  void set_payload_length(u16 v) { store_be16(payload_length_be, v); }

  IpProto proto() const { return static_cast<IpProto>(next_header); }
  void set_proto(IpProto p) { next_header = static_cast<u8>(p); }

  Ipv6Addr src() const {
    Ipv6Addr a;
    std::memcpy(a.bytes.data(), src_bytes, 16);
    return a;
  }
  Ipv6Addr dst() const {
    Ipv6Addr a;
    std::memcpy(a.bytes.data(), dst_bytes, 16);
    return a;
  }
  void set_src(const Ipv6Addr& a) { std::memcpy(src_bytes, a.bytes.data(), 16); }
  void set_dst(const Ipv6Addr& a) { std::memcpy(dst_bytes, a.bytes.data(), 16); }
};
static_assert(sizeof(Ipv6Header) == 40);

struct UdpHeader {
  u8 src_port_be[2];
  u8 dst_port_be[2];
  u8 length_be[2];
  u8 checksum_be[2];

  u16 src_port() const { return load_be16(src_port_be); }
  u16 dst_port() const { return load_be16(dst_port_be); }
  u16 length() const { return load_be16(length_be); }
  u16 checksum() const { return load_be16(checksum_be); }
  void set_src_port(u16 v) { store_be16(src_port_be, v); }
  void set_dst_port(u16 v) { store_be16(dst_port_be, v); }
  void set_length(u16 v) { store_be16(length_be, v); }
  void set_checksum(u16 v) { store_be16(checksum_be, v); }
};
static_assert(sizeof(UdpHeader) == 8);

struct TcpHeader {
  u8 src_port_be[2];
  u8 dst_port_be[2];
  u8 seq_be[4];
  u8 ack_be[4];
  u8 data_offset_flags_be[2];
  u8 window_be[2];
  u8 checksum_be[2];
  u8 urgent_be[2];

  u16 src_port() const { return load_be16(src_port_be); }
  u16 dst_port() const { return load_be16(dst_port_be); }
  u32 seq() const { return load_be32(seq_be); }
  u32 ack() const { return load_be32(ack_be); }
  u8 data_offset_words() const { return static_cast<u8>(load_be16(data_offset_flags_be) >> 12); }
  u16 flags() const { return load_be16(data_offset_flags_be) & 0x01ff; }
  void set_src_port(u16 v) { store_be16(src_port_be, v); }
  void set_dst_port(u16 v) { store_be16(dst_port_be, v); }
  void set_seq(u32 v) { store_be32(seq_be, v); }
  void set_ack(u32 v) { store_be32(ack_be, v); }
  void set_data_offset_flags(u8 words, u16 flags) {
    store_be16(data_offset_flags_be, static_cast<u16>((u16{words} << 12) | (flags & 0x01ff)));
  }
  void set_window(u16 v) { store_be16(window_be, v); }
  void set_checksum(u16 v) { store_be16(checksum_be, v); }
};
static_assert(sizeof(TcpHeader) == 20);

struct IcmpHeader {
  u8 type;
  u8 code;
  u8 checksum_be[2];
  u8 rest_be[4];

  u16 checksum() const { return load_be16(checksum_be); }
  void set_checksum(u16 v) { store_be16(checksum_be, v); }
};
static_assert(sizeof(IcmpHeader) == 8);

/// RFC 4303 Encapsulating Security Payload header (tunnel mode, section
/// 6.2.4 of the paper).
struct EspHeader {
  u8 spi_be[4];
  u8 sequence_be[4];

  u32 spi() const { return load_be32(spi_be); }
  u32 sequence() const { return load_be32(sequence_be); }
  void set_spi(u32 v) { store_be32(spi_be, v); }
  void set_sequence(u32 v) { store_be32(sequence_be, v); }
};
static_assert(sizeof(EspHeader) == 8);

/// ESP trailer fields that precede the authentication tag.
struct EspTrailer {
  u8 pad_length;
  u8 next_header;
};
static_assert(sizeof(EspTrailer) == 2);

#pragma pack(pop)

static_assert(std::is_trivially_copyable_v<EthernetHeader>);
static_assert(std::is_trivially_copyable_v<Ipv4Header>);
static_assert(std::is_trivially_copyable_v<Ipv6Header>);

/// Frame-size constants as the paper uses them: packet sizes sweep from
/// 64 B to 1514 B and every Gbps figure adds the 24 B wire overhead on top.
inline constexpr u32 kMinFrameSize = 64;
inline constexpr u32 kMaxFrameSize = 1514;

}  // namespace ps::net
