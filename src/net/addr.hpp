// Network address value types: MAC, IPv4, IPv6.
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <functional>
#include <optional>
#include <string>

#include "common/endian.hpp"
#include "common/types.hpp"

namespace ps::net {

/// 48-bit Ethernet MAC address.
struct MacAddr {
  std::array<u8, 6> bytes{};

  static constexpr MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// Deterministic per-port address used by the simulated NICs.
  static constexpr MacAddr for_port(u32 port) {
    return MacAddr{{0x02, 0x50, 0x53, 0x00,  // locally administered, "PS"
                    static_cast<u8>(port >> 8), static_cast<u8>(port)}};
  }

  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (bytes[0] & 0x01) != 0; }

  std::string to_string() const;

  auto operator<=>(const MacAddr&) const = default;
};

/// IPv4 address held in host byte order (so prefix arithmetic is plain
/// integer arithmetic); converted to network order only at the wire.
struct Ipv4Addr {
  u32 value = 0;  // host order

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(u32 host_order) : value(host_order) {}
  constexpr Ipv4Addr(u8 a, u8 b, u8 c, u8 d)
      : value((u32{a} << 24) | (u32{b} << 16) | (u32{c} << 8) | u32{d}) {}

  static std::optional<Ipv4Addr> parse(const std::string& dotted);
  std::string to_string() const;

  auto operator<=>(const Ipv4Addr&) const = default;
};

/// 128-bit IPv6 address, stored as big-endian bytes (wire layout).
struct Ipv6Addr {
  std::array<u8, 16> bytes{};

  /// Most-significant 64 bits as a host-order integer (the lookup
  /// algorithms operate on the top 64 bits, as real tables rarely hold
  /// prefixes longer than /64).
  u64 hi64() const { return load_be64(bytes.data()); }
  u64 lo64() const { return load_be64(bytes.data() + 8); }

  static Ipv6Addr from_words(u64 hi, u64 lo) {
    Ipv6Addr a;
    store_be64(a.bytes.data(), hi);
    store_be64(a.bytes.data() + 8, lo);
    return a;
  }

  std::string to_string() const;

  auto operator<=>(const Ipv6Addr&) const = default;
};

}  // namespace ps::net

template <>
struct std::hash<ps::net::Ipv4Addr> {
  std::size_t operator()(const ps::net::Ipv4Addr& a) const noexcept {
    return std::hash<ps::u32>{}(a.value);
  }
};

template <>
struct std::hash<ps::net::Ipv6Addr> {
  std::size_t operator()(const ps::net::Ipv6Addr& a) const noexcept {
    return std::hash<ps::u64>{}(a.hi64() * 0x9e3779b97f4a7c15ULL ^ a.lo64());
  }
};
