#include "net/addr.hpp"

#include <cstdio>

namespace ps::net {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1], bytes[2],
                bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& dotted) {
  unsigned a, b, c, d;
  char trailing;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Ipv4Addr(static_cast<u8>(a), static_cast<u8>(b), static_cast<u8>(c), static_cast<u8>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::string Ipv6Addr::to_string() const {
  // Simple full-form representation (no :: compression); unambiguous and
  // sufficient for logs and tests.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x:%02x%02x",
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
                bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14],
                bytes[15]);
  return buf;
}

}  // namespace ps::net
