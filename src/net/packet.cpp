#include "net/packet.hpp"

#include <cassert>

namespace ps::net {

const char* to_string(ParseStatus s) {
  switch (s) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kTruncated: return "truncated";
    case ParseStatus::kBadVersion: return "bad-version";
    case ParseStatus::kBadHeaderLen: return "bad-header-len";
    case ParseStatus::kBadChecksum: return "bad-checksum";
    case ParseStatus::kUnsupported: return "unsupported";
  }
  return "?";
}

ParseStatus parse_packet(u8* data, u32 length, PacketView& out) {
  out = PacketView{};
  out.data = data;
  out.length = length;

  if (length < sizeof(EthernetHeader)) return ParseStatus::kTruncated;
  const auto& eth = *reinterpret_cast<const EthernetHeader*>(data);
  out.ether_type = eth.ethertype();
  out.l3_offset = sizeof(EthernetHeader);

  switch (out.ether_type) {
    case EtherType::kIpv4: {
      if (length < out.l3_offset + sizeof(Ipv4Header)) return ParseStatus::kTruncated;
      const auto& ip = *reinterpret_cast<const Ipv4Header*>(data + out.l3_offset);
      if (ip.version() != 4) return ParseStatus::kBadVersion;
      if (ip.ihl() < 5) return ParseStatus::kBadHeaderLen;
      if (length < out.l3_offset + ip.header_bytes()) return ParseStatus::kBadHeaderLen;
      if (ip.total_length() < ip.header_bytes() ||
          length < out.l3_offset + ip.total_length()) {
        return ParseStatus::kTruncated;
      }
      if (!ipv4_checksum_ok(ip)) return ParseStatus::kBadChecksum;
      out.ip_proto = ip.proto();
      out.l4_offset = static_cast<u16>(out.l3_offset + ip.header_bytes());
      out.has_l4 = (out.ip_proto == IpProto::kUdp && ip.total_length() >= ip.header_bytes() + sizeof(UdpHeader)) ||
                   (out.ip_proto == IpProto::kTcp && ip.total_length() >= ip.header_bytes() + sizeof(TcpHeader)) ||
                   (out.ip_proto == IpProto::kEsp && ip.total_length() >= ip.header_bytes() + sizeof(EspHeader));
      return ParseStatus::kOk;
    }
    case EtherType::kIpv6: {
      if (length < out.l3_offset + sizeof(Ipv6Header)) return ParseStatus::kTruncated;
      const auto& ip = *reinterpret_cast<const Ipv6Header*>(data + out.l3_offset);
      if (ip.version() != 6) return ParseStatus::kBadVersion;
      if (length < out.l3_offset + sizeof(Ipv6Header) + ip.payload_length()) {
        return ParseStatus::kTruncated;
      }
      out.ip_proto = ip.proto();
      out.l4_offset = static_cast<u16>(out.l3_offset + sizeof(Ipv6Header));
      out.has_l4 = (out.ip_proto == IpProto::kUdp && ip.payload_length() >= sizeof(UdpHeader)) ||
                   (out.ip_proto == IpProto::kTcp && ip.payload_length() >= sizeof(TcpHeader)) ||
                   (out.ip_proto == IpProto::kEsp && ip.payload_length() >= sizeof(EspHeader));
      if (out.ip_proto == IpProto::kUdp && out.has_l4 &&
          !udp6_checksum_ok(ip, {data + out.l4_offset, ip.payload_length()})) {
        return ParseStatus::kBadChecksum;  // mandatory for IPv6, unlike IPv4 UDP
      }
      return ParseStatus::kOk;
    }
    default:
      return ParseStatus::kUnsupported;
  }
}

FrameBuffer build_udp_ipv4(const FrameSpec& spec, Ipv4Addr src, Ipv4Addr dst) {
  FrameBuffer frame;
  build_udp_ipv4_into(frame, spec, src, dst);
  return frame;
}

void build_udp_ipv4_into(FrameBuffer& frame, const FrameSpec& spec, Ipv4Addr src,
                         Ipv4Addr dst) {
  const u32 size = std::max(spec.frame_size, kMinUdpIpv4Frame);
  frame.assign(size, 0);

  auto& eth = *reinterpret_cast<EthernetHeader*>(frame.data());
  eth.set_dst(spec.dst_mac);
  eth.set_src(spec.src_mac);
  eth.set_ethertype(EtherType::kIpv4);

  auto& ip = *reinterpret_cast<Ipv4Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_version_ihl(4, 5);
  ip.dscp_ecn = 0;
  ip.set_total_length(static_cast<u16>(size - sizeof(EthernetHeader)));
  ip.set_identification(0);
  store_be16(ip.flags_fragment_be, 0x4000);  // DF
  ip.ttl = spec.ttl;
  ip.set_proto(IpProto::kUdp);
  ip.set_src(src);
  ip.set_dst(dst);
  ipv4_fill_checksum(ip);

  auto& udp = *reinterpret_cast<UdpHeader*>(frame.data() + sizeof(EthernetHeader) + sizeof(Ipv4Header));
  udp.set_src_port(spec.src_port);
  udp.set_dst_port(spec.dst_port);
  udp.set_length(static_cast<u16>(size - sizeof(EthernetHeader) - sizeof(Ipv4Header)));
  udp.set_checksum(0);  // optional for IPv4; generator leaves it zero
}

FrameBuffer build_udp_ipv6(const FrameSpec& spec, const Ipv6Addr& src, const Ipv6Addr& dst) {
  FrameBuffer frame;
  build_udp_ipv6_into(frame, spec, src, dst);
  return frame;
}

void build_udp_ipv6_into(FrameBuffer& frame, const FrameSpec& spec, const Ipv6Addr& src,
                         const Ipv6Addr& dst) {
  const u32 size = std::max(spec.frame_size, kMinUdpIpv6Frame);
  frame.assign(size, 0);

  auto& eth = *reinterpret_cast<EthernetHeader*>(frame.data());
  eth.set_dst(spec.dst_mac);
  eth.set_src(spec.src_mac);
  eth.set_ethertype(EtherType::kIpv6);

  auto& ip = *reinterpret_cast<Ipv6Header*>(frame.data() + sizeof(EthernetHeader));
  ip.set_version_class_flow(0, 0);
  ip.set_payload_length(static_cast<u16>(size - sizeof(EthernetHeader) - sizeof(Ipv6Header)));
  ip.set_proto(IpProto::kUdp);
  ip.hop_limit = spec.ttl;
  ip.set_src(src);
  ip.set_dst(dst);

  auto& udp = *reinterpret_cast<UdpHeader*>(frame.data() + sizeof(EthernetHeader) + sizeof(Ipv6Header));
  udp.set_src_port(spec.src_port);
  udp.set_dst_port(spec.dst_port);
  udp.set_length(static_cast<u16>(size - sizeof(EthernetHeader) - sizeof(Ipv6Header)));
  udp6_fill_checksum(ip, {frame.data() + sizeof(EthernetHeader) + sizeof(Ipv6Header),
                          ip.payload_length()});
}

}  // namespace ps::net
