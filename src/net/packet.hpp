// Packet views, parsing, and frame construction.
//
// A packet in PacketShader is a contiguous byte range inside a huge-buffer
// cell (kernel side) or the chunk's user buffer (application side); nothing
// here owns memory. `FrameBuffer` is the owning convenience type used by
// the traffic generator and tests.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/addr.hpp"
#include "net/checksum.hpp"
#include "net/headers.hpp"

namespace ps::net {

using FrameBuffer = std::vector<u8>;

enum class ParseStatus : u8 {
  kOk = 0,
  kTruncated,       // frame shorter than its headers claim
  kBadVersion,      // IP version field inconsistent with ethertype
  kBadHeaderLen,    // IPv4 IHL < 5 or beyond frame
  kBadChecksum,     // IPv4 header checksum failed
  kUnsupported,     // non-IP ethertype
};

const char* to_string(ParseStatus s);

/// Zero-copy view of a parsed frame. Offsets are from the frame start.
struct PacketView {
  u8* data = nullptr;
  u32 length = 0;

  u16 l3_offset = 0;
  u16 l4_offset = 0;
  EtherType ether_type{};
  IpProto ip_proto{};
  bool has_l4 = false;

  EthernetHeader& eth() const { return *reinterpret_cast<EthernetHeader*>(data); }
  Ipv4Header& ipv4() const { return *reinterpret_cast<Ipv4Header*>(data + l3_offset); }
  Ipv6Header& ipv6() const { return *reinterpret_cast<Ipv6Header*>(data + l3_offset); }
  UdpHeader& udp() const { return *reinterpret_cast<UdpHeader*>(data + l4_offset); }
  TcpHeader& tcp() const { return *reinterpret_cast<TcpHeader*>(data + l4_offset); }

  std::span<u8> bytes() const { return {data, length}; }
  std::span<u8> l3_bytes() const { return {data + l3_offset, length - l3_offset}; }
  std::span<u8> l4_bytes() const {
    return has_l4 ? std::span<u8>{data + l4_offset, length - l4_offset} : std::span<u8>{};
  }
};

/// Parse and validate an Ethernet frame in place. On success fills `out`
/// with offsets and protocol fields. IPv4 header checksums are verified
/// (real NICs mark bad-checksum packets; the pre-shader drops them).
ParseStatus parse_packet(u8* data, u32 length, PacketView& out);

/// Parameters for synthetic frame construction.
struct FrameSpec {
  u32 frame_size = kMinFrameSize;  // total bytes including L2 header
  MacAddr src_mac = MacAddr::for_port(0);
  MacAddr dst_mac = MacAddr::for_port(1);
  u16 src_port = 1000;
  u16 dst_port = 2000;
  u8 ttl = 64;
};

/// Build a UDP-over-IPv4 frame; payload is zero-filled and frame_size is
/// honored exactly (>= 42 B). Checksums are valid.
FrameBuffer build_udp_ipv4(const FrameSpec& spec, Ipv4Addr src, Ipv4Addr dst);

/// Build a UDP-over-IPv6 frame (frame_size >= 62 B).
FrameBuffer build_udp_ipv6(const FrameSpec& spec, const Ipv6Addr& src, const Ipv6Addr& dst);

/// In-place variants for allocation-free steady-state generation
/// (DESIGN.md §13): `out` is resized and overwritten; once its capacity
/// has grown to the largest frame in the mix, no further allocation
/// occurs. The returning builders above are thin wrappers over these.
void build_udp_ipv4_into(FrameBuffer& out, const FrameSpec& spec, Ipv4Addr src, Ipv4Addr dst);
void build_udp_ipv6_into(FrameBuffer& out, const FrameSpec& spec, const Ipv6Addr& src,
                         const Ipv6Addr& dst);

/// Minimum frame sizes the builders accept.
inline constexpr u32 kMinUdpIpv4Frame =
    sizeof(EthernetHeader) + sizeof(Ipv4Header) + sizeof(UdpHeader);
inline constexpr u32 kMinUdpIpv6Frame =
    sizeof(EthernetHeader) + sizeof(Ipv6Header) + sizeof(UdpHeader);

}  // namespace ps::net
