// End-to-end data-plane integrity (silent-corruption defense).
//
// The pipeline hands every packet across four trust boundaries — NIC DMA
// into the huge buffer, gather/H2D over PCIe, GPU shading, and D2H/scatter
// back to TX — and until this layer the only check in the tree was the
// IPv4 header checksum at parse. A flipped bit in any of those hand-offs
// sailed through untouched. The defense has three legs:
//
//  1. *Boundary stamping.* The NIC deposits a CRC32C over the received
//     bytes next to each descriptor (hardware, zero CPU cost); the stamp
//     travels in the chunk's per-packet metadata and is re-checked at
//     stage boundaries (RX admission, pre-shade gather, post-scatter,
//     pre-TX-doorbell). A mismatch is counted under the stage where it
//     was first seen — `integrity.corrupt_at.<stage>` — so corruption is
//     not just caught but *localized*. Stamps are retaken after each
//     sanctioned mutation point (pre-shade header rewrite, post-shade
//     result application); anything that changes bytes between stamps is
//     by definition corruption.
//
//  2. *Sampled GPU shadow verification.* Byte corruption is only half the
//     story: a miscomputing GPU (or a corrupted PCIe transfer of the
//     shading inputs/outputs) produces *wrong results over intact bytes*,
//     which no CRC can see. The master re-shades 1-in-N batches on the
//     CPU path (differential tests prove the two byte-identical) and
//     compares outputs. A mismatch quarantines the GPU result, adopts the
//     CPU one, escalates sampling to every batch, and — past a strike
//     threshold — trips the device into the PR 1 gpu_health CPU-only
//     fallback. The state machine itself lives in the Router (it owns the
//     per-node health); this class owns the sampling decision + counters.
//
//  3. *Quarantine & re-shade.* A corrupted chunk is never TX'd: packets
//     whose bytes fail a boundary check are dropped with
//     DropReason::kIntegrityFail before the doorbell, and a mismatched
//     GPU batch is re-shaded on the CPU exactly once — keeping the PR 2
//     packet-conservation audit exact (every quarantined packet is either
//     repaired-and-sent or accounted as a drop).
//
// Thread model: stamp/verify run on whichever thread owns the chunk at
// that boundary (workers at rx/scatter/tx, the master at gather/shadow),
// so counters are multi-writer relaxed atomics — monotonic, safely
// sampleable mid-run, and race-free under TSan.
#pragma once

#include <array>
#include <atomic>

#include "common/atomic_shim.hpp"
#include "common/types.hpp"
#include "iengine/chunk.hpp"
#include "integrity/crc32c.hpp"

namespace ps::telemetry {
class MetricsRegistry;
}

namespace ps::integrity {

/// Pipeline boundary where a stamp check runs (= where corruption is
/// localized). kShadow is the GPU-result comparison, not a byte check.
enum class Stage : u8 {
  kRx = 0,   // RX admission: huge-buffer bytes vs the NIC's wire CRC
  kGather,   // master, entry to shading (post worker->master hand-off)
  kScatter,  // worker, results popped from the master (pre post-shade)
  kTx,       // pre-TX-doorbell, the last look before the wire
  kShadow,   // GPU output vs CPU re-shade of the sampled batch
  kCount,
};

inline constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kCount);

const char* to_string(Stage stage);

struct IntegrityConfig {
  /// Master switch for boundary stamping + checks (shadow sampling has its
  /// own knob below so the two overheads can be ablated independently).
  bool stamping = true;
  /// Shadow-verify 1 in N GPU-shaded batches on the CPU path (0 = never).
  u32 shadow_sample_every = 64;
  /// After a shadow mismatch, verify *every* batch for this many batches
  /// (escalation window; fresh mismatches inside the window extend it).
  u32 shadow_escalate_batches = 64;
  /// Mismatched batches within one escalation window before the device is
  /// reported suspect to the gpu_health machinery (CPU-only fallback).
  u32 shadow_trip_threshold = 3;
};

class IntegrityChecker {
 public:
  explicit IntegrityChecker(IntegrityConfig config = {}) : config_(config) {}

  IntegrityChecker(const IntegrityChecker&) = delete;
  IntegrityChecker& operator=(const IntegrityChecker&) = delete;

  const IntegrityConfig& config() const { return config_; }
  bool stamping() const { return config_.stamping; }

  /// (Re)stamp every live packet: CRC32C over the packet's current bytes.
  /// Called after each sanctioned mutation point. Charges the model the
  /// hardware-CRC CPU rate via the ambient CpuChargeScope.
  void stamp_chunk(iengine::PacketChunk& chunk);

  /// Re-check every live (non-dropped) packet against its stamp. Packets
  /// that newly fail are flagged in the chunk (integrity_bad) and counted
  /// under `stage`; already-flagged packets are not recounted. Returns the
  /// number of newly corrupt packets.
  u32 verify_chunk(iengine::PacketChunk& chunk, Stage stage);

  /// Shadow-verification sampling decision, one call per GPU-shaded batch.
  /// While the caller is inside an escalation window every batch is
  /// verified; otherwise 1 in shadow_sample_every.
  bool should_shadow_verify(u64 batch_index, bool escalated) const {
    if (config_.shadow_sample_every == 0) return false;
    if (escalated) return true;
    return batch_index % config_.shadow_sample_every == 0;
  }

  // --- accounting hooks driven by the router -------------------------------
  void count_shadow_batch() { shadow_batches_.fetch_add(1, std::memory_order_relaxed); }
  void count_shadow_mismatch(u64 packets) {
    shadow_mismatch_batches_.fetch_add(1, std::memory_order_relaxed);
    corrupt_at_[static_cast<std::size_t>(Stage::kShadow)].fetch_add(
        packets, std::memory_order_relaxed);
  }
  void count_reshaded_batch() { reshaded_batches_.fetch_add(1, std::memory_order_relaxed); }
  void count_quarantined(u64 packets) {
    quarantined_packets_.fetch_add(packets, std::memory_order_relaxed);
  }
  void count_device_suspect() { devices_tripped_.fetch_add(1, std::memory_order_relaxed); }

  // --- counters ------------------------------------------------------------
  u64 corrupt_at(Stage stage) const {
    return corrupt_at_[static_cast<std::size_t>(stage)].load(std::memory_order_relaxed);
  }
  u64 total_corrupt() const;
  u64 verified_packets() const { return verified_packets_.load(std::memory_order_relaxed); }
  u64 stamped_packets() const { return stamped_packets_.load(std::memory_order_relaxed); }
  u64 shadow_batches() const { return shadow_batches_.load(std::memory_order_relaxed); }
  u64 shadow_mismatch_batches() const {
    return shadow_mismatch_batches_.load(std::memory_order_relaxed);
  }
  u64 reshaded_batches() const { return reshaded_batches_.load(std::memory_order_relaxed); }
  u64 quarantined_packets() const {
    return quarantined_packets_.load(std::memory_order_relaxed);
  }
  u64 devices_tripped() const { return devices_tripped_.load(std::memory_order_relaxed); }

  /// Register the `integrity.*` probes (see README's exported-metrics table).
  void register_metrics(telemetry::MetricsRegistry& registry);

 private:
  IntegrityConfig config_;
  // mc: integrity.corrupt_at -- relaxed chaos-injection arm counters
  std::array<ps::atomic<u64>, kNumStages> corrupt_at_{};
  // mc: integrity.counter -- relaxed accounting counters
  ps::atomic<u64> verified_packets_{0};
  // mc: integrity.counter
  ps::atomic<u64> stamped_packets_{0};
  // mc: integrity.counter
  ps::atomic<u64> shadow_batches_{0};
  // mc: integrity.counter
  ps::atomic<u64> shadow_mismatch_batches_{0};
  // mc: integrity.counter
  ps::atomic<u64> reshaded_batches_{0};
  // mc: integrity.counter
  ps::atomic<u64> quarantined_packets_{0};
  // mc: integrity.counter
  ps::atomic<u64> devices_tripped_{0};
};

}  // namespace ps::integrity
