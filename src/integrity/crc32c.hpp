// CRC32C (Castagnoli) — the data-plane integrity stamp.
//
// Chosen over plain CRC32 because it is what real NICs and NVMe/iSCSI data
// paths use for end-to-end protection, and on real hardware it costs ~0.1
// cycles/byte via the SSE4.2 `crc32` instruction. The model charges it at
// that hardware rate (perf::kCrc32cCyclesPerByte); this software table
// implementation only has to be correct, not fast.
#pragma once

#include <span>

#include "common/types.hpp"

namespace ps::integrity {

/// CRC32C over `data`. `seed` chains partial computations: pass the
/// previous return value to continue a CRC across fragments.
u32 crc32c(std::span<const u8> data, u32 seed = 0);

}  // namespace ps::integrity
