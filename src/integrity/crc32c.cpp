#include "integrity/crc32c.hpp"

#include <array>

namespace ps::integrity {
namespace {

// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
constexpr u32 kPolyReflected = 0x82F63B78u;

constexpr std::array<u32, 256> make_table() {
  std::array<u32, 256> table{};
  for (u32 i = 0; i < 256; ++i) {
    u32 c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? (kPolyReflected ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<u32, 256> kTable = make_table();

}  // namespace

u32 crc32c(std::span<const u8> data, u32 seed) {
  u32 crc = ~seed;
  for (const u8 byte : data) {
    crc = kTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ps::integrity
