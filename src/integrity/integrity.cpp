#include "integrity/integrity.hpp"

#include "perf/calibration.hpp"
#include "perf/ledger.hpp"
#include "telemetry/metrics.hpp"

namespace ps::integrity {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kRx:      return "rx";
    case Stage::kGather:  return "gather";
    case Stage::kScatter: return "scatter";
    case Stage::kTx:      return "tx";
    case Stage::kShadow:  return "shadow";
    case Stage::kCount:   break;
  }
  return "unknown";
}

namespace {

// One CRC pass over `bytes` across `packets` packets, at the hardware
// crc32-instruction rate. Attributed to whatever CpuChargeScope is live on
// this thread (no-op outside a model run).
void charge_crc_pass(u64 bytes, u64 packets) {
  perf::charge_cpu_cycles(perf::kCrc32cCyclesPerByte * static_cast<double>(bytes) +
                          perf::kCrc32cPerPacketCycles * static_cast<double>(packets));
}

}  // namespace

void IntegrityChecker::stamp_chunk(iengine::PacketChunk& chunk) {
  if (!config_.stamping) return;
  const u32 n = chunk.count();
  u64 bytes = 0;
  u64 stamped = 0;
  for (u32 i = 0; i < n; ++i) {
    if (chunk.verdict(i) == iengine::PacketVerdict::kDrop) continue;
    const auto bytes_i = chunk.packet(i);
    chunk.set_crc(i, crc32c(bytes_i));
    chunk.set_integrity_bad(i, false);
    bytes += bytes_i.size();
    ++stamped;
  }
  chunk.set_stamped(true);
  stamped_packets_.fetch_add(stamped, std::memory_order_relaxed);
  charge_crc_pass(bytes, stamped);
}

u32 IntegrityChecker::verify_chunk(iengine::PacketChunk& chunk, Stage stage) {
  if (!config_.stamping || !chunk.stamped()) return 0;
  const u32 n = chunk.count();
  u32 newly_bad = 0;
  u64 bytes = 0;
  u64 checked = 0;
  for (u32 i = 0; i < n; ++i) {
    if (chunk.verdict(i) == iengine::PacketVerdict::kDrop) continue;
    if (chunk.integrity_bad(i)) continue;  // already localized upstream
    const auto bytes_i = chunk.packet(i);
    bytes += bytes_i.size();
    ++checked;
    if (crc32c(bytes_i) != chunk.crc(i)) {
      chunk.set_integrity_bad(i, true);
      ++newly_bad;
    }
  }
  verified_packets_.fetch_add(checked, std::memory_order_relaxed);
  if (newly_bad != 0) {
    corrupt_at_[static_cast<std::size_t>(stage)].fetch_add(newly_bad,
                                                           std::memory_order_relaxed);
  }
  charge_crc_pass(bytes, checked);
  return newly_bad;
}

u64 IntegrityChecker::total_corrupt() const {
  u64 total = 0;
  for (const auto& c : corrupt_at_) total += c.load(std::memory_order_relaxed);
  return total;
}

void IntegrityChecker::register_metrics(telemetry::MetricsRegistry& registry) {
  using telemetry::MetricKind;
  registry.register_probe("integrity.corrupt_at.rx", MetricKind::kCounter,
                          [this] { return corrupt_at(Stage::kRx); });
  registry.register_probe("integrity.corrupt_at.gather", MetricKind::kCounter,
                          [this] { return corrupt_at(Stage::kGather); });
  registry.register_probe("integrity.corrupt_at.scatter", MetricKind::kCounter,
                          [this] { return corrupt_at(Stage::kScatter); });
  registry.register_probe("integrity.corrupt_at.tx", MetricKind::kCounter,
                          [this] { return corrupt_at(Stage::kTx); });
  registry.register_probe("integrity.corrupt_at.shadow", MetricKind::kCounter,
                          [this] { return corrupt_at(Stage::kShadow); });
  registry.register_probe("integrity.verified_packets", MetricKind::kCounter,
                          [this] { return verified_packets(); });
  registry.register_probe("integrity.stamped_packets", MetricKind::kCounter,
                          [this] { return stamped_packets(); });
  registry.register_probe("integrity.shadow_batches", MetricKind::kCounter,
                          [this] { return shadow_batches(); });
  registry.register_probe("integrity.shadow_mismatch_batches", MetricKind::kCounter,
                          [this] { return shadow_mismatch_batches(); });
  registry.register_probe("integrity.reshaded_batches", MetricKind::kCounter,
                          [this] { return reshaded_batches(); });
  registry.register_probe("integrity.quarantined_packets", MetricKind::kCounter,
                          [this] { return quarantined_packets(); });
  registry.register_probe("integrity.devices_tripped", MetricKind::kCounter,
                          [this] { return devices_tripped(); });
}

}  // namespace ps::integrity
