// Cost model of the legacy Linux per-packet buffer path (Figure 4(a)),
// the baseline that Table 3 dissects.
//
// Functionally this is a freelist allocator handing out (skb metadata,
// data buffer) pairs; its purpose is to charge the Table 3 cycle bins so
// `bench_table3_rx_breakdown` can reproduce the breakdown and quantify
// what the huge packet buffer eliminates.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "mem/huge_buffer.hpp"
#include "perf/calibration.hpp"

namespace ps::mem {

/// Cycle cost of receiving one packet, split by Table 3's functional bins.
struct RxCycleBreakdown {
  double skb_init = 0;
  double alloc_free = 0;
  double memory_subsystem = 0;
  double nic_driver = 0;
  double others = 0;
  double compulsory_misses = 0;

  double total() const {
    return skb_init + alloc_free + memory_subsystem + nic_driver + others + compulsory_misses;
  }
};

/// Per-packet RX cost on the unmodified skb path (Table 3's measurement:
/// unmodified ixgbe receiving 64 B packets and dropping them).
RxCycleBreakdown skb_rx_breakdown();

/// Per-packet RX cost with the huge packet buffer + batching + prefetch
/// fixes of sections 4.2-4.3 applied; the bins that the paper's techniques
/// eliminate are zero or near-zero.
RxCycleBreakdown huge_buffer_rx_breakdown();

/// Functional skb-style allocator: one 208 B metadata block plus one data
/// buffer per packet, recycled through freelists (a miniature slab). Used
/// by tests to show both buffering schemes carry packets correctly.
class SkbAllocator {
 public:
  struct Skb {
    std::vector<u8> metadata;  // kSkbMetadataSize bytes, re-initialized per packet
    std::vector<u8> data;
  };

  explicit SkbAllocator(u32 buffer_size = kDataCellSize) : buffer_size_(buffer_size) {}

  /// Allocate (or recycle) an skb; metadata is zero-initialized each time,
  /// mirroring the per-packet init cost the paper measures.
  Skb allocate();

  /// Return an skb to the freelist.
  void release(Skb skb);

  u64 total_allocations() const noexcept { return allocations_; }
  u64 freelist_size() const noexcept { return freelist_.size(); }

 private:
  u32 buffer_size_;
  std::vector<Skb> freelist_;
  u64 allocations_ = 0;
};

}  // namespace ps::mem
