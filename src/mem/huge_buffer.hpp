// Huge packet buffer (paper section 4.2, Figure 4(b)).
//
// Instead of allocating an skb + data buffer per packet, the driver
// allocates two huge regions up front — one of compact 8-byte metadata
// cells and one of 2048-byte data cells — with cell i permanently bound to
// RX-queue slot i and recycled as the circular queue wraps. This removes
// per-packet allocator traffic and per-packet DMA mapping.
#pragma once

#include <cassert>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace ps::mem {

/// Compact per-packet metadata: 8 bytes, versus Linux 2.6.28's 208-byte skb.
/// Packets in a software router never traverse the host TCP/IP stack, so
/// only length and a few driver flags are needed.
struct PacketMetadata {
  u16 length = 0;
  u8 status = 0;   // driver status bits (e.g. checksum-verified-by-NIC)
  u8 rsvd = 0;
  u32 rss_hash = 0;
};
static_assert(sizeof(PacketMetadata) == 8, "metadata cell must stay 8 bytes");

inline constexpr u32 kDataCellSize = 2048;  // fits a 1518 B frame, keeps the
                                            // NIC's 1024 B alignment rule
inline constexpr u32 kSkbMetadataSize = 208;  // Linux 2.6.28 skb, for contrast

/// One huge buffer pair backing one RX or TX descriptor ring.
class HugePacketBuffer {
 public:
  /// `cells` must match the ring size it backs. `numa_node` tags where the
  /// backing memory lives (section 4.5 places it on the NIC's node).
  HugePacketBuffer(u32 cells, int numa_node);

  u32 cell_count() const noexcept { return cell_count_; }
  int numa_node() const noexcept { return numa_node_; }

  std::span<u8> cell_data(u32 index) {
    assert(index < cell_count_);
    return {data_.data() + static_cast<std::size_t>(index) * kDataCellSize, kDataCellSize};
  }
  std::span<const u8> cell_data(u32 index) const {
    assert(index < cell_count_);
    return {data_.data() + static_cast<std::size_t>(index) * kDataCellSize, kDataCellSize};
  }

  PacketMetadata& metadata(u32 index) {
    assert(index < cell_count_);
    return metadata_[index];
  }
  const PacketMetadata& metadata(u32 index) const {
    assert(index < cell_count_);
    return metadata_[index];
  }

  /// Per-descriptor CRC32C the NIC deposits over the received bytes (the
  /// RX-admission integrity stamp). Kept in a sidecar region rather than
  /// PacketMetadata, which is locked to 8 bytes by the static_assert above
  /// — real 82599 descriptors carry their FCS result out-of-band too.
  u32 cell_crc(u32 index) const {
    assert(index < cell_count_);
    return crcs_[index];
  }
  void set_cell_crc(u32 index, u32 crc) {
    assert(index < cell_count_);
    crcs_[index] = crc;
  }

  /// Total resident bytes (data + metadata regions) — what one DMA mapping
  /// covers instead of a mapping per packet.
  u64 mapped_bytes() const noexcept {
    return static_cast<u64>(cell_count_) * (kDataCellSize + sizeof(PacketMetadata));
  }

 private:
  u32 cell_count_;
  int numa_node_;
  std::vector<u8> data_;
  std::vector<PacketMetadata> metadata_;
  std::vector<u32> crcs_;  // sidecar: one wire CRC per cell
};

}  // namespace ps::mem
