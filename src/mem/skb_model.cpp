#include "mem/skb_model.hpp"

#include <algorithm>
#include <cstring>

namespace ps::mem {

RxCycleBreakdown skb_rx_breakdown() {
  using namespace perf;
  return RxCycleBreakdown{
      .skb_init = kSkbRxTotalCycles * kSkbShareInit,
      .alloc_free = kSkbRxTotalCycles * kSkbShareAllocFree,
      .memory_subsystem = kSkbRxTotalCycles * kSkbShareMemSubsystem,
      .nic_driver = kSkbRxTotalCycles * kSkbShareNicDriver,
      .others = kSkbRxTotalCycles * kSkbShareOthers,
      .compulsory_misses = kSkbRxTotalCycles * kSkbShareCacheMiss,
  };
}

RxCycleBreakdown huge_buffer_rx_breakdown() {
  using namespace perf;
  return RxCycleBreakdown{
      // 8 B metadata vs 208 B skb: initialization shrinks 26x.
      .skb_init = kHugeBufMetadataInitCycles,
      // No per-packet allocation at all: cells recycle with the ring.
      .alloc_free = 0.0,
      .memory_subsystem = 0.0,
      // Driver cost without per-packet DMA mapping, amortized by batching.
      .nic_driver = kHugeBufDriverCyclesPerPacket,
      .others = kHugeBufOtherCyclesPerPacket,
      // Software prefetch of the next descriptor + data hides compulsory
      // misses (section 4.3); a small residual remains.
      .compulsory_misses = kHugeBufResidualMissCycles,
  };
}

SkbAllocator::Skb SkbAllocator::allocate() {
  ++allocations_;
  Skb skb;
  if (!freelist_.empty()) {
    skb = std::move(freelist_.back());
    freelist_.pop_back();
  } else {
    skb.metadata.resize(kSkbMetadataSize);
    skb.data.resize(buffer_size_);
  }
  // Linux re-initializes the metadata on every allocation; that
  // per-packet memset over 208 B is exactly the "skb initialization" bin.
  std::fill(skb.metadata.begin(), skb.metadata.end(), u8{0});
  return skb;
}

void SkbAllocator::release(Skb skb) { freelist_.push_back(std::move(skb)); }

}  // namespace ps::mem
