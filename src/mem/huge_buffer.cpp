#include "mem/huge_buffer.hpp"

namespace ps::mem {

HugePacketBuffer::HugePacketBuffer(u32 cells, int numa_node)
    : cell_count_(cells),
      numa_node_(numa_node),
      data_(static_cast<std::size_t>(cells) * kDataCellSize),
      metadata_(cells),
      crcs_(cells) {}

}  // namespace ps::mem
