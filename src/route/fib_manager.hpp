// Control-plane FIB management (section 7, "integration with a control
// plane"): a Zebra/Quagga-style RIB feeding the data path's forwarding
// tables without disturbing it.
//
// The paper names the two candidate mechanisms — incremental update or
// double buffering — and this module now implements both, composed:
// route changes accumulate as pre-resolved ops, commit applies them
// *incrementally* to a standby buffer (touching only the TBL24/TBLlong
// regions they cover) and publishes the buffer as an immutable FIB
// *generation* through a single atomic pointer. The data path never takes
// a lock: readers pin an epoch (ps::epoch), load the generation, and look
// up; a retired generation is destroyed only after every pinned epoch has
// advanced past its retirement, then its buffer is recycled for a future
// commit.
//
// Commit is transactional. A batch either publishes completely or leaves
// the published generation untouched: the standby buffer is brought up to
// date by replaying the op journal, the batch is applied on top, and only
// then does the atomic pointer move. A fault mid-batch (see the
// control.fib_update.* points) poisons the standby buffer — it is
// discarded, the batch is re-queued in order, and the next commit retries
// against a fresh buffer. The RIB itself is never rolled back; it always
// reflects what has been announced, and pending ops carry the deltas that
// still separate it from the published table.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/epoch.hpp"
#include "common/thread_annotations.hpp"
#include "fault/fault_injector.hpp"
#include "route/ipv4_table.hpp"
#include "route/ipv6_table.hpp"
#include "telemetry/metrics.hpp"

namespace ps::route {

/// How a try_commit() attempt ended.
enum class CommitStatus {
  kClean,       // nothing pending; no new generation
  kCommitted,   // batch fully applied and published
  kRolledBack,  // fault hit; published generation untouched, batch re-queued
};

struct CommitResult {
  CommitStatus status = CommitStatus::kClean;
  u64 generation = 0;       // published generation after the attempt
  std::size_t ops = 0;      // batch size the attempt covered
  std::size_t slots_written = 0;  // table slots touched (incremental only)
};

/// Generation-published FIB. Table must provide build(span<const Prefix>);
/// when it additionally provides apply_resolved(span<const ResolvedIpv4Op>)
/// (Ipv4Table does), commits are incremental; otherwise each commit is a
/// from-scratch rebuild, still epoch-published (Ipv6Table today).
/// KeyFn maps a prefix to a unique (network, length) key.
template <typename Table, typename Prefix, typename KeyFn>
class FibManager {
 public:
  static constexpr bool kIncremental =
      requires(Table& t, std::span<const ResolvedIpv4Op> ops) { t.apply_resolved(ops); };

  /// Lock-free data-path handle: an epoch pin plus the generation it
  /// protects. Hold for one batch/chunk, then drop — a pin held forever
  /// blocks reclamation of every later generation.
  class ReadGuard {
   public:
    ReadGuard(epoch::Guard guard, const Table* table)
        : guard_(std::move(guard)), table_(table) {}
    const Table* operator->() const { return table_; }
    const Table& operator*() const { return *table_; }
    const Table* get() const { return table_; }

   private:
    epoch::Guard guard_;
    const Table* table_;
  };

  FibManager() : pool_(std::make_shared<BufferPool>()) {
    auto first = wrap(std::make_unique<Generation>(), pool_);
    current_.store(&first->table, std::memory_order_release);
    MutexLock lock(mu_);
    active_ = std::move(first);
  }

  ~FibManager() {
    // Drain retired generations before the pool dies with us. No reader
    // may still be pinned (the data path must be stopped first).
    domain_.reclaim();
  }

  /// Announce (add or replace) a route. Takes effect at the next commit.
  void announce(const Prefix& prefix) {
    MutexLock lock(mu_);
    const u64 key = KeyFn{}(prefix);
    PendingOp op;
    op.prefix = prefix;
    op.announce = true;
    op.is_new = rib_.find(key) == rib_.end();
    rib_[key] = prefix;
    pending_.push_back(op);
  }

  /// Withdraw a route. Takes effect at the next commit. Returns false when
  /// the route was not present. The op is resolved against the RIB *now*
  /// (parent route for the freed range), so applying it later needs no RIB.
  bool withdraw(const Prefix& prefix) {
    MutexLock lock(mu_);
    const u64 key = KeyFn{}(prefix);
    auto it = rib_.find(key);
    if (it == rib_.end()) return false;
    PendingOp op;
    op.prefix = it->second;
    op.announce = false;
    rib_.erase(it);
    if constexpr (kIncremental) {
      for (int l = static_cast<int>(op.prefix.length) - 1; l >= 0; --l) {
        Prefix cover = op.prefix;
        cover.length = static_cast<u8>(l);
        auto parent = rib_.find(KeyFn{}(cover));
        if (parent != rib_.end()) {
          op.parent_nh = parent->second.next_hop;
          op.parent_depth = parent->second.length;
          break;
        }
      }
    }
    pending_.push_back(op);
    return true;
  }

  std::size_t route_count() const {
    MutexLock lock(mu_);
    return rib_.size();
  }

  /// Ops announced/withdrawn but not yet published (re-queued rollbacks
  /// included).
  std::size_t pending_updates() const {
    MutexLock lock(mu_);
    return pending_.size();
  }

  /// Apply and publish everything pending. Runs on the control-plane
  /// thread; the data path is never blocked. Returns the published
  /// generation (unchanged if nothing was pending).
  u64 commit() { return try_commit(nullptr).generation; }

  /// Fault-aware commit: one batch attempt. With an injector, the
  /// control.fib_update.alloc_fail and .crash_mid_batch points can force a
  /// rollback — the published generation is untouched and the batch is
  /// re-queued in order for the next attempt (the updater's retry loop).
  CommitResult try_commit(fault::FaultInjector* injector) {
    MutexLock writer(commit_mu_);
    CommitResult result;
    result.generation = generation_.load(std::memory_order_acquire);
    {
      MutexLock lock(mu_);
      if (pending_.empty()) return result;
      result.ops = pending_.size();
    }

    // Deterministic allocation failure: fires before any buffer is
    // acquired or mutated, so rollback is trivially "do nothing".
    if (injector != nullptr && injector->should_fire(fault::Point::kFibUpdateAllocFail)) {
      result.status = CommitStatus::kRolledBack;
      note_rollback(result.ops);
      return result;
    }

    const auto t0 = std::chrono::steady_clock::now();
    std::unique_ptr<Generation> builder = acquire_buffer();

    // Drain the batch and, in the same critical section, capture what the
    // builder needs: either the journal suffix that brings it from its own
    // generation to the published one, or (when the journal no longer
    // reaches back far enough, or Table has no incremental apply) the full
    // RIB — which at this instant is exactly published-state + batch.
    std::vector<PendingOp> batch;
    std::vector<PendingOp> replay;
    std::vector<Prefix> full_rib;
    bool replayable = false;
    {
      MutexLock lock(mu_);
      batch = std::move(pending_);
      pending_.clear();
      result.ops = batch.size();
      if constexpr (kIncremental) {
        replayable = journal_reaches(builder->gen);
        if (replayable) {
          for (const auto& b : journal_) {
            if (b.gen > builder->gen) {
              replay.insert(replay.end(), b.ops.begin(), b.ops.end());
            }
          }
        }
      }
      if (!replayable) {
        full_rib.reserve(rib_.size());
        for (const auto& [key, prefix] : rib_) full_rib.push_back(prefix);
      }
    }

    // Mutate the standby buffer outside every lock: announces keep
    // flowing, lookups never notice.
    bool crashed = false;
    if (replayable) {
      if constexpr (kIncremental) {
        apply_ops(builder->table, replay, nullptr, &result.slots_written, &crashed);
        if (!crashed) {
          result.slots_written = 0;  // report batch work, not catch-up work
          apply_ops(builder->table, batch, injector, &result.slots_written, &crashed);
        }
      }
    } else {
      builder->table.build(full_rib);
      crashed = injector != nullptr &&
                injector->should_fire(fault::Point::kFibUpdateCrashMidBatch);
    }

    if (crashed) {
      // The buffer is part-mutated and unusable; drop it (not pooled) and
      // put the batch back at the head so op order is preserved.
      builder.reset();
      MutexLock lock(mu_);
      pending_.insert(pending_.begin(), batch.begin(), batch.end());
      result.status = CommitStatus::kRolledBack;
      note_rollback(result.ops);
      return result;
    }

    // Publish: single atomic pointer swap, then retire the old generation
    // into the epoch domain. Readers pinned on the old generation keep it
    // alive; its buffer returns to the pool once the last pin advances.
    const u64 next_gen = result.generation + 1;
    builder->gen = next_gen;
    std::shared_ptr<Generation> fresh = wrap(std::move(builder), pool_);
    std::shared_ptr<Generation> old;
    {
      MutexLock lock(mu_);
      current_.store(&fresh->table, std::memory_order_release);
      old = std::exchange(active_, std::move(fresh));
      generation_.store(next_gen, std::memory_order_release);
      if constexpr (kIncremental) {
        journal_.push_back({next_gen, batch});
        while (journal_.size() > kJournalDepth) journal_.pop_front();
      }
    }
    domain_.retire(std::shared_ptr<const void>(std::move(old)));
    domain_.reclaim();

    result.status = CommitStatus::kCommitted;
    result.generation = next_gen;
    if (applied_ != nullptr) applied_->add(result.ops);
    if (apply_ns_ != nullptr) {
      apply_ns_->record(static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                             std::chrono::steady_clock::now() - t0)
                                             .count()));
    }
    return result;
  }

  /// Data-path read: pin an epoch, load the published generation. No lock,
  /// no reference-count bump — one relaxed store and one fence after the
  /// calling thread's first use.
  ReadGuard read() const {
    epoch::Guard guard = domain_.pin();
    return ReadGuard(std::move(guard), current_.load(std::memory_order_acquire));
  }

  /// Control-plane snapshot (GPU table upload, tests): shared ownership of
  /// the current generation. Costs a ref-count bump under a short lock —
  /// fine per sync(), wrong per packet; the data path uses read().
  std::shared_ptr<const Table> snapshot() const {
    MutexLock lock(mu_);
    return std::shared_ptr<const Table>(active_, &active_->table);
  }

  /// Monotonic table version; bumps on every effective commit.
  u64 generation() const { return generation_.load(std::memory_order_acquire); }

  /// Retired generations not yet reclaimed (readers still pinned on them).
  std::size_t retired_pending() const { return domain_.retired_pending(); }

  /// Export churn telemetry. Call once, for the router's primary FIB: the
  /// names are fixed (doc-synced), so two managers registering would share
  /// slots and break the single-writer discipline.
  void register_metrics(telemetry::MetricsRegistry& registry) {
    applied_ = registry.counter("fib.updates_applied");
    rolled_back_ = registry.counter("fib.updates_rolled_back");
    apply_ns_ = registry.histogram("fib.update_apply_ns");
    registry.register_probe("fib.generation", telemetry::MetricKind::kGauge,
                            [this] { return generation(); });
    registry.register_probe("fib.retired_pending", telemetry::MetricKind::kGauge,
                            [this] { return static_cast<u64>(domain_.retired_pending()); });
  }

 private:
  /// A route change resolved against the RIB at announce/withdraw time.
  /// Field-compatible with ResolvedIpv4Op; kept per-Prefix so the same
  /// journal machinery serves non-incremental tables.
  struct PendingOp {
    Prefix prefix;
    bool announce = true;
    bool is_new = false;
    NextHop parent_nh = kNoRoute;
    u8 parent_depth = 0;
  };

  /// One table buffer plus the generation whose state it holds.
  struct Generation {
    Table table;
    u64 gen = 0;
  };

  /// Recycled standby buffers. Buffers come back through the epoch
  /// domain's reclamation (custom deleter below), so a pooled buffer is
  /// never still visible to a reader.
  struct BufferPool {
    Mutex mu;
    std::vector<std::unique_ptr<Generation>> free GUARDED_BY(mu);
  };

  struct Batch {
    u64 gen = 0;
    std::vector<PendingOp> ops;
  };

  /// Journal depth = how far behind a pooled buffer may lag and still be
  /// caught up incrementally; older buffers trigger a full rebuild. Also
  /// the memory bound on the journal itself (kJournalDepth batches).
  static constexpr std::size_t kJournalDepth = 64;
  /// Buffers kept for reuse; more than the steady-state two (published +
  /// standby) only transiently, e.g. while a reader pins an old generation.
  static constexpr std::size_t kPoolDepth = 2;

  static std::shared_ptr<Generation> wrap(std::unique_ptr<Generation> g,
                                          std::shared_ptr<BufferPool> pool) {
    return std::shared_ptr<Generation>(g.release(), [pool](Generation* raw) {
      std::unique_ptr<Generation> owned(raw);
      MutexLock lock(pool->mu);
      if (pool->free.size() < kPoolDepth) pool->free.push_back(std::move(owned));
    });
  }

  std::unique_ptr<Generation> acquire_buffer() {
    {
      MutexLock lock(pool_->mu);
      if (!pool_->free.empty()) {
        std::unique_ptr<Generation> g = std::move(pool_->free.back());
        pool_->free.pop_back();
        return g;
      }
    }
    return std::make_unique<Generation>();  // fresh buffer holds gen-0 state
  }

  /// True when the journal contains every batch in (gen, published].
  bool journal_reaches(u64 gen) const REQUIRES(mu_) {
    if (journal_.empty()) return gen == generation_.load(std::memory_order_acquire);
    return gen + 1 >= journal_.front().gen;
  }

  /// Apply ops in order; with an injector, crash_mid_batch is evaluated
  /// per op so a batch can die anywhere inside — exactly the partial-apply
  /// scenario rollback must survive.
  static void apply_ops(Table& table, const std::vector<PendingOp>& ops,
                        fault::FaultInjector* injector, std::size_t* slots, bool* crashed) {
    if constexpr (kIncremental) {
      for (const auto& op : ops) {
        if (injector != nullptr &&
            injector->should_fire(fault::Point::kFibUpdateCrashMidBatch)) {
          *crashed = true;
          return;
        }
        ResolvedIpv4Op resolved;
        resolved.prefix = op.prefix;
        resolved.announce = op.announce;
        resolved.is_new = op.is_new;
        resolved.parent_nh = op.parent_nh;
        resolved.parent_depth = op.parent_depth;
        *slots += table.apply_resolved(std::span<const ResolvedIpv4Op>(&resolved, 1));
      }
    }
  }

  void note_rollback(std::size_t ops) {
    if (rolled_back_ != nullptr) rolled_back_->add(ops);
  }

  /// Serializes writers (commit vs commit); never touched by readers.
  /// Lock order: commit_mu_ before mu_ before pool_->mu.
  Mutex commit_mu_;
  mutable Mutex mu_;
  /// Owner of the published generation; current_ aliases into it.
  std::shared_ptr<Generation> active_ GUARDED_BY(mu_);
  std::unordered_map<u64, Prefix> rib_ GUARDED_BY(mu_);
  std::vector<PendingOp> pending_ GUARDED_BY(mu_);
  std::deque<Batch> journal_ GUARDED_BY(mu_);

  /// The single atomic pointer readers load. Always points into the
  /// Generation owned by active_; lifetime beyond the swap is the epoch
  /// domain's business.
  // mc: fib.current -- release pointer swap; readers load acquire under pin
  ps::atomic<const Table*> current_{nullptr};
  // mc: fib.generation -- release gen bump paired with current_ swap
  ps::atomic<u64> generation_{0};
  mutable epoch::Domain domain_;
  std::shared_ptr<BufferPool> pool_;

  telemetry::Counter* applied_ = nullptr;
  telemetry::Counter* rolled_back_ = nullptr;
  telemetry::HistogramMetric* apply_ns_ = nullptr;
};

struct Ipv4PrefixKey {
  u64 operator()(const Ipv4Prefix& p) const {
    return (static_cast<u64>(p.network()) << 8) | p.length;
  }
};

struct Ipv6PrefixKey {
  u64 operator()(const Ipv6Prefix& p) const {
    const Key128 k = mask128(p.addr.hi64(), p.addr.lo64(), p.length);
    return Key128Hash{}(k) * 131 + p.length;
  }
};

using Ipv4Fib = FibManager<Ipv4Table, Ipv4Prefix, Ipv4PrefixKey>;
using Ipv6Fib = FibManager<Ipv6Table, Ipv6Prefix, Ipv6PrefixKey>;

}  // namespace ps::route
