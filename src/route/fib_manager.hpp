// Control-plane FIB management (section 7, "integration with a control
// plane"): a Zebra/Quagga-style RIB feeding the data path's forwarding
// tables without disturbing it.
//
// The paper names the two candidate mechanisms — incremental update or
// double buffering — and this implements double buffering: route changes
// accumulate in the manager, commit() rebuilds a fresh table off the data
// path, and the data path picks up the new snapshot at its next chunk
// boundary. In-flight lookups keep the old snapshot alive (shared_ptr),
// so there is never a torn table.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hpp"
#include "route/ipv4_table.hpp"
#include "route/ipv6_table.hpp"

namespace ps::route {

/// Double-buffered FIB: Table must provide build(span<const Prefix>).
/// KeyFn maps a prefix to a unique (network, length) key.
template <typename Table, typename Prefix, typename KeyFn>
class FibManager {
 public:
  FibManager() : active_(std::make_shared<const Table>()) {}

  /// Announce (add or replace) a route. Takes effect at commit().
  void announce(const Prefix& prefix) {
    MutexLock lock(mu_);
    rib_[KeyFn{}(prefix)] = prefix;
    dirty_ = true;
  }

  /// Withdraw a route. Takes effect at commit(). Returns false when the
  /// route was not present.
  bool withdraw(const Prefix& prefix) {
    MutexLock lock(mu_);
    const bool erased = rib_.erase(KeyFn{}(prefix)) > 0;
    dirty_ = dirty_ || erased;
    return erased;
  }

  std::size_t route_count() const {
    MutexLock lock(mu_);
    return rib_.size();
  }

  /// Rebuild the standby table from the RIB and atomically publish it.
  /// Runs on the control-plane thread; the data path is never blocked.
  /// Returns the new generation number (unchanged if nothing was dirty).
  u64 commit() {
    std::vector<Prefix> prefixes;
    {
      MutexLock lock(mu_);
      if (!dirty_) return generation_;
      prefixes.reserve(rib_.size());
      for (const auto& [key, prefix] : rib_) prefixes.push_back(prefix);
      dirty_ = false;
    }

    // Build outside the lock: announcements may continue meanwhile (they
    // will be picked up by the next commit).
    auto fresh = std::make_shared<Table>();
    fresh->build(prefixes);

    MutexLock lock(mu_);
    active_ = std::move(fresh);
    return ++generation_;
  }

  /// Data-path snapshot: grab once per chunk, keep for the chunk's
  /// lifetime. Cheap (one ref-count bump under a short lock).
  std::shared_ptr<const Table> snapshot() const {
    MutexLock lock(mu_);
    return active_;
  }

  /// Monotonic table version; bumps on every effective commit.
  u64 generation() const {
    MutexLock lock(mu_);
    return generation_;
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const Table> active_ GUARDED_BY(mu_);
  std::unordered_map<u64, Prefix> rib_ GUARDED_BY(mu_);
  bool dirty_ GUARDED_BY(mu_) = false;
  u64 generation_ GUARDED_BY(mu_) = 0;
};

struct Ipv4PrefixKey {
  u64 operator()(const Ipv4Prefix& p) const {
    return (static_cast<u64>(p.network()) << 8) | p.length;
  }
};

struct Ipv6PrefixKey {
  u64 operator()(const Ipv6Prefix& p) const {
    const Key128 k = mask128(p.addr.hi64(), p.addr.lo64(), p.length);
    return Key128Hash{}(k) * 131 + p.length;
  }
};

using Ipv4Fib = FibManager<Ipv4Table, Ipv4Prefix, Ipv4PrefixKey>;
using Ipv6Fib = FibManager<Ipv6Table, Ipv6Prefix, Ipv6PrefixKey>;

}  // namespace ps::route
