#include "route/ipv6_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ps::route {

namespace {

u64 mask_top_bits(u64 value, int bits) {
  if (bits <= 0) return 0;
  if (bits >= 64) return value;
  return value & ~((u64{1} << (64 - bits)) - 1);
}

/// Bit `index` (0 = most significant of hi) of a 128-bit value.
int bit_at(u64 hi, u64 lo, int index) {
  if (index < 64) return static_cast<int>((hi >> (63 - index)) & 1);
  return static_cast<int>((lo >> (127 - index)) & 1);
}

u64 flat_hash(u64 hi, u64 lo) {
  u64 x = hi * 0x9e3779b97f4a7c15ULL ^ lo;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 31);
}

}  // namespace

Key128 mask128(u64 hi, u64 lo, int bits) {
  assert(bits >= 0 && bits <= 128);
  if (bits <= 64) return {mask_top_bits(hi, bits), 0};
  return {hi, mask_top_bits(lo, bits - 64)};
}

// --- reference trie ---------------------------------------------------------

struct Ipv6ReferenceLpm::Node {
  std::unique_ptr<Node> child[2];
  bool has_nh = false;
  NextHop nh = kNoRoute;
};

Ipv6ReferenceLpm::Ipv6ReferenceLpm() : root_(std::make_unique<Node>()) {}
Ipv6ReferenceLpm::~Ipv6ReferenceLpm() = default;
Ipv6ReferenceLpm::Ipv6ReferenceLpm(Ipv6ReferenceLpm&&) noexcept = default;
Ipv6ReferenceLpm& Ipv6ReferenceLpm::operator=(Ipv6ReferenceLpm&&) noexcept = default;

void Ipv6ReferenceLpm::insert(const Ipv6Prefix& prefix) {
  Node* node = root_.get();
  const u64 hi = prefix.addr.hi64();
  const u64 lo = prefix.addr.lo64();
  for (int i = 0; i < prefix.length; ++i) {
    const int b = bit_at(hi, lo, i);
    if (!node->child[b]) node->child[b] = std::make_unique<Node>();
    node = node->child[b].get();
  }
  node->has_nh = true;
  node->nh = prefix.next_hop;
}

void Ipv6ReferenceLpm::build(std::span<const Ipv6Prefix> prefixes) {
  root_ = std::make_unique<Node>();
  for (const auto& p : prefixes) insert(p);
}

NextHop Ipv6ReferenceLpm::lookup_key(const Key128& key, int max_length) const {
  NextHop best = kNoRoute;
  const Node* node = root_.get();
  if (node->has_nh) best = node->nh;
  for (int i = 0; i < max_length; ++i) {
    node = node->child[bit_at(key.hi, key.lo, i)].get();
    if (node == nullptr) break;
    if (node->has_nh) best = node->nh;
  }
  return best;
}

NextHop Ipv6ReferenceLpm::lookup(const net::Ipv6Addr& addr, int max_length) const {
  return lookup_key({addr.hi64(), addr.lo64()}, max_length);
}

// --- binary search on prefix lengths ----------------------------------------

void Ipv6Table::build(std::span<const Ipv6Prefix> prefixes) {
  for (auto& level : levels_) level.clear();
  default_nh_ = kNoRoute;
  prefix_count_ = 0;
  marker_count_ = 0;

  Ipv6ReferenceLpm trie;
  for (const auto& p : prefixes) {
    assert(p.length <= 128);
    assert(p.next_hop <= kNoRoute);
    trie.insert(p);
  }

  for (const auto& p : prefixes) {
    ++prefix_count_;
    if (p.length == 0) {
      default_nh_ = p.next_hop;
      continue;
    }
    const u64 hi = p.addr.hi64();
    const u64 lo = p.addr.lo64();

    // Walk the binary search tree over lengths [1, 128], dropping a marker
    // at every level where the search must turn toward longer prefixes.
    int low = 1, high = 128;
    while (true) {
      const int mid = (low + high) / 2;
      const Key128 key = mask128(hi, lo, mid);
      if (p.length == mid) {
        Entry& e = levels_[mid][key];
        e.is_prefix = true;
        e.nh = p.next_hop;
        break;
      }
      if (p.length > mid) {
        auto [it, inserted] = levels_[mid].try_emplace(key);
        if (inserted) ++marker_count_;
        low = mid + 1;
      } else {
        high = mid - 1;
      }
      assert(low <= high);
    }
  }

  // Precompute every entry's best-matching prefix: the longest real prefix
  // covering the entry's bits, at or below the entry's level. A hit on the
  // entry can then immediately record `bmp` and continue toward longer
  // lengths with no backtracking.
  for (int length = 1; length <= 128; ++length) {
    for (auto& [key, entry] : levels_[length]) {
      entry.bmp = trie.lookup_key(key, length);
      if (entry.bmp == kNoRoute) entry.bmp = default_nh_;
    }
  }
}

NextHop Ipv6Table::lookup(const net::Ipv6Addr& addr, int* probes) const {
  const u64 hi = addr.hi64();
  const u64 lo = addr.lo64();
  NextHop best = default_nh_;
  int n = 0;
  int low = 1, high = 128;
  while (low <= high) {
    const int mid = (low + high) / 2;
    ++n;
    const auto& level = levels_[mid];
    const auto it = level.find(mask128(hi, lo, mid));
    if (it != level.end()) {
      best = it->second.bmp;
      low = mid + 1;
    } else {
      high = mid - 1;
    }
  }
  if (probes != nullptr) *probes = n;
  return best;
}

Ipv6FlatTable Ipv6Table::flatten() const {
  Ipv6FlatTable flat;
  flat.default_nh_ = default_nh_;

  u32 offset = 0;
  for (int length = 1; length <= 128; ++length) {
    const auto& level = levels_[length];
    flat.level_offset_[length] = offset;
    if (level.empty()) {
      flat.level_mask_[length] = 0;
      continue;
    }
    // 2x headroom keeps linear-probe chains short.
    const u32 capacity = static_cast<u32>(std::bit_ceil(level.size() * 2));
    flat.level_mask_[length] = capacity - 1;
    flat.slots_.resize(offset + capacity);
    for (const auto& [key, entry] : level) {
      u32 slot = static_cast<u32>(flat_hash(key.hi, key.lo)) & (capacity - 1);
      while (flat.slots_[offset + slot].occupied != 0) slot = (slot + 1) & (capacity - 1);
      flat.slots_[offset + slot] =
          Ipv6FlatTable::Slot{key.hi, key.lo, entry.bmp, 1};
    }
    offset += capacity;
  }
  return flat;
}

NextHop Ipv6FlatTable::lookup_in_arrays(const Slot* slots, const u32* offsets, const u32* masks,
                                        u64 hi, u64 lo, NextHop default_nh, int* probes) {
  NextHop best = default_nh;
  int n = 0;
  int low = 1, high = 128;
  while (low <= high) {
    const int mid = (low + high) / 2;
    ++n;
    bool found = false;
    if (masks[mid] != 0) {
      const Key128 key = mask128(hi, lo, mid);
      u32 slot = static_cast<u32>(flat_hash(key.hi, key.lo)) & masks[mid];
      while (slots[offsets[mid] + slot].occupied != 0) {
        const Slot& s = slots[offsets[mid] + slot];
        if (s.key_hi == key.hi && s.key_lo == key.lo) {
          best = s.bmp;
          found = true;
          break;
        }
        slot = (slot + 1) & masks[mid];
      }
    }
    if (found) {
      low = mid + 1;
    } else {
      high = mid - 1;
    }
  }
  if (probes != nullptr) *probes = n;
  return best;
}

void Ipv6FlatTable::lookup_batch_in_arrays(const Slot* slots, const u32* offsets,
                                           const u32* masks, const u64* keys,
                                           NextHop default_nh, NextHop* out, std::size_t n,
                                           u64* total_probes) {
  // Walks the binary search of up to kBatchInFlight keys in lockstep. Each
  // wave first computes every live key's hash slot for its current level and
  // prefetches it (part A), then resolves all the probes (part B). The ≤7
  // dependent probes of a single key are unavoidable latency; across keys
  // they are independent, so the group overlaps them.
  u64 probes_acc = 0;
  for (std::size_t base = 0; base < n; base += kBatchInFlight) {
    const std::size_t m = std::min(kBatchInFlight, n - base);
    int low[kBatchInFlight];
    int high[kBatchInFlight];
    int midk[kBatchInFlight];
    NextHop best[kBatchInFlight];
    Key128 key[kBatchInFlight];
    u32 slot[kBatchInFlight];
    bool probing[kBatchInFlight];
    for (std::size_t k = 0; k < m; ++k) {
      low[k] = 1;
      high[k] = 128;
      best[k] = default_nh;
    }
    bool any = true;
    while (any) {
      // Part A: advance each live key past empty levels (no memory access,
      // same accounting as the scalar path), then hash and prefetch the slot
      // of its first non-empty level.
      for (std::size_t k = 0; k < m; ++k) {
        probing[k] = false;
        int mid = 0;
        while (low[k] <= high[k]) {
          mid = (low[k] + high[k]) / 2;
          ++probes_acc;
          if (masks[mid] != 0) break;
          high[k] = mid - 1;
        }
        if (low[k] > high[k]) continue;
        midk[k] = mid;
        key[k] = mask128(keys[2 * (base + k)], keys[2 * (base + k) + 1], mid);
        slot[k] = static_cast<u32>(flat_hash(key[k].hi, key[k].lo)) & masks[mid];
        __builtin_prefetch(&slots[offsets[mid] + slot[k]], 0, 1);
        probing[k] = true;
      }
      // Part B: resolve every prefetched probe and update the search range.
      any = false;
      for (std::size_t k = 0; k < m; ++k) {
        if (probing[k]) {
          const int mid = midk[k];
          bool found = false;
          u32 s_idx = slot[k];
          while (slots[offsets[mid] + s_idx].occupied != 0) {
            const Slot& s = slots[offsets[mid] + s_idx];
            if (s.key_hi == key[k].hi && s.key_lo == key[k].lo) {
              best[k] = s.bmp;
              found = true;
              break;
            }
            s_idx = (s_idx + 1) & masks[mid];
          }
          if (found) {
            low[k] = mid + 1;
          } else {
            high[k] = mid - 1;
          }
        }
        if (low[k] <= high[k]) any = true;
      }
    }
    for (std::size_t k = 0; k < m; ++k) out[base + k] = best[k];
  }
  if (total_probes != nullptr) *total_probes += probes_acc;
}

}  // namespace ps::route
