// IPv6 longest-prefix matching by binary search on prefix lengths
// (Waldvogel, Varghese, Turner, Plattner, SIGCOMM'97) — the algorithm of
// section 6.2.2. Per-length hash tables hold prefixes plus "markers" with
// precomputed best-matching prefixes, so a lookup needs at most
// ceil(log2(128)) = 7 hash probes and never backtracks. The paper cites
// exactly these seven memory accesses per lookup.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "net/addr.hpp"
#include "route/ipv4_table.hpp"  // NextHop / kNoRoute

namespace ps::route {

struct Ipv6Prefix {
  net::Ipv6Addr addr;
  u8 length = 0;  // 0..128
  NextHop next_hop = kNoRoute;
};

/// A 128-bit value as two host-order words (hi = bits 127..64).
struct Key128 {
  u64 hi = 0;
  u64 lo = 0;
  bool operator==(const Key128&) const = default;
};

struct Key128Hash {
  std::size_t operator()(const Key128& k) const noexcept {
    u64 x = k.hi * 0x9e3779b97f4a7c15ULL ^ k.lo;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

/// First `bits` bits of (hi, lo), rest zeroed. bits in [0, 128].
Key128 mask128(u64 hi, u64 lo, int bits);

/// Reference LPM: a binary trie over up to 128 bits. Used for marker
/// precomputation at build time and as the test oracle.
class Ipv6ReferenceLpm {
 public:
  Ipv6ReferenceLpm();
  ~Ipv6ReferenceLpm();
  Ipv6ReferenceLpm(Ipv6ReferenceLpm&&) noexcept;
  Ipv6ReferenceLpm& operator=(Ipv6ReferenceLpm&&) noexcept;

  void insert(const Ipv6Prefix& prefix);
  void build(std::span<const Ipv6Prefix> prefixes);

  /// Longest matching prefix with length <= max_length.
  NextHop lookup(const net::Ipv6Addr& addr, int max_length = 128) const;
  NextHop lookup_key(const Key128& key, int max_length = 128) const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
};

/// Flattened, GPU-friendly layout: one open-addressing (linear probing)
/// array per prefix length, all levels concatenated. This is what gets
/// copied into device memory; the GPU kernel and CPU fast path share
/// lookup_in_arrays().
class Ipv6FlatTable {
 public:
  struct Slot {
    u64 key_hi = 0;
    u64 key_lo = 0;
    u16 bmp = kNoRoute;  // best-matching prefix at this marker/prefix
    u16 occupied = 0;
  };

  std::span<const Slot> slots() const { return slots_; }
  std::span<const u32> level_offsets() const { return {level_offset_.data(), 129}; }
  std::span<const u32> level_masks() const { return {level_mask_.data(), 129}; }
  NextHop default_route() const { return default_nh_; }

  /// The shared lookup routine over raw arrays (runs unmodified as the GPU
  /// kernel body). `probes` counts hash-table memory accesses (<= 7).
  static NextHop lookup_in_arrays(const Slot* slots, const u32* offsets, const u32* masks,
                                  u64 hi, u64 lo, NextHop default_nh, int* probes = nullptr);

  NextHop lookup(const net::Ipv6Addr& addr, int* probes = nullptr) const {
    return lookup_in_arrays(slots_.data(), level_offset_.data(), level_mask_.data(),
                            addr.hi64(), addr.lo64(), default_nh_, probes);
  }

  /// Batched LPM lookup. `keys` is interleaved host-order words — key j is
  /// (keys[2*j] = hi, keys[2*j+1] = lo), the same layout the shader stages
  /// into `gpu_input`. Walks the binary search of `kBatchInFlight` keys in
  /// lockstep, level wave by level wave, prefetching every in-flight key's
  /// hash slot before any is probed so the ≤7 dependent probes of one key
  /// overlap with the other keys' instead of serialising. When non-null,
  /// `total_probes` accumulates hash-table accesses across all n keys.
  void lookup_batch(const u64* keys, NextHop* out, std::size_t n,
                    u64* total_probes = nullptr) const {
    lookup_batch_in_arrays(slots_.data(), level_offset_.data(), level_mask_.data(), keys,
                           default_nh_, out, n, total_probes);
  }

  /// The shared batched routine over raw arrays.
  static void lookup_batch_in_arrays(const Slot* slots, const u32* offsets, const u32* masks,
                                     const u64* keys, NextHop default_nh, NextHop* out,
                                     std::size_t n, u64* total_probes = nullptr);

  /// Keys kept in flight by lookup_batch. Wider than Ipv4Table's group:
  /// each key carries up to 7 dependent probes, so more lanes are needed
  /// to keep the memory system busy while any one lane's chain stalls.
  static constexpr std::size_t kBatchInFlight = 32;

 private:
  friend class Ipv6Table;
  std::vector<Slot> slots_;
  std::array<u32, 129> level_offset_{};  // slot index of level L's array
  std::array<u32, 129> level_mask_{};    // capacity-1 of level L (0 = empty)
  NextHop default_nh_ = kNoRoute;
};

class Ipv6Table {
 public:
  /// Rebuild from a prefix set: inserts prefixes and binary-search markers,
  /// then precomputes each entry's best-matching prefix via the reference
  /// trie so lookups never backtrack.
  void build(std::span<const Ipv6Prefix> prefixes);

  /// LPM lookup; `probes` receives the number of hash probes (<= 7).
  NextHop lookup(const net::Ipv6Addr& addr, int* probes = nullptr) const;

  std::size_t prefix_count() const { return prefix_count_; }
  std::size_t marker_count() const { return marker_count_; }

  /// Flatten into the GPU layout.
  Ipv6FlatTable flatten() const;

 private:
  struct Entry {
    bool is_prefix = false;
    NextHop nh = kNoRoute;   // valid when is_prefix
    NextHop bmp = kNoRoute;  // best-matching prefix for these bits
  };
  using LevelMap = std::unordered_map<Key128, Entry, Key128Hash>;

  std::array<LevelMap, 129> levels_{};  // index = prefix length 1..128
  NextHop default_nh_ = kNoRoute;
  std::size_t prefix_count_ = 0;
  std::size_t marker_count_ = 0;
};

}  // namespace ps::route
