// DIR-24-8-BASIC IPv4 forwarding table (Gupta, Lin, McKeown, INFOCOM'98),
// the lookup algorithm of section 6.2.1: next hops for every possible
// 24-bit prefix in one flat table (TBL24) plus 256-entry overflow chunks
// (TBLlong) for the ~3% of prefixes longer than /24. One memory access per
// lookup in the common case, two in the worst case.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/addr.hpp"

namespace ps::route {

/// Next-hop handle; in this repository it is the egress port index.
using NextHop = u16;
inline constexpr NextHop kNoRoute = 0x7fff;  // 15-bit next-hop space, all-ones

struct Ipv4Prefix {
  net::Ipv4Addr addr;
  u8 length = 0;  // 0..32
  NextHop next_hop = kNoRoute;

  u32 network() const { return length == 0 ? 0 : (addr.value & ~((u64{1} << (32 - length)) - 1)); }
  bool matches(net::Ipv4Addr a) const {
    if (length == 0) return true;
    const u32 mask = static_cast<u32>(~((u64{1} << (32 - length)) - 1));
    return (a.value & mask) == (addr.value & mask);
  }
};

/// One route change, pre-resolved against the RIB by the control plane so
/// the table mutation itself is RIB-free: a withdraw carries the next hop
/// and depth of the longest strictly-shorter covering prefix (the route
/// that becomes the LPM for the withdrawn range), an announce carries
/// whether it inserts a new prefix or replaces an existing one's next hop.
struct ResolvedIpv4Op {
  Ipv4Prefix prefix;
  bool announce = true;
  /// Announce only: true when the prefix was not previously in the RIB
  /// (maintains prefix_count()).
  bool is_new = false;
  /// Withdraw only: the covering route the freed range falls back to
  /// (kNoRoute / depth 0 when the withdrawn prefix had no parent).
  NextHop parent_nh = kNoRoute;
  u8 parent_depth = 0;
};

class Ipv4Table {
 public:
  Ipv4Table();

  /// Build the table from a prefix set (longest-prefix semantics; when the
  /// same prefix appears twice the last next hop wins). Used for the
  /// initial load and for the from-scratch oracle; steady-state churn goes
  /// through apply_resolved().
  void build(std::span<const Ipv4Prefix> prefixes);

  /// Incremental DIR-24-8 update (the rte_lpm depth-metadata scheme): an
  /// announce of length L overwrites exactly the entries whose current
  /// depth is <= L inside the prefix's range; a withdraw resets entries at
  /// depth == L to the pre-resolved parent. Touches only the TBL24 range
  /// and TBLlong chunks the ops cover — the whole point versus build().
  /// Lookup results afterwards are identical to build() over the updated
  /// RIB (overflow chunks are never deallocated on withdraw, so raw chunk
  /// layout may differ; lookups cannot tell). Returns table slots written,
  /// the per-batch work metric bench_fib_churn reports.
  std::size_t apply_resolved(std::span<const ResolvedIpv4Op> ops);

  /// Longest-prefix-match lookup. `probes`, when non-null, receives the
  /// number of memory accesses performed (1 or 2) for cost accounting.
  NextHop lookup(net::Ipv4Addr addr, int* probes = nullptr) const;

  std::size_t prefix_count() const { return prefix_count_; }
  std::size_t overflow_chunks() const { return tbl_long_.size() / kChunk; }

  /// Raw tables, for copying into GPU device memory. The GPU kernel and
  /// the CPU path share lookup_in_arrays() — the same algorithm on both
  /// processors, exactly as the paper ports it (section 5.5).
  std::span<const u16> tbl24() const { return tbl24_; }
  std::span<const u16> tbl_long() const { return tbl_long_; }

  /// The shared lookup routine over raw arrays.
  static NextHop lookup_in_arrays(const u16* tbl24, const u16* tbl_long, u32 addr,
                                  int* probes = nullptr) {
    const u16 entry = tbl24[addr >> 8];
    if ((entry & kLongFlag) == 0) {
      if (probes != nullptr) *probes = 1;
      return entry;
    }
    if (probes != nullptr) *probes = 2;
    const u32 chunk = entry & ~kLongFlag;
    return tbl_long[chunk * kChunk + (addr & 0xff)];
  }

  /// Batched LPM lookup: resolves `n` keys with `kBatchInFlight` lookups in
  /// flight at once. DIR-24-8 is one-to-two dependent loads per key, so a
  /// scalar loop serialises on DRAM latency; interleaving issues the TBL24
  /// loads of the whole group before any TBLlong load is needed, and
  /// software-prefetches both tables' cache lines, converting the per-key
  /// miss latency into memory-level parallelism (the CPU-side analog of the
  /// paper's GPU batching, section 5).
  void lookup_batch(const u32* keys, NextHop* out, std::size_t n) const {
    lookup_batch_in_arrays(tbl24_.data(), tbl_long_.data(), keys, out, n);
  }

  /// The shared batched routine over raw arrays. Software-pipelined: the
  /// TBL24 lines of group g+2 are prefetched while group g resolves, so
  /// every prefetch has two groups' worth of work (~16 lookups) to complete
  /// before its line is demanded — the prefetch distance that converts
  /// per-key miss latency into memory-level parallelism.
  static void lookup_batch_in_arrays(const u16* tbl24, const u16* tbl_long, const u32* keys,
                                     NextHop* out, std::size_t n) {
    constexpr std::size_t kGroup = kBatchInFlight;
    std::size_t i = 0;
    if (n >= 3 * kGroup) {
      for (std::size_t k = 0; k < 2 * kGroup; ++k) {
        __builtin_prefetch(&tbl24[keys[k] >> 8], 0, 1);
      }
      for (; i + 3 * kGroup <= n; i += kGroup) {
        for (std::size_t k = 0; k < kGroup; ++k) {
          __builtin_prefetch(&tbl24[keys[i + 2 * kGroup + k] >> 8], 0, 1);
        }
        resolve_group(tbl24, tbl_long, keys + i, out + i);
      }
    }
    // Up to two already-prefetched groups remain, then a scalar tail.
    for (; i + kGroup <= n; i += kGroup) {
      resolve_group(tbl24, tbl_long, keys + i, out + i);
    }
    for (; i < n; ++i) out[i] = lookup_in_arrays(tbl24, tbl_long, keys[i]);
  }

  static constexpr u16 kLongFlag = 0x8000;
  static constexpr u32 kChunk = 256;
  /// Keys kept in flight by lookup_batch. Sized to the calibrated
  /// memory-level parallelism of one core (perf::kCpuMlpSingleCore = 6)
  /// rounded up to a power of two.
  static constexpr std::size_t kBatchInFlight = 8;

 private:
  /// One group of kBatchInFlight keys: load every TBL24 entry (independent
  /// loads, so the misses overlap), prefetch the TBLlong line for the
  /// overflow minority (~3% of prefixes are longer than /24), then resolve.
  static void resolve_group(const u16* tbl24, const u16* tbl_long, const u32* keys,
                            NextHop* out) {
    u16 entry[kBatchInFlight];
    for (std::size_t k = 0; k < kBatchInFlight; ++k) {
      entry[k] = tbl24[keys[k] >> 8];
    }
    for (std::size_t k = 0; k < kBatchInFlight; ++k) {
      if ((entry[k] & kLongFlag) != 0) {
        const u32 chunk = entry[k] & ~kLongFlag;
        __builtin_prefetch(&tbl_long[chunk * kChunk + (keys[k] & 0xff)], 0, 1);
      }
    }
    for (std::size_t k = 0; k < kBatchInFlight; ++k) {
      if ((entry[k] & kLongFlag) == 0) {
        out[k] = entry[k];
      } else {
        const u32 chunk = entry[k] & ~kLongFlag;
        out[k] = tbl_long[chunk * kChunk + (keys[k] & 0xff)];
      }
    }
  }

  std::size_t apply_one(const ResolvedIpv4Op& op);
  /// Allocate (or find) the overflow chunk under tbl24_[idx24], seeding a
  /// fresh chunk with the entry and depth currently covering that /24.
  u32 chunk_for(u32 idx24);

  std::vector<u16> tbl24_;     // 2^24 entries
  std::vector<u16> tbl_long_;  // kChunk entries per overflow chunk
  /// Depth metadata mirroring tbl24_/tbl_long_: the prefix length of the
  /// route each slot currently resolves to (0 for both "no route" and a
  /// /0 default — apply_resolved treats them identically, correctly).
  /// Only the control plane reads or writes these; lookups never touch
  /// them, so they cost no data-path cache footprint.
  std::vector<u8> depth24_;
  std::vector<u8> depth_long_;
  std::size_t prefix_count_ = 0;
};

/// Reference LPM for property testing: linear scan over all prefixes.
class Ipv4ReferenceLpm {
 public:
  void build(std::span<const Ipv4Prefix> prefixes);
  NextHop lookup(net::Ipv4Addr addr) const;

 private:
  std::vector<Ipv4Prefix> prefixes_;  // sorted by descending length
};

}  // namespace ps::route
