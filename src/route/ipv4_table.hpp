// DIR-24-8-BASIC IPv4 forwarding table (Gupta, Lin, McKeown, INFOCOM'98),
// the lookup algorithm of section 6.2.1: next hops for every possible
// 24-bit prefix in one flat table (TBL24) plus 256-entry overflow chunks
// (TBLlong) for the ~3% of prefixes longer than /24. One memory access per
// lookup in the common case, two in the worst case.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/addr.hpp"

namespace ps::route {

/// Next-hop handle; in this repository it is the egress port index.
using NextHop = u16;
inline constexpr NextHop kNoRoute = 0x7fff;  // 15-bit next-hop space, all-ones

struct Ipv4Prefix {
  net::Ipv4Addr addr;
  u8 length = 0;  // 0..32
  NextHop next_hop = kNoRoute;

  u32 network() const { return length == 0 ? 0 : (addr.value & ~((u64{1} << (32 - length)) - 1)); }
  bool matches(net::Ipv4Addr a) const {
    if (length == 0) return true;
    const u32 mask = static_cast<u32>(~((u64{1} << (32 - length)) - 1));
    return (a.value & mask) == (addr.value & mask);
  }
};

class Ipv4Table {
 public:
  Ipv4Table();

  /// Build the table from a prefix set (longest-prefix semantics; when the
  /// same prefix appears twice the last next hop wins). The paper treats
  /// tables as static (section 6), so updates are whole-table rebuilds.
  void build(std::span<const Ipv4Prefix> prefixes);

  /// Longest-prefix-match lookup. `probes`, when non-null, receives the
  /// number of memory accesses performed (1 or 2) for cost accounting.
  NextHop lookup(net::Ipv4Addr addr, int* probes = nullptr) const;

  std::size_t prefix_count() const { return prefix_count_; }
  std::size_t overflow_chunks() const { return tbl_long_.size() / kChunk; }

  /// Raw tables, for copying into GPU device memory. The GPU kernel and
  /// the CPU path share lookup_in_arrays() — the same algorithm on both
  /// processors, exactly as the paper ports it (section 5.5).
  std::span<const u16> tbl24() const { return tbl24_; }
  std::span<const u16> tbl_long() const { return tbl_long_; }

  /// The shared lookup routine over raw arrays.
  static NextHop lookup_in_arrays(const u16* tbl24, const u16* tbl_long, u32 addr,
                                  int* probes = nullptr) {
    const u16 entry = tbl24[addr >> 8];
    if ((entry & kLongFlag) == 0) {
      if (probes != nullptr) *probes = 1;
      return entry;
    }
    if (probes != nullptr) *probes = 2;
    const u32 chunk = entry & ~kLongFlag;
    return tbl_long[chunk * kChunk + (addr & 0xff)];
  }

  static constexpr u16 kLongFlag = 0x8000;
  static constexpr u32 kChunk = 256;

 private:
  std::vector<u16> tbl24_;     // 2^24 entries
  std::vector<u16> tbl_long_;  // kChunk entries per overflow chunk
  std::size_t prefix_count_ = 0;
};

/// Reference LPM for property testing: linear scan over all prefixes.
class Ipv4ReferenceLpm {
 public:
  void build(std::span<const Ipv4Prefix> prefixes);
  NextHop lookup(net::Ipv4Addr addr) const;

 private:
  std::vector<Ipv4Prefix> prefixes_;  // sorted by descending length
};

}  // namespace ps::route
