// FIB updater thread: the control plane as a supervised fault domain.
//
// Announce/withdraw calls land in the FibManager's pending queue from any
// thread; this thread is the single committer, pumping batches through
// try_commit() under the retry/backoff discipline. A rolled-back batch
// (control.fib_update.alloc_fail / .crash_mid_batch) stays queued and is
// retried after a bounded exponential backoff, so a burst of faults delays
// churn but never drops or reorders a route update. The thread carries a
// Heartbeat; attach_supervisor() registers it so a wedged updater
// (control.fib_update.stall) is detected like any hung worker, kicked by
// the supervisor's recovery, and churn resumes — any in-flight batch was
// either fully published or already rolled back to the queue, so recovery
// never sees a torn generation.
#pragma once

#include <chrono>
#include <thread>

#include "common/atomic_shim.hpp"
#include "common/heartbeat.hpp"
#include "common/thread_annotations.hpp"
#include "fault/fault_injector.hpp"
#include "route/fib_manager.hpp"
#include "supervise/supervisor.hpp"

namespace ps::route {

struct FibUpdaterConfig {
  /// Queue-empty poll interval (the updater sleeps on a condvar, so an
  /// explicit kick() or stop() wakes it immediately).
  std::chrono::milliseconds poll_interval{1};
  /// First retry delay after a rolled-back commit; doubles per consecutive
  /// rollback up to backoff_cap, resets on success.
  std::chrono::microseconds backoff_base{50};
  std::chrono::microseconds backoff_cap{5000};
};

class FibUpdater {
 public:
  FibUpdater(Ipv4Fib& fib, FibUpdaterConfig config = {},
             fault::FaultInjector* injector = nullptr);
  ~FibUpdater();

  FibUpdater(const FibUpdater&) = delete;
  FibUpdater& operator=(const FibUpdater&) = delete;

  /// Spawn the updater thread. Idempotent.
  void start();
  /// Stop and join. Pending updates stay queued in the FibManager.
  void stop();

  /// Unwedge a stalled updater (the supervisor's recovery action; also
  /// usable directly in tests). Safe from any thread, any time.
  void kick();

  /// Block until every update queued so far is published (tests/benches).
  /// The updater must be running; faults may delay but not prevent this —
  /// callers arm bounded fault windows.
  void drain();

  /// Register this thread with a supervisor: stall -> kick. Returns the
  /// supervisor thread id. Call before supervisor.start().
  int attach_supervisor(supervise::Supervisor& supervisor);

  const Heartbeat* heartbeat() const { return &hb_; }

  u64 commits() const { return commits_.load(std::memory_order_relaxed); }
  u64 rollbacks() const { return rollbacks_.load(std::memory_order_relaxed); }
  /// Times a stall-wedge was broken by kick().
  u64 stall_recoveries() const { return stall_recoveries_.load(std::memory_order_relaxed); }

 private:
  void run();
  /// Wedge (heartbeat silent) until kick() or stop(). Returns false when
  /// stopping.
  bool wedge_until_kicked();

  Ipv4Fib& fib_;
  FibUpdaterConfig config_;
  fault::FaultInjector* injector_;

  Heartbeat hb_;
  std::thread thread_;  // start()/stop() caller's thread only

  Mutex mu_;
  CondVar cv_;
  bool running_ GUARDED_BY(mu_) = false;
  bool stop_requested_ GUARDED_BY(mu_) = false;
  bool kicked_ GUARDED_BY(mu_) = false;
  bool committing_ GUARDED_BY(mu_) = false;

  // mc: fib.updater.counter -- single-writer relaxed progress counters
  ps::atomic<u64> commits_{0};
  // mc: fib.updater.counter
  ps::atomic<u64> rollbacks_{0};
  // mc: fib.updater.counter
  ps::atomic<u64> stall_recoveries_{0};
};

}  // namespace ps::route
