#include "route/fib_updater.hpp"

#include <algorithm>

namespace ps::route {

FibUpdater::FibUpdater(Ipv4Fib& fib, FibUpdaterConfig config, fault::FaultInjector* injector)
    : fib_(fib), config_(config), injector_(injector) {}

FibUpdater::~FibUpdater() { stop(); }

void FibUpdater::start() {
  {
    MutexLock lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    kicked_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void FibUpdater::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  MutexLock lock(mu_);
  running_ = false;
}

void FibUpdater::kick() {
  {
    MutexLock lock(mu_);
    kicked_ = true;
  }
  cv_.notify_all();
}

void FibUpdater::drain() {
  // Commit progress is the updater's job; we only wait and re-check. The
  // condvar is notified after every commit attempt.
  MutexLock lock(mu_);
  while ((fib_.pending_updates() > 0 || committing_) && !stop_requested_) {
    cv_.wait_for(mu_, config_.poll_interval);
  }
}

int FibUpdater::attach_supervisor(supervise::Supervisor& supervisor) {
  return supervisor.add_thread(
      "fib-updater", supervise::ThreadKind::kOther, &hb_,
      /*on_stall=*/[this](const supervise::StallEvent&) { kick(); },
      /*on_recover=*/{});
}

bool FibUpdater::wedge_until_kicked() {
  // Deterministic wedge: heartbeat stays silent so the supervisor's
  // stall detector fires; its recovery handler kick()s us back to life.
  MutexLock lock(mu_);
  while (!kicked_ && !stop_requested_) {
    cv_.wait(mu_);
  }
  if (kicked_) {
    kicked_ = false;
    stall_recoveries_.fetch_add(1, std::memory_order_relaxed);
  }
  return !stop_requested_;
}

void FibUpdater::run() {
  auto backoff = config_.backoff_base;
  while (true) {
    hb_.beat();

    if (injector_ != nullptr && injector_->should_fire(fault::Point::kFibUpdateStall)) {
      if (!wedge_until_kicked()) return;
      continue;  // re-beat before the next attempt
    }

    if (fib_.pending_updates() == 0) {
      MutexLock lock(mu_);
      if (stop_requested_) return;
      cv_.wait_for(mu_, config_.poll_interval);
      continue;
    }

    // committing_ covers the publication gap: pending empties the moment
    // try_commit drains the batch, but drain() must not return until the
    // new generation is actually published (or the batch re-queued).
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
      committing_ = true;
    }
    const CommitResult result = fib_.try_commit(injector_);
    {
      MutexLock lock(mu_);
      committing_ = false;
    }
    if (result.status == CommitStatus::kCommitted) {
      commits_.fetch_add(1, std::memory_order_relaxed);
      hb_.advance(result.ops);
      backoff = config_.backoff_base;
      cv_.notify_all();  // drain() waiters
      continue;
    }
    if (result.status == CommitStatus::kRolledBack) {
      rollbacks_.fetch_add(1, std::memory_order_relaxed);
      cv_.notify_all();
      // Bounded exponential backoff before retrying the re-queued batch;
      // stop() must still interrupt the wait.
      MutexLock lock(mu_);
      if (stop_requested_) return;
      cv_.wait_for(mu_, backoff);
      backoff = std::min(backoff * 2, std::chrono::microseconds(config_.backoff_cap));
    }
  }
}

}  // namespace ps::route
