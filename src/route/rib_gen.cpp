#include "route/rib_gen.hpp"

#include <array>
#include <unordered_map>
#include <unordered_set>

namespace ps::route {

namespace {

// Approximate length distribution of the 2009 RouteViews table: /24
// dominates (~53%), /22-/23 around a quarter, classic /16 and /19-/21
// blocks most of the rest, 3% longer than /24 (the paper quotes the 3%).
constexpr std::array<double, 33> kIpv4LengthWeights = [] {
  std::array<double, 33> w{};
  w[8] = 0.0002;
  w[9] = 0.0004;
  w[10] = 0.0008;
  w[11] = 0.0015;
  w[12] = 0.0025;
  w[13] = 0.0045;
  w[14] = 0.008;
  w[15] = 0.009;
  w[16] = 0.047;
  w[17] = 0.023;
  w[18] = 0.035;
  w[19] = 0.060;
  w[20] = 0.072;
  w[21] = 0.078;
  w[22] = 0.106;
  w[23] = 0.112;
  w[24] = 0.4101;  // /24 dominates; weights below total exactly 1.0
  w[25] = 0.006;
  w[26] = 0.007;
  w[27] = 0.005;
  w[28] = 0.004;
  w[29] = 0.004;
  w[30] = 0.003;
  w[31] = 0.0003;
  w[32] = 0.0007;
  return w;
}();

// Networks available at a given length with the first octet in [1, 223].
constexpr u64 ipv4_length_capacity(int length) {
  return u64{223} << (length - 8);
}

int sample_ipv4_length(Rng& rng) {
  const double r = rng.next_double();
  double acc = 0.0;
  for (int len = 8; len <= 32; ++len) {
    acc += kIpv4LengthWeights[static_cast<std::size_t>(len)];
    if (r < acc) return len;
  }
  return 24;
}

}  // namespace

double ipv4_length_fraction(int length) {
  if (length < 0 || length > 32) return 0.0;
  double total = 0.0;
  for (const double w : kIpv4LengthWeights) total += w;
  return kIpv4LengthWeights[static_cast<std::size_t>(length)] / total;
}

std::vector<Ipv4Prefix> generate_ipv4_rib(const RibGenConfig& config) {
  Rng rng(config.seed);
  std::vector<Ipv4Prefix> prefixes;
  prefixes.reserve(config.prefix_count);

  // Uniqueness over (network, length).
  std::unordered_set<u64> seen;
  seen.reserve(config.prefix_count * 2);

  // At million-prefix scale the short lengths saturate (there are only
  // 223 usable /8s); once a length class is full, resample rather than
  // draw collisions forever. The surplus lands on the long lengths, which
  // have capacity to spare through a few hundred million prefixes.
  std::array<u64, 33> per_length{};

  while (prefixes.size() < config.prefix_count) {
    const int length = sample_ipv4_length(rng);
    if (per_length[static_cast<std::size_t>(length)] >= ipv4_length_capacity(length)) continue;
    // Bias networks away from reserved space: first octet in [1, 223].
    const u32 first_octet = static_cast<u32>(rng.next_range(1, 223));
    const u32 rest = rng.next_u32() & 0x00ffffff;
    const u32 addr = (first_octet << 24) | rest;
    const u32 mask = length == 0 ? 0 : static_cast<u32>(~((u64{1} << (32 - length)) - 1));
    const u32 network = addr & mask;

    const u64 key = (static_cast<u64>(network) << 8) | static_cast<u64>(length);
    if (!seen.insert(key).second) continue;
    ++per_length[static_cast<std::size_t>(length)];

    prefixes.push_back(Ipv4Prefix{
        .addr = net::Ipv4Addr(network),
        .length = static_cast<u8>(length),
        .next_hop = static_cast<NextHop>(rng.next_below(config.num_next_hops)),
    });
  }
  return prefixes;
}

std::vector<Ipv4ChurnOp> generate_ipv4_churn(std::span<const Ipv4Prefix> base,
                                             std::size_t count, u16 num_next_hops, u64 seed) {
  Rng rng(seed);
  // Live set at the current point in the stream, keyed (network, length).
  std::vector<Ipv4Prefix> live(base.begin(), base.end());
  std::unordered_map<u64, std::size_t> index;
  index.reserve(live.size() * 2);
  const auto key_of = [](const Ipv4Prefix& p) {
    return (static_cast<u64>(p.network()) << 8) | static_cast<u64>(p.length);
  };
  for (std::size_t i = 0; i < live.size(); ++i) index.emplace(key_of(live[i]), i);

  std::vector<Ipv4ChurnOp> ops;
  ops.reserve(count);
  while (ops.size() < count) {
    const u64 roll = rng.next_below(100);
    if (roll < 45 && !live.empty()) {
      // Next-hop replacement on a live prefix (the common BGP case).
      auto& p = live[rng.next_below(live.size())];
      p.next_hop = static_cast<NextHop>(rng.next_below(num_next_hops));
      ops.push_back({p, true});
    } else if (roll < 75 || live.empty()) {
      // Fresh announcement, unique against the live set.
      const int length = sample_ipv4_length(rng);
      const u32 first_octet = static_cast<u32>(rng.next_range(1, 223));
      const u32 addr = (first_octet << 24) | (rng.next_u32() & 0x00ffffff);
      const u32 mask = static_cast<u32>(~((u64{1} << (32 - length)) - 1));
      const Ipv4Prefix p{net::Ipv4Addr(addr & mask), static_cast<u8>(length),
                         static_cast<NextHop>(rng.next_below(num_next_hops))};
      if (index.contains(key_of(p))) continue;
      index.emplace(key_of(p), live.size());
      live.push_back(p);
      ops.push_back({p, true});
    } else {
      // Withdrawal of a live prefix (swap-remove keeps picks O(1)).
      const std::size_t i = rng.next_below(live.size());
      const Ipv4Prefix victim = live[i];
      index.erase(key_of(victim));
      live[i] = live.back();
      live.pop_back();
      if (i < live.size()) index[key_of(live[i])] = i;
      ops.push_back({victim, false});
    }
  }
  return ops;
}

std::vector<Ipv6Prefix> generate_ipv6_rib(std::size_t count, u16 num_next_hops, u64 seed) {
  Rng rng(seed);
  std::vector<Ipv6Prefix> prefixes;
  prefixes.reserve(count);

  std::unordered_set<u64> seen;  // hash of (masked hi, length)
  seen.reserve(count * 2);

  while (prefixes.size() < count) {
    const int length = static_cast<int>(rng.next_range(16, 64));
    const u64 hi = rng.next_u64();
    const Key128 key = mask128(hi, 0, length);

    const u64 dedupe = key.hi * 131 + static_cast<u64>(length);
    if (!seen.insert(dedupe).second) continue;

    prefixes.push_back(Ipv6Prefix{
        .addr = net::Ipv6Addr::from_words(key.hi, 0),
        .length = static_cast<u8>(length),
        .next_hop = static_cast<NextHop>(rng.next_below(num_next_hops)),
    });
  }
  return prefixes;
}

std::vector<u32> sample_covered_ipv4(std::span<const Ipv4Prefix> prefixes, std::size_t count,
                                     u64 seed) {
  Rng rng(seed);
  std::vector<u32> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& p = prefixes[rng.next_below(prefixes.size())];
    const u32 host = p.length >= 32 ? 0 : static_cast<u32>(rng.next_u32() >> p.length);
    pool.push_back(p.network() | host);
  }
  return pool;
}

std::vector<net::Ipv6Addr> sample_covered_ipv6(std::span<const Ipv6Prefix> prefixes,
                                               std::size_t count, u64 seed) {
  Rng rng(seed);
  std::vector<net::Ipv6Addr> pool;
  pool.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto& p = prefixes[rng.next_below(prefixes.size())];
    const u64 host = p.length >= 64 ? 0 : rng.next_u64() >> p.length;
    pool.push_back(net::Ipv6Addr::from_words(p.addr.hi64() | host, rng.next_u64()));
  }
  return pool;
}

}  // namespace ps::route
