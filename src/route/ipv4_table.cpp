#include "route/ipv4_table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ps::route {

Ipv4Table::Ipv4Table() : tbl24_(1u << 24, kNoRoute), depth24_(1u << 24, 0) {}

void Ipv4Table::build(std::span<const Ipv4Prefix> prefixes) {
  std::fill(tbl24_.begin(), tbl24_.end(), kNoRoute);
  std::fill(depth24_.begin(), depth24_.end(), u8{0});
  tbl_long_.clear();
  depth_long_.clear();
  prefix_count_ = prefixes.size();

  // Insert in ascending prefix-length order so longer prefixes overwrite
  // shorter ones — this is what makes flat range-filling implement LPM.
  std::vector<Ipv4Prefix> sorted(prefixes.begin(), prefixes.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Ipv4Prefix& a, const Ipv4Prefix& b) { return a.length < b.length; });

  for (const auto& p : sorted) {
    assert(p.length <= 32);
    assert(p.next_hop < kLongFlag);
    const u32 net = p.network();

    if (p.length <= 24) {
      const u32 first = net >> 8;
      const u32 count = u32{1} << (24 - p.length);
      for (u32 i = 0; i < count; ++i) {
        u16& entry = tbl24_[first + i];
        if (entry & kLongFlag) {
          // A longer (>24) prefix was inserted before us in a duplicate
          // build; cannot happen with length-sorted insertion.
          assert(false && "length-sorted insertion violated");
          continue;
        }
        entry = p.next_hop;
        depth24_[first + i] = p.length;
      }
    } else {
      const u32 chunk = chunk_for(net >> 8);
      const u32 first = net & 0xff;
      const u32 count = u32{1} << (32 - p.length);
      for (u32 i = 0; i < count; ++i) {
        tbl_long_[chunk * kChunk + first + i] = p.next_hop;
        depth_long_[chunk * kChunk + first + i] = p.length;
      }
    }
  }
}

u32 Ipv4Table::chunk_for(u32 idx24) {
  u16& entry = tbl24_[idx24];
  if (entry & kLongFlag) return entry & ~kLongFlag;
  // First >24-bit prefix under this /24: allocate an overflow chunk seeded
  // with the current (shorter-prefix) next hop and its depth.
  const u32 chunk = static_cast<u32>(tbl_long_.size() / kChunk);
  if (chunk >= kLongFlag) throw std::length_error("too many >24-bit prefixes");
  tbl_long_.insert(tbl_long_.end(), kChunk, entry);
  depth_long_.insert(depth_long_.end(), kChunk, depth24_[idx24]);
  entry = static_cast<u16>(kLongFlag | chunk);
  return chunk;
}

std::size_t Ipv4Table::apply_resolved(std::span<const ResolvedIpv4Op> ops) {
  std::size_t written = 0;
  for (const auto& op : ops) written += apply_one(op);
  return written;
}

std::size_t Ipv4Table::apply_one(const ResolvedIpv4Op& op) {
  const auto& p = op.prefix;
  assert(p.length <= 32);
  assert(p.next_hop < kLongFlag);
  const u32 net = p.network();
  std::size_t written = 0;

  if (op.announce) {
    if (p.length <= 24) {
      // Overwrite every slot whose current route is no more specific than
      // us. Flagged /24s descend into their chunk: the chunk's shallow
      // slots (depth <= L) re-resolve to the new route, the deep ones
      // (the >24 prefixes that caused the chunk) are untouched.
      const u32 first = net >> 8;
      const u32 count = u32{1} << (24 - p.length);
      for (u32 i = 0; i < count; ++i) {
        u16& entry = tbl24_[first + i];
        if (entry & kLongFlag) {
          const u32 base = (entry & ~kLongFlag) * kChunk;
          for (u32 s = 0; s < kChunk; ++s) {
            if (depth_long_[base + s] <= p.length) {
              tbl_long_[base + s] = p.next_hop;
              depth_long_[base + s] = p.length;
              ++written;
            }
          }
        } else if (depth24_[first + i] <= p.length) {
          entry = p.next_hop;
          depth24_[first + i] = p.length;
          ++written;
        }
      }
    } else {
      const u32 base = chunk_for(net >> 8) * kChunk;
      const u32 first = net & 0xff;
      const u32 count = u32{1} << (32 - p.length);
      for (u32 i = 0; i < count; ++i) {
        if (depth_long_[base + first + i] <= p.length) {
          tbl_long_[base + first + i] = p.next_hop;
          depth_long_[base + first + i] = p.length;
          ++written;
        }
      }
    }
    if (op.is_new) ++prefix_count_;
    return written;
  }

  // Withdraw: slots at exactly our depth are the ones whose LPM we were;
  // they fall back to the pre-resolved parent. More-specific slots keep
  // their route; shallower slots were never ours. Overflow chunks are
  // never deallocated (layout may diverge from build(); lookups cannot
  // tell, and the next announce under that /24 reuses the chunk).
  assert(p.length == 0 || op.parent_depth < p.length);
  if (p.length <= 24) {
    const u32 first = net >> 8;
    const u32 count = u32{1} << (24 - p.length);
    for (u32 i = 0; i < count; ++i) {
      u16& entry = tbl24_[first + i];
      if (entry & kLongFlag) {
        const u32 base = (entry & ~kLongFlag) * kChunk;
        for (u32 s = 0; s < kChunk; ++s) {
          if (depth_long_[base + s] == p.length) {
            tbl_long_[base + s] = op.parent_nh;
            depth_long_[base + s] = op.parent_depth;
            ++written;
          }
        }
      } else if (depth24_[first + i] == p.length) {
        entry = op.parent_nh;
        depth24_[first + i] = op.parent_depth;
        ++written;
      }
    }
  } else {
    const u16 entry = tbl24_[net >> 8];
    // No chunk means the announce that would have created it never
    // committed; nothing to undo.
    if (entry & kLongFlag) {
      const u32 base = (entry & ~kLongFlag) * kChunk;
      const u32 first = net & 0xff;
      const u32 count = u32{1} << (32 - p.length);
      for (u32 i = 0; i < count; ++i) {
        if (depth_long_[base + first + i] == p.length) {
          tbl_long_[base + first + i] = op.parent_nh;
          depth_long_[base + first + i] = op.parent_depth;
          ++written;
        }
      }
    }
  }
  if (prefix_count_ > 0) --prefix_count_;
  return written;
}

NextHop Ipv4Table::lookup(net::Ipv4Addr addr, int* probes) const {
  return lookup_in_arrays(tbl24_.data(), tbl_long_.data(), addr.value, probes);
}

void Ipv4ReferenceLpm::build(std::span<const Ipv4Prefix> prefixes) {
  prefixes_.assign(prefixes.begin(), prefixes.end());
  // Descending length with stable order: the first match during the scan is
  // the longest; among equal prefixes the later insertion wins, matching
  // Ipv4Table::build's overwrite semantics.
  std::stable_sort(prefixes_.begin(), prefixes_.end(),
                   [](const Ipv4Prefix& a, const Ipv4Prefix& b) { return a.length > b.length; });
}

NextHop Ipv4ReferenceLpm::lookup(net::Ipv4Addr addr) const {
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    // Scan within one length class from the back so the last-inserted
    // duplicate wins, like the rebuild semantics of Ipv4Table.
    const auto& p = prefixes_[i];
    if (!p.matches(addr)) continue;
    NextHop result = p.next_hop;
    for (std::size_t j = i + 1; j < prefixes_.size() && prefixes_[j].length == p.length; ++j) {
      if (prefixes_[j].matches(addr) && prefixes_[j].network() == p.network()) {
        result = prefixes_[j].next_hop;
      }
    }
    return result;
  }
  return kNoRoute;
}

}  // namespace ps::route
