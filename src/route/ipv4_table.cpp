#include "route/ipv4_table.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ps::route {

Ipv4Table::Ipv4Table() : tbl24_(1u << 24, kNoRoute) {}

void Ipv4Table::build(std::span<const Ipv4Prefix> prefixes) {
  std::fill(tbl24_.begin(), tbl24_.end(), kNoRoute);
  tbl_long_.clear();
  prefix_count_ = prefixes.size();

  // Insert in ascending prefix-length order so longer prefixes overwrite
  // shorter ones — this is what makes flat range-filling implement LPM.
  std::vector<Ipv4Prefix> sorted(prefixes.begin(), prefixes.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Ipv4Prefix& a, const Ipv4Prefix& b) { return a.length < b.length; });

  for (const auto& p : sorted) {
    assert(p.length <= 32);
    assert(p.next_hop < kLongFlag);
    const u32 net = p.network();

    if (p.length <= 24) {
      const u32 first = net >> 8;
      const u32 count = u32{1} << (24 - p.length);
      for (u32 i = 0; i < count; ++i) {
        u16& entry = tbl24_[first + i];
        if (entry & kLongFlag) {
          // A longer (>24) prefix was inserted before us in a duplicate
          // build; cannot happen with length-sorted insertion.
          assert(false && "length-sorted insertion violated");
          continue;
        }
        entry = p.next_hop;
      }
    } else {
      const u32 idx24 = net >> 8;
      u16& entry = tbl24_[idx24];
      u32 chunk;
      if (entry & kLongFlag) {
        chunk = entry & ~kLongFlag;
      } else {
        // First >24-bit prefix under this /24: allocate an overflow chunk
        // seeded with the current (shorter-prefix) next hop.
        chunk = static_cast<u32>(tbl_long_.size() / kChunk);
        if (chunk >= kLongFlag) throw std::length_error("too many >24-bit prefixes");
        tbl_long_.insert(tbl_long_.end(), kChunk, entry);
        entry = static_cast<u16>(kLongFlag | chunk);
      }
      const u32 first = net & 0xff;
      const u32 count = u32{1} << (32 - p.length);
      for (u32 i = 0; i < count; ++i) {
        tbl_long_[chunk * kChunk + first + i] = p.next_hop;
      }
    }
  }
}

NextHop Ipv4Table::lookup(net::Ipv4Addr addr, int* probes) const {
  return lookup_in_arrays(tbl24_.data(), tbl_long_.data(), addr.value, probes);
}

void Ipv4ReferenceLpm::build(std::span<const Ipv4Prefix> prefixes) {
  prefixes_.assign(prefixes.begin(), prefixes.end());
  // Descending length with stable order: the first match during the scan is
  // the longest; among equal prefixes the later insertion wins, matching
  // Ipv4Table::build's overwrite semantics.
  std::stable_sort(prefixes_.begin(), prefixes_.end(),
                   [](const Ipv4Prefix& a, const Ipv4Prefix& b) { return a.length > b.length; });
}

NextHop Ipv4ReferenceLpm::lookup(net::Ipv4Addr addr) const {
  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    // Scan within one length class from the back so the last-inserted
    // duplicate wins, like the rebuild semantics of Ipv4Table.
    const auto& p = prefixes_[i];
    if (!p.matches(addr)) continue;
    NextHop result = p.next_hop;
    for (std::size_t j = i + 1; j < prefixes_.size() && prefixes_[j].length == p.length; ++j) {
      if (prefixes_[j].matches(addr) && prefixes_[j].network() == p.network()) {
        result = prefixes_[j].next_hop;
      }
    }
    return result;
  }
  return kNoRoute;
}

}  // namespace ps::route
