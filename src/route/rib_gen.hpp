// Synthetic RIB generation (DESIGN.md substitution table).
//
// The paper populates its IPv4 table from the RouteViews BGP snapshot of
// 2009-09-01: 282,797 unique prefixes, 3% longer than /24. We cannot ship
// that snapshot, so we generate a deterministic prefix set matching its
// size and prefix-length histogram — the only properties DIR-24-8
// performance depends on. For IPv6 the paper itself generates 200,000
// random prefixes (section 6.2.2), which we mirror exactly.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "route/ipv4_table.hpp"
#include "route/ipv6_table.hpp"

namespace ps::route {

/// RouteViews-2009 scale.
inline constexpr std::size_t kPaperIpv4PrefixCount = 282'797;
inline constexpr std::size_t kPaperIpv6PrefixCount = 200'000;

struct RibGenConfig {
  std::size_t prefix_count = kPaperIpv4PrefixCount;
  u16 num_next_hops = 8;  // egress ports of the paper's server
  u64 seed = 2010;
};

/// Deterministic IPv4 prefix set with a 2009-BGP-like length histogram
/// (~50% /24, 3% longer than /24, the rest spread over /8../23).
/// Prefixes are unique.
std::vector<Ipv4Prefix> generate_ipv4_rib(const RibGenConfig& config = {});

/// Deterministic random IPv6 prefix set, lengths uniform in [16, 64] as in
/// typical IPv6 tables (nothing longer than /64 is routed); unique.
std::vector<Ipv6Prefix> generate_ipv6_rib(std::size_t count = kPaperIpv6PrefixCount,
                                          u16 num_next_hops = 8, u64 seed = 2010);

/// The empirical prefix-length histogram the IPv4 generator samples from
/// (fractions over lengths 8..32), exposed for tests.
double ipv4_length_fraction(int length);

/// One step of a control-plane churn stream.
struct Ipv4ChurnOp {
  Ipv4Prefix prefix;
  bool announce = true;  // false: withdraw (prefix.next_hop ignored)
};

/// Deterministic announce/withdraw stream over a base RIB: a mix of
/// next-hop replacements on live prefixes, fresh announcements, and
/// withdrawals. The stream is internally consistent — every withdrawal
/// targets a prefix live at that point (base RIB plus earlier
/// announcements, minus earlier withdrawals), so replaying it in order
/// through FibManager::announce/withdraw never fails. Drives the churn
/// chaos test and bench_fib_churn.
std::vector<Ipv4ChurnOp> generate_ipv4_churn(std::span<const Ipv4Prefix> base,
                                             std::size_t count,
                                             u16 num_next_hops = 8, u64 seed = 2010);

/// Destination pools covered by a RIB: each address lies inside a random
/// prefix of the table (random host bits), so every generated packet has a
/// route. Used by the throughput benches (a miss would drop the packet and
/// understate TX load — the paper's generator keeps the router forwarding).
std::vector<u32> sample_covered_ipv4(std::span<const Ipv4Prefix> prefixes, std::size_t count,
                                     u64 seed = 77);
std::vector<net::Ipv6Addr> sample_covered_ipv6(std::span<const Ipv6Prefix> prefixes,
                                               std::size_t count, u64 seed = 77);

}  // namespace ps::route
