// mc::atomic<T> — the model-checked std::atomic stand-in.
//
// Same call surface as std::atomic (the subset src/ uses, explicit
// memory_order everywhere), but every operation funnels into the ps::mc
// runtime, which records it in the location's modification history,
// offers schedule/reads-from choices to the explorer, and applies the
// declared memory_order's synchronization (vector-clock merges, SC
// publication). Outside an active mc::check() execution the operations
// degrade to plain single-threaded accesses on the mirror value — good
// enough for test-harness code that touches an atomic before/after the
// modeled region.
//
// Values are type-erased through a u64 word (memcpy both ways), which
// caps T at 8 trivially-copyable bytes — every atomic in src/ is an
// integer, bool, enum, or pointer, all of which fit. Arithmetic for
// fetch_add/fetch_sub is computed in T's own domain via a stateless
// lambda passed down as a function pointer, so signed wrap and narrow
// widths behave exactly as std::atomic would.
//
// Model notes:
//  - compare_exchange_weak never fails spuriously here (it forwards to
//    the strong form). Spurious failure only ADDS retry schedules that
//    the explorer already covers through its scheduling choices.
//  - a failed compare_exchange reads the latest store, not a stale one
//    (see mc.hpp "model simplifications").
#pragma once

#include <atomic>
#include <cstring>
#include <type_traits>

#include "common/types.hpp"

namespace ps::mc {

namespace detail {
// Implemented in runtime.cpp. `init` carries the mirror value so a
// location can be registered lazily on first touch (an atomic may be
// constructed before the modeled execution starts).
u64 atomic_load(const void* addr, int mo, u64 init);
void atomic_store(void* addr, u64 val, int mo, u64 init);
u64 atomic_rmw(void* addr, int mo, u64 init, u64 (*apply)(u64, u64), u64 operand,
               const char* what);
bool atomic_cas(void* addr, u64* expected, u64 desired, int mo_ok, int mo_fail,
                u64 init);
void atomic_forget(const void* addr);
void fence_op(int mo);

template <typename T>
inline u64 to_word(T v) {
  static_assert(sizeof(T) <= sizeof(u64) && std::is_trivially_copyable_v<T>,
                "mc::atomic supports trivially-copyable types up to 8 bytes");
  u64 w = 0;
  std::memcpy(&w, &v, sizeof(T));
  return w;
}

template <typename T>
inline T from_word(u64 w) {
  T v{};
  std::memcpy(&v, &w, sizeof(T));
  return v;
}
}  // namespace detail

/// Standalone fence, modeled per C++11 (release fences arm subsequent
/// relaxed stores, acquire fences collect prior relaxed loads, seq_cst
/// fences additionally join the single SC order).
inline void fence(std::memory_order mo) { detail::fence_op(static_cast<int>(mo)); }

template <typename T>
class atomic {
 public:
  using value_type = T;

  atomic() noexcept : v_(T{}) {}
  explicit(false) atomic(T v) noexcept : v_(v) {}
  ~atomic() { detail::atomic_forget(this); }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    return detail::from_word<T>(
        detail::atomic_load(this, static_cast<int>(mo), detail::to_word(v_)));
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    detail::atomic_store(this, detail::to_word(v), static_cast<int>(mo),
                         detail::to_word(v_));
    v_ = v;
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    u64 old = detail::atomic_rmw(
        this, static_cast<int>(mo), detail::to_word(v_),
        [](u64, u64 operand) -> u64 { return operand; }, detail::to_word(v),
        "exchange");
    v_ = v;
    return detail::from_word<T>(old);
  }

  T fetch_add(T delta, std::memory_order mo = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    u64 old = detail::atomic_rmw(
        this, static_cast<int>(mo), detail::to_word(v_),
        [](u64 cur, u64 operand) -> u64 {
          return detail::to_word(static_cast<T>(detail::from_word<T>(cur) +
                                                detail::from_word<T>(operand)));
        },
        detail::to_word(delta), "fetch_add");
    T prev = detail::from_word<T>(old);
    v_ = static_cast<T>(prev + delta);
    return prev;
  }

  T fetch_sub(T delta, std::memory_order mo = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    u64 old = detail::atomic_rmw(
        this, static_cast<int>(mo), detail::to_word(v_),
        [](u64 cur, u64 operand) -> u64 {
          return detail::to_word(static_cast<T>(detail::from_word<T>(cur) -
                                                detail::from_word<T>(operand)));
        },
        detail::to_word(delta), "fetch_sub");
    T prev = detail::from_word<T>(old);
    v_ = static_cast<T>(prev - delta);
    return prev;
  }

  T fetch_or(T bits, std::memory_order mo = std::memory_order_seq_cst)
    requires std::is_integral_v<T>
  {
    u64 old = detail::atomic_rmw(
        this, static_cast<int>(mo), detail::to_word(v_),
        [](u64 cur, u64 operand) -> u64 {
          return detail::to_word(static_cast<T>(detail::from_word<T>(cur) |
                                                detail::from_word<T>(operand)));
        },
        detail::to_word(bits), "fetch_or");
    T prev = detail::from_word<T>(old);
    v_ = static_cast<T>(prev | bits);
    return prev;
  }

  bool compare_exchange_strong(T& expected, T desired, std::memory_order mo_ok,
                               std::memory_order mo_fail) {
    u64 exp = detail::to_word(expected);
    bool ok = detail::atomic_cas(this, &exp, detail::to_word(desired),
                                 static_cast<int>(mo_ok), static_cast<int>(mo_fail),
                                 detail::to_word(v_));
    expected = detail::from_word<T>(exp);
    if (ok) v_ = desired;
    return ok;
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, cas_fail_order(mo));
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order mo_ok,
                             std::memory_order mo_fail) {
    return compare_exchange_strong(expected, desired, mo_ok, mo_fail);
  }

  bool compare_exchange_weak(T& expected, T desired,
                             std::memory_order mo = std::memory_order_seq_cst) {
    return compare_exchange_strong(expected, desired, mo, cas_fail_order(mo));
  }

  explicit(false) operator T() const { return load(); }
  T operator=(T v) {
    store(v);
    return v;
  }

 private:
  static constexpr std::memory_order cas_fail_order(std::memory_order mo) {
    switch (mo) {
      case std::memory_order_acq_rel:
        return std::memory_order_acquire;
      case std::memory_order_release:
        return std::memory_order_relaxed;
      default:
        return mo;
    }
  }

  // Mirror of the modification-order tail; the value plain code sees
  // outside an execution, and the lazy-registration seed inside one.
  T v_;
};

}  // namespace ps::mc
