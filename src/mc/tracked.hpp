// mc::Tracked<T> — data-race detection for the plain (non-atomic) side
// of a protocol.
//
// A weak-memory bug often does NOT change any atomic value a litmus
// could assert on: weakening SpscRing's tail release-store to relaxed
// still delivers every index — what breaks is the happens-before edge
// that made the producer's *payload* write safe to reuse the slot over.
// Interleaving semantics alone would execute that racy access and see a
// plausible value. Tracked<T> closes the hole: it wraps a plain payload
// field and reports every read/write to the runtime, which runs a
// FastTrack-style check (last-writer epoch + reads-since-last-write vs
// the accessing thread's vector clock). Any access not ordered by
// happens-before is a violation, exactly like the C++ data-race rule.
//
// Litmus tests instantiate the real containers over Tracked payloads —
// e.g. SpscRing<mc::Tracked<u64>> — so slot reuse, batch copies, and
// epoch-deferred reclamation are all checked without touching the
// production headers. Outside an active execution every hook is a no-op
// and Tracked<T> behaves as a plain T wrapper.
#pragma once

#include <utility>

namespace ps::mc {

namespace detail {
// Implemented in runtime.cpp; no-ops when no execution is active.
void plain_read(const void* addr);
void plain_write(void* addr);
void plain_forget(const void* addr);
}  // namespace detail

template <typename T>
class Tracked {
 public:
  Tracked() : v_() { detail::plain_write(this); }
  explicit(false) Tracked(const T& v) : v_(v) { detail::plain_write(this); }
  ~Tracked() { detail::plain_forget(this); }

  Tracked(const Tracked& o) : v_((detail::plain_read(&o), o.v_)) {
    detail::plain_write(this);
  }
  // Deliberately NOT noexcept: a racy access is reported by throwing, and
  // a noexcept move would turn that report into std::terminate.
  Tracked(Tracked&& o) : v_((detail::plain_read(&o), std::move(o.v_))) {
    detail::plain_write(this);
  }
  Tracked& operator=(const Tracked& o) {
    detail::plain_read(&o);
    detail::plain_write(this);
    v_ = o.v_;
    return *this;
  }
  Tracked& operator=(Tracked&& o) {
    detail::plain_read(&o);
    detail::plain_write(this);
    v_ = std::move(o.v_);
    return *this;
  }
  Tracked& operator=(const T& v) {
    detail::plain_write(this);
    v_ = v;
    return *this;
  }

  explicit(false) operator T() const {
    detail::plain_read(this);
    return v_;
  }
  T get() const {
    detail::plain_read(this);
    return v_;
  }

 private:
  T v_;
};

}  // namespace ps::mc
