// Runtime hooks for the model-checked mutex and condition variable.
//
// Under PS_MODEL_CHECK, ps::Mutex and ps::CondVar (declared in
// common/thread_annotations.hpp, where the TSA annotations live) route
// through these hooks instead of std::mutex / condition_variable_any:
// lock() parks the virtual thread until the scheduler grants the free
// mutex, unlock() publishes the critical section's vector clock, and
// cv waits enqueue FIFO and NEVER time out — in the model, a timed wait
// whose wakeup never arrives must surface as a deadlock (the lost-
// wakeup oracle), not be papered over by a timeout branch the real code
// only has as a liveness belt-and-suspenders.
//
// Implemented in src/mc/runtime.cpp; every hook no-ops (mutex grants
// immediately) when no modeled execution is active.
#pragma once

namespace ps::mc::detail {

void mutex_lock(void* mu);
void mutex_unlock(void* mu);
bool mutex_try_lock(void* mu);
void mutex_forget(const void* mu);

/// Atomically: release `mu`, enqueue on `cv`, park; after a notify
/// selects this waiter, reacquire `mu` before returning.
void cv_wait(void* cv, void* mu);
void cv_notify_one(void* cv);
void cv_notify_all(void* cv);
void cv_forget(const void* cv);

}  // namespace ps::mc::detail
