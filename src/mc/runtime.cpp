// The ps::mc runtime: cooperative virtual threads + an operational C++11
// weak-memory model + a DFS schedule explorer. See mc.hpp for the
// user-facing contract; this file is the machinery.
//
// Execution model. Virtual threads are ucontext fibers multiplexed on
// the one OS thread that called mc::check() (so a fiber switch is a
// register swap, ~100ns, and nothing here is ever concurrent for real).
// A fiber runs uninterrupted between "visible" operations — atomic
// accesses, fences, mutex/condvar ops, spawn/join/spin_wait. At each
// visible op it parks, presenting the op as a pending descriptor; the
// scheduler picks one enabled thread, resumes it, and the thread
// performs exactly its pending op before running to the next park. That
// yield-before-op protocol is what lets the explorer (a) branch the
// schedule at every visible op and (b) test pending ops against sleep
// sets without executing them.
//
// Memory model (operational, CDSChecker-flavored). Each atomic location
// keeps its full store history; modification order is execution order.
// A load may read any store in a suffix of that history bounded below
// by three rules:
//   coherence — a thread never reads older than what it last read or
//     wrote there (per-thread ratchet);
//   happens-before — a load cannot read a store that was overwritten
//     by another store that happens-before the load (vector clocks:
//     each store records its writer's clock; the newest store whose
//     clock <= the reader's clock is the floor);
//   SC order — seq_cst stores (and relaxed stores promoted by their
//     thread's later seq_cst fence) take a slot in a single global SC
//     sequence; a seq_cst load/fence at SC position k cannot read below
//     the newest store published at or before k. This is what makes the
//     Dekker store-buffering idiom (WakeSignal) come out right: with
//     both fences the stale read is inadmissible, drop either fence and
//     it is admissible again.
// Release/acquire edges merge vector clocks; relaxed loads bank the
// writer's release clock into an "acquire-pending" set that a later
// acquire fence promotes; release fences arm subsequent relaxed stores
// with the fence-point clock; RMWs read the history tail (atomicity)
// and continue release sequences.
//
// Explorer. Depth-first over a trail of (choice-kind, chosen, #alts)
// records; each execution deterministically replays the trail prefix
// and takes first-alternative for fresh choices, then the trail is
// advanced odometer-style. Sleep sets prune schedule choices; a
// preemption bound caps involuntary switches per execution. Violations
// (MC_ASSERT, data race, deadlock, lost wakeup = deadlock, uncaught
// exception) stop the search and report the recorded op trace.
//
// Abort discipline: on violation/truncation/pruning the in-flight
// execution unwinds every live fiber (children first) by resuming it in
// teardown mode, where the park point throws McAbort and every runtime
// hook degrades to a raw, non-parking operation — destructors (epoch
// guards, rings, domains) run to completion so no state or memory leaks
// into the next execution.
#include "mc/mc.hpp"

#include <ucontext.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mc/mc_atomic.hpp"
#include "mc/model_sync.hpp"
#include "mc/tracked.hpp"

namespace ps::mc {
namespace {

constexpr int kMaxThreads = 16;
constexpr std::size_t kFiberStackBytes = 256 * 1024;
constexpr std::size_t kTraceCap = 512;
constexpr u64 kNeverPublished = ~u64{0};

struct McAbort {};

struct VC {
  std::array<u64, kMaxThreads> c{};

  void merge(const VC& o) {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
  bool leq(const VC& o) const {
    for (int i = 0; i < kMaxThreads; ++i) {
      if (c[i] > o.c[i]) return false;
    }
    return true;
  }
};

enum class OpKind : u8 {
  kStart,       // freshly spawned thread: run preamble to its first op
  kLoad,
  kStore,
  kRmw,
  kCas,
  kFence,
  kMutexLock,
  kMutexTryLock,
  kMutexUnlock,
  kCvWait,
  kCvNotify,
  kSpinWait,
  kSpawn,
  kJoin,
};

const char* op_name(OpKind k) {
  switch (k) {
    case OpKind::kStart: return "start";
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kRmw: return "rmw";
    case OpKind::kCas: return "cas";
    case OpKind::kFence: return "fence";
    case OpKind::kMutexLock: return "lock";
    case OpKind::kMutexTryLock: return "try_lock";
    case OpKind::kMutexUnlock: return "unlock";
    case OpKind::kCvWait: return "cv_wait";
    case OpKind::kCvNotify: return "cv_notify";
    case OpKind::kSpinWait: return "spin_wait";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kJoin: return "join";
  }
  return "?";
}

/// A pending visible operation, presented at the park point. `a` is the
/// primary object (atomic / mutex / cv), `b` a secondary one (the mutex
/// of a cv_wait), `arg` op-specific (spin-wait store-count snapshot,
/// join target tid).
struct Op {
  OpKind kind = OpKind::kStart;
  const void* a = nullptr;
  const void* b = nullptr;
  int mo = 0;
  u64 arg = 0;
};

bool op_writes(OpKind k) {
  switch (k) {
    case OpKind::kStore:
    case OpKind::kRmw:
    case OpKind::kCas:
    case OpKind::kMutexLock:
    case OpKind::kMutexTryLock:
    case OpKind::kMutexUnlock:
      return true;
    default:
      return false;
  }
}

/// Dependence over-approximation for sleep sets: may these two ops not
/// commute? Fences, thread ops, condvar ops, and spin-wait are treated
/// as globally dependent (fences constrain every location's admissible
/// sets through SC publication; the rest is rare enough that precision
/// buys nothing). Same-location atomic/mutex ops conflict unless both
/// are loads.
bool conflicts(const Op& x, const Op& y) {
  auto global = [](OpKind k) {
    switch (k) {
      case OpKind::kFence:
      case OpKind::kCvWait:
      case OpKind::kCvNotify:
      case OpKind::kSpawn:
      case OpKind::kJoin:
      case OpKind::kSpinWait:
        return true;
      default:
        return false;
    }
  };
  if (global(x.kind) || global(y.kind)) return true;
  if (x.kind == OpKind::kStart || y.kind == OpKind::kStart) return false;
  if (x.a == y.a && x.a != nullptr) return op_writes(x.kind) || op_writes(y.kind);
  // cv_wait is globally dependent above, so `b` (its mutex) needs no case.
  return false;
}

bool is_acquire(int mo) {
  auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_acquire || m == std::memory_order_consume ||
         m == std::memory_order_acq_rel || m == std::memory_order_seq_cst;
}

bool is_release(int mo) {
  auto m = static_cast<std::memory_order>(mo);
  return m == std::memory_order_release || m == std::memory_order_acq_rel ||
         m == std::memory_order_seq_cst;
}

bool is_seq_cst(int mo) {
  return static_cast<std::memory_order>(mo) == std::memory_order_seq_cst;
}

const char* mo_name(int mo) {
  switch (static_cast<std::memory_order>(mo)) {
    case std::memory_order_relaxed: return "rlx";
    case std::memory_order_consume: return "cns";
    case std::memory_order_acquire: return "acq";
    case std::memory_order_release: return "rel";
    case std::memory_order_acq_rel: return "ar";
    case std::memory_order_seq_cst: return "sc";
  }
  return "?";
}

/// One entry in a location's modification history.
struct StoreRec {
  u64 value = 0;
  int tid = -1;
  VC commit;           ///< writer's clock at the store (HB-overwrite floor)
  VC release;          ///< clock an acquire reader merges
  bool has_release = false;
  u64 publish = kNeverPublished;  ///< SC-order slot, if SC-published
};

struct LocState {
  std::vector<StoreRec> stores;
};

struct MutexState {
  bool held = false;
  int owner = -1;
  VC clock;  ///< clock of the last unlock (merged by the next lock)
};

struct CvState {
  std::vector<int> waiters;  // FIFO
};

/// Plain (non-atomic) access ledger for one Tracked<T> address:
/// FastTrack-style last-writer epoch plus reads-since-last-write.
struct PlainState {
  bool has_write = false;
  int w_tid = -1;
  u64 w_tick = 0;
  std::vector<std::pair<int, u64>> reads;  // (tid, tick)
};

enum class TState : u8 { kRunnable, kBlockedCv, kFinished };

struct TraceEnt {
  u32 step = 0;
  i8 tid = -1;
  OpKind kind = OpKind::kStart;
  i8 mo = 0;
  const void* addr = nullptr;
  u64 value = 0;
  i32 read_idx = -1;  ///< history index a load read from, -1 n/a
  i32 hist_n = 0;     ///< history size at that moment
};

struct Fiber {
  ucontext_t ctx{};
  std::vector<unsigned char> stack;
  std::function<void()> fn;
  TState state = TState::kRunnable;
  bool started = false;
  Op pending;
  const void* cv_mu = nullptr;  ///< mutex to reacquire after a cv wakeup

  VC clock;
  VC fence_rel;               ///< clock at the last release fence
  bool has_fence_rel = false;
  VC acq_pending;             ///< banked release clocks from relaxed loads
  u64 last_sc_fence = 0;      ///< SC-order slot of the last seq_cst fence
  std::vector<std::pair<int, std::size_t>> sc_unpublished;
  std::unordered_map<int, std::size_t> seen;  ///< per-loc coherence floor
  /// A load since the last spin_wait picked a non-tail store. If this
  /// thread then blocks in spin_wait and everything deadlocks, the
  /// "deadlock" is an unfair schedule (the sibling branch where the
  /// load read the fresh value exists and is explored) — prune, don't
  /// report. C++ guarantees eventual store visibility; a spinner
  /// re-reading a stale value forever is not an execution.
  bool stale_since_spin = false;

  struct Tls {
    void* obj = nullptr;
    void (*dtor)(void*) = nullptr;
  };
  std::vector<Tls> tls;
};

struct Choice {
  u8 kind = 0;  // 0 = schedule, 1 = reads-from, 2 = loc registration order
  int chosen = 0;
  int num = 1;
};

constexpr u8 kChoiceSched = 0;
constexpr u8 kChoiceRead = 1;

class Runtime {
 public:
  Outcome run(const Options& opts, const std::function<void()>& body);

  // --- hooks, called from fiber (or raw) context -----------------------
  /// The execution is being dropped (violation recorded, bound hit, or
  /// teardown unwind): every hook degrades to a raw non-parking op so
  /// destructors can run to completion without re-entering the model.
  bool aborting() const {
    return teardown_ || exec_truncated_ || !violation_.empty();
  }
  bool raw() const { return !running_ || aborting() || current_ < 0; }
  bool running() const { return running_; }
  bool teardown() const { return teardown_; }

  u64 atomic_load(const void* addr, int mo, u64 init);
  void atomic_store(void* addr, u64 val, int mo, u64 init);
  u64 atomic_rmw(void* addr, int mo, u64 init, u64 (*apply)(u64, u64), u64 operand,
                 const char* what);
  bool atomic_cas(void* addr, u64* expected, u64 desired, int mo_ok, int mo_fail,
                  u64 init);
  void fence_op(int mo);
  void forget_loc(const void* addr);

  void mutex_lock(void* mu);
  void mutex_unlock(void* mu);
  bool mutex_try_lock(void* mu);
  void mutex_forget(const void* mu) { mutexes_.erase(mu); }
  void cv_wait(void* cv, void* mu);
  void cv_notify(void* cv, bool all);
  void cv_forget(const void* cv) { cvs_.erase(cv); }

  void plain_read(const void* addr);
  void plain_write(void* addr);
  void plain_forget(const void* addr) { plains_.erase(addr); }

  int spawn(std::function<void()> fn);
  void join(int tid);
  void thread_abandoned(int tid);
  void spin_wait_op();
  void fail(const std::string& msg);

  void set_name(const void* addr, const char* n) { names_[addr] = n; }
  int current() const { return current_; }
  std::vector<Fiber::Tls>& current_tls() { return fibers_[current_]->tls; }

  void fiber_main(int tid);

 private:
  // --- exploration driver ---------------------------------------------
  void run_one(const std::function<void()>& body);
  void schedule_loop();
  void abort_all();
  void reset_exec();
  int choose(u8 kind, int num);
  void resume(int tid);
  void park();
  void reach_op(const Op& op);
  bool enabled(int tid) const;

  // --- memory model ----------------------------------------------------
  int ensure_loc(const void* addr, u64 init);
  Fiber& self() { return *fibers_[current_]; }
  void begin_op();  // clock tick + step accounting
  u64 do_load(int loc, int mo, bool count_stale);
  void do_store(int loc, void* addr, u64 val, int mo, bool rmw_prev_release,
                const VC* prev_release);
  void trace(OpKind kind, const void* addr, int mo, u64 value, i32 read_idx,
             i32 hist_n);
  std::string loc_label(const void* addr) const;
  std::string format_trace() const;
  [[noreturn]] void violate(const std::string& msg);
  void check_plain(const PlainState& ps, bool write, const void* addr);

  // persistent across executions
  Options opts_;
  std::vector<Choice> trail_;
  std::size_t pos_ = 0;
  std::unordered_map<const void*, std::string> names_;
  std::vector<std::vector<unsigned char>> stack_pool_;
  u64 pruned_total_ = 0;
  u64 truncated_total_ = 0;

  // per-execution
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::unordered_map<const void*, int> loc_ids_;
  std::vector<LocState> locs_;
  std::unordered_map<const void*, MutexState> mutexes_;
  std::unordered_map<const void*, CvState> cvs_;
  std::unordered_map<const void*, PlainState> plains_;
  std::set<int> sleeping_;
  std::vector<TraceEnt> trace_;
  u64 trace_dropped_ = 0;
  std::string violation_;
  u64 steps_ = 0;
  u64 store_count_ = 0;
  u64 sc_order_ = 0;
  int preemptions_ = 0;
  int stale_reads_ = 0;
  int current_ = -1;
  bool exec_truncated_ = false;
  bool exec_pruned_ = false;

  bool running_ = false;
  bool teardown_ = false;
  ucontext_t sched_ctx_{};
};

Runtime g_runtime;
Runtime* const g_rt = &g_runtime;

void fiber_trampoline() { g_rt->fiber_main(g_rt->current()); }

// ---------------------------------------------------------------------------
// Exploration driver

Outcome Runtime::run(const Options& opts, const std::function<void()>& body) {
  if (running_) {
    throw std::logic_error("mc::check is not reentrant");
  }
  opts_ = opts;
  trail_.clear();
  pruned_total_ = 0;
  truncated_total_ = 0;
  running_ = true;

  Outcome out;
  for (;;) {
    run_one(body);
    out.executions++;
    if (!violation_.empty()) {
      out.ok = false;
      out.error = violation_;
      if (opts_.name != nullptr && opts_.name[0] != '\0') {
        out.error = std::string(opts_.name) + ": " + out.error;
      }
      out.trace = format_trace();
      break;
    }
    // Drop any stale trail suffix (this execution may have ended earlier
    // than the sibling that created those entries), then advance the
    // deepest unexhausted choice, odometer-style.
    trail_.resize(pos_);
    while (!trail_.empty()) {
      Choice& c = trail_.back();
      if (c.chosen + 1 < c.num) {
        c.chosen++;
        break;
      }
      trail_.pop_back();
    }
    if (trail_.empty()) {
      out.exhausted = true;
      break;
    }
    if (out.executions >= opts_.max_executions) break;
  }
  out.pruned = pruned_total_;
  out.truncated = truncated_total_;

  reset_exec();  // free the last execution's fibers/state
  running_ = false;
  return out;
}

void Runtime::reset_exec() {
  for (auto& f : fibers_) {
    if (!f->stack.empty()) stack_pool_.push_back(std::move(f->stack));
  }
  fibers_.clear();
  loc_ids_.clear();
  locs_.clear();
  mutexes_.clear();
  cvs_.clear();
  plains_.clear();
  sleeping_.clear();
  trace_.clear();
  trace_dropped_ = 0;
  violation_.clear();
  steps_ = 0;
  store_count_ = 0;
  sc_order_ = 0;
  preemptions_ = 0;
  stale_reads_ = 0;
  current_ = -1;
  exec_truncated_ = false;
  exec_pruned_ = false;
  teardown_ = false;
  pos_ = 0;
}

void Runtime::run_one(const std::function<void()>& body) {
  reset_exec();
  {
    // Spawn the body as virtual thread 0 (bypasses the visible-op
    // protocol: there is nothing to schedule against yet).
    auto f = std::make_unique<Fiber>();
    f->fn = body;
    f->pending = Op{OpKind::kStart, nullptr, nullptr, 0, 0};
    fibers_.push_back(std::move(f));
  }
  schedule_loop();
  if (!violation_.empty() || exec_truncated_ || exec_pruned_) {
    abort_all();
  }
  if (exec_truncated_) truncated_total_++;
  if (exec_pruned_) pruned_total_++;
}

bool Runtime::enabled(int tid) const {
  const Fiber& f = *fibers_[tid];
  if (f.state != TState::kRunnable) return false;
  switch (f.pending.kind) {
    case OpKind::kMutexLock: {
      auto it = mutexes_.find(f.pending.a);
      return it == mutexes_.end() || !it->second.held;
    }
    case OpKind::kSpinWait:
      return store_count_ > f.pending.arg;
    case OpKind::kJoin:
      return fibers_[static_cast<int>(f.pending.arg)]->state == TState::kFinished;
    default:
      return true;
  }
}

void Runtime::schedule_loop() {
  for (;;) {
    if (!violation_.empty() || exec_truncated_) return;
    if (steps_ > opts_.max_steps) {
      exec_truncated_ = true;
      return;
    }

    std::vector<int> enabled_tids;
    bool live = false;
    for (int t = 0; t < static_cast<int>(fibers_.size()); ++t) {
      if (fibers_[t]->state != TState::kFinished) live = true;
      if (enabled(t)) enabled_tids.push_back(t);
    }
    if (!live) return;  // clean completion
    if (enabled_tids.empty()) {
      for (const auto& f : fibers_) {
        if (f->state == TState::kRunnable &&
            f->pending.kind == OpKind::kSpinWait && f->stale_since_spin) {
          exec_pruned_ = true;  // unfair stale-spin schedule, see Fiber
          return;
        }
      }
      std::string msg = "deadlock: every live thread is blocked —";
      for (int t = 0; t < static_cast<int>(fibers_.size()); ++t) {
        const Fiber& f = *fibers_[t];
        if (f.state == TState::kFinished) continue;
        msg += " T" + std::to_string(t) + "(";
        if (f.state == TState::kBlockedCv) {
          msg += "cv_wait " + loc_label(f.pending.a);
        } else {
          msg += std::string(op_name(f.pending.kind));
          if (f.pending.a != nullptr) msg += " " + loc_label(f.pending.a);
        }
        msg += ")";
      }
      violation_ = msg;
      return;
    }

    std::vector<int> candidates;
    if (opts_.sleep_sets) {
      for (int t : enabled_tids) {
        if (sleeping_.count(t) == 0) candidates.push_back(t);
      }
      if (candidates.empty()) {
        // Every enabled thread is asleep: each of their next transitions
        // was explored in an earlier sibling and nothing dependent has
        // run since, so this whole subtree is redundant.
        exec_pruned_ = true;
        return;
      }
    } else {
      candidates = enabled_tids;
    }

    // Deterministic candidate order: current thread first (continuing is
    // the "free" choice that spends no preemption), then by tid.
    bool cur_enabled = false;
    if (current_ >= 0) {
      for (int t : candidates) cur_enabled = cur_enabled || t == current_;
    }
    if (cur_enabled) {
      std::vector<int> reordered{current_};
      for (int t : candidates) {
        if (t != current_) reordered.push_back(t);
      }
      candidates = std::move(reordered);
      if (opts_.preemption_bound >= 0 && preemptions_ >= opts_.preemption_bound) {
        candidates.resize(1);
      }
    }

    int c = choose(kChoiceSched, static_cast<int>(candidates.size()));
    if (!violation_.empty()) return;
    // Siblings 0..c-1 were fully explored from this node: their threads
    // go to sleep until a dependent op executes.
    if (opts_.sleep_sets) {
      for (int i = 0; i < c; ++i) sleeping_.insert(candidates[i]);
    }
    int t = candidates[c];
    if (cur_enabled && t != current_) preemptions_++;

    Op performed = fibers_[t]->pending;
    steps_++;
    resume(t);

    if (opts_.sleep_sets && !sleeping_.empty()) {
      std::vector<int> wake;
      for (int s : sleeping_) {
        if (conflicts(performed, fibers_[s]->pending)) wake.push_back(s);
      }
      for (int s : wake) sleeping_.erase(s);
    }
  }
}

int Runtime::choose(u8 kind, int num) {
  if (num <= 1) return 0;
  if (pos_ < trail_.size()) {
    Choice& c = trail_[pos_];
    if (c.kind != kind || c.num != num) {
      violation_ =
          "internal: nondeterministic replay — the litmus body must make "
          "identical calls given identical model choices";
      pos_++;
      if (current_ >= 0) throw McAbort{};
      return 0;
    }
    pos_++;
    return c.chosen;
  }
  trail_.push_back(Choice{kind, 0, num});
  pos_++;
  return 0;
}

void Runtime::resume(int tid) {
  current_ = tid;
  Fiber& f = *fibers_[tid];
  if (!f.started) {
    f.started = true;
    if (f.stack.empty()) {
      if (!stack_pool_.empty()) {
        f.stack = std::move(stack_pool_.back());
        stack_pool_.pop_back();
      } else {
        f.stack.resize(kFiberStackBytes);
      }
    }
    getcontext(&f.ctx);
    f.ctx.uc_stack.ss_sp = f.stack.data();
    f.ctx.uc_stack.ss_size = f.stack.size();
    f.ctx.uc_link = &sched_ctx_;
    makecontext(&f.ctx, fiber_trampoline, 0);
  }
  swapcontext(&sched_ctx_, &f.ctx);
  current_ = -1;
}

void Runtime::park() {
  Fiber& f = self();
  swapcontext(&f.ctx, &sched_ctx_);
  if (aborting()) throw McAbort{};
}

void Runtime::reach_op(const Op& op) {
  self().pending = op;
  park();
}

void Runtime::fiber_main(int tid) {
  Fiber& f = *fibers_[tid];
  try {
    f.fn();
  } catch (const McAbort&) {
    // teardown unwind — fall through to TLS cleanup (runs raw)
  } catch (const std::exception& e) {
    if (violation_.empty() && !teardown_) {
      violation_ = std::string("uncaught exception in T") + std::to_string(tid) +
                   ": " + e.what();
    }
  } catch (...) {
    if (violation_.empty() && !teardown_) {
      violation_ = std::string("uncaught exception in T") + std::to_string(tid);
    }
  }
  // Virtual-thread-local destructors, reverse registration order (may
  // perform visible ops, e.g. an epoch slot release — that is the point).
  for (std::size_t i = f.tls.size(); i > 0; --i) {
    Fiber::Tls e = f.tls[i - 1];
    f.tls[i - 1] = Fiber::Tls{};
    if (e.obj != nullptr) {
      try {
        e.dtor(e.obj);
      } catch (const McAbort&) {
      }
    }
  }
  f.state = TState::kFinished;
  swapcontext(&f.ctx, &sched_ctx_);  // never resumed again
}

void Runtime::abort_all() {
  teardown_ = true;
  for (int t = static_cast<int>(fibers_.size()) - 1; t >= 0; --t) {
    Fiber& f = *fibers_[t];
    if (f.state == TState::kFinished) continue;
    if (!f.started) {
      // Never ran: nothing on its stack to unwind.
      f.state = TState::kFinished;
      continue;
    }
    current_ = t;
    swapcontext(&sched_ctx_, &f.ctx);
    current_ = -1;
  }
  teardown_ = false;
}

[[noreturn]] void Runtime::violate(const std::string& msg) {
  if (violation_.empty()) violation_ = msg;
  throw McAbort{};
}

// ---------------------------------------------------------------------------
// Memory model

int Runtime::ensure_loc(const void* addr, u64 init) {
  auto it = loc_ids_.find(addr);
  if (it != loc_ids_.end()) return it->second;
  int id = static_cast<int>(locs_.size());
  loc_ids_.emplace(addr, id);
  locs_.emplace_back();
  // The initialization store: zero clock (every thread that can reach
  // this atomic got it via program order or a spawn edge), SC-published
  // at order 0 so it never constrains an SC-bounded load.
  StoreRec init_rec;
  init_rec.value = init;
  init_rec.publish = 0;
  locs_[id].stores.push_back(init_rec);
  return id;
}

void Runtime::forget_loc(const void* addr) {
  loc_ids_.erase(addr);  // history stays orphaned in locs_; ids are not reused
}

void Runtime::begin_op() {
  Fiber& f = self();
  f.clock.c[current_]++;
}

void Runtime::trace(OpKind kind, const void* addr, int mo, u64 value, i32 read_idx,
                    i32 hist_n) {
  if (trace_.size() >= kTraceCap) {
    trace_dropped_++;
    return;
  }
  TraceEnt e;
  e.step = static_cast<u32>(steps_);
  e.tid = static_cast<i8>(current_);
  e.kind = kind;
  e.mo = static_cast<i8>(mo);
  e.addr = addr;
  e.value = value;
  e.read_idx = read_idx;
  e.hist_n = hist_n;
  trace_.push_back(e);
}

u64 Runtime::do_load(int loc, int mo, bool count_stale) {
  Fiber& f = self();
  auto& stores = locs_[loc].stores;
  std::size_t n = stores.size();
  std::size_t lo = 0;
  auto sit = f.seen.find(loc);
  if (sit != f.seen.end()) lo = sit->second;

  // happens-before floor: newest store whose commit clock <= our clock
  // was (transitively) observed or program-ordered before this load; no
  // older store may be read.
  for (std::size_t j = n; j > lo; --j) {
    if (stores[j - 1].commit.leq(f.clock)) {
      if (j - 1 > lo) lo = j - 1;
      break;
    }
  }

  // SC floor: an SC load (or any load after our latest SC fence) cannot
  // read below the newest store SC-published at or before that point.
  u64 bound = f.last_sc_fence;
  if (is_seq_cst(mo)) bound = ++sc_order_;
  for (std::size_t j = n; j > lo; --j) {
    if (stores[j - 1].publish <= bound) {
      if (j - 1 > lo) lo = j - 1;
      break;
    }
  }

  int k = static_cast<int>(n - lo);
  int pick = choose(kChoiceRead, k);
  std::size_t idx = n - 1 - static_cast<std::size_t>(pick);
  if (pick > 0) {
    f.stale_since_spin = true;
    if (count_stale) {
      stale_reads_++;
      if (stale_reads_ > opts_.max_stale_reads) {
        exec_truncated_ = true;
        throw McAbort{};
      }
    }
  }

  const StoreRec& s = stores[idx];
  if (sit != f.seen.end()) {
    if (idx > sit->second) sit->second = idx;
  } else {
    f.seen.emplace(loc, idx);
  }
  if (s.has_release) {
    if (is_acquire(mo)) {
      f.clock.merge(s.release);
    } else {
      f.acq_pending.merge(s.release);
    }
  }
  return s.value;
}

void Runtime::do_store(int loc, void* addr, u64 val, int mo, bool rmw_prev_release,
                       const VC* prev_release) {
  Fiber& f = self();
  auto& stores = locs_[loc].stores;
  StoreRec rec;
  rec.value = val;
  rec.tid = current_;
  rec.commit = f.clock;
  if (is_release(mo)) {
    rec.release = f.clock;
    rec.has_release = true;
  } else if (f.has_fence_rel) {
    rec.release = f.fence_rel;
    rec.has_release = true;
  }
  if (rmw_prev_release && prev_release != nullptr) {
    // RMW continues the release sequence headed by the store it read.
    rec.release.merge(*prev_release);
    rec.has_release = true;
  }
  std::size_t idx = stores.size();
  if (is_seq_cst(mo)) {
    rec.publish = ++sc_order_;
  } else {
    f.sc_unpublished.emplace_back(loc, idx);
  }
  stores.push_back(rec);
  auto sit = f.seen.find(loc);
  if (sit != f.seen.end()) {
    sit->second = idx;
  } else {
    f.seen.emplace(loc, idx);
  }
  store_count_++;
  (void)addr;
}

// ---------------------------------------------------------------------------
// Hooks: atomics and fences

u64 Runtime::atomic_load(const void* addr, int mo, u64 init) {
  if (raw()) return init;
  reach_op(Op{OpKind::kLoad, addr, nullptr, mo, 0});
  begin_op();
  int loc = ensure_loc(addr, init);
  std::size_t n = locs_[loc].stores.size();
  u64 v = do_load(loc, mo, /*count_stale=*/true);
  // Recover which index was read for the trace (seen was just ratcheted).
  trace(OpKind::kLoad, addr, mo, v, static_cast<i32>(self().seen[loc]),
        static_cast<i32>(n));
  return v;
}

void Runtime::atomic_store(void* addr, u64 val, int mo, u64 init) {
  if (raw()) return;
  reach_op(Op{OpKind::kStore, addr, nullptr, mo, 0});
  begin_op();
  int loc = ensure_loc(addr, init);
  do_store(loc, addr, val, mo, false, nullptr);
  trace(OpKind::kStore, addr, mo, val, -1, static_cast<i32>(locs_[loc].stores.size()));
}

u64 Runtime::atomic_rmw(void* addr, int mo, u64 init, u64 (*apply)(u64, u64),
                        u64 operand, const char* what) {
  (void)what;
  if (raw()) return init;
  reach_op(Op{OpKind::kRmw, addr, nullptr, mo, 0});
  begin_op();
  int loc = ensure_loc(addr, init);
  auto& stores = locs_[loc].stores;
  // Atomicity: an RMW reads the modification-order tail, full stop.
  const StoreRec tail = stores.back();
  Fiber& f = self();
  f.seen[loc] = stores.size() - 1;
  if (tail.has_release) {
    if (is_acquire(mo)) {
      f.clock.merge(tail.release);
    } else {
      f.acq_pending.merge(tail.release);
    }
  }
  u64 newv = apply(tail.value, operand);
  do_store(loc, addr, newv, mo, tail.has_release, &tail.release);
  trace(OpKind::kRmw, addr, mo, newv, static_cast<i32>(stores.size()) - 2,
        static_cast<i32>(stores.size()));
  return tail.value;
}

bool Runtime::atomic_cas(void* addr, u64* expected, u64 desired, int mo_ok,
                         int mo_fail, u64 init) {
  if (raw()) {
    if (*expected == init) return true;
    *expected = init;
    return false;
  }
  reach_op(Op{OpKind::kCas, addr, nullptr, mo_ok, 0});
  begin_op();
  int loc = ensure_loc(addr, init);
  auto& stores = locs_[loc].stores;
  const StoreRec tail = stores.back();
  Fiber& f = self();
  f.seen[loc] = stores.size() - 1;
  if (tail.value == *expected) {
    if (tail.has_release) {
      if (is_acquire(mo_ok)) {
        f.clock.merge(tail.release);
      } else {
        f.acq_pending.merge(tail.release);
      }
    }
    do_store(loc, addr, desired, mo_ok, tail.has_release, &tail.release);
    trace(OpKind::kCas, addr, mo_ok, desired, static_cast<i32>(stores.size()) - 2,
          static_cast<i32>(stores.size()));
    return true;
  }
  // Failure: a pure load of the tail with the failure order.
  if (tail.has_release) {
    if (is_acquire(mo_fail)) {
      f.clock.merge(tail.release);
    } else {
      f.acq_pending.merge(tail.release);
    }
  }
  *expected = tail.value;
  trace(OpKind::kCas, addr, mo_fail, tail.value, static_cast<i32>(stores.size()) - 1,
        static_cast<i32>(stores.size()));
  return false;
}

void Runtime::fence_op(int mo) {
  if (raw()) return;
  reach_op(Op{OpKind::kFence, nullptr, nullptr, mo, 0});
  begin_op();
  Fiber& f = self();
  if (is_acquire(mo)) {
    f.clock.merge(f.acq_pending);
  }
  if (is_release(mo)) {
    f.fence_rel = f.clock;
    f.has_fence_rel = true;
  }
  if (is_seq_cst(mo)) {
    u64 slot = ++sc_order_;
    f.last_sc_fence = slot;
    // Our earlier relaxed stores become SC-published here: any SC
    // load/fence after this point must see them (or newer).
    for (const auto& [loc, idx] : f.sc_unpublished) {
      StoreRec& s = locs_[loc].stores[idx];
      if (s.publish > slot) s.publish = slot;
    }
    f.sc_unpublished.clear();
  }
  trace(OpKind::kFence, nullptr, mo, 0, -1, 0);
}

// ---------------------------------------------------------------------------
// Hooks: mutex / condvar

void Runtime::mutex_lock(void* mu) {
  if (raw()) return;
  reach_op(Op{OpKind::kMutexLock, mu, nullptr, 0, 0});
  begin_op();
  MutexState& m = mutexes_[mu];
  if (m.held) {
    violate("internal: scheduled a lock on a held mutex");
  }
  m.held = true;
  m.owner = current_;
  self().clock.merge(m.clock);
  trace(OpKind::kMutexLock, mu, 0, 0, -1, 0);
}

void Runtime::mutex_unlock(void* mu) {
  if (raw()) return;
  reach_op(Op{OpKind::kMutexUnlock, mu, nullptr, 0, 0});
  begin_op();
  auto it = mutexes_.find(mu);
  if (it == mutexes_.end() || !it->second.held || it->second.owner != current_) {
    violate("unlock of a mutex not held by this thread: " + loc_label(mu));
  }
  it->second.held = false;
  it->second.owner = -1;
  it->second.clock = self().clock;
  trace(OpKind::kMutexUnlock, mu, 0, 0, -1, 0);
}

bool Runtime::mutex_try_lock(void* mu) {
  if (raw()) return true;
  reach_op(Op{OpKind::kMutexTryLock, mu, nullptr, 0, 0});
  begin_op();
  MutexState& m = mutexes_[mu];
  if (m.held) {
    trace(OpKind::kMutexTryLock, mu, 0, 0, -1, 0);
    return false;
  }
  m.held = true;
  m.owner = current_;
  self().clock.merge(m.clock);
  trace(OpKind::kMutexTryLock, mu, 0, 1, -1, 0);
  return true;
}

void Runtime::cv_wait(void* cv, void* mu) {
  if (raw()) return;
  reach_op(Op{OpKind::kCvWait, cv, mu, 0, 0});
  // Phase A (atomic from other threads' perspective — no park inside):
  // enqueue, release the mutex, go to sleep.
  begin_op();
  Fiber& f = self();
  auto it = mutexes_.find(mu);
  if (it == mutexes_.end() || !it->second.held || it->second.owner != current_) {
    violate("cv_wait without holding the mutex: " + loc_label(mu));
  }
  it->second.held = false;
  it->second.owner = -1;
  it->second.clock = f.clock;
  cvs_[cv].waiters.push_back(current_);
  f.cv_mu = mu;
  f.state = TState::kBlockedCv;
  trace(OpKind::kCvWait, cv, 0, 0, -1, 0);
  park();
  // A notify flipped us runnable with pending = lock(mu); the scheduler
  // resumed us once the mutex was free. Reacquire.
  begin_op();
  MutexState& m = mutexes_[mu];
  if (m.held) {
    violate("internal: cv wakeup scheduled with mutex held");
  }
  m.held = true;
  m.owner = current_;
  f.clock.merge(m.clock);
  trace(OpKind::kMutexLock, mu, 0, 0, -1, 0);
}

void Runtime::cv_notify(void* cv, bool all) {
  if (raw()) return;
  reach_op(Op{OpKind::kCvNotify, cv, nullptr, 0, all ? 1u : 0u});
  begin_op();
  auto it = cvs_.find(cv);
  int woken = 0;
  if (it != cvs_.end()) {
    auto& ws = it->second.waiters;
    while (!ws.empty()) {
      int w = ws.front();
      ws.erase(ws.begin());
      Fiber& fw = *fibers_[w];
      fw.state = TState::kRunnable;
      fw.pending = Op{OpKind::kMutexLock, fw.cv_mu, nullptr, 0, 0};
      woken++;
      if (!all) break;
    }
  }
  trace(OpKind::kCvNotify, cv, 0, static_cast<u64>(woken), -1, 0);
}

// ---------------------------------------------------------------------------
// Hooks: plain (Tracked) accesses — FastTrack-style race check, no park.

void Runtime::check_plain(const PlainState& pl, bool write, const void* addr) {
  const Fiber& f = *fibers_[current_];
  if (pl.has_write && pl.w_tid != current_ && pl.w_tick > f.clock.c[pl.w_tid]) {
    violate(std::string("data race on ") + loc_label(addr) + ": T" +
            std::to_string(current_) + (write ? " write" : " read") +
            " concurrent with T" + std::to_string(pl.w_tid) + " write");
  }
  if (write) {
    for (const auto& [rt, rtick] : pl.reads) {
      if (rt != current_ && rtick > f.clock.c[rt]) {
        violate(std::string("data race on ") + loc_label(addr) + ": T" +
                std::to_string(current_) + " write concurrent with T" +
                std::to_string(rt) + " read");
      }
    }
  }
}

void Runtime::plain_read(const void* addr) {
  if (raw()) return;
  PlainState& pl = plains_[addr];
  check_plain(pl, false, addr);
  // Tick = own clock + 1: the access is ordered before our next visible
  // op, so only a thread that synchronizes with something at or after
  // that op sees it as ordered.
  u64 tick = fibers_[current_]->clock.c[current_] + 1;
  for (auto& [rt, rtick] : pl.reads) {
    if (rt == current_) {
      rtick = tick;
      return;
    }
  }
  pl.reads.emplace_back(current_, tick);
}

void Runtime::plain_write(void* addr) {
  if (raw()) return;
  PlainState& pl = plains_[addr];
  check_plain(pl, true, addr);
  pl.has_write = true;
  pl.w_tid = current_;
  pl.w_tick = fibers_[current_]->clock.c[current_] + 1;
  pl.reads.clear();
}

// ---------------------------------------------------------------------------
// Hooks: threads

int Runtime::spawn(std::function<void()> fn) {
  if (!running_ || current_ < 0) {
    throw std::logic_error("mc::Thread can only be spawned inside mc::check");
  }
  if (aborting()) throw McAbort{};
  if (fibers_.size() >= kMaxThreads) {
    violate("too many virtual threads (kMaxThreads)");
  }
  reach_op(Op{OpKind::kSpawn, nullptr, nullptr, 0, 0});
  begin_op();
  int tid = static_cast<int>(fibers_.size());
  auto child = std::make_unique<Fiber>();
  child->fn = std::move(fn);
  child->pending = Op{OpKind::kStart, nullptr, nullptr, 0, 0};
  child->clock = self().clock;  // spawn edge
  fibers_.push_back(std::move(child));
  trace(OpKind::kSpawn, nullptr, 0, static_cast<u64>(tid), -1, 0);
  return tid;
}

void Runtime::join(int tid) {
  if (raw()) return;
  reach_op(Op{OpKind::kJoin, nullptr, nullptr, 0, static_cast<u64>(tid)});
  begin_op();
  self().clock.merge(fibers_[tid]->clock);  // join edge
  trace(OpKind::kJoin, nullptr, 0, static_cast<u64>(tid), -1, 0);
}

void Runtime::thread_abandoned(int tid) {
  // Record only — never throw: this is called from a destructor, which
  // may be running during perfectly normal stack unwinding. The raw()
  // flip (violation_ now set) drops the rest of the execution.
  if (raw()) return;
  violation_ = "mc::Thread T" + std::to_string(tid) + " destroyed without join()";
}

void Runtime::spin_wait_op() {
  if (raw()) return;
  // Snapshot at park time is exact: no other fiber can run between the
  // caller's last visible op and this park (cooperative scheduling).
  reach_op(Op{OpKind::kSpinWait, nullptr, nullptr, 0, store_count_});
  begin_op();
  self().stale_since_spin = false;  // new spin iteration, fresh slate
  trace(OpKind::kSpinWait, nullptr, 0, 0, -1, 0);
}

void Runtime::fail(const std::string& msg) {
  if (!running_ || current_ < 0) {
    throw std::logic_error(msg);
  }
  // During an abort/teardown unwind, assertions may fire against
  // half-torn state (and throwing from a destructor mid-unwind would
  // terminate); the first cause is already recorded — swallow.
  if (aborting()) return;
  violate(msg);
}

// ---------------------------------------------------------------------------
// Trace formatting

std::string Runtime::loc_label(const void* addr) const {
  auto it = names_.find(addr);
  if (it != names_.end()) return it->second;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "@%p", addr);
  return buf;
}

std::string Runtime::format_trace() const {
  std::string out;
  for (const TraceEnt& e : trace_) {
    char head[64];
    std::snprintf(head, sizeof(head), "  %4u T%d ", e.step, e.tid);
    out += head;
    out += op_name(e.kind);
    switch (e.kind) {
      case OpKind::kLoad:
        out += " " + loc_label(e.addr) + " " + mo_name(e.mo) + " -> " +
               std::to_string(e.value) + " (store " + std::to_string(e.read_idx) +
               "/" + std::to_string(e.hist_n - 1) + ")";
        break;
      case OpKind::kStore:
      case OpKind::kRmw:
        out += " " + loc_label(e.addr) + " " + mo_name(e.mo) + " := " +
               std::to_string(e.value);
        break;
      case OpKind::kCas:
        out += " " + loc_label(e.addr) + " " + mo_name(e.mo) + " := " +
               std::to_string(e.value);
        break;
      case OpKind::kFence:
        out += std::string(" ") + mo_name(e.mo);
        break;
      case OpKind::kMutexLock:
      case OpKind::kMutexUnlock:
        out += " " + loc_label(e.addr);
        break;
      case OpKind::kMutexTryLock:
        out += " " + loc_label(e.addr) + (e.value != 0 ? " -> ok" : " -> busy");
        break;
      case OpKind::kCvWait:
      case OpKind::kCvNotify:
        out += " " + loc_label(e.addr);
        break;
      case OpKind::kSpawn:
      case OpKind::kJoin:
        out += " T" + std::to_string(e.value);
        break;
      default:
        break;
    }
    out += "\n";
  }
  if (trace_dropped_ > 0) {
    out += "  ... (" + std::to_string(trace_dropped_) + " earlier ops dropped)\n";
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public / detail surface

Outcome check(const Options& opts, const std::function<void()>& body) {
  return g_rt->run(opts, body);
}

namespace detail {

bool active() { return g_rt->running(); }

u64 atomic_load(const void* addr, int mo, u64 init) {
  return g_rt->atomic_load(addr, mo, init);
}
void atomic_store(void* addr, u64 val, int mo, u64 init) {
  g_rt->atomic_store(addr, val, mo, init);
}
u64 atomic_rmw(void* addr, int mo, u64 init, u64 (*apply)(u64, u64), u64 operand,
               const char* what) {
  return g_rt->atomic_rmw(addr, mo, init, apply, operand, what);
}
bool atomic_cas(void* addr, u64* expected, u64 desired, int mo_ok, int mo_fail,
                u64 init) {
  return g_rt->atomic_cas(addr, expected, desired, mo_ok, mo_fail, init);
}
void atomic_forget(const void* addr) {
  if (g_rt->running()) g_rt->forget_loc(addr);
}
void fence_op(int mo) { g_rt->fence_op(mo); }

void mutex_lock(void* mu) { g_rt->mutex_lock(mu); }
void mutex_unlock(void* mu) { g_rt->mutex_unlock(mu); }
bool mutex_try_lock(void* mu) { return g_rt->mutex_try_lock(mu); }
void mutex_forget(const void* mu) {
  if (g_rt->running()) g_rt->mutex_forget(mu);
}
void cv_wait(void* cv, void* mu) { g_rt->cv_wait(cv, mu); }
void cv_notify_one(void* cv) { g_rt->cv_notify(cv, false); }
void cv_notify_all(void* cv) { g_rt->cv_notify(cv, true); }
void cv_forget(const void* cv) {
  if (g_rt->running()) g_rt->cv_forget(cv);
}

void plain_read(const void* addr) { g_rt->plain_read(addr); }
void plain_write(void* addr) { g_rt->plain_write(addr); }
void plain_forget(const void* addr) {
  if (g_rt->running()) g_rt->plain_forget(addr);
}

int spawn(std::function<void()> fn) { return g_rt->spawn(std::move(fn)); }
void join(int tid) { g_rt->join(tid); }
void thread_abandoned(int tid) { g_rt->thread_abandoned(tid); }
void spin_wait() { g_rt->spin_wait_op(); }
void fail(const std::string& msg) { g_rt->fail(msg); }
void set_name(const void* addr, const char* name) { g_rt->set_name(addr, name); }

namespace {
// Fallback slots for thread_local_instance outside an execution (test
// harness code touching e.g. an epoch domain before/after check()).
std::vector<std::pair<void*, void (*)(void*)>>& fallback_tls() {
  static std::vector<std::pair<void*, void (*)(void*)>> slots;
  return slots;
}
int g_tls_keys = 0;
}  // namespace

int tls_key() { return g_tls_keys++; }

void* tls_get(int key) {
  if (g_rt->running() && g_rt->current() >= 0) {
    auto& tls = g_rt->current_tls();
    if (key < static_cast<int>(tls.size())) return tls[key].obj;
    return nullptr;
  }
  auto& fb = fallback_tls();
  if (key < static_cast<int>(fb.size())) return fb[key].first;
  return nullptr;
}

void tls_set(int key, void* obj, void (*dtor)(void*)) {
  if (g_rt->running() && g_rt->current() >= 0) {
    auto& tls = g_rt->current_tls();
    if (key >= static_cast<int>(tls.size())) tls.resize(key + 1);
    tls[key].obj = obj;
    tls[key].dtor = dtor;
    return;
  }
  auto& fb = fallback_tls();
  if (key >= static_cast<int>(fb.size())) fb.resize(key + 1, {nullptr, nullptr});
  fb[key] = {obj, dtor};
}

}  // namespace detail
}  // namespace ps::mc
