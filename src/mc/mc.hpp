// ps::mc — a stateless model checker for the repo's lock-free protocols.
//
// The lock-free layer (SpscRing/SpscFanIn/WakeSignal, epoch reclamation,
// single-writer counters) is correct only under specific C++11 memory
// ordering arguments: acquire/release publication, a Dekker seq_cst
// store-buffering fence, a relaxed-store + seq_cst-fence reader pin.
// TSan checks the happens-before it can observe on ONE execution; the
// thread-safety annotations only cover mutexes. This checker closes the
// gap CDSChecker/GenMC-style: it runs a small test program ("litmus")
// on cooperative virtual threads, simulates C++11 weak memory — loads
// may read stale values from each location's modification history,
// subject to coherence, happens-before (vector clocks), and SC-fence
// pairing — and systematically explores schedules and reads-from
// choices until the space is exhausted or a stated bound is hit.
//
// How code gets under the checker: production code declares atomics as
// ps::atomic<T> and fences as ps::fence_seq_cst() (common/
// atomic_shim.hpp). A litmus target compiles the SAME headers with
// -DPS_MODEL_CHECK, which routes those aliases here — so the litmus
// suite checks the real SpscRing/WakeSignal/epoch::Domain code, not a
// transcription. See tests/mc/ and DESIGN.md §17.
//
// Exploration strategy:
//  - schedule choices branch at every visible op (atomic/fence/mutex/
//    cv/thread op); between visible ops a thread runs uninterrupted;
//  - loads with several coherence-admissible stores branch on which
//    store they read (this is where weak behaviors come from);
//  - sleep-set pruning (Godefroid's DPOR family) skips schedules that
//    only reorder independent operations;
//  - a preemption bound (Options.preemption_bound) caps involuntary
//    context switches per execution: the search is exhaustive within
//    the bound, which is the "stated schedule bound" litmus tests
//    report. Known ordering bugs in this codebase's protocols need 1-2
//    preemptions at the wrong moment; the default bound of 2-3 covers
//    them while keeping litmus runtime in CI seconds.
//
// Violations: MC_ASSERT failures, data races on mc::Tracked<T> plain
// payloads, deadlocks (every live thread blocked — this is how a lost
// wakeup manifests: the consumer parks forever on a non-empty ring),
// and uncaught exceptions. The first violating execution is reported
// with its full operation trace.
//
// Model simplifications (documented contract, see DESIGN.md §17):
//  - modification order equals the execution order of stores;
//  - non-atomic accesses are only checked through mc::Tracked<T>;
//  - condition-variable timed waits never time out (a lost wakeup must
//    surface as a deadlock, not be masked by a timeout);
//  - a failed compare_exchange returns the latest value;
//  - spin loops must call mc::spin_wait() so the scheduler can treat
//    them as blocking (litmus-side concern only).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "common/types.hpp"

namespace ps::mc {

/// Exploration limits. A litmus states its bounds here; Outcome reports
/// whether the space was exhausted within them.
struct Options {
  const char* name = "";
  /// Hard cap on explored executions (deterministic, unlike wall time).
  u64 max_executions = 200000;
  /// Max involuntary context switches per execution; -1 = unbounded.
  int preemption_bound = 2;
  /// Max stale (non-latest) read choices per execution; bounds the
  /// depth of weak-memory staleness so retry loops terminate.
  int max_stale_reads = 12;
  /// Per-execution visible-op budget (live-lock guard).
  u64 max_steps = 20000;
  /// Sleep-set pruning on schedule choices.
  bool sleep_sets = true;
};

struct Outcome {
  bool ok = true;          ///< no violation found
  bool exhausted = false;  ///< whole space explored within the bounds
  u64 executions = 0;      ///< executions run (including pruned/truncated)
  u64 pruned = 0;          ///< sleep-set-redundant executions
  u64 truncated = 0;       ///< executions cut by stale-read/step bounds
  std::string error;       ///< first violation, empty when ok
  std::string trace;       ///< op trace of the violating execution
};

namespace detail {
// Runtime hooks the shim headers (mc_atomic.hpp, model_sync.hpp,
// tracked.hpp) funnel through. Implemented in runtime.cpp.
bool active();
int spawn(std::function<void()> fn);
void join(int tid);
void thread_abandoned(int tid);
void spin_wait();
// Reports a violation. Throws to abort the current execution in the
// normal case; deliberately RETURNS when an abort is already in flight
// (so destructor-context assertions can't terminate the process) —
// callers must tolerate falling through.
void fail(const std::string& msg);
void set_name(const void* addr, const char* name);
int tls_key();
void* tls_get(int key);
void tls_set(int key, void* obj, void (*dtor)(void*));
}  // namespace detail

/// Explore `body` under the model. The body runs as virtual thread 0;
/// it constructs the objects under test (fresh per execution), spawns
/// mc::Thread workers, joins them, and asserts invariants with
/// MC_ASSERT. Must be deterministic apart from model choices.
Outcome check(const Options& opts, const std::function<void()>& body);

/// A virtual thread. Spawn inside a check() body; must be joined.
class Thread {
 public:
  explicit Thread(std::function<void()> fn) : tid_(detail::spawn(std::move(fn))) {}
  ~Thread() {
    if (!joined_) detail::thread_abandoned(tid_);
  }
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  void join() {
    detail::join(tid_);
    joined_ = true;
  }

 private:
  int tid_;
  bool joined_ = false;
};

/// Park the calling virtual thread until any store lands anywhere.
/// Litmus spin loops ("retry until the ring drains") must call this so
/// the scheduler can model the loop as blocking instead of exploring
/// unbounded busy-wait schedules. All threads parked here with nothing
/// left to store is reported as a deadlock — which for a "consumer
/// spins forever on an item that never becomes visible" litmus is
/// exactly the violation.
inline void spin_wait() { detail::spin_wait(); }

/// Attach a debug name to an atomic/mutex/Tracked address for traces.
template <typename T>
inline void name(const T* addr, const char* n) {
  detail::set_name(static_cast<const void*>(addr), n);
}

/// One instance of T per virtual thread, destroyed at virtual-thread
/// exit — the model-checked stand-in for `thread_local` (a real
/// thread_local would be shared by every virtual thread, since they all
/// run on one OS thread). epoch.cpp routes its per-thread slot cache
/// through this under PS_MODEL_CHECK.
template <typename T>
T& thread_local_instance() {
  static const int key = detail::tls_key();
  void* p = detail::tls_get(key);
  if (p == nullptr) {
    p = new T();
    detail::tls_set(key, p, [](void* q) { delete static_cast<T*>(q); });
  }
  return *static_cast<T*>(p);
}

}  // namespace ps::mc

#define PS_MC_STRINGIZE_IMPL(x) #x
#define PS_MC_STRINGIZE(x) PS_MC_STRINGIZE_IMPL(x)

/// Litmus invariant: failure aborts the execution and reports the trace.
#define MC_ASSERT(cond)                                             \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::ps::mc::detail::fail("MC_ASSERT failed: " #cond " at "      \
                             __FILE__ ":" PS_MC_STRINGIZE(__LINE__)); \
    }                                                               \
  } while (0)
