// Slow-path host stack: the "pass them onto Linux TCP/IP stack" role of
// section 6.2.1, as far as a router's data plane observes it.
//
// Packets the fast path classifies as kSlowPath land here:
//  - TTL-expired IPv4 packets produce a real ICMP Time Exceeded reply
//    (type 11, code 0, RFC 792: IP header + first 8 payload bytes quoted);
//  - packets addressed to one of the router's own addresses are delivered
//    locally (where a BGP daemon would read them);
//  - anything else (ARP, unknown ethertypes) is counted and dropped.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"

namespace ps::slowpath {

struct HostStackStats {
  u64 icmp_time_exceeded = 0;
  u64 icmp_echo_replies = 0;
  u64 delivered_locally = 0;
  u64 unhandled = 0;
  /// Local deliveries refused because the retained queue hit its memory
  /// bound (defense in depth behind slowpath::Admission).
  u64 local_overflow = 0;
};

class HostStack {
 public:
  /// The address the router speaks with (ICMP source); more can be added.
  explicit HostStack(net::Ipv4Addr router_addr);

  /// Register an additional local address (packets to it are delivered).
  void add_local_address(net::Ipv4Addr addr);

  /// Handle one slow-path frame. Returns a response frame to transmit out
  /// of the ingress port (e.g. an ICMP error), or nullopt.
  std::optional<net::FrameBuffer> handle(std::span<const u8> frame, int in_port);

  /// Frames delivered to local sockets (would-be BGP/SSH traffic).
  const std::vector<net::FrameBuffer>& local_deliveries() const { return local_; }

  /// Hard bound on retained local-delivery frames: past it, new local
  /// deliveries are counted in `local_overflow` and discarded instead of
  /// growing the queue. Models finite socket buffers — the stack's memory
  /// stays bounded whatever the data path feeds it.
  void set_local_capacity(std::size_t capacity) { local_capacity_ = capacity; }
  std::size_t local_capacity() const { return local_capacity_; }
  /// Consume the retained queue (a local daemon reading its socket).
  void drain_local() { local_.clear(); }

  const HostStackStats& stats() const { return stats_; }

 private:
  net::FrameBuffer build_time_exceeded(const net::PacketView& offender, int in_port);
  net::FrameBuffer build_echo_reply(const net::PacketView& request, int in_port);

  net::Ipv4Addr router_addr_;
  std::unordered_set<net::Ipv4Addr> local_addrs_;
  std::vector<net::FrameBuffer> local_;
  std::size_t local_capacity_ = 4096;
  HostStackStats stats_;
};

}  // namespace ps::slowpath
