// Slow-path admission control: a token-bucket rate limiter plus a bound
// on the host stack's retained memory, sitting in front of
// slowpath::HostStack.
//
// The slow path exists for the rare packet (TTL expiry, router-addressed
// control traffic); it is orders of magnitude slower than the data path
// and it *retains* frames (local deliveries). Without admission control a
// data-path flood of slow-path-classified packets buries the host stack —
// the failure mode "Data Path Processing in Fast Programmable Routers"
// warns about — and exhausts its memory. Every refusal is accounted as a
// DropReason::kSlowpathShed drop; nothing is shed silently.
//
// Single-threaded by design: the router already serializes host-stack
// access (host_stack_mu_), and admit() is called under that same lock.
#pragma once

#include <chrono>
#include <cstddef>

#include "common/token_bucket.hpp"
#include "common/types.hpp"

namespace ps::slowpath {

struct AdmissionConfig {
  /// Sustained packets/second the slow path will accept.
  double rate_pps = 100'000;
  /// Bucket depth: a short burst above the rate is fine (the stack's
  /// queue absorbs it), a sustained flood is not.
  double burst = 1024;
  /// Upper bound on frames the host stack may retain (local-delivery
  /// queue). Admission refuses once the stack holds this many.
  std::size_t queue_capacity = 4096;
};

struct AdmissionStats {
  u64 admitted = 0;
  u64 shed_rate = 0;   // refused: token bucket empty (flood)
  u64 shed_queue = 0;  // refused: host stack at its memory bound
};

class Admission {
 public:
  explicit Admission(AdmissionConfig config = {});

  const AdmissionConfig& config() const { return config_; }

  /// May one more packet enter the host stack? `retained_frames` is the
  /// stack's current retained-queue depth (its memory bound). Counts the
  /// outcome either way.
  bool admit(std::size_t retained_frames);

  const AdmissionStats& stats() const { return stats_; }

 private:
  Picos now() const;

  AdmissionConfig config_;
  TokenBucket bucket_;
  AdmissionStats stats_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ps::slowpath
