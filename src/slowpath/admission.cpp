#include "slowpath/admission.hpp"

namespace ps::slowpath {

Admission::Admission(AdmissionConfig config)
    : config_(config),
      bucket_(config.rate_pps, config.burst),
      epoch_(std::chrono::steady_clock::now()) {}

Picos Admission::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<Picos>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count() * 1000);
}

bool Admission::admit(std::size_t retained_frames) {
  if (retained_frames >= config_.queue_capacity) {
    ++stats_.shed_queue;
    return false;
  }
  if (!bucket_.try_consume(now())) {
    ++stats_.shed_rate;
    return false;
  }
  ++stats_.admitted;
  return true;
}

}  // namespace ps::slowpath
