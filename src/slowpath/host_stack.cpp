#include "slowpath/host_stack.hpp"

#include <cstring>

#include "net/checksum.hpp"

namespace ps::slowpath {

namespace {
constexpr u8 kIcmpTimeExceeded = 11;
constexpr u8 kIcmpEchoRequest = 8;
constexpr u8 kIcmpEchoReply = 0;
}

HostStack::HostStack(net::Ipv4Addr router_addr) : router_addr_(router_addr) {
  local_addrs_.insert(router_addr);
}

void HostStack::add_local_address(net::Ipv4Addr addr) { local_addrs_.insert(addr); }

net::FrameBuffer HostStack::build_time_exceeded(const net::PacketView& offender, int in_port) {
  // ICMP quotes the offending IP header plus the first 8 payload bytes.
  const auto& off_ip = offender.ipv4();
  const u32 quote_len =
      std::min<u32>(off_ip.header_bytes() + 8, offender.length - offender.l3_offset);

  const u32 total = static_cast<u32>(sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header) +
                                     sizeof(net::IcmpHeader) + quote_len);
  net::FrameBuffer out(std::max<u32>(total, net::kMinUdpIpv4Frame), 0);

  auto& eth = *reinterpret_cast<net::EthernetHeader*>(out.data());
  // Back out the ingress port: swap L2 roles.
  eth.set_src(net::MacAddr::for_port(static_cast<u32>(in_port)));
  eth.set_dst(offender.eth().src_mac());
  eth.set_ethertype(net::EtherType::kIpv4);

  auto& ip = *reinterpret_cast<net::Ipv4Header*>(out.data() + sizeof(net::EthernetHeader));
  ip.set_version_ihl(4, 5);
  ip.set_total_length(static_cast<u16>(out.size() - sizeof(net::EthernetHeader)));
  ip.ttl = 64;
  ip.set_proto(net::IpProto::kIcmp);
  ip.set_src(router_addr_);
  ip.set_dst(off_ip.src());

  auto& icmp = *reinterpret_cast<net::IcmpHeader*>(out.data() + sizeof(net::EthernetHeader) +
                                                   sizeof(net::Ipv4Header));
  icmp.type = kIcmpTimeExceeded;
  icmp.code = 0;

  std::memcpy(out.data() + sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header) +
                  sizeof(net::IcmpHeader),
              offender.data + offender.l3_offset, quote_len);

  // ICMP checksum over header + quoted data, then the outer IP checksum.
  const std::span<const u8> icmp_bytes{
      out.data() + sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header),
      out.size() - sizeof(net::EthernetHeader) - sizeof(net::Ipv4Header)};
  icmp.set_checksum(net::checksum(icmp_bytes));
  net::ipv4_fill_checksum(ip);
  return out;
}

net::FrameBuffer HostStack::build_echo_reply(const net::PacketView& request, int in_port) {
  // The reply mirrors the request: swapped addresses, type 0, identifier,
  // sequence number and payload preserved (RFC 792).
  net::FrameBuffer out(request.data, request.data + request.length);

  auto& eth = *reinterpret_cast<net::EthernetHeader*>(out.data());
  const auto requester_mac = request.eth().src_mac();
  eth.set_src(net::MacAddr::for_port(static_cast<u32>(in_port)));
  eth.set_dst(requester_mac);

  auto& ip = *reinterpret_cast<net::Ipv4Header*>(out.data() + request.l3_offset);
  const auto requester = ip.src();
  ip.set_src(ip.dst());
  ip.set_dst(requester);
  ip.ttl = 64;
  net::ipv4_fill_checksum(ip);

  auto& icmp = *reinterpret_cast<net::IcmpHeader*>(out.data() + request.l4_offset);
  icmp.type = kIcmpEchoReply;
  icmp.set_checksum(0);
  icmp.set_checksum(net::checksum({out.data() + request.l4_offset,
                                   out.size() - request.l4_offset}));
  return out;
}

std::optional<net::FrameBuffer> HostStack::handle(std::span<const u8> frame, int in_port) {
  net::PacketView view;
  const auto status =
      net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()), view);

  if (status != net::ParseStatus::kOk || view.ether_type != net::EtherType::kIpv4) {
    ++stats_.unhandled;
    return std::nullopt;
  }

  const auto& ip = view.ipv4();
  if (local_addrs_.contains(ip.dst())) {
    // Ping the router: ICMP echo requests get a real reply; everything
    // else addressed to us is delivered to local sockets.
    if (ip.proto() == net::IpProto::kIcmp &&
        view.length >= view.l4_offset + sizeof(net::IcmpHeader)) {
      const auto& icmp = *reinterpret_cast<const net::IcmpHeader*>(view.data + view.l4_offset);
      if (icmp.type == kIcmpEchoRequest) {
        ++stats_.icmp_echo_replies;
        return build_echo_reply(view, in_port);
      }
    }
    if (local_.size() >= local_capacity_) {
      ++stats_.local_overflow;  // socket buffer full: the frame is gone
      return std::nullopt;
    }
    ++stats_.delivered_locally;
    local_.emplace_back(frame.begin(), frame.end());
    return std::nullopt;
  }
  if (ip.ttl <= 1) {
    ++stats_.icmp_time_exceeded;
    return build_time_exceeded(view, in_port);
  }
  ++stats_.unhandled;
  return std::nullopt;
}

}  // namespace ps::slowpath
