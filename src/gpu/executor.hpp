// Functional SIMT executor: runs kernel bodies over a grid of GPU threads
// on a host thread pool, preserving the warp structure (warp id / lane id)
// and tracking code-path divergence per warp.
//
// This is the "silicon" of the simulated GTX480: results are computed for
// real; time is modeled separately by GpuDevice using perf::gpu_exec_time.
#pragma once

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "perf/calibration.hpp"

namespace ps::gpu {

/// Execution context handed to a kernel body for one GPU thread.
class ThreadCtx {
 public:
  ThreadCtx(u32 tid, ps::atomic<u64>* path_words)
      : tid_(tid), path_words_(path_words) {}

  u32 thread_id() const { return tid_; }
  u32 warp_id() const { return tid_ / perf::kGpuWarpSize; }
  u32 lane_id() const { return tid_ % perf::kGpuWarpSize; }

  /// Record which code path this thread took at a divergent branch.
  /// Threads of one warp recording different values model a diverged warp:
  /// the SIMT hardware must execute every distinct path with masking
  /// (section 2.1), which the executor reports as reduced warp efficiency.
  void record_path(u8 path) {
    if (path_words_ == nullptr) return;
    // One bit per distinct path id (0..63) per warp.
    path_words_[warp_id()].fetch_or(u64{1} << (path & 63), std::memory_order_relaxed);
  }

 private:
  u32 tid_;
  ps::atomic<u64>* path_words_;
};

using KernelBody = std::function<void(ThreadCtx&)>;

struct ExecStats {
  u32 threads = 0;
  u32 warps = 0;
  /// 1.0 = no divergence; 1/k when warps take k distinct paths on average.
  double warp_efficiency = 1.0;
};

/// Fixed-size worker pool executing kernel grids. One executor is shared
/// per GpuDevice; launches are serialized per device, matching the paper's
/// one-kernel-at-a-time constraint (section 7) unless concurrent-kernel
/// mode is enabled at the device level.
class SimtExecutor {
 public:
  /// `workers` = 0 runs kernels inline on the calling thread.
  explicit SimtExecutor(unsigned workers = default_worker_count());
  ~SimtExecutor();

  SimtExecutor(const SimtExecutor&) = delete;
  SimtExecutor& operator=(const SimtExecutor&) = delete;

  /// Run `body` for thread ids [0, threads); returns divergence stats.
  /// `track_divergence` enables per-warp path tracking (small overhead).
  ExecStats run(u32 threads, const KernelBody& body, bool track_divergence = false);

  unsigned worker_count() const { return static_cast<unsigned>(workers_.size()); }

  static unsigned default_worker_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 4 : std::min(hw, 8u);
  }

 private:
  struct Task {
    u32 begin = 0;
    u32 end = 0;
  };

  void worker_loop();
  static void run_range(const KernelBody& body, ps::atomic<u64>* path_words,
                        u32 begin, u32 end);

  // Launch payload: published by run() in the same mu_ critical section
  // that bumps generation_, copied out by each worker in the critical
  // section where it observes the new generation. A worker that wakes
  // late — after the launcher already completed a launch without it —
  // therefore can never race the next launch's publication.
  const KernelBody* body_ GUARDED_BY(mu_) = nullptr;
  ps::atomic<u64>* path_words_ GUARDED_BY(mu_) = nullptr;
  u32 total_threads_ GUARDED_BY(mu_) = 0;
  u32 total_blocks_ GUARDED_BY(mu_) = 0;
  // mc: gpu.next_block -- relaxed block-claim ticket shared by the pool
  ps::atomic<u32> next_block_{0};
  // mc: gpu.blocks_done -- acq_rel completion count; launcher acquires
  ps::atomic<u32> blocks_done_{0};

  Mutex launch_mu_;  // serializes launches (one kernel at a time)

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  u64 generation_ GUARDED_BY(mu_) = 0;
  unsigned active_workers_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace ps::gpu
