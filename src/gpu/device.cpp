#include "gpu/device.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace ps::gpu {

const char* to_string(GpuStatus status) {
  switch (status) {
    case GpuStatus::kOk:           return "ok";
    case GpuStatus::kLaunchFailed: return "launch_failed";
    case GpuStatus::kCopyFailed:   return "copy_failed";
    case GpuStatus::kTimeout:      return "timeout";
    case GpuStatus::kDeviceSick:   return "device_sick";
  }
  return "unknown";
}

DeviceBuffer::DeviceBuffer(GpuDevice* device, std::size_t bytes) : account_(device->mem_) {
  assert(device != nullptr);
  MutexLock lock(account_->mu);  // allocation may race device ops
  if (account_->allocated + bytes > perf::kGpuMemBytes) {
    throw std::bad_alloc();  // past the card's 1.5 GB GDDR5
  }
  storage_.resize(bytes);
  account_->allocated += bytes;
}

DeviceBuffer::~DeviceBuffer() { release(); }

void DeviceBuffer::release() noexcept {
  if (account_ != nullptr) {
    MutexLock lock(account_->mu);
    account_->allocated -= storage_.size();
  }
  account_.reset();
  storage_.clear();
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& other) noexcept {
  if (this != &other) {
    release();
    account_ = std::move(other.account_);
    storage_ = std::move(other.storage_);
    other.account_.reset();
    other.storage_.clear();
  }
  return *this;
}

GpuDevice::GpuDevice(int gpu_id, const pcie::Topology& topo,
                     std::shared_ptr<SimtExecutor> executor)
    : gpu_id_(gpu_id),
      node_(topo.node_of_gpu(gpu_id)),
      ioh_(topo.ioh_of_gpu(gpu_id)),
      executor_(executor ? std::move(executor) : std::make_shared<SimtExecutor>()),
      streams_(1, 0) {}

StreamId GpuDevice::create_stream() {
  MutexLock lock(op_mu_);
  streams_.push_back(0);
  return static_cast<StreamId>(streams_.size() - 1);
}

Picos GpuDevice::stream_call_overhead() const {
  return streams_.size() > 1 ? perf::kGpuStreamCallOverhead : 0;
}

GpuStatus GpuDevice::check_fault(std::string_view op_point, GpuStatus op_status) {
  if (injector_ == nullptr) return GpuStatus::kOk;
  if (injector_->should_fire("gpu.sick")) return GpuStatus::kDeviceSick;
  if (injector_->should_fire(op_point)) return op_status;
  if (injector_->should_fire("gpu.timeout")) return GpuStatus::kTimeout;
  return GpuStatus::kOk;
}

void GpuDevice::charge_copy(u64 bytes, perf::Direction dir) {
  if (ledger_ == nullptr) return;
  const Picos occupancy = perf::ioh_copy_occupancy(bytes, dir);
  ledger_->charge({perf::ResourceKind::kGpuCopy, static_cast<u16>(gpu_id_)}, occupancy);
  if (streams_.size() <= 1) {
    // Without "concurrent copy and execution" (section 5.4), the device
    // serializes transfers and kernels: copy time also occupies the
    // execution engine. Multiple streams lift this.
    ledger_->charge({perf::ResourceKind::kGpuExec, static_cast<u16>(gpu_id_)}, occupancy);
  }
  const auto channel = dir == perf::Direction::kHostToDevice ? perf::ResourceKind::kIohH2d
                                                             : perf::ResourceKind::kIohD2h;
  ledger_->charge({channel, static_cast<u16>(ioh_)}, occupancy);
}

GpuResult GpuDevice::memcpy_h2d(DeviceBuffer& dst, std::size_t dst_offset,
                                std::span<const u8> src, StreamId stream, Picos submit_time) {
  MutexLock lock(op_mu_);
  assert(dst_offset + src.size() <= dst.size());
  if (const GpuStatus st = check_fault("gpu.copy", GpuStatus::kCopyFailed);
      st != GpuStatus::kOk) {
    // Failed DMA: the driver call still burns CPU, nothing lands on device.
    perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
    const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
    return {st, start, start};
  }
  std::memcpy(dst.data() + dst_offset, src.data(), src.size());
  if (injector_ != nullptr && !src.empty() &&
      injector_->should_fire(fault::Point::kPcieH2dCorrupt)) {
    // Silent PCIe transfer error: a bit lands flipped on the device while
    // the copy still reports kOk. The first byte of the transfer is hit so
    // chaos tests can reason about exactly which staged item is wrong.
    dst.data()[dst_offset] ^= 0x01;
  }
  bytes_h2d_ += src.size();
  charge_copy(src.size(), perf::Direction::kHostToDevice);
  // CPU time spent in the CUDA library (driver call + stream overhead).
  perf::charge_cpu_cycles(perf::kGpuDriverCallCycles +
                          to_seconds(stream_call_overhead()) * perf::kCpuHz);

  const Picos duration =
      perf::pcie_transfer_time(src.size(), perf::Direction::kHostToDevice) +
      stream_call_overhead();
  const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
  const Picos end = start + duration;
  streams_[stream] = end;
  // Back-to-back copies pipeline their handshakes: the engine frees after
  // the occupancy portion, before the full one-shot latency elapses.
  copy_engine_free_ =
      start + perf::ioh_copy_occupancy(src.size(), perf::Direction::kHostToDevice);
  const GpuResult result{GpuStatus::kOk, start, end};
  if (op_observer_) op_observer_(GpuOp::kH2d, result);
  return result;
}

GpuResult GpuDevice::memcpy_d2h(std::span<u8> dst, const DeviceBuffer& src,
                                std::size_t src_offset, StreamId stream, Picos submit_time) {
  MutexLock lock(op_mu_);
  assert(src_offset + dst.size() <= src.size());
  if (const GpuStatus st = check_fault("gpu.copy", GpuStatus::kCopyFailed);
      st != GpuStatus::kOk) {
    perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
    const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
    return {st, start, start};
  }
  std::memcpy(dst.data(), src.data() + src_offset, dst.size());
  bool corrupt_result = pending_bad_result_;  // a lying kernel surfaces here
  pending_bad_result_ = false;
  if (injector_ != nullptr && !dst.empty() &&
      injector_->should_fire(fault::Point::kPcieD2hCorrupt)) {
    corrupt_result = true;
  }
  if (corrupt_result && !dst.empty()) {
    // Flip a bit in the first result byte, status still kOk: the host now
    // holds a wrong value it has no hardware-side reason to distrust.
    dst.data()[0] ^= 0x01;
  }
  bytes_d2h_ += dst.size();
  charge_copy(dst.size(), perf::Direction::kDeviceToHost);
  perf::charge_cpu_cycles(perf::kGpuDriverCallCycles +
                          to_seconds(stream_call_overhead()) * perf::kCpuHz);

  const Picos duration =
      perf::pcie_transfer_time(dst.size(), perf::Direction::kDeviceToHost) +
      stream_call_overhead();
  const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
  const Picos end = start + duration;
  streams_[stream] = end;
  copy_engine_free_ =
      start + perf::ioh_copy_occupancy(dst.size(), perf::Direction::kDeviceToHost);
  const GpuResult result{GpuStatus::kOk, start, end};
  if (op_observer_) op_observer_(GpuOp::kD2h, result);
  return result;
}

GpuResult GpuDevice::memcpy_d2h_scatter(std::span<const ScatterSeg> segs,
                                        const DeviceBuffer& src, StreamId stream,
                                        Picos submit_time) {
  MutexLock lock(op_mu_);
  u64 total = 0;
  for (const auto& seg : segs) {
    assert(seg.src_offset + seg.dst.size() <= src.size());
    total += seg.dst.size();
  }
  if (const GpuStatus st = check_fault("gpu.copy", GpuStatus::kCopyFailed);
      st != GpuStatus::kOk) {
    perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
    const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
    return {st, start, start};
  }
  for (const auto& seg : segs) {
    std::memcpy(seg.dst.data(), src.data() + seg.src_offset, seg.dst.size());
  }
  bool corrupt_result = pending_bad_result_;
  pending_bad_result_ = false;
  if (injector_ != nullptr && total > 0 &&
      injector_->should_fire(fault::Point::kPcieD2hCorrupt)) {
    corrupt_result = true;
  }
  if (corrupt_result && total > 0) {
    for (const auto& seg : segs) {
      if (seg.dst.empty()) continue;
      seg.dst.data()[0] ^= 0x01;
      break;
    }
  }
  bytes_d2h_ += total;
  charge_copy(total, perf::Direction::kDeviceToHost);
  perf::charge_cpu_cycles(perf::kGpuDriverCallCycles +
                          to_seconds(stream_call_overhead()) * perf::kCpuHz);

  const Picos duration = perf::pcie_transfer_time(total, perf::Direction::kDeviceToHost) +
                         stream_call_overhead();
  const Picos start = std::max({submit_time, streams_.at(stream), copy_engine_free_});
  const Picos end = start + duration;
  streams_[stream] = end;
  copy_engine_free_ =
      start + perf::ioh_copy_occupancy(total, perf::Direction::kDeviceToHost);
  const GpuResult result{GpuStatus::kOk, start, end};
  if (op_observer_) op_observer_(GpuOp::kD2h, result);
  return result;
}

GpuResult GpuDevice::launch(const KernelLaunch& kernel, StreamId stream, Picos submit_time,
                            ExecStats* stats_out) {
  MutexLock lock(op_mu_);
  if (const GpuStatus st = check_fault("gpu.launch", GpuStatus::kLaunchFailed);
      st != GpuStatus::kOk) {
    perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
    const Picos start = std::max({submit_time, streams_.at(stream), exec_engine_free_});
    return {st, start, start};
  }
  const ExecStats stats = executor_->run(kernel.threads, kernel.body, kernel.track_divergence);
  if (stats_out != nullptr) *stats_out = stats;
  if (injector_ != nullptr && injector_->should_fire(fault::Point::kGpuBadResult)) {
    // Miscomputation: the launch reports success but one result is wrong.
    // Deferred to the next D2H because the device cannot know which buffer
    // the kernel treated as output.
    pending_bad_result_ = true;
  }
  ++kernels_launched_;
  perf::charge_cpu_cycles(perf::kGpuDriverCallCycles +
                          to_seconds(stream_call_overhead()) * perf::kCpuHz);

  // Measured divergence overrides the static estimate when tracking is on.
  perf::KernelCost cost = kernel.cost;
  if (kernel.track_divergence) cost.warp_efficiency *= stats.warp_efficiency;

  const Picos exec = perf::gpu_exec_time(kernel.threads, cost);
  const Picos launch = perf::gpu_launch_latency(kernel.threads);
  const Picos duration = launch + exec + stream_call_overhead();
  if (ledger_ != nullptr) {
    // Launching occupies the device front-end: back-to-back small kernels
    // serialize on it, which is what gather/scatter amortizes (§5.4).
    ledger_->charge({perf::ResourceKind::kGpuExec, static_cast<u16>(gpu_id_)}, launch + exec);
  }

  const Picos start = std::max({submit_time, streams_.at(stream), exec_engine_free_});
  const Picos end = start + duration;
  streams_[stream] = end;
  exec_engine_free_ = end;  // one kernel at a time on the device (section 7)
  const GpuResult result{GpuStatus::kOk, start, end};
  if (op_observer_) op_observer_(GpuOp::kKernel, result);
  return result;
}

GpuResult GpuDevice::probe(Picos submit_time) {
  MutexLock lock(op_mu_);
  if (const GpuStatus st = check_fault("gpu.launch", GpuStatus::kLaunchFailed);
      st != GpuStatus::kOk) {
    perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
    return {st, submit_time, submit_time};
  }
  // A minimal one-thread launch: enough to exercise driver + front-end.
  perf::charge_cpu_cycles(perf::kGpuDriverCallCycles);
  const Picos start = std::max({submit_time, exec_engine_free_});
  const Picos end = start + perf::gpu_launch_latency(1);
  exec_engine_free_ = end;
  return {GpuStatus::kOk, start, end};
}

Picos GpuDevice::synchronize() const {
  MutexLock lock(op_mu_);
  Picos latest = 0;
  for (const Picos tail : streams_) latest = std::max(latest, tail);
  return latest;
}

void GpuDevice::reset_timeline() {
  MutexLock lock(op_mu_);
  std::fill(streams_.begin(), streams_.end(), 0);
  exec_engine_free_ = 0;
  copy_engine_free_ = 0;
}

}  // namespace ps::gpu
