// Simulated NVIDIA GTX480 device: device-memory allocation, host<->device
// copies, kernel launches, CUDA-style streams, and the copy/exec engine
// timeline that models "concurrent copy and execution" (section 5.4).
//
// Functional results come from SimtExecutor; all times come from the
// calibrated model in ps::perf. Copies additionally charge the IOH channel
// the card hangs off, which is how GPU traffic competes with NIC DMA for
// the ~40 Gbps dual-IOH budget (sections 3.2, 6.3).
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "fault/fault_injector.hpp"
#include "gpu/executor.hpp"
#include "pcie/topology.hpp"
#include "perf/ledger.hpp"
#include "perf/model.hpp"

namespace ps::gpu {

class GpuDevice;

/// Shared memory-accounting block for one device. Buffers co-own it so a
/// buffer that outlives its GpuDevice (e.g. app state torn down after the
/// testbed) still releases its accounting safely instead of dereferencing
/// a dead device.
struct DeviceMemAccount {
  Mutex mu;
  u64 allocated GUARDED_BY(mu) = 0;
};

/// RAII device-memory allocation (the CUDA cudaMalloc/cudaFree pair).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(GpuDevice* device, std::size_t bytes);
  ~DeviceBuffer();

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  u8* data() noexcept { return storage_.data(); }
  const u8* data() const noexcept { return storage_.data(); }
  std::size_t size() const noexcept { return storage_.size(); }
  bool valid() const noexcept { return account_ != nullptr; }

  template <typename T>
  T* as() noexcept {
    return reinterpret_cast<T*>(storage_.data());
  }
  template <typename T>
  const T* as() const noexcept {
    return reinterpret_cast<const T*>(storage_.data());
  }

 private:
  void release() noexcept;

  std::shared_ptr<DeviceMemAccount> account_;
  std::vector<u8> storage_;
};

using StreamId = u32;
inline constexpr StreamId kDefaultStream = 0;

/// Outcome of one device operation. Real CUDA calls can fail (launch
/// errors, copy timeouts, a wedged device); every device API reports a
/// status instead of asserting so the caller can retry or fall back.
enum class GpuStatus : u8 {
  kOk = 0,
  kLaunchFailed,  // kernel launch rejected by the driver
  kCopyFailed,    // DMA transfer error
  kTimeout,       // operation exceeded its watchdog deadline
  kDeviceSick,    // device-wide failure (all ops fail until it recovers)
};

const char* to_string(GpuStatus status);

/// Status + timing of one device operation on the modeled clock. On
/// failure the functional work did not happen and the stream tail does
/// not advance (start == end == the would-be start time).
struct GpuResult {
  GpuStatus status = GpuStatus::kOk;
  Picos start = 0;
  Picos end = 0;
  bool ok() const { return status == GpuStatus::kOk; }
  Picos duration() const { return end - start; }
};

/// Legacy name: call sites that only consume timing keep compiling.
using OpTiming = GpuResult;

/// Data-path operation classes, for the op observer below.
enum class GpuOp : u8 { kH2d = 0, kKernel, kD2h };

/// One entry of a scatter D2H descriptor list: `dst.size()` bytes starting
/// at `src_offset` in the device source buffer land at `dst` on the host.
struct ScatterSeg {
  std::span<u8> dst;
  std::size_t src_offset = 0;
};

struct KernelLaunch {
  std::string name;
  u32 threads = 0;
  KernelBody body;
  perf::KernelCost cost;
  bool track_divergence = false;
};

class GpuDevice {
 public:
  GpuDevice(int gpu_id, const pcie::Topology& topo,
            std::shared_ptr<SimtExecutor> executor = nullptr);

  int gpu_id() const { return gpu_id_; }
  int numa_node() const { return node_; }

  void set_ledger(perf::CostLedger* ledger) { ledger_ = ledger; }

  /// Attach a chaos-test fault injector (nullptr = faults off). Checked
  /// points: "gpu.sick" (device-wide, all ops), "gpu.launch", "gpu.copy",
  /// "gpu.timeout" — all *loud* (a failing status returns) — plus the
  /// *silent* corruption points "pcie.h2d_corrupt", "pcie.d2h_corrupt",
  /// and "gpu.bad_result", which flip data while still reporting kOk.
  void set_fault_injector(fault::FaultInjector* injector) {
    injector_ = injector;
    if (injector_ != nullptr) {
      injector_->register_point(fault::Point::kPcieH2dCorrupt);
      injector_->register_point(fault::Point::kPcieD2hCorrupt);
      injector_->register_point(fault::Point::kGpuBadResult);
    }
  }

  /// Allocate device memory; throws std::bad_alloc past the 1.5 GB card
  /// capacity (section 2.1).
  DeviceBuffer alloc(std::size_t bytes) { return DeviceBuffer(this, bytes); }
  u64 allocated_bytes() const {
    MutexLock lock(mem_->mu);
    return mem_->allocated;
  }

  /// Create an additional stream (stream 0 always exists). Multiple live
  /// streams put the device in "streamed" mode, which adds the per-CUDA-
  /// call overhead the paper observed hurting lightweight kernels (§5.4).
  StreamId create_stream();
  u32 stream_count() const {
    MutexLock lock(op_mu_);
    return static_cast<u32>(streams_.size());
  }

  // --- operations ----------------------------------------------------------
  // Each performs the work immediately (functionally) and returns status +
  // modeled timing: start = max(submit_time, stream tail, engine free).
  // On an injected fault the work is skipped and a failing status returns.

  GpuResult memcpy_h2d(DeviceBuffer& dst, std::size_t dst_offset, std::span<const u8> src,
                       StreamId stream = kDefaultStream, Picos submit_time = 0);
  GpuResult memcpy_d2h(std::span<u8> dst, const DeviceBuffer& src, std::size_t src_offset,
                       StreamId stream = kDefaultStream, Picos submit_time = 0);

  /// Scatter variant of memcpy_d2h: one DMA transaction driven by a
  /// descriptor list, writing each segment straight to its host address
  /// (e.g. a packet frame) instead of bouncing through a contiguous
  /// staging buffer. Costed as a single transfer of the summed bytes —
  /// the DMA engine walks the list at line rate, exactly as NIC DMA
  /// already scatters per-packet — so it charges one latency + one driver
  /// call, not one per segment. Fault semantics match memcpy_d2h: a
  /// "pcie.d2h_corrupt" (or deferred bad-result) hit flips one bit in the
  /// first non-empty segment while still reporting kOk.
  GpuResult memcpy_d2h_scatter(std::span<const ScatterSeg> segs, const DeviceBuffer& src,
                               StreamId stream = kDefaultStream, Picos submit_time = 0);

  /// Launch a kernel; returns status + modeled timing and fills `stats_out`
  /// (if non-null) with functional divergence statistics.
  GpuResult launch(const KernelLaunch& kernel, StreamId stream = kDefaultStream,
                   Picos submit_time = 0, ExecStats* stats_out = nullptr);

  /// Health probe: a trivial no-op launch through the same fault gates.
  /// The watchdog uses this to decide when a sick device may be re-admitted.
  GpuResult probe(Picos submit_time = 0);

  using OpObserver = std::function<void(GpuOp, const GpuResult&)>;
  /// Observe every *successful* data-path op (h2d / kernel / d2h; probes
  /// excluded). Called on the op's calling thread, after the op completes,
  /// with the device's op lock held — keep the callback tiny and never
  /// call back into the device. Null detaches. The pipeline tracer uses
  /// this to stamp batch spans at the device stage boundaries.
  void set_op_observer(OpObserver cb) {
    MutexLock lock(op_mu_);
    op_observer_ = std::move(cb);
  }

  /// Modeled completion time of everything enqueued on a stream.
  Picos stream_tail(StreamId stream) const {
    MutexLock lock(op_mu_);
    return streams_.at(stream);
  }

  /// Modeled completion time of all streams (cudaDeviceSynchronize).
  Picos synchronize() const;

  /// Reset all modeled clocks to zero (between benchmark runs).
  void reset_timeline();

  /// Cumulative counters. Mutated by ops under op_mu_; sampling threads
  /// (benches, telemetry probes) take the same lock for a torn-free read.
  u64 kernels_launched() const {
    MutexLock lock(op_mu_);
    return kernels_launched_;
  }
  u64 bytes_h2d() const {
    MutexLock lock(op_mu_);
    return bytes_h2d_;
  }
  u64 bytes_d2h() const {
    MutexLock lock(op_mu_);
    return bytes_d2h_;
  }

 private:
  friend class DeviceBuffer;

  Picos stream_call_overhead() const REQUIRES(op_mu_);
  void charge_copy(u64 bytes, perf::Direction dir) REQUIRES(op_mu_);
  /// Fault gate for one op: "gpu.sick" first, then the op's own point.
  /// Returns kOk when no injector is attached or nothing fires.
  GpuStatus check_fault(std::string_view op_point, GpuStatus op_status);

  int gpu_id_;
  int node_;
  int ioh_;
  std::shared_ptr<SimtExecutor> executor_;
  perf::CostLedger* ledger_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  // Serializes device operations: a master thread and a control-plane
  // table update (DynamicIpv4ForwardApp::sync) may touch one device
  // concurrently, like the CUDA driver's per-context lock.
  mutable Mutex op_mu_;

  OpObserver op_observer_ GUARDED_BY(op_mu_);

  std::vector<Picos> streams_ GUARDED_BY(op_mu_);  // per-stream tail time
  Picos exec_engine_free_ GUARDED_BY(op_mu_) = 0;
  Picos copy_engine_free_ GUARDED_BY(op_mu_) = 0;

  std::shared_ptr<DeviceMemAccount> mem_ = std::make_shared<DeviceMemAccount>();
  // Set by an injected "gpu.bad_result": the kernel "completed" but one
  // result is wrong. The device cannot know which host buffer will read
  // the results, so the corruption materializes on the next D2H copy.
  bool pending_bad_result_ GUARDED_BY(op_mu_) = false;
  u64 kernels_launched_ GUARDED_BY(op_mu_) = 0;
  u64 bytes_h2d_ GUARDED_BY(op_mu_) = 0;
  u64 bytes_d2h_ GUARDED_BY(op_mu_) = 0;
};

}  // namespace ps::gpu
