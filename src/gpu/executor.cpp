#include "gpu/executor.hpp"

#include <bit>
#include <memory>

namespace ps::gpu {
namespace {
constexpr u32 kBlockThreads = 4096;  // work-claim granularity for the pool
}

SimtExecutor::SimtExecutor(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimtExecutor::~SimtExecutor() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void SimtExecutor::run_range(const KernelBody& body, ps::atomic<u64>* path_words,
                             u32 begin, u32 end) {
  for (u32 tid = begin; tid < end; ++tid) {
    ThreadCtx ctx(tid, path_words);
    body(ctx);
  }
}

void SimtExecutor::worker_loop() {
  u64 seen_generation = 0;
  while (true) {
    const KernelBody* body = nullptr;
    ps::atomic<u64>* path_words = nullptr;
    u32 total_threads = 0;
    u32 total_blocks = 0;
    {
      MutexLock lock(mu_);
      while (!stopping_ && generation_ == seen_generation) work_cv_.wait(mu_);
      if (stopping_) return;
      seen_generation = generation_;
      // Copy the launch payload in the same critical section that
      // observed the generation bump. A worker that wakes only after the
      // launcher finished this launch without it copies the cleared
      // payload (zero blocks) and goes straight back to sleep instead of
      // touching members the next launch may be republishing.
      body = body_;
      path_words = path_words_;
      total_threads = total_threads_;
      total_blocks = total_blocks_;
      // Late waker for an already-finished launch: the payload was
      // cleared, so there is nothing to claim. It must not touch
      // next_block_ either — a stale fetch_add landing after the next
      // launch resets the counter would consume a block index that is
      // never processed, and that launch's run() would wait forever.
      if (total_blocks == 0) continue;
      ++active_workers_;
    }
    // Claim blocks until the grid is exhausted.
    while (true) {
      const u32 block = next_block_.fetch_add(1, std::memory_order_relaxed);
      if (block >= total_blocks) break;
      const u32 begin = block * kBlockThreads;
      const u32 end = std::min(total_threads, begin + kBlockThreads);
      run_range(*body, path_words, begin, end);
      blocks_done_.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      MutexLock lock(mu_);
      --active_workers_;
    }
    // run() waits for full quiescence so the next launch can safely reset
    // the shared launch state.
    done_cv_.notify_all();
  }
}

ExecStats SimtExecutor::run(u32 threads, const KernelBody& body, bool track_divergence) {
  ExecStats stats;
  stats.threads = threads;
  stats.warps = (threads + perf::kGpuWarpSize - 1) / perf::kGpuWarpSize;
  if (threads == 0) return stats;

  MutexLock launch_lock(launch_mu_);

  // mc: gpu.path_words -- per-warp divergence bitmasks, relaxed fetch_or
  std::unique_ptr<ps::atomic<u64>[]> paths;
  if (track_divergence) {
    // mc: gpu.path_words
    paths = std::make_unique<ps::atomic<u64>[]>(stats.warps);
    for (u32 i = 0; i < stats.warps; ++i) paths[i].store(0, std::memory_order_relaxed);
  }

  const u32 blocks = (threads + kBlockThreads - 1) / kBlockThreads;

  if (workers_.empty()) {
    run_range(body, paths.get(), 0, threads);
  } else {
    next_block_.store(0, std::memory_order_relaxed);
    blocks_done_.store(0, std::memory_order_relaxed);
    {
      // Publish the payload and the generation bump atomically: workers
      // snapshot both in one critical section, so they see either this
      // launch in full or not at all.
      MutexLock lock(mu_);
      body_ = &body;
      path_words_ = paths.get();
      total_threads_ = threads;
      total_blocks_ = blocks;
      ++generation_;
    }
    work_cv_.notify_all();
    // The launching thread helps, then waits for completion AND worker
    // quiescence (a straggler must not observe the next launch's state).
    while (true) {
      const u32 block = next_block_.fetch_add(1, std::memory_order_relaxed);
      if (block >= blocks) break;
      const u32 begin = block * kBlockThreads;
      const u32 end = std::min(threads, begin + kBlockThreads);
      run_range(body, paths.get(), begin, end);
      blocks_done_.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      MutexLock lock(mu_);
      while (!(blocks_done_.load(std::memory_order_acquire) == blocks &&
               active_workers_ == 0)) {
        done_cv_.wait(mu_);
      }
      // Clear the payload for late wakers: a worker still asleep for this
      // generation will copy zero blocks and claim nothing.
      body_ = nullptr;
      path_words_ = nullptr;
      total_threads_ = 0;
      total_blocks_ = 0;
    }
  }

  if (track_divergence) {
    // Lockstep cost: a warp whose threads took k distinct paths executes
    // all k paths with masking, so its useful-lane fraction is 1/k.
    double sum_efficiency = 0.0;
    for (u32 w = 0; w < stats.warps; ++w) {
      const int k = std::popcount(paths[w].load(std::memory_order_relaxed));
      sum_efficiency += k <= 1 ? 1.0 : 1.0 / static_cast<double>(k);
    }
    stats.warp_efficiency = sum_efficiency / static_cast<double>(stats.warps);
  }

  return stats;
}

}  // namespace ps::gpu
