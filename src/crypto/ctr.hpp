// AES-128 in counter mode per RFC 3686 (the IPsec profile the paper's
// gateway uses): counter block = nonce(4) | IV(8) | block counter(4),
// counter starting at 1.
//
// Each 16-byte block's keystream depends only on the block index, which is
// exactly the parallelism the paper maps to one GPU thread per block.
#pragma once

#include <span>

#include "crypto/aes.hpp"

namespace ps::crypto {

inline constexpr std::size_t kCtrNonceSize = 4;
inline constexpr std::size_t kCtrIvSize = 8;

/// Encrypt/decrypt (XOR keystream) `data` in place. CTR is symmetric.
void aes_ctr_crypt(const Aes128& cipher, std::span<const u8, kCtrNonceSize> nonce,
                   std::span<const u8, kCtrIvSize> iv, std::span<u8> data);

/// Process exactly one 16-byte-aligned block slice of a message:
/// block_index selects the counter value; `block` is that block's bytes
/// (may be shorter at the tail). This is the per-GPU-thread unit.
void aes_ctr_crypt_block(const u8* key_schedule, const u8* nonce, const u8* iv,
                         u32 block_index, u8* block, std::size_t block_len);

}  // namespace ps::crypto
