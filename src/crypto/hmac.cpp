#include "crypto/hmac.hpp"

#include <cstring>

namespace ps::crypto {

std::array<u8, kSha1DigestSize> hmac_sha1(std::span<const u8> key, std::span<const u8> data) {
  u8 key_block[kSha1BlockSize] = {};
  if (key.size() > kSha1BlockSize) {
    const auto hashed = sha1(key);
    std::memcpy(key_block, hashed.data(), hashed.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  u8 ipad[kSha1BlockSize];
  u8 opad[kSha1BlockSize];
  for (std::size_t i = 0; i < kSha1BlockSize; ++i) {
    ipad[i] = static_cast<u8>(key_block[i] ^ 0x36);
    opad[i] = static_cast<u8>(key_block[i] ^ 0x5c);
  }

  Sha1 inner;
  inner.update({ipad, kSha1BlockSize});
  inner.update(data);
  std::array<u8, kSha1DigestSize> inner_digest;
  inner.final(inner_digest);

  Sha1 outer;
  outer.update({opad, kSha1BlockSize});
  outer.update(inner_digest);
  std::array<u8, kSha1DigestSize> digest;
  outer.final(digest);
  return digest;
}

std::array<u8, kHmacSha1_96Size> hmac_sha1_96(std::span<const u8> key, std::span<const u8> data) {
  const auto full = hmac_sha1(key, data);
  std::array<u8, kHmacSha1_96Size> truncated;
  std::memcpy(truncated.data(), full.data(), truncated.size());
  return truncated;
}

}  // namespace ps::crypto
