// HMAC-SHA1 (RFC 2104) and the 96-bit truncation IPsec uses for the ESP
// integrity check value (RFC 2404).
#pragma once

#include <array>
#include <span>

#include "crypto/sha1.hpp"

namespace ps::crypto {

inline constexpr std::size_t kHmacSha1_96Size = 12;

/// Full 20-byte HMAC-SHA1 tag.
std::array<u8, kSha1DigestSize> hmac_sha1(std::span<const u8> key, std::span<const u8> data);

/// ESP's truncated 96-bit tag (first 12 bytes).
std::array<u8, kHmacSha1_96Size> hmac_sha1_96(std::span<const u8> key, std::span<const u8> data);

}  // namespace ps::crypto
