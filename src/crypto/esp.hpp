// ESP tunnel mode (RFC 4303) with AES-128-CTR + HMAC-SHA1-96 — the IPsec
// configuration of section 6.2.4. Includes a security-association database
// and a sliding anti-replay window.
#pragma once

#include <array>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/ctr.hpp"
#include "crypto/hmac.hpp"
#include "net/packet.hpp"

namespace ps::crypto {

struct SecurityAssociation {
  u32 spi = 0;
  std::array<u8, kAesKeySize> aes_key{};
  std::array<u8, kCtrNonceSize> nonce{};
  std::array<u8, kSha1DigestSize> auth_key{};
  net::Ipv4Addr tunnel_src;
  net::Ipv4Addr tunnel_dst;

  u32 next_seq = 1;  // outbound sequence number

  // Inbound anti-replay: highest sequence seen + 64-packet window bitmap.
  u32 replay_high = 0;
  u64 replay_window = 0;

  Aes128 cipher;  // expanded from aes_key by SaDatabase::add

  /// Deterministic test SA with keys derived from `seed`.
  static SecurityAssociation make_test_sa(u32 spi, net::Ipv4Addr src, net::Ipv4Addr dst,
                                          u64 seed = 42);
};

/// Fixed per-packet ESP byte overhead before padding:
/// outer IPv4 (20) + ESP header (8) + IV (8) + trailer (2) + ICV (12).
inline constexpr u32 kEspFixedOverhead = 20 + 8 + 8 + 2 + kHmacSha1_96Size;

/// Bytes of AES payload for an inner IP packet of `inner_len` bytes
/// (inner + pad + 2-byte trailer), for the cost model.
u32 esp_cipher_bytes(u32 inner_len);

/// Total output frame size for an input Ethernet frame of `frame_len`.
u32 esp_output_frame_size(u32 frame_len);

enum class EspError : u8 {
  kOk = 0,
  kNotEsp,
  kUnknownSpi,
  kAuthFailed,
  kReplayed,
  kMalformed,
};

const char* to_string(EspError e);

/// Byte layout of a built ESP frame, for split CPU/GPU processing.
struct EspLayout {
  u32 esp_offset = 0;      // ESP header start (HMAC coverage starts here)
  u32 payload_offset = 0;  // first ciphertext byte (after the 8 B IV)
  u32 cipher_len = 0;      // bytes under AES-CTR
  u32 icv_offset = 0;      // 12 B ICV position
};

/// Build the tunnel frame with the payload still in plaintext and the ICV
/// zeroed — the pre-shading half of the GPU path (crypto happens on the
/// device). `seq` is the explicit ESP sequence number. Returns empty on
/// malformed input.
std::vector<u8> esp_build_unencrypted(const SecurityAssociation& sa, std::span<const u8> frame,
                                      u32 seq, EspLayout* layout = nullptr);

/// Full CPU encapsulation with explicit sequence number (const SA; safe
/// from concurrent workers that allocate their own sequence numbers).
std::vector<u8> esp_encapsulate(const SecurityAssociation& sa, std::span<const u8> frame,
                                u32 seq);

/// Convenience wrapper advancing sa.next_seq.
std::vector<u8> esp_encapsulate(SecurityAssociation& sa, std::span<const u8> frame);

/// Decapsulate and verify; returns the reconstructed inner Ethernet frame
/// (original L2 addresses are synthesized from the tunnel ports).
/// Checks HMAC before decrypting and enforces the anti-replay window.
EspError esp_decapsulate(SecurityAssociation& sa, std::span<const u8> frame,
                         std::vector<u8>& inner_out);

class SaDatabase {
 public:
  /// Add (or replace) an SA; expands its AES key schedule.
  SecurityAssociation& add(SecurityAssociation sa);
  SecurityAssociation* by_spi(u32 spi);
  const SecurityAssociation* by_spi(u32 spi) const;
  std::size_t size() const { return sas_.size(); }

 private:
  std::unordered_map<u32, SecurityAssociation> sas_;
};

}  // namespace ps::crypto
