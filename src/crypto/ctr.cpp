#include "crypto/ctr.hpp"

#include <cstring>

#include "common/endian.hpp"

namespace ps::crypto {

void aes_ctr_crypt_block(const u8* key_schedule, const u8* nonce, const u8* iv,
                         u32 block_index, u8* block, std::size_t block_len) {
  u8 counter_block[kAesBlockSize];
  std::memcpy(counter_block, nonce, kCtrNonceSize);
  std::memcpy(counter_block + kCtrNonceSize, iv, kCtrIvSize);
  store_be32(counter_block + kCtrNonceSize + kCtrIvSize, block_index + 1);  // RFC 3686: from 1

  u8 keystream[kAesBlockSize];
  Aes128::encrypt_block_with_schedule(key_schedule, counter_block, keystream);

  for (std::size_t i = 0; i < block_len; ++i) block[i] ^= keystream[i];
}

void aes_ctr_crypt(const Aes128& cipher, std::span<const u8, kCtrNonceSize> nonce,
                   std::span<const u8, kCtrIvSize> iv, std::span<u8> data) {
  const u8* schedule = cipher.round_keys().data();
  u32 block = 0;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t len = std::min(kAesBlockSize, data.size() - offset);
    aes_ctr_crypt_block(schedule, nonce.data(), iv.data(), block, data.data() + offset, len);
    ++block;
    offset += len;
  }
}

}  // namespace ps::crypto
