// SHA-1 (FIPS 180-1), implemented from scratch.
//
// The 64-byte block chain has a data dependency between blocks, so —
// unlike AES-CTR — SHA-1 can only be parallelized at packet granularity
// (section 6.2.4); the IPsec shader maps one packet's HMAC to one thread.
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"

namespace ps::crypto {

inline constexpr std::size_t kSha1DigestSize = 20;
inline constexpr std::size_t kSha1BlockSize = 64;

class Sha1 {
 public:
  Sha1() { reset(); }

  void reset();
  void update(std::span<const u8> data);
  void final(std::span<u8, kSha1DigestSize> digest);

 private:
  void process_block(const u8* block);

  std::array<u32, 5> state_{};
  std::array<u8, kSha1BlockSize> buffer_{};
  u64 total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// One-shot convenience.
std::array<u8, kSha1DigestSize> sha1(std::span<const u8> data);

}  // namespace ps::crypto
