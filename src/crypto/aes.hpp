// AES-128 block cipher, implemented from scratch (FIPS-197).
//
// Only encryption is needed: CTR mode (RFC 3686) uses the forward cipher
// for both directions. The per-16 B-block structure is what the paper's
// IPsec shader exploits — one GPU thread per AES block (section 6.2.4).
#pragma once

#include <array>
#include <span>

#include "common/types.hpp"

namespace ps::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAesKeySize = 16;

class Aes128 {
 public:
  Aes128() = default;
  explicit Aes128(std::span<const u8, kAesKeySize> key) { set_key(key); }

  void set_key(std::span<const u8, kAesKeySize> key);

  /// Encrypt one 16-byte block (in and out may alias).
  void encrypt_block(const u8* in, u8* out) const;

  /// Round keys, exposed so a GPU kernel can be handed the expanded key
  /// schedule instead of re-expanding per thread.
  std::span<const u8> round_keys() const { return {round_keys_.data(), round_keys_.size()}; }

  /// Stateless block encryption against a pre-expanded key schedule
  /// (176 bytes) — the routine shared by the CPU and GPU code paths.
  static void encrypt_block_with_schedule(const u8* schedule, const u8* in, u8* out);

 private:
  static constexpr int kRounds = 10;
  std::array<u8, kAesBlockSize*(kRounds + 1)> round_keys_{};
};

}  // namespace ps::crypto
