#include "crypto/sha1.hpp"

#include <cstring>

#include "common/endian.hpp"

namespace ps::crypto {
namespace {
constexpr u32 rotl32(u32 x, int n) { return (x << n) | (x >> (32 - n)); }
}

void Sha1::reset() {
  state_ = {0x67452301u, 0xefcdab89u, 0x98badcfeu, 0x10325476u, 0xc3d2e1f0u};
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const u8* block) {
  u32 w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  u32 a = state_[0], b = state_[1], c = state_[2], d = state_[3], e = state_[4];
  for (int i = 0; i < 80; ++i) {
    u32 f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const u32 temp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(std::span<const u8> data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ > 0) {
    const std::size_t take = std::min(kSha1BlockSize - buffered_, data.size());
    std::memcpy(buffer_.data() + buffered_, data.data(), take);
    buffered_ += take;
    offset = take;
    if (buffered_ == kSha1BlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }

  while (offset + kSha1BlockSize <= data.size()) {
    process_block(data.data() + offset);
    offset += kSha1BlockSize;
  }

  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

void Sha1::final(std::span<u8, kSha1DigestSize> digest) {
  const u64 bit_length = total_bytes_ * 8;

  const u8 pad_byte = 0x80;
  update({&pad_byte, 1});
  const u8 zero = 0;
  while (buffered_ != 56) update({&zero, 1});

  u8 length_be[8];
  store_be64(length_be, bit_length);
  update({length_be, 8});

  for (int i = 0; i < 5; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  reset();
}

std::array<u8, kSha1DigestSize> sha1(std::span<const u8> data) {
  Sha1 ctx;
  ctx.update(data);
  std::array<u8, kSha1DigestSize> digest;
  ctx.final(digest);
  return digest;
}

}  // namespace ps::crypto
