#include "crypto/esp.hpp"

#include <cstring>

#include "common/rng.hpp"

namespace ps::crypto {

namespace {
constexpr u8 kNextHeaderIpv4 = 4;  // IP-in-IP
}

const char* to_string(EspError e) {
  switch (e) {
    case EspError::kOk: return "ok";
    case EspError::kNotEsp: return "not-esp";
    case EspError::kUnknownSpi: return "unknown-spi";
    case EspError::kAuthFailed: return "auth-failed";
    case EspError::kReplayed: return "replayed";
    case EspError::kMalformed: return "malformed";
  }
  return "?";
}

SecurityAssociation SecurityAssociation::make_test_sa(u32 spi, net::Ipv4Addr src,
                                                      net::Ipv4Addr dst, u64 seed) {
  SecurityAssociation sa;
  sa.spi = spi;
  sa.tunnel_src = src;
  sa.tunnel_dst = dst;
  Rng rng(seed ^ spi);
  for (auto& b : sa.aes_key) b = static_cast<u8>(rng.next_u64());
  for (auto& b : sa.nonce) b = static_cast<u8>(rng.next_u64());
  for (auto& b : sa.auth_key) b = static_cast<u8>(rng.next_u64());
  sa.cipher.set_key(std::span<const u8, kAesKeySize>{sa.aes_key});
  return sa;
}

u32 esp_cipher_bytes(u32 inner_len) {
  const u32 pad = (4 - (inner_len + sizeof(net::EspTrailer)) % 4) % 4;
  return inner_len + pad + sizeof(net::EspTrailer);
}

u32 esp_output_frame_size(u32 frame_len) {
  const u32 inner_len = frame_len - sizeof(net::EthernetHeader);
  return sizeof(net::EthernetHeader) + kEspFixedOverhead - sizeof(net::EspTrailer) +
         esp_cipher_bytes(inner_len);
}

std::vector<u8> esp_build_unencrypted(const SecurityAssociation& sa, std::span<const u8> frame,
                                      u32 seq, EspLayout* layout) {
  net::PacketView view;
  if (net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()), view) !=
          net::ParseStatus::kOk ||
      view.ether_type != net::EtherType::kIpv4) {
    return {};
  }

  const std::span<const u8> inner = {frame.data() + view.l3_offset,
                                     frame.size() - view.l3_offset};
  const u32 pad = (4 - (inner.size() + sizeof(net::EspTrailer)) % 4) % 4;
  const u32 cipher_len = static_cast<u32>(inner.size()) + pad + sizeof(net::EspTrailer);

  const u32 out_size = sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header) +
                       sizeof(net::EspHeader) + kCtrIvSize + cipher_len + kHmacSha1_96Size;
  std::vector<u8> out(out_size, 0);

  // L2: tunnel endpoints' synthesized MACs; rewritten again at TX anyway.
  auto& eth = *reinterpret_cast<net::EthernetHeader*>(out.data());
  eth.set_src(net::MacAddr::for_port(sa.tunnel_src.value & 0xffff));
  eth.set_dst(net::MacAddr::for_port(sa.tunnel_dst.value & 0xffff));
  eth.set_ethertype(net::EtherType::kIpv4);

  // Outer IPv4.
  auto& ip = *reinterpret_cast<net::Ipv4Header*>(out.data() + sizeof(net::EthernetHeader));
  ip.set_version_ihl(4, 5);
  ip.set_total_length(static_cast<u16>(out_size - sizeof(net::EthernetHeader)));
  ip.ttl = 64;
  ip.set_proto(net::IpProto::kEsp);
  ip.set_src(sa.tunnel_src);
  ip.set_dst(sa.tunnel_dst);

  // ESP header.
  const u32 esp_offset = sizeof(net::EthernetHeader) + sizeof(net::Ipv4Header);
  auto& esp = *reinterpret_cast<net::EspHeader*>(out.data() + esp_offset);
  esp.set_spi(sa.spi);
  esp.set_sequence(seq);

  // Deterministic per-packet IV derived from the sequence number — the
  // standard construction for CTR-mode ESP (uniqueness is what matters).
  u8* iv = out.data() + esp_offset + sizeof(net::EspHeader);
  store_be32(iv, 0x50531001u);  // SA-lifetime salt
  store_be32(iv + 4, seq);

  // Plaintext: inner IP packet + pad + trailer.
  u8* payload = iv + kCtrIvSize;
  std::memcpy(payload, inner.data(), inner.size());
  for (u32 i = 0; i < pad; ++i) payload[inner.size() + i] = static_cast<u8>(i + 1);
  auto& trailer = *reinterpret_cast<net::EspTrailer*>(payload + inner.size() + pad);
  trailer.pad_length = static_cast<u8>(pad);
  trailer.next_header = kNextHeaderIpv4;

  net::ipv4_fill_checksum(ip);

  if (layout != nullptr) {
    layout->esp_offset = esp_offset;
    layout->payload_offset = esp_offset + sizeof(net::EspHeader) + kCtrIvSize;
    layout->cipher_len = cipher_len;
    layout->icv_offset = out_size - kHmacSha1_96Size;
  }
  return out;
}

std::vector<u8> esp_encapsulate(const SecurityAssociation& sa, std::span<const u8> frame,
                                u32 seq) {
  EspLayout layout;
  auto out = esp_build_unencrypted(sa, frame, seq, &layout);
  if (out.empty()) return out;

  u8* payload = out.data() + layout.payload_offset;
  const u8* iv = out.data() + layout.esp_offset + sizeof(net::EspHeader);

  // Encrypt.
  aes_ctr_crypt(sa.cipher, std::span<const u8, kCtrNonceSize>{sa.nonce},
                std::span<const u8, kCtrIvSize>{iv, kCtrIvSize},
                {payload, layout.cipher_len});

  // ICV over ESP header + IV + ciphertext (RFC 4303 §2.8).
  const auto icv = hmac_sha1_96(sa.auth_key, {out.data() + layout.esp_offset,
                                              sizeof(net::EspHeader) + kCtrIvSize +
                                                  layout.cipher_len});
  std::memcpy(out.data() + layout.icv_offset, icv.data(), icv.size());
  return out;
}

std::vector<u8> esp_encapsulate(SecurityAssociation& sa, std::span<const u8> frame) {
  return esp_encapsulate(sa, frame, sa.next_seq++);
}

namespace {

/// Anti-replay check and window update (RFC 4303 §3.4.3, 64-bit window).
bool replay_check_and_update(SecurityAssociation& sa, u32 seq) {
  if (seq == 0) return false;
  if (seq > sa.replay_high) {
    const u32 shift = seq - sa.replay_high;
    sa.replay_window = shift >= 64 ? 0 : sa.replay_window << shift;
    sa.replay_window |= 1;
    sa.replay_high = seq;
    return true;
  }
  const u32 offset = sa.replay_high - seq;
  if (offset >= 64) return false;  // too old
  const u64 bit = u64{1} << offset;
  if (sa.replay_window & bit) return false;  // duplicate
  sa.replay_window |= bit;
  return true;
}

}  // namespace

EspError esp_decapsulate(SecurityAssociation& sa, std::span<const u8> frame,
                         std::vector<u8>& inner_out) {
  net::PacketView view;
  if (net::parse_packet(const_cast<u8*>(frame.data()), static_cast<u32>(frame.size()), view) !=
          net::ParseStatus::kOk ||
      view.ether_type != net::EtherType::kIpv4 || view.ip_proto != net::IpProto::kEsp) {
    return EspError::kNotEsp;
  }

  const u32 esp_offset = view.l4_offset;
  const u32 esp_bytes = static_cast<u32>(frame.size()) - esp_offset;
  if (esp_bytes < sizeof(net::EspHeader) + kCtrIvSize + sizeof(net::EspTrailer) +
                      kHmacSha1_96Size) {
    return EspError::kMalformed;
  }

  const auto& esp = *reinterpret_cast<const net::EspHeader*>(frame.data() + esp_offset);
  if (esp.spi() != sa.spi) return EspError::kUnknownSpi;

  // Verify ICV before touching the ciphertext.
  const u32 icv_offset = static_cast<u32>(frame.size()) - kHmacSha1_96Size;
  const auto expected =
      hmac_sha1_96(sa.auth_key, {frame.data() + esp_offset, icv_offset - esp_offset});
  if (std::memcmp(expected.data(), frame.data() + icv_offset, kHmacSha1_96Size) != 0) {
    return EspError::kAuthFailed;
  }

  if (!replay_check_and_update(sa, esp.sequence())) return EspError::kReplayed;

  // Decrypt in a scratch copy.
  const u8* iv = frame.data() + esp_offset + sizeof(net::EspHeader);
  const u32 cipher_offset = esp_offset + sizeof(net::EspHeader) + kCtrIvSize;
  std::vector<u8> plain(frame.begin() + cipher_offset, frame.begin() + icv_offset);
  aes_ctr_crypt(sa.cipher, std::span<const u8, kCtrNonceSize>{sa.nonce},
                std::span<const u8, kCtrIvSize>{iv, kCtrIvSize}, plain);

  const auto& trailer =
      *reinterpret_cast<const net::EspTrailer*>(plain.data() + plain.size() -
                                                sizeof(net::EspTrailer));
  if (trailer.next_header != kNextHeaderIpv4 ||
      trailer.pad_length + sizeof(net::EspTrailer) > plain.size()) {
    return EspError::kMalformed;
  }
  const u32 inner_len =
      static_cast<u32>(plain.size()) - trailer.pad_length - sizeof(net::EspTrailer);

  // Rebuild an Ethernet frame around the inner IP packet.
  inner_out.assign(sizeof(net::EthernetHeader) + inner_len, 0);
  auto& eth = *reinterpret_cast<net::EthernetHeader*>(inner_out.data());
  eth.set_src(net::MacAddr::for_port(sa.tunnel_dst.value & 0xffff));
  eth.set_dst(net::MacAddr::broadcast());
  eth.set_ethertype(net::EtherType::kIpv4);
  std::memcpy(inner_out.data() + sizeof(net::EthernetHeader), plain.data(), inner_len);

  return EspError::kOk;
}

SecurityAssociation& SaDatabase::add(SecurityAssociation sa) {
  sa.cipher.set_key(std::span<const u8, kAesKeySize>{sa.aes_key});
  const u32 spi = sa.spi;
  return sas_.insert_or_assign(spi, std::move(sa)).first->second;
}

SecurityAssociation* SaDatabase::by_spi(u32 spi) {
  const auto it = sas_.find(spi);
  return it == sas_.end() ? nullptr : &it->second;
}

const SecurityAssociation* SaDatabase::by_spi(u32 spi) const {
  const auto it = sas_.find(spi);
  return it == sas_.end() ? nullptr : &it->second;
}

}  // namespace ps::crypto
