// Calibration constants for the performance model.
//
// Every paper-shaped number this repository reports is produced by charging
// functional work against the analytical resource model defined here. Each
// constant is annotated with the paper measurement it is fit to, so the
// provenance of every reproduced figure is auditable. See DESIGN.md §4.
#pragma once

#include "common/types.hpp"

namespace ps::perf {

// ---------------------------------------------------------------------------
// Host CPU: 2x Intel Xeon X5550 (Nehalem), 4 cores each, 2.66 GHz (Table 2).
// ---------------------------------------------------------------------------
inline constexpr double kCpuHz = 2.66e9;
inline constexpr int kCoresPerNode = 4;
inline constexpr int kNumNodes = 2;
inline constexpr int kTotalCores = kCoresPerNode * kNumNodes;

inline constexpr Picos cpu_cycles_to_picos(double cycles) {
  return static_cast<Picos>(cycles / kCpuHz * 1e12);
}

// ---------------------------------------------------------------------------
// Packet I/O engine CPU costs (fit to Figure 5: single core, two 10 GbE
// ports, 64 B packets; batch=1 forwards 0.78 Gbps => ~2400 cycles/packet,
// batch=64 forwards 10.5 Gbps => ~178 cycles/packet; speedup 13.5x).
//
// cycles(batch) = per_packet + per_batch / batch, split between the RX and
// TX halves of the path.
// ---------------------------------------------------------------------------
inline constexpr double kRxCyclesPerPacket = 65.0;
inline constexpr double kRxCyclesPerBatch = 1200.0;   // syscall + ring doorbells + IRQ
inline constexpr double kTxCyclesPerPacket = 58.0;
inline constexpr double kTxCyclesPerBatch = 1058.0;
// Copying a 64 B packet into the contiguous user buffer; scales with lines
// touched. Paper: copy is <20% of total packet I/O cycles (section 4.3).
inline constexpr double kCopyCyclesPerCacheLine = 12.0;

// ---------------------------------------------------------------------------
// Legacy skb path per-packet RX cost (fit to Table 3 percentages; total
// sized so the unbatched skb path is ~4x slower than our unbatched path,
// consistent with the Linux-vs-engine gap reported across section 4).
// Shares sum to 100%.
// ---------------------------------------------------------------------------
inline constexpr double kSkbRxTotalCycles = 2900.0;
inline constexpr double kSkbShareInit = 0.049;          // skb initialization
inline constexpr double kSkbShareAllocFree = 0.080;     // (de)allocation wrappers
inline constexpr double kSkbShareMemSubsystem = 0.502;  // slab + page allocator
inline constexpr double kSkbShareNicDriver = 0.133;     // incl. per-packet DMA mapping
inline constexpr double kSkbShareOthers = 0.098;
inline constexpr double kSkbShareCacheMiss = 0.138;     // compulsory misses from DMA

// Huge-packet-buffer path: what remains of each Table 3 bin once the paper's
// fixes are applied (section 4.2-4.3). Metadata shrinks 208 B -> 8 B; the
// slab path disappears entirely; software prefetch hides compulsory misses.
// These bins sum to kRxCyclesPerPacket so Table 3 and Figure 5 agree.
inline constexpr double kHugeBufMetadataInitCycles = 6.0;
inline constexpr double kHugeBufDriverCyclesPerPacket = 40.0;
inline constexpr double kHugeBufOtherCyclesPerPacket = 12.0;
inline constexpr double kHugeBufResidualMissCycles = 7.0;

// ---------------------------------------------------------------------------
// NUMA effects (section 4.5): node-crossing memory access is 40-50% slower
// and 20-30% lower bandwidth; NUMA-blind I/O caps forwarding below 25 Gbps
// vs ~40 Gbps NUMA-aware (~60% improvement).
// ---------------------------------------------------------------------------
inline constexpr double kRemoteAccessLatencyFactor = 1.45;
inline constexpr double kRemoteBandwidthFactor = 0.75;
// Extra CPU cycles per packet whose data lands in the remote node
// (remote access is 40-50% slower).
inline constexpr double kNumaBlindExtraCyclesPerPacket = 95.0;
// NUMA-blind DMA: RSS spreads packets over all cores, so half of all
// packet DMA targets remote memory and traverses both IOHs at reduced
// efficiency. Fit so blind forwarding sits just under 25 Gbps when aware
// forwarding is ~41 Gbps (the ~60% gap of section 4.5).
inline constexpr double kNumaBlindRemoteFraction = 0.5;
inline constexpr double kRemoteDmaCostFactor = 1.15;

// ---------------------------------------------------------------------------
// Multi-core pathologies (section 4.4): without cache-line alignment of
// per-queue data and per-queue statistics counters, per-packet cycles grow
// ~20% when scaling from one to eight cores.
// ---------------------------------------------------------------------------
inline constexpr double kFalseSharingExtraCyclesPerPacket8Cores = 0.12;  // fraction
inline constexpr double kSharedCounterExtraCyclesPerPacket8Cores = 0.08; // fraction

// ---------------------------------------------------------------------------
// PCIe / DMA transfer model (fit to Table 1):
//   transfer_time(bytes) = T0 + bytes / BW_peak
// Host-to-device: 256 B @55 MB/s, 1 MB @5577 MB/s  => T0=4.6 us, 6.0 GB/s
// Device-to-host: 256 B @63 MB/s, 1 MB @3394 MB/s  => T0=4.0 us, 3.6 GB/s
// (The d2h direction is slower because of the dual-IOH problem, §3.2.)
// ---------------------------------------------------------------------------
inline constexpr Picos kPcieH2dLatency = 4'600'000;  // 4.6 us
inline constexpr double kPcieH2dPeakBytesPerSec = 6.0e9;
inline constexpr Picos kPcieD2hLatency = 4'000'000;  // 4.0 us
inline constexpr double kPcieD2hPeakBytesPerSec = 3.6e9;

// IOH occupancy per DMA transaction (pipelined copies overlap the
// handshake, so occupancy excludes most of the one-shot latency above).
inline constexpr Picos kIohDmaSetupOverhead = 500'000;  // 0.5 us per batched copy

// ---------------------------------------------------------------------------
// IOH channel model (fit to Figure 6, 8 cores / 8 ports):
// per-packet NIC DMA time = (frame + descriptor) / BW_dir + overhead.
//   RX-only:  53.1 Gbps @64 B .. 59.9 Gbps @1514 B  => d2h 3.77 GB/s + 5.3 ns
//   TX-only:  79.3 Gbps @64 B .. 80 Gbps (line rate) => h2d 6.5 GB/s + 5.4 ns
//   Forward:  41.1 Gbps @64 B, >40 Gbps all sizes    => duplex coupling 0.435
// The duplex coupling expresses the dual-IOH anomaly: the two directions
// only partially overlap, so IOH busy time = max(d2h, h2d) + k * min(...).
// ---------------------------------------------------------------------------
inline constexpr double kIohD2hBytesPerSec = 3.77e9;
inline constexpr double kIohH2dBytesPerSec = 6.5e9;
inline constexpr Picos kNicDmaPerPacketOverhead = 5'300;  // 5.3 ns
inline constexpr double kIohDuplexCoupling = 0.435;
inline constexpr u32 kNicDescriptorBytes = 16;

// Single-IOH motherboards do not show the asymmetry (§3.2): with
// dual_ioh=false the model uses symmetric full-duplex channels.
inline constexpr double kIohSymmetricBytesPerSec = 6.5e9;

// 10 GbE line rate per port, on-the-wire (includes the 24 B overhead).
inline constexpr double kPortLineRateBitsPerSec = 10.0e9;

// NIC interrupt moderation delay (section 6.4 attributes the elevated
// latency at low offered load to it; ixgbe-class adapters batch interrupts
// on this order).
inline constexpr Picos kInterruptModerationDelay = 80'000'000;  // 80 us

// ---------------------------------------------------------------------------
// GPU model: NVIDIA GTX480 (section 2.1-2.2): 15 SMs x 32 SPs @1.4 GHz,
// 1.5 GB GDDR5 @177.4 GB/s, kernel launch 3.8 us for 1 thread and 4.1 us
// for 4096 threads (=> ~73 ps per additional thread).
// ---------------------------------------------------------------------------
inline constexpr int kGpuSmCount = 15;
inline constexpr int kGpuSpPerSm = 32;
inline constexpr int kGpuCores = kGpuSmCount * kGpuSpPerSm;  // 480
inline constexpr double kGpuHz = 1.4e9;
inline constexpr double kGpuMemBytesPerSec = 177.4e9;
inline constexpr u64 kGpuMemBytes = 1'500'000'000;
inline constexpr int kGpuMaxWarpsPerSm = 32;
inline constexpr int kGpuWarpSize = 32;

inline constexpr Picos kGpuLaunchBaseLatency = 3'800'000;  // 3.8 us
inline constexpr Picos kGpuLaunchPerThread = 73;           // 73 ps/thread

// CPU cycles the master thread spends in the CUDA driver per device call
// (copy or launch), independent of streams.
inline constexpr double kGpuDriverCallCycles = 200.0;

// Per-CUDA-call overhead when multiple streams are live (section 5.4:
// "having multiple streams adds non-trivial overhead for each CUDA library
// function call", enough to hurt lightweight kernels like IPv4 lookup).
inline constexpr Picos kGpuStreamCallOverhead = 5'000'000;  // 5 us

// Device-memory access latency (~780 GPU cycles, calibrated so Figure 2's
// GPU curve crosses one X5550 near batch 320). A thread's dependent access
// chain floors its kernel's execution time at accesses x latency; with
// enough threads, the throughput terms overtake the floor (section 2.1).
inline constexpr double kGpuMemLatencyCycles = 780.0;

// Effective bytes of device-memory bandwidth consumed per random access
// (32 B minimum GDDR5 transaction granularity; uncoalesced accesses cost a
// full segment just as every 4 B random host access costs a 64 B line, §2.4).
inline constexpr u32 kGpuRandomAccessBytes = 32;

// ---------------------------------------------------------------------------
// Application work profiles.
// ---------------------------------------------------------------------------

// CPU-side per-packet application cycles, on top of packet I/O. Fit to the
// CPU-only curves of Figure 11 at 64 B with 8 worker cores:
//   IPv4 ~28 Gbps => ~535 cycles total => ~390 cycles of lookup+rewrite.
//   IPv6 ~8 Gbps  => ~11.4 Mpps => ~1870 cycles => ~1720 cycles of lookup.
inline constexpr double kCpuIpv4LookupCycles = 390.0;
inline constexpr double kCpuIpv6LookupCyclesPerProbe = 245.0;  // x7 probes

// Batched (software-pipelined) lookup variants, used by the lookup_batch
// paths. The scalar constants above are dominated by the serialised DRAM
// miss: ~100 ns (kCpuMissLatencyNs) is ~266 cycles at 2.66 GHz, nearly all
// of kCpuIpv4LookupCycles. Interleaving kBatchInFlight = 8 keys overlaps
// those misses up to the measured per-core MLP (kCpuMlpSingleCore = 6
// alone, kCpuMlpAllCores = 4 with all cores loaded; section 2.4 of the
// paper). Charging at the all-cores MLP of 4, the per-key share of the miss
// drops from ~266 to ~266/4 ≈ 66 cycles; with the non-miss work unchanged
// (~124 cycles for IPv4) plus prefetch/bookkeeping overhead we charge
// ~290 cycles per IPv4 lookup and scale IPv6 per-probe cost by the same
// miss-overlap argument (each probe is one dependent hash-slot miss).
inline constexpr double kCpuIpv4LookupBatchCycles = 290.0;
inline constexpr double kCpuIpv6LookupBatchCyclesPerProbe = 190.0;
// Pre/post-shading per packet in CPU+GPU mode (gathering addresses,
// scattering results, TTL/checksum rewrite): 39 Gbps @64 B across 6 workers.
inline constexpr double kPreShadingCyclesPerPacket = 70.0;
inline constexpr double kPostShadingCyclesPerPacket = 60.0;

// GPU per-thread instruction counts (straightforward ports of the CPU code,
// section 5.5). Used by the kernel-time model.
inline constexpr double kGpuIpv4LookupInstr = 60.0;
inline constexpr double kGpuIpv6LookupInstrPerProbe = 40.0;

// Crypto (section 6.2.4). CPU uses SSE-optimized AES-128-CTR + SHA1.
// Costs are per primitive *block* because the small-packet behaviour of
// Figure 11(d) is dominated by HMAC's fixed block count (a 64 B packet
// still hashes ~5 SHA-1 blocks through ipad/opad). Fit so the 8-core
// CPU-only gateway lands at ~2.5-3 Gbps @64 B and ~6 Gbps @1514 B input —
// the ~3.5x gap below the CPU+GPU curve.
inline constexpr double kCpuAesCyclesPerBlock = 180.0;    // per 16 B block
inline constexpr double kCpuSha1CyclesPerBlock = 900.0;   // per 64 B block
inline constexpr double kCpuIpsecPerPacketCycles = 800.0; // ESP encap, SA, IV

// GPU crypto instruction costs per primitive block: calibrated so two
// GTX480s sustain ~33 Gbps of AES-128-CTR + HMAC-SHA1 without packet I/O
// (section 6.3: "the performance of two GPUs scales up to 33 Gbps",
// i.e. ~2.06 GB/s of payload per GPU).
inline constexpr double kGpuAesInstrPerBlock = 2600.0;    // per 16 B block
inline constexpr double kGpuSha1InstrPerBlock = 10500.0;  // per 64 B block

// OpenFlow (section 6.2.3): per-packet flow-key extraction and hashing on
// CPU; hash computation and wildcard linear search offloadable to GPU.
inline constexpr double kCpuFlowKeyExtractCycles = 90.0;
inline constexpr double kCpuFlowHashCycles = 160.0;
inline constexpr double kCpuExactLookupCycles = 260.0;   // one random probe + compare
inline constexpr double kCpuWildcardCyclesPerEntry = 18.0;
inline constexpr double kGpuFlowHashInstr = 90.0;
inline constexpr double kGpuWildcardInstrPerEntry = 3.2;
inline constexpr double kGpuExactLookupInstr = 55.0;

// Data-plane integrity (silent-corruption defense): CRC32C stamping and
// boundary re-checks. Priced at the SSE4.2 `crc32` instruction rate (~1
// quadword per 3-cycle latency, software-pipelined to ~1 byte / 0.125
// cycles effective) plus a fixed per-packet dispatch cost. The NIC-side
// wire stamp is hardware — it charges no CPU cycles, only the boundary
// re-checks on the cores do.
inline constexpr double kCrc32cCyclesPerByte = 0.125;
inline constexpr double kCrc32cPerPacketCycles = 10.0;

// ---------------------------------------------------------------------------
// Memory-latency microbenchmark (section 2.4): an X5550 core sustains ~6
// outstanding misses alone, ~4 when all four cores burst. ~100 ns raw miss.
// ---------------------------------------------------------------------------
inline constexpr double kCpuMissLatencyNs = 100.0;
inline constexpr int kCpuMlpSingleCore = 6;
inline constexpr int kCpuMlpAllCores = 4;

// ---------------------------------------------------------------------------
// Power (section 7): 594 W full load with 2 GPUs / 353 W without;
// idle 327 W / 260 W.
// ---------------------------------------------------------------------------
inline constexpr double kPowerFullLoadWithGpuW = 594.0;
inline constexpr double kPowerFullLoadNoGpuW = 353.0;
inline constexpr double kPowerIdleWithGpuW = 327.0;
inline constexpr double kPowerIdleNoGpuW = 260.0;

}  // namespace ps::perf
