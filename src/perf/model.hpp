// Analytic timing functions built on the calibration constants.
//
// These answer "how long does this operation take on the paper's hardware"
// for PCIe transfers, NIC DMA, GPU kernel launches/executions, and wire
// serialization. Device models call them to charge the ledger and to
// timestamp events for the latency experiments.
#pragma once

#include "common/types.hpp"
#include "perf/calibration.hpp"

namespace ps::perf {

enum class Direction : u8 { kHostToDevice, kDeviceToHost };

/// One-shot PCIe transfer latency: T0 + bytes/BW (Table 1 fit). This is
/// the end-to-end time a blocking cudaMemcpy-style copy takes.
Picos pcie_transfer_time(u64 bytes, Direction dir);

/// Effective transfer rate in MB/s for a buffer of `bytes` — the exact
/// quantity Table 1 tabulates.
double pcie_transfer_rate_mbps(u64 bytes, Direction dir);

/// IOH-channel occupancy of a pipelined bulk copy (gather/scatter copies
/// overlap their handshakes, so occupancy ≈ bytes/BW + setup).
Picos ioh_copy_occupancy(u64 bytes, Direction dir);

/// IOH-channel occupancy of one NIC packet DMA (frame + descriptor).
Picos nic_dma_occupancy(u32 frame_bytes, Direction dir, bool dual_ioh = true);

/// Wire serialization time of one frame on a 10 GbE port (includes the
/// 24 B preamble/FCS/IFG overhead).
Picos port_wire_time(u32 frame_bytes);

/// Kernel launch latency for `threads` threads (section 2.2: 3.8 us for
/// one thread, 4.1 us for 4096).
Picos gpu_launch_latency(u32 threads);

/// Cost profile of one GPU kernel, per thread.
struct KernelCost {
  double instructions = 0.0;      // arithmetic instruction count
  double mem_accesses = 0.0;      // dependent random device-memory accesses
  u32 bytes_per_access = kGpuRandomAccessBytes;
  double warp_efficiency = 1.0;   // fraction of lanes doing useful work
};

/// Execution time of a kernel over `threads` threads (excludes launch and
/// copies). Three regimes, take the max:
///  - compute-bound: instructions / (480 cores x 1.4 GHz), derated by
///    warp divergence;
///  - memory-bandwidth-bound: accesses x 32 B / 177.4 GB/s;
///  - latency-bound: each thread's dependent access chain floors the time
///    at accesses x ~780 cycles; with few threads nothing amortizes it
///    (this is why Figure 2's GPU curve starts far below CPU).
Picos gpu_exec_time(u32 threads, const KernelCost& cost);

/// Launch + execution (no copies): the quantity behind Figure 2's GPU
/// series once transfer time is added by the caller.
Picos gpu_kernel_time(u32 threads, const KernelCost& cost);

/// Host-side lookup-only throughput model for Figure 2's CPU series:
/// `cpus` quad-core X5550 sockets streaming independent lookups of
/// `probes` dependent memory accesses each. Returns lookups/s.
double cpu_lookup_only_rate(int cpus, int probes);

/// Effective per-probe CPU cycles in the lookup-only microbenchmark
/// (high memory-level parallelism across independent lookups).
inline constexpr double kCpuLookupOnlyCyclesPerProbe = 100.0;

}  // namespace ps::perf
