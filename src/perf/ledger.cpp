#include "perf/ledger.hpp"

#include <algorithm>
#include <cstdio>

#include "perf/calibration.hpp"

namespace ps::perf {

const char* to_string(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kCpuCore: return "cpu-core";
    case ResourceKind::kIohD2h: return "ioh-d2h";
    case ResourceKind::kIohH2d: return "ioh-h2d";
    case ResourceKind::kGpuExec: return "gpu-exec";
    case ResourceKind::kGpuCopy: return "gpu-copy";
    case ResourceKind::kPortRx: return "port-rx";
    case ResourceKind::kPortTx: return "port-tx";
    case ResourceKind::kHostMemBw: return "host-mem-bw";
  }
  return "?";
}

void CostLedger::charge(ResourceId id, Picos busy) {
  if (busy <= 0) return;
  charges_[id] += busy;
}

Picos CostLedger::busy(ResourceId id) const {
  const auto it = charges_.find(id);
  return it == charges_.end() ? 0 : it->second;
}

namespace {

Picos ioh_duplex_busy(Picos d2h, Picos h2d) {
  const Picos hi = std::max(d2h, h2d);
  const Picos lo = std::min(d2h, h2d);
  return hi + static_cast<Picos>(kIohDuplexCoupling * static_cast<double>(lo));
}

}  // namespace

Picos CostLedger::bottleneck_time() const {
  Picos worst = 0;
  // Direct resources.
  for (const auto& [id, busy] : charges_) {
    if (id.kind == ResourceKind::kIohD2h || id.kind == ResourceKind::kIohH2d) continue;
    worst = std::max(worst, busy);
  }
  // IOH channels, combined per IOH index.
  for (const auto& [id, busy] : charges_) {
    if (id.kind != ResourceKind::kIohD2h) continue;
    const Picos h2d = this->busy({ResourceKind::kIohH2d, id.index});
    worst = std::max(worst, ioh_duplex_busy(busy, h2d));
  }
  for (const auto& [id, busy] : charges_) {
    if (id.kind != ResourceKind::kIohH2d) continue;
    const Picos d2h = this->busy({ResourceKind::kIohD2h, id.index});
    worst = std::max(worst, ioh_duplex_busy(d2h, busy));
  }
  return worst;
}

std::string CostLedger::bottleneck_name() const {
  Picos worst = -1;
  std::string name = "idle";
  char buf[48];
  for (const auto& [id, busy] : charges_) {
    Picos effective = busy;
    if (id.kind == ResourceKind::kIohD2h) {
      effective = ioh_duplex_busy(busy, this->busy({ResourceKind::kIohH2d, id.index}));
      std::snprintf(buf, sizeof(buf), "ioh%u-duplex", id.index);
    } else if (id.kind == ResourceKind::kIohH2d) {
      effective = ioh_duplex_busy(this->busy({ResourceKind::kIohD2h, id.index}), busy);
      std::snprintf(buf, sizeof(buf), "ioh%u-duplex", id.index);
    } else {
      std::snprintf(buf, sizeof(buf), "%s%u", to_string(id.kind), id.index);
    }
    if (effective > worst) {
      worst = effective;
      name = buf;
    }
  }
  return name;
}

double CostLedger::throughput_per_sec(u64 work_items) const {
  const Picos t = bottleneck_time();
  if (t <= 0) return 0.0;
  return static_cast<double>(work_items) / to_seconds(t);
}

void CostLedger::reset() { charges_.clear(); }

void CostLedger::merge(const CostLedger& other) {
  for (const auto& [id, busy] : other.charges_) charges_[id] += busy;
}

namespace {
thread_local CostLedger* tls_ledger = nullptr;
thread_local u16 tls_core = 0;
}  // namespace

CpuChargeScope::CpuChargeScope(CostLedger* ledger, u16 core_index)
    : prev_ledger_(tls_ledger), prev_core_(tls_core) {
  tls_ledger = ledger;
  tls_core = core_index;
}

CpuChargeScope::~CpuChargeScope() {
  tls_ledger = prev_ledger_;
  tls_core = prev_core_;
}

void charge_cpu_cycles(double cycles) {
  if (tls_ledger == nullptr || cycles <= 0) return;
  tls_ledger->charge({ResourceKind::kCpuCore, tls_core}, cpu_cycles_to_picos(cycles));
}

CostLedger* active_ledger() { return tls_ledger; }
u16 active_core() { return tls_core; }

}  // namespace ps::perf
