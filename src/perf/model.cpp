#include "perf/model.hpp"

#include <algorithm>
#include <cmath>

namespace ps::perf {

Picos pcie_transfer_time(u64 bytes, Direction dir) {
  const Picos t0 = dir == Direction::kHostToDevice ? kPcieH2dLatency : kPcieD2hLatency;
  const double bw =
      dir == Direction::kHostToDevice ? kPcieH2dPeakBytesPerSec : kPcieD2hPeakBytesPerSec;
  return t0 + static_cast<Picos>(static_cast<double>(bytes) / bw * 1e12);
}

double pcie_transfer_rate_mbps(u64 bytes, Direction dir) {
  const Picos t = pcie_transfer_time(bytes, dir);
  return static_cast<double>(bytes) / to_seconds(t) / 1e6;
}

Picos ioh_copy_occupancy(u64 bytes, Direction dir) {
  const double bw =
      dir == Direction::kHostToDevice ? kIohH2dBytesPerSec : kIohD2hBytesPerSec;
  return kIohDmaSetupOverhead + static_cast<Picos>(static_cast<double>(bytes) / bw * 1e12);
}

Picos nic_dma_occupancy(u32 frame_bytes, Direction dir, bool dual_ioh) {
  const u64 bytes = frame_bytes + kNicDescriptorBytes;
  double bw;
  if (!dual_ioh) {
    bw = kIohSymmetricBytesPerSec;  // single-IOH boards show no asymmetry (§3.2)
  } else {
    bw = dir == Direction::kHostToDevice ? kIohH2dBytesPerSec : kIohD2hBytesPerSec;
  }
  return kNicDmaPerPacketOverhead +
         static_cast<Picos>(static_cast<double>(bytes) / bw * 1e12);
}

Picos port_wire_time(u32 frame_bytes) {
  const double bits = static_cast<double>(wire_bytes(frame_bytes)) * 8.0;
  return static_cast<Picos>(bits / kPortLineRateBitsPerSec * 1e12);
}

Picos gpu_launch_latency(u32 threads) {
  return kGpuLaunchBaseLatency + static_cast<Picos>(threads) * kGpuLaunchPerThread;
}

Picos gpu_exec_time(u32 threads, const KernelCost& cost) {
  if (threads == 0) return 0;
  const double eff = std::clamp(cost.warp_efficiency, 0.05, 1.0);

  const double t_compute =
      static_cast<double>(threads) * cost.instructions / eff / (kGpuCores * kGpuHz);

  const double t_membw = static_cast<double>(threads) * cost.mem_accesses *
                         static_cast<double>(cost.bytes_per_access) / kGpuMemBytesPerSec;

  // Latency floor: one thread's dependent access chain cannot complete
  // faster than accesses x latency, no matter how many warps run beside
  // it. With few threads this floor dominates (the left side of Figure 2);
  // with many, the compute/bandwidth terms overtake it — which is exactly
  // "enough threads hide the latency" (section 2.1).
  const double t_latency = cost.mem_accesses * (kGpuMemLatencyCycles / kGpuHz);

  const double t = std::max({t_compute, t_membw, t_latency});
  return static_cast<Picos>(t * 1e12);
}

Picos gpu_kernel_time(u32 threads, const KernelCost& cost) {
  return gpu_launch_latency(threads) + gpu_exec_time(threads, cost);
}

double cpu_lookup_only_rate(int cpus, int probes) {
  if (cpus <= 0 || probes <= 0) return 0.0;
  const double cycles_per_lookup = kCpuLookupOnlyCyclesPerProbe * probes;
  return static_cast<double>(cpus) * kCoresPerNode * kCpuHz / cycles_per_lookup;
}

}  // namespace ps::perf
