// Resource accounting for steady-state throughput analysis.
//
// Functional components (NIC DMA, io-engine, shaders, GPU device) charge
// busy time to resource instances as they process a batch of work. The
// ledger then answers: for this much work, which resource saturates first
// and what packet rate is sustainable? This is the pipeline-bottleneck
// analysis that produces every throughput figure (DESIGN.md §4).
#pragma once

#include <compare>
#include <map>
#include <string>

#include "common/types.hpp"

namespace ps::perf {

enum class ResourceKind : u8 {
  kCpuCore,    // one per core; CPU cycles
  kIohD2h,     // per-IOH device-to-host DMA channel (NIC RX, GPU->host)
  kIohH2d,     // per-IOH host-to-device DMA channel (NIC TX, host->GPU)
  kGpuExec,    // per-GPU kernel execution engine
  kGpuCopy,    // per-GPU copy engine (used when streams overlap copy/exec)
  kPortRx,     // per-port ingress line rate
  kPortTx,     // per-port egress line rate
  kHostMemBw,  // per-node memory bandwidth (rarely binding; tracked anyway)
};

const char* to_string(ResourceKind kind);

struct ResourceId {
  ResourceKind kind{};
  u16 index = 0;

  auto operator<=>(const ResourceId&) const = default;
};

class CostLedger {
 public:
  /// Record `busy` picoseconds of occupancy on a resource instance.
  void charge(ResourceId id, Picos busy);

  /// Raw accumulated busy time of one resource instance.
  Picos busy(ResourceId id) const;

  /// Busy time of the critical resource. Per-IOH d2h/h2d channels are
  /// combined with the duplex-coupling rule before comparison
  /// (busy = max(d2h, h2d) + k * min(d2h, h2d)); all other resources
  /// compare directly.
  Picos bottleneck_time() const;

  /// Human-readable name of the critical resource, e.g. "ioh0-duplex".
  std::string bottleneck_name() const;

  /// Sustainable rate for `work_items` items of charged work, in items/s.
  double throughput_per_sec(u64 work_items) const;

  void reset();

  /// Merge another ledger's charges into this one.
  void merge(const CostLedger& other);

  const std::map<ResourceId, Picos>& entries() const { return charges_; }

 private:
  std::map<ResourceId, Picos> charges_;
};

/// Scoped thread-local CPU charge sink: while alive, charge_cpu_cycles()
/// adds to `ledger` on core `core_index`. Scopes nest; the innermost wins.
class CpuChargeScope {
 public:
  CpuChargeScope(CostLedger* ledger, u16 core_index);
  ~CpuChargeScope();

  CpuChargeScope(const CpuChargeScope&) = delete;
  CpuChargeScope& operator=(const CpuChargeScope&) = delete;

 private:
  CostLedger* prev_ledger_;
  u16 prev_core_;
};

/// Charge CPU cycles to the active scope's ledger; no-op without a scope
/// (so functional code is usable with accounting disabled).
void charge_cpu_cycles(double cycles);

/// The ledger/core of the innermost active scope on this thread (null/0
/// when none). Exposed so device models invoked from CPU code can place
/// related charges consistently.
CostLedger* active_ledger();
u16 active_core();

}  // namespace ps::perf
