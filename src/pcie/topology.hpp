// Machine topology model: the server of Table 2 / Figure 3.
//
// Two NUMA nodes; each node has a quad-core X5550, local DDR3, and an IOH
// hosting two dual-port 10 GbE NICs (PCIe x8) and one GTX480 (PCIe x16).
// Placement decisions in the io-engine and framework (section 4.5, 5.1)
// are all phrased against this topology.
#pragma once

#include <cassert>

#include "common/types.hpp"
#include "perf/calibration.hpp"

namespace ps::pcie {

struct Topology {
  int num_nodes = perf::kNumNodes;
  int cores_per_node = perf::kCoresPerNode;
  int nics_per_node = 2;
  int ports_per_nic = 2;
  int gpus_per_node = 1;
  /// Dual-IOH boards exhibit the section 3.2 transfer asymmetry; a
  /// single-IOH configuration (num_nodes=1) does not.
  bool dual_ioh = true;

  int num_cores() const { return num_nodes * cores_per_node; }
  int num_nics() const { return num_nodes * nics_per_node; }
  int num_ports() const { return num_nics() * ports_per_nic; }
  int num_gpus() const { return num_nodes * gpus_per_node; }

  int node_of_core(int core) const {
    assert(core >= 0 && core < num_cores());
    return core / cores_per_node;
  }
  int node_of_nic(int nic) const {
    assert(nic >= 0 && nic < num_nics());
    return nic / nics_per_node;
  }
  int node_of_port(int port) const { return node_of_nic(nic_of_port(port)); }
  int node_of_gpu(int gpu) const {
    assert(gpu >= 0 && gpu < num_gpus());
    return gpu / gpus_per_node;
  }

  int nic_of_port(int port) const {
    assert(port >= 0 && port < num_ports());
    return port / ports_per_nic;
  }

  /// Each node's IOH is indexed by the node id.
  int ioh_of_node(int node) const {
    assert(node >= 0 && node < num_nodes);
    return node;
  }
  int ioh_of_port(int port) const { return ioh_of_node(node_of_port(port)); }
  int ioh_of_gpu(int gpu) const { return ioh_of_node(node_of_gpu(gpu)); }

  /// The paper's default server.
  static Topology paper_server() { return Topology{}; }

  /// A single-node, single-IOH machine (used by the §3.2 comparison and
  /// small tests).
  static Topology single_node() {
    Topology t;
    t.num_nodes = 1;
    t.dual_ioh = false;
    return t;
  }
};

}  // namespace ps::pcie
