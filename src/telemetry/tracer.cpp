#include "telemetry/tracer.hpp"

#include <bit>

namespace ps::telemetry {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kRxRing: return "rx_ring";
    case Stage::kMasterDequeue: return "master_dequeue";
    case Stage::kGather: return "gather";
    case Stage::kH2d: return "h2d";
    case Stage::kKernel: return "kernel";
    case Stage::kD2h: return "d2h";
    case Stage::kScatter: return "scatter";
    case Stage::kTxDoorbell: return "tx_doorbell";
    case Stage::kCount: break;
  }
  return "?";
}

PipelineTracer::PipelineTracer(u32 capacity) {
  capacity_ = std::bit_ceil(std::max<u32>(capacity, 2));
  mask_ = capacity_ - 1;
  slots_ = std::vector<CacheAligned<Slot>>(capacity_);
  drained_gen_.assign(capacity_, 0);
}

i32 PipelineTracer::begin_span(u32 packets) {
  if (!enabled()) return kNoSlot;

  const u64 ticket = next_claim_.fetch_add(1, std::memory_order_relaxed);
  const u64 gen = ticket + 1;  // 0 stays "never completed"
  const u32 index = static_cast<u32>(ticket) & mask_;
  Slot& slot = slots_[index].value;

  // Claim by flipping the seqlock to odd. A slot whose span is still in
  // flight (odd), or one a racing claimant just won, rejects the claim and
  // the NEW span is dropped whole — an open span is never trampled.
  u32 seq = slot.seq.load(std::memory_order_acquire);
  if ((seq & 1u) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel)) {
    spans_dropped_.fetch_add(1, std::memory_order_relaxed);
    count_write(2);  // the claim ticket + the drop counter
    return kNoSlot;
  }

  if (slot.complete_gen.load(std::memory_order_relaxed) != 0) {
    // A completed span (drained or not) is being overwritten wholesale.
    spans_overwritten_.fetch_add(1, std::memory_order_relaxed);
  }

  slot.chunk_id.store(gen, std::memory_order_relaxed);
  slot.packets.store(packets, std::memory_order_relaxed);
  slot.cpu_path.store(0, std::memory_order_relaxed);
  for (auto& t : slot.ts) t.store(0, std::memory_order_relaxed);
  slot.ts[static_cast<std::size_t>(Stage::kRxRing)].store(now_ns(), std::memory_order_relaxed);
  spans_started_.fetch_add(1, std::memory_order_relaxed);
  count_write(6 + kNumStages);
  return static_cast<i32>(index);
}

void PipelineTracer::stamp(i32 slot, Stage stage) {
  if (slot == kNoSlot) return;
  slots_[static_cast<std::size_t>(slot)].value.ts[static_cast<std::size_t>(stage)].store(
      now_ns(), std::memory_order_relaxed);
  count_write();
}

void PipelineTracer::mark_cpu_path(i32 slot) {
  if (slot == kNoSlot) return;
  slots_[static_cast<std::size_t>(slot)].value.cpu_path.store(1, std::memory_order_relaxed);
  count_write();
}

void PipelineTracer::end_span(i32 slot) {
  if (slot == kNoSlot) return;
  Slot& s = slots_[static_cast<std::size_t>(slot)].value;
  s.ts[static_cast<std::size_t>(Stage::kTxDoorbell)].store(now_ns(), std::memory_order_relaxed);
  s.complete_gen.store(s.chunk_id.load(std::memory_order_relaxed), std::memory_order_relaxed);
  // Publish: the release on the even seq makes every stamp above visible
  // to a reader that acquire-loads seq.
  s.seq.fetch_add(1, std::memory_order_release);
  spans_completed_.fetch_add(1, std::memory_order_relaxed);
  count_write(4);
}

std::size_t PipelineTracer::drain(std::vector<TraceSpan>& out) {
  MutexLock lock(drain_mu_);
  std::size_t appended = 0;
  for (u32 i = 0; i < capacity_; ++i) {
    Slot& s = slots_[i].value;
    const u32 seq1 = s.seq.load(std::memory_order_acquire);
    if ((seq1 & 1u) != 0) continue;  // span open: skip whole
    const u64 gen = s.complete_gen.load(std::memory_order_acquire);
    if (gen == 0 || gen == drained_gen_[i]) continue;  // nothing new

    TraceSpan span;
    span.chunk_id = s.chunk_id.load(std::memory_order_relaxed);
    span.packets = s.packets.load(std::memory_order_relaxed);
    span.cpu_path = s.cpu_path.load(std::memory_order_relaxed) != 0;
    for (std::size_t k = 0; k < kNumStages; ++k) {
      span.ts[k] = s.ts[k].load(std::memory_order_relaxed);
    }
    // Seqlock validation: a writer that claimed the slot mid-read bumped
    // seq, so the read above may be torn — discard it whole.
    if (s.seq.load(std::memory_order_acquire) != seq1) continue;

    drained_gen_[i] = gen;
    out.push_back(span);
    ++appended;
  }
  return appended;
}

}  // namespace ps::telemetry
