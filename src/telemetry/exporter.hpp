// Canonical emission layer for bench + telemetry output. All benches used
// to hand-roll their own `BENCH {...}` printf lines; this module owns the
// format so one golden test pins it for every consumer:
//
//   BENCH {"bench":"<name>",...}        one line, machine-scrapeable
//
// BenchLine builds that line with printf-compatible number formatting
// (%.Nf for doubles, %llu for counters) so ports from hand-rolled printf
// stay byte-identical. Exporter writes lines/snapshots to a stream and
// turns drained TraceSpans into the paper's Figure-12 per-stage latency
// breakdown.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/tracer.hpp"

namespace ps::telemetry {

/// Builder for one canonical `BENCH {...}` JSON line. Number formatting
/// matches printf: fixed(v, 3) == %.3f, unsigned == %llu. Keys are emitted
/// in call order; nesting via array()/object() ... end().
class BenchLine {
 public:
  explicit BenchLine(const std::string& bench_name);

  BenchLine& field(const std::string& key, u64 value);
  BenchLine& field(const std::string& key, const std::string& value);
  /// Fixed-point double, `precision` digits — byte-identical to %.Nf.
  BenchLine& fixed(const std::string& key, double value, int precision);

  BenchLine& array(const std::string& key);  // [ ... end()
  BenchLine& object();                       // { ... end(), inside an array
  BenchLine& end();

  /// The finished line, starting "BENCH {" (closes any open scopes).
  std::string str() const;

 private:
  void comma();

  std::string buf_;
  std::vector<char> open_;  // '[' / '{' scope stack
  bool needs_comma_ = false;
};

/// Per-stage latency attribution over a set of drained spans: for each
/// stage, the mean time from the previous *stamped* stage to it (so CPU
/// path spans, whose device stages are unstamped, still attribute
/// correctly across the gap).
struct StageBreakdown {
  std::array<double, kNumStages> mean_us{};  // [stage] = mean arrival delta
  std::array<u64, kNumStages> samples{};     // spans contributing to [stage]
  double total_mean_us = 0;                  // mean end-to-end span time
  u64 spans = 0;
};

StageBreakdown compute_stage_breakdown(const std::vector<TraceSpan>& spans);

class Exporter {
 public:
  explicit Exporter(std::ostream& out);

  /// Emit the canonical line followed by '\n'.
  void emit(const BenchLine& line);

  /// Human-readable dump of a metrics snapshot (name, kind, value per
  /// line, histograms with count/mean/p50/p99).
  void print_snapshot(const MetricsSnapshot& snap, const std::string& title = "");

  /// Human-readable Figure-12 style per-stage table.
  void print_stage_breakdown(const StageBreakdown& b, const std::string& title = "");

 private:
  std::ostream& out_;
};

}  // namespace ps::telemetry
