#include "telemetry/exporter.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace ps::telemetry {

BenchLine::BenchLine(const std::string& bench_name) {
  buf_ = "BENCH {\"bench\":\"" + bench_name + "\"";
  open_.push_back('{');
  needs_comma_ = true;
}

void BenchLine::comma() {
  if (needs_comma_) buf_ += ',';
  needs_comma_ = true;
}

BenchLine& BenchLine::field(const std::string& key, u64 value) {
  comma();
  char tmp[32];
  std::snprintf(tmp, sizeof(tmp), "%llu", static_cast<unsigned long long>(value));
  buf_ += '"';
  buf_ += key;
  buf_ += "\":";
  buf_ += tmp;
  return *this;
}

BenchLine& BenchLine::field(const std::string& key, const std::string& value) {
  comma();
  buf_ += '"';
  buf_ += key;
  buf_ += "\":\"";
  buf_ += value;
  buf_ += '"';
  return *this;
}

BenchLine& BenchLine::fixed(const std::string& key, double value, int precision) {
  comma();
  char tmp[64];
  std::snprintf(tmp, sizeof(tmp), "%.*f", precision, value);
  buf_ += '"';
  buf_ += key;
  buf_ += "\":";
  buf_ += tmp;
  return *this;
}

BenchLine& BenchLine::array(const std::string& key) {
  comma();
  buf_ += '"';
  buf_ += key;
  buf_ += "\":[";
  open_.push_back('[');
  needs_comma_ = false;
  return *this;
}

BenchLine& BenchLine::object() {
  comma();
  buf_ += '{';
  open_.push_back('{');
  needs_comma_ = false;
  return *this;
}

BenchLine& BenchLine::end() {
  if (open_.empty()) return *this;
  buf_ += open_.back() == '[' ? ']' : '}';
  open_.pop_back();
  needs_comma_ = true;
  return *this;
}

std::string BenchLine::str() const {
  std::string out = buf_;
  for (auto it = open_.rbegin(); it != open_.rend(); ++it) {
    out += *it == '[' ? ']' : '}';
  }
  return out;
}

StageBreakdown compute_stage_breakdown(const std::vector<TraceSpan>& spans) {
  StageBreakdown b;
  std::array<u64, kNumStages> sum_ns{};
  u64 total_ns = 0;
  for (const auto& span : spans) {
    if (span.begin_ns() == 0 || span.end_ns() == 0 || span.end_ns() < span.begin_ns()) continue;
    ++b.spans;
    total_ns += span.end_ns() - span.begin_ns();
    u64 prev = span.begin_ns();
    for (std::size_t i = 1; i < kNumStages; ++i) {
      const u64 t = span.ts[i];
      if (t == 0 || t < prev) continue;  // unstamped (CPU path) or clock skew
      sum_ns[i] += t - prev;
      ++b.samples[i];
      prev = t;
    }
  }
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (b.samples[i] != 0) {
      b.mean_us[i] = static_cast<double>(sum_ns[i]) / static_cast<double>(b.samples[i]) / 1e3;
    }
  }
  if (b.spans != 0) b.total_mean_us = static_cast<double>(total_ns) / static_cast<double>(b.spans) / 1e3;
  return b;
}

Exporter::Exporter(std::ostream& out) : out_(out) {}

void Exporter::emit(const BenchLine& line) { out_ << line.str() << '\n'; }

void Exporter::print_snapshot(const MetricsSnapshot& snap, const std::string& title) {
  char tmp[160];
  if (!title.empty()) out_ << "=== " << title << " (snapshot #" << snap.sequence << ") ===\n";
  for (const auto& v : snap.values) {
    std::snprintf(tmp, sizeof(tmp), "  %-40s %-8s %llu\n", v.name.c_str(), to_string(v.kind),
                  static_cast<unsigned long long>(v.value));
    out_ << tmp;
  }
  for (const auto& [name, h] : snap.histograms) {
    std::snprintf(tmp, sizeof(tmp),
                  "  %-40s histo    count=%llu mean=%.1f p50<=%llu p99<=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(h.count), h.mean(),
                  static_cast<unsigned long long>(h.quantile(0.50)),
                  static_cast<unsigned long long>(h.quantile(0.99)));
    out_ << tmp;
  }
}

void Exporter::print_stage_breakdown(const StageBreakdown& b, const std::string& title) {
  char tmp[128];
  if (!title.empty()) out_ << "=== " << title << " ===\n";
  std::snprintf(tmp, sizeof(tmp), "  spans=%llu  end-to-end mean=%.2f us\n",
                static_cast<unsigned long long>(b.spans), b.total_mean_us);
  out_ << tmp;
  for (std::size_t i = 1; i < kNumStages; ++i) {
    if (b.samples[i] == 0) continue;
    std::snprintf(tmp, sizeof(tmp), "  %-16s %8.2f us  (n=%llu)\n",
                  to_string(static_cast<Stage>(i)), b.mean_us[i],
                  static_cast<unsigned long long>(b.samples[i]));
    out_ << tmp;
  }
}

}  // namespace ps::telemetry
