// Process-wide allocation counter for the allocation-free-steady-state
// invariant (DESIGN.md §13): when the build enables PS_ALLOC_STATS, the
// replaceable global operator new is overridden to bump a relaxed atomic,
// and tests assert the counter stays flat while the router runs its steady
// state. The probe costs one relaxed fetch_add per allocation — negligible,
// and exactly zero on the paths the invariant holds for.
//
// PS_ALLOC_STATS is ON by default and forced OFF under sanitizer builds
// (PS_SANITIZE), whose runtimes interpose their own allocator paths.
#pragma once

#include "common/types.hpp"

namespace ps::telemetry {

/// True when this binary was built with the counting operator new.
bool alloc_stats_enabled();

/// Total calls to the global operator new (all forms) since process start.
/// Always 0 when alloc_stats_enabled() is false.
u64 allocations();

}  // namespace ps::telemetry
