// Chunk-granularity pipeline tracer: the measured counterpart of the
// paper's Figure 12 latency breakdown. Each chunk is stamped at the eight
// stage boundaries of its trip through the router:
//
//   kRxRing        worker fetched the chunk from the NIC RX ring
//   kMasterDequeue master popped the chunk's job off its input queue
//   kGather        master assembled the shading batch (gather complete)
//   kH2d           last host->device input copy of the batch finished
//   kKernel        last kernel launch of the batch finished
//   kD2h           last device->host output copy of the batch finished
//   kScatter       worker applied the results (post-shade done)
//   kTxDoorbell    worker rang the TX doorbell (send_chunk returned)
//
// Chunks that never visit the device (CPU-only mode, opportunistic
// offloading, backpressure diversion, GPU fallback) carry a cpu_path mark
// and leave the device stages unstamped (zero).
//
// Span storage is a preallocated ring of slots; the hot path never
// allocates. Writers claim a slot with one fetch_add and stamp with
// relaxed atomic stores; a per-slot seqlock keeps the (cold) reader from
// ever observing a torn span. Overflow policy: if the ring wraps onto a
// span still being written, the *new* span is dropped whole — a span is
// either complete in the drain output or entirely absent, never
// truncated. A completed-but-undrained span may be overwritten wholesale
// by a later claim (again: lost whole, counted, never torn).
//
// Disabled tracing costs one relaxed load per call site and performs ZERO
// atomic writes — asserted by test via the write instrumentation counter
// below, so the hot path can keep the tracer wired in permanently.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/cacheline.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps::telemetry {

enum class Stage : u8 {
  kRxRing = 0,
  kMasterDequeue,
  kGather,
  kH2d,
  kKernel,
  kD2h,
  kScatter,
  kTxDoorbell,
  kCount,
};

inline constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kCount);

const char* to_string(Stage stage);

/// One chunk's completed trip, as drained by the (cold-path) reader.
struct TraceSpan {
  u64 chunk_id = 0;
  u32 packets = 0;
  bool cpu_path = false;
  /// Nanoseconds on the steady clock; 0 = stage never stamped.
  std::array<u64, kNumStages> ts{};

  u64 begin_ns() const { return ts[static_cast<std::size_t>(Stage::kRxRing)]; }
  u64 end_ns() const { return ts[static_cast<std::size_t>(Stage::kTxDoorbell)]; }
  u64 stage(Stage s) const { return ts[static_cast<std::size_t>(s)]; }
};

class PipelineTracer {
 public:
  static constexpr i32 kNoSlot = -1;

  /// `capacity` = concurrent + undrained spans the ring can hold; rounded
  /// up to a power of two. All storage is allocated here, none on the hot
  /// path. Tracing starts disabled.
  explicit PipelineTracer(u32 capacity = 1024);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Claim a slot and stamp Stage::kRxRing. Returns kNoSlot when tracing
  /// is disabled or the ring wrapped onto a span still in flight (the new
  /// span is dropped whole).
  i32 begin_span(u32 packets);

  /// Stamp one stage boundary with the current time. No-op for kNoSlot.
  void stamp(i32 slot, Stage stage);

  /// Mark the span as having taken a CPU path (device stages absent).
  void mark_cpu_path(i32 slot);

  /// Stamp Stage::kTxDoorbell and publish the span for drain().
  void end_span(i32 slot);

  /// Collect completed spans not yet drained (single consumer; cold path).
  /// Appends to `out`, returns how many were appended. Torn or in-flight
  /// slots are skipped whole.
  std::size_t drain(std::vector<TraceSpan>& out);

  // --- accounting -----------------------------------------------------------
  u64 spans_started() const { return spans_started_.load(std::memory_order_relaxed); }
  u64 spans_completed() const { return spans_completed_.load(std::memory_order_relaxed); }
  /// Spans dropped whole because the ring wrapped onto an open slot.
  u64 spans_dropped() const { return spans_dropped_.load(std::memory_order_relaxed); }
  /// Completed spans overwritten before anyone drained them (also whole).
  u64 spans_overwritten() const { return spans_overwritten_.load(std::memory_order_relaxed); }

  /// Instrumentation for the "disabled tracing writes nothing" property:
  /// every atomic store/rmw the tracer's hot path performs also bumps this
  /// counter, so a disabled tracer must leave it exactly where it was.
  u64 hot_path_atomic_writes() const {
    return hot_path_writes_.load(std::memory_order_relaxed);
  }

  u32 capacity() const { return capacity_; }

  static u64 now_ns() {
    return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count());
  }

 private:
  struct Slot {
    /// Seqlock: odd = a writer owns the slot (span open), even = at rest.
    // mc: trace.seq -- per-slot seqlock word; acq/rel brackets the payload
    ps::atomic<u32> seq{0};
    /// Claim generation of the last *completed* span in this slot; the
    /// reader remembers what it drained to skip stale re-reads.
    // mc: trace.payload -- seqlock-protected payload, relaxed inside brackets
    ps::atomic<u64> complete_gen{0};
    // mc: trace.payload
    ps::atomic<u64> chunk_id{0};
    // mc: trace.payload
    ps::atomic<u32> packets{0};
    // mc: trace.payload
    ps::atomic<u8> cpu_path{0};
    // mc: trace.payload
    std::array<ps::atomic<u64>, kNumStages> ts{};
  };

  void count_write(u64 n = 1) { hot_path_writes_.fetch_add(n, std::memory_order_relaxed); }

  u32 capacity_ = 0;  // power of two
  u32 mask_ = 0;
  // mc: trace.enabled -- relaxed on/off flag; stale reads only delay effect
  ps::atomic<bool> enabled_{false};
  // mc: trace.next_claim -- relaxed fetch_add ticket; slot = ticket & mask
  ps::atomic<u64> next_claim_{0};
  std::vector<CacheAligned<Slot>> slots_;

  // mc: trace.counter -- relaxed multi-writer accounting counters
  ps::atomic<u64> spans_started_{0};
  // mc: trace.counter
  ps::atomic<u64> spans_completed_{0};
  // mc: trace.counter
  ps::atomic<u64> spans_dropped_{0};
  // mc: trace.counter
  ps::atomic<u64> spans_overwritten_{0};
  // mc: trace.counter
  ps::atomic<u64> hot_path_writes_{0};

  Mutex drain_mu_;  // single logical consumer, enforced
  /// Per slot: last complete_gen drained. The span slots themselves are
  /// seqlock-protected (protocol, not a capability — see DESIGN.md §11);
  /// only the reader's bookkeeping needs the lock.
  std::vector<u64> drained_gen_ GUARDED_BY(drain_mu_);
};

}  // namespace ps::telemetry
