#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <tuple>
#include <utility>

namespace ps::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
  }
  return "?";
}

void HistogramMetric::record(u64 value) {
  const u32 bucket = value == 0 ? 0 : static_cast<u32>(63 - std::countl_zero(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramMetric::Snapshot HistogramMetric::snapshot() const {
  Snapshot s;
  // Count first: records racing with the snapshot may land in buckets we
  // have already read, so the bucket sum can only exceed `count`, never
  // undershoot it — quantile() stays well-defined.
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (u32 i = 0; i < kBuckets; ++i) s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

u64 HistogramMetric::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  const u64 target = static_cast<u64>(q * static_cast<double>(count - 1)) + 1;
  u64 seen = 0;
  for (u32 i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen >= target) return i >= 63 ? ~0ull : (u64{2} << i) - 1;  // bucket upper bound
  }
  return ~0ull;
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

u64 MetricsSnapshot::value(const std::string& name) const {
  const auto* v = find(name);
  return v != nullptr ? v->value : 0;
}

MetricsRegistry::Entry* MetricsRegistry::find_entry(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  if (Entry* e = find_entry(name)) {
    assert(e->counter != nullptr && "metric re-registered with a different flavour");
    return &e->counter->value;
  }
  counters_.emplace_back();
  entries_.push_back({name, MetricKind::kCounter, &counters_.back(), nullptr, {}});
  return &counters_.back().value;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  if (Entry* e = find_entry(name)) {
    assert(e->gauge != nullptr && "metric re-registered with a different flavour");
    return &e->gauge->value;
  }
  gauges_.emplace_back();
  entries_.push_back({name, MetricKind::kGauge, nullptr, &gauges_.back(), {}});
  return &gauges_.back().value;
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  for (auto& [n, h] : histograms_) {
    if (n == name) return &h;
  }
  // piecewise: HistogramMetric holds atomics and cannot be moved in.
  histograms_.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                           std::forward_as_tuple());
  return &histograms_.back().second;
}

void MetricsRegistry::register_probe(const std::string& name, MetricKind kind, Probe fn) {
  MutexLock lock(mu_);
  if (Entry* e = find_entry(name)) {
    // Re-registration (e.g. a rebuilt Router over one registry) swaps the
    // probe in place; kind must not change.
    assert(!e->counter && !e->gauge && "metric re-registered with a different flavour");
    assert(e->kind == kind && "metric re-registered with a different kind");
    e->probe = std::move(fn);
    return;
  }
  entries_.push_back({name, kind, nullptr, nullptr, std::move(fn)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snap;
  snap.sequence = snapshots_taken_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.values.reserve(entries_.size());
  for (const auto& e : entries_) {
    u64 v = 0;
    if (e.counter != nullptr) {
      v = e.counter->value.value();
    } else if (e.gauge != nullptr) {
      v = e.gauge->value.value();
    } else if (e.probe) {
      v = e.probe();
    }
    snap.values.push_back({e.name, e.kind, v});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace_back(name, h.snapshot());
  return snap;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size() + histograms_.size();
}

}  // namespace ps::telemetry
