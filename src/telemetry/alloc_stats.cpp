#include "telemetry/alloc_stats.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/atomic_shim.hpp"

namespace ps::telemetry {

namespace detail {
// mc: alloc.new_calls -- relaxed global allocation tally (operator new hook)
ps::atomic<u64> g_new_calls{0};
}  // namespace detail

#ifdef PS_ALLOC_STATS
bool alloc_stats_enabled() { return true; }
u64 allocations() { return detail::g_new_calls.load(std::memory_order_relaxed); }
#else
bool alloc_stats_enabled() { return false; }
u64 allocations() { return 0; }
#endif

}  // namespace ps::telemetry

#ifdef PS_ALLOC_STATS

// Replaceable global allocation functions ([new.delete]): every form of
// operator new counts one allocation, every delete pairs with the malloc
// family used here. The nothrow forms need no override — their default
// implementations call the ordinary (replaced) operator new.

namespace {

void* counted_alloc(std::size_t size) {
  ps::telemetry::detail::g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ps::telemetry::detail::g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  for (;;) {
    if (void* p = std::aligned_alloc(alignment, rounded)) return p;
    if (std::new_handler handler = std::get_new_handler()) {
      handler();
    } else {
      throw std::bad_alloc{};
    }
  }
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // PS_ALLOC_STATS
