// Unified metrics layer (the measurement substrate every perf experiment
// stands on). Before this module, observability was scattered: worker
// counters in the Router, per-queue stats in the NIC, watchdog counters
// under a mutex, admission tallies under another, supervisor totals behind
// accessors — and every consumer (benches, chaos tests, the audit) wired
// itself to each source by hand. The registry puts one name in front of
// each of them.
//
// Two metric flavours, one discipline:
//  - *owned* counters/gauges/histograms: the registry allocates a
//    cacheline-isolated slot; exactly one thread writes it with relaxed
//    atomics (the single-writer rule PR 2 established for WorkerCounters),
//    and any thread may read it with a relaxed load;
//  - *probes*: pull-model adapters over counters that already live (and
//    are already safely sampleable) inside a subsystem — e.g. the Router's
//    per-worker atomics or the NIC's per-queue atomic stats. A probe is a
//    function the snapshot calls; it must be safe to invoke concurrently
//    with traffic (read atomics, or take the subsystem's own mutex).
//
// snapshot() is a coherent point-in-time view in the same sense as
// Router::total_stats(): not an instantaneous cut across writers, but
// every value in it was current at the moment it was read, and reading is
// race-free under TSan while traffic flows. Counter metrics are declared
// monotonic and tests hold the registry to it across snapshots.
#pragma once

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/cacheline.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps::telemetry {

enum class MetricKind : u8 {
  kCounter,  // monotonically non-decreasing (rx packets, drops, ...)
  kGauge,    // goes both ways (queue depth, in-flight packets, health)
};

const char* to_string(MetricKind kind);

/// Owned counter slot: one writer thread, relaxed increments. Readers load
/// relaxed — the value is always a real past value, never torn.
class Counter {
 public:
  void add(u64 delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void inc() { add(1); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // mc: metrics.counter -- single-writer relaxed counter/gauge slots
  ps::atomic<u64> value_{0};
};

/// Owned gauge slot: one writer thread, relaxed stores/adds.
class Gauge {
 public:
  void set(u64 v) { value_.store(v, std::memory_order_relaxed); }
  void add(u64 delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(u64 delta) { value_.fetch_sub(delta, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // mc: metrics.counter
  ps::atomic<u64> value_{0};
};

/// Owned log2-bucketed histogram: one writer thread records with relaxed
/// stores; snapshotting reads every bucket relaxed. 64 power-of-two
/// buckets cover the full u64 range (bucket i holds values whose highest
/// set bit is i; value 0 lands in bucket 0).
class HistogramMetric {
 public:
  static constexpr u32 kBuckets = 64;

  void record(u64 value);

  struct Snapshot {
    u64 count = 0;
    u64 sum = 0;
    std::array<u64, kBuckets> buckets{};
    double mean() const { return count ? static_cast<double>(sum) / static_cast<double>(count) : 0.0; }
    /// Bucket-upper-bound approximation of quantile q in [0, 1].
    u64 quantile(double q) const;
  };
  Snapshot snapshot() const;

 private:
  // mc: metrics.counter
  ps::atomic<u64> count_{0};
  // mc: metrics.counter
  ps::atomic<u64> sum_{0};
  // mc: metrics.counter
  std::array<ps::atomic<u64>, kBuckets> buckets_{};
};

/// One metric's value at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  u64 value = 0;
};

/// Point-in-time view over every registered metric (owned + probed).
struct MetricsSnapshot {
  /// Monotonic sequence number of this snapshot (1, 2, ...).
  u64 sequence = 0;
  std::vector<MetricValue> values;                           // registration order
  std::vector<std::pair<std::string, HistogramMetric::Snapshot>> histograms;

  const MetricValue* find(const std::string& name) const;
  /// Value of `name`; 0 when absent (use find() to distinguish).
  u64 value(const std::string& name) const;
  bool has(const std::string& name) const { return find(name) != nullptr; }
};

class MetricsRegistry {
 public:
  using Probe = std::function<u64()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) an owned metric. Registration is mutex-guarded
  /// (cold path; do it before the hot loop). Returned pointers are stable
  /// for the registry's lifetime. Re-registering a name returns the same
  /// slot; a name may not change flavour (owned vs probe) or kind.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  HistogramMetric* histogram(const std::string& name);

  /// Register a pull-model probe: `fn` is called by snapshot() and must be
  /// safe to call concurrently with traffic. kCounter probes promise
  /// monotonicity; kGauge probes may move both ways.
  void register_probe(const std::string& name, MetricKind kind, Probe fn);

  /// Coherent point-in-time view. Safe to call from any thread while
  /// writers run; TSan-clean by construction (relaxed atomic loads for
  /// owned slots, subsystem-synchronized reads inside probes).
  MetricsSnapshot snapshot() const;

  std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    // Exactly one of these is set.
    CacheAligned<Counter>* counter = nullptr;
    CacheAligned<Gauge>* gauge = nullptr;
    Probe probe;
  };

  Entry* find_entry(const std::string& name) REQUIRES(mu_);

  // Registration vs snapshot iteration only. The *values* behind the
  // entries are lock-free by design (single-writer relaxed atomics or
  // probes with their own synchronization); mu_ guards the containers.
  mutable Mutex mu_;
  std::deque<CacheAligned<Counter>> counters_ GUARDED_BY(mu_);  // deque: stable addresses
  std::deque<CacheAligned<Gauge>> gauges_ GUARDED_BY(mu_);
  std::deque<std::pair<std::string, HistogramMetric>> histograms_ GUARDED_BY(mu_);
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  // mc: metrics.counter
  mutable ps::atomic<u64> snapshots_taken_{0};
};

}  // namespace ps::telemetry
