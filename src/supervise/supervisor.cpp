#include "supervise/supervisor.hpp"

#include <cassert>

namespace ps::supervise {

const char* to_string(ThreadKind kind) {
  switch (kind) {
    case ThreadKind::kWorker: return "worker";
    case ThreadKind::kMaster: return "master";
    case ThreadKind::kOther: return "other";
  }
  return "?";
}

Supervisor::Supervisor(SupervisorConfig config) : config_(config) {}

Supervisor::~Supervisor() { stop(); }

int Supervisor::add_thread(std::string name, ThreadKind kind, const Heartbeat* hb,
                           StallHandler on_stall, RecoverHandler on_recover) {
  assert(hb != nullptr);
  MutexLock lock(mu_);
  assert(!started_ && "register threads before start()");
  Slot slot;
  slot.name = std::move(name);
  slot.kind = kind;
  slot.hb = hb;
  slot.on_stall = std::move(on_stall);
  slot.on_recover = std::move(on_recover);
  slot.last_beats = hb->beats_now();
  slot.last_advance = std::chrono::steady_clock::now();
  slots_.push_back(std::move(slot));
  return static_cast<int>(slots_.size() - 1);
}

void Supervisor::check(std::chrono::steady_clock::time_point now) {
  // Collect transitions under the lock, invoke handlers outside it: the
  // recovery handshake may block on another thread's heartbeat, and
  // accessors (health(), stall_events()) must stay responsive meanwhile.
  struct Pending {
    StallHandler* on_stall = nullptr;
    RecoverHandler* on_recover = nullptr;
    int thread_id = -1;
    StallEvent event;
  };
  std::vector<Pending> pending;
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      const u64 beats = slot.hb->beats_now();
      if (beats != slot.last_beats) {
        slot.last_beats = beats;
        slot.last_advance = now;
        if (slot.state == ThreadState::kStalled) {
          slot.state = ThreadState::kLive;
          ++slot.recoveries;
          if (slot.on_recover) {
            pending.push_back({nullptr, &slot.on_recover, static_cast<int>(i), {}});
          }
        }
        continue;
      }
      const auto silent =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - slot.last_advance);
      if (slot.state == ThreadState::kLive && silent > config_.stall_window) {
        slot.state = ThreadState::kStalled;
        ++slot.stalls;
        StallEvent event;
        event.thread_id = static_cast<int>(i);
        event.name = slot.name;
        event.kind = slot.kind;
        event.beats_at_detection = beats;
        event.silent_for = silent;
        events_.push_back(event);
        pending.push_back({slot.on_stall ? &slot.on_stall : nullptr, nullptr,
                           static_cast<int>(i), std::move(event)});
      }
    }
  }
  for (auto& p : pending) {
    if (p.on_stall != nullptr) (*p.on_stall)(p.event);
    if (p.on_recover != nullptr) (*p.on_recover)(p.thread_id);
  }
}

void Supervisor::check_now() { check(std::chrono::steady_clock::now()); }

void Supervisor::run() {
  while (running_.load(std::memory_order_acquire)) {
    check(std::chrono::steady_clock::now());
    // Timed doze between passes. The predicate is re-checked under mu_
    // before every wait and stop() notifies while holding mu_, so a stop
    // that fires during check() (or between the loop-head running_ check
    // and the wait) cannot lose its wakeup: either this thread sees
    // running_ == false before sleeping, or it is already waiting and
    // receives the notify.
    const auto deadline = std::chrono::steady_clock::now() + config_.check_interval;
    MutexLock lock(mu_);
    while (running_.load(std::memory_order_acquire)) {
      if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
    }
  }
}

void Supervisor::start() {
  {
    MutexLock lock(mu_);
    if (started_) return;
    started_ = true;
    // Re-baseline every slot: the gap between registration and start()
    // (threads may not even exist yet) must not count as silence.
    const auto now = std::chrono::steady_clock::now();
    for (auto& slot : slots_) {
      slot.last_beats = slot.hb->beats_now();
      slot.last_advance = now;
    }
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void Supervisor::stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    // Flip and notify under mu_: run() re-checks running_ under the same
    // lock before waiting, so the wakeup cannot fall into the gap between
    // its check and its wait.
    running_.store(false, std::memory_order_release);
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

ThreadHealth Supervisor::health(int thread_id) const {
  MutexLock lock(mu_);
  const Slot& slot = slots_.at(static_cast<std::size_t>(thread_id));
  return {slot.state, slot.stalls, slot.recoveries, slot.last_beats};
}

std::vector<StallEvent> Supervisor::stall_events() const {
  MutexLock lock(mu_);
  return events_;
}

u64 Supervisor::stalls_detected() const {
  MutexLock lock(mu_);
  u64 total = 0;
  for (const auto& slot : slots_) total += slot.stalls;
  return total;
}

u64 Supervisor::recoveries() const {
  MutexLock lock(mu_);
  u64 total = 0;
  for (const auto& slot : slots_) total += slot.recoveries;
  return total;
}

}  // namespace ps::supervise
