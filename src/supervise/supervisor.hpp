// Heartbeat supervisor (liveness layer).
//
// Every worker and master publishes a cacheline-isolated Heartbeat
// (common/heartbeat.hpp); the Supervisor samples them from a dedicated
// thread every `check_interval` and declares a thread stalled once its
// beat counter has been silent for longer than `stall_window`. Detection
// is therefore bounded: a hung thread is noticed within
// stall_window + check_interval (+ scheduler noise).
//
// The supervisor itself is policy-free. Recovery lives with the owner of
// the supervised threads (the Router), which registers callbacks:
//  - on_stall fires once per live->stalled transition (record the event,
//    quarantine the thread's queues, kick it);
//  - on_recover fires once per stalled->live transition (the beats
//    resumed; undo the quarantine).
// Callbacks run on the supervisor thread, outside the supervisor's lock,
// so they may block briefly (e.g. the queue-handoff handshake).
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/heartbeat.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps::supervise {

enum class ThreadKind : u8 { kWorker, kMaster, kOther };

enum class ThreadState : u8 { kLive, kStalled };

const char* to_string(ThreadKind kind);

/// One live->stalled transition, recorded for tests and post-mortems.
struct StallEvent {
  int thread_id = -1;
  std::string name;
  ThreadKind kind = ThreadKind::kOther;
  u64 beats_at_detection = 0;
  /// Observed silence when the stall was declared (>= stall_window).
  std::chrono::milliseconds silent_for{0};
};

struct SupervisorConfig {
  std::chrono::milliseconds check_interval{2};
  /// Heartbeat silence longer than this declares the thread stalled.
  std::chrono::milliseconds stall_window{20};
};

/// Snapshot of one supervised thread's liveness accounting.
struct ThreadHealth {
  ThreadState state = ThreadState::kLive;
  u64 stalls = 0;
  u64 recoveries = 0;
  u64 last_beats = 0;
};

class Supervisor {
 public:
  using StallHandler = std::function<void(const StallEvent&)>;
  using RecoverHandler = std::function<void(int thread_id)>;

  explicit Supervisor(SupervisorConfig config = {});
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Register a supervised thread. `hb` must outlive the supervisor and
  /// stay at a stable address (e.g. inside a reserved vector). Returns the
  /// thread's id. Call before start().
  int add_thread(std::string name, ThreadKind kind, const Heartbeat* hb,
                 StallHandler on_stall = {}, RecoverHandler on_recover = {});

  /// Spawn the supervision thread. Idempotent.
  void start();
  /// Stop and join the supervision thread. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  const SupervisorConfig& config() const { return config_; }

  /// One synchronous supervision pass (deterministic tests drive this
  /// instead of start()).
  void check_now();

  ThreadHealth health(int thread_id) const;
  std::vector<StallEvent> stall_events() const;
  u64 stalls_detected() const;
  u64 recoveries() const;

 private:
  struct Slot {
    std::string name;
    ThreadKind kind = ThreadKind::kOther;
    const Heartbeat* hb = nullptr;
    StallHandler on_stall;
    RecoverHandler on_recover;
    // Supervisor-thread state, published under mu_ for accessors.
    u64 last_beats = 0;
    std::chrono::steady_clock::time_point last_advance;
    ThreadState state = ThreadState::kLive;
    u64 stalls = 0;
    u64 recoveries = 0;
  };

  void run();
  void check(std::chrono::steady_clock::time_point now);

  SupervisorConfig config_;
  mutable Mutex mu_;
  CondVar cv_;  // wakes the loop promptly on stop()
  std::vector<Slot> slots_ GUARDED_BY(mu_);
  std::vector<StallEvent> events_ GUARDED_BY(mu_);
  std::thread thread_;  // start()/stop() caller's thread only
  // mc: supervise.running -- relaxed liveness flag read by accessors
  ps::atomic<bool> running_{false};
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace ps::supervise
