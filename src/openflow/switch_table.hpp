// OpenFlow switch data path (section 6.2.3): an exact-match hash table and
// a priority-ordered wildcard table searched linearly, as in the reference
// implementation (hardware switches use TCAM instead). Exact matches take
// precedence over any wildcard entry.
#pragma once

#include <optional>
#include <vector>

#include "openflow/flow.hpp"

namespace ps::openflow {

struct FlowStats {
  u64 packets = 0;
  u64 bytes = 0;
};

/// Entry lifetime: 0 = permanent, otherwise the model time at which the
/// entry hard-expires (OpenFlow's hard_timeout, removed by the periodic
/// control-plane sweep).
using ExpiryTime = Picos;

/// Exact-match table: open addressing with linear probing over flat slots,
/// the same layout the GPU kernel consumes.
class ExactMatchTable {
 public:
  struct Slot {
    FlowKey key;
    Action action;
    u16 occupied = 0;
    FlowStats stats;
    ExpiryTime expires_at = 0;
  };

  explicit ExactMatchTable(std::size_t expected_entries = 1024);

  /// Insert or update. Grows (rehashes) beyond 70% load. `expires_at` of
  /// 0 means permanent.
  void insert(const FlowKey& key, Action action, ExpiryTime expires_at = 0);
  bool erase(const FlowKey& key);

  /// Remove entries whose hard timeout has passed; returns how many.
  std::size_t expire(Picos now);

  /// Returns the action, or nullopt on miss; bumps entry counters.
  std::optional<Action> lookup(const FlowKey& key, u32 packet_bytes = 0);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }
  std::span<const Slot> slots() const { return slots_; }

  /// Flat probe against raw slots (shared with the GPU kernel): returns
  /// the slot index or -1.
  static i64 probe_in_slots(const Slot* slots, u32 capacity_mask, const FlowKey& key, u32 hash);

 private:
  void grow();

  std::vector<Slot> slots_;  // power-of-two size
  std::size_t size_ = 0;
};

/// Wildcard table: entries sorted by descending priority; first match wins.
class WildcardTable {
 public:
  struct Entry {
    WildcardMatch match;
    Action action;
    FlowStats stats;
    ExpiryTime expires_at = 0;
  };

  void insert(WildcardMatch match, Action action, ExpiryTime expires_at = 0);

  /// Remove entries whose hard timeout has passed; returns how many.
  std::size_t expire(Picos now);
  std::size_t size() const { return entries_.size(); }
  std::span<const Entry> entries() const { return entries_; }

  /// Linear search in priority order; bumps counters on hit. `scanned`,
  /// when non-null, receives the number of entries examined (cost model).
  std::optional<Action> lookup(const FlowKey& key, u32 packet_bytes = 0, int* scanned = nullptr);

 private:
  std::vector<Entry> entries_;  // descending priority
};

/// The combined switch lookup pipeline.
class OpenFlowSwitch {
 public:
  ExactMatchTable& exact() { return exact_; }
  WildcardTable& wildcard() { return wildcard_; }
  const ExactMatchTable& exact() const { return exact_; }
  const WildcardTable& wildcard() const { return wildcard_; }

  /// Table-miss policy (default: punt to controller).
  void set_default_action(Action a) { default_action_ = a; }
  Action default_action() const { return default_action_; }

  /// Full lookup: exact first, then wildcard, then the default action.
  Action classify(const FlowKey& key, u32 packet_bytes = 0, int* wildcard_scanned = nullptr);

  /// Control-plane sweep removing hard-expired entries from both tables
  /// (OpenFlow hard_timeout); returns the number evicted.
  std::size_t expire(Picos now);

  u64 exact_hits() const { return exact_hits_; }
  u64 wildcard_hits() const { return wildcard_hits_; }
  u64 misses() const { return misses_; }

 private:
  ExactMatchTable exact_;
  WildcardTable wildcard_;
  Action default_action_ = Action::controller();
  u64 exact_hits_ = 0;
  u64 wildcard_hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace ps::openflow
