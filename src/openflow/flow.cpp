#include "openflow/flow.hpp"

namespace ps::openflow {

FlowKey extract_flow_key(const net::PacketView& pkt, u16 in_port) {
  FlowKey key;
  key.in_port = in_port;

  const auto& eth = pkt.eth();
  key.dl_src = eth.src_mac().bytes;
  key.dl_dst = eth.dst_mac().bytes;
  key.dl_type = static_cast<u16>(pkt.ether_type);

  if (pkt.ether_type == net::EtherType::kIpv4) {
    const auto& ip = pkt.ipv4();
    key.nw_src = ip.src().value;
    key.nw_dst = ip.dst().value;
    key.nw_proto = ip.protocol;
    if (pkt.has_l4) {
      if (pkt.ip_proto == net::IpProto::kUdp) {
        key.tp_src = pkt.udp().src_port();
        key.tp_dst = pkt.udp().dst_port();
      } else if (pkt.ip_proto == net::IpProto::kTcp) {
        key.tp_src = pkt.tcp().src_port();
        key.tp_dst = pkt.tcp().dst_port();
      }
    }
  }
  return key;
}

u32 flow_key_hash(const FlowKey& key) {
  // Four 64-bit lanes mixed splitmix-style; flat and branch-free so the
  // GPU port is the identical routine.
  const u8* bytes = key.bytes().data();
  u64 h = 0x243f6a8885a308d3ULL;
  for (int lane = 0; lane < 4; ++lane) {
    u64 word;
    std::memcpy(&word, bytes + lane * 8, 8);
    h ^= word;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
  }
  return static_cast<u32>(h ^ (h >> 32));
}

namespace {

bool prefix_match(u32 a, u32 b, u8 bits) {
  if (bits == 0) return true;
  const u32 mask = bits >= 32 ? 0xffffffffu : ~((u32{1} << (32 - bits)) - 1);
  return (a & mask) == (b & mask);
}

}  // namespace

bool WildcardMatch::matches(const FlowKey& k) const {
  if (!(wildcards & kWildInPort) && k.in_port != key.in_port) return false;
  if (!(wildcards & kWildDlVlan) && k.dl_vlan != key.dl_vlan) return false;
  if (!(wildcards & kWildDlSrc) && k.dl_src != key.dl_src) return false;
  if (!(wildcards & kWildDlDst) && k.dl_dst != key.dl_dst) return false;
  if (!(wildcards & kWildDlType) && k.dl_type != key.dl_type) return false;
  if (!(wildcards & kWildNwProto) && k.nw_proto != key.nw_proto) return false;
  if (!(wildcards & kWildTpSrc) && k.tp_src != key.tp_src) return false;
  if (!(wildcards & kWildTpDst) && k.tp_dst != key.tp_dst) return false;
  if (!prefix_match(k.nw_src, key.nw_src, nw_src_bits)) return false;
  if (!prefix_match(k.nw_dst, key.nw_dst, nw_dst_bits)) return false;
  return true;
}

}  // namespace ps::openflow
