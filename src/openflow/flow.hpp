// OpenFlow 0.8.9 flow abstraction (section 6.2.3): the ten-field flow key,
// wildcard masks, and actions.
#pragma once

#include <array>
#include <compare>
#include <cstring>
#include <span>
#include <string>

#include "common/types.hpp"
#include "net/packet.hpp"

namespace ps::openflow {

/// The ten-field flow key of OpenFlow 0.8.9: ingress port, Ethernet
/// src/dst/VLAN/type, IP src/dst/protocol, transport src/dst ports.
/// Packed to a fixed 32 bytes so hashing and comparison are flat
/// byte operations on both CPU and GPU.
#pragma pack(push, 1)
struct FlowKey {
  u16 in_port = 0;
  std::array<u8, 6> dl_src{};
  std::array<u8, 6> dl_dst{};
  u16 dl_vlan = 0;
  u16 dl_type = 0;
  u32 nw_src = 0;  // host order
  u32 nw_dst = 0;
  u8 nw_proto = 0;
  u8 pad = 0;
  u16 tp_src = 0;
  u16 tp_dst = 0;

  bool operator==(const FlowKey&) const = default;

  std::span<const u8, 32> bytes() const {
    return std::span<const u8, 32>{reinterpret_cast<const u8*>(this), 32};
  }
};
#pragma pack(pop)
static_assert(sizeof(FlowKey) == 32);

/// Extract the flow key from a parsed frame (non-IP fields zero as in the
/// reference switch).
FlowKey extract_flow_key(const net::PacketView& pkt, u16 in_port);

/// Flow-key hash — the computation the paper offloads to the GPU. A flat
/// 64->32 bit mix over the 32 key bytes, identical on CPU and GPU paths.
u32 flow_key_hash(const FlowKey& key);

/// Wildcard flags (subset of OFPFW_*); a set bit means "ignore this field".
enum WildcardBits : u32 {
  kWildInPort = 1u << 0,
  kWildDlVlan = 1u << 1,
  kWildDlSrc = 1u << 2,
  kWildDlDst = 1u << 3,
  kWildDlType = 1u << 4,
  kWildNwProto = 1u << 5,
  kWildTpSrc = 1u << 6,
  kWildTpDst = 1u << 7,
  kWildAll = 0xff,
};

struct WildcardMatch {
  FlowKey key;
  u32 wildcards = kWildAll;  // WildcardBits
  u8 nw_src_bits = 0;        // prefix length to match on nw_src (0 = ignore)
  u8 nw_dst_bits = 0;
  u16 priority = 0;          // higher wins

  bool matches(const FlowKey& k) const;
};

enum class ActionType : u8 {
  kOutput = 0,   // forward to `port`
  kFlood,        // all ports except ingress
  kDrop,
  kController,   // punt to the slow path
};

/// A flow entry's action: a disposition plus optional L2 rewrites
/// (OFPAT_SET_DL_SRC / OFPAT_SET_DL_DST in OpenFlow 0.8.9), applied
/// before output.
struct Action {
  ActionType type = ActionType::kDrop;
  u16 port = 0;
  bool set_dl_src = false;
  bool set_dl_dst = false;
  net::MacAddr dl_src{};
  net::MacAddr dl_dst{};

  static Action output(u16 port) {
    Action a;
    a.type = ActionType::kOutput;
    a.port = port;
    return a;
  }
  static Action drop() { return Action{}; }
  static Action flood() {
    Action a;
    a.type = ActionType::kFlood;
    return a;
  }
  static Action controller() {
    Action a;
    a.type = ActionType::kController;
    return a;
  }

  /// Chainable rewrite setters.
  Action& with_dl_src(const net::MacAddr& mac) {
    set_dl_src = true;
    dl_src = mac;
    return *this;
  }
  Action& with_dl_dst(const net::MacAddr& mac) {
    set_dl_dst = true;
    dl_dst = mac;
    return *this;
  }

  bool operator==(const Action&) const = default;
};

}  // namespace ps::openflow
