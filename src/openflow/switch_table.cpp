#include "openflow/switch_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ps::openflow {

ExactMatchTable::ExactMatchTable(std::size_t expected_entries) {
  const std::size_t capacity = std::bit_ceil(std::max<std::size_t>(expected_entries * 2, 16));
  slots_.resize(capacity);
}

i64 ExactMatchTable::probe_in_slots(const Slot* slots, u32 capacity_mask, const FlowKey& key,
                                    u32 hash) {
  u32 index = hash & capacity_mask;
  // Linear probing; an empty slot terminates the chain (no tombstones:
  // erase() re-inserts the displaced cluster).
  while (slots[index].occupied != 0) {
    if (slots[index].key == key) return index;
    index = (index + 1) & capacity_mask;
  }
  return -1;
}

void ExactMatchTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_ = 0;
  for (const auto& slot : old) {
    if (slot.occupied == 0) continue;
    insert(slot.key, slot.action, slot.expires_at);
    // Preserve counters across the rehash.
    const u32 mask = static_cast<u32>(slots_.size() - 1);
    const i64 idx = probe_in_slots(slots_.data(), mask, slot.key, flow_key_hash(slot.key));
    assert(idx >= 0);
    slots_[static_cast<std::size_t>(idx)].stats = slot.stats;
  }
}

void ExactMatchTable::insert(const FlowKey& key, Action action, ExpiryTime expires_at) {
  if ((size_ + 1) * 10 > slots_.size() * 7) grow();
  const u32 mask = static_cast<u32>(slots_.size() - 1);
  u32 index = flow_key_hash(key) & mask;
  while (slots_[index].occupied != 0) {
    if (slots_[index].key == key) {
      slots_[index].action = action;
      slots_[index].expires_at = expires_at;
      return;
    }
    index = (index + 1) & mask;
  }
  slots_[index] = Slot{key, action, 1, {}, expires_at};
  ++size_;
}

std::size_t ExactMatchTable::expire(Picos now) {
  // Collect first: erase() reshuffles probe clusters.
  std::vector<FlowKey> expired;
  for (const auto& slot : slots_) {
    if (slot.occupied != 0 && slot.expires_at != 0 && slot.expires_at <= now) {
      expired.push_back(slot.key);
    }
  }
  for (const auto& key : expired) erase(key);
  return expired.size();
}

bool ExactMatchTable::erase(const FlowKey& key) {
  const u32 mask = static_cast<u32>(slots_.size() - 1);
  i64 idx = probe_in_slots(slots_.data(), mask, key, flow_key_hash(key));
  if (idx < 0) return false;

  // Remove and re-insert the rest of the probe cluster so linear probing
  // invariants hold without tombstones.
  slots_[static_cast<std::size_t>(idx)] = Slot{};
  --size_;
  u32 index = (static_cast<u32>(idx) + 1) & mask;
  while (slots_[index].occupied != 0) {
    Slot displaced = slots_[index];
    slots_[index] = Slot{};
    --size_;
    insert(displaced.key, displaced.action);
    const i64 nidx =
        probe_in_slots(slots_.data(), mask, displaced.key, flow_key_hash(displaced.key));
    slots_[static_cast<std::size_t>(nidx)].stats = displaced.stats;
    index = (index + 1) & mask;
  }
  return true;
}

std::optional<Action> ExactMatchTable::lookup(const FlowKey& key, u32 packet_bytes) {
  const u32 mask = static_cast<u32>(slots_.size() - 1);
  const i64 idx = probe_in_slots(slots_.data(), mask, key, flow_key_hash(key));
  if (idx < 0) return std::nullopt;
  auto& slot = slots_[static_cast<std::size_t>(idx)];
  ++slot.stats.packets;
  slot.stats.bytes += packet_bytes;
  return slot.action;
}

void WildcardTable::insert(WildcardMatch match, Action action, ExpiryTime expires_at) {
  const auto pos = std::find_if(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.match.priority < match.priority;
  });
  entries_.insert(pos, Entry{match, action, {}, expires_at});
}

std::size_t WildcardTable::expire(Picos now) {
  const auto first = std::remove_if(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.expires_at != 0 && e.expires_at <= now;
  });
  const auto n = static_cast<std::size_t>(entries_.end() - first);
  entries_.erase(first, entries_.end());
  return n;
}

std::optional<Action> WildcardTable::lookup(const FlowKey& key, u32 packet_bytes, int* scanned) {
  int n = 0;
  for (auto& entry : entries_) {
    ++n;
    if (entry.match.matches(key)) {
      ++entry.stats.packets;
      entry.stats.bytes += packet_bytes;
      if (scanned != nullptr) *scanned = n;
      return entry.action;
    }
  }
  if (scanned != nullptr) *scanned = n;
  return std::nullopt;
}

std::size_t OpenFlowSwitch::expire(Picos now) {
  return exact_.expire(now) + wildcard_.expire(now);
}

Action OpenFlowSwitch::classify(const FlowKey& key, u32 packet_bytes, int* wildcard_scanned) {
  if (auto action = exact_.lookup(key, packet_bytes)) {
    ++exact_hits_;
    if (wildcard_scanned != nullptr) *wildcard_scanned = 0;
    return *action;
  }
  if (auto action = wildcard_.lookup(key, packet_bytes, wildcard_scanned)) {
    ++wildcard_hits_;
    return *action;
  }
  ++misses_;
  return default_action_;
}

}  // namespace ps::openflow
