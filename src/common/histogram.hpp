// Latency/throughput statistics with percentile support.
//
// Figure 12 of the paper reports average round-trip latency over offered
// load; our harness additionally records percentiles, so the distribution
// is kept as a log-bucketed histogram (constant memory, ~1% value error).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace ps {

class Histogram {
 public:
  Histogram();

  void record(double value);
  void record_n(double value, u64 count);
  void merge(const Histogram& other);
  void reset();

  u64 count() const noexcept { return count_; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double stddev() const noexcept;

  /// Value at quantile q in [0,1], approximated by bucket midpoint.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }

  /// One-line human-readable summary.
  std::string summary() const;

 private:
  static constexpr int kBucketsPerDecade = 64;
  static constexpr int kDecades = 20;  // covers 1e-10 .. 1e10 relative range
  int bucket_index(double value) const;
  double bucket_midpoint(int index) const;

  std::vector<u64> buckets_;
  u64 count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ps
