// Epoch-based reclamation (the control-plane fault-domain primitive).
//
// The data path must read shared state (FIB generations) without ever
// taking a lock, while the control plane replaces and frees that state
// under it. Reference counting (shared_ptr snapshots) costs an atomic
// RMW per reader acquisition and — as FibManager showed — tempts a mutex
// around the pointer swap. Epochs remove both: a reader *pins* the
// domain's current epoch into a cacheline-isolated slot (one relaxed
// store + one fence), loads the published pointer, and unpins when done;
// a writer retires an unpublished object tagged with the epoch at
// retirement and reclaims it only once every pinned slot has advanced
// past that tag. No reader ever writes shared state; no writer ever
// blocks a reader.
//
// Interval-based correctness argument (the classic asymmetric fence
// pairing):
//  - The writer publishes the replacement pointer (release), then tags
//    the old object with `fetch_add` on the epoch counter (seq_cst).
//  - A reader stores its pin, fences seq_cst, then loads the pointer.
//  - When the writer later scans the slots (after its own seq_cst
//    fence), either it observes the pin — and the tag `t` is not below
//    the pinned epoch, so the object survives — or the reader's fence
//    ordered after the writer's, in which case the reader's pointer load
//    observed the *new* pointer and the old object is unreachable from
//    that reader. Either way no pinned reader can hold a freed pointer.
//
// Threads auto-register a slot on first pin (thread-local cache) and
// release it at thread exit through a global live-domain registry, so
// short-lived test threads do not leak slots and a domain destroyed
// before its reader threads exit leaves no dangling release.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/cacheline.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps::epoch {

class Domain;
struct ThreadSlots;

/// RAII pin: readers hold one while dereferencing a pointer published
/// through the domain. Movable, not copyable; nesting is allowed (the
/// inner pin reuses the outer's slot and keeps the older epoch, which is
/// always the safe one).
class Guard {
 public:
  Guard() = default;
  Guard(Guard&& other) noexcept : domain_(other.domain_), slot_(other.slot_) {
    other.domain_ = nullptr;
  }
  // Move-assign and the destructor run release() — an unpin, which under
  // the model is a scheduling point that may unwind on abort (see
  // PS_MC_MAY_UNWIND in atomic_shim.hpp). Production keeps noexcept.
  Guard& operator=(Guard&& other) PS_MC_NOEXCEPT {
    if (this != &other) {
      release();
      domain_ = other.domain_;
      slot_ = other.slot_;
      other.domain_ = nullptr;
    }
    return *this;
  }
  ~Guard() PS_MC_MAY_UNWIND { release(); }

  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;

  bool pinned() const { return domain_ != nullptr; }

 private:
  friend class Domain;
  Guard(Domain* domain, int slot) : domain_(domain), slot_(slot) {}
  void release();

  Domain* domain_ = nullptr;
  int slot_ = -1;
};

/// One reclamation domain: an epoch counter, a bounded set of reader
/// slots, and the writer-side retired list. Readers are wait-free after
/// their thread's first pin; retire/reclaim are mutex-serialized (they
/// run on the control plane).
class Domain {
 public:
  /// Reader slots available per domain. A slot is claimed per *thread*
  /// on first pin and released at thread exit, so this bounds concurrent
  /// reader threads, not guards. Overridable so the model-check litmus
  /// build can shrink the slot scan to the handful of virtual threads it
  /// actually runs (the checker explores every interleaving of the scan,
  /// so 128 idle-slot loads per reclaim would blow up the state space).
#ifdef PS_EPOCH_MAX_READERS
  static constexpr int kMaxReaders = PS_EPOCH_MAX_READERS;
#else
  static constexpr int kMaxReaders = 128;
#endif
  /// Slot value meaning "not pinned".
  static constexpr u64 kIdle = ~u64{0};

  Domain();
  ~Domain() PS_MC_MAY_UNWIND;

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  /// Pin the current epoch. Wait-free on the hot path (one thread-local
  /// lookup, one relaxed store, one fence, after the thread's slot is
  /// claimed). Dereference pointers published with release stores only
  /// while the returned guard lives.
  Guard pin();

  /// Writer side: hand `obj` to the domain for deferred destruction. The
  /// object must already be unpublished (no *new* reader can reach it);
  /// it is destroyed — i.e. the shared_ptr dropped — once every reader
  /// pinned at or before the retirement epoch has unpinned. Advances the
  /// epoch so later pins are distinguishable from the retirement point.
  void retire(std::shared_ptr<const void> obj);

  /// Writer side: destroy every retired object no pinned reader can
  /// still hold. With zero pinned readers this frees everything retired
  /// so far (the zero-reader fast path). Returns the number reclaimed.
  std::size_t reclaim();

  /// Retired objects still awaiting a safe epoch (gauge; approximate
  /// while writers run).
  std::size_t retired_pending() const;

  /// Current epoch (bumped once per retire).
  u64 epoch() const { return global_epoch_.load(std::memory_order_acquire); }

  /// Slots currently pinned (diagnostic; racy by nature).
  int active_readers() const;

 private:
  friend class Guard;
  friend struct ThreadSlots;  // thread-exit slot release

  struct Slot {
    // mc: epoch.slot -- reader pin; relaxed store + seq_cst fence publishes it
    ps::atomic<u64> epoch{kIdle};
    /// Owning-thread-only nesting depth (the slot is claimed by exactly
    /// one thread, so plain storage suffices).
    u32 depth = 0;
  };

  /// Claim (or look up) this thread's slot. Returns -1 when all
  /// kMaxReaders slots are taken.
  int slot_for_this_thread();
  void unpin(int slot);

  /// Smallest epoch currently pinned, or kIdle when none are.
  u64 min_pinned() const;

  struct Retired {
    std::shared_ptr<const void> obj;
    u64 epoch_tag = 0;
  };

  // mc: epoch.global -- seq_cst fetch_add per retire; pin pairs via acquire
  ps::atomic<u64> global_epoch_{1};
  /// Cacheline-isolated: every pin/unpin writes its own slot.
  std::array<CacheAligned<Slot>, kMaxReaders> slots_;
  /// Per-slot claim flags: a thread CASes one false->true to own the
  /// slot for its lifetime. Separate from the hot epoch word so claim
  /// traffic never bounces the pin cacheline.
  // mc: epoch.claimed -- slot ownership CAS; acq_rel pairs claim with release
  std::array<ps::atomic<bool>, kMaxReaders> claimed_{};

  mutable Mutex mu_;
  std::vector<Retired> retired_ GUARDED_BY(mu_);
  /// Mirror of retired_.size() readable without mu_ (telemetry probe).
  // mc: epoch.retired_count -- relaxed gauge mirror, always written under mu_
  ps::atomic<std::size_t> retired_count_{0};
};

}  // namespace ps::epoch
