// Bounded multi-producer / single-consumer queue.
//
// Used for the master thread's input queue (section 5.3): several worker
// threads feed one master. The paper deliberately keeps this queue shared
// (rather than per-worker) to preserve fairness between workers; we mirror
// that with a single mutex-guarded FIFO, which also gives the FIFO ordering
// guarantee section 5.3 requires.
//
// Concurrency contract (machine-checked under PS_ANALYZE): every item and
// the closed flag are GUARDED_BY(mu_); waits are explicit loops so the
// guarded reads stay visible to the thread-safety analysis.
//
// Storage is a ring preallocated at construction (T must be default- and
// move-constructible): the queue is bounded anyway, and a deque's block
// churn was the one steady-state allocation left on the worker→master
// hand-off path.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : capacity_(capacity), slots_(capacity) {}

  /// Blocking push; waits while the queue is full unless closed.
  /// Returns false if the queue was closed.
  bool push(T value) {
    {
      MutexLock lock(mu_);
      while (count_ >= capacity_ && !closed_) not_full_.wait(mu_);
      if (closed_) return false;
      enqueue(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T value) {
    {
      MutexLock lock(mu_);
      if (closed_ || count_ >= capacity_) return false;
      enqueue(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt only after close() with the queue drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (count_ == 0 && !closed_) not_empty_.wait(mu_);
      if (count_ == 0) return std::nullopt;
      value = dequeue();
    }
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      if (count_ == 0) return std::nullopt;
      value = dequeue();
    }
    not_full_.notify_one();
    return value;
  }

  /// Pops up to `max` items at once (the gather step of gather/scatter).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      n = drain_into(out, max);
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Blocking pop of up to `max` items: waits until at least one is
  /// available (or the queue is closed), then drains greedily.
  std::size_t pop_batch_wait(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      while (count_ == 0 && !closed_) not_empty_.wait(mu_);
      n = drain_into(out, max);
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Timed pop_batch_wait: waits up to `timeout` for at least one item,
  /// then drains greedily. Returns 0 on timeout as well as on
  /// closed-and-drained — the consumer distinguishes via drained(). The
  /// timeout lets a consumer that must stay observable (heartbeats) tick
  /// while idle instead of blocking indefinitely.
  template <typename Rep, typename Period>
  std::size_t pop_batch_wait_for(std::vector<T>& out, std::size_t max,
                                 std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    std::size_t n = 0;
    {
      MutexLock lock(mu_);
      while (count_ == 0 && !closed_) {
        if (not_empty_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
      }
      n = drain_into(out, max);
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Closed with nothing left to pop: the consumer may exit.
  bool drained() const {
    MutexLock lock(mu_);
    return closed_ && count_ == 0;
  }

  std::size_t capacity() const { return capacity_; }

  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  std::size_t drain_into(std::vector<T>& out, std::size_t max) REQUIRES(mu_) {
    std::size_t n = 0;
    while (n < max && count_ > 0) {
      out.push_back(dequeue());
      ++n;
    }
    return n;
  }

  void enqueue(T value) REQUIRES(mu_) {
    slots_[(head_ + count_) % capacity_] = std::move(value);
    ++count_;
  }

  T dequeue() REQUIRES(mu_) {
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % capacity_;
    --count_;
    return value;
  }

  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::vector<T> slots_ GUARDED_BY(mu_);  // fixed ring storage
  std::size_t head_ GUARDED_BY(mu_) = 0;
  std::size_t count_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace ps
