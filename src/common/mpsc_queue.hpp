// Bounded multi-producer / single-consumer queue.
//
// Used for the master thread's input queue (section 5.3): several worker
// threads feed one master. The paper deliberately keeps this queue shared
// (rather than per-worker) to preserve fairness between workers; we mirror
// that with a single mutex-guarded FIFO, which also gives the FIFO ordering
// guarantee section 5.3 requires.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace ps {

template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocking push; waits while the queue is full unless closed.
  /// Returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; returns nullopt only after close() with the queue drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return value;
  }

  /// Pops up to `max` items at once (the gather step of gather/scatter).
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      std::lock_guard lock(mu_);
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Blocking pop of up to `max` items: waits until at least one is
  /// available (or the queue is closed), then drains greedily.
  std::size_t pop_batch_wait(std::vector<T>& out, std::size_t max) {
    std::size_t n = 0;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Timed pop_batch_wait: waits up to `timeout` for at least one item,
  /// then drains greedily. Returns 0 on timeout as well as on
  /// closed-and-drained — the consumer distinguishes via drained(). The
  /// timeout lets a consumer that must stay observable (heartbeats) tick
  /// while idle instead of blocking indefinitely.
  template <typename Rep, typename Period>
  std::size_t pop_batch_wait_for(std::vector<T>& out, std::size_t max,
                                 std::chrono::duration<Rep, Period> timeout) {
    std::size_t n = 0;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
      while (n < max && !items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
        ++n;
      }
    }
    if (n > 0) not_full_.notify_all();
    return n;
  }

  /// Closed with nothing left to pop: the consumer may exit.
  bool drained() const {
    std::lock_guard lock(mu_);
    return closed_ && items_.empty();
  }

  std::size_t capacity() const { return capacity_; }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ps
