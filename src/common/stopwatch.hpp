// Wall-clock stopwatch for the host-speed microbenchmarks (bench_micro_*).
// All paper-shaped figures use the simulated clock in ps::perf instead.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace ps {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  Picos elapsed_picos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start_).count() *
           kPicosPerNano;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ps
