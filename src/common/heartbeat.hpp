// Thread liveness heartbeat (overload-control / supervision layer).
//
// Every supervised thread (worker, master) owns one Heartbeat and ticks
// it at the top of its loop; a supervisor thread samples the counters and
// declares a thread stalled when the beat counter stops advancing for
// longer than the configured window. `beats` proves the loop is alive,
// `progress` proves it is doing useful work (chunks moved) — a thread can
// be live but starved, and the supervisor can tell the two apart.
//
// Heartbeats are embedded as CacheAligned<Heartbeat> so the per-thread
// counters never share a cache line (the §4.4 false-sharing discipline
// applies to supervision state too: a heartbeat is written every loop
// iteration).
#pragma once

#include <atomic>

#include "common/atomic_shim.hpp"
#include "common/types.hpp"

namespace ps {

struct Heartbeat {
  // mc: heartbeat.beats -- release tick; supervisor acquires (quarantine edge)
  ps::atomic<u64> beats{0};  // loop-alive ticks
  // mc: heartbeat.progress -- relaxed useful-work counter
  ps::atomic<u64> progress{0};  // units of useful work (e.g. chunks)

  /// Release order so everything the thread did before the beat (queue
  /// writes, ring handoffs) is visible to a supervisor that acquires it —
  /// the quarantine handshake relies on this edge.
  void beat() { beats.fetch_add(1, std::memory_order_release); }
  void advance(u64 n = 1) { progress.fetch_add(n, std::memory_order_relaxed); }

  u64 beats_now() const { return beats.load(std::memory_order_acquire); }
  u64 progress_now() const { return progress.load(std::memory_order_relaxed); }
};

}  // namespace ps
