#include "common/epoch.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_set>

#ifdef PS_MODEL_CHECK
#include "mc/mc.hpp"
#endif

namespace ps::epoch {

namespace {

/// Live-domain registry: thread-exit slot release must not touch a
/// domain that was destroyed first, so both sides rendezvous here.
/// Leaked intentionally (never destroyed) so thread_local destructors
/// running at process exit always find it alive.
struct DomainRegistry {
  Mutex mu;
  std::unordered_set<Domain*> live GUARDED_BY(mu);
};

DomainRegistry& registry() {
  static DomainRegistry* r = new DomainRegistry;
  return *r;
}

}  // namespace

/// Per-thread cache of claimed slots, one entry per domain this thread
/// has pinned. Released at thread exit (under the registry lock, so a
/// dead domain is skipped, not dereferenced).
struct ThreadSlots {
  struct Entry {
    Domain* domain;
    int slot;
  };
  std::vector<Entry> entries;

  ~ThreadSlots() PS_MC_MAY_UNWIND;

  int find(const Domain* domain) const {
    for (const auto& e : entries) {
      if (e.domain == domain) return e.slot;
    }
    return -1;
  }
};

namespace {
#ifdef PS_MODEL_CHECK
/// Under the model checker every virtual thread needs its own slot
/// cache (a real thread_local would be shared by all fibers on the one
/// OS thread); the checker also runs the destructor at virtual-thread
/// exit, exercising the registry rendezvous per execution.
ThreadSlots& thread_slots() { return mc::thread_local_instance<ThreadSlots>(); }
#else
thread_local ThreadSlots tl_slots;
ThreadSlots& thread_slots() { return tl_slots; }
#endif
}  // namespace

Domain::Domain() {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.live.insert(this);
}

Domain::~Domain() PS_MC_MAY_UNWIND {
  assert(active_readers() == 0 && "domain destroyed with pinned readers");
  auto& reg = registry();
  MutexLock lock(reg.mu);
  reg.live.erase(this);
  // retired_ drops its shared_ptrs on destruction; with no readers left
  // that is the correct final reclaim.
}

ThreadSlots::~ThreadSlots() PS_MC_MAY_UNWIND {
  auto& reg = registry();
  MutexLock lock(reg.mu);
  for (const auto& e : entries) {
    if (reg.live.find(e.domain) == reg.live.end()) continue;
    // A live guard at thread exit would be a caller bug; the slot must
    // be idle by now. Release the claim so another thread can take it.
    e.domain->slots_[static_cast<std::size_t>(e.slot)]->epoch.store(
        Domain::kIdle, std::memory_order_release);
    e.domain->claimed_[static_cast<std::size_t>(e.slot)].store(false,
                                                              std::memory_order_release);
  }
}

int Domain::slot_for_this_thread() {
  ThreadSlots& tls = thread_slots();
  const int cached = tls.find(this);
  if (cached >= 0) return cached;
  for (int i = 0; i < kMaxReaders; ++i) {
    bool expected = false;
    if (claimed_[static_cast<std::size_t>(i)].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel, std::memory_order_relaxed)) {
      tls.entries.push_back({this, i});
      return i;
    }
  }
  return -1;
}

Guard Domain::pin() {
  const int slot = slot_for_this_thread();
  if (slot < 0) {
    throw std::runtime_error("epoch::Domain: more than kMaxReaders concurrent reader threads");
  }
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  if (s.depth++ == 0) {
    // Publish the pin before the caller loads the protected pointer: the
    // seq_cst fence pairs with the writer's pre-scan fence (see header).
    const u64 e = global_epoch_.load(std::memory_order_acquire);
    s.epoch.store(e, std::memory_order_relaxed);
    // mc: epoch.fence.pin -- publish the pin before the protected-pointer load
    fence_seq_cst();
  }
  return Guard(this, slot);
}

void Domain::unpin(int slot) {
  Slot& s = *slots_[static_cast<std::size_t>(slot)];
  assert(s.depth > 0);
  if (--s.depth == 0) {
    // Release order: everything this reader did with the protected
    // object is visible to the writer that observes the unpin.
    s.epoch.store(kIdle, std::memory_order_release);
  }
}

void Guard::release() {
  if (domain_ != nullptr) {
    domain_->unpin(slot_);
    domain_ = nullptr;
  }
}

void Domain::retire(std::shared_ptr<const void> obj) {
  // The caller unpublished `obj` before calling (program order), so a
  // reader pinning at >= tag+1 observes the replacement pointer. The
  // seq_cst RMW is the sync point the pin's acquire load pairs with.
  const u64 tag = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  MutexLock lock(mu_);
  retired_.push_back({std::move(obj), tag});
  retired_count_.store(retired_.size(), std::memory_order_relaxed);
}

u64 Domain::min_pinned() const {
  u64 min = kIdle;
  for (const auto& slot : slots_) {
    const u64 e = slot->epoch.load(std::memory_order_acquire);
    if (e < min) min = e;
  }
  return min;
}

std::size_t Domain::reclaim() {
  // Pair with the reader-side pin fence: after this fence, any reader
  // whose pin we fail to observe has already seen the replacement
  // pointer (and the retirement), so the object is unreachable from it.
  // mc: epoch.fence.scan -- writer fence pairs with epoch.fence.pin
  fence_seq_cst();
  const u64 min = min_pinned();

  std::vector<std::shared_ptr<const void>> to_drop;  // destroy outside mu_
  {
    MutexLock lock(mu_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch_tag < min) {
        to_drop.push_back(std::move(it->obj));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
    retired_count_.store(retired_.size(), std::memory_order_relaxed);
  }
  return to_drop.size();
}

std::size_t Domain::retired_pending() const {
  return retired_count_.load(std::memory_order_relaxed);
}

int Domain::active_readers() const {
  int pinned = 0;
  for (const auto& slot : slots_) {
    if (slot->epoch.load(std::memory_order_acquire) != kIdle) ++pinned;
  }
  return pinned;
}

}  // namespace ps::epoch
