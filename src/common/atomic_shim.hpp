// The atomics shim: every atomic in src/ is declared through ps::atomic
// and every standalone seq_cst fence goes through ps::fence_seq_cst().
//
// In production builds the aliases below ARE std::atomic and a real
// std::atomic_thread_fence — alias templates and inline functions, zero
// codegen difference (asserted by tests/common/test_atomic_shim.cpp).
// Under -DPS_MODEL_CHECK (applied per-target to the litmus suite, never
// to production binaries) the same names route every load/store/RMW/
// fence through the ps::mc weak-memory model checker (src/mc/), which
// simulates C++11 memory_order semantics — stale reads, modification
// order, SC-fence pairing — and explores interleavings systematically.
// One spelling, three backends:
//
//   build             ps::atomic<T>       ps::fence_seq_cst()
//   ----------------- ------------------- ------------------------------
//   production        std::atomic<T>      std::atomic_thread_fence(sc)
//   TSan              std::atomic<T>      seq_cst RMW on a dummy atomic
//   PS_MODEL_CHECK    ps::mc::atomic<T>   ps::mc::fence(sc)
//
// The TSan leg exists because TSan does not model atomic_thread_fence
// (and gcc rejects it outright under -fsanitize=thread -Werror=tsan).
// A seq_cst RMW on a process-wide dummy atomic carries the same total
// order TSan *can* see — the RMW chain on one location release/acquire-
// links every fence call site — at the cost of real contention:
// acceptable for a checking build, never compiled into production
// binaries. This helper is the single home of that idiom; spsc_ring.hpp
// and epoch.cpp used to hand-roll one copy each.
//
// The pslint atomics-audit rule bans bare std::atomic declarations and
// std::atomic_thread_fence calls in src/ (this file and src/mc/ are the
// sanctioned exceptions) and requires every ps::atomic site to carry a
// `// mc:` contract tag cross-checked against DESIGN.md §17.
#pragma once

#include <atomic>

// Under the model, aborting an execution unwinds every virtual thread by
// throwing from its next blocking point — which may sit inside a
// destructor (MutexLock's unlock, epoch Guard's unpin). Destructors are
// implicitly noexcept, so any such destructor must opt back into
// unwinding under PS_MODEL_CHECK; in production the annotation expands
// to nothing and the destructor stays noexcept as usual. PS_MC_NOEXCEPT
// is the same escape hatch for move operations that are noexcept in
// production but may report a data race (throw) under the model.
#ifdef PS_MODEL_CHECK
#define PS_MC_MAY_UNWIND noexcept(false)
#define PS_MC_NOEXCEPT noexcept(false)
#else
#define PS_MC_MAY_UNWIND
#define PS_MC_NOEXCEPT noexcept
#endif

#ifdef PS_MODEL_CHECK

#include "mc/mc_atomic.hpp"

namespace ps {

template <typename T>
using atomic = mc::atomic<T>;

inline void fence_seq_cst() { mc::fence(std::memory_order_seq_cst); }

}  // namespace ps

#else  // production / sanitizer builds

#if defined(__SANITIZE_THREAD__)
#define PS_ATOMIC_SHIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PS_ATOMIC_SHIM_TSAN 1
#endif
#endif

namespace ps {

template <typename T>
using atomic = std::atomic<T>;

inline void fence_seq_cst() {
#ifdef PS_ATOMIC_SHIM_TSAN
  // pslint: allow(atomics-audit) -- the shim's own TSan stand-in dummy.
  static std::atomic<unsigned> dummy{0};
  dummy.fetch_add(1, std::memory_order_seq_cst);
#else
  // pslint: allow(atomics-audit) -- the shim IS the sanctioned fence site.
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

}  // namespace ps

#endif  // PS_MODEL_CHECK
