// Basic scalar types and unit helpers shared by every PacketShader module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ps {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Simulated time in picoseconds. Picosecond granularity keeps cycle
/// arithmetic exact for multi-GHz clocks (1 cycle @ 2.66 GHz = 375.9 ps).
using Picos = i64;

constexpr Picos kPicosPerNano = 1'000;
constexpr Picos kPicosPerMicro = 1'000'000;
constexpr Picos kPicosPerMilli = 1'000'000'000;
constexpr Picos kPicosPerSec = 1'000'000'000'000;

constexpr double to_micros(Picos p) { return static_cast<double>(p) / kPicosPerMicro; }
constexpr double to_nanos(Picos p) { return static_cast<double>(p) / kPicosPerNano; }
constexpr double to_seconds(Picos p) { return static_cast<double>(p) / kPicosPerSec; }
constexpr Picos micros(double us) { return static_cast<Picos>(us * kPicosPerMicro); }
constexpr Picos nanos(double ns) { return static_cast<Picos>(ns * kPicosPerNano); }
constexpr Picos seconds(double s) { return static_cast<Picos>(s * kPicosPerSec); }

/// Convert a (bytes, duration) pair to throughput in Gbit/s.
constexpr double to_gbps(u64 bytes, Picos elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / static_cast<double>(elapsed) * 1e3;
}

/// Convert a (packets, duration) pair to millions of packets per second.
constexpr double to_mpps(u64 packets, Picos elapsed) {
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(packets) / static_cast<double>(elapsed) * 1e6;
}

/// Ethernet framing overhead per packet on the wire: preamble (7) + SFD (1)
/// + FCS (4) + inter-frame gap (12) = 24 bytes. The paper counts this
/// overhead in all Gbps figures (footnote 1); so do we.
constexpr u32 kEthernetWireOverhead = 24;

/// Bytes a packet of `frame_size` occupies on the wire.
constexpr u64 wire_bytes(u64 frame_size) { return frame_size + kEthernetWireOverhead; }

}  // namespace ps
