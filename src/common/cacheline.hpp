// Cache-line utilities. Section 4.4 of the paper attributes a 20% per-packet
// cycle regression to false sharing of per-queue data; per-queue state in this
// codebase is aligned with these helpers.
#pragma once

#include <cstddef>

namespace ps {

inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so that adjacent array elements never share a cache line.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

/// Number of cache lines touched by a buffer of `bytes` bytes starting at a
/// line boundary. Used by the cost model: every 4 B random access still
/// consumes a full 64 B line of memory bandwidth (paper section 2.4).
constexpr std::size_t cache_lines(std::size_t bytes) {
  return (bytes + kCacheLineSize - 1) / kCacheLineSize;
}

}  // namespace ps
