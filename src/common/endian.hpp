// Byte-order helpers for wire-format access.
//
// Wire structs in ps::net store fields in network byte order; all access
// goes through these loads/stores so host code always sees host-order
// values and never does an unaligned or wrongly-ordered read.
#pragma once

#include <bit>
#include <cstring>

#include "common/types.hpp"

namespace ps {

constexpr u16 bswap16(u16 v) noexcept { return static_cast<u16>((v << 8) | (v >> 8)); }

constexpr u32 bswap32(u32 v) noexcept {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) | ((v & 0x00ff0000u) >> 8) |
         ((v & 0xff000000u) >> 24);
}

constexpr u64 bswap64(u64 v) noexcept {
  return (static_cast<u64>(bswap32(static_cast<u32>(v))) << 32) | bswap32(static_cast<u32>(v >> 32));
}

constexpr bool kHostIsLittleEndian = std::endian::native == std::endian::little;

constexpr u16 hton16(u16 v) noexcept { return kHostIsLittleEndian ? bswap16(v) : v; }
constexpr u32 hton32(u32 v) noexcept { return kHostIsLittleEndian ? bswap32(v) : v; }
constexpr u64 hton64(u64 v) noexcept { return kHostIsLittleEndian ? bswap64(v) : v; }
constexpr u16 ntoh16(u16 v) noexcept { return hton16(v); }
constexpr u32 ntoh32(u32 v) noexcept { return hton32(v); }
constexpr u64 ntoh64(u64 v) noexcept { return hton64(v); }

/// Unaligned big-endian loads/stores (wire structs may sit at any offset).
inline u16 load_be16(const u8* p) noexcept {
  u16 v;
  std::memcpy(&v, p, 2);
  return ntoh16(v);
}

inline u32 load_be32(const u8* p) noexcept {
  u32 v;
  std::memcpy(&v, p, 4);
  return ntoh32(v);
}

inline u64 load_be64(const u8* p) noexcept {
  u64 v;
  std::memcpy(&v, p, 8);
  return ntoh64(v);
}

inline void store_be16(u8* p, u16 v) noexcept {
  const u16 be = hton16(v);
  std::memcpy(p, &be, 2);
}

inline void store_be32(u8* p, u32 v) noexcept {
  const u32 be = hton32(v);
  std::memcpy(p, &be, 4);
}

inline void store_be64(u8* p, u64 v) noexcept {
  const u64 be = hton64(v);
  std::memcpy(p, &be, 8);
}

}  // namespace ps
