#include "common/rng.hpp"

namespace ps {
namespace {

constexpr u64 rotl(u64 x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands a single seed into the full xoshiro state.
u64 splitmix64(u64& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(u64 seed) noexcept {
  u64 x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // All-zero state is the one fixed point of xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, so the state is always valid.
}

u64 Rng::next_u64() noexcept {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::next_below(u64 bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  u64 x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 low = static_cast<u64>(m);
  if (low < bound) {
    const u64 threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

}  // namespace ps
