// Bounded lock-free single-producer / single-consumer ring.
//
// This is the queue shape the paper relies on throughout: a NIC RX/TX
// descriptor ring has exactly one producer and one consumer (section 4.4
// dedicates each queue to one core precisely to get this property), and the
// worker->master input/output queues of section 5.3 are SPSC per worker.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <optional>
#include <vector>

#include "common/cacheline.hpp"
#include "common/types.hpp"

namespace ps {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; the ring holds capacity
  /// elements (one slot is *not* sacrificed; we track head/tail as free
  /// running counters).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when full.
  bool push(T value) {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 tail = tail_cache_;
    if (head - tail >= capacity()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= capacity()) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> pop() {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side batch pop: moves up to `max` elements into `out`,
  /// returns the count. This is the primitive behind batched packet RX.
  std::size_t pop_batch(T* out, std::size_t max) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    u64 head = head_cache_;
    if (tail == head) {
      head = head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head) return 0;
    }
    const std::size_t n = std::min<std::size_t>(max, head - tail);
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(tail + i) & mask_]);
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy; exact when called from either endpoint thread.
  std::size_t size() const noexcept {
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  alignas(kCacheLineSize) std::atomic<u64> head_{0};  // producer writes
  alignas(kCacheLineSize) u64 tail_cache_{0};         // producer-local
  alignas(kCacheLineSize) std::atomic<u64> tail_{0};  // consumer writes
  alignas(kCacheLineSize) u64 head_cache_{0};         // consumer-local
};

}  // namespace ps
