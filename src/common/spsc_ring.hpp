// Bounded lock-free single-producer / single-consumer ring.
//
// This is the queue shape the paper relies on throughout: a NIC RX/TX
// descriptor ring has exactly one producer and one consumer (section 4.4
// dedicates each queue to one core precisely to get this property), and the
// worker->master input/output queues of section 5.3 are SPSC per worker.
#pragma once

#include <atomic>
#include <bit>
#include <cassert>
#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/atomic_shim.hpp"
#include "common/cacheline.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"

namespace ps {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; the ring holds capacity
  /// elements (one slot is *not* sacrificed; we track head/tail as free
  /// running counters).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when full.
  bool push(T value) {
    const u64 head = head_.load(std::memory_order_relaxed);
    const u64 tail = tail_cache_;
    if (head - tail >= capacity()) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head - tail_cache_ >= capacity()) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> pop() {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return std::nullopt;
    }
    T value = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return value;
  }

  /// Consumer-side batch pop: moves up to `max` elements into `out`,
  /// returns the count. This is the primitive behind batched packet RX.
  std::size_t pop_batch(T* out, std::size_t max) {
    const u64 tail = tail_.load(std::memory_order_relaxed);
    u64 head = head_cache_;
    if (tail == head) {
      head = head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head) return 0;
    }
    const std::size_t n = std::min<std::size_t>(max, head - tail);
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(tail + i) & mask_]);
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Approximate occupancy; exact when called from either endpoint thread.
  std::size_t size() const noexcept {
    const u64 head = head_.load(std::memory_order_acquire);
    const u64 tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  // mc: spsc.head -- producer-only writer; release store publishes the slot
  alignas(kCacheLineSize) ps::atomic<u64> head_{0};
  alignas(kCacheLineSize) u64 tail_cache_{0};  // producer-local
  // mc: spsc.tail -- consumer-only writer; release store returns the slot
  alignas(kCacheLineSize) ps::atomic<u64> tail_{0};
  alignas(kCacheLineSize) u64 head_cache_{0};  // consumer-local
};

/// Edge-triggered sleep/wake for a lock-free queue's idle path.
///
/// The hand-off itself stays lock-free; the mutex below exists only so a
/// consumer with *nothing to do* can park instead of spinning, and a
/// producer can end that nap early. The lost-wakeup hazard is the classic
/// store-buffering race: consumer publishes "I am waiting" and checks the
/// ring; producer publishes an item and checks "is anyone waiting" — with
/// plain relaxed/acquire ordering both checks can read stale values and
/// the consumer sleeps on a non-empty ring for a full idle tick. Both
/// sides therefore publish with a seq_cst fence between their store and
/// their cross-check (Dekker's protocol), and the wait itself is
/// generation-counted: prepare_wait() snapshots wake_seq_, and any
/// notify() after that snapshot bumps it, so a wakeup that lands between
/// the consumer's re-check and its wait_until() is never lost.
///
/// Cost on the producer fast path: one fence plus one relaxed load when no
/// one is waiting — no lock, no syscall.
class WakeSignal {
 public:
  /// Producer side: called after publishing work. Takes the mutex only
  /// when a consumer advertised it is (about to be) asleep.
  void notify() {
    // mc: wake.fence.notify -- Dekker: order item-publish before waiting_ check
    fence_seq_cst();
    if (!waiting_.load(std::memory_order_relaxed)) return;
    {
      // pslint: allow(handoff-mutex) -- the sanctioned slow path: taken
      // only when the consumer advertised it is parked, never per-item.
      MutexLock lock(mu_);
      ++wake_seq_;
    }
    cv_.notify_one();
  }

  /// Consumer side, step 1: advertise intent to sleep and snapshot the
  /// wake generation. The caller MUST re-check its queues between this and
  /// wait_until() — that re-check is what the seq_cst fence orders against
  /// the producer's publish.
  u64 prepare_wait() {
    waiting_.store(true, std::memory_order_relaxed);
    // mc: wake.fence.prepare -- Dekker: order waiting_=true before ring re-check
    fence_seq_cst();
    // pslint: allow(handoff-mutex) -- idle-path arm, not the hand-off.
    MutexLock lock(mu_);
    return wake_seq_;
  }

  /// Consumer side: found work after prepare_wait(); stand down.
  void cancel_wait() { waiting_.store(false, std::memory_order_relaxed); }

  /// Consumer side, step 2: sleep until a notify() newer than `token` or
  /// the deadline. Returns true if woken by a notify, false on timeout.
  template <typename Clock, typename Duration>
  bool wait_until(u64 token, std::chrono::time_point<Clock, Duration> deadline) {
    bool woken;
    {
      // pslint: allow(handoff-mutex) -- idle-path park, not the hand-off.
      MutexLock lock(mu_);
      while (wake_seq_ == token) {
        if (cv_.wait_until(mu_, deadline) == std::cv_status::timeout) break;
      }
      woken = wake_seq_ != token;
    }
    waiting_.store(false, std::memory_order_relaxed);
    return woken;
  }

 private:
  // mc: wake.waiting -- consumer advertises sleep intent; Dekker-fenced
  ps::atomic<bool> waiting_{false};
  Mutex mu_;
  u64 wake_seq_ GUARDED_BY(mu_) = 0;
  CondVar cv_;
};

/// N single-producer rings fanning into one consumer: the lock-free
/// replacement for the master's MpscQueue input (section 5.3). Each
/// producer owns a private SpscRing — push never touches a lock, a cache
/// line another producer writes, or (when no consumer is parked) anything
/// beyond its own ring.
///
/// Ordering contract — weaker than the MpscQueue it replaces, and relied
/// upon by callers:
///  - per-producer FIFO: items from one producer are delivered in push
///    order (the SPSC ring guarantees it);
///  - cross-producer round-robin: the consumer sweeps the rings starting
///    from a persistent cursor, so no producer is structurally favoured —
///    but there is NO global FIFO. An item pushed by producer A before an
///    item from producer B may be delivered after it (bounded by one sweep).
/// Consumers that need arrival-order fairness across producers (none in
/// the tree after PR 8) must keep their own sequence numbers.
///
/// Capacity: the total is split evenly across producers (rounded up to a
/// power of two, min 2 each), so one worker saturating its ring cannot
/// starve its peers' hand-off slots — the same isolation the backpressure
/// watermarks assume. size()/capacity() aggregate over all rings, which
/// keeps the watermark arithmetic of RouterConfig unchanged.
template <typename T>
class SpscFanIn {
 public:
  SpscFanIn(std::size_t producers, std::size_t total_capacity)
      : per_ring_capacity_(std::bit_ceil(
            std::max<std::size_t>(2, total_capacity / std::max<std::size_t>(1, producers)))) {
    assert(producers > 0);
    lanes_.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      lanes_.push_back(std::make_unique<Lane>(per_ring_capacity_));
    }
  }

  SpscFanIn(const SpscFanIn&) = delete;
  SpscFanIn& operator=(const SpscFanIn&) = delete;

  std::size_t producers() const noexcept { return lanes_.size(); }
  std::size_t capacity() const noexcept { return per_ring_capacity_ * lanes_.size(); }
  std::size_t per_ring_capacity() const noexcept { return per_ring_capacity_; }

  /// Producer `p` only. Lock-free; false when p's ring is full or the
  /// fan-in is closed (a closed fan-in refuses work like a full one).
  bool try_push(std::size_t p, T value) {
    Lane& lane = *lanes_[p];
    if (closed_.load(std::memory_order_acquire)) return false;
    if (!lane.ring.push(std::move(value))) {
      lane.full_spins.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    wake_.notify();
    return true;
  }

  /// Consumer only: drain up to `max` items into `out` (cleared first),
  /// sweeping the rings round-robin from the persistent cursor. Returns
  /// the count. `out` must have capacity reserved by the caller for the
  /// steady state to stay allocation-free.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    out.clear();
    const std::size_t n_lanes = lanes_.size();
    std::size_t total = 0;
    for (std::size_t visited = 0; visited < n_lanes && total < max; ++visited) {
      Lane& lane = *lanes_[cursor_];
      cursor_ = (cursor_ + 1) % n_lanes;
      const std::size_t want = max - total;
      out.resize(total + want);
      const std::size_t got = lane.ring.pop_batch(out.data() + total, want);
      total += got;
      out.resize(total);
      if (got > 0) {
        lane.popped_items.fetch_add(got, std::memory_order_relaxed);
        lane.drains.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return total;
  }

  /// Consumer only: timed batch pop, same contract as
  /// MpscQueue::pop_batch_wait_for — waits up to `timeout` for at least
  /// one item, then drains greedily; returns 0 on timeout as well as on
  /// closed-and-drained (distinguish via drained()). Unlike the mutex
  /// queue, an idle wait here is edge-triggered: a producer's try_push
  /// ends it immediately instead of costing the full idle tick.
  template <typename Rep, typename Period>
  std::size_t pop_batch_wait_for(std::vector<T>& out, std::size_t max,
                                 std::chrono::duration<Rep, Period> timeout) {
    std::size_t n = pop_batch(out, max);
    if (n > 0) return n;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    for (;;) {
      const u64 token = wake_.prepare_wait();
      // Re-check after advertising the wait: a push that raced the arm is
      // visible here (seq_cst fences on both sides), or bumps the token.
      n = pop_batch(out, max);
      if (n > 0 || closed_.load(std::memory_order_acquire)) {
        wake_.cancel_wait();
        return n;
      }
      if (!wake_.wait_until(token, deadline)) return pop_batch(out, max);
      n = pop_batch(out, max);
      if (n > 0) return n;
      if (std::chrono::steady_clock::now() >= deadline) return 0;
    }
  }

  /// Any thread. After close(), pushes fail and a parked consumer wakes.
  void close() {
    closed_.store(true, std::memory_order_release);
    wake_.notify();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Closed with nothing left to pop: the consumer may exit.
  bool drained() const { return closed() && size() == 0; }

  /// Aggregate occupancy (approximate while producers run).
  std::size_t size() const noexcept {
    std::size_t total = 0;
    for (const auto& lane : lanes_) total += lane->ring.size();
    return total;
  }

  /// Telemetry: failed try_push attempts against producer p's full ring.
  u64 full_spins(std::size_t p) const {
    return lanes_[p]->full_spins.load(std::memory_order_relaxed);
  }
  /// Telemetry: mean items taken per non-empty drain of producer p's ring
  /// (integer-truncated) — how batchy the consumer's sweeps are.
  u64 batch_occupancy(std::size_t p) const {
    const u64 drains = lanes_[p]->drains.load(std::memory_order_relaxed);
    if (drains == 0) return 0;
    return lanes_[p]->popped_items.load(std::memory_order_relaxed) / drains;
  }

 private:
  /// One producer's lane: its ring plus telemetry counters, isolated so
  /// one producer's stats traffic cannot false-share with another's ring.
  struct Lane {
    explicit Lane(std::size_t cap) : ring(cap) {}
    SpscRing<T> ring;
    // mc: fanin.full_spins -- single-writer (producer) relaxed counter
    alignas(kCacheLineSize) ps::atomic<u64> full_spins{0};
    // mc: fanin.popped_items -- single-writer (consumer) relaxed counter
    alignas(kCacheLineSize) ps::atomic<u64> popped_items{0};
    // mc: fanin.drains -- single-writer (consumer) relaxed counter
    ps::atomic<u64> drains{0};
  };

  const std::size_t per_ring_capacity_;
  std::vector<std::unique_ptr<Lane>> lanes_;  // Lane owns atomics: pointer-stable
  // mc: fanin.closed -- sticky shutdown latch; release pairs with push/pop acquire
  ps::atomic<bool> closed_{false};
  WakeSignal wake_;
  std::size_t cursor_ = 0;  // consumer-local round-robin position
};

}  // namespace ps
