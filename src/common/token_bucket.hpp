// Token-bucket rate limiter on the model clock.
//
// The paper's packet generator rate-limits its offered load (section 6.4
// notes the overhead of doing so); the latency experiments sweep offered
// rates. This bucket paces work in modeled time: deterministic, no
// wall-clock dependency.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/types.hpp"

namespace ps {

class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per simulated second, up to `burst`.
  /// The bucket starts full.
  TokenBucket(double rate_per_sec, double burst)
      : rate_(rate_per_sec), burst_(burst), tokens_(burst) {}

  double rate() const { return rate_; }
  double burst() const { return burst_; }

  /// Try to take `cost` tokens at model time `now`. Returns true on
  /// success. `now` must be monotone across calls.
  bool try_consume(Picos now, double cost = 1.0) {
    refill(now);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  /// Earliest model time at which `cost` tokens will be available
  /// (== now when they already are). When short, the result is strictly
  /// later than `now`: the wait is rounded up and floored at 1 ps, so a
  /// caller looping `now = next_available(now)` always makes progress
  /// even when float rounding leaves the deficit below one picosecond's
  /// worth of refill.
  Picos next_available(Picos now, double cost = 1.0) {
    refill(now);
    if (tokens_ >= cost) return now;
    const double deficit = cost - tokens_;
    const auto wait = static_cast<Picos>(std::ceil(deficit / rate_ * 1e12));
    return now + std::max<Picos>(wait, 1);
  }

  double tokens_at(Picos now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(Picos now) {
    if (now <= last_) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * to_seconds(now - last_));
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  Picos last_ = 0;
};

}  // namespace ps
