// Deterministic pseudo-random number generation for workload synthesis.
//
// Benchmarks and tests must be reproducible run-to-run, so all randomness in
// the repository flows through this generator with explicit seeds (never
// std::random_device or time-based seeding).
#pragma once

#include <array>

#include "common/types.hpp"

namespace ps {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(u64 seed) noexcept;

  u64 next_u64() noexcept;
  u32 next_u32() noexcept { return static_cast<u32>(next_u64() >> 32); }

  /// Uniform in [0, bound). bound == 0 returns 0.
  u64 next_below(u64 bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// Uniform in [lo, hi] inclusive.
  u64 next_range(u64 lo, u64 hi) noexcept { return lo + next_below(hi - lo + 1); }

 private:
  std::array<u64, 4> s_{};
};

}  // namespace ps
