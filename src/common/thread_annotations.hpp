// Concurrency contracts as code: Clang Thread Safety Analysis attributes
// plus the annotated lock primitives the rest of the tree uses.
//
// The repo's concurrency story is hand-ordered (single-writer relaxed
// counters, the tracer's per-slot seqlock, the adopt_ack/io_token
// handshake) and the mutex-protected remainder is exactly the part a
// machine can check. Every mutex in src/ is a ps::Mutex so that, under
// clang with -Wthread-safety (the PS_ANALYZE build), a guarded member
// touched without its lock is a compile error instead of a review
// comment. Under gcc (which has no such analysis) every macro expands to
// nothing and the wrappers cost exactly a std::mutex.
//
// The capability map — which lock or thread owns which data — lives in
// DESIGN.md §11 next to the pslint rule catalog.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/atomic_shim.hpp"  // PS_MC_MAY_UNWIND

#ifdef PS_MODEL_CHECK
#include "mc/model_sync.hpp"
#endif

#if defined(__clang__) && (!defined(SWIG))
#define PS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define PS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a type as a lock ("capability" in TSA terms).
#define CAPABILITY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires in its ctor and releases in its dtor.
#define SCOPED_CAPABILITY PS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only with `x` held.
#define GUARDED_BY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* requires `x` held.
#define PT_GUARDED_BY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and exit).
#define REQUIRES(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (held on exit, not on entry).
#define ACQUIRE(...) PS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on exit).
#define RELEASE(...) PS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first arg is the success return value.
#define TRY_ACQUIRE(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  PS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

/// Function must NOT be called with the capability held (deadlock guard).
#define EXCLUDES(...) PS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held.
#define ASSERT_CAPABILITY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) PS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's locking is protocol-based and the static
/// analysis cannot follow it. Use sparingly; justify at the call site.
#define NO_THREAD_SAFETY_ANALYSIS \
  PS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace ps {

#ifdef PS_MODEL_CHECK

/// Model-checked Mutex: same surface, but lock/unlock are scheduling
/// points for the ps::mc virtual-thread runtime (a real std::mutex would
/// deadlock the single OS thread the fibers share). Only litmus targets
/// compile with PS_MODEL_CHECK; production builds take the branch below.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() { mc::detail::mutex_forget(this); }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mc::detail::mutex_lock(this); }
  void unlock() RELEASE() { mc::detail::mutex_unlock(this); }
  bool try_lock() TRY_ACQUIRE(true) { return mc::detail::mutex_try_lock(this); }
};

#else

/// std::mutex with TSA capability annotations. All of src/ locks through
/// this type (or MutexLock below) so the analysis can see acquisitions;
/// libstdc++'s std::mutex is unannotated and invisible to it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

#endif  // PS_MODEL_CHECK

/// RAII lock (the std::lock_guard of the annotated world).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  // Unlock is a scheduling point under the model; an abort landing on it
  // must be allowed to unwind through this destructor.
  ~MutexLock() PS_MC_MAY_UNWIND RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

#ifdef PS_MODEL_CHECK

/// Model-checked CondVar: wait parks the virtual thread until a notify;
/// timed waits never time out (the checker has no clock — a timeout path
/// would hide lost-wakeup bugs behind "the deadline saved us"), so the
/// deadlock detector is the oracle for a signal that never arrives.
class CondVar {
 public:
  CondVar() = default;
  ~CondVar() { mc::detail::cv_forget(this); }
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { mc::detail::cv_wait(this, &mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, std::chrono::duration<Rep, Period>)
      REQUIRES(mu) {
    mc::detail::cv_wait(this, &mu);
    return std::cv_status::no_timeout;
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu, std::chrono::time_point<Clock, Duration>)
      REQUIRES(mu) {
    mc::detail::cv_wait(this, &mu);
    return std::cv_status::no_timeout;
  }

  void notify_one() { mc::detail::cv_notify_one(this); }
  void notify_all() { mc::detail::cv_notify_all(this); }
};

#else

/// Condition variable waiting on a ps::Mutex. Waits are written as
/// explicit while-loops at the call site (not predicate lambdas): TSA
/// does not thread capabilities into lambda bodies, so a predicate that
/// reads guarded members would trip the very analysis this file enables.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `mu`, wait, reacquire. Caller re-checks its
  /// predicate in a loop (spurious wakeups).
  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    return cv_.wait_for(mu, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::time_point<Clock, Duration> deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // _any: waits directly on the annotated Mutex (BasicLockable), which
  // keeps the acquire/release visible to the analysis at the call site.
  std::condition_variable_any cv_;
};

#endif  // PS_MODEL_CHECK

}  // namespace ps
