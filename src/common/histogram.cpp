#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ps {

Histogram::Histogram() : buckets_(static_cast<std::size_t>(kBucketsPerDecade * kDecades), 0) {}

int Histogram::bucket_index(double value) const {
  if (!(value > 0.0)) return 0;
  // log-spaced buckets anchored at 1e-10.
  const double pos = (std::log10(value) + 10.0) * kBucketsPerDecade;
  const int idx = static_cast<int>(pos);
  return std::clamp(idx, 0, kBucketsPerDecade * kDecades - 1);
}

double Histogram::bucket_midpoint(int index) const {
  const double lo = (static_cast<double>(index) / kBucketsPerDecade) - 10.0;
  const double hi = (static_cast<double>(index + 1) / kBucketsPerDecade) - 10.0;
  return std::pow(10.0, (lo + hi) / 2.0);
}

void Histogram::record(double value) { record_n(value, 1); }

void Histogram::record_n(double value, u64 n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += n;
  sum_ += value * static_cast<double>(n);
  sum_sq_ += value * value * static_cast<double>(n);
  buckets_[static_cast<std::size_t>(bucket_index(value))] += n;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
}

double Histogram::stddev() const noexcept {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank definition: the smallest value with at least q*count
  // observations at or below it.
  const u64 rank = q <= 0.0 ? 0
                            : std::min<u64>(count_ - 1,
                                            static_cast<u64>(std::ceil(q * static_cast<double>(count_))) - 1);
  const u64 target = rank;
  u64 seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return std::clamp(bucket_midpoint(static_cast<int>(i)), min_, max_);
  }
  return max_;
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.3f p50=%.3f p99=%.3f min=%.3f max=%.3f",
                static_cast<unsigned long long>(count_), mean(), p50(), p99(), min(), max());
  return buf;
}

}  // namespace ps
